/**
 * @file
 * Reproduces Fig 8: total communication time of All-Reduces from
 * 100 MB to 1 GB on the six next-gen platforms, for Baseline,
 * Themis+FIFO and Themis+SCF. The paper's qualitative result:
 * Themis+FIFO cuts communication time 1.58x on average, Themis+SCF
 * 1.72x (2.70x max).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace themis;

int
main()
{
    bench::printHeader(
        "All-Reduce communication time vs collective size",
        "Fig 8 (paper: Themis+SCF 1.72x average speedup, 2.70x max)");

    stats::CsvWriter csv(bench::csvPath("fig08_allreduce_time"));
    csv.writeRow({"topology", "size_mb", "scheduler", "time_us"});

    double speedup_fifo_sum = 0.0, speedup_scf_sum = 0.0;
    double speedup_scf_max = 0.0;
    int cells = 0;

    // Every (topology, size, scheduler) cell is an independent
    // simulation: fan the whole grid across the sweep harness, then
    // print from the index-ordered results.
    const auto topos = presets::nextGenTopologies();
    std::vector<bench::GridCell> grid;
    for (const auto& topo : topos) {
        for (Bytes size : bench::microbenchSizes()) {
            for (const auto& setup : bench::table3Schedulers()) {
                bench::GridCell cell;
                cell.topo = &topo;
                cell.config = setup.config;
                cell.size = size;
                grid.push_back(cell);
            }
        }
    }
    const auto runs = bench::runGrid(grid);

    std::size_t cursor = 0;
    for (const auto& topo : topos) {
        std::printf("%s (%s)\n", topo.name().c_str(),
                    topo.sizeString().c_str());
        stats::TextTable t({"Size", "Baseline [us]", "Themis+FIFO [us]",
                            "Themis+SCF [us]", "SCF speedup"});
        for (Bytes size : bench::microbenchSizes()) {
            double times[3] = {0, 0, 0};
            int i = 0;
            for (const auto& setup : bench::table3Schedulers()) {
                const auto& run = runs[cursor++];
                times[i++] = run.time;
                csv.writeRow({topo.name(), fmtDouble(size / kMB, 0),
                              setup.name,
                              fmtDouble(run.time / kUs, 2)});
            }
            const double speedup_fifo = times[0] / times[1];
            const double speedup_scf = times[0] / times[2];
            speedup_fifo_sum += speedup_fifo;
            speedup_scf_sum += speedup_scf;
            speedup_scf_max = std::max(speedup_scf_max, speedup_scf);
            ++cells;
            t.addRow({fmtBytes(size), fmtDouble(times[0] / kUs, 1),
                      fmtDouble(times[1] / kUs, 1),
                      fmtDouble(times[2] / kUs, 1),
                      fmtDouble(speedup_scf, 2) + "x"});
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("Average speedup over baseline across all topologies "
                "and sizes:\n");
    std::printf("  Themis+FIFO: %.2fx   (paper: 1.58x)\n",
                speedup_fifo_sum / cells);
    std::printf("  Themis+SCF:  %.2fx   (paper: 1.72x, max 2.70x; "
                "measured max %.2fx)\n",
                speedup_scf_sum / cells, speedup_scf_max);
    return 0;
}
