/**
 * @file
 * Reproduces the paper's configuration tables:
 *  - Table 1: topology -> contention-free collective algorithm,
 *  - Table 2: target platforms with per-dimension parameters,
 *  - Table 3: evaluated scheduling policies.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "collective/algorithms.hpp"
#include "common/string_util.hpp"
#include "topology/provisioning.hpp"

using namespace themis;

namespace {

void
printTable1()
{
    stats::TextTable t({"Topology", "Topology-aware Collective"});
    for (DimKind kind : {DimKind::Ring, DimKind::FullyConnected,
                         DimKind::Switch}) {
        t.addRow({dimKindName(kind), algorithmFor(kind).name()});
    }
    std::printf("Table 1: topology-aware All-Reduce algorithms\n%s\n",
                t.render().c_str());
}

void
printTable2()
{
    stats::TextTable t({"Name", "NPUs", "Size", "Aggr BW/NPU (Gb/s)",
                        "Latency (ns)", "Full util possible"});
    for (const auto& topo : presets::allTopologies()) {
        std::vector<std::string> bws, lats;
        for (const auto& d : topo.dims()) {
            bws.push_back(fmtDouble(bwToGbps(d.bandwidth()), 0));
            lats.push_back(fmtDouble(d.step_latency_ns, 0));
        }
        t.addRow({topo.name(), std::to_string(topo.totalNpus()),
                  topo.sizeString(), "(" + join(bws, ", ") + ")",
                  "(" + join(lats, ", ") + ")",
                  fullUtilizationPossible(topo) ? "yes" : "no"});
    }
    std::printf("Table 2: target topologies (plus the current 2D "
                "platform of Fig 4)\n%s\n",
                t.render().c_str());
}

void
printTable3()
{
    stats::TextTable t({"Method", "Inter-dim scheduling",
                        "Intra-dim policy"});
    for (const auto& s : bench::table3Schedulers()) {
        t.addRow({s.name, schedulerKindName(s.config.scheduler),
                  intraDimPolicyName(s.config.intra_policy)});
    }
    t.addRow({"Ideal", "(100% BW pooling: size / total BW)", "-"});
    std::printf("Table 3: target collective schedulers\n%s\n",
                t.render().c_str());
}

} // namespace

int
main()
{
    bench::printHeader("Configuration tables",
                       "Tables 1-3 of the Themis paper (ISCA'22)");
    printTable1();
    printTable2();
    printTable3();
    return 0;
}
