/**
 * @file
 * Reproduces Fig 5 (and the Fig 7 scenario it illustrates): a 256 MB
 * All-Reduce on a 4x4 2-dimensional network with BW(dim1) =
 * 2*BW(dim2), split into 4 chunks of 64 MB. The paper's worked
 * example: baseline scheduling needs 8 normalized time units (dim2
 * idles), Themis needs 7.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "stats/trace_writer.hpp"

using namespace themis;

namespace {

Topology
fig5Topology()
{
    DimensionConfig d1, d2;
    d1.kind = d2.kind = DimKind::Switch;
    d1.size = d2.size = 4;
    d1.link_bw_gbps = 384.0; // 48 GB/s -> 64MB RS = 1 unit (1 ms)
    d2.link_bw_gbps = 192.0; // half of dim1
    d1.links_per_npu = d2.links_per_npu = 1;
    d1.step_latency_ns = d2.step_latency_ns = 0.0;
    return Topology("Fig5-4x4", {d1, d2});
}

} // namespace

int
main()
{
    bench::printHeader(
        "Pipeline example: 256 MB All-Reduce on 4x4, BW ratio 2:1",
        "Fig 5 (paper: baseline 8 units, Themis 7 units)");

    const Topology topo = fig5Topology();
    const double unit_ns = 1.0e6; // 64MB RS on dim1

    stats::TextTable t({"Scheduler", "Total time [units]",
                        "Avg BW util", "dim1 util", "dim2 util"});
    stats::CsvWriter csv(bench::csvPath("fig05_pipeline_example"));
    csv.writeRow({"scheduler", "time_units", "avg_util", "dim1_util",
                  "dim2_util"});
    for (const auto& setup : bench::table3Schedulers()) {
        // Run with a trace attached so the Fig 5 time diagram can be
        // inspected interactively (chrome://tracing).
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, setup.config);
        stats::TraceWriter trace;
        comm.attachTrace(trace);
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = 256.0e6;
        req.chunks = 4;
        const int id = comm.issue(req);
        queue.run();
        comm.finalizeStats();
        const TimeNs time = comm.record(id).duration();
        const double util = comm.utilization().weightedUtilization();
        const auto per_dim = comm.utilization().perDimUtilization();

        std::string trace_name = setup.name;
        for (char& c : trace_name)
            if (c == '+')
                c = '_';
        trace.writeFile("bench_results/fig05_trace_" + trace_name +
                        ".json");

        t.addRow({setup.name, fmtDouble(time / unit_ns, 3),
                  fmtPercent(util), fmtPercent(per_dim[0]),
                  fmtPercent(per_dim[1])});
        csv.writeRow({setup.name, fmtDouble(time / unit_ns, 6),
                      fmtDouble(util, 6), fmtDouble(per_dim[0], 6),
                      fmtDouble(per_dim[1], 6)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Per-op timelines: bench_results/fig05_trace_*.json "
                "(open in chrome://tracing)\n\n");

    const auto model = LatencyModel::fromTopology(topo);
    std::printf("Ideal (Table 3, size/total BW): %.3f units\n\n",
                idealCollectiveTime(CollectiveType::AllReduce, 256.0e6,
                                    model) /
                    unit_ns);
    std::printf("Expected from the paper's worked example: baseline "
                "finishes in 8 units with dim2\nidling between chunk "
                "stages; Themis redistributes chunk schedules and "
                "finishes in 7.\n");
    return 0;
}
