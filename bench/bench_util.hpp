/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: running
 * single collectives under the Table 3 scheduler configurations and
 * emitting aligned tables plus CSV files under bench_results/.
 */

#ifndef THEMIS_BENCH_BENCH_UTIL_HPP
#define THEMIS_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "common/string_util.hpp"
#include "core/ideal_estimator.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/sweep_runner.hpp"
#include "stats/csv_writer.hpp"
#include "stats/summary.hpp"
#include "topology/presets.hpp"

namespace themis::bench {

/** Monotonic wall clock in nanoseconds (bench timing). */
inline double
nowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** One Table 3 scheduling configuration. */
struct SchedulerSetup
{
    std::string name;
    runtime::RuntimeConfig config;
};

/** Baseline / Themis+FIFO / Themis+SCF (Table 3, simulated rows). */
inline std::vector<SchedulerSetup>
table3Schedulers()
{
    return {{"Baseline", runtime::baselineConfig()},
            {"Themis+FIFO", runtime::themisFifoConfig()},
            {"Themis+SCF", runtime::themisScfConfig()}};
}

/** Result of one simulated collective. */
struct CollectiveRun
{
    TimeNs time = 0.0;
    double weighted_util = 0.0;
    std::vector<double> per_dim_util;
};

/** Simulate one collective of @p type/@p size on @p topo in @p queue. */
inline CollectiveRun
runCollective(sim::EventQueue& queue, const Topology& topo,
              const runtime::RuntimeConfig& cfg, CollectiveType type,
              Bytes size, int chunks = 64)
{
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = type;
    req.size = size;
    req.chunks = chunks;
    const int id = comm.issue(req);
    queue.run();
    comm.finalizeStats();
    CollectiveRun out;
    out.time = comm.record(id).duration();
    out.weighted_util = comm.utilization().weightedUtilization();
    out.per_dim_util = comm.utilization().perDimUtilization();
    return out;
}

/** Simulate one collective on a private throwaway queue. */
inline CollectiveRun
runCollective(const Topology& topo, const runtime::RuntimeConfig& cfg,
              CollectiveType type, Bytes size, int chunks = 64)
{
    sim::EventQueue queue;
    return runCollective(queue, topo, cfg, type, size, chunks);
}

/** All-Reduce shorthand. */
inline CollectiveRun
runAllReduce(const Topology& topo, const runtime::RuntimeConfig& cfg,
             Bytes size, int chunks = 64)
{
    return runCollective(topo, cfg, CollectiveType::AllReduce, size,
                         chunks);
}

/** One cell of an independent-simulation grid. */
struct GridCell
{
    const Topology* topo = nullptr;
    runtime::RuntimeConfig config;
    CollectiveType type = CollectiveType::AllReduce;
    Bytes size = 0.0;
    int chunks = 64;
};

/**
 * Simulate every cell across the sweep harness's worker threads.
 * Results come back in cell order, so callers can print tables in
 * their natural loop order after the sweep completes.
 */
inline std::vector<CollectiveRun>
runGrid(const std::vector<GridCell>& cells, int threads = 0)
{
    return sim::sweepIndexed(
        cells.size(),
        [&cells](std::size_t i, sim::EventQueue& queue) {
            const GridCell& cell = cells[i];
            return runCollective(queue, *cell.topo, cell.config,
                                 cell.type, cell.size, cell.chunks);
        },
        sim::SweepOptions{threads});
}

/** The paper's microbenchmark size sweep, 100 MB to 1 GB. */
inline std::vector<Bytes>
microbenchSizes()
{
    return {100.0e6, 200.0e6, 300.0e6, 400.0e6, 500.0e6,
            600.0e6, 700.0e6, 800.0e6, 900.0e6, 1.0e9};
}

/** Ensure bench_results/ exists and return the path for @p filename. */
inline std::string
resultPath(const std::string& filename)
{
    const std::filesystem::path dir{"bench_results"};
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return (dir / filename).string();
}

/** Ensure bench_results/ exists and return the CSV path for @p name. */
inline std::string
csvPath(const std::string& name)
{
    return resultPath(name + ".csv");
}

/** Print a standard bench header. */
inline void
printHeader(const std::string& title, const std::string& paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("==============================================================\n\n");
}

} // namespace themis::bench

#endif // THEMIS_BENCH_BENCH_UTIL_HPP
