/**
 * @file
 * Fault & heterogeneity resilience benchmark: the scenario engine
 * (time-varying capacity, stragglers, link flaps with retry/backoff)
 * under in-binary correctness proofs.
 *
 * Three sections, all in one binary:
 *
 *  1. Fault-free identity: a convergence run with a null fault
 *     timeline and one with an (allocated but) empty timeline must be
 *     bit-identical — arming the fault engine costs nothing when no
 *     fault fires (asserted).
 *  2. Phase-aware replay: a training run whose middle iterations sit
 *     inside a degrade window and a link flap. Steady-state replay
 *     must split the run at the fault-phase boundaries and still
 *     produce totals bit-identical to full per-iteration simulation
 *     (asserted); both wall clocks are reported.
 *  3. Scenario grid: parsed fault specs (degrade, straggler, flap,
 *     seeded storm, compounds) each driving an AllReduce. For every
 *     scenario the binary asserts completion (every retry eventually
 *     succeeded) and exact byte conservation: wire bytes equal the
 *     fault-free schedule bytes plus the re-sent bytes of failed
 *     attempts. Aggregate simulator throughput (events/sec) across
 *     the grid is the per-PR trend metric.
 *
 * Writes bench_results/BENCH_fault.json (schema in the README).
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "sim/fault_timeline.hpp"
#include "workload/convergence.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

workload::ConvergenceReport
runTraining(const Topology& topo, int iterations, bool replay,
            const sim::FaultTimeline* faults, double* wall_ms)
{
    sim::EventQueue queue;
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.faults = faults;
    runtime::CommRuntime comm(queue, topo, cfg);
    workload::TrainingLoop loop(comm, models::byName("DLRM"));
    workload::ConvergenceOptions opts;
    opts.iterations = iterations;
    opts.replay = replay;
    const double t0 = bench::nowNs();
    const auto r = workload::runConverged(comm, loop, opts);
    if (wall_ms != nullptr)
        *wall_ms = (bench::nowNs() - t0) / 1e6;
    return r;
}

struct ScenarioResult
{
    std::string name;
    std::size_t events = 0;
    double wall_ms = 0.0;
    std::uint64_t retries = 0;
    Bytes lost_bytes = 0.0;
    TimeNs duration = 0.0;
};

} // namespace

int
main()
{
    bench::printHeader(
        "Fault & heterogeneity resilience (scenario engine)",
        "robustness extension: Themis under degraded/flapping links "
        "(paper Sec 4.3 channel model + Sec 5 methodology)");

    const Topology topo = presets::byName("2D-SW_SW");

    // ---- 1. fault-free identity ------------------------------------
    const sim::FaultTimeline empty_tl;
    const auto with_null = runTraining(topo, 8, true, nullptr, nullptr);
    const auto with_empty =
        runTraining(topo, 8, true, &empty_tl, nullptr);
    const bool faultfree_identical =
        workload::resultsBitIdentical(with_null, with_empty);
    THEMIS_ASSERT(faultfree_identical,
                  "an empty fault timeline perturbed a fault-free run");
    std::printf("fault-free identity: null vs empty timeline "
                "bit-identical over 8 iterations\n\n");

    // ---- 2. phase-aware replay -------------------------------------
    const TimeNs d =
        runTraining(topo, 1, false, nullptr, nullptr).last.total;
    sim::FaultTimeline mid;
    mid.addDegrade(0, 3.25 * d, 0.5 * d, 0.5);
    mid.addFlap(1, 7.4 * d, 0.05 * d);
    const int kIterations = 16;
    double full_wall_ms = 0.0, replay_wall_ms = 0.0;
    const auto full =
        runTraining(topo, kIterations, false, &mid, &full_wall_ms);
    const auto fast =
        runTraining(topo, kIterations, true, &mid, &replay_wall_ms);
    const bool replay_identical =
        workload::resultsBitIdentical(fast, full);
    THEMIS_ASSERT(replay_identical,
                  "phase-aware replay diverged from full simulation "
                  "under a fault timeline");
    THEMIS_ASSERT(fast.replayed_iterations > 0,
                  "replay never engaged around the fault phases");
    std::printf(
        "phase-aware replay: %d iterations with a mid-run degrade "
        "window + flap\n  full simulation: %d simulated (%.1f ms)\n  "
        "phase-aware:     %d simulated + %d replayed (%.1f ms), "
        "bit-identical\n\n",
        kIterations, full.simulated_iterations, full_wall_ms,
        fast.simulated_iterations, fast.replayed_iterations,
        replay_wall_ms);

    // ---- 3. scenario grid ------------------------------------------
    const std::vector<std::pair<std::string, std::string>> scenarios =
        {{"degrade", "degrade@2e5+4e5:dim=0,factor=0.5"},
         {"straggler", "straggler@0:dim=0,factor=0.5"},
         {"flap", "flap@1e4+5e4:dim=0"},
         {"storm", "storm@0+1e6:dim=0,flaps=4,down=1e4,seed=7"},
         {"compound",
          "degrade@1e5+3e5:dim=0,factor=0.25;flap@5e5+2e4:dim=1"}};
    const Bytes kSize = 1.0e8;
    const int kChunks = 16;

    // Fault-free reference wire bytes per dimension.
    std::vector<Bytes> useful;
    TimeNs clean_duration = 0.0;
    {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo,
                                  runtime::themisScfConfig());
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = kSize;
        req.chunks = kChunks;
        const int id = comm.issue(req);
        queue.run();
        comm.finalizeStats();
        clean_duration = comm.record(id).duration();
        for (int dd = 0; dd < topo.numDims(); ++dd) {
            auto& ch = comm.engine(dd).channel();
            ch.sync();
            useful.push_back(ch.progressedBytes());
        }
    }

    std::vector<ScenarioResult> results;
    std::size_t total_events = 0;
    double total_wall_ns = 0.0;
    std::string flap_table;
    for (const auto& [name, spec] : scenarios) {
        const sim::FaultTimeline tl = sim::FaultTimeline::parse(spec);
        sim::EventQueue queue;
        runtime::RuntimeConfig cfg = runtime::themisScfConfig();
        cfg.faults = &tl;
        runtime::CommRuntime comm(queue, topo, cfg);
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = kSize;
        req.chunks = kChunks;
        const double t0 = bench::nowNs();
        const int id = comm.issue(req);
        const std::size_t events = queue.run();
        const double wall = bench::nowNs() - t0;
        comm.finalizeStats();

        // Every retry succeeded: the collective finished and nothing
        // is left on the queue.
        THEMIS_ASSERT(comm.record(id).done(),
                      "scenario '" << name
                                   << "' left the collective undone");
        ScenarioResult sr;
        sr.name = name;
        sr.events = events;
        sr.wall_ms = wall / 1e6;
        sr.duration = comm.record(id).duration();
        for (int dd = 0; dd < topo.numDims(); ++dd) {
            auto& ch = comm.engine(dd).channel();
            ch.sync();
            const Bytes lost = comm.engine(dd).lostBytes();
            const Bytes want =
                useful[static_cast<std::size_t>(dd)] + lost;
            THEMIS_ASSERT(
                std::abs(ch.progressedBytes() - want) <=
                    1.0 + 1e-6 * want,
                "scenario '" << name << "' broke byte conservation on "
                             << "dim " << dd << ": progressed "
                             << ch.progressedBytes() << " vs " << want);
            sr.retries += comm.engine(dd).retryCount();
            sr.lost_bytes += lost;
        }
        if (name == "flap") {
            THEMIS_ASSERT(sr.retries > 0,
                          "flap scenario produced no retries");
            std::vector<stats::FaultDimRow> rows;
            const auto& ut = comm.utilization();
            for (int dd = 0; dd < topo.numDims(); ++dd) {
                stats::FaultDimRow row;
                row.name = "dim" + std::to_string(dd);
                const auto di = static_cast<std::size_t>(dd);
                row.capacity_events = ut.capacityEvents()[di];
                row.flaps = ut.flaps()[di];
                row.down_time = ut.downTime()[di];
                row.retries = ut.retries()[di];
                row.lost_bytes = ut.retryLostBytes()[di];
                rows.push_back(row);
            }
            flap_table = stats::renderFaultTable(rows);
        }
        total_events += events;
        total_wall_ns += wall;
        results.push_back(sr);
    }
    const double events_per_sec =
        static_cast<double>(total_events) / (total_wall_ns * 1e-9);

    std::printf("scenario grid (AllReduce %.0f MB, %d chunks, "
                "fault-free %.0f us):\n",
                kSize / 1e6, kChunks, clean_duration / 1e3);
    for (const auto& sr : results) {
        std::printf("  %-10s %8zu events  %6.2f ms  %4llu retries  "
                    "%10.0f bytes re-sent  t=%.0f us\n",
                    sr.name.c_str(), sr.events, sr.wall_ms,
                    static_cast<unsigned long long>(sr.retries),
                    sr.lost_bytes, sr.duration / 1e3);
    }
    std::printf("\nflap scenario fault report:\n%s\n",
                flap_table.c_str());
    std::printf("aggregate: %zu events in %.1f ms (%.0f events/sec), "
                "all scenarios byte-conserved\n",
                total_events, total_wall_ns / 1e6, events_per_sec);

    // ---- JSON ------------------------------------------------------
    char buf[512];
    std::string json = "{\n  \"bench\": \"fault_resilience\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"faultfree_bit_identical\": %s,\n",
                  faultfree_identical ? "true" : "false");
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"replay\": {\"iterations\": %d, \"simulated\": %d, "
        "\"replayed\": %d,\n    \"full_wall_ms\": %.1f, "
        "\"replay_wall_ms\": %.1f},\n  \"replay_bit_identical\": %s,\n",
        kIterations, fast.simulated_iterations,
        fast.replayed_iterations, full_wall_ms, replay_wall_ms,
        replay_identical ? "true" : "false");
    json += buf;
    json += "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& sr = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s\", \"events\": %zu, \"wall_ms\": "
            "%.2f, \"retries\": %llu,\n     \"lost_bytes\": %.0f, "
            "\"duration_ns\": %.0f}%s\n",
            sr.name.c_str(), sr.events, sr.wall_ms,
            static_cast<unsigned long long>(sr.retries), sr.lost_bytes,
            sr.duration, i + 1 < results.size() ? "," : "");
        json += buf;
    }
    json += "  ],\n  \"bytes_conserved\": true,\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"events_per_sec\": %.0f\n}\n", events_per_sec);
    json += buf;

    const std::string path = bench::resultPath("BENCH_fault.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
