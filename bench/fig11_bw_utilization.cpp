/**
 * @file
 * Reproduces Fig 11: average bandwidth utilization of All-Reduces
 * from 100 MB to 1 GB on the six next-gen platforms. The paper's
 * averages: Baseline 56.31%, Themis+FIFO 87.67%, Themis+SCF 95.14%.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace themis;

int
main()
{
    bench::printHeader(
        "Average BW utilization vs collective size",
        "Fig 11 (paper avgs: 56.31% / 87.67% / 95.14%)");

    stats::CsvWriter csv(bench::csvPath("fig11_bw_utilization"));
    csv.writeRow({"topology", "size_mb", "scheduler", "avg_util"});

    double util_sum[3] = {0.0, 0.0, 0.0};
    int cells = 0;

    for (const auto& topo : presets::nextGenTopologies()) {
        std::printf("%s (%s)\n", topo.name().c_str(),
                    topo.sizeString().c_str());
        stats::TextTable t({"Size", "Baseline", "Themis+FIFO",
                            "Themis+SCF"});
        for (Bytes size : bench::microbenchSizes()) {
            std::vector<std::string> row{fmtBytes(size)};
            int i = 0;
            for (const auto& setup : bench::table3Schedulers()) {
                const auto run =
                    bench::runAllReduce(topo, setup.config, size);
                row.push_back(fmtPercent(run.weighted_util));
                util_sum[i++] += run.weighted_util;
                csv.writeRow({topo.name(), fmtDouble(size / kMB, 0),
                              setup.name,
                              fmtDouble(run.weighted_util, 4)});
            }
            ++cells;
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("Average BW utilization across all topologies/sizes:\n");
    std::printf("  Baseline:    %s  (paper: 56.31%%)\n",
                fmtPercent(util_sum[0] / cells).c_str());
    std::printf("  Themis+FIFO: %s  (paper: 87.67%%)\n",
                fmtPercent(util_sum[1] / cells).c_str());
    std::printf("  Themis+SCF:  %s  (paper: 95.14%%)\n",
                fmtPercent(util_sum[2] / cells).c_str());
    return 0;
}
