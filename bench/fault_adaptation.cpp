/**
 * @file
 * Fault-aware adaptive re-planning benchmark: when a capacity-changing
 * fault fires, the runtime snapshots per-dim effective bandwidth and
 * re-plans newly issued collectives against the degraded latency
 * model, while in-flight collectives finish under their old plan.
 *
 * Three sections, all in one binary:
 *
 *  1. Fault-free identity: a convergence run with the adaptation layer
 *     armed (and an empty fault timeline) must be bit-identical to the
 *     static engine, fingerprint-checked, with a zero capacity epoch —
 *     arming adaptation costs nothing when no fault fires (asserted).
 *  2. Stale-plan gap: DLRM training under a permanent 4x one-dim
 *     straggler, static plan vs adaptive re-planning. The binary
 *     asserts the adaptive makespan beats the stale static plan by at
 *     least the win floor (1.10x) and that at least one re-plan fired.
 *  3. Adaptive scenario grid: parsed fault specs (straggler, degrade,
 *     per-link outages, compounds) each driving an AllReduce with
 *     adaptation on. For the t=0 straggler the binary asserts exact
 *     byte conservation against the *degraded* model's own schedule
 *     algebra (the adaptive plan moves different per-dim volumes than
 *     the clean plan — that is the point). Aggregate simulator
 *     throughput (events/sec) across the grid is the trend metric.
 *
 * Writes bench_results/BENCH_adaptation.json (schema in the README).
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/themis_scheduler.hpp"
#include "models/model_zoo.hpp"
#include "sim/fault_timeline.hpp"
#include "workload/convergence.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

constexpr double kWinFloor = 1.10;

struct TrainRun
{
    workload::ConvergenceReport report;
    std::uint64_t replans = 0;
    std::uint64_t capacity_fp = 0;
};

TrainRun
runTraining(const Topology& topo, int iterations,
            const sim::FaultTimeline* faults, bool adapt)
{
    sim::EventQueue queue;
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.faults = faults;
    cfg.adaptation.enabled = adapt;
    runtime::CommRuntime comm(queue, topo, cfg);
    workload::TrainingLoop loop(comm, models::byName("DLRM"));
    workload::ConvergenceOptions opts;
    opts.iterations = iterations;
    TrainRun r;
    r.report = workload::runConverged(comm, loop, opts);
    r.replans = comm.replanCount();
    r.capacity_fp = comm.capacityFingerprint();
    return r;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fault-aware adaptive re-planning (capacity epochs)",
        "robustness extension: Themis re-planning chunk schedules "
        "against degraded per-dim bandwidths (paper Sec 3-4 "
        "scheduling + Sec 4.3 channel model)");

    const Topology topo = presets::byName("2D-SW_SW");

    // ---- 1. fault-free identity ------------------------------------
    const sim::FaultTimeline empty_tl;
    const auto plain = runTraining(topo, 8, nullptr, false);
    const auto armed = runTraining(topo, 8, &empty_tl, true);
    const bool faultfree_identical =
        workload::resultsBitIdentical(plain.report, armed.report) &&
        plain.report.steady_fingerprint ==
            armed.report.steady_fingerprint;
    THEMIS_ASSERT(faultfree_identical,
                  "arming adaptation perturbed a fault-free run");
    THEMIS_ASSERT(armed.replans == 0 && armed.capacity_fp == 0,
                  "a fault-free run re-planned (replans="
                      << armed.replans << ", capacity epoch "
                      << armed.capacity_fp << ")");
    std::printf("fault-free identity: adaptation armed vs static "
                "engine bit-identical over 8 iterations (fingerprint "
                "%016llx, capacity epoch 0)\n\n",
                static_cast<unsigned long long>(
                    armed.report.steady_fingerprint));

    // ---- 2. stale-plan gap under a permanent straggler -------------
    sim::FaultTimeline straggler;
    straggler.addStraggler(0, 0.0, 0.25); // dim0 at 4x slowdown
    const int kIterations = 8;
    const auto stale =
        runTraining(topo, kIterations, &straggler, false);
    const auto adaptive =
        runTraining(topo, kIterations, &straggler, true);
    const TimeNs static_makespan = stale.report.total.total;
    const TimeNs adaptive_makespan = adaptive.report.total.total;
    const double win = static_makespan / adaptive_makespan;
    THEMIS_ASSERT(adaptive.replans > 0,
                  "the straggler never triggered a re-plan");
    THEMIS_ASSERT(win >= kWinFloor,
                  "adaptive re-planning won only "
                      << win << "x over the stale static plan (floor "
                      << kWinFloor << "x)");
    std::printf(
        "stale-plan gap: DLRM x%d iterations, permanent 4x dim0 "
        "straggler\n  static plan : %.1f ms makespan\n  adaptive    : "
        "%.1f ms makespan (%llu re-plan(s), capacity epoch %016llx)\n"
        "  win         : %.2fx (floor %.2fx, asserted)\n\n",
        kIterations, static_makespan / 1e6, adaptive_makespan / 1e6,
        static_cast<unsigned long long>(adaptive.replans),
        static_cast<unsigned long long>(adaptive.capacity_fp), win,
        kWinFloor);

    // ---- 3. adaptive scenario grid ---------------------------------
    const std::vector<std::pair<std::string, std::string>> scenarios =
        {{"straggler", "straggler@0:dim=0,factor=0.25"},
         {"degrade", "degrade@2e5+4e5:dim=0,factor=0.5"},
         {"link", "link@2e4+4e4:dim=0,index=3"},
         {"link-compound",
          "link@2e4+4e4:dim=0,index=0;link@3e4+2e4:dim=0,index=1;"
          "straggler@1e5:dim=1,factor=0.8"}};
    const Bytes kSize = 1.0e8;
    const int kChunks = 16;

    std::size_t total_events = 0;
    double total_wall_ns = 0.0;
    bool bytes_conserved = true;
    std::printf("adaptive scenario grid (AllReduce %.0f MB, %d "
                "chunks, --adapt on):\n",
                kSize / 1e6, kChunks);
    for (const auto& [name, spec] : scenarios) {
        const sim::FaultTimeline tl = sim::FaultTimeline::parse(spec);
        sim::EventQueue queue;
        runtime::RuntimeConfig cfg = runtime::themisScfConfig();
        cfg.faults = &tl;
        cfg.adaptation.enabled = true;
        runtime::CommRuntime comm(queue, topo, cfg);
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = kSize;
        req.chunks = kChunks;
        const double t0 = bench::nowNs();
        const int id = comm.issue(req);
        const std::size_t events = queue.run();
        const double wall = bench::nowNs() - t0;
        comm.finalizeStats();
        THEMIS_ASSERT(comm.record(id).done(),
                      "scenario '" << name
                                   << "' left the collective undone");

        if (name == "straggler") {
            // The t=0 straggler applies before planning, so the whole
            // collective ran under the degraded plan: wire bytes must
            // match the degraded model's own stage-load algebra.
            const auto model =
                LatencyModel::fromTopology(topo).scaledBy(
                    {0.25, 1.0});
            ThemisScheduler degraded(model);
            const auto schedules = degraded.scheduleCollective(
                req.type,
                schedulableSize(req.type, req.size,
                                model.dimSizes()),
                req.chunks);
            for (int d = 0; d < topo.numDims(); ++d) {
                Bytes expected = 0.0;
                for (const auto& sched : schedules) {
                    const auto loads =
                        model.stageLoads(sched.size, sched.stages);
                    // stageLoads are times under the *degraded* BW;
                    // multiply back by that BW for wire bytes.
                    expected += loads[static_cast<std::size_t>(d)] *
                                topo.dim(d).bandwidth() *
                                (d == 0 ? 0.25 : 1.0);
                }
                auto& ch = comm.engine(d).channel();
                ch.sync();
                const Bytes got = ch.progressedBytes();
                if (std::abs(got - expected) > 1.0 + 1e-6 * expected)
                    bytes_conserved = false;
                THEMIS_ASSERT(
                    bytes_conserved,
                    "adaptive straggler plan broke byte conservation "
                    "on dim "
                        << d << ": progressed " << got << " vs "
                        << expected);
            }
        }
        std::uint64_t retries = 0;
        for (int d = 0; d < topo.numDims(); ++d)
            retries += comm.engine(d).retryCount();
        std::printf("  %-13s %8zu events  %6.2f ms  %llu re-plan(s)  "
                    "%4llu retries  t=%.0f us\n",
                    name.c_str(), events, wall / 1e6,
                    static_cast<unsigned long long>(
                        comm.replanCount()),
                    static_cast<unsigned long long>(retries),
                    comm.record(id).duration() / 1e3);
        total_events += events;
        total_wall_ns += wall;
    }
    const double events_per_sec =
        static_cast<double>(total_events) / (total_wall_ns * 1e-9);
    std::printf("\naggregate: %zu events in %.1f ms (%.0f "
                "events/sec), straggler plan byte-conserved\n",
                total_events, total_wall_ns / 1e6, events_per_sec);

    // ---- JSON ------------------------------------------------------
    char buf[512];
    std::string json = "{\n  \"bench\": \"fault_adaptation\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"faultfree_bit_identical\": %s,\n",
                  faultfree_identical ? "true" : "false");
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"static_makespan_ns\": %.0f,\n"
        "  \"adaptive_makespan_ns\": %.0f,\n"
        "  \"win\": %.3f,\n  \"adaptive_win_floor\": %.2f,\n"
        "  \"replans\": %llu,\n",
        static_makespan, adaptive_makespan, win, kWinFloor,
        static_cast<unsigned long long>(adaptive.replans));
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"bytes_conserved\": %s,\n"
                  "  \"events_per_sec\": %.0f\n}\n",
                  bytes_conserved ? "true" : "false", events_per_sec);
    json += buf;

    const std::string path = bench::resultPath("BENCH_adaptation.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
