/**
 * @file
 * Reproduces Fig 7: the Dim Load Tracker's view while scheduling the
 * four chunks of the Fig 5 example. Baseline keeps a constant
 * schedule, preserving the dim1/dim2 load gap; Themis routes chunk 2
 * through dim2 first and chunks 3-4 through dim1 to close the gap.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "core/baseline_scheduler.hpp"
#include "core/themis_scheduler.hpp"

using namespace themis;

namespace {

LatencyModel
fig5Model()
{
    DimensionConfig d1, d2;
    d1.kind = d2.kind = DimKind::Switch;
    d1.size = d2.size = 4;
    d1.link_bw_gbps = 384.0;
    d2.link_bw_gbps = 192.0;
    d1.links_per_npu = d2.links_per_npu = 1;
    d1.step_latency_ns = d2.step_latency_ns = 0.0;
    return LatencyModel({d1, d2});
}

std::string
rsOrderString(const ChunkSchedule& sched)
{
    std::string s;
    for (const auto& st : sched.stages) {
        if (st.phase == Phase::ReduceScatter) {
            if (!s.empty())
                s += " -> ";
            s += "dim" + std::to_string(st.dim + 1);
        }
    }
    return s;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Dim Load Tracker evolution while scheduling 4 x 64MB chunks",
        "Fig 7 (baseline vs Themis scheduling decisions)");

    const auto model = fig5Model();
    const double unit = 1.0e6; // 1 normalized unit in ns

    // Replay Themis chunk by chunk to expose the tracker after each
    // decision (the scheduler accounts the RS pass, Algorithm 1).
    std::printf("Themis (Algorithm 1):\n");
    stats::TextTable themis_t({"Chunk", "RS order", "dim1 load [u]",
                               "dim2 load [u]"});
    stats::CsvWriter csv(bench::csvPath("fig07_load_balancing"));
    csv.writeRow({"scheduler", "chunk", "rs_order", "dim1_load_units",
                  "dim2_load_units"});
    {
        ThemisScheduler sched(model);
        // Schedule the full collective once; recompute the running
        // loads by replaying stage loads chunk by chunk.
        const auto out = sched.scheduleCollective(
            CollectiveType::AllReduce, 256.0e6, 4);
        DimLoadTracker tracker(model);
        tracker.reset(CollectiveType::AllReduce);
        for (const auto& c : out) {
            std::vector<StageAssignment> rs_pass;
            for (const auto& st : c.stages) {
                if (st.phase == Phase::ReduceScatter)
                    rs_pass.push_back(st);
            }
            tracker.add(model.stageLoads(c.size, rs_pass));
            themis_t.addRow({std::to_string(c.chunk_id + 1),
                             rsOrderString(c),
                             fmtDouble(tracker.loads()[0] / unit, 2),
                             fmtDouble(tracker.loads()[1] / unit, 2)});
            csv.writeRow({"Themis", std::to_string(c.chunk_id + 1),
                          rsOrderString(c),
                          fmtDouble(tracker.loads()[0] / unit, 4),
                          fmtDouble(tracker.loads()[1] / unit, 4)});
        }
    }
    std::printf("%s\n", themis_t.render().c_str());

    std::printf("Baseline (constant schedule):\n");
    stats::TextTable base_t({"Chunk", "RS order", "dim1 load [u]",
                             "dim2 load [u]"});
    {
        BaselineScheduler sched(model);
        const auto out = sched.scheduleCollective(
            CollectiveType::AllReduce, 256.0e6, 4);
        DimLoadTracker tracker(model);
        tracker.reset(CollectiveType::AllReduce);
        for (const auto& c : out) {
            std::vector<StageAssignment> rs_pass;
            for (const auto& st : c.stages) {
                if (st.phase == Phase::ReduceScatter)
                    rs_pass.push_back(st);
            }
            tracker.add(model.stageLoads(c.size, rs_pass));
            base_t.addRow({std::to_string(c.chunk_id + 1),
                           rsOrderString(c),
                           fmtDouble(tracker.loads()[0] / unit, 2),
                           fmtDouble(tracker.loads()[1] / unit, 2)});
            csv.writeRow({"Baseline", std::to_string(c.chunk_id + 1),
                          rsOrderString(c),
                          fmtDouble(tracker.loads()[0] / unit, 4),
                          fmtDouble(tracker.loads()[1] / unit, 4)});
        }
    }
    std::printf("%s", base_t.render().c_str());
    std::printf("\nPaper expectation: Themis chunk 1 follows the "
                "baseline, chunk 2 starts at dim2,\nchunks 3-4 start "
                "at dim1 to close the load gap; the baseline keeps a "
                "2:1 gap.\n");
    return 0;
}
