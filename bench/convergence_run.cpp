/**
 * @file
 * Multi-iteration convergence-run benchmark: the steady-state
 * iteration replay engine against full per-iteration simulation.
 *
 * Three sections, all in one binary:
 *
 *  1. Headline: a 50-iteration Transformer-1T convergence run on a
 *     next-gen platform, once with replay and once fully simulated.
 *     The two runs must produce bit-identical totals (asserted); the
 *     wall-clock ratio is the replay speedup tracked per PR.
 *  2. Exactness proof: the replay engine's co-run mode on a smaller
 *     fig12-shaped cell (ResNet-152) — full simulation continues
 *     after steady-state detection and every subsequent iteration is
 *     asserted bit-identical to the replay prediction.
 *  3. Scale: the full fig12 grid (4 workloads x 6 platforms x
 *     3 methods = 72 cells) at 20 iterations per cell, fanned across
 *     the sweep harness with a shared plan cache.
 *
 * Writes bench_results/BENCH_convergence.json (schema documented in
 * the README).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "workload/convergence.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

/** Zero-latency 1-dim platform pooling all of @p topo's bandwidth. */
Topology
idealTopology(const Topology& topo)
{
    DimensionConfig d;
    d.kind = DimKind::Switch;
    d.size = static_cast<int>(topo.totalNpus());
    d.link_bw_gbps = bwToGbps(topo.totalBandwidth());
    d.links_per_npu = 1;
    d.step_latency_ns = 0.0;
    return Topology(topo.name() + "-ideal", {d});
}

struct ModeRun
{
    workload::ConvergenceReport report;
    double wall_ms = 0.0;
};

ModeRun
runTransformer(const Topology& topo, int iterations, bool replay)
{
    PlanCache cache;
    sim::EventQueue queue;
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.plan_cache = &cache;
    runtime::CommRuntime comm(queue, topo, cfg);
    workload::TrainingLoop loop(comm,
                                models::byName("Transformer-1T"));
    workload::ConvergenceOptions opts;
    opts.iterations = iterations;
    opts.replay = replay;
    ModeRun out;
    const double t0 = bench::nowNs();
    out.report = workload::runConverged(comm, loop, opts);
    out.wall_ms = (bench::nowNs() - t0) / 1e6;
    return out;
}

stats::ConvergenceRunRow
rowOf(const char* label, const ModeRun& run)
{
    stats::ConvergenceRunRow row;
    row.label = label;
    row.iterations = run.report.iterations;
    row.simulated = run.report.simulated_iterations;
    row.replayed = run.report.replayed_iterations;
    row.total_time = run.report.total.total;
    row.last_iteration = run.report.last.total;
    row.utilization = run.report.utilization;
    row.wall_ms = run.wall_ms;
    return row;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Multi-iteration convergence runs (steady-state replay)",
        "per-iteration cost amortized to ~O(1) simulated iterations");

    // ---- 1. Headline: 50-iteration Transformer-1T ------------------
    const auto topos = presets::nextGenTopologies();
    THEMIS_ASSERT(!topos.empty(), "no next-gen platforms");
    const Topology& headline_topo = topos.front();
    const int kIterations = 50;

    // Replay first: the full pass then runs on the warmer CPU,
    // biasing the reported speedup down, not up.
    const ModeRun replay =
        runTransformer(headline_topo, kIterations, true);
    const ModeRun full =
        runTransformer(headline_topo, kIterations, false);
    // Same "bit-identical" definition the exactness mode asserts with.
    const bool identical =
        workload::resultsBitIdentical(replay.report, full.report);
    THEMIS_ASSERT(identical,
                  "replayed and fully simulated convergence runs "
                  "diverged");
    const double speedup = full.wall_ms / replay.wall_ms;

    std::printf("Transformer-1T x %d iterations on %s:\n\n",
                kIterations, headline_topo.name().c_str());
    std::printf("%s", stats::renderConvergenceTable(
                          {rowOf("replay", replay),
                           rowOf("full simulation", full)})
                          .c_str());
    std::printf("\n  steady state at iteration %d (fingerprint "
                "%016llx), results bit-identical, speedup %.1fx\n\n",
                replay.report.steady_at,
                static_cast<unsigned long long>(
                    replay.report.steady_fingerprint),
                speedup);

    // ---- 2. Exactness proof ----------------------------------------
    double exact_wall_ms = 0.0;
    int exact_steady_at = -1;
    {
        PlanCache cache;
        sim::EventQueue queue;
        runtime::RuntimeConfig cfg = runtime::themisScfConfig();
        cfg.plan_cache = &cache;
        runtime::CommRuntime comm(queue, topos.front(), cfg);
        workload::TrainingLoop loop(comm, models::byName("ResNet-152"));
        workload::ConvergenceOptions opts;
        opts.iterations = 10;
        opts.exactness_check = true; // asserts on any divergence
        const double t0 = bench::nowNs();
        const auto r = workload::runConverged(comm, loop, opts);
        exact_wall_ms = (bench::nowNs() - t0) / 1e6;
        exact_steady_at = r.steady_at;
        THEMIS_ASSERT(r.steady_at >= 0,
                      "exactness run never reached steady state");
        std::printf("exactness mode: ResNet-152 x %d iterations "
                    "co-run and asserted bit-identical (steady at "
                    "iteration %d, %.1f ms)\n\n",
                    r.iterations, r.steady_at, exact_wall_ms);
    }

    // ---- 3. fig12 grid at 20 iterations/cell -----------------------
    struct MethodDef
    {
        const char* name;
        runtime::RuntimeConfig config;
        bool on_ideal_topology;
    };
    const std::vector<MethodDef> methods = {
        {"Baseline", runtime::baselineConfig(), false},
        {"Themis+SCF", runtime::themisScfConfig(), false},
        {"Ideal", runtime::themisScfConfig(), true}};
    const auto workloads = models::paperWorkloads();
    std::vector<Topology> ideal_topos;
    for (const auto& t : topos)
        ideal_topos.push_back(idealTopology(t));
    const int kGridIterations = 20;
    const std::size_t cells =
        workloads.size() * topos.size() * methods.size();
    const std::size_t per_workload = topos.size() * methods.size();

    PlanCache grid_cache;
    sim::SweepOptions sweep_opts;
    sweep_opts.threads =
        sim::SweepRunner(sim::SweepOptions{}).threads();
    const double grid_t0 = bench::nowNs();
    const auto grid_results = sim::sweepIndexed(
        cells,
        [&](std::size_t i, sim::EventQueue& queue) {
            const std::size_t w = i / per_workload;
            const std::size_t t = i % per_workload / methods.size();
            const std::size_t m = i % methods.size();
            runtime::RuntimeConfig cfg = methods[m].config;
            cfg.plan_cache = &grid_cache;
            const Topology& topo = methods[m].on_ideal_topology
                                       ? ideal_topos[t]
                                       : topos[t];
            runtime::CommRuntime comm(queue, topo, cfg);
            workload::TrainingLoop loop(
                comm, models::byName(workloads[w]));
            workload::ConvergenceOptions opts;
            opts.iterations = kGridIterations;
            return workload::runConverged(comm, loop, opts);
        },
        sweep_opts);
    const double grid_wall_ms = (bench::nowNs() - grid_t0) / 1e6;
    const double grid_cells_per_sec =
        static_cast<double>(cells) / (grid_wall_ms * 1e-3);

    long grid_simulated = 0, grid_replayed = 0, grid_steady = 0;
    for (const auto& r : grid_results) {
        grid_simulated += r.simulated_iterations;
        grid_replayed += r.replayed_iterations;
        if (r.steady_at >= 0)
            ++grid_steady;
    }
    std::printf("fig12 grid: %zu cells x %d iterations on %d worker "
                "threads: %.1f ms (%.1f cells/sec)\n",
                cells, kGridIterations, sweep_opts.threads,
                grid_wall_ms, grid_cells_per_sec);
    std::printf("  %ld iterations simulated, %ld replayed "
                "(steady state in %ld/%zu cells)\n",
                grid_simulated, grid_replayed, grid_steady, cells);

    // ---- JSON ------------------------------------------------------
    char buf[1024];
    std::string json = "{\n  \"bench\": \"convergence_run\",\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"transformer_1t\": {\"topology\": \"%s\", \"iterations\": "
        "%d,\n    \"full_wall_ms\": %.1f, \"replay_wall_ms\": %.1f, "
        "\"speedup\": %.2f,\n    \"simulated_iterations\": %d, "
        "\"replayed_iterations\": %d, \"steady_at\": %d,\n    "
        "\"bit_identical\": %s},\n",
        headline_topo.name().c_str(), kIterations, full.wall_ms,
        replay.wall_ms, speedup, replay.report.simulated_iterations,
        replay.report.replayed_iterations, replay.report.steady_at,
        identical ? "true" : "false");
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"exactness\": {\"workload\": \"ResNet-152\", "
        "\"iterations\": 10, \"steady_at\": %d,\n    \"passed\": true, "
        "\"wall_ms\": %.1f},\n",
        exact_steady_at, exact_wall_ms);
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"grid\": {\"cells\": %zu, \"iterations_per_cell\": %d, "
        "\"threads\": %d,\n    \"wall_ms\": %.1f, \"cells_per_sec\": "
        "%.2f, \"iterations_simulated\": %ld,\n    "
        "\"iterations_replayed\": %ld, \"steady_cells\": %ld}\n}\n",
        cells, kGridIterations, sweep_opts.threads, grid_wall_ms,
        grid_cells_per_sec, grid_simulated, grid_replayed,
        grid_steady);
    json += buf;

    const std::string path = bench::resultPath("BENCH_convergence.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s (replay speedup: %.1fx)\n", path.c_str(),
                speedup);
    return 0;
}
