/**
 * @file
 * Reproduces Fig 10: average bandwidth utilization of a 100 MB
 * All-Reduce as chunks-per-collective sweeps 4..512, on
 * 3D-SW_SW_SW_hetero and 4D-Ring_FC_Ring_SW. The paper: baseline is
 * insensitive to chunk count; Themis improves with more chunks
 * (finer balancing) and Themis+SCF is stable from ~8 chunks.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace themis;

int
main()
{
    bench::printHeader(
        "BW utilization vs chunks per collective (100 MB All-Reduce)",
        "Fig 10");

    stats::CsvWriter csv(bench::csvPath("fig10_chunk_sensitivity"));
    csv.writeRow({"topology", "chunks", "scheduler", "avg_util"});

    const std::vector<int> chunk_counts{4, 8, 16, 32, 64, 128, 256,
                                        512};
    const std::vector<Topology> topos{presets::make3DSwSwSwHetero(),
                                      presets::make4DRingFcRingSw()};

    // Independent (topology, chunks, scheduler) cells: simulate the
    // whole grid through the sweep harness, then print in order.
    std::vector<bench::GridCell> grid;
    for (const auto& topo : topos) {
        for (int chunks : chunk_counts) {
            for (const auto& setup : bench::table3Schedulers()) {
                bench::GridCell cell;
                cell.topo = &topo;
                cell.config = setup.config;
                cell.size = 100.0e6;
                cell.chunks = chunks;
                grid.push_back(cell);
            }
        }
    }
    const auto runs = bench::runGrid(grid);

    std::size_t cursor = 0;
    for (const auto& topo : topos) {
        std::printf("%s (%s)\n", topo.name().c_str(),
                    topo.sizeString().c_str());
        stats::TextTable t({"Chunks", "Baseline", "Themis+FIFO",
                            "Themis+SCF"});
        for (int chunks : chunk_counts) {
            std::vector<std::string> row{std::to_string(chunks)};
            for (const auto& setup : bench::table3Schedulers()) {
                const auto& run = runs[cursor++];
                row.push_back(fmtPercent(run.weighted_util));
                csv.writeRow({topo.name(), std::to_string(chunks),
                              setup.name,
                              fmtDouble(run.weighted_util, 4)});
            }
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("Paper expectation: the baseline is nearly flat in "
                "chunk count (dim1 bottleneck\nfixed); Themis gains "
                "with finer chunks; the paper picked 64 chunks as the "
                "default\n(95%% utilization at <0.5%% header "
                "overhead).\n");
    return 0;
}
