/**
 * @file
 * Model-zoo training design-space sweep: every paper workload on every
 * next-gen platform, under Baseline and Themis+SCF scheduling, across
 * a chunk-count axis — one full training iteration per cell, fanned
 * over the sweep harness with one shared plan cache. This is the
 * what-if grid the ROADMAP's sweep-throughput work targets (CASSINI-
 * style cluster studies): chunk count does not change a layer's
 * collective *plan inputs* across scheduler repeats, so the cache
 * collapses the per-cell scheduling work to a lookup, and the
 * per-iteration speedup table falls out of one run.
 *
 * Writes model_zoo_sweep.csv (one row per cell) next to the other
 * bench outputs.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

const std::vector<int>&
chunkAxis()
{
    static const std::vector<int> axis{16, 64, 256};
    return axis;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Model-zoo training sweep (workload x platform x scheduler x "
        "chunks)",
        "Sec 6.2 design space; iteration impact of the chunk-count "
        "knob (Fig 10's axis) at training granularity");

    const auto workloads = models::paperWorkloads();
    const auto topologies = presets::nextGenTopologies();
    const auto& chunks = chunkAxis();
    const std::vector<bench::SchedulerSetup> setups{
        {"Baseline", runtime::baselineConfig()},
        {"Themis+SCF", runtime::themisScfConfig()}};

    const std::size_t cells_per_workload =
        topologies.size() * setups.size() * chunks.size();
    const std::size_t cell_count =
        workloads.size() * cells_per_workload;

    PlanCache cache;
    const auto results = sim::sweepIndexed(
        cell_count,
        [&](std::size_t i, sim::EventQueue& queue) {
            const std::size_t w = i / cells_per_workload;
            std::size_t rest = i % cells_per_workload;
            const std::size_t t = rest / (setups.size() * chunks.size());
            rest %= setups.size() * chunks.size();
            const std::size_t s = rest / chunks.size();
            const std::size_t c = rest % chunks.size();

            runtime::RuntimeConfig cfg = setups[s].config;
            cfg.default_chunks = chunks[c];
            cfg.plan_cache = &cache;
            runtime::CommRuntime comm(queue, topologies[t], cfg);
            workload::TrainingLoop loop(
                comm, models::byName(workloads[w]));
            return loop.runIteration();
        },
        sim::SweepOptions{});

    stats::CsvWriter csv(bench::csvPath("model_zoo_sweep"));
    csv.writeRow({"workload", "topology", "scheduler", "chunks",
                  "total", "exposed_comm", "speedup_vs_baseline"});

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::printf("%s\n", workloads[w].c_str());
        stats::TextTable table({"Topology", "Chunks", "Baseline",
                                "Themis+SCF", "Speedup"});
        for (std::size_t t = 0; t < topologies.size(); ++t) {
            for (std::size_t c = 0; c < chunks.size(); ++c) {
                auto cell = [&](std::size_t s) -> const auto& {
                    return results[w * cells_per_workload +
                                   t * setups.size() * chunks.size() +
                                   s * chunks.size() + c];
                };
                const auto& base = cell(0);
                const auto& scf = cell(1);
                const double speedup = base.total / scf.total;
                table.addRow({topologies[t].name(),
                              std::to_string(chunks[c]),
                              fmtTime(base.total), fmtTime(scf.total),
                              fmtDouble(speedup, 2) + "x"});
                for (std::size_t s = 0; s < setups.size(); ++s) {
                    const auto& it = cell(s);
                    csv.writeRow(
                        {workloads[w], topologies[t].name(),
                         setups[s].name, std::to_string(chunks[c]),
                         fmtDouble(it.total, 1),
                         fmtDouble(it.exposed_mp + it.exposed_dp, 1),
                         fmtDouble(base.total / it.total, 4)});
                }
            }
        }
        std::printf("%s\n", table.render().c_str());
    }

    const auto stats = cache.stats();
    std::printf("%zu cells; plan cache: %zu distinct plans, %llu hits "
                "/ %llu misses (%.1f%% hit rate)\n",
                cell_count, cache.planCount(),
                static_cast<unsigned long long>(stats.plan_hits),
                static_cast<unsigned long long>(stats.plan_misses),
                100.0 * static_cast<double>(stats.plan_hits) /
                    static_cast<double>(
                        std::max<std::uint64_t>(
                            1, stats.plan_hits + stats.plan_misses)));
    return 0;
}
