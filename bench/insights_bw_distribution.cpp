/**
 * @file
 * Reproduces Sec 6.3, "Insights for Future System Design": sweeps the
 * bandwidth split between two dimensions of a 4x4 platform and shows
 * the three provisioning scenarios:
 *
 *  - Under-Provisioned (BW1 > P1*BW2): no scheduler saturates both
 *    dimensions — a prohibited design point;
 *  - Just-Enough (BW1 = P1*BW2): the baseline already saturates;
 *  - Over-Provisioned (BW1 < P1*BW2): the baseline wastes dim2's
 *    excess; Themis recovers it.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "topology/provisioning.hpp"

using namespace themis;

namespace {

/** 4x4 switch platform with a configurable dim1:dim2 BW ratio. */
Topology
sweepTopology(double bw1_gbps, double bw2_gbps)
{
    DimensionConfig d1, d2;
    d1.kind = d2.kind = DimKind::Switch;
    d1.size = d2.size = 4;
    d1.link_bw_gbps = bw1_gbps;
    d2.link_bw_gbps = bw2_gbps;
    d1.links_per_npu = d2.links_per_npu = 1;
    d1.step_latency_ns = d2.step_latency_ns = 100.0;
    return Topology("sweep-4x4", {d1, d2});
}

} // namespace

int
main()
{
    bench::printHeader(
        "BW-distribution scenarios on a 4x4 platform (1 GB All-Reduce)",
        "Sec 6.3 (Just-Enough / Over- / Under-Provisioned)");

    stats::CsvWriter csv(bench::csvPath("insights_bw_distribution"));
    csv.writeRow({"bw1_gbps", "bw2_gbps", "ratio", "scenario",
                  "baseline_util", "themis_util", "themis_speedup"});

    // BW1 fixed at 800 Gb/s; sweep BW2. Just-Enough at BW2 = BW1/P1.
    const double bw1 = 800.0;
    const std::vector<double> bw2_values{50.0, 100.0, 200.0, 400.0,
                                         800.0, 1600.0};
    stats::TextTable t({"BW2 (Gb/s)", "BW1/(P1*BW2)", "Scenario",
                        "Baseline util", "Themis+SCF util",
                        "Themis speedup"});
    for (double bw2 : bw2_values) {
        const Topology topo = sweepTopology(bw1, bw2);
        const auto pair = classifyPair(topo, 0, 1);
        const auto base = bench::runAllReduce(
            topo, runtime::baselineConfig(), 1.0e9);
        const auto scf = bench::runAllReduce(
            topo, runtime::themisScfConfig(), 1.0e9);
        t.addRow({fmtDouble(bw2, 0), fmtDouble(pair.ratio, 2),
                  provisionScenarioName(pair.scenario),
                  fmtPercent(base.weighted_util),
                  fmtPercent(scf.weighted_util),
                  fmtDouble(base.time / scf.time, 2) + "x"});
        csv.writeRow({fmtDouble(bw1, 0), fmtDouble(bw2, 0),
                      fmtDouble(pair.ratio, 4),
                      provisionScenarioName(pair.scenario),
                      fmtDouble(base.weighted_util, 4),
                      fmtDouble(scf.weighted_util, 4),
                      fmtDouble(base.time / scf.time, 4)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf(
        "Reading:\n"
        " - BW2 < 200 Gb/s (ratio > 1, Under-Provisioned): even Themis "
        "cannot lift the\n   weighted utilization to 100%% — dim1 has "
        "more bandwidth than any schedule can\n   load. Prohibited "
        "design points.\n"
        " - BW2 = 200 Gb/s (ratio 1, Just-Enough): the baseline is "
        "already near-optimal.\n"
        " - BW2 > 200 Gb/s (ratio < 1, Over-Provisioned): the baseline "
        "strands dim2's\n   excess bandwidth; Themis redistributes "
        "chunks and speeds up accordingly.\n");
    return 0;
}
