/**
 * @file
 * Simulator-core microbenchmark with machine-readable output.
 *
 * Measures the discrete-event core on the hot patterns the figure
 * harnesses stress — channel completion cascades at high concurrency
 * and raw event-queue throughput — and writes
 * bench_results/BENCH_core.json so future PRs can track the perf
 * trajectory. A faithful copy of the seed's O(n)-per-event channel
 * (linear scan over a std::map of active transfers) runs the same
 * workloads as the reference, giving a before/after speedup without
 * checking out old revisions.
 *
 * The ns/event series over 100 -> 10k concurrent transfers is the
 * asymptotic check: the GPS virtual-time channel should stay near-flat
 * (O(log n)) where the legacy channel grows linearly.
 */

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/event_queue.hpp"
#include "sim/shared_channel.hpp"

using namespace themis;

namespace {

/**
 * The seed implementation of the processor-sharing channel, kept as
 * the benchmark reference: advanceTo / reschedule / the completion
 * scan all iterate every active transfer.
 */
class LegacyChannel
{
  public:
    using Callback = std::function<void()>;

    LegacyChannel(sim::EventQueue& queue, Bandwidth capacity)
        : queue_(queue), capacity_(capacity),
          last_update_(queue.now())
    {
    }

    void
    begin(Bytes bytes, Callback on_done)
    {
        advanceTo(queue_.now());
        active_.emplace(next_id_++, Transfer{bytes, std::move(on_done)});
        if (active_.size() > peak_active_)
            peak_active_ = active_.size();
        reschedule();
    }

    Bytes progressedBytes() const { return progressed_bytes_; }
    std::size_t peakActiveCount() const { return peak_active_; }

  private:
    struct Transfer
    {
        Bytes remaining;
        Callback on_done;
    };

    static constexpr Bytes kDrainEps = 1e-6;
    static constexpr TimeNs kTimeSliver = 1e-3;

    void
    advanceTo(TimeNs t)
    {
        const TimeNs dt = t - last_update_;
        last_update_ = t;
        if (dt <= 0.0 || active_.empty())
            return;
        const double rate =
            capacity_ / static_cast<double>(active_.size());
        for (auto& [id, transfer] : active_) {
            const Bytes progress = transfer.remaining < rate * dt
                                       ? transfer.remaining
                                       : rate * dt;
            transfer.remaining -= progress;
            progressed_bytes_ += progress;
        }
    }

    void
    reschedule()
    {
        if (pending_event_ != 0) {
            queue_.cancel(pending_event_);
            pending_event_ = 0;
        }
        if (active_.empty())
            return;
        Bytes min_remaining = -1.0;
        for (const auto& [id, transfer] : active_) {
            if (min_remaining < 0.0 ||
                transfer.remaining < min_remaining)
                min_remaining = transfer.remaining;
        }
        const double rate =
            capacity_ / static_cast<double>(active_.size());
        const TimeNs eta =
            min_remaining <= kDrainEps ? 0.0 : min_remaining / rate;
        pending_event_ =
            queue_.scheduleAfter(eta, [this] { onCompletionEvent(); });
    }

    void
    onCompletionEvent()
    {
        pending_event_ = 0;
        advanceTo(queue_.now());
        Bytes threshold = kDrainEps;
        Bytes min_remaining = -1.0;
        for (const auto& [id, transfer] : active_) {
            if (min_remaining < 0.0 ||
                transfer.remaining < min_remaining)
                min_remaining = transfer.remaining;
        }
        if (min_remaining > threshold &&
            min_remaining / capacity_ < kTimeSliver) {
            threshold = min_remaining;
        }
        std::vector<Callback> done;
        for (auto it = active_.begin(); it != active_.end();) {
            if (it->second.remaining <= threshold) {
                progressed_bytes_ += it->second.remaining;
                done.push_back(std::move(it->second.on_done));
                it = active_.erase(it);
            } else {
                ++it;
            }
        }
        for (auto& cb : done)
            cb();
        if (pending_event_ == 0)
            reschedule();
    }

    sim::EventQueue& queue_;
    Bandwidth capacity_;
    std::map<std::uint64_t, Transfer> active_;
    std::uint64_t next_id_ = 1;
    TimeNs last_update_ = 0.0;
    sim::EventQueue::EventId pending_event_ = 0;
    Bytes progressed_bytes_ = 0.0;
    std::size_t peak_active_ = 0;
};

struct Measurement
{
    std::string impl;
    int transfers = 0;
    std::size_t events = 0;
    double wall_ns = 0.0;
    double ns_per_event = 0.0;
    double events_per_sec = 0.0;
    std::size_t peak_active = 0;
    Bytes progressed = 0.0;
};

/**
 * The concurrency workload: @p n transfers of distinct sizes all
 * active at once, so every completion reshapes the shared rate. The
 * event count is ~n, making wall/events the per-event cost at that
 * concurrency level.
 */
template <typename Channel>
Measurement
runChannelWorkload(const char* impl, int n)
{
    Measurement best;
    for (int rep = 0; rep < 3; ++rep) {
        sim::EventQueue queue;
        Channel channel(queue, 100.0);
        int completions = 0;
        const double t0 = bench::nowNs();
        for (int i = 0; i < n; ++i) {
            channel.begin(1000.0 * (i + 1),
                          [&completions] { ++completions; });
        }
        const std::size_t events = queue.run();
        const double wall = bench::nowNs() - t0;
        if (completions != n)
            THEMIS_PANIC("lost completions: " << completions << "/"
                                              << n);
        if (rep == 0 || wall < best.wall_ns) {
            best.impl = impl;
            best.transfers = n;
            best.events = events;
            best.wall_ns = wall;
            best.ns_per_event =
                wall / static_cast<double>(events);
            best.events_per_sec =
                static_cast<double>(events) / (wall * 1e-9);
            best.peak_active = channel.peakActiveCount();
            best.progressed = channel.progressedBytes();
        }
    }
    return best;
}

/** Raw event-queue throughput: schedule-heavy, no channel involved. */
Measurement
runQueueWorkload(int n)
{
    Measurement best;
    for (int rep = 0; rep < 3; ++rep) {
        sim::EventQueue queue;
        long sum = 0;
        const double t0 = bench::nowNs();
        for (int i = 0; i < n; ++i) {
            queue.schedule(static_cast<double>((i * 37) % 1000),
                           [&sum, i] { sum += i; });
        }
        const std::size_t events = queue.run();
        const double wall = bench::nowNs() - t0;
        if (sum != static_cast<long>(n) * (n - 1) / 2)
            THEMIS_PANIC("event queue dropped handlers");
        if (rep == 0 || wall < best.wall_ns) {
            best.impl = "event_queue";
            best.transfers = n;
            best.events = events;
            best.wall_ns = wall;
            best.ns_per_event = wall / static_cast<double>(events);
            best.events_per_sec =
                static_cast<double>(events) / (wall * 1e-9);
        }
    }
    return best;
}

void
appendJson(std::string& out, const Measurement& m, bool last)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"impl\": \"%s\", \"transfers\": %d, \"events\": %zu, "
        "\"wall_ns\": %.0f, \"ns_per_event\": %.1f, "
        "\"events_per_sec\": %.0f, \"peak_active\": %zu}%s\n",
        m.impl.c_str(), m.transfers, m.events, m.wall_ns,
        m.ns_per_event, m.events_per_sec, m.peak_active,
        last ? "" : ",");
    out += buf;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Simulator-core microbenchmark (GPS channel vs seed O(n) scan)",
        "perf infrastructure (BENCH_core.json)");

    // n=16 sits exactly at the channel's inline finish-heap capacity:
    // the whole workload (including every rebase batch) runs without
    // a single pending-set heap allocation, so this row tracks the
    // small-vector fast path; the larger scales track the asymptote.
    const std::vector<int> scales{16, 100, 1000, 10000};
    std::vector<Measurement> gps, legacy;
    for (int n : scales) {
        gps.push_back(
            runChannelWorkload<sim::SharedChannel>("gps", n));
        legacy.push_back(runChannelWorkload<LegacyChannel>("legacy", n));
        const double conservation_gap =
            std::abs(gps.back().progressed - legacy.back().progressed);
        THEMIS_ASSERT(conservation_gap < 1.0,
                      "GPS/legacy byte accounting diverged by "
                          << conservation_gap << " bytes at n=" << n);
    }
    const Measurement queue_run = runQueueWorkload(200000);

    stats::TextTable t({"Concurrent transfers", "legacy ns/event",
                        "GPS ns/event", "speedup", "peak active"});
    double speedup_1k = 0.0;
    for (std::size_t i = 0; i < scales.size(); ++i) {
        const double speedup = legacy[i].wall_ns / gps[i].wall_ns;
        if (scales[i] == 1000)
            speedup_1k = speedup;
        t.addRow({std::to_string(scales[i]),
                  fmtDouble(legacy[i].ns_per_event, 1),
                  fmtDouble(gps[i].ns_per_event, 1),
                  fmtDouble(speedup, 2) + "x",
                  std::to_string(gps[i].peak_active)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("event queue: %.0f events/sec (%.1f ns/event, "
                "%zu events)\n\n",
                queue_run.events_per_sec, queue_run.ns_per_event,
                queue_run.events);

    std::string json = "{\n  \"bench\": \"core_microbench\",\n";
    json += "  \"channel\": [\n";
    for (std::size_t i = 0; i < gps.size(); ++i)
        appendJson(json, gps[i], false);
    for (std::size_t i = 0; i < legacy.size(); ++i)
        appendJson(json, legacy[i], i + 1 == legacy.size());
    json += "  ],\n  \"event_queue\": [\n";
    appendJson(json, queue_run, true);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"speedup_1k_transfers\": %.2f\n}\n",
                  speedup_1k);
    json += buf;

    const std::string path = bench::resultPath("BENCH_core.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s (speedup at 1k transfers: %.2fx)\n",
                path.c_str(), speedup_1k);
    return 0;
}
