/**
 * @file
 * Simulator validation: the dimension-granular runtime used by every
 * figure harness is cross-checked against the per-NPU message-passing
 * backend on the full 1024-NPU Table 2 platforms. On these symmetric
 * platforms the two must agree exactly (the paper's Sec 5.1 accuracy
 * argument); the bench also demonstrates the Sec 4.6.2 consistency
 * mechanism under injected runtime skew.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "core/themis_scheduler.hpp"
#include "npu/npu_machine.hpp"

using namespace themis;

int
main()
{
    bench::printHeader(
        "Backend cross-validation (dimension-granular vs per-NPU)",
        "Sec 5.1 accuracy argument + Sec 4.6.2 consistency");

    stats::CsvWriter csv(bench::csvPath("validation_npu"));
    csv.writeRow({"topology", "frontend_us", "per_npu_us",
                  "relative_error", "skew_deadlocks_of_5",
                  "enforced_deadlocks_of_5"});

    stats::TextTable t({"Topology", "Frontend", "Per-NPU (1024 NPUs)",
                        "Error", "Skew deadlocks", "Enforced"});
    for (const auto& topo : presets::nextGenTopologies()) {
        const Bytes size = 2.0e8;
        const int chunks = 16;
        const auto model = LatencyModel::fromTopology(topo);
        ThemisScheduler sched(model);
        const auto schedules = sched.scheduleCollective(
            CollectiveType::AllReduce, size, chunks);

        const auto frontend = bench::runAllReduce(
            topo, runtime::themisScfConfig(), size, chunks);
        const auto per_npu = npu::simulatePerNpu(
            topo, CollectiveType::AllReduce, schedules);
        const double err =
            std::abs(per_npu.makespan - frontend.time) / frontend.time;

        // Consistency under skew: free-running vs enforced order.
        ConsistencyPlanner planner(model, IntraDimPolicy::Scf);
        const auto plan = planner.plan(schedules);
        int free_deadlocks = 0, enforced_deadlocks = 0;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            npu::NpuSimConfig cfg;
            cfg.max_skew_ns = 20000.0;
            cfg.seed = seed;
            if (!npu::simulatePerNpu(topo, CollectiveType::AllReduce,
                                     schedules, cfg)
                     .completed) {
                ++free_deadlocks;
            }
            cfg.enforced_order = plan.order;
            if (!npu::simulatePerNpu(topo, CollectiveType::AllReduce,
                                     schedules, cfg)
                     .completed) {
                ++enforced_deadlocks;
            }
        }

        t.addRow({topo.name(), fmtTime(frontend.time),
                  fmtTime(per_npu.makespan), fmtPercent(err),
                  std::to_string(free_deadlocks) + "/5",
                  std::to_string(enforced_deadlocks) + "/5"});
        csv.writeRow({topo.name(), fmtDouble(frontend.time / kUs, 2),
                      fmtDouble(per_npu.makespan / kUs, 2),
                      fmtDouble(err, 6),
                      std::to_string(free_deadlocks),
                      std::to_string(enforced_deadlocks)});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "\nReading: zero error confirms the symmetric-platform "
        "equivalence every figure\nharness relies on. Under injected "
        "per-NPU skew, free-running queues can wedge\n(different NPUs "
        "pick different chunk orders, Sec 4.6.2); the enforced\n"
        "pre-simulated order never does.\n");
    return 0;
}
