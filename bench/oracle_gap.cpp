/**
 * @file
 * How close is Algorithm 1's greedy to the best possible schedule
 * distribution? Compares, per platform, the bottleneck dimension load
 * of (a) the baseline pure order, (b) Themis's greedy tracker after
 * 64 chunks, and (c) the LP-optimal fractional mix over all D! orders
 * (core/optimal_mix.hpp). Not in the paper — it quantifies how much
 * headroom the greedy leaves (answer: almost none).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "core/optimal_mix.hpp"
#include "core/themis_scheduler.hpp"

using namespace themis;

int
main()
{
    bench::printHeader(
        "Greedy vs LP-optimal chunk distribution (1 GB All-Reduce)",
        "beyond the paper: optimality gap of Algorithm 1");

    stats::CsvWriter csv(bench::csvPath("oracle_gap"));
    csv.writeRow({"topology", "baseline_ms", "themis_ms", "optimal_ms",
                  "greedy_gap_percent"});

    stats::TextTable t({"Topology", "Baseline bottleneck",
                        "Themis greedy", "LP optimum", "Greedy gap"});
    const Bytes size = 1.0e9;
    for (const auto& topo : presets::nextGenTopologies()) {
        const auto model = LatencyModel::fromTopology(topo);

        // Baseline: every chunk on the identity order.
        std::vector<int> fwd(static_cast<std::size_t>(model.numDims()));
        for (std::size_t i = 0; i < fwd.size(); ++i)
            fwd[i] = static_cast<int>(i);
        std::vector<int> rev(fwd.rbegin(), fwd.rend());
        const auto base_loads = model.stageLoads(
            size, makeStages(CollectiveType::AllReduce, fwd, rev));
        const double base_max =
            *std::max_element(base_loads.begin(), base_loads.end());

        // Themis greedy (N*B accounting; AG mirror doubles loads).
        ThemisConfig cfg;
        cfg.init_loads_with_fixed_delay = false;
        ThemisScheduler sched(model, cfg);
        sched.scheduleCollective(CollectiveType::AllReduce, size, 64);
        const auto& loads = sched.trackedLoads();
        const double themis_max =
            2.0 * *std::max_element(loads.begin(), loads.end());

        // LP optimum.
        const auto opt =
            optimalStaticMix(model, CollectiveType::AllReduce);
        const double opt_max = opt.balanced_load * size;

        const double gap = (themis_max - opt_max) / opt_max;
        t.addRow({topo.name(), fmtTime(base_max), fmtTime(themis_max),
                  fmtTime(opt_max), fmtPercent(gap)});
        csv.writeRow({topo.name(), fmtDouble(base_max / kMs, 4),
                      fmtDouble(themis_max / kMs, 4),
                      fmtDouble(opt_max / kMs, 4),
                      fmtDouble(gap * 100.0, 2)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nReading: with 64 chunks the greedy's bottleneck "
                "load sits within a few percent\nof the LP optimum — "
                "searching the (D!*D!)^C schedule space (Sec 4.1) "
                "would buy\nalmost nothing over Algorithm 1.\n");
    return 0;
}
