/**
 * @file
 * Ablations of Themis's design choices (DESIGN.md Sec 6), none of
 * which the paper evaluates separately:
 *
 *  1. the robustness threshold (Algorithm 1 line 19),
 *  2. seeding tracker loads with the fixed delays A_K (Sec 4.4),
 *  3. accounting the mirrored AG pass in the tracker,
 *  4. carrying tracker loads across collectives vs resetting,
 *  5. enforced-order planning: exact shadow simulation vs the paper's
 *     fast serial pre-simulation (Sec 4.6.2).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace themis;

namespace {

runtime::RuntimeConfig
variant(bool use_threshold, bool init_fixed, bool account_ag,
        bool carry)
{
    auto cfg = runtime::themisScfConfig();
    cfg.themis.use_threshold = use_threshold;
    cfg.themis.init_loads_with_fixed_delay = init_fixed;
    cfg.themis.account_ag_pass = account_ag;
    cfg.themis.carry_load_across_collectives = carry;
    return cfg;
}

} // namespace

int
main()
{
    bench::printHeader("Scheduler ablations",
                       "DESIGN.md design-choice index (beyond paper)");

    const std::vector<Bytes> sizes{100.0e6, 1.0e9};
    const std::vector<Topology> topos{presets::make3DSwSwSwHomo(),
                                      presets::make4DRingFcRingSw()};

    struct Variant
    {
        const char* name;
        runtime::RuntimeConfig cfg;
    };
    const std::vector<Variant> variants{
        {"Themis+SCF (paper defaults)",
         variant(true, true, false, false)},
        {"  - without threshold", variant(false, true, false, false)},
        {"  - without A_K load seeding",
         variant(true, false, false, false)},
        {"  - accounting the AG pass too",
         variant(true, true, true, false)},
        {"  - carrying loads across collectives",
         variant(true, true, false, true)},
    };

    stats::CsvWriter csv(bench::csvPath("ablation_scheduler"));
    csv.writeRow({"topology", "size_mb", "variant", "time_us",
                  "avg_util"});

    for (const auto& topo : topos) {
        for (Bytes size : sizes) {
            std::printf("%s, %s All-Reduce\n", topo.name().c_str(),
                        fmtBytes(size).c_str());
            stats::TextTable t({"Variant", "Time", "Avg util"});
            for (const auto& v : variants) {
                const auto run =
                    bench::runAllReduce(topo, v.cfg, size);
                t.addRow({v.name, fmtTime(run.time),
                          fmtPercent(run.weighted_util)});
                csv.writeRow({topo.name(), fmtDouble(size / kMB, 0),
                              v.name, fmtDouble(run.time / kUs, 2),
                              fmtDouble(run.weighted_util, 4)});
            }
            std::printf("%s\n", t.render().c_str());
        }
    }

    // Enforced-order planner comparison (Sec 4.6.2).
    std::printf("Consistency enforcement cost (200 MB All-Reduce)\n");
    stats::TextTable t({"Topology", "Policy (free-running)",
                        "Enforced (shadow sim)",
                        "Enforced (fast serial)"});
    for (const auto& topo : presets::nextGenTopologies()) {
        auto cfg = runtime::themisScfConfig();
        const auto policy = bench::runAllReduce(topo, cfg, 2.0e8);
        cfg.enforce_consistent_order = true;
        cfg.order_planner = runtime::OrderPlanner::ShadowSim;
        const auto shadow = bench::runAllReduce(topo, cfg, 2.0e8);
        cfg.order_planner = runtime::OrderPlanner::FastSerial;
        const auto serial = bench::runAllReduce(topo, cfg, 2.0e8);
        t.addRow({topo.name(), fmtTime(policy.time),
                  fmtTime(shadow.time), fmtTime(serial.time)});
        csv.writeRow({topo.name(), "200", "enforced_shadow",
                      fmtDouble(shadow.time / kUs, 2),
                      fmtDouble(shadow.weighted_util, 4)});
        csv.writeRow({topo.name(), "200", "enforced_fast_serial",
                      fmtDouble(serial.time / kUs, 2),
                      fmtDouble(serial.weighted_util, 4)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nReading: the threshold and A_K seeding protect "
                "small/latency-bound collectives;\nAG-pass accounting "
                "only rescales tracked loads (same ranking); shadow-"
                "simulated\nenforcement is free, the paper's fast "
                "serial planner pays head-of-line blocking.\n");
    return 0;
}
