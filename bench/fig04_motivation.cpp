/**
 * @file
 * Reproduces Fig 4: normalized end-to-end training runtime as a
 * function of average network bandwidth utilization, for ResNet-152,
 * GNMT and Transformer-1T on the current 2D platform plus the six
 * next-gen platforms. Bold dots mark the utilization the baseline
 * collective scheduling actually achieves.
 *
 * Methodology (as in the paper): compute time is fixed across
 * platforms; communication time scales inversely with the achieved
 * utilization, reaching the Ideal at 100% and pure compute at
 * infinite bandwidth. Runtimes are normalized to the slowest platform
 * (current 2D) at 10% utilization.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

struct WorkloadPoint
{
    TimeNs compute = 0.0;       ///< fwd+bwd compute per iteration
    TimeNs ideal_comm = 0.0;    ///< exposed comm at 100% utilization
    TimeNs baseline_time = 0.0; ///< simulated baseline iteration
    double baseline_util = 0.0; ///< measured baseline avg BW util
};

WorkloadPoint
measure(const Topology& topo, const std::string& workload)
{
    WorkloadPoint p;
    {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo,
                                  runtime::baselineConfig());
        workload::TrainingLoop loop(comm, models::byName(workload));
        const auto it = loop.runIteration();
        comm.finalizeStats();
        p.compute = it.fwd_compute + it.bwd_compute;
        p.baseline_time = it.total;
        p.baseline_util = comm.utilization().weightedUtilization();
        // Ideal communication: each issued collective at pooled BW.
        for (const auto& rec : comm.records()) {
            p.ideal_comm += idealCollectiveTime(
                rec.type, rec.size, comm.modelForScope(rec.scope));
        }
    }
    return p;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Normalized runtime vs average BW utilization",
        "Fig 4 (runtime curves + baseline-scheduling dots)");

    const std::vector<std::string> workloads{"ResNet-152", "GNMT",
                                             "Transformer-1T"};
    const std::vector<double> utils{0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9, 1.0};

    stats::CsvWriter csv(bench::csvPath("fig04_motivation"));
    csv.writeRow({"workload", "topology", "bw_util",
                  "normalized_runtime", "is_baseline_point"});

    for (const auto& workload : workloads) {
        std::printf("%s\n", workload.c_str());
        // Measure every platform; normalize to current-2D at 10%.
        std::vector<std::pair<Topology, WorkloadPoint>> points;
        for (const auto& topo : presets::allTopologies())
            points.emplace_back(topo, measure(topo, workload));
        const auto& current = points.front().second;
        const double norm = current.compute + current.ideal_comm / 0.1;

        std::vector<std::string> headers{"Topology"};
        for (double u : utils)
            headers.push_back(fmtPercent(u));
        headers.push_back("Inf");
        headers.push_back("Baseline dot (util -> runtime)");
        stats::TextTable t(headers);
        for (const auto& [topo, p] : points) {
            std::vector<std::string> row{topo.name()};
            for (double u : utils) {
                const double r = (p.compute + p.ideal_comm / u) / norm;
                row.push_back(fmtDouble(r, 3));
                csv.writeRow({workload, topo.name(), fmtDouble(u, 2),
                              fmtDouble(r, 5), "0"});
            }
            row.push_back(fmtDouble(p.compute / norm, 3));
            const double dot =
                (p.compute + p.ideal_comm / p.baseline_util) / norm;
            row.push_back(fmtPercent(p.baseline_util) + " -> " +
                          fmtDouble(dot, 3));
            csv.writeRow({workload, topo.name(),
                          fmtDouble(p.baseline_util, 4),
                          fmtDouble(dot, 5), "1"});
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf(
        "Paper expectation: the current platform sits near ~98%% "
        "utilization (its dim1/dim2\nbandwidth gap hides dim2 "
        "underutilization); next-gen platforms with baseline\n"
        "scheduling land around 35-75%%, leaving a 1.26-1.54x ideal "
        "speedup on the table.\n");
    return 0;
}
