/**
 * @file
 * Themis beyond All-Reduce: the paper designs the scheduler for AR,
 * RS and AG (Sec 4, footnote 4: RS/AG run only their half of the AR
 * stage pipeline) and routes All-to-All through the same runtime
 * (order-invariant volume, so both schedulers coincide). This harness
 * sweeps all four patterns across the Table 2 platforms.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace themis;

int
main()
{
    bench::printHeader(
        "All collective patterns under both schedulers (500 MB)",
        "Sec 4 / footnote 4 (RS and AG use half the AR pipeline)");

    stats::CsvWriter csv(bench::csvPath("collective_types"));
    csv.writeRow({"topology", "collective", "scheduler", "time_us",
                  "avg_util"});

    const std::vector<std::pair<CollectiveType, const char*>> types{
        {CollectiveType::AllReduce, "All-Reduce"},
        {CollectiveType::ReduceScatter, "Reduce-Scatter"},
        {CollectiveType::AllGather, "All-Gather"},
        {CollectiveType::AllToAll, "All-to-All"},
    };

    for (const auto& topo : presets::nextGenTopologies()) {
        std::printf("%s (%s)\n", topo.name().c_str(),
                    topo.sizeString().c_str());
        stats::TextTable t({"Collective", "Baseline", "Themis+SCF",
                            "Speedup", "SCF util"});
        for (const auto& [type, label] : types) {
            const auto base = bench::runCollective(
                topo, runtime::baselineConfig(), type, 5.0e8);
            const auto scf = bench::runCollective(
                topo, runtime::themisScfConfig(), type, 5.0e8);
            t.addRow({label, fmtTime(base.time), fmtTime(scf.time),
                      fmtDouble(base.time / scf.time, 2) + "x",
                      fmtPercent(scf.weighted_util)});
            csv.writeRow({topo.name(), label, "Baseline",
                          fmtDouble(base.time / kUs, 2),
                          fmtDouble(base.weighted_util, 4)});
            csv.writeRow({topo.name(), label, "Themis+SCF",
                          fmtDouble(scf.time / kUs, 2),
                          fmtDouble(scf.weighted_util, 4)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("Reading: RS and AG gain like the AR whose half they "
                "are; All-to-All is\nschedule-invariant (every order "
                "moves the same per-dimension volume), so both\n"
                "schedulers coincide there.\n");
    return 0;
}
