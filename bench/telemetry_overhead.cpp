/**
 * @file
 * Telemetry overhead benchmark: the observability layer must be close
 * to free when armed and exactly free semantically.
 *
 * Three convergence-run cells (replayed training, fully simulated
 * training, and a faulted adaptive run — the cell where every
 * publisher fires: fault edges, retries, re-plans, epoch closes,
 * trace spans). Each cell runs twice per repeat: telemetry off
 * (null sink) and telemetry on (metrics registry + flight recorder +
 * TraceWriter). The binary asserts, per cell:
 *
 *  1. Bit-identity: the instrumented run's results — including the
 *     steady-state fingerprint — equal the bare run's exactly.
 *     Telemetry is a pure observer; any divergence is a bug.
 *  2. Throughput: aggregate simulated-ops/sec with telemetry on stays
 *     within kOverheadFloor (>= 0.90x, i.e. <= 10% overhead) of the
 *     bare runs, using best-of-kRepeats walls to shed scheduler noise.
 *
 * Writes bench_results/BENCH_telemetry.json; tools/bench_trend.py
 * historizes the overhead ratio.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "sim/fault_timeline.hpp"
#include "stats/telemetry/telemetry.hpp"
#include "stats/trace_writer.hpp"
#include "topology/presets.hpp"
#include "workload/convergence.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

constexpr double kOverheadFloor = 0.90; // ops/sec on >= 0.90x off
constexpr int kRepeats = 5;

struct Cell
{
    std::string name;
    int iterations = 8;
    bool replay = true;
    const sim::FaultTimeline* faults = nullptr;
    bool adapt = false;
};

struct CellRun
{
    workload::ConvergenceReport report;
    double wall_ns = 0.0;
    std::size_t trace_events = 0;
    std::size_t metrics = 0;
};

CellRun
runCell(const Topology& topo, const Cell& cell, bool instrumented)
{
    stats::telemetry::Telemetry telem;
    stats::TraceWriter trace;
    telem.trace = &trace;

    sim::EventQueue queue;
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.faults = cell.faults;
    cfg.adaptation.enabled = cell.adapt;
    if (instrumented)
        cfg.telemetry = &telem;
    runtime::CommRuntime comm(queue, topo, cfg);
    workload::TrainingLoop loop(comm, models::byName("DLRM"));
    workload::ConvergenceOptions opts;
    opts.iterations = cell.iterations;
    opts.replay = cell.replay;

    CellRun r;
    const double t0 = bench::nowNs();
    r.report = workload::runConverged(comm, loop, opts);
    r.wall_ns = bench::nowNs() - t0;
    comm.publishTelemetry();
    r.trace_events = trace.eventCount();
    r.metrics = telem.metrics.size();
    return r;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Telemetry overhead (armed vs bare runs)",
        "observability extension: metrics registry, flight recorder "
        "and trace writer must observe without perturbing — "
        "bit-identical results at <= 10% throughput cost");

    const Topology topo = presets::byName("2D-SW_SW");

    sim::FaultTimeline faults;
    faults.addStraggler(0, 1.0e5, 0.5);
    faults.addFlap(1, 2.0e5, 2.0e4);

    std::vector<Cell> cells;
    cells.push_back({"replay", 12, true, nullptr, false});
    cells.push_back({"full-sim", 6, false, nullptr, false});
    cells.push_back({"faults-adapt", 8, true, &faults, true});

    double off_ops_total = 0.0, off_wall_total = 0.0;
    double on_ops_total = 0.0, on_wall_total = 0.0;
    bool all_identical = true;
    std::string cells_json;

    for (const auto& cell : cells) {
        double off_wall = 0.0, on_wall = 0.0;
        CellRun off, on;
        // Best-of-N walls: the work is deterministic, the host is not.
        for (int r = 0; r < kRepeats; ++r) {
            off = runCell(topo, cell, false);
            on = runCell(topo, cell, true);
            off_wall = r == 0 ? off.wall_ns
                              : std::min(off_wall, off.wall_ns);
            on_wall =
                r == 0 ? on.wall_ns : std::min(on_wall, on.wall_ns);
        }

        const bool identical =
            workload::resultsBitIdentical(off.report, on.report) &&
            off.report.steady_fingerprint ==
                on.report.steady_fingerprint;
        all_identical = all_identical && identical;
        THEMIS_ASSERT(identical,
                      "telemetry perturbed cell '" << cell.name
                                                   << "'");
        THEMIS_ASSERT(on.metrics > 0 && on.trace_events > 0,
                      "instrumented cell '"
                          << cell.name
                          << "' published nothing — dead telemetry "
                             "wiring, the comparison is vacuous");

        const double ops = static_cast<double>(off.report.ops);
        off_ops_total += ops;
        off_wall_total += off_wall;
        on_ops_total += ops;
        on_wall_total += on_wall;

        const double ratio = off_wall / on_wall;
        std::printf("  %-13s %6.2f ms bare  %6.2f ms armed  "
                    "(%.2fx, %zu instrument(s), %zu trace event(s), "
                    "fingerprint %016llx)\n",
                    cell.name.c_str(), off_wall / 1e6, on_wall / 1e6,
                    ratio, on.metrics, on.trace_events,
                    static_cast<unsigned long long>(
                        on.report.steady_fingerprint));

        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "%s    {\"cell\": \"%s\", \"bare_wall_ns\": %.0f, "
            "\"armed_wall_ns\": %.0f, \"bit_identical\": %s}",
            cells_json.empty() ? "" : ",\n", cell.name.c_str(),
            off_wall, on_wall, identical ? "true" : "false");
        cells_json += buf;
    }

    const double off_rate = off_ops_total / (off_wall_total * 1e-9);
    const double on_rate = on_ops_total / (on_wall_total * 1e-9);
    const double overhead_ratio = on_rate / off_rate;
    THEMIS_ASSERT(overhead_ratio >= kOverheadFloor,
                  "telemetry costs too much: armed runs at "
                      << overhead_ratio << "x of bare throughput "
                      << "(floor " << kOverheadFloor << "x)");
    std::printf("\naggregate: %.0f ops/sec bare, %.0f ops/sec armed "
                "-> %.3fx (floor %.2fx, asserted); all cells "
                "bit-identical\n",
                off_rate, on_rate, overhead_ratio, kOverheadFloor);

    // ---- JSON ------------------------------------------------------
    char buf[384];
    std::string json = "{\n  \"bench\": \"telemetry_overhead\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"bit_identical\": %s,\n"
                  "  \"events_per_sec_bare\": %.0f,\n"
                  "  \"events_per_sec_armed\": %.0f,\n"
                  "  \"overhead_ratio\": %.4f,\n"
                  "  \"overhead_floor\": %.2f,\n"
                  "  \"cells\": [\n",
                  all_identical ? "true" : "false", off_rate, on_rate,
                  overhead_ratio, kOverheadFloor);
    json += buf;
    json += cells_json;
    json += "\n  ]\n}\n";

    const std::string path = bench::resultPath("BENCH_telemetry.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
