/**
 * @file
 * Paper Sec 4.5 claim, evaluated (the paper argues it but reports no
 * numbers "due to lack of space"): in-network collective offload
 * lowers per-dimension traffic and fixed delay, but the hierarchical
 * pipeline's load imbalance remains — so Themis keeps improving
 * utilization on offload-capable platforms.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace themis;

namespace {

Topology
withOffload(const Topology& topo)
{
    std::vector<DimensionConfig> dims = topo.dims();
    for (auto& d : dims) {
        if (d.kind == DimKind::Switch)
            d.in_network_offload = true;
    }
    return Topology(topo.name() + "+offload", std::move(dims));
}

} // namespace

int
main()
{
    bench::printHeader(
        "In-network collective offload (SHARP-class switches)",
        "Sec 4.5 (qualitative claim; no paper numbers to match)");

    stats::CsvWriter csv(bench::csvPath("extension_offload"));
    csv.writeRow({"topology", "offload", "scheduler", "size_mb",
                  "time_us", "avg_util"});

    stats::TextTable t({"Topology", "Offload", "Baseline",
                        "Themis+SCF", "Themis gain"});
    for (const auto& base_topo : presets::nextGenTopologies()) {
        for (bool offload : {false, true}) {
            const Topology topo =
                offload ? withOffload(base_topo) : base_topo;
            const auto base = bench::runAllReduce(
                topo, runtime::baselineConfig(), 1.0e9);
            const auto scf = bench::runAllReduce(
                topo, runtime::themisScfConfig(), 1.0e9);
            t.addRow({base_topo.name(), offload ? "yes" : "no",
                      fmtTime(base.time), fmtTime(scf.time),
                      fmtDouble(base.time / scf.time, 2) + "x"});
            for (const auto& [label, run] :
                 {std::pair{"Baseline", base},
                  std::pair{"Themis+SCF", scf}}) {
                csv.writeRow({base_topo.name(), offload ? "1" : "0",
                              label, "1000",
                              fmtDouble(run.time / kUs, 2),
                              fmtDouble(run.weighted_util, 4)});
            }
        }
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nReading: offload shrinks absolute times (less "
                "traffic, 2-step latency) but the\nbaseline's "
                "bottleneck-dimension imbalance persists, so Themis's "
                "relative gain\nsurvives — the paper's Sec 4.5 "
                "argument.\n");
    return 0;
}
