/**
 * @file
 * Multi-job cluster contention study (the src/cluster/ subsystem's
 * headline scenarios, in the spirit of CASSINI's interleaved jobs and
 * Metronome's deadline-aware periodic traffic).
 *
 * Four experiments share one binary and one fabric (2D-SW_SW):
 *
 *  1. Conservation — a 3-job mix (two training tenants + one bounded
 *     periodic-inference tenant) runs under priority weight ladders
 *     x1/x4/x8. Every cell completes identical per-job traffic, so
 *     each job's wire-level progressed bytes must match across cells
 *     (per-tenant conservation: the weights only redistribute *when*
 *     bytes move, never whose they are), and the per-job bytes must
 *     sum to the fabric total within each cell.
 *
 *  2. Deadline tiers — a periodic-inference job with a tight
 *     per-request deadline contends with bulk training traffic,
 *     under the uniform policy vs tiered(8). The tiered run must
 *     improve the inference job's deadline-hit rate while moving the
 *     same total fabric bytes (Metronome's claim: priority buys
 *     latency, not throughput).
 *
 *  3. Offset search — two identical training jobs, zero-offset vs the
 *     CASSINI-style phase-offset search. Interleaving the jobs'
 *     communication bursts must reduce aggregate iteration time with
 *     no priority knob at all.
 *
 *  4. Period-k cycle replay — a mixed-period lockstep mix (training +
 *     open-ended periodic tenants at a 2:3 cadence, stepping
 *     hyper-period 6) runs 120 rounds fully simulated and again with
 *     steady-cycle replay. The replayed run must be bit-identical and
 *     at least 5x faster in wall-clock; the speedup feeds the per-PR
 *     trend gate.
 *
 * All multi-cell experiments fan across the SweepRunner's workers.
 * Writes bench_results/BENCH_cluster.json for per-PR trend tracking.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "models/model_zoo.hpp"

using namespace themis;

namespace {

constexpr double kRelTol = 1e-6;

/** Conservation / deadline mixes run this many training iterations. */
constexpr int kTrainIters = 3;

/** Bounded inference stream: fixed request count for conservation. */
constexpr int kInferRequests = 10;

runtime::RuntimeConfig
clusterConfig(double ratio, PlanCache* cache)
{
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.scheduler = SchedulerKind::ThemisPriority;
    cfg.priority = ratio > 0.0 ? PriorityPolicy::tiered(ratio)
                               : PriorityPolicy::uniform();
    cfg.plan_cache = cache;
    return cfg;
}

/** The conservation mix: 2 training tenants + 1 bounded periodic. */
std::vector<cluster::JobSpec>
conservationMix()
{
    std::vector<cluster::JobSpec> specs;
    specs.push_back(cluster::JobSpec::training(models::byName("DLRM"),
                                               kTrainIters));
    specs.push_back(cluster::JobSpec::training(models::byName("GNMT"),
                                               kTrainIters));
    cluster::JobSpec infer = cluster::JobSpec::periodicInference(
        /*request_size=*/1.6e7, /*period=*/4.0e5, /*deadline=*/6.0e5,
        /*arrival=*/0.0,
        /*tier=*/static_cast<int>(PriorityTier::Urgent));
    infer.max_requests = kInferRequests;
    specs.push_back(infer);
    return specs;
}

/** Deadline mix: bulk training vs tight-deadline periodic inference. */
std::vector<cluster::JobSpec>
deadlineMix()
{
    std::vector<cluster::JobSpec> specs;
    cluster::JobSpec train = cluster::JobSpec::training(
        models::byName("DLRM"), kTrainIters, /*arrival=*/0.0,
        /*tier=*/static_cast<int>(PriorityTier::Bulk));
    specs.push_back(train);
    cluster::JobSpec infer = cluster::JobSpec::periodicInference(
        /*request_size=*/3.2e7, /*period=*/3.0e5, /*deadline=*/5.0e5,
        /*arrival=*/0.0,
        /*tier=*/static_cast<int>(PriorityTier::Urgent));
    infer.max_requests = kInferRequests;
    specs.push_back(infer);
    return specs;
}

struct CellOutcome
{
    cluster::ClusterReport report;
};

} // namespace

int
main()
{
    bench::printHeader(
        "Multi-job cluster contention grid",
        "CASSINI-style interleaving + Metronome-style deadline tiers "
        "on one shared fabric (src/cluster/)");

    const Topology topo = presets::byName("2D-SW_SW");
    PlanCache cache;
    std::size_t total_cells = 0;
    const double t0 = bench::nowNs();

    // ---------------------------------------------------- conservation
    const std::vector<double> ratios = {1.0, 4.0, 8.0};
    const auto conservation = sim::sweepIndexed(
        ratios.size(),
        [&](std::size_t i, sim::EventQueue& queue) {
            cluster::Cluster cell(queue, topo,
                                  clusterConfig(ratios[i], &cache),
                                  conservationMix());
            return CellOutcome{cell.run()};
        },
        sim::SweepOptions{});
    total_cells += conservation.size();

    std::printf("3-job mix (train:DLRM + train:GNMT + infer, %d "
                "iters / %d requests) across weight ladders:\n\n",
                kTrainIters, kInferRequests);
    stats::TextTable ctable({"Weight ratio", "Makespan", "Fabric util",
                             "Job0 GB", "Job1 GB", "Job2 GB",
                             "Sum==total"});
    bool bytes_conserved = true;
    const auto& base_jobs = conservation.front().report.jobs;
    for (std::size_t i = 0; i < conservation.size(); ++i) {
        const auto& rep = conservation[i].report;
        Bytes sum = 0.0;
        for (const auto& j : rep.jobs) {
            sum += j.progressed;
            // Per-tenant conservation across the ratio axis.
            const Bytes expect =
                base_jobs[static_cast<std::size_t>(j.job)].progressed;
            if (std::abs(j.progressed - expect) > kRelTol * expect)
                bytes_conserved = false;
        }
        const bool sums =
            std::abs(sum - rep.total_bytes) <=
            kRelTol * rep.total_bytes;
        if (!sums)
            bytes_conserved = false;
        ctable.addRow({"x" + fmtDouble(ratios[i], 0),
                       fmtTime(rep.makespan),
                       fmtPercent(rep.fabric_utilization),
                       fmtDouble(rep.jobs[0].progressed / 1e9, 3),
                       fmtDouble(rep.jobs[1].progressed / 1e9, 3),
                       fmtDouble(rep.jobs[2].progressed / 1e9, 3),
                       sums ? "yes" : "NO"});
    }
    std::printf("%s\n", ctable.render().c_str());
    THEMIS_ASSERT(bytes_conserved,
                  "per-job bytes diverged across weight ratios");

    // -------------------------------------------------- deadline tiers
    const auto deadline = sim::sweepIndexed(
        std::size_t{2},
        [&](std::size_t i, sim::EventQueue& queue) {
            // Cell 0: uniform policy; cell 1: tiered(8).
            cluster::Cluster cell(
                queue, topo,
                clusterConfig(i == 0 ? 0.0 : 8.0, &cache),
                deadlineMix());
            return CellOutcome{cell.run()};
        },
        sim::SweepOptions{});
    total_cells += deadline.size();

    const auto& uni = deadline[0].report;
    const auto& tier = deadline[1].report;
    const double uni_hit = uni.jobs[1].deadline_hit_rate;
    const double tier_hit = tier.jobs[1].deadline_hit_rate;
    const bool deadline_improved = tier_hit > uni_hit;
    const bool deadline_bytes_unchanged =
        std::abs(uni.total_bytes - tier.total_bytes) <=
        kRelTol * uni.total_bytes;
    std::printf("deadline tiers (bulk train:DLRM vs urgent periodic "
                "inference, deadline %.0f us):\n\n",
                5.0e5 / 1e3);
    stats::TextTable dtable({"Policy", "Hit rate", "Mean latency",
                             "Makespan", "GB moved"});
    dtable.addRow({"uniform", fmtPercent(uni_hit),
                   fmtTime(uni.jobs[1].mean_latency),
                   fmtTime(uni.makespan),
                   fmtDouble(uni.total_bytes / 1e9, 3)});
    dtable.addRow({"tiered x8", fmtPercent(tier_hit),
                   fmtTime(tier.jobs[1].mean_latency),
                   fmtTime(tier.makespan),
                   fmtDouble(tier.total_bytes / 1e9, 3)});
    std::printf("%s\n", dtable.render().c_str());
    THEMIS_ASSERT(deadline_improved,
                  "tiered priority failed to improve the periodic "
                  "job's deadline-hit rate ("
                      << uni_hit << " -> " << tier_hit << ")");
    THEMIS_ASSERT(deadline_bytes_unchanged,
                  "total fabric bytes changed between uniform and "
                  "tiered runs");

    // --------------------------------------------------- offset search
    std::vector<cluster::JobSpec> twins;
    twins.push_back(cluster::JobSpec::training(models::byName("DLRM"),
                                               4));
    twins.push_back(cluster::JobSpec::training(models::byName("DLRM"),
                                               4));
    cluster::OffsetSearchOptions sopts;
    sopts.steps = 8;
    sopts.iterations = 4;
    const auto search = cluster::searchPhaseOffsets(
        topo, clusterConfig(1.0, &cache), twins, sopts);
    total_cells += search.candidates.size() + 1; // + the solo probe
    const bool offset_improved =
        search.best.metric < search.zero_metric;
    const double offset_gain =
        search.zero_metric / search.best.metric;
    std::printf("offset search (2x train:DLRM, %d candidates):\n\n",
                sopts.steps);
    stats::TextTable otable({"Phase fraction", "Aggregate iter time"});
    for (std::size_t i = 0; i < search.candidates.size(); ++i) {
        otable.addRow(
            {fmtDouble(static_cast<double>(i) / sopts.steps, 3),
             fmtTime(search.candidates[i].metric)});
    }
    std::printf("%s\n  zero-offset %s -> best %s (%.2fx, base period "
                "%s)\n\n",
                otable.render().c_str(),
                fmtTime(search.zero_metric).c_str(),
                fmtTime(search.best.metric).c_str(), offset_gain,
                fmtTime(search.base_period).c_str());
    THEMIS_ASSERT(offset_improved,
                  "phase-offset search failed to beat zero-offset "
                  "arrival");

    // ------------------------------------------------ period-k replay
    constexpr int kCycleRounds = 120;
    constexpr double kCycleSpeedupFloor = 5.0;
    std::vector<cluster::JobSpec> cycle_mix;
    cycle_mix.push_back(cluster::JobSpec::training(
        models::byName("DLRM"), kCycleRounds, /*arrival=*/0.0,
        /*tier=*/static_cast<int>(PriorityTier::Bulk)));
    cycle_mix.push_back(cluster::JobSpec::periodicInference(
        /*request_size=*/1.6e7, /*period=*/2.0e5, /*deadline=*/0.0,
        /*arrival=*/0.0,
        /*tier=*/static_cast<int>(PriorityTier::Urgent)));
    cycle_mix.push_back(cluster::JobSpec::periodicInference(
        /*request_size=*/3.2e7, /*period=*/3.0e5, /*deadline=*/0.0,
        /*arrival=*/0.0,
        /*tier=*/static_cast<int>(PriorityTier::Urgent)));

    auto cycle_run = [&](bool replay, double* out_ms) {
        sim::EventQueue q;
        cluster::Cluster cl(q, topo, clusterConfig(4.0, &cache),
                            cycle_mix);
        workload::ConvergenceOptions copts;
        copts.iterations = kCycleRounds;
        copts.replay = replay;
        const double c0 = bench::nowNs();
        const auto rep = cl.runConverged(copts);
        *out_ms = (bench::nowNs() - c0) / 1e6;
        return rep;
    };
    double cycle_full_ms = 0.0, cycle_fast_ms = 0.0;
    const auto cycle_full = cycle_run(false, &cycle_full_ms);
    const auto cycle_fast = cycle_run(true, &cycle_fast_ms);
    total_cells += 2;

    const bool cycle_identical =
        workload::resultsBitIdentical(cycle_fast, cycle_full);
    const double cycle_speedup = cycle_full_ms / cycle_fast_ms;
    std::printf("period-k cycle replay (train:DLRM + 2:3 periodic "
                "mix, %d lockstep rounds, hyper-period %d):\n\n",
                kCycleRounds, cycle_fast.hyper_period);
    stats::TextTable ytable({"Mode", "Simulated", "Replayed", "Cycle",
                             "Sim time", "Wall"});
    ytable.addRow({"full", std::to_string(cycle_full.epochs_simulated),
                   std::to_string(cycle_full.epochs_replayed), "-",
                   fmtTime(cycle_full.total.total),
                   fmtDouble(cycle_full_ms, 1) + " ms"});
    ytable.addRow({"replay",
                   std::to_string(cycle_fast.epochs_simulated),
                   std::to_string(cycle_fast.epochs_replayed),
                   std::to_string(cycle_fast.cycle_length),
                   fmtTime(cycle_fast.total.total),
                   fmtDouble(cycle_fast_ms, 1) + " ms"});
    std::printf("%s\n  bit-identical: %s; wall speedup %.1fx (floor "
                "%.0fx)\n\n",
                ytable.render().c_str(),
                cycle_identical ? "yes" : "NO", cycle_speedup,
                kCycleSpeedupFloor);
    THEMIS_ASSERT(cycle_fast.cycle_length == 6,
                  "expected a 6-round steady cycle on the 2:3 mix, "
                  "confirmed "
                      << cycle_fast.cycle_length);
    THEMIS_ASSERT(cycle_identical,
                  "period-k cycle replay diverged from full "
                  "simulation");
    THEMIS_ASSERT(cycle_speedup >= kCycleSpeedupFloor,
                  "cycle replay speedup "
                      << cycle_speedup << "x under the floor "
                      << kCycleSpeedupFloor << "x at " << kCycleRounds
                      << " rounds");

    const double wall_ms = (bench::nowNs() - t0) / 1e6;
    const double cells_per_sec = total_cells / (wall_ms * 1e-3);

    // ------------------------------------------------------------ JSON
    stats::CsvWriter csv(bench::csvPath("multi_job_contention"));
    csv.writeRow({"experiment", "cell", "metric", "value"});
    for (std::size_t i = 0; i < conservation.size(); ++i)
        for (const auto& j : conservation[i].report.jobs)
            csv.writeRow({"conservation",
                          "x" + fmtDouble(ratios[i], 0),
                          "job" + std::to_string(j.job) + "_bytes",
                          fmtDouble(j.progressed, 0)});
    csv.writeRow({"deadline", "uniform", "hit_rate",
                  fmtDouble(uni_hit, 4)});
    csv.writeRow({"deadline", "tiered8", "hit_rate",
                  fmtDouble(tier_hit, 4)});
    for (std::size_t i = 0; i < search.candidates.size(); ++i)
        csv.writeRow({"offset", fmtDouble(
                          static_cast<double>(i) / sopts.steps, 3),
                      "aggregate_iter_ns",
                      fmtDouble(search.candidates[i].metric, 1)});
    csv.writeRow({"cycle_replay", "2:3", "speedup",
                  fmtDouble(cycle_speedup, 2)});
    csv.writeRow({"cycle_replay", "2:3", "rounds_replayed",
                  std::to_string(cycle_fast.epochs_replayed)});

    std::string json = "{\n  \"bench\": \"multi_job_contention\",\n";
    {
        char buf[2048];
        std::string jobs_json;
        for (const auto& j : conservation.front().report.jobs) {
            std::snprintf(buf, sizeof(buf),
                          "%s\n      {\"job\": %d, \"bytes\": %.0f}",
                          jobs_json.empty() ? "" : ",", j.job,
                          j.progressed);
            jobs_json += buf;
        }
        std::snprintf(
            buf, sizeof(buf),
            "  \"conservation\": {\n    \"cells\": %zu,\n"
            "    \"bytes_conserved_per_job\": %s,\n"
            "    \"jobs\": [%s\n    ]\n  },\n"
            "  \"deadline\": {\n    \"uniform_hit_rate\": %.4f,\n"
            "    \"tiered_hit_rate\": %.4f,\n"
            "    \"improved\": %s,\n"
            "    \"total_bytes_uniform\": %.0f,\n"
            "    \"total_bytes_tiered\": %.0f,\n"
            "    \"bytes_unchanged\": %s\n  },\n"
            "  \"offset_search\": {\n"
            "    \"zero_metric_ns\": %.1f,\n"
            "    \"best_metric_ns\": %.1f,\n"
            "    \"gain\": %.4f,\n"
            "    \"base_period_ns\": %.1f,\n"
            "    \"improved\": %s\n  },\n",
            conservation.size(), bytes_conserved ? "true" : "false",
            jobs_json.c_str(), uni_hit, tier_hit,
            deadline_improved ? "true" : "false", uni.total_bytes,
            tier.total_bytes,
            deadline_bytes_unchanged ? "true" : "false",
            search.zero_metric, search.best.metric, offset_gain,
            search.base_period, offset_improved ? "true" : "false");
        json += buf;
        std::snprintf(
            buf, sizeof(buf),
            "  \"cycle_replay\": {\n"
            "    \"rounds\": %d,\n"
            "    \"hyper_period\": %d,\n"
            "    \"cycle_length\": %d,\n"
            "    \"rounds_simulated\": %d,\n"
            "    \"rounds_replayed\": %d,\n"
            "    \"full_wall_ms\": %.1f,\n"
            "    \"replay_wall_ms\": %.1f,\n"
            "    \"speedup\": %.2f,\n"
            "    \"bit_identical\": %s\n  },\n"
            "  \"cells\": %zu,\n  \"wall_ms\": %.1f,\n"
            "  \"cells_per_sec\": %.1f\n}\n",
            kCycleRounds, cycle_fast.hyper_period,
            cycle_fast.cycle_length, cycle_fast.epochs_simulated,
            cycle_fast.epochs_replayed, cycle_full_ms, cycle_fast_ms,
            cycle_speedup, cycle_identical ? "true" : "false",
            total_cells, wall_ms, cells_per_sec);
        json += buf;
    }
    const std::string path = bench::resultPath("BENCH_cluster.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("%zu cells in %.1f ms (%.1f cells/sec); per-job bytes "
                "conserved: %s; deadline hit rate %.0f%% -> %.0f%%; "
                "offset-search gain %.2fx\nwrote %s\n",
                total_cells, wall_ms, cells_per_sec,
                bytes_conserved ? "yes" : "NO", 100.0 * uni_hit,
                100.0 * tier_hit, offset_gain, path.c_str());
    return 0;
}
