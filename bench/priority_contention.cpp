/**
 * @file
 * Two-tenant priority contention study (the weighted-fairness
 * dataplane's headline scenario, in the spirit of CASSINI's
 * interleaved jobs and Metronome's priority-aware traffic).
 *
 * Tenant HI issues a chain of small, latency-critical All-Reduces
 * (one issued as the previous completes — a blocking TP/pipeline
 * stream). Tenant LO issues a batch of large bulk All-Reduces at t=0
 * (DP gradient traffic). Both share every dimension of the platform.
 *
 * The grid sweeps topology x priority weight ratio through the
 * SweepRunner (one independent simulation per cell, one plan cache
 * shared across workers). Every cell uses tiered(ratio) — ratio 1
 * separates the classes at unit weights, so the ratio axis isolates
 * the *GPS weight* effect with ready-set tier precedence held
 * constant (the fig12 harness covers weighted-vs-egalitarian
 * equivalence; this grid measures what the weights buy). As the
 * ratio grows, the urgent tenant's mean collective completion time
 * must improve while the aggregate bytes moved stay conserved (every
 * cell completes the same total traffic; the weights only
 * redistribute *when* bytes move). Both properties are asserted, and
 * solo runs of each tenant give the slowdown columns.
 *
 * Writes bench_results/BENCH_priority.json for per-PR trend tracking.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/priority_policy.hpp"

using namespace themis;

namespace {

/**
 * Tenant traffic shape. The urgent collectives use few chunks so
 * their ops are transfer-bound — the regime where the GPS weight
 * (not just ready-set precedence) decides completion time; 64-chunk
 * latency-bound streams are shielded mostly by precedence alone.
 */
constexpr int kHiChainLength = 8;
constexpr Bytes kHiSize = 3.2e7; // 32 MB latency-critical All-Reduce
constexpr int kHiChunks = 8;
constexpr int kLoBatch = 4;
constexpr Bytes kLoSize = 2.56e8; // 256 MB bulk All-Reduce

struct CellResult
{
    TimeNs hi_mean = 0.0;
    TimeNs lo_mean = 0.0;
    TimeNs makespan = 0.0;
    Bytes total_bytes = 0.0;
    double hi_util = 0.0;
    double lo_util = 0.0;
};

/**
 * Run one contention cell. Every cell uses a tiered policy —
 * tiered(1) separates the classes at unit weights, so the ratio axis
 * isolates the *weight* effect with precedence held constant.
 */
CellResult
runCell(sim::EventQueue& queue, const Topology& topo, double ratio,
        PlanCache* cache, bool run_hi, bool run_lo)
{
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.scheduler = SchedulerKind::ThemisPriority;
    cfg.priority = PriorityPolicy::tiered(ratio);
    cfg.plan_cache = cache;
    runtime::CommRuntime comm(queue, topo, cfg);

    int hi_remaining = run_hi ? kHiChainLength : 0;
    std::vector<int> hi_ids, lo_ids;

    std::function<void()> issue_hi = [&] {
        if (hi_remaining == 0)
            return;
        --hi_remaining;
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = kHiSize;
        req.chunks = kHiChunks;
        req.priority_tier = static_cast<int>(PriorityTier::Urgent);
        hi_ids.push_back(comm.issue(req, [&] { issue_hi(); }));
    };
    if (run_hi)
        issue_hi();
    if (run_lo) {
        for (int i = 0; i < kLoBatch; ++i) {
            CollectiveRequest req;
            req.type = CollectiveType::AllReduce;
            req.size = kLoSize;
            req.priority_tier = static_cast<int>(PriorityTier::Bulk);
            lo_ids.push_back(comm.issue(req));
        }
    }
    queue.run();
    comm.finalizeStats();

    CellResult out;
    out.makespan = queue.now();
    for (int id : hi_ids)
        out.hi_mean += comm.record(id).duration();
    if (!hi_ids.empty())
        out.hi_mean /= static_cast<double>(hi_ids.size());
    for (int id : lo_ids)
        out.lo_mean += comm.record(id).duration();
    if (!lo_ids.empty())
        out.lo_mean /= static_cast<double>(lo_ids.size());
    for (int d = 0; d < comm.topology().numDims(); ++d) {
        comm.engine(d).channel().sync();
        out.total_bytes += comm.engine(d).channel().progressedBytes();
    }
    const auto classes = comm.classReports();
    for (const auto& c : classes) {
        if (c.tier == static_cast<int>(PriorityTier::Urgent))
            out.hi_util = c.utilization;
        if (c.tier == static_cast<int>(PriorityTier::Bulk))
            out.lo_util = c.utilization;
    }
    return out;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Two-tenant priority contention grid",
        "weighted-fairness dataplane (Sec 4.3/4.6 urgency gap; "
        "CASSINI/Metronome scenarios)");

    const std::vector<Topology> topologies = {
        presets::byName("2D-SW_SW"),
        presets::byName("3D-SW_SW_SW_homo")};
    const std::vector<double> ratios = {1.0, 2.0, 4.0, 8.0};

    // Cells: per topology, [solo-hi, solo-lo, contended x ratios].
    const std::size_t per_topo = 2 + ratios.size();
    const std::size_t cells = topologies.size() * per_topo;
    PlanCache cache;
    sim::SweepOptions opts;
    opts.threads = sim::SweepRunner(sim::SweepOptions{}).threads();
    const double t0 = bench::nowNs();
    const auto results = sim::sweepIndexed(
        cells,
        [&](std::size_t i, sim::EventQueue& queue) {
            const Topology& topo = topologies[i / per_topo];
            const std::size_t k = i % per_topo;
            if (k == 0)
                return runCell(queue, topo, 1.0, &cache, true, false);
            if (k == 1)
                return runCell(queue, topo, 1.0, &cache, false, true);
            return runCell(queue, topo, ratios[k - 2], &cache, true,
                           true);
        },
        opts);
    const double wall_ms = (bench::nowNs() - t0) / 1e6;

    stats::CsvWriter csv(bench::csvPath("priority_contention"));
    csv.writeRow({"topology", "weight_ratio", "hi_mean_ns",
                  "hi_slowdown", "lo_mean_ns", "lo_slowdown",
                  "makespan_ns", "total_bytes", "hi_util", "lo_util"});

    bool bytes_conserved = true;
    bool hi_improves = true;
    double hi_gain_max = 0.0;
    std::string json =
        "{\n  \"bench\": \"priority_contention\",\n  \"results\": [\n";
    bool first_row = true;
    for (std::size_t t = 0; t < topologies.size(); ++t) {
        const Topology& topo = topologies[t];
        const CellResult& solo_hi = results[t * per_topo];
        const CellResult& solo_lo = results[t * per_topo + 1];
        std::printf("%s — urgent tenant: %dx %s AR chain (%d chunks); "
                    "bulk tenant: %dx %s AR\n",
                    topo.name().c_str(), kHiChainLength,
                    fmtBytes(kHiSize).c_str(), kHiChunks, kLoBatch,
                    fmtBytes(kLoSize).c_str());
        stats::TextTable table({"Weight ratio", "HI mean", "HI slowdn",
                                "LO mean", "LO slowdn", "Makespan",
                                "HI util", "LO util", "GB moved"});
        const CellResult& base = results[t * per_topo + 2]; // ratio 1
        for (std::size_t r = 0; r < ratios.size(); ++r) {
            const CellResult& c = results[t * per_topo + 2 + r];
            const double hi_slow = c.hi_mean / solo_hi.hi_mean;
            const double lo_slow = c.lo_mean / solo_lo.lo_mean;
            table.addRow({"x" + fmtDouble(ratios[r], 0),
                          fmtTime(c.hi_mean), fmtDouble(hi_slow, 2),
                          fmtTime(c.lo_mean), fmtDouble(lo_slow, 2),
                          fmtTime(c.makespan),
                          fmtPercent(c.hi_util),
                          fmtPercent(c.lo_util),
                          fmtDouble(c.total_bytes / 1e9, 2)});
            csv.writeRow({topo.name(), fmtDouble(ratios[r], 0),
                          fmtDouble(c.hi_mean, 1),
                          fmtDouble(hi_slow, 4),
                          fmtDouble(c.lo_mean, 1),
                          fmtDouble(lo_slow, 4),
                          fmtDouble(c.makespan, 1),
                          fmtDouble(c.total_bytes, 0),
                          fmtDouble(c.hi_util, 4),
                          fmtDouble(c.lo_util, 4)});
            // Conservation: every cell completes identical traffic,
            // so total progressed bytes must match the ratio-1 cell
            // to fp tolerance.
            if (std::abs(c.total_bytes - base.total_bytes) >
                1e-6 * base.total_bytes)
                bytes_conserved = false;
            // The widest weight gap must beat the unit-weight split.
            // (Point-to-point monotonicity is not asserted: discrete
            // admission makes the ratio curve locally noisy.)
            if (r + 1 == ratios.size() && c.hi_mean >= base.hi_mean)
                hi_improves = false;
            hi_gain_max = std::max(hi_gain_max,
                                   base.hi_mean / c.hi_mean);

            char buf[512];
            std::snprintf(
                buf, sizeof(buf),
                "%s    {\"topology\": \"%s\", \"ratio\": %.0f, "
                "\"hi_mean_ns\": %.1f, \"hi_slowdown\": %.4f, "
                "\"lo_mean_ns\": %.1f, \"lo_slowdown\": %.4f, "
                "\"total_bytes\": %.0f}",
                first_row ? "" : ",\n", topo.name().c_str(), ratios[r],
                c.hi_mean, hi_slow, c.lo_mean, lo_slow,
                c.total_bytes);
            json += buf;
            first_row = false;
        }
        std::printf("%s  solo: HI mean %s, LO mean %s\n\n",
                    table.render().c_str(),
                    fmtTime(solo_hi.hi_mean).c_str(),
                    fmtTime(solo_lo.lo_mean).c_str());
    }

    THEMIS_ASSERT(bytes_conserved,
                  "aggregate bytes diverged across weight ratios");
    THEMIS_ASSERT(hi_improves,
                  "priority weights failed to help the urgent tenant");

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n  ],\n  \"cells\": %zu,\n  \"wall_ms\": %.1f,\n"
                  "  \"bytes_conserved\": %s,\n"
                  "  \"hi_priority_max_gain\": %.3f\n}\n",
                  cells, wall_ms, bytes_conserved ? "true" : "false",
                  hi_gain_max);
    json += buf;
    const std::string path = bench::resultPath("BENCH_priority.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("%zu cells in %.1f ms; urgent-tenant max gain %.2fx; "
                "bytes conserved: %s\nwrote %s\n",
                cells, wall_ms, hi_gain_max,
                bytes_conserved ? "yes" : "NO", path.c_str());
    return 0;
}
