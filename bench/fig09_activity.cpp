/**
 * @file
 * Reproduces Fig 9: per-dimension frontend activity rate over time
 * for a 1 GB All-Reduce on 3D-SW_SW_SW_homo, in 100 us buckets. The
 * paper: baseline leaves dim2/dim3 mostly inactive; Themis+FIFO
 * shows occasional starvation dips; Themis+SCF stays near-continuous
 * and finishes earliest.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace themis;

namespace {

void
runAndPrint(const Topology& topo, const bench::SchedulerSetup& setup,
            stats::CsvWriter& csv)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, setup.config);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e9;
    req.chunks = 64;
    comm.issue(req);
    queue.run();
    comm.finalizeStats();

    const TimeNs end = queue.now();
    const TimeNs bucket = 100.0 * kUs;
    const auto profile = comm.activity().profile(bucket, end);

    std::printf("%s  (elapsed %s)\n", setup.name.c_str(),
                fmtTime(end).c_str());
    // Render each dimension's activity as a sparkline over time.
    const char* glyphs[] = {" ", ".", ":", "-", "=", "#"};
    for (std::size_t d = 0; d < profile.rate.size(); ++d) {
        std::string line;
        for (std::size_t b = 0; b < profile.rate[d].size(); ++b) {
            const double r = profile.rate[d][b];
            const int g = r <= 0.0 ? 0
                                   : 1 + static_cast<int>(r * 4.999);
            line += glyphs[g > 5 ? 5 : g];
            csv.writeRow({setup.name, "dim" + std::to_string(d + 1),
                          fmtDouble(b * bucket / kUs, 0),
                          fmtDouble(r, 4)});
        }
        double avg = 0.0;
        for (double r : profile.rate[d])
            avg += r;
        avg /= profile.rate[d].empty() ? 1.0
                                       : static_cast<double>(
                                             profile.rate[d].size());
        std::printf("  dim%zu |%s| avg %s\n", d + 1, line.c_str(),
                    fmtPercent(avg).c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::printHeader(
        "Per-dimension frontend activity, 1 GB All-Reduce on "
        "3D-SW_SW_SW_homo (100 us buckets; '#'=100%, ' '=idle)",
        "Fig 9");

    stats::CsvWriter csv(bench::csvPath("fig09_activity"));
    csv.writeRow({"scheduler", "dim", "bucket_start_us",
                  "activity_rate"});

    const auto topo = presets::make3DSwSwSwHomo();
    for (const auto& setup : bench::table3Schedulers())
        runAndPrint(topo, setup, csv);

    std::printf("Paper expectation: baseline keeps dim2/dim3 largely "
                "idle (dim1 is the pipeline\nbottleneck); Themis+FIFO "
                "balances with occasional starvation dips; Themis+SCF\n"
                "sustains activity on all dimensions and finishes "
                "first.\n");
    return 0;
}
