/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: event
 * queue throughput, processor-sharing channel, scheduler cost, and
 * whole-collective simulation rates. These guard the simulator's
 * performance envelope (the Fig 8-12 harnesses sweep thousands of
 * collective simulations).
 */

#include <benchmark/benchmark.h>

#include "core/themis_scheduler.hpp"
#include "runtime/comm_runtime.hpp"
#include "topology/presets.hpp"

using namespace themis;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    const auto n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        long sum = 0;
        for (int i = 0; i < n; ++i) {
            q.schedule(static_cast<double>((i * 37) % 1000),
                       [&sum, i] { sum += i; });
        }
        q.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void
BM_SharedChannelConcurrency(benchmark::State& state)
{
    const auto n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        sim::SharedChannel ch(q, 100.0);
        for (int i = 0; i < n; ++i) {
            q.schedule(static_cast<double>(i * 13),
                       [&ch] { ch.begin(1.0e5, [] {}); });
        }
        q.run();
        benchmark::DoNotOptimize(ch.progressedBytes());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SharedChannelConcurrency)->Arg(64)->Arg(512);

void
BM_ThemisScheduling(benchmark::State& state)
{
    const auto model =
        LatencyModel::fromTopology(presets::make4DRingFcRingSw());
    const auto chunks = static_cast<int>(state.range(0));
    for (auto _ : state) {
        ThemisScheduler sched(model);
        auto out = sched.scheduleCollective(CollectiveType::AllReduce,
                                            1.0e9, chunks);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * chunks);
}
BENCHMARK(BM_ThemisScheduling)->Arg(64)->Arg(512);

void
BM_SimulateAllReduce(benchmark::State& state)
{
    const auto topos = presets::nextGenTopologies();
    const auto& topo = topos[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo,
                                  runtime::themisScfConfig());
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = 1.0e9;
        req.chunks = 64;
        comm.issue(req);
        queue.run();
        benchmark::DoNotOptimize(comm.records().data());
    }
    state.SetLabel(topo.name());
}
BENCHMARK(BM_SimulateAllReduce)->DenseRange(0, 5);

} // namespace

BENCHMARK_MAIN();
