/**
 * @file
 * Sweep scale-out bench: sharded execution, checkpoint/restart and
 * memoized what-if queries on top of SweepRunner + PlanCache +
 * ResultStore (the themis_cli --shard/--results/--serve machinery).
 *
 * Three in-binary proofs/measurements, written to
 * bench_results/BENCH_sweep_service.json and gated per PR by
 * tools/bench_trend.py (sweep_service/cells_per_sec):
 *
 *  1. Shard scaling: the fig12-style collective grid (next-gen
 *     topologies x chunk counts x Table 3 schedulers) runs once as a
 *     single process and once split 2 ways by the canonical strided
 *     ShardSpec partition. Each shard runs with its own PlanCache
 *     (process isolation — shards share nothing), walls are the min
 *     of 3 repetitions, and the 2-shard wall is max(shard walls),
 *     modelling the two processes running concurrently. Asserts
 *     >= 1.7x cells/sec at 2 shards.
 *
 *  2. Determinism: the merged 2-shard result stores are asserted
 *     byte-equal to the 1-process store (canonical bytes), and a
 *     shard-0 run interrupted mid-grid — including a partially
 *     written trailing record — resumes to canonical bytes identical
 *     to its uninterrupted run.
 *
 *  3. Warm-query speedup: answering a repeated what-if query from the
 *     results store vs re-simulating it cold. Asserts >= 10x.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/grid_shard.hpp"
#include "sim/result_store.hpp"

using namespace themis;

namespace {

constexpr Bytes kCellSize = 1.0e8;
constexpr int kReps = 3;

/** The grid: topologies x chunk counts x Table 3 schedulers. */
struct Grid
{
    std::vector<Topology> topos;
    /** Odd cells-per-topology block (3 x 3), so the mod-2 stride's
     *  phase alternates across topology blocks and both shards see
     *  the same chunk-count cost mix. */
    std::vector<int> chunk_list{8, 16, 32};
    std::vector<bench::SchedulerSetup> setups =
        bench::table3Schedulers();

    std::size_t
    cells() const
    {
        return topos.size() * chunk_list.size() * setups.size();
    }

    /** Canonical decomposition (topology-major, like themis_cli). */
    std::size_t
    topoOf(std::size_t i) const
    {
        return i / (chunk_list.size() * setups.size());
    }
    int
    chunksOf(std::size_t i) const
    {
        return chunk_list[i % (chunk_list.size() * setups.size()) /
                          setups.size()];
    }
    std::size_t
    schedOf(std::size_t i) const
    {
        return i % setups.size();
    }

    std::string
    keyOf(std::size_t i) const
    {
        char size_buf[64];
        std::snprintf(size_buf, sizeof(size_buf), "%.17g", kCellSize);
        return sim::makeResultKey(
            {{"topo", topos[topoOf(i)].name()},
             {"sched", setups[schedOf(i)].name},
             {"chunks", std::to_string(chunksOf(i))},
             {"enforce", "0"},
             {"type", "ar"},
             {"size", size_buf}});
    }
};

/** Simulate one cell with @p cache shared across the owning run. */
bench::CollectiveRun
evalCell(const Grid& grid, std::size_t i, PlanCache& cache)
{
    runtime::RuntimeConfig cfg = grid.setups[grid.schedOf(i)].config;
    cfg.plan_cache = &cache;
    return bench::runCollective(grid.topos[grid.topoOf(i)], cfg,
                                CollectiveType::AllReduce, kCellSize,
                                grid.chunksOf(i));
}

/**
 * Wall milliseconds to simulate @p cells sequentially with one fresh
 * PlanCache (one process / one shard worth of work). Results are
 * discarded: timing is separated from journaling so store I/O and
 * measurement noise cannot couple.
 */
double
timedPass(const Grid& grid, const std::vector<std::size_t>& cells)
{
    PlanCache cache;
    const double t0 = bench::nowNs();
    for (std::size_t i : cells)
        (void)evalCell(grid, i, cache);
    return (bench::nowNs() - t0) / 1e6;
}

/** Min-of-kReps wall for @p cells (noise floor on shared runners). */
double
bestWall(const Grid& grid, const std::vector<std::size_t>& cells)
{
    double best = timedPass(grid, cells);
    for (int r = 1; r < kReps; ++r)
        best = std::min(best, timedPass(grid, cells));
    return best;
}

/** Journal @p cells into a fresh store at @p path (resume-aware). */
void
journalPass(const Grid& grid, const std::vector<std::size_t>& cells,
            const std::string& path, std::size_t max_cells = 0)
{
    sim::ResultStore store(path);
    PlanCache cache;
    std::size_t fresh = 0;
    for (std::size_t i : cells) {
        const std::string key = grid.keyOf(i);
        if (store.has(key))
            continue;
        if (max_cells > 0 && fresh == max_cells)
            return;
        ++fresh;
        const double c0 = bench::nowNs();
        const auto run = evalCell(grid, i, cache);
        sim::ResultRecord rec;
        rec.key = key;
        rec.values = {{"time_ns", run.time},
                      {"util", run.weighted_util}};
        std::uint64_t h = 14695981039346656037ull;
        for (const auto& [name, v] : rec.values) {
            for (char c : name)
                h = (h ^ static_cast<unsigned char>(c)) *
                    1099511628211ull;
            std::uint64_t bits = 0;
            static_assert(sizeof(bits) == sizeof(v));
            std::memcpy(&bits, &v, sizeof(bits));
            for (int b = 0; b < 8; ++b)
                h = (h ^ ((bits >> (8 * b)) & 0xff)) *
                    1099511628211ull;
        }
        rec.fingerprint = h;
        rec.wall_ms = (bench::nowNs() - c0) / 1e6;
        store.append(std::move(rec));
    }
}

std::string
freshPath(const std::string& name)
{
    const std::string path = bench::resultPath(name);
    std::filesystem::remove(path); // stale journals would be "resumed"
    return path;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Sharded, resumable, memoized sweep execution",
        "sweep scale-out layer (deterministic --shard partitioning, "
        "crash-safe --results store, --serve warm queries)");

    Grid grid;
    grid.topos = presets::nextGenTopologies();
    const std::size_t cells = grid.cells();

    const sim::ShardSpec whole{};
    const sim::ShardSpec half0{0, 2}, half1{1, 2};
    const auto all = sim::shardCells(cells, whole);
    const auto own0 = sim::shardCells(cells, half0);
    const auto own1 = sim::shardCells(cells, half1);
    THEMIS_ASSERT(own0.size() + own1.size() == cells,
                  "shards do not partition the grid");

    // --- 1. shard scaling (warmup untimed, then min-of-3 walls) ----
    (void)timedPass(grid, all);
    const double one_ms = bestWall(grid, all);
    const double s0_ms = bestWall(grid, own0);
    const double s1_ms = bestWall(grid, own1);
    const double two_ms = std::max(s0_ms, s1_ms);
    const double one_cps = static_cast<double>(cells) / (one_ms * 1e-3);
    const double two_cps = static_cast<double>(cells) / (two_ms * 1e-3);
    const double scaling = one_cps > 0.0 ? two_cps / one_cps : 0.0;
    std::printf("grid: %zu cells (%zu topologies x %zu chunk counts "
                "x %zu schedulers)\n",
                cells, grid.topos.size(), grid.chunk_list.size(),
                grid.setups.size());
    std::printf("  1 process : %8.1f ms (%7.1f cells/sec)\n", one_ms,
                one_cps);
    std::printf("  2 shards  : %8.1f ms max(%.1f, %.1f) "
                "(%7.1f cells/sec, %.2fx)\n",
                two_ms, s0_ms, s1_ms, two_cps, scaling);
    THEMIS_ASSERT(scaling >= 1.7,
                  "2-shard cells/sec scaling "
                      << scaling << "x below the 1.7x floor");

    // --- 2. merge + resume determinism ----------------------------
    const std::string one_path =
        freshPath("sweep_service_one.jsonl");
    const std::string s0_path =
        freshPath("sweep_service_shard0.jsonl");
    const std::string s1_path =
        freshPath("sweep_service_shard1.jsonl");
    journalPass(grid, all, one_path);
    journalPass(grid, own0, s0_path);
    journalPass(grid, own1, s1_path);
    const std::string merged =
        sim::ResultStore::canonicalMerge({s0_path, s1_path});
    const std::string one_canon =
        sim::ResultStore(one_path).canonicalBytes();
    const bool merge_identical = merged == one_canon;
    std::printf("  merged 2-shard stores vs 1-process store: %s "
                "(%zu canonical bytes)\n",
                merge_identical ? "byte-identical" : "DIVERGED",
                merged.size());
    THEMIS_ASSERT(merge_identical,
                  "merged shard stores diverged from the 1-process "
                  "store");

    // Interrupt shard 0 halfway, corrupt the tail the way a crash
    // mid-append would, resume, and require canonical equality.
    const std::string resume_path =
        freshPath("sweep_service_resume.jsonl");
    journalPass(grid, own0, resume_path, own0.size() / 2);
    {
        std::FILE* f = std::fopen(resume_path.c_str(), "ab");
        THEMIS_ASSERT(f != nullptr, "cannot corrupt " << resume_path);
        std::fputs("{\"key\": \"chunks=8;torn", f); // torn record
        std::fclose(f);
    }
    journalPass(grid, own0, resume_path);
    const bool resume_identical =
        sim::ResultStore(resume_path).canonicalBytes() ==
        sim::ResultStore(s0_path).canonicalBytes();
    std::printf("  interrupted+resumed shard 0 vs uninterrupted: "
                "%s\n",
                resume_identical ? "byte-identical" : "DIVERGED");
    THEMIS_ASSERT(resume_identical,
                  "resumed shard store diverged from the "
                  "uninterrupted run");

    // --- 3. warm-query speedup ------------------------------------
    // Cold: the mean full simulation. Warm: the same answer read out
    // of the results store, as themis_cli --serve does for repeats.
    const double cold_ms = one_ms / static_cast<double>(cells);
    sim::ResultStore store(one_path);
    constexpr int kLookups = 20000;
    std::uint64_t sink = 0;
    const double q0 = bench::nowNs();
    for (int r = 0; r < kLookups; ++r) {
        const auto* rec = store.find(grid.keyOf(
            static_cast<std::size_t>(r) % cells));
        THEMIS_ASSERT(rec != nullptr, "warm query missed the store");
        sink ^= rec->fingerprint;
    }
    const double warm_ms =
        (bench::nowNs() - q0) / 1e6 / kLookups;
    const double warm_speedup =
        warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    std::printf("  what-if query: cold %.3f ms -> warm %.5f ms "
                "(%.0fx, checksum %016llx)\n",
                cold_ms, warm_ms, warm_speedup,
                static_cast<unsigned long long>(sink));
    THEMIS_ASSERT(warm_speedup >= 10.0,
                  "warm-query speedup " << warm_speedup
                                        << "x below the 10x floor");

    // --- JSON -----------------------------------------------------
    char buf[1024];
    std::string json = "{\n  \"bench\": \"sweep_service\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"grid\": {\"topologies\": %zu, \"chunk_counts\": "
                  "%zu, \"schedulers\": %zu, \"cells\": %zu},\n",
                  grid.topos.size(), grid.chunk_list.size(),
                  grid.setups.size(), cells);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"one_process\": {\"wall_ms\": %.2f, "
                  "\"cells_per_sec\": %.2f},\n"
                  "  \"two_shard\": {\"wall_ms_shard0\": %.2f, "
                  "\"wall_ms_shard1\": %.2f, \"wall_ms_max\": %.2f, "
                  "\"cells_per_sec\": %.2f},\n",
                  one_ms, one_cps, s0_ms, s1_ms, two_ms, two_cps);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"cells_per_sec\": %.2f,\n"
                  "  \"shard_scaling\": %.3f,\n"
                  "  \"merge_bit_identical\": %s,\n"
                  "  \"resume_bit_identical\": %s,\n",
                  one_cps, scaling, merge_identical ? "true" : "false",
                  resume_identical ? "true" : "false");
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"query\": {\"cold_ms_mean\": %.4f, "
                  "\"warm_ms_mean\": %.6f, \"warm_speedup\": %.1f}\n"
                  "}\n",
                  cold_ms, warm_ms, warm_speedup);
    json += buf;

    const std::string path =
        bench::resultPath("BENCH_sweep_service.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
    return 0;
}
