/**
 * @file
 * Reproduces Fig 12: end-to-end training iteration time for
 * ResNet-152, GNMT, DLRM and Transformer-1T on the six next-gen
 * platforms, decomposed into forward/backward compute and exposed
 * MP/DP communication, for Baseline, Themis+SCF and Ideal. Times are
 * normalized to the baseline of each (workload, topology) cell.
 *
 * The Ideal method runs the same training loop on a synthetic
 * single-dimension platform whose bandwidth is the sum of all
 * dimensions and whose latency is zero — exactly Table 3's
 * "collective size / total BW" with the loop's overlap semantics.
 *
 * The paper reports 3 identical iterations; we simulate one (the
 * normalized decomposition is identical).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

/** Zero-latency 1-dim platform pooling all of @p topo's bandwidth. */
Topology
idealTopology(const Topology& topo)
{
    DimensionConfig d;
    d.kind = DimKind::Switch;
    d.size = static_cast<int>(topo.totalNpus());
    d.link_bw_gbps = bwToGbps(topo.totalBandwidth());
    d.links_per_npu = 1;
    d.step_latency_ns = 0.0;
    return Topology(topo.name() + "-ideal", {d});
}

workload::IterationBreakdown
runIteration(const Topology& topo, const runtime::RuntimeConfig& cfg,
             const std::string& workload)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    workload::TrainingLoop loop(comm, models::byName(workload));
    return loop.runIteration();
}

} // namespace

int
main()
{
    bench::printHeader(
        "End-to-end training iteration decomposition",
        "Fig 12 (paper avg speedups: ResNet-152 1.49x, GNMT 1.30x, "
        "DLRM 1.30x, Transformer-1T 1.25x)");

    stats::CsvWriter csv(bench::csvPath("fig12_end_to_end"));
    csv.writeRow({"workload", "topology", "method", "fwd_compute",
                  "bwd_compute", "exposed_mp", "exposed_dp", "total",
                  "normalized_total"});

    for (const auto& workload : models::paperWorkloads()) {
        std::printf("%s\n", workload.c_str());
        stats::TextTable t({"Topology", "Method", "Fwd", "Bwd",
                            "Exp MP", "Exp DP", "Total",
                            "Normalized"});
        double speedup_sum = 0.0, speedup_max = 0.0;
        double ideal_sum = 0.0;
        int cells = 0;
        for (const auto& topo : presets::nextGenTopologies()) {
            const auto base = runIteration(
                topo, runtime::baselineConfig(), workload);
            const auto scf = runIteration(
                topo, runtime::themisScfConfig(), workload);
            const auto ideal = runIteration(
                idealTopology(topo), runtime::themisScfConfig(),
                workload);

            struct RowDef
            {
                const char* method;
                const workload::IterationBreakdown* it;
            };
            const RowDef rows[] = {{"Baseline", &base},
                                   {"Themis+SCF", &scf},
                                   {"Ideal", &ideal}};
            for (const auto& row : rows) {
                const auto& it = *row.it;
                t.addRow({topo.name(), row.method,
                          fmtTime(it.fwd_compute),
                          fmtTime(it.bwd_compute),
                          fmtTime(it.exposed_mp),
                          fmtTime(it.exposed_dp), fmtTime(it.total),
                          fmtDouble(it.total / base.total, 3)});
                csv.writeRow({workload, topo.name(), row.method,
                              fmtDouble(it.fwd_compute, 1),
                              fmtDouble(it.bwd_compute, 1),
                              fmtDouble(it.exposed_mp, 1),
                              fmtDouble(it.exposed_dp, 1),
                              fmtDouble(it.total, 1),
                              fmtDouble(it.total / base.total, 5)});
            }
            const double speedup = base.total / scf.total;
            speedup_sum += speedup;
            speedup_max = std::max(speedup_max, speedup);
            ideal_sum += base.total / ideal.total;
            ++cells;
        }
        std::printf("%s", t.render().c_str());
        std::printf("  %s speedup: avg %.2fx, max %.2fx   (ideal "
                    "bound avg %.2fx)\n\n",
                    workload.c_str(), speedup_sum / cells, speedup_max,
                    ideal_sum / cells);
    }
    return 0;
}
