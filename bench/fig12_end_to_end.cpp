/**
 * @file
 * Reproduces Fig 12: end-to-end training iteration time for
 * ResNet-152, GNMT, DLRM and Transformer-1T on the six next-gen
 * platforms, decomposed into forward/backward compute and exposed
 * MP/DP communication, for Baseline, Themis+SCF and Ideal. Times are
 * normalized to the baseline of each (workload, topology) cell.
 *
 * The Ideal method runs the same training loop on a synthetic
 * single-dimension platform whose bandwidth is the sum of all
 * dimensions and whose latency is zero — exactly Table 3's
 * "collective size / total BW" with the loop's overlap semantics.
 *
 * The paper reports 3 identical iterations; we simulate one (the
 * normalized decomposition is identical).
 *
 * The whole workload x topology x method grid fans across the sweep
 * harness, and runs twice in this binary: once with this repo's sweep
 * optimizations (shared plan cache, calendar event front end, indexed
 * engine selection, weighted-GPS channels) and once with them
 * disabled (cache-off, heap-only event queue, legacy linear selection
 * scan, pre-priority egalitarian channels). Both passes produce
 * bit-identical simulation results — which doubles as the
 * weighted-vs-egalitarian dataplane equivalence check under the
 * default uniform priority policy; the wall-clock ratio is the
 * end-to-end sweep-throughput number tracked per PR in
 * bench_results/BENCH_e2e.json.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

/** Zero-latency 1-dim platform pooling all of @p topo's bandwidth. */
Topology
idealTopology(const Topology& topo)
{
    DimensionConfig d;
    d.kind = DimKind::Switch;
    d.size = static_cast<int>(topo.totalNpus());
    d.link_bw_gbps = bwToGbps(topo.totalBandwidth());
    d.links_per_npu = 1;
    d.step_latency_ns = 0.0;
    return Topology(topo.name() + "-ideal", {d});
}

struct MethodDef
{
    const char* name;
    runtime::RuntimeConfig config;
    bool on_ideal_topology;
};

struct GridDef
{
    std::vector<std::string> workloads;
    std::vector<Topology> topologies;
    std::vector<Topology> ideal_topologies;
    std::vector<MethodDef> methods;

    std::size_t
    cellCount() const
    {
        return workloads.size() * topologies.size() * methods.size();
    }
};

struct ModeRun
{
    std::vector<workload::IterationBreakdown> results;
    double wall_ms = 0.0;
    double cells_per_sec = 0.0;
    int threads = 0; ///< resolved worker count the sweep ran with
    PlanCache::Stats cache_stats;
    std::size_t cached_plans = 0;
};

/**
 * Simulate every grid cell across the sweep workers. @p optimized
 * selects this PR's sweep path (shared plan cache + calendar front
 * end + indexed engine selection) vs. the measurement baseline
 * (cache-off, heap-only, legacy scan).
 */
ModeRun
runGridMode(const GridDef& grid, bool optimized, int threads)
{
    PlanCache cache; // shared read-mostly across all workers
    sim::SweepOptions opts;
    opts.threads = threads;
    opts.front_end = optimized ? sim::EventFrontEnd::Calendar
                               : sim::EventFrontEnd::Heap;
    // Pin the resolved worker count into the options so the reported
    // number is, by construction, the one the sweep runs with.
    opts.threads = sim::SweepRunner(opts).threads();
    const std::size_t per_workload =
        grid.topologies.size() * grid.methods.size();
    ModeRun out;
    const double t0 = bench::nowNs();
    out.results = sim::sweepIndexed(
        grid.cellCount(),
        [&](std::size_t i, sim::EventQueue& queue) {
            const std::size_t w = i / per_workload;
            const std::size_t t =
                i % per_workload / grid.methods.size();
            const std::size_t m = i % grid.methods.size();
            const MethodDef& method = grid.methods[m];
            runtime::RuntimeConfig cfg = method.config;
            cfg.plan_cache = optimized ? &cache : nullptr;
            cfg.legacy_engine_scan = !optimized;
            cfg.legacy_egalitarian_channel = !optimized;
            const Topology& topo = method.on_ideal_topology
                                       ? grid.ideal_topologies[t]
                                       : grid.topologies[t];
            runtime::CommRuntime comm(queue, topo, cfg);
            workload::TrainingLoop loop(
                comm, models::byName(grid.workloads[w]));
            return loop.runIteration();
        },
        opts);
    out.wall_ms = (bench::nowNs() - t0) / 1e6;
    out.cells_per_sec =
        static_cast<double>(grid.cellCount()) / (out.wall_ms * 1e-3);
    out.threads = opts.threads;
    out.cache_stats = cache.stats();
    out.cached_plans = cache.planCount();
    return out;
}

} // namespace

int
main()
{
    bench::printHeader(
        "End-to-end training iteration decomposition",
        "Fig 12 (paper avg speedups: ResNet-152 1.49x, GNMT 1.30x, "
        "DLRM 1.30x, Transformer-1T 1.25x)");

    GridDef grid;
    grid.workloads = models::paperWorkloads();
    grid.topologies = presets::nextGenTopologies();
    for (const auto& topo : grid.topologies)
        grid.ideal_topologies.push_back(idealTopology(topo));
    grid.methods = {{"Baseline", runtime::baselineConfig(), false},
                    {"Themis+SCF", runtime::themisScfConfig(), false},
                    {"Ideal", runtime::themisScfConfig(), true}};

    // Optimized pass first: the baseline pass then runs on the warmer
    // CPU, biasing the reported speedup down, not up.
    const ModeRun optimized = runGridMode(grid, true, 0);
    const ModeRun baseline = runGridMode(grid, false, 0);

    bool identical = optimized.results.size() == baseline.results.size();
    for (std::size_t i = 0; identical && i < optimized.results.size();
         ++i)
        identical = workload::bitIdentical(optimized.results[i],
                                           baseline.results[i]);
    THEMIS_ASSERT(identical,
                  "optimized and baseline sweep modes diverged");

    stats::CsvWriter csv(bench::csvPath("fig12_end_to_end"));
    csv.writeRow({"workload", "topology", "method", "fwd_compute",
                  "bwd_compute", "exposed_mp", "exposed_dp", "total",
                  "normalized_total"});

    const std::size_t per_workload =
        grid.topologies.size() * grid.methods.size();
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        const std::string& workload = grid.workloads[w];
        std::printf("%s\n", workload.c_str());
        stats::TextTable t({"Topology", "Method", "Fwd", "Bwd",
                            "Exp MP", "Exp DP", "Total",
                            "Normalized"});
        double speedup_sum = 0.0, speedup_max = 0.0;
        double ideal_sum = 0.0;
        int cells = 0;
        for (std::size_t ti = 0; ti < grid.topologies.size(); ++ti) {
            const Topology& topo = grid.topologies[ti];
            const std::size_t cell0 =
                w * per_workload + ti * grid.methods.size();
            const auto& base = optimized.results[cell0];
            const auto& scf = optimized.results[cell0 + 1];
            const auto& ideal = optimized.results[cell0 + 2];

            struct RowDef
            {
                const char* method;
                const workload::IterationBreakdown* it;
            };
            const RowDef rows[] = {{"Baseline", &base},
                                   {"Themis+SCF", &scf},
                                   {"Ideal", &ideal}};
            for (const auto& row : rows) {
                const auto& it = *row.it;
                t.addRow({topo.name(), row.method,
                          fmtTime(it.fwd_compute),
                          fmtTime(it.bwd_compute),
                          fmtTime(it.exposed_mp),
                          fmtTime(it.exposed_dp), fmtTime(it.total),
                          fmtDouble(it.total / base.total, 3)});
                csv.writeRow({workload, topo.name(), row.method,
                              fmtDouble(it.fwd_compute, 1),
                              fmtDouble(it.bwd_compute, 1),
                              fmtDouble(it.exposed_mp, 1),
                              fmtDouble(it.exposed_dp, 1),
                              fmtDouble(it.total, 1),
                              fmtDouble(it.total / base.total, 5)});
            }
            const double speedup = base.total / scf.total;
            speedup_sum += speedup;
            speedup_max = std::max(speedup_max, speedup);
            ideal_sum += base.total / ideal.total;
            ++cells;
        }
        std::printf("%s", t.render().c_str());
        std::printf("  %s speedup: avg %.2fx, max %.2fx   (ideal "
                    "bound avg %.2fx)\n\n",
                    workload.c_str(), speedup_sum / cells, speedup_max,
                    ideal_sum / cells);
    }

    const double speedup = baseline.wall_ms / optimized.wall_ms;
    std::printf("sweep throughput (%zu cells, %d worker threads):\n",
                grid.cellCount(), optimized.threads);
    std::printf("  baseline  (cache-off, heap, legacy scan): %8.1f ms "
                "(%6.1f cells/sec)\n",
                baseline.wall_ms, baseline.cells_per_sec);
    std::printf("  optimized (plan cache, calendar, indexed): %8.1f ms "
                "(%6.1f cells/sec)\n",
                optimized.wall_ms, optimized.cells_per_sec);
    std::printf("  speedup: %.2fx, results bit-identical, plan cache: "
                "%zu plans, %llu hits / %llu misses\n",
                speedup, optimized.cached_plans,
                static_cast<unsigned long long>(
                    optimized.cache_stats.plan_hits),
                static_cast<unsigned long long>(
                    optimized.cache_stats.plan_misses));

    char buf[1024];
    std::string json = "{\n  \"bench\": \"fig12_e2e\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"grid\": {\"workloads\": %zu, \"topologies\": "
                  "%zu, \"methods\": %zu, \"cells\": %zu},\n"
                  "  \"threads\": %d,\n  \"modes\": [\n",
                  grid.workloads.size(), grid.topologies.size(),
                  grid.methods.size(), grid.cellCount(),
                  optimized.threads);
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"baseline\", \"plan_cache\": false, "
        "\"event_front_end\": \"heap\", \"engine_selection\": "
        "\"legacy-scan\", \"wall_ms\": %.1f, \"cells_per_sec\": "
        "%.2f},\n",
        baseline.wall_ms, baseline.cells_per_sec);
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"optimized\", \"plan_cache\": true, "
        "\"event_front_end\": \"calendar\", \"engine_selection\": "
        "\"indexed\", \"wall_ms\": %.1f, \"cells_per_sec\": %.2f}\n"
        "  ],\n",
        optimized.wall_ms, optimized.cells_per_sec);
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"speedup\": %.2f,\n  \"bit_identical\": %s,\n"
        "  \"plan_cache\": {\"plans\": %zu, \"hits\": %llu, "
        "\"misses\": %llu}\n}\n",
        speedup, identical ? "true" : "false", optimized.cached_plans,
        static_cast<unsigned long long>(
            optimized.cache_stats.plan_hits),
        static_cast<unsigned long long>(
            optimized.cache_stats.plan_misses));
    json += buf;

    const std::string path = bench::resultPath("BENCH_e2e.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot write " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
