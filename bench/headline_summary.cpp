/**
 * @file
 * Reproduces the paper's headline numbers (abstract / Sec 6):
 *
 *  - single All-Reduce: Themis+FIFO 1.58x and Themis+SCF 1.72x
 *    (2.70x max) average communication-time reduction; average BW
 *    utilization 56.31% (baseline) / 87.67% (FIFO) / 95.14% (SCF);
 *  - end-to-end: exposed-communication reduction 1.65x (Themis) vs
 *    1.72x (Ideal); iteration speedups 1.49x / 1.30x / 1.30x / 1.25x
 *    for ResNet-152 / GNMT / DLRM / Transformer-1T.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

namespace {

Topology
idealTopology(const Topology& topo)
{
    DimensionConfig d;
    d.kind = DimKind::Switch;
    d.size = static_cast<int>(topo.totalNpus());
    d.link_bw_gbps = bwToGbps(topo.totalBandwidth());
    d.links_per_npu = 1;
    d.step_latency_ns = 0.0;
    return Topology(topo.name() + "-ideal", {d});
}

} // namespace

int
main()
{
    bench::printHeader("Headline summary",
                       "Abstract + Sec 6.1/6.2 aggregate numbers");

    // ---- Microbenchmark aggregates over the Fig 8/11 grid.
    double util_sum[3] = {0, 0, 0};
    double speedup_sum[3] = {0, 0, 0};
    double scf_speedup_max = 0.0;
    int cells = 0;
    for (const auto& topo : presets::nextGenTopologies()) {
        for (Bytes size : bench::microbenchSizes()) {
            double base_time = 0.0;
            int i = 0;
            for (const auto& setup : bench::table3Schedulers()) {
                const auto run =
                    bench::runAllReduce(topo, setup.config, size);
                util_sum[i] += run.weighted_util;
                if (i == 0)
                    base_time = run.time;
                speedup_sum[i] += base_time / run.time;
                if (i == 2) {
                    scf_speedup_max = std::max(scf_speedup_max,
                                               base_time / run.time);
                }
                ++i;
            }
            ++cells;
        }
    }

    stats::TextTable micro({"Metric", "Measured", "Paper"});
    micro.addRow({"Baseline avg BW utilization",
                  fmtPercent(util_sum[0] / cells), "56.31%"});
    micro.addRow({"Themis+FIFO avg BW utilization",
                  fmtPercent(util_sum[1] / cells), "87.67%"});
    micro.addRow({"Themis+SCF avg BW utilization",
                  fmtPercent(util_sum[2] / cells), "95.14%"});
    micro.addRow({"Themis+FIFO avg All-Reduce speedup",
                  fmtDouble(speedup_sum[1] / cells, 2) + "x", "1.58x"});
    micro.addRow({"Themis+SCF avg All-Reduce speedup",
                  fmtDouble(speedup_sum[2] / cells, 2) + "x", "1.72x"});
    micro.addRow({"Themis+SCF max All-Reduce speedup",
                  fmtDouble(scf_speedup_max, 2) + "x", "2.70x"});
    std::printf("Single-collective microbenchmark (Fig 8/11 grid)\n%s\n",
                micro.render().c_str());

    // ---- End-to-end workload aggregates.
    struct PaperRow
    {
        const char* name;
        const char* avg;
        const char* max;
    };
    const PaperRow paper[] = {{"ResNet-152", "1.49x", "2.25x"},
                              {"GNMT", "1.30x", "1.78x"},
                              {"DLRM", "1.30x", "1.77x"},
                              {"Transformer-1T", "1.25x", "1.53x"}};

    stats::TextTable e2e({"Workload", "Speedup avg", "Speedup max",
                          "Paper avg", "Paper max"});
    double exposed_reduction_sum = 0.0;
    double ideal_reduction_sum = 0.0;
    int exposed_cells = 0;
    for (const auto& row : paper) {
        double sum = 0.0, mx = 0.0;
        int n = 0;
        for (const auto& topo : presets::nextGenTopologies()) {
            auto run = [&](const Topology& t,
                           const runtime::RuntimeConfig& cfg) {
                sim::EventQueue queue;
                runtime::CommRuntime comm(queue, t, cfg);
                workload::TrainingLoop loop(comm,
                                            models::byName(row.name));
                return loop.runIteration();
            };
            const auto base = run(topo, runtime::baselineConfig());
            const auto scf = run(topo, runtime::themisScfConfig());
            const auto ideal =
                run(idealTopology(topo), runtime::themisScfConfig());
            const double speedup = base.total / scf.total;
            sum += speedup;
            mx = std::max(mx, speedup);
            ++n;
            const double base_exposed =
                base.exposed_mp + base.exposed_dp;
            const double scf_exposed = scf.exposed_mp + scf.exposed_dp;
            const double ideal_exposed =
                ideal.exposed_mp + ideal.exposed_dp;
            if (scf_exposed > 0.0 && ideal_exposed > 0.0) {
                exposed_reduction_sum += base_exposed / scf_exposed;
                ideal_reduction_sum += base_exposed / ideal_exposed;
                ++exposed_cells;
            }
        }
        e2e.addRow({row.name, fmtDouble(sum / n, 2) + "x",
                    fmtDouble(mx, 2) + "x", row.avg, row.max});
    }
    std::printf("End-to-end training iteration (Fig 12 grid)\n%s\n",
                e2e.render().c_str());
    std::printf("Exposed-communication reduction, avg across "
                "workloads/topologies:\n"
                "  Themis+SCF %.2fx (paper: 1.65x); Ideal %.2fx "
                "(paper: 1.72x)\n",
                exposed_reduction_sum / exposed_cells,
                ideal_reduction_sum / exposed_cells);
    return 0;
}
