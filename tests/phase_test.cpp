/**
 * @file
 * Size-algebra tests (paper Sec 2.1/2.3): how chunk sizes and wire
 * volumes evolve through RS/AG/A2A stages.
 */

#include <gtest/gtest.h>

#include "collective/phase.hpp"

namespace themis {
namespace {

TEST(Phase, ReduceScatterShrinksByPeers)
{
    EXPECT_DOUBLE_EQ(sizeAfterPhase(Phase::ReduceScatter, 64.0e6, 4),
                     16.0e6);
}

TEST(Phase, AllGatherGrowsByPeers)
{
    EXPECT_DOUBLE_EQ(sizeAfterPhase(Phase::AllGather, 4.0e6, 4),
                     16.0e6);
}

TEST(Phase, AllToAllKeepsSize)
{
    EXPECT_DOUBLE_EQ(sizeAfterPhase(Phase::AllToAll, 5.0e6, 8), 5.0e6);
}

TEST(Phase, RsThenAgRestoresSize)
{
    const Bytes s = 123456.0;
    const Bytes shard = sizeAfterPhase(Phase::ReduceScatter, s, 16);
    EXPECT_DOUBLE_EQ(sizeAfterPhase(Phase::AllGather, shard, 16), s);
}

TEST(Phase, WireBytesRsIsAlphaFraction)
{
    // Paper footnote 7: ring RS moves (P-1)/P of the resident chunk.
    EXPECT_DOUBLE_EQ(wireBytes(Phase::ReduceScatter, 4.0e6, 8),
                     4.0e6 * 7.0 / 8.0);
}

TEST(Phase, WireBytesAgCountsShardTimesPeersMinusOne)
{
    // Fig 5: a 4MB AG on a 4-wide dimension moves 12MB per NPU —
    // the same volume as the mirrored 16MB RS stage.
    EXPECT_DOUBLE_EQ(wireBytes(Phase::AllGather, 4.0e6, 4), 12.0e6);
    EXPECT_DOUBLE_EQ(wireBytes(Phase::ReduceScatter, 16.0e6, 4),
                     12.0e6);
}

TEST(Phase, RsAndAgMirrorVolumes)
{
    // For any entering size and peer count, the AG stage that mirrors
    // an RS stage (entering the RS output size) moves equal bytes.
    for (int p : {2, 3, 4, 8, 16, 64}) {
        const Bytes s = 1.0e8;
        const Bytes shard = sizeAfterPhase(Phase::ReduceScatter, s, p);
        EXPECT_DOUBLE_EQ(wireBytes(Phase::AllGather, shard, p),
                         wireBytes(Phase::ReduceScatter, s, p))
            << "p=" << p;
    }
}

TEST(Phase, StagesForTypeDoublesForAllReduce)
{
    EXPECT_EQ(stagesForType(CollectiveType::AllReduce, 3), 6);
    EXPECT_EQ(stagesForType(CollectiveType::ReduceScatter, 3), 3);
    EXPECT_EQ(stagesForType(CollectiveType::AllGather, 4), 4);
    EXPECT_EQ(stagesForType(CollectiveType::AllToAll, 2), 2);
}

TEST(Phase, Names)
{
    EXPECT_EQ(phaseName(Phase::ReduceScatter), "RS");
    EXPECT_EQ(phaseName(Phase::AllGather), "AG");
    EXPECT_EQ(phaseName(Phase::AllToAll), "A2A");
    EXPECT_EQ(collectiveTypeName(CollectiveType::AllReduce),
              "All-Reduce");
}

} // namespace
} // namespace themis
