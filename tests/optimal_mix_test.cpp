/**
 * @file
 * Tests of the optimal static-mix oracle: LP sanity (bounds, simplex
 * constraints), agreement with hand-solvable cases, and the key
 * cross-check that Themis's greedy tracker lands within a few percent
 * of the optimum on the paper's platforms.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/optimal_mix.hpp"
#include "core/themis_scheduler.hpp"
#include "topology/presets.hpp"
#include "topology/provisioning.hpp"

namespace themis {
namespace {

LatencyModel
fig5Model()
{
    DimensionConfig d1, d2;
    d1.kind = d2.kind = DimKind::Switch;
    d1.size = d2.size = 4;
    d1.link_bw_gbps = 384.0;
    d2.link_bw_gbps = 192.0;
    d1.links_per_npu = d2.links_per_npu = 1;
    d1.step_latency_ns = d2.step_latency_ns = 0.0;
    return LatencyModel({d1, d2});
}

TEST(OptimalMix, MixIsAProbabilityDistribution)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHetero());
    const auto r = optimalStaticMix(model, CollectiveType::AllReduce);
    EXPECT_EQ(r.orders.size(), 6u); // 3! permutations
    double sum = 0.0;
    for (double x : r.mix) {
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OptimalMix, BeatsEveryPureOrder)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    const auto r = optimalStaticMix(model, CollectiveType::AllReduce);
    // The mixed bottleneck load can be no worse than the best single
    // permutation's bottleneck.
    for (const auto& order : r.orders) {
        std::vector<int> rev(order.rbegin(), order.rend());
        const auto loads = model.stageLoads(
            1.0, makeStages(CollectiveType::AllReduce, order, rev));
        const double pure_max =
            *std::max_element(loads.begin(), loads.end());
        EXPECT_LE(r.balanced_load, pure_max * (1.0 + 1e-6));
    }
}

TEST(OptimalMix, DualGapIsSmall)
{
    for (const auto& topo : presets::nextGenTopologies()) {
        const auto model = LatencyModel::fromTopology(topo);
        const auto r =
            optimalStaticMix(model, CollectiveType::AllReduce);
        EXPECT_GT(r.dual_bound, 0.0) << topo.name();
        EXPECT_LE(r.dual_bound, r.balanced_load * (1.0 + 1e-9))
            << topo.name();
        EXPECT_LT((r.balanced_load - r.dual_bound) / r.balanced_load,
                  0.05)
            << topo.name();
    }
}

TEST(OptimalMix, PooledBandwidthLowerBound)
{
    // No mix can beat spreading the total wire work over the summed
    // bandwidth; with order-dependent volumes the optimum is above.
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    const auto r = optimalStaticMix(model, CollectiveType::AllReduce);
    Bandwidth total_bw = 0.0;
    for (const auto& d : model.dims())
        total_bw += d.bandwidth();
    // One byte of AR moves >= 2*(1 - 1/P_total) bytes in total.
    const double pooled = 2.0 * (1.0 - 1.0 / 1024.0) / total_bw;
    EXPECT_GE(r.balanced_load, pooled * 0.999);
}

TEST(OptimalMix, Fig5MatchesHandSolution)
{
    // 4x4, BW 2:1. Orders: (d1,d2) loads (2a/48, a/2/24)=(a/24, a/48);
    // with a = 3/4 per RS+AG byte... solved directly: the optimum
    // equalizes both dims. Verify balance instead of the closed form.
    const auto r =
        optimalStaticMix(fig5Model(), CollectiveType::AllReduce);
    ASSERT_EQ(r.per_dim_load.size(), 2u);
    EXPECT_NEAR(r.per_dim_load[0], r.per_dim_load[1],
                0.02 * r.balanced_load);
}

TEST(OptimalMix, UnderProvisionedCannotBalance)
{
    // Sec 6.3: BW(dim1) > P1*BW(dim2) — every schedule loads dim2
    // relatively more; the optimal mix stays imbalanced.
    DimensionConfig d1, d2;
    d1.kind = d2.kind = DimKind::Switch;
    d1.size = d2.size = 4;
    d1.link_bw_gbps = 1600.0;
    d2.link_bw_gbps = 100.0; // 16x gap > P1=4
    d1.links_per_npu = d2.links_per_npu = 1;
    d1.step_latency_ns = d2.step_latency_ns = 0.0;
    const LatencyModel model({d1, d2});
    const auto r = optimalStaticMix(model, CollectiveType::AllReduce);
    EXPECT_GT(r.per_dim_load[1], 2.0 * r.per_dim_load[0]);
    // And the baseline pure order is already the best choice.
    EXPECT_GT(r.mix[0], 0.95);
}

TEST(OptimalMix, SymmetricDimsGetSymmetricLoads)
{
    // 3D homo: dims 2 and 3 are identical; the optimum must load them
    // equally.
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    const auto r = optimalStaticMix(model, CollectiveType::AllReduce);
    EXPECT_NEAR(r.per_dim_load[1], r.per_dim_load[2],
                0.03 * r.balanced_load);
}

TEST(OptimalMix, ThemisGreedyIsNearOptimal)
{
    // The headline cross-check: Algorithm 1's greedy tracker ends
    // within ~10% of the LP-optimal bottleneck on every platform.
    for (const auto& topo : presets::nextGenTopologies()) {
        const auto model = LatencyModel::fromTopology(topo);
        const auto opt =
            optimalStaticMix(model, CollectiveType::AllReduce);

        ThemisConfig cfg;
        cfg.init_loads_with_fixed_delay = false; // compare N*B only
        ThemisScheduler sched(model, cfg);
        const Bytes size = 1.0e9;
        sched.scheduleCollective(CollectiveType::AllReduce, size, 64);
        const auto& loads = sched.trackedLoads();
        // Tracker accounts the RS pass only; the mirrored AG pass
        // doubles every dimension's load.
        const double themis_max =
            2.0 * *std::max_element(loads.begin(), loads.end());
        EXPECT_LE(themis_max, opt.balanced_load * size * 1.10)
            << topo.name();
    }
}

TEST(OptimalMix, ReduceScatterOnlyAlsoSolvable)
{
    const auto model =
        LatencyModel::fromTopology(presets::make4DRingFcRingSw());
    const auto r =
        optimalStaticMix(model, CollectiveType::ReduceScatter);
    EXPECT_EQ(r.orders.size(), 24u); // 4!
    EXPECT_GT(r.balanced_load, 0.0);
    EXPECT_LT((r.balanced_load - r.dual_bound) / r.balanced_load, 0.05);
}

} // namespace
} // namespace themis
