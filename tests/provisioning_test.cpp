/**
 * @file
 * Tests of the Sec 6.3 bandwidth-provisioning analysis and the
 * closed-form baseline steady-state model (Sec 3.3), including the
 * paper's worked numbers.
 */

#include <gtest/gtest.h>

#include "topology/presets.hpp"
#include "topology/provisioning.hpp"

namespace themis {
namespace {

DimensionConfig
sw(int size, double aggr_gbps, TimeNs lat = 700.0)
{
    DimensionConfig d;
    d.kind = DimKind::Switch;
    d.size = size;
    d.link_bw_gbps = aggr_gbps;
    d.links_per_npu = 1;
    d.step_latency_ns = lat;
    return d;
}

TEST(Provisioning, JustEnoughWhenRatioIsOne)
{
    // BW(dim1) = P1 * BW(dim2): 4x shrink, 4x bandwidth ratio.
    Topology t("je", {sw(4, 400.0), sw(8, 100.0)});
    const auto p = classifyPair(t, 0, 1);
    EXPECT_EQ(p.scenario, ProvisionScenario::JustEnough);
    EXPECT_NEAR(p.ratio, 1.0, 1e-12);
}

TEST(Provisioning, OverProvisionedSecondDim)
{
    // The Fig 5 example: BW(dim1) = 2*BW(dim2) with P1 = 4; dim2 has
    // twice the bandwidth the baseline can use.
    Topology t("over", {sw(4, 400.0), sw(4, 200.0)});
    const auto p = classifyPair(t, 0, 1);
    EXPECT_EQ(p.scenario, ProvisionScenario::OverProvisioned);
    EXPECT_NEAR(p.ratio, 0.5, 1e-12);
}

TEST(Provisioning, UnderProvisionedIsProhibited)
{
    Topology t("under", {sw(4, 1600.0), sw(4, 100.0)});
    const auto p = classifyPair(t, 0, 1);
    EXPECT_EQ(p.scenario, ProvisionScenario::UnderProvisioned);
    EXPECT_FALSE(fullUtilizationPossible(t));
}

TEST(Provisioning, NonAdjacentPairUsesProductOfSizes)
{
    Topology t("3d", {sw(4, 800.0), sw(4, 200.0), sw(4, 50.0)});
    // dim1 vs dim3: shrink = 4*4 = 16; 800 == 16*50 -> just enough.
    const auto p = classifyPair(t, 0, 2);
    EXPECT_EQ(p.scenario, ProvisionScenario::JustEnough);
}

TEST(Provisioning, AllPairsCount)
{
    const auto t = presets::make4DRingSwSwSw();
    EXPECT_EQ(classifyAllPairs(t).size(), 6u); // C(4,2)
}

TEST(Provisioning, NextGenPlatformsAreNotUnderProvisioned)
{
    // The paper's Table 2 platforms are all points Themis can drive;
    // none may contain a prohibited (under-provisioned) pair.
    for (const auto& t : presets::nextGenTopologies())
        EXPECT_TRUE(fullUtilizationPossible(t)) << t.name();
}

TEST(Provisioning, BaselineAnalysisHomoMatchesPaperMath)
{
    // Sec 6.1: on 3D-SW_SW_SW_homo the baseline needs
    // BW(dim1) = 16*BW(dim2) = 128*BW(dim3); with 800 Gb/s everywhere
    // dim2 wastes 750 Gb/s and dim3 793.75 Gb/s.
    const auto t = presets::make3DSwSwSwHomo();
    const auto a = analyzeBaseline(t);
    EXPECT_EQ(a.bottleneck_dim, 0);
    // Utilized bandwidth fractions: dim2 runs at 50/800, dim3 at
    // 6.25/800 (both scaled by the (P-1)/P volume factors).
    const double u2 = a.dim_utilization[1];
    const double u3 = a.dim_utilization[2];
    EXPECT_NEAR(u2, (50.0 / 800.0) * (7.0 / 8.0) / (15.0 / 16.0), 1e-9);
    EXPECT_NEAR(u3, (6.25 / 800.0) * (7.0 / 8.0) / (15.0 / 16.0), 1e-9);
    // Weighted utilization ~= 35% (paper quotes 35.1% as the minimum
    // baseline utilization across platforms).
    EXPECT_NEAR(a.weighted_utilization, 0.355, 0.01);
}

TEST(Provisioning, BaselineAnalysisCurrentPlatformIsNearIdeal)
{
    // Sec 3.2: the current 2D platform reaches ~97.7% utilization with
    // baseline scheduling thanks to the 12x bandwidth gap.
    const auto a = analyzeBaseline(presets::makeCurrent2D());
    EXPECT_GT(a.weighted_utilization, 0.95);
}

TEST(Provisioning, EfficientBandwidthsFollowSizeProducts)
{
    const auto t = presets::make3DSwSwSwHomo();
    const auto bws = baselineEfficientBandwidths(t);
    ASSERT_EQ(bws.size(), 3u);
    EXPECT_DOUBLE_EQ(bwToGbps(bws[0]), 800.0);
    EXPECT_DOUBLE_EQ(bwToGbps(bws[1]), 50.0);   // 800/16
    EXPECT_DOUBLE_EQ(bwToGbps(bws[2]), 6.25);   // 800/128
}

TEST(Provisioning, ScenarioNames)
{
    EXPECT_EQ(provisionScenarioName(ProvisionScenario::JustEnough),
              "Just-Enough");
    EXPECT_EQ(provisionScenarioName(ProvisionScenario::OverProvisioned),
              "Over-Provisioned");
    EXPECT_EQ(
        provisionScenarioName(ProvisionScenario::UnderProvisioned),
        "Under-Provisioned");
}

} // namespace
} // namespace themis
