/**
 * @file
 * Tests for the sweep scale-out layer: canonical result keys, exact
 * record round-trips, the crash-safe append-only ResultStore
 * (truncated-tail recovery, checkpoint resume), deterministic shard
 * partitioning, and the bit-identical shard-merge / interrupted-
 * resume guarantees the sharded grid runner is built on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/grid_shard.hpp"
#include "sim/result_store.hpp"

using namespace themis;
using sim::ResultRecord;
using sim::ResultStore;
using sim::ShardSpec;

namespace {

/** Fresh path under the system temp dir (removed if left over). */
std::string
tempStore(const std::string& name)
{
    const auto path = std::filesystem::temp_directory_path() /
                      ("themis_result_store_test_" + name + ".jsonl");
    std::filesystem::remove(path);
    return path.string();
}

/** Append raw bytes (no newline) — a record torn mid-write. */
void
appendTornBytes(const std::string& path, const std::string& bytes)
{
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs(bytes.c_str(), f);
    std::fclose(f);
}

/**
 * Deterministic synthetic "cell evaluation" — irrational-ish doubles
 * so exact round-trips actually exercise all 17 digits.
 */
ResultRecord
syntheticCell(std::size_t i)
{
    ResultRecord rec;
    rec.key = sim::makeResultKey(
        {{"cell", std::to_string(i)}, {"grid", "synthetic"}});
    rec.values = {{"time_ns", 1e6 / 3.0 * static_cast<double>(i + 1)},
                  {"util", std::sqrt(static_cast<double>(i) + 0.5)}};
    rec.fingerprint = 0x9e3779b97f4a7c15ull * (i + 1);
    rec.wall_ms = 0.25 * static_cast<double>(i); // volatile
    return rec;
}

TEST(ResultKey, SortsFieldsAndJoins)
{
    EXPECT_EQ(sim::makeResultKey({{"topo", "2D-SW_SW"},
                                  {"chunks", "8"},
                                  {"sched", "scf"}}),
              "chunks=8;sched=scf;topo=2D-SW_SW");
    // Field order in the call must not matter — the key is canonical.
    EXPECT_EQ(sim::makeResultKey({{"b", "2"}, {"a", "1"}}),
              sim::makeResultKey({{"a", "1"}, {"b", "2"}}));
}

TEST(ResultRecordCodec, RoundTripsDoublesExactly)
{
    ResultRecord rec;
    rec.key = "chunks=8;topo=2D-SW_SW";
    rec.values = {{"time_ns", 1.0 / 3.0},
                  {"tiny", 4.9406564584124654e-324},
                  {"neg", -123456.78901234567},
                  {"util", 0.61725266450417049}};
    rec.fingerprint = 0xf03c73e950049fd9ull;
    rec.wall_ms = 0.1714709997177124;

    ResultRecord back;
    ASSERT_TRUE(sim::parseRecord(sim::serializeRecord(rec, true),
                                 back));
    EXPECT_EQ(back.key, rec.key);
    EXPECT_EQ(back.fingerprint, rec.fingerprint);
    ASSERT_EQ(back.values.size(), rec.values.size());
    for (std::size_t i = 0; i < rec.values.size(); ++i) {
        EXPECT_EQ(back.values[i].first, rec.values[i].first);
        // Bit equality, not approximate: "%.17g" must reproduce the
        // exact IEEE double, that is what byte-stable merges rest on.
        EXPECT_EQ(std::memcmp(&back.values[i].second,
                              &rec.values[i].second, sizeof(double)),
                  0);
    }
    EXPECT_EQ(std::memcmp(&back.wall_ms, &rec.wall_ms,
                          sizeof(double)),
              0);
}

TEST(ResultRecordCodec, CanonicalFormDropsWallTime)
{
    ResultRecord rec = syntheticCell(3);
    const std::string canonical = sim::serializeRecord(rec, false);
    EXPECT_EQ(canonical.find("wall_ms"), std::string::npos);
    // Two evaluations differing only in wall time serialize
    // canonically byte-equal.
    ResultRecord other = rec;
    other.wall_ms = 99.0;
    EXPECT_EQ(canonical, sim::serializeRecord(other, false));
    // ... and the canonical form still parses (wall_ms optional).
    ResultRecord back;
    EXPECT_TRUE(sim::parseRecord(canonical, back));
    EXPECT_EQ(back.key, rec.key);
}

TEST(ResultRecordCodec, RejectsMalformedLines)
{
    const std::string valid =
        sim::serializeRecord(syntheticCell(0), true);
    ResultRecord out;
    EXPECT_FALSE(sim::parseRecord("", out));
    EXPECT_FALSE(sim::parseRecord("not json", out));
    EXPECT_FALSE(sim::parseRecord("{\"key\": \"unterminated", out));
    // Every proper prefix of a valid line is a torn record.
    for (std::size_t n : {valid.size() - 1, valid.size() / 2,
                          std::size_t{1}})
        EXPECT_FALSE(sim::parseRecord(valid.substr(0, n), out))
            << "prefix of " << n << " bytes parsed";
    // Trailing garbage after a complete record is rejected too.
    EXPECT_FALSE(sim::parseRecord(valid + "x", out));
}

TEST(ResultStoreJournal, PersistsAndResumesRecords)
{
    const std::string path = tempStore("persist");
    {
        ResultStore store(path);
        EXPECT_EQ(store.size(), 0u);
        store.append(syntheticCell(0));
        store.append(syntheticCell(1));
    }
    ResultStore store(path);
    EXPECT_FALSE(store.recoveredTruncatedTail());
    ASSERT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.has(syntheticCell(0).key));
    EXPECT_TRUE(store.has(syntheticCell(1).key));
    EXPECT_FALSE(store.has("cell=2;grid=synthetic"));
    const ResultRecord* rec = store.find(syntheticCell(1).key);
    ASSERT_NE(rec, nullptr);
    const double* time = rec->value("time_ns");
    ASSERT_NE(time, nullptr);
    EXPECT_EQ(*time, syntheticCell(1).values[0].second);
    std::filesystem::remove(path);
}

TEST(ResultStoreJournal, DropsTruncatedTailAndResumesCleanly)
{
    const std::string path = tempStore("torn");
    {
        ResultStore store(path);
        store.append(syntheticCell(0));
        store.append(syntheticCell(1));
    }
    // A crash mid-append leaves a partial record with no newline.
    appendTornBytes(path, "{\"key\": \"cell=2;grid=synth");
    {
        ResultStore store(path);
        EXPECT_TRUE(store.recoveredTruncatedTail());
        ASSERT_EQ(store.size(), 2u); // the torn record is not a cell
        store.append(syntheticCell(2)); // truncates the tail first
    }
    // Reopening sees exactly records 0..2, no recovery needed.
    ResultStore store(path);
    EXPECT_FALSE(store.recoveredTruncatedTail());
    ASSERT_EQ(store.size(), 3u);
    EXPECT_TRUE(store.has(syntheticCell(2).key));

    // A complete-but-corrupt line (newline present, bad bytes) is
    // also dropped.
    appendTornBytes(path, "garbage that is not a record\n");
    ResultStore reopened(path);
    EXPECT_TRUE(reopened.recoveredTruncatedTail());
    EXPECT_EQ(reopened.size(), 3u);
    std::filesystem::remove(path);
}

TEST(ShardSpecTest, ParsesValidSpecs)
{
    const ShardSpec s = sim::parseShardSpec("1/4");
    EXPECT_EQ(s.index, 1);
    EXPECT_EQ(s.count, 4);
    EXPECT_FALSE(s.whole());
    EXPECT_TRUE(sim::parseShardSpec("0/1").whole());
}

TEST(ShardSpecTest, RejectsMalformedSpecsWithDiagnostics)
{
    EXPECT_THROW(sim::parseShardSpec(""), ConfigError);
    EXPECT_THROW(sim::parseShardSpec("2"), ConfigError);
    EXPECT_THROW(sim::parseShardSpec("x/2"), ConfigError);
    EXPECT_THROW(sim::parseShardSpec("0/y"), ConfigError);
    EXPECT_THROW(sim::parseShardSpec("-1/2"), ConfigError);
    EXPECT_THROW(sim::parseShardSpec("0/0"), ConfigError);
    EXPECT_THROW(sim::parseShardSpec("2/2"), ConfigError);
    EXPECT_THROW(sim::parseShardSpec("1/ 2"), ConfigError);
}

TEST(ShardSpecTest, ShardsPartitionTheCellList)
{
    const std::size_t total = 11;
    std::vector<int> owner(total, -1);
    for (int i = 0; i < 3; ++i) {
        for (std::size_t cell :
             sim::shardCells(total, ShardSpec{i, 3})) {
            ASSERT_LT(cell, total);
            EXPECT_EQ(owner[cell], -1)
                << "cell " << cell << " owned twice";
            owner[cell] = i;
            EXPECT_TRUE((ShardSpec{i, 3}).owns(cell));
        }
    }
    for (std::size_t cell = 0; cell < total; ++cell)
        EXPECT_NE(owner[cell], -1) << "cell " << cell << " unowned";
    // Striding, not contiguous blocks: consecutive cells belong to
    // consecutive shards (cost balancing across a topology-major
    // enumeration).
    EXPECT_EQ(owner[0], 0);
    EXPECT_EQ(owner[1], 1);
    EXPECT_EQ(owner[2], 2);
    EXPECT_EQ(owner[3], 0);
}

TEST(ShardMerge, TwoShardsMergeByteIdenticalToOneProcess)
{
    const std::size_t cells = 9;
    const std::string one_path = tempStore("merge_one");
    const std::string s0_path = tempStore("merge_s0");
    const std::string s1_path = tempStore("merge_s1");
    {
        ResultStore one(one_path);
        for (std::size_t i = 0; i < cells; ++i)
            one.append(syntheticCell(i));
        ResultStore s0(s0_path), s1(s1_path);
        for (std::size_t i : sim::shardCells(cells, ShardSpec{0, 2}))
            s0.append(syntheticCell(i));
        for (std::size_t i : sim::shardCells(cells, ShardSpec{1, 2})) {
            // Shards run in different processes at different times:
            // wall clocks differ, results do not.
            ResultRecord rec = syntheticCell(i);
            rec.wall_ms += 1234.5;
            s1.append(std::move(rec));
        }
    }
    const std::string merged =
        ResultStore::canonicalMerge({s0_path, s1_path});
    EXPECT_EQ(merged, ResultStore(one_path).canonicalBytes());
    // Merge order must not matter either.
    EXPECT_EQ(merged, ResultStore::canonicalMerge({s1_path, s0_path}));
    std::filesystem::remove(one_path);
    std::filesystem::remove(s0_path);
    std::filesystem::remove(s1_path);
}

TEST(ShardMerge, RejectsConflictingDuplicates)
{
    const std::string a_path = tempStore("conflict_a");
    const std::string b_path = tempStore("conflict_b");
    {
        ResultStore a(a_path), b(b_path);
        a.append(syntheticCell(0));
        ResultRecord conflicting = syntheticCell(0);
        conflicting.values[0].second += 1.0; // a real disagreement
        b.append(std::move(conflicting));
    }
    EXPECT_THROW(ResultStore::canonicalMerge({a_path, b_path}),
                 ConfigError);
    std::filesystem::remove(a_path);
    std::filesystem::remove(b_path);
}

TEST(CheckpointResume, InterruptedRunResumesBitIdentical)
{
    const std::size_t cells = 8;
    const std::string full_path = tempStore("resume_full");
    const std::string int_path = tempStore("resume_interrupted");
    {
        // Uninterrupted reference run.
        ResultStore full(full_path);
        for (std::size_t i = 0; i < cells; ++i)
            full.append(syntheticCell(i));
    }
    {
        // Interrupted run: 3 cells recorded, then a crash tears the
        // 4th record mid-write.
        ResultStore store(int_path);
        for (std::size_t i = 0; i < 3; ++i)
            store.append(syntheticCell(i));
    }
    appendTornBytes(
        int_path,
        sim::serializeRecord(syntheticCell(3), true).substr(0, 40));
    {
        // Restart: recorded cells are skipped, the torn record is
        // re-evaluated, the rest complete.
        ResultStore store(int_path);
        EXPECT_TRUE(store.recoveredTruncatedTail());
        EXPECT_EQ(store.size(), 3u);
        for (std::size_t i = 0; i < cells; ++i)
            if (!store.has(syntheticCell(i).key))
                store.append(syntheticCell(i));
        EXPECT_EQ(store.size(), cells);
    }
    EXPECT_EQ(ResultStore(int_path).canonicalBytes(),
              ResultStore(full_path).canonicalBytes());
    // The journals themselves are byte-identical too once the
    // volatile wall times agree (same records, same order) — the
    // canonical comparison is what the CLI-level merge uses.
    EXPECT_EQ(ResultStore::canonicalMerge({int_path}),
              ResultStore::canonicalMerge({full_path}));
    std::filesystem::remove(full_path);
    std::filesystem::remove(int_path);
}

} // namespace
