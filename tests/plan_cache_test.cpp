/**
 * @file
 * Plan-cache soundness: cached and cold runs must produce bit-identical
 * chunk schedules and bit-identical simulation results across every
 * scheduler and collective type; keys must separate everything plans
 * depend on and nothing they don't; the history-dependent Themis
 * configuration must bypass the cache.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/plan_cache.hpp"
#include "models/model_zoo.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/sweep_runner.hpp"
#include "topology/presets.hpp"
#include "workload/training_loop.hpp"

namespace themis {
namespace {

bool
schedulesIdentical(const std::vector<ChunkSchedule>& a,
                   const std::vector<ChunkSchedule>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].chunk_id != b[i].chunk_id || a[i].size != b[i].size ||
            a[i].stages != b[i].stages)
            return false;
    }
    return true;
}

struct SimResult
{
    TimeNs duration = 0.0;
    double util = 0.0;

    bool
    operator==(const SimResult& o) const
    {
        return duration == o.duration && util == o.util;
    }
};

SimResult
simulate(const Topology& topo, runtime::RuntimeConfig cfg,
         CollectiveType type, PlanCache* cache)
{
    cfg.plan_cache = cache;
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = type;
    req.size = 3.0e8;
    req.chunks = 16;
    const int id = comm.issue(req);
    queue.run();
    comm.finalizeStats();
    return SimResult{comm.record(id).duration(),
                     comm.utilization().weightedUtilization()};
}

TEST(LatencyModelFingerprint, SeparatesTopologiesAndScopes)
{
    const auto homo = LatencyModel::fromTopology(
        presets::make3DSwSwSwHomo());
    const auto homo_again = LatencyModel::fromTopology(
        presets::make3DSwSwSwHomo());
    const auto hetero = LatencyModel::fromTopology(
        presets::make3DSwSwSwHetero());
    EXPECT_EQ(homo.fingerprint(), homo_again.fingerprint());
    EXPECT_NE(homo.fingerprint(), hetero.fingerprint());

    // Partial participation changes predictions, so it must change
    // the fingerprint.
    const auto topo = presets::make2DSwSw();
    const auto full = LatencyModel::fromScope(topo, {});
    const auto partial = LatencyModel::fromScope(
        topo, {ScopeDim{0, 0}, ScopeDim{1, 8}});
    EXPECT_NE(full.fingerprint(), partial.fingerprint());
}

TEST(PlanKey, BaselineNormalizesSchedulerConfig)
{
    ThemisConfig a;
    ThemisConfig b;
    b.threshold_fraction = 0.5;
    b.use_threshold = false;
    // The baseline scheduler ignores ThemisConfig, so both keys must
    // collapse onto one cache entry...
    EXPECT_EQ(PlanKey::make(SchedulerKind::Baseline, a,
                            CollectiveType::AllReduce, 1e9, 64, 7),
              PlanKey::make(SchedulerKind::Baseline, b,
                            CollectiveType::AllReduce, 1e9, 64, 7));
    // ...while Themis keys must separate them.
    EXPECT_FALSE(PlanKey::make(SchedulerKind::Themis, a,
                               CollectiveType::AllReduce, 1e9, 64, 7) ==
                 PlanKey::make(SchedulerKind::Themis, b,
                               CollectiveType::AllReduce, 1e9, 64, 7));
}

TEST(PlanCache, StoreThenFindReturnsIdenticalPlan)
{
    const auto topo = presets::make3DSwSwSwHomo();
    const auto model = LatencyModel::fromTopology(topo);
    auto scheduler = makeScheduler(SchedulerKind::Themis, model);
    auto cold =
        scheduler->scheduleCollective(CollectiveType::AllReduce, 1e9, 32);

    PlanCache cache;
    const PlanKey key =
        PlanKey::make(SchedulerKind::Themis, {},
                      CollectiveType::AllReduce, 1e9, 32,
                      model.fingerprint());
    EXPECT_EQ(cache.findPlan(key), nullptr);
    const auto stored = cache.storePlan(key, cold);
    const auto found = cache.findPlan(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, stored);
    EXPECT_TRUE(schedulesIdentical(*found, cold));

    const auto stats = cache.stats();
    EXPECT_EQ(stats.plan_hits, 1u);
    EXPECT_EQ(stats.plan_misses, 1u);
    EXPECT_EQ(cache.planCount(), 1u);
}

TEST(PlanCache, SchedulerOutputIsPureAcrossRepeatedCalls)
{
    // The cache's soundness premise: scheduling is a pure function of
    // the key. Every scheduler must reproduce bit-identical plans on
    // repeated calls (Themis resets its tracker per collective).
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHetero());
    for (const auto kind :
         {SchedulerKind::Baseline, SchedulerKind::Themis}) {
        auto scheduler = makeScheduler(kind, model);
        for (const auto type :
             {CollectiveType::AllReduce, CollectiveType::ReduceScatter,
              CollectiveType::AllGather, CollectiveType::AllToAll}) {
            const auto first =
                scheduler->scheduleCollective(type, 7.7e8, 24);
            const auto second =
                scheduler->scheduleCollective(type, 7.7e8, 24);
            EXPECT_TRUE(schedulesIdentical(first, second))
                << schedulerKindName(kind) << "/"
                << collectiveTypeName(type);
        }
    }
}

TEST(PlanCache, CachedRunsBitIdenticalAcrossSchedulersAndTypes)
{
    // Acceptance gate: cache-on and cache-off simulations produce
    // bit-identical results for every scheduler and collective type —
    // and a second cache-on run (all hits) stays identical too.
    const std::vector<runtime::RuntimeConfig> configs{
        runtime::baselineConfig(), runtime::themisFifoConfig(),
        runtime::themisScfConfig()};
    for (const auto& topo :
         {presets::make3DSwSwSwHetero(), presets::make2DSwSw()}) {
        for (const auto& cfg : configs) {
            for (const auto type :
                 {CollectiveType::AllReduce,
                  CollectiveType::ReduceScatter,
                  CollectiveType::AllGather,
                  CollectiveType::AllToAll}) {
                PlanCache cache;
                const auto cold = simulate(topo, cfg, type, nullptr);
                const auto miss = simulate(topo, cfg, type, &cache);
                const auto hit = simulate(topo, cfg, type, &cache);
                EXPECT_TRUE(cold == miss);
                EXPECT_TRUE(cold == hit);
                const auto stats = cache.stats();
                EXPECT_EQ(stats.plan_misses, 1u);
                EXPECT_EQ(stats.plan_hits, 1u);
            }
        }
    }
}

TEST(PlanCache, TrainingIterationBitIdenticalWithSharedCache)
{
    // One shared cache across a whole training iteration (per-layer
    // and cross-layer reuse) must not change the Fig 12 decomposition.
    const auto topo = presets::make3DSwSwSwHomo();
    auto run = [&](PlanCache* cache) {
        runtime::RuntimeConfig cfg = runtime::themisScfConfig();
        cfg.plan_cache = cache;
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, cfg);
        workload::TrainingLoop loop(comm, models::makeGNMT());
        return loop.runIteration();
    };
    PlanCache cache;
    const auto cold = run(nullptr);
    const auto warm1 = run(&cache);
    const auto warm2 = run(&cache);
    EXPECT_EQ(cold.total, warm1.total);
    EXPECT_EQ(cold.total, warm2.total);
    EXPECT_EQ(cold.exposed_mp, warm2.exposed_mp);
    EXPECT_EQ(cold.exposed_dp, warm2.exposed_dp);
    EXPECT_EQ(cold.fwd_compute, warm2.fwd_compute);
    EXPECT_EQ(cold.bwd_compute, warm2.bwd_compute);
    // The second iteration re-derived nothing.
    const auto stats = cache.stats();
    EXPECT_GT(stats.plan_hits, 0u);
    EXPECT_EQ(stats.plan_misses, cache.planCount());
}

TEST(PlanCache, EnforcedOrdersCachedAndSound)
{
    const auto topo = presets::make3DSwSwSwHetero();
    for (const auto planner :
         {runtime::OrderPlanner::ShadowSim,
          runtime::OrderPlanner::FastSerial}) {
        runtime::RuntimeConfig cfg = runtime::themisScfConfig();
        cfg.enforce_consistent_order = true;
        cfg.order_planner = planner;
        PlanCache cache;
        const auto cold =
            simulate(topo, cfg, CollectiveType::AllReduce, nullptr);
        const auto miss =
            simulate(topo, cfg, CollectiveType::AllReduce, &cache);
        const auto hit =
            simulate(topo, cfg, CollectiveType::AllReduce, &cache);
        EXPECT_TRUE(cold == miss);
        EXPECT_TRUE(cold == hit);
        EXPECT_EQ(cache.orderCount(), 1u);
        const auto stats = cache.stats();
        EXPECT_EQ(stats.order_hits, 1u);
        EXPECT_EQ(stats.order_misses, 1u);
    }
}

TEST(PlanCache, CarryLoadAcrossCollectivesBypassesCache)
{
    // With carry_load_across_collectives the second collective's plan
    // depends on the first — memoization would be unsound, so the
    // runtime must bypass the cache and reproduce cache-off behavior.
    const auto topo = presets::make3DSwSwSwHetero();
    auto run = [&](PlanCache* cache) {
        runtime::RuntimeConfig cfg = runtime::themisScfConfig();
        cfg.themis.carry_load_across_collectives = true;
        cfg.plan_cache = cache;
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, cfg);
        CollectiveRequest req;
        req.size = 2.0e8;
        req.chunks = 8;
        const int first = comm.issue(req);
        queue.run();
        const int second = comm.issue(req);
        queue.run();
        return std::pair<TimeNs, TimeNs>(
            comm.record(first).duration(),
            comm.record(second).duration());
    };
    PlanCache cache;
    const auto without = run(nullptr);
    const auto with = run(&cache);
    EXPECT_EQ(without.first, with.first);
    EXPECT_EQ(without.second, with.second);
    EXPECT_EQ(cache.planCount(), 0u);
    EXPECT_EQ(cache.stats().plan_misses, 0u);
}

TEST(PlanCache, SharedAcrossSweepWorkersDeterministic)
{
    // Many workers hammering one cache concurrently must produce the
    // same per-cell results as cold serial runs.
    const auto topo = presets::make3DSwSwSwHomo();
    const runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    const int cells = 24;
    std::vector<SimResult> cold;
    for (int i = 0; i < cells; ++i)
        cold.push_back(
            simulate(topo, cfg, CollectiveType::AllReduce, nullptr));

    PlanCache cache;
    const auto swept = sim::sweepIndexed(
        static_cast<std::size_t>(cells),
        [&](std::size_t, sim::EventQueue& queue) {
            runtime::RuntimeConfig run_cfg = cfg;
            run_cfg.plan_cache = &cache;
            runtime::CommRuntime comm(queue, topo, run_cfg);
            CollectiveRequest req;
            req.size = 3.0e8;
            req.chunks = 16;
            const int id = comm.issue(req);
            queue.run();
            comm.finalizeStats();
            return SimResult{
                comm.record(id).duration(),
                comm.utilization().weightedUtilization()};
        },
        sim::SweepOptions{8});
    ASSERT_EQ(swept.size(), cold.size());
    for (int i = 0; i < cells; ++i)
        EXPECT_TRUE(swept[static_cast<std::size_t>(i)] ==
                    cold[static_cast<std::size_t>(i)]);
    EXPECT_EQ(cache.planCount(), 1u);
}

} // namespace
} // namespace themis
