/**
 * @file
 * End-to-end runtime tests: chunk pipelines on the event simulator.
 * The headline case reproduces the paper's Fig 5 worked example —
 * baseline scheduling finishes the 256MB All-Reduce in 8 time units,
 * Themis+SCF in 7 — and the enforced consistent ordering (Sec 4.6)
 * must not change the result.
 */

#include <gtest/gtest.h>

#include "core/ideal_estimator.hpp"
#include "runtime/comm_runtime.hpp"
#include "topology/presets.hpp"

namespace themis::runtime {
namespace {

/** Fig 5 platform: 4x4 switches, 48/24 GB/s, no step latency. */
Topology
fig5Topology()
{
    DimensionConfig d1, d2;
    d1.kind = d2.kind = DimKind::Switch;
    d1.size = d2.size = 4;
    d1.link_bw_gbps = 384.0; // 48 GB/s
    d2.link_bw_gbps = 192.0; // 24 GB/s
    d1.links_per_npu = d2.links_per_npu = 1;
    d1.step_latency_ns = d2.step_latency_ns = 0.0;
    return Topology("fig5", {d1, d2});
}

/** One time unit of Fig 5: 64MB RS on dim1 = 48MB / 48 GB/s = 1 ms. */
constexpr TimeNs kUnit = 1.0e6;

TimeNs
runSingleAllReduce(const Topology& topo, const RuntimeConfig& cfg,
                   Bytes size, int chunks)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = size;
    req.chunks = chunks;
    const int id = comm.issue(req);
    queue.run();
    comm.finalizeStats();
    EXPECT_TRUE(comm.record(id).done());
    return comm.record(id).duration();
}

TEST(RuntimeFig5, BaselineTakesEightUnits)
{
    const TimeNs t = runSingleAllReduce(fig5Topology(),
                                        baselineConfig(), 256.0e6, 4);
    EXPECT_NEAR(t, 8.0 * kUnit, 1e-3 * kUnit);
}

TEST(RuntimeFig5, ThemisScfTakesSevenUnits)
{
    const TimeNs t = runSingleAllReduce(fig5Topology(),
                                        themisScfConfig(), 256.0e6, 4);
    EXPECT_NEAR(t, 7.0 * kUnit, 1e-3 * kUnit);
}

TEST(RuntimeFig5, ThemisBeatsBaseline)
{
    const TimeNs baseline = runSingleAllReduce(
        fig5Topology(), baselineConfig(), 256.0e6, 4);
    const TimeNs themis = runSingleAllReduce(
        fig5Topology(), themisScfConfig(), 256.0e6, 4);
    EXPECT_LT(themis, baseline);
}

TEST(RuntimeFig5, ShadowSimEnforcementReproducesPolicyExactly)
{
    for (auto base : {baselineConfig(), themisScfConfig(),
                      themisFifoConfig()}) {
        auto enforced = base;
        enforced.enforce_consistent_order = true;
        enforced.order_planner = OrderPlanner::ShadowSim;
        const TimeNs t_policy =
            runSingleAllReduce(fig5Topology(), base, 256.0e6, 4);
        const TimeNs t_enforced =
            runSingleAllReduce(fig5Topology(), enforced, 256.0e6, 4);
        EXPECT_NEAR(t_policy, t_enforced, 1e-6 * kUnit);
    }
}

TEST(RuntimeFig5, FastSerialEnforcementStaysClose)
{
    // With zero step latency and serial large chunks, the paper's
    // fast serial pre-simulation mirrors the engines up to same-time
    // tie-breaks: allow at most one pipeline stage of drift.
    for (auto base : {baselineConfig(), themisScfConfig()}) {
        auto enforced = base;
        enforced.enforce_consistent_order = true;
        enforced.order_planner = OrderPlanner::FastSerial;
        const TimeNs t_policy =
            runSingleAllReduce(fig5Topology(), base, 256.0e6, 4);
        const TimeNs t_enforced =
            runSingleAllReduce(fig5Topology(), enforced, 256.0e6, 4);
        EXPECT_LE(std::abs(t_policy - t_enforced), 1.0 * kUnit);
    }
}

TEST(RuntimeFig5, EnforcedOrderIsDeterministic)
{
    auto cfg = themisScfConfig();
    cfg.enforce_consistent_order = true;
    const TimeNs a =
        runSingleAllReduce(fig5Topology(), cfg, 256.0e6, 4);
    const TimeNs b =
        runSingleAllReduce(fig5Topology(), cfg, 256.0e6, 4);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(RuntimeSingleDim, MatchesClosedFormOpTime)
{
    // One dimension, one chunk: duration == A + N*B exactly.
    DimensionConfig d;
    d.kind = DimKind::Ring;
    d.size = 16;
    d.link_bw_gbps = 100.0;
    d.links_per_npu = 2;
    d.step_latency_ns = 500.0;
    Topology topo("1d", {d});

    const Bytes size = 32.0e6;
    const TimeNs t = runSingleAllReduce(topo, baselineConfig(), size, 1);
    // Ring AR: RS + AG, each 15 steps * 500 ns + 30MB / 25 GB/s.
    const TimeNs expect =
        2.0 * (15.0 * 500.0 + (size * 15.0 / 16.0) / 25.0);
    EXPECT_NEAR(t, expect, 1.0);
}

TEST(RuntimeSingleDim, ChunkingAddsLatencyButNotBandwidthTime)
{
    DimensionConfig d;
    d.kind = DimKind::Switch;
    d.size = 8;
    d.link_bw_gbps = 800.0;
    d.links_per_npu = 1;
    d.step_latency_ns = 1000.0;
    Topology topo("1d", {d});
    // Serial chunks each pay their own fixed delay.
    const TimeNs t1 =
        runSingleAllReduce(topo, baselineConfig(), 64.0e6, 1);
    const TimeNs t8 =
        runSingleAllReduce(topo, baselineConfig(), 64.0e6, 8);
    EXPECT_GT(t8, t1);
    // The extra cost is bounded by the extra fixed delays.
    EXPECT_LT(t8 - t1, 8.0 * 6.0 * 1000.0);
}

TEST(Runtime, UtilizationMatchesHandCount)
{
    // Baseline on Fig 5: 480 MB progressed over 8 units of 72 GB/s.
    sim::EventQueue queue;
    CommRuntime comm(queue, fig5Topology(), baselineConfig());
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 256.0e6;
    req.chunks = 4;
    comm.issue(req);
    queue.run();
    comm.finalizeStats();
    EXPECT_NEAR(comm.utilization().weightedUtilization(),
                480.0 / 576.0, 1e-6);
}

TEST(Runtime, ThemisScfUtilizationHigher)
{
    auto run_util = [&](const RuntimeConfig& cfg) {
        sim::EventQueue queue;
        CommRuntime comm(queue, fig5Topology(), cfg);
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = 256.0e6;
        req.chunks = 4;
        comm.issue(req);
        queue.run();
        comm.finalizeStats();
        return comm.utilization().weightedUtilization();
    };
    const double u_base = run_util(baselineConfig());
    const double u_scf = run_util(themisScfConfig());
    EXPECT_GT(u_scf, u_base);
    // 480 MB over 7 units of 72 GB/s-units: ~95.2% utilization.
    EXPECT_NEAR(u_scf, 480.0 / (72.0 * 7.0), 1e-6);
}

TEST(Runtime, PerDimUtilizationBounded)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make3DSwSwSwHomo(),
                     themisScfConfig());
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e8;
    req.chunks = 64;
    comm.issue(req);
    queue.run();
    comm.finalizeStats();
    for (double u : comm.utilization().perDimUtilization()) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0 + 1e-9);
    }
}

TEST(Runtime, ActivityIntervalsCoverBaselineBottleneck)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, fig5Topology(), baselineConfig());
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 256.0e6;
    req.chunks = 4;
    const int id = comm.issue(req);
    queue.run();
    comm.finalizeStats();
    // dim1 is busy the whole collective under baseline scheduling.
    EXPECT_NEAR(comm.activity().busyTime(0),
                comm.record(id).duration(), 1.0);
    // dim2 has ops present from the first chunk's RS completion until
    // the last AG feeds back, but far less transfer time.
    EXPECT_GT(comm.activity().busyTime(1), 0.0);
}

TEST(Runtime, ScopedCollectiveUsesOnlyScopedDims)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make3DSwSwSwHomo(),
                     themisScfConfig());
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e7;
    req.chunks = 8;
    req.scope = {ScopeDim{2, 0}}; // last dimension only
    comm.issue(req);
    queue.run();
    comm.finalizeStats();
    comm.engine(0).channel().sync();
    comm.engine(1).channel().sync();
    comm.engine(2).channel().sync();
    EXPECT_DOUBLE_EQ(comm.engine(0).channel().progressedBytes(), 0.0);
    EXPECT_DOUBLE_EQ(comm.engine(1).channel().progressedBytes(), 0.0);
    EXPECT_GT(comm.engine(2).channel().progressedBytes(), 0.0);
}

TEST(Runtime, SubGroupScopeShrinksCollective)
{
    // An 8-NPU sub-group of the 64-wide dim2 moves less data and
    // finishes sooner than the full dimension.
    const auto topo = presets::make2DSwSw();
    auto run_scoped = [&](int participants) {
        sim::EventQueue queue;
        CommRuntime comm(queue, topo, themisScfConfig());
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = 6.4e7;
        req.chunks = 8;
        req.scope = {ScopeDim{1, participants}};
        const int id = comm.issue(req);
        queue.run();
        return comm.record(id).duration();
    };
    EXPECT_LT(run_scoped(8), run_scoped(64));
}

TEST(Runtime, ConcurrentCollectivesBothComplete)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make3DSwSwSwHetero(),
                     themisScfConfig());
    CollectiveRequest a;
    a.type = CollectiveType::AllReduce;
    a.size = 5.0e7;
    a.chunks = 16;
    CollectiveRequest b = a;
    b.type = CollectiveType::AllGather;
    int done = 0;
    comm.issue(a, [&] { ++done; });
    comm.issue(b, [&] { ++done; });
    EXPECT_EQ(comm.outstanding(), 2);
    queue.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(comm.outstanding(), 0);
}

TEST(Runtime, BackToBackCollectivesSeparateWindows)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, fig5Topology(), baselineConfig());
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 64.0e6;
    req.chunks = 4;
    comm.issue(req, [&] {
        // Re-issue 1 ms after the first completes: the idle gap must
        // not count towards comm-active time.
        queue.scheduleAfter(1.0e6, [&] { comm.issue(req); });
    });
    queue.run();
    comm.finalizeStats();
    const auto& recs = comm.records();
    ASSERT_EQ(recs.size(), 2u);
    const TimeNs busy =
        recs[0].duration() + recs[1].duration();
    EXPECT_NEAR(comm.utilization().activeTime(), busy, 1.0);
}

TEST(Runtime, AllToAllCompletesOnEveryPreset)
{
    for (const auto& topo : presets::nextGenTopologies()) {
        sim::EventQueue queue;
        CommRuntime comm(queue, topo, themisScfConfig());
        CollectiveRequest req;
        req.type = CollectiveType::AllToAll;
        req.size = 1.7e6;
        req.chunks = 4;
        const int id = comm.issue(req);
        queue.run();
        EXPECT_TRUE(comm.record(id).done()) << topo.name();
        EXPECT_GT(comm.record(id).duration(), 0.0) << topo.name();
    }
}

TEST(Runtime, RecordsTrackIssueAndCompletion)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, fig5Topology(), themisScfConfig());
    queue.scheduleAfter(5.0e5, [&] {
        CollectiveRequest req;
        req.type = CollectiveType::ReduceScatter;
        req.size = 64.0e6;
        req.chunks = 4;
        comm.issue(req);
    });
    queue.run();
    const auto& rec = comm.record(0);
    EXPECT_DOUBLE_EQ(rec.issued, 5.0e5);
    EXPECT_GT(rec.completed, rec.issued);
    EXPECT_EQ(rec.type, CollectiveType::ReduceScatter);
}

TEST(Ideal, FormulaMatchesTable3)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    // 2400 Gb/s total = 300 GB/s; AR moves the data twice.
    EXPECT_NEAR(
        idealCollectiveTime(CollectiveType::AllReduce, 1.0e9, model),
        2.0e9 / 300.0, 1e-6);
    EXPECT_NEAR(
        idealCollectiveTime(CollectiveType::AllGather, 1.0e9, model),
        1.0e9 / 300.0, 1e-6);
}

} // namespace
} // namespace themis::runtime
