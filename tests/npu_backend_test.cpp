/**
 * @file
 * Per-NPU backend tests: exact cross-validation against the
 * dimension-granular runtime on symmetric platforms, per-NPU byte
 * accounting, and the Sec 4.6.2 consistency story — skew can deadlock
 * free-running queues; the enforced pre-simulated order cannot.
 */

#include <gtest/gtest.h>

#include "core/baseline_scheduler.hpp"
#include "core/themis_scheduler.hpp"
#include "npu/npu_machine.hpp"
#include "runtime/comm_runtime.hpp"
#include "topology/presets.hpp"

namespace themis {
namespace {

/** Small heterogeneous platform (64 NPUs) for per-NPU runs. */
Topology
smallTopology()
{
    DimensionConfig d1, d2, d3;
    d1.kind = DimKind::Ring;
    d1.size = 4;
    d1.link_bw_gbps = 600.0;
    d1.links_per_npu = 2;
    d1.step_latency_ns = 100.0;
    d2.kind = DimKind::Switch;
    d2.size = 4;
    d2.link_bw_gbps = 400.0;
    d2.links_per_npu = 1;
    d2.step_latency_ns = 700.0;
    d3.kind = DimKind::FullyConnected;
    d3.size = 4;
    d3.link_bw_gbps = 100.0;
    d3.links_per_npu = 3;
    d3.step_latency_ns = 700.0;
    return Topology("small-4x4x4", {d1, d2, d3});
}

std::vector<ChunkSchedule>
themisSchedules(const Topology& topo, Bytes size, int chunks)
{
    const auto model = LatencyModel::fromTopology(topo);
    ThemisScheduler sched(model);
    return sched.scheduleCollective(CollectiveType::AllReduce, size,
                                    chunks);
}

TimeNs
frontendTime(const Topology& topo, const runtime::RuntimeConfig& cfg,
             Bytes size, int chunks)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = size;
    req.chunks = chunks;
    const int id = comm.issue(req);
    queue.run();
    return comm.record(id).duration();
}

TEST(NpuBackend, CompletesOnSymmetricPlatform)
{
    const auto topo = smallTopology();
    const auto schedules = themisSchedules(topo, 64.0e6, 8);
    const auto result =
        npu::simulatePerNpu(topo, CollectiveType::AllReduce, schedules);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.stuck_ops, 0u);
    EXPECT_GT(result.makespan, 0.0);
}

TEST(NpuBackend, MatchesDimensionGranularRuntimeExactly)
{
    // The headline cross-validation: with zero skew every NPU behaves
    // identically and the per-NPU makespan equals the symmetric
    // runtime's duration.
    const auto topo = smallTopology();
    for (int chunks : {4, 16, 64}) {
        const Bytes size = 128.0e6;
        const auto schedules = themisSchedules(topo, size, chunks);
        npu::NpuSimConfig cfg;
        cfg.policy = IntraDimPolicy::Scf;
        const auto per_npu = npu::simulatePerNpu(
            topo, CollectiveType::AllReduce, schedules, cfg);
        ASSERT_TRUE(per_npu.completed);
        const TimeNs frontend = frontendTime(
            topo, runtime::themisScfConfig(), size, chunks);
        EXPECT_NEAR(per_npu.makespan, frontend, 1e-6 * frontend)
            << chunks << " chunks";
    }
}

TEST(NpuBackend, MatchesFrontendForBaselineFifoToo)
{
    const auto topo = smallTopology();
    const Bytes size = 96.0e6;
    const auto model = LatencyModel::fromTopology(topo);
    BaselineScheduler sched(model);
    const auto schedules = sched.scheduleCollective(
        CollectiveType::AllReduce, size, 16);
    npu::NpuSimConfig cfg;
    cfg.policy = IntraDimPolicy::Fifo;
    const auto per_npu = npu::simulatePerNpu(
        topo, CollectiveType::AllReduce, schedules, cfg);
    ASSERT_TRUE(per_npu.completed);
    const TimeNs frontend =
        frontendTime(topo, runtime::baselineConfig(), size, 16);
    EXPECT_NEAR(per_npu.makespan, frontend, 1e-6 * frontend);
}

TEST(NpuBackend, EveryNpuSendsIdenticalBytesWhenSymmetric)
{
    const auto topo = smallTopology();
    const auto schedules = themisSchedules(topo, 32.0e6, 8);
    const auto result =
        npu::simulatePerNpu(topo, CollectiveType::AllReduce, schedules);
    ASSERT_TRUE(result.completed);
    for (int d = 0; d < topo.numDims(); ++d) {
        const Bytes ref =
            result.egress_bytes[0][static_cast<std::size_t>(d)];
        EXPECT_GT(ref, 0.0);
        for (std::size_t n = 1; n < result.egress_bytes.size(); ++n) {
            EXPECT_NEAR(result.egress_bytes[n]
                                           [static_cast<std::size_t>(d)],
                        ref, 1.0)
                << "npu " << n << " dim " << d;
        }
    }
}

TEST(NpuBackend, SkewedFreeRunningQueuesCanDeadlock)
{
    // Sec 4.6.2: runtime variation makes chunks available in different
    // orders on different NPUs; with ops blocking their queue while
    // waiting for peers, some seed must wedge the machine.
    const auto topo = smallTopology();
    const auto schedules = themisSchedules(topo, 64.0e6, 16);
    bool deadlocked = false;
    for (std::uint64_t seed = 1; seed <= 20 && !deadlocked; ++seed) {
        npu::NpuSimConfig cfg;
        cfg.max_skew_ns = 50000.0;
        cfg.seed = seed;
        const auto result = npu::simulatePerNpu(
            topo, CollectiveType::AllReduce, schedules, cfg);
        deadlocked = !result.completed && result.stuck_ops > 0;
    }
    EXPECT_TRUE(deadlocked)
        << "no seed deadlocked; the consistency mechanism would be "
           "unnecessary";
}

TEST(NpuBackend, EnforcedOrderSurvivesEverySkewSeed)
{
    // The paper's fix: all NPUs execute the same pre-simulated
    // per-dimension order. No skew seed may deadlock, and the cost
    // stays bounded.
    const auto topo = smallTopology();
    const auto schedules = themisSchedules(topo, 64.0e6, 16);
    const auto model = LatencyModel::fromTopology(topo);
    ConsistencyPlanner planner(model, IntraDimPolicy::Scf);
    const auto plan = planner.plan(schedules);
    ASSERT_TRUE(planIsDeadlockFree(schedules, plan));

    const auto unskewed = [&] {
        npu::NpuSimConfig cfg;
        cfg.enforced_order = plan.order;
        return npu::simulatePerNpu(topo, CollectiveType::AllReduce,
                                   schedules, cfg);
    }();
    ASSERT_TRUE(unskewed.completed);

    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        npu::NpuSimConfig cfg;
        cfg.max_skew_ns = 50000.0;
        cfg.seed = seed;
        cfg.enforced_order = plan.order;
        const auto result = npu::simulatePerNpu(
            topo, CollectiveType::AllReduce, schedules, cfg);
        EXPECT_TRUE(result.completed) << "seed " << seed;
        // Skew only delays; it cannot blow the makespan up.
        EXPECT_LE(result.makespan,
                  unskewed.makespan + 100.0 * 50000.0)
            << "seed " << seed;
    }
}

TEST(NpuBackend, OffloadDimensionsAlsoValidate)
{
    DimensionConfig d1, d2;
    d1.kind = DimKind::Ring;
    d1.size = 4;
    d1.link_bw_gbps = 400.0;
    d1.links_per_npu = 2;
    d1.step_latency_ns = 100.0;
    d2.kind = DimKind::Switch;
    d2.size = 6; // non-power-of-two: offload only
    d2.link_bw_gbps = 200.0;
    d2.links_per_npu = 1;
    d2.step_latency_ns = 700.0;
    d2.in_network_offload = true;
    Topology topo("ring-offload", {d1, d2});

    const auto schedules = themisSchedules(topo, 24.0e6, 8);
    const auto per_npu =
        npu::simulatePerNpu(topo, CollectiveType::AllReduce, schedules);
    ASSERT_TRUE(per_npu.completed);
    const TimeNs frontend =
        frontendTime(topo, runtime::themisScfConfig(), 24.0e6, 8);
    EXPECT_NEAR(per_npu.makespan, frontend, 1e-6 * frontend);
}


TEST(NpuBackend, ReduceScatterAndAllToAllSchedulesRun)
{
    const auto topo = smallTopology();
    const auto model = LatencyModel::fromTopology(topo);
    ThemisScheduler sched(model);
    for (auto type : {CollectiveType::ReduceScatter,
                      CollectiveType::AllToAll}) {
        const auto schedules =
            sched.scheduleCollective(type, 32.0e6, 8);
        const auto result =
            npu::simulatePerNpu(topo, type, schedules);
        EXPECT_TRUE(result.completed)
            << collectiveTypeName(type);
        EXPECT_GT(result.makespan, 0.0);
    }
}

} // namespace
} // namespace themis
