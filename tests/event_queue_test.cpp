/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation and bounded runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace themis::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30.0, [&] { fired.push_back(3); });
    q.schedule(10.0, [&] { fired.push_back(1); });
    q.schedule(20.0, [&] { fired.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, SameTimeFifoBySchedulingOrder)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.schedule(5.0, [&fired, i] { fired.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMore)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            q.scheduleAfter(10.0, chain);
    };
    q.scheduleAfter(0.0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_DOUBLE_EQ(q.now(), 40.0);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    const auto id = q.schedule(10.0, [&] { fired = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    q.cancel(424242);
    SUCCEED();
}

TEST(EventQueue, CancelOneOfManyAtSameTime)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5.0, [&] { fired.push_back(1); });
    const auto id = q.schedule(5.0, [&] { fired.push_back(2); });
    q.schedule(5.0, [&] { fired.push_back(3); });
    q.cancel(id);
    q.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10.0, [&] { fired.push_back(1); });
    q.schedule(20.0, [&] { fired.push_back(2); });
    q.schedule(30.0, [&] { fired.push_back(3); });
    EXPECT_EQ(q.runUntil(20.0), 2u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(q.now(), 20.0);
    EXPECT_EQ(q.pendingCount(), 1u);
    q.run();
    EXPECT_EQ(fired.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(500.0);
    EXPECT_DOUBLE_EQ(q.now(), 500.0);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    bool fired = false;
    q.schedule(10.0, [&] { fired = true; });
    q.runUntil(1.0);
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100.0, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50.0, [] {}), "past");
}

TEST(EventQueue, NegativeDelayPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.scheduleAfter(-1.0, [] {}), "negative");
}

TEST(EventQueue, ManyEventsStressDeterminism)
{
    EventQueue q;
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        q.schedule(static_cast<double>((i * 37) % 1000),
                   [&sum, i] { sum += i; });
    }
    EXPECT_EQ(q.run(), 10000u);
    EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TEST(EventQueue, StaleIdCannotCancelSlotSuccessor)
{
    // The slab recycles slots through a free list; a stale id from a
    // previous tenant must miss the current one (generation tag).
    EventQueue q;
    bool first = false, second = false;
    const auto id_first = q.schedule(10.0, [&] { first = true; });
    q.cancel(id_first); // frees the slot
    const auto id_second = q.schedule(20.0, [&] { second = true; });
    EXPECT_NE(id_first, id_second);
    q.cancel(id_first); // stale generation: must be a no-op
    EXPECT_EQ(q.pendingCount(), 1u);
    q.run();
    EXPECT_FALSE(first);
    EXPECT_TRUE(second);
}

TEST(EventQueue, FiredIdCannotCancelSlotSuccessor)
{
    EventQueue q;
    int fired = 0;
    const auto id_first = q.schedule(10.0, [&] { ++fired; });
    q.run(); // slot released by firing, not by cancel
    const auto id_second = q.schedule(20.0, [&] { ++fired; });
    EXPECT_NE(id_first, id_second);
    q.cancel(id_first);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, IdReuseAcrossManyGenerations)
{
    // Drive one slot through many alloc/cancel cycles; every issued id
    // must stay unique and cancellation must only ever hit its own
    // event.
    EventQueue q;
    std::vector<EventQueue::EventId> issued;
    for (int round = 0; round < 100; ++round) {
        bool fired = false;
        const auto id = q.schedule(10.0, [&fired] { fired = true; });
        for (const auto old : issued)
            EXPECT_NE(old, id);
        for (const auto old : issued)
            q.cancel(old); // all stale: no-ops
        EXPECT_EQ(q.pendingCount(), 1u);
        q.cancel(id);
        EXPECT_TRUE(q.empty());
        issued.push_back(id);
    }
    q.run();
}

TEST(EventQueue, LargeClosureFallsBackToBox)
{
    // Closures beyond the inline slot capacity take the boxed path;
    // behavior (ordering, cancellation) must be identical.
    EventQueue q;
    struct Big
    {
        double payload[16];
    };
    Big big{};
    big.payload[0] = 1.0;
    big.payload[15] = 2.0;
    static_assert(sizeof(Big) > EventQueue::kInlineCapacity);
    double seen = 0.0;
    q.schedule(5.0, [big, &seen] {
        seen = big.payload[0] + big.payload[15];
    });
    bool cancelled_fired = false;
    const auto id = q.schedule(
        6.0, [big, &cancelled_fired] { cancelled_fired = big.payload[0] > 0.0; });
    q.cancel(id);
    q.run();
    EXPECT_DOUBLE_EQ(seen, 3.0);
    EXPECT_FALSE(cancelled_fired);
}

TEST(EventQueue, HandlerSchedulingManyEventsKeepsClosureValid)
{
    // A handler that grows the slab (forcing slot storage to move)
    // must keep executing its own closure safely: the queue relocates
    // the closure out of the slab before invoking it.
    EventQueue q;
    std::vector<int> fired;
    q.schedule(1.0, [&] {
        for (int i = 0; i < 1000; ++i)
            q.schedule(2.0 + i, [&fired, i] { fired.push_back(i); });
        fired.push_back(-1);
    });
    q.run();
    ASSERT_EQ(fired.size(), 1001u);
    EXPECT_EQ(fired.front(), -1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(fired[static_cast<std::size_t>(i) + 1], i);
}

TEST(EventQueue, IdenticalRunsFireInIdenticalOrder)
{
    // Determinism contract: the same schedule/cancel sequence produces
    // the same firing order, run after run.
    auto drive = [] {
        EventQueue q;
        std::vector<int> order;
        std::vector<EventQueue::EventId> ids;
        for (int i = 0; i < 500; ++i) {
            ids.push_back(
                q.schedule(static_cast<double>((i * 131) % 97),
                           [&order, i] { order.push_back(i); }));
        }
        for (int i = 0; i < 500; i += 7)
            q.cancel(ids[static_cast<std::size_t>(i)]);
        q.run();
        return order;
    };
    const auto first = drive();
    const auto second = drive();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

} // namespace
} // namespace themis::sim
