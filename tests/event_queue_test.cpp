/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation and bounded runs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace themis::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30.0, [&] { fired.push_back(3); });
    q.schedule(10.0, [&] { fired.push_back(1); });
    q.schedule(20.0, [&] { fired.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, SameTimeFifoBySchedulingOrder)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.schedule(5.0, [&fired, i] { fired.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMore)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            q.scheduleAfter(10.0, chain);
    };
    q.scheduleAfter(0.0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_DOUBLE_EQ(q.now(), 40.0);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    const auto id = q.schedule(10.0, [&] { fired = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    q.cancel(424242);
    SUCCEED();
}

TEST(EventQueue, CancelOneOfManyAtSameTime)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5.0, [&] { fired.push_back(1); });
    const auto id = q.schedule(5.0, [&] { fired.push_back(2); });
    q.schedule(5.0, [&] { fired.push_back(3); });
    q.cancel(id);
    q.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10.0, [&] { fired.push_back(1); });
    q.schedule(20.0, [&] { fired.push_back(2); });
    q.schedule(30.0, [&] { fired.push_back(3); });
    EXPECT_EQ(q.runUntil(20.0), 2u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(q.now(), 20.0);
    EXPECT_EQ(q.pendingCount(), 1u);
    q.run();
    EXPECT_EQ(fired.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(500.0);
    EXPECT_DOUBLE_EQ(q.now(), 500.0);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    bool fired = false;
    q.schedule(10.0, [&] { fired = true; });
    q.runUntil(1.0);
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100.0, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50.0, [] {}), "past");
}

TEST(EventQueue, NegativeDelayPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.scheduleAfter(-1.0, [] {}), "negative");
}

TEST(EventQueue, ManyEventsStressDeterminism)
{
    EventQueue q;
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        q.schedule(static_cast<double>((i * 37) % 1000),
                   [&sum, i] { sum += i; });
    }
    EXPECT_EQ(q.run(), 10000u);
    EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TEST(EventQueue, StaleIdCannotCancelSlotSuccessor)
{
    // The slab recycles slots through a free list; a stale id from a
    // previous tenant must miss the current one (generation tag).
    EventQueue q;
    bool first = false, second = false;
    const auto id_first = q.schedule(10.0, [&] { first = true; });
    q.cancel(id_first); // frees the slot
    const auto id_second = q.schedule(20.0, [&] { second = true; });
    EXPECT_NE(id_first, id_second);
    q.cancel(id_first); // stale generation: must be a no-op
    EXPECT_EQ(q.pendingCount(), 1u);
    q.run();
    EXPECT_FALSE(first);
    EXPECT_TRUE(second);
}

TEST(EventQueue, FiredIdCannotCancelSlotSuccessor)
{
    EventQueue q;
    int fired = 0;
    const auto id_first = q.schedule(10.0, [&] { ++fired; });
    q.run(); // slot released by firing, not by cancel
    const auto id_second = q.schedule(20.0, [&] { ++fired; });
    EXPECT_NE(id_first, id_second);
    q.cancel(id_first);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, IdReuseAcrossManyGenerations)
{
    // Drive one slot through many alloc/cancel cycles; every issued id
    // must stay unique and cancellation must only ever hit its own
    // event.
    EventQueue q;
    std::vector<EventQueue::EventId> issued;
    for (int round = 0; round < 100; ++round) {
        bool fired = false;
        const auto id = q.schedule(10.0, [&fired] { fired = true; });
        for (const auto old : issued)
            EXPECT_NE(old, id);
        for (const auto old : issued)
            q.cancel(old); // all stale: no-ops
        EXPECT_EQ(q.pendingCount(), 1u);
        q.cancel(id);
        EXPECT_TRUE(q.empty());
        issued.push_back(id);
    }
    q.run();
}

TEST(EventQueue, LargeClosureFallsBackToBox)
{
    // Closures beyond the inline slot capacity take the boxed path;
    // behavior (ordering, cancellation) must be identical.
    EventQueue q;
    struct Big
    {
        double payload[16];
    };
    Big big{};
    big.payload[0] = 1.0;
    big.payload[15] = 2.0;
    static_assert(sizeof(Big) > EventQueue::kInlineCapacity);
    double seen = 0.0;
    q.schedule(5.0, [big, &seen] {
        seen = big.payload[0] + big.payload[15];
    });
    bool cancelled_fired = false;
    const auto id = q.schedule(
        6.0, [big, &cancelled_fired] { cancelled_fired = big.payload[0] > 0.0; });
    q.cancel(id);
    q.run();
    EXPECT_DOUBLE_EQ(seen, 3.0);
    EXPECT_FALSE(cancelled_fired);
}

TEST(EventQueue, HandlerSchedulingManyEventsKeepsClosureValid)
{
    // A handler that grows the slab (forcing slot storage to move)
    // must keep executing its own closure safely: the queue relocates
    // the closure out of the slab before invoking it.
    EventQueue q;
    std::vector<int> fired;
    q.schedule(1.0, [&] {
        for (int i = 0; i < 1000; ++i)
            q.schedule(2.0 + i, [&fired, i] { fired.push_back(i); });
        fired.push_back(-1);
    });
    q.run();
    ASSERT_EQ(fired.size(), 1001u);
    EXPECT_EQ(fired.front(), -1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(fired[static_cast<std::size_t>(i) + 1], i);
}

TEST(EventQueue, IdenticalRunsFireInIdenticalOrder)
{
    // Determinism contract: the same schedule/cancel sequence produces
    // the same firing order, run after run.
    auto drive = [] {
        EventQueue q;
        std::vector<int> order;
        std::vector<EventQueue::EventId> ids;
        for (int i = 0; i < 500; ++i) {
            ids.push_back(
                q.schedule(static_cast<double>((i * 131) % 97),
                           [&order, i] { order.push_back(i); }));
        }
        for (int i = 0; i < 500; i += 7)
            q.cancel(ids[static_cast<std::size_t>(i)]);
        q.run();
        return order;
    };
    const auto first = drive();
    const auto second = drive();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

// ---------------------------------------------------------------------
// Calendar vs heap front-end equivalence. Both must fire events in the
// identical (timestamp, scheduling-order) sequence; the tests drive
// the same workload through both and compare the full firing traces.

/** (time, marker) trace of one workload under @p front_end. */
template <typename Drive>
std::vector<std::pair<TimeNs, int>>
traceOf(EventFrontEnd front_end, Drive&& drive)
{
    EventQueue q(front_end);
    std::vector<std::pair<TimeNs, int>> trace;
    drive(q, trace);
    return trace;
}

TEST(EventQueue, FrontEndsAgreeOnRandomizedWorkload)
{
    auto drive = [](EventQueue& q,
                    std::vector<std::pair<TimeNs, int>>& trace) {
        std::vector<EventQueue::EventId> ids;
        // Deterministic pseudo-random times with duplicates and wide
        // spread, plus a cancellation pattern.
        std::uint64_t state = 42;
        auto next = [&state] {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            return state >> 33;
        };
        for (int i = 0; i < 2000; ++i) {
            const double when =
                static_cast<double>(next() % 100000) * 0.5;
            ids.push_back(q.schedule(
                when, [&trace, &q, i] { trace.emplace_back(q.now(), i); }));
        }
        for (int i = 0; i < 2000; i += 3)
            q.cancel(ids[static_cast<std::size_t>(i)]);
        q.run();
    };
    const auto cal = traceOf(EventFrontEnd::Calendar, drive);
    const auto heap = traceOf(EventFrontEnd::Heap, drive);
    EXPECT_EQ(cal, heap);
    EXPECT_FALSE(cal.empty());
}

TEST(EventQueue, FrontEndsAgreeWithHandlerRescheduling)
{
    auto drive = [](EventQueue& q,
                    std::vector<std::pair<TimeNs, int>>& trace) {
        // Handlers schedule follow-ups at the same and later times,
        // exercising mid-cohort insertion in both front ends.
        std::function<void(int)> chain = [&](int depth) {
            trace.emplace_back(q.now(), depth);
            if (depth >= 40)
                return;
            q.scheduleAfter(0.0, [&chain, depth] { chain(depth + 1); });
            q.scheduleAfter(static_cast<double>(depth * 13 % 7) * 25.0,
                            [&chain, depth] { chain(depth + 10); });
        };
        q.schedule(1.0, [&chain] { chain(0); });
        q.schedule(1.0, [&chain] { chain(1); });
        q.run();
    };
    const auto cal = traceOf(EventFrontEnd::Calendar, drive);
    const auto heap = traceOf(EventFrontEnd::Heap, drive);
    EXPECT_EQ(cal, heap);
    EXPECT_FALSE(cal.empty());
}

TEST(EventQueue, CalendarSparseFarApartEvents)
{
    // Exponentially growing gaps stress the year-wrap, jump-to-min
    // and width re-adaptation paths.
    EventQueue q(EventFrontEnd::Calendar);
    std::vector<int> order;
    double when = 1.0;
    for (int i = 0; i < 40; ++i) {
        q.schedule(when, [&order, i] { order.push_back(i); });
        when *= 2.5;
    }
    EXPECT_EQ(q.run(), 40u);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CalendarDensePopulationTriggersResize)
{
    // Push far past the grow trigger, then drain; order must hold
    // through the re-bucketing.
    EventQueue q(EventFrontEnd::Calendar);
    std::vector<std::pair<TimeNs, int>> trace;
    for (int i = 0; i < 5000; ++i) {
        q.schedule(static_cast<double>((i * 911) % 1277),
                   [&trace, &q, i] { trace.emplace_back(q.now(), i); });
    }
    EXPECT_EQ(q.run(), 5000u);
    for (std::size_t i = 1; i < trace.size(); ++i) {
        EXPECT_LE(trace[i - 1].first, trace[i].first);
        if (trace[i - 1].first == trace[i].first) {
            EXPECT_LT(trace[i - 1].second, trace[i].second);
        }
    }
}

TEST(EventQueue, CohortMemberCanCancelLaterSameTimeEvent)
{
    // Same-timestamp events fire as one batched cohort; an earlier
    // member cancelling a later one must still suppress it.
    for (const auto fe : {EventFrontEnd::Calendar, EventFrontEnd::Heap}) {
        EventQueue q(fe);
        std::vector<int> fired;
        EventQueue::EventId victim = 0;
        q.schedule(5.0, [&] {
            fired.push_back(1);
            q.cancel(victim);
        });
        victim = q.schedule(5.0, [&] { fired.push_back(2); });
        q.schedule(5.0, [&] { fired.push_back(3); });
        q.run();
        EXPECT_EQ(fired, (std::vector<int>{1, 3}))
            << eventFrontEndName(fe);
    }
}

TEST(EventQueue, CohortHandlerSchedulesSameTimeEvent)
{
    // An event scheduled *at* the cohort's timestamp from inside it
    // fires after the cohort (FIFO by scheduling order) but before
    // any later-time event.
    for (const auto fe : {EventFrontEnd::Calendar, EventFrontEnd::Heap}) {
        EventQueue q(fe);
        std::vector<int> fired;
        q.schedule(5.0, [&] {
            fired.push_back(1);
            q.scheduleAfter(0.0, [&] { fired.push_back(9); });
        });
        q.schedule(5.0, [&] { fired.push_back(2); });
        q.schedule(6.0, [&] { fired.push_back(3); });
        q.run();
        EXPECT_EQ(fired, (std::vector<int>{1, 2, 9, 3}))
            << eventFrontEndName(fe);
    }
}

TEST(EventQueue, CalendarRunUntilBoundaryAndReset)
{
    EventQueue q(EventFrontEnd::Calendar);
    std::vector<int> fired;
    q.schedule(10.0, [&] { fired.push_back(1); });
    q.schedule(20.0, [&] { fired.push_back(2); });
    q.schedule(30.0, [&] { fired.push_back(3); });
    EXPECT_EQ(q.runUntil(20.0), 2u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(q.now(), 20.0);
    EXPECT_EQ(q.pendingCount(), 1u);
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    bool again = false;
    q.schedule(1.0, [&] { again = true; });
    q.run();
    EXPECT_TRUE(again);
    EXPECT_TRUE(fired.size() == 2);
}

TEST(EventQueue, ThrowingHandlerLeavesQueueResumable)
{
    // Sweep jobs propagate ConfigError through run(); the thrown
    // handler is consumed but the rest of its same-timestamp cohort
    // must stay pending so a caller can resume (or reset) the queue.
    for (const auto fe : {EventFrontEnd::Calendar, EventFrontEnd::Heap}) {
        EventQueue q(fe);
        std::vector<int> fired;
        EventQueue::EventId victim = 0;
        q.schedule(5.0, [&] {
            fired.push_back(1);
            q.cancel(victim); // cancelled mid-cohort, must stay dead
            throw std::runtime_error("boom");
        });
        q.schedule(5.0, [&] { fired.push_back(2); });
        victim = q.schedule(5.0, [&] { fired.push_back(4); });
        q.schedule(7.0, [&] { fired.push_back(3); });
        EXPECT_THROW(q.run(), std::runtime_error);
        EXPECT_EQ(q.pendingCount(), 2u) << eventFrontEndName(fe);
        q.run();
        EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}))
            << eventFrontEndName(fe);
        EXPECT_TRUE(q.empty());
    }
}

TEST(EventQueue, CalendarCancelChurnStaysConsistent)
{
    // The SharedChannel pattern: every completion cancels and
    // reschedules a pending event. Eager O(1) removal must keep the
    // store and counters consistent across thousands of churn cycles.
    EventQueue q(EventFrontEnd::Calendar);
    int fired = 0;
    EventQueue::EventId pending = 0;
    std::function<void()> step = [&] {
        ++fired;
        if (fired >= 3000)
            return;
        q.cancel(pending); // cancels an already-fired id: no-op
        pending = q.scheduleAfter(
            static_cast<double>(fired % 17) * 7.0 + 1.0, step);
        // Churn: schedule and immediately cancel a decoy.
        const auto decoy =
            q.scheduleAfter(5000.0, [] { FAIL() << "decoy fired"; });
        q.cancel(decoy);
    };
    q.schedule(0.0, step);
    q.run();
    EXPECT_EQ(fired, 3000);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pendingCount(), 0u);
}

// ---------------------------------------------------------------------
// Calendar cohort boundaries. The initial bucket width is 100 ns, so
// timestamps at exact multiples of 100 land precisely on a bucket
// edge: windowOf() must place them in the *following* window, and
// cancel/re-push churn during a same-timestamp cohort pop must not
// corrupt the back-pointers or the firing order.

TEST(EventQueue, CohortCancelExactlyOnBucketEdge)
{
    // The whole cohort sits on a bucket edge; the first member
    // cancels a later same-timestamp (same-edge) event and a
    // next-edge event mid-pop.
    for (const auto fe : {EventFrontEnd::Calendar, EventFrontEnd::Heap}) {
        EventQueue q(fe);
        std::vector<int> fired;
        EventQueue::EventId same_edge = 0, next_edge = 0;
        q.schedule(100.0, [&] {
            fired.push_back(1);
            q.cancel(same_edge);
            q.cancel(next_edge);
        });
        same_edge = q.schedule(100.0, [&] { fired.push_back(2); });
        q.schedule(100.0, [&] { fired.push_back(3); });
        next_edge = q.schedule(200.0, [&] { fired.push_back(4); });
        q.schedule(200.0, [&] { fired.push_back(5); });
        q.run();
        EXPECT_EQ(fired, (std::vector<int>{1, 3, 5}))
            << eventFrontEndName(fe);
        EXPECT_TRUE(q.empty());
    }
}

TEST(EventQueue, CohortRePushExactlyOnBucketEdge)
{
    // Mid-cohort, a handler cancels an edge event and immediately
    // re-pushes replacements at the same edge timestamp and at the
    // next edge — the cancel/re-push pattern of the shared channels,
    // pinned to bucket boundaries. Replacements at the cohort's own
    // timestamp fire after the current cohort (FIFO by scheduling
    // order); the next-edge replacement fires at its own time.
    auto drive = [](EventQueue& q,
                    std::vector<std::pair<TimeNs, int>>& trace) {
        EventQueue::EventId victim = 0;
        q.schedule(200.0, [&] {
            trace.emplace_back(q.now(), 1);
            q.cancel(victim);
            q.schedule(200.0,
                       [&] { trace.emplace_back(q.now(), 10); });
            q.schedule(300.0,
                       [&] { trace.emplace_back(q.now(), 11); });
        });
        victim = q.schedule(200.0,
                            [&] { trace.emplace_back(q.now(), 2); });
        q.schedule(200.0, [&] { trace.emplace_back(q.now(), 3); });
        q.schedule(300.0, [&] { trace.emplace_back(q.now(), 4); });
        q.run();
    };
    const auto cal = traceOf(EventFrontEnd::Calendar, drive);
    const auto heap = traceOf(EventFrontEnd::Heap, drive);
    EXPECT_EQ(cal, heap);
    const std::vector<std::pair<TimeNs, int>> expected{
        {200.0, 1}, {200.0, 3}, {200.0, 10}, {300.0, 4}, {300.0, 11}};
    EXPECT_EQ(cal, expected);
}

TEST(EventQueue, CohortCancelRePushChurnAcrossManyEdges)
{
    // Stress the interaction: every edge cohort cancels one of its
    // members and re-pushes onto the same edge and onto edges the
    // width-adaptation may have re-bucketed. Calendar and heap must
    // produce identical traces.
    auto drive = [](EventQueue& q,
                    std::vector<std::pair<TimeNs, int>>& trace) {
        std::vector<EventQueue::EventId> victims(64, 0);
        for (int e = 1; e <= 40; ++e) {
            const double edge = 100.0 * e;
            q.schedule(edge, [&q, &trace, &victims, e] {
                trace.emplace_back(q.now(), e);
                q.cancel(victims[static_cast<std::size_t>(e % 64)]);
                if (e % 3 == 0) {
                    // Same-edge re-push from inside the cohort.
                    q.scheduleAfter(0.0, [&q, &trace, e] {
                        trace.emplace_back(q.now(), 1000 + e);
                    });
                }
                // Re-push exactly two edges ahead.
                victims[static_cast<std::size_t>((e + 2) % 64)] =
                    q.schedule(q.now() + 200.0, [&q, &trace, e] {
                        trace.emplace_back(q.now(), 2000 + e);
                    });
            });
            q.schedule(edge, [&q, &trace, e] {
                trace.emplace_back(q.now(), 100 + e);
            });
        }
        q.run();
    };
    const auto cal = traceOf(EventFrontEnd::Calendar, drive);
    const auto heap = traceOf(EventFrontEnd::Heap, drive);
    EXPECT_EQ(cal, heap);
    EXPECT_FALSE(cal.empty());
}

TEST(EventQueue, RebaseToZeroRestartsTheClock)
{
    for (const auto fe : {EventFrontEnd::Calendar, EventFrontEnd::Heap}) {
        EventQueue q(fe);
        std::vector<std::pair<TimeNs, int>> trace;
        q.schedule(150.0, [&] { trace.emplace_back(q.now(), 1); });
        const auto cancelled =
            q.schedule(900.0, [&] { trace.emplace_back(q.now(), -1); });
        q.cancel(cancelled);
        q.run();
        q.rebaseToZero();
        EXPECT_DOUBLE_EQ(q.now(), 0.0);
        // The rebased frame replays identically: same times, FIFO
        // order preserved, stale pre-rebase entries inert.
        q.schedule(150.0, [&] { trace.emplace_back(q.now(), 2); });
        q.schedule(150.0, [&] { trace.emplace_back(q.now(), 3); });
        q.run();
        const std::vector<std::pair<TimeNs, int>> expected{
            {150.0, 1}, {150.0, 2}, {150.0, 3}};
        EXPECT_EQ(trace, expected) << eventFrontEndName(fe);
        EXPECT_TRUE(q.empty());
    }
}

} // namespace
} // namespace themis::sim
