/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation and bounded runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace themis::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30.0, [&] { fired.push_back(3); });
    q.schedule(10.0, [&] { fired.push_back(1); });
    q.schedule(20.0, [&] { fired.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, SameTimeFifoBySchedulingOrder)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.schedule(5.0, [&fired, i] { fired.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMore)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            q.scheduleAfter(10.0, chain);
    };
    q.scheduleAfter(0.0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_DOUBLE_EQ(q.now(), 40.0);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    const auto id = q.schedule(10.0, [&] { fired = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    q.cancel(424242);
    SUCCEED();
}

TEST(EventQueue, CancelOneOfManyAtSameTime)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5.0, [&] { fired.push_back(1); });
    const auto id = q.schedule(5.0, [&] { fired.push_back(2); });
    q.schedule(5.0, [&] { fired.push_back(3); });
    q.cancel(id);
    q.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10.0, [&] { fired.push_back(1); });
    q.schedule(20.0, [&] { fired.push_back(2); });
    q.schedule(30.0, [&] { fired.push_back(3); });
    EXPECT_EQ(q.runUntil(20.0), 2u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(q.now(), 20.0);
    EXPECT_EQ(q.pendingCount(), 1u);
    q.run();
    EXPECT_EQ(fired.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(500.0);
    EXPECT_DOUBLE_EQ(q.now(), 500.0);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    bool fired = false;
    q.schedule(10.0, [&] { fired = true; });
    q.runUntil(1.0);
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100.0, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50.0, [] {}), "past");
}

TEST(EventQueue, NegativeDelayPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.scheduleAfter(-1.0, [] {}), "negative");
}

TEST(EventQueue, ManyEventsStressDeterminism)
{
    EventQueue q;
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        q.schedule(static_cast<double>((i * 37) % 1000),
                   [&sum, i] { sum += i; });
    }
    EXPECT_EQ(q.run(), 10000u);
    EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

} // namespace
} // namespace themis::sim
