/**
 * @file
 * Multi-job cluster co-simulation tests: single-job cluster ≡ plain
 * training loop, per-job wire-level byte conservation under
 * contention, per-class/per-job accounting consistency, urgent-tier
 * latency vs weight ratio, periodic-inference deadline accounting,
 * weight-aware admission headroom (≡ tier-blind under uniform
 * weights), phase-offset search, multi-loop lockstep convergence
 * (replay bit-identical to full simulation), and the replay refusal
 * guards for mixes that never reach a common steady state.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/hash.hpp"
#include "models/model_zoo.hpp"
#include "sim/fault_timeline.hpp"
#include "topology/presets.hpp"
#include "workload/convergence.hpp"

namespace themis {
namespace {

using cluster::Cluster;
using cluster::JobKind;
using cluster::JobScheduler;
using cluster::JobSpec;

runtime::RuntimeConfig
priorityConfig(double ratio)
{
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.scheduler = SchedulerKind::ThemisPriority;
    cfg.priority = ratio > 0.0 ? PriorityPolicy::tiered(ratio)
                               : PriorityPolicy::uniform();
    return cfg;
}

/** Two-job contention mix: bulk training + urgent periodic. */
std::vector<JobSpec>
contentionMix(int requests = 8)
{
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(
        models::byName("DLRM"), 2, 0.0,
        static_cast<int>(PriorityTier::Bulk)));
    JobSpec infer = JobSpec::periodicInference(
        3.2e7, 3.0e5, 5.0e5, 0.0,
        static_cast<int>(PriorityTier::Urgent));
    infer.max_requests = requests;
    specs.push_back(infer);
    return specs;
}

// ------------------------------------------------- single-job parity

TEST(Cluster, SingleTrainingJobMatchesPlainLoopBitForBit)
{
    const Topology topo = presets::byName("2D-SW_SW");
    const runtime::RuntimeConfig cfg = runtime::themisScfConfig();

    sim::EventQueue q1;
    Cluster cl(q1, topo, cfg,
               {JobSpec::training(models::byName("DLRM"), 3)});
    const auto rep = cl.run();

    sim::EventQueue q2;
    runtime::CommRuntime comm(q2, topo, cfg);
    workload::TrainingLoop loop(comm, models::byName("DLRM"));
    const auto plain = loop.run(3);

    ASSERT_EQ(rep.jobs.size(), 1u);
    EXPECT_EQ(rep.jobs[0].iterations, 3);
    EXPECT_TRUE(bitEquals(rep.jobs[0].totals.total, plain.total));
    EXPECT_TRUE(bitEquals(rep.jobs[0].totals.exposed_dp,
                          plain.exposed_dp));
    EXPECT_TRUE(bitEquals(rep.jobs[0].totals.exposed_mp,
                          plain.exposed_mp));
    EXPECT_TRUE(bitEquals(rep.makespan, q2.now()));
}

TEST(Cluster, AsyncSingleLoopIterationMatchesSynchronous)
{
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q1, q2;
    runtime::CommRuntime c1(q1, topo, runtime::themisScfConfig());
    runtime::CommRuntime c2(q2, topo, runtime::themisScfConfig());
    workload::TrainingLoop l1(c1, models::byName("GNMT"));
    workload::TrainingLoop l2(c2, models::byName("GNMT"));

    const auto sync_b = l1.runIteration();
    workload::IterationBreakdown async_b;
    bool fired = false;
    l2.beginIterationAsync(
        [&](const workload::IterationBreakdown& b) {
            async_b = b;
            fired = true;
        });
    EXPECT_TRUE(l2.iterationInFlight());
    q2.run();
    ASSERT_TRUE(fired);
    EXPECT_FALSE(l2.iterationInFlight());
    EXPECT_TRUE(workload::bitIdentical(sync_b, async_b));
}

// --------------------------------------------- per-job wire accounting

TEST(Cluster, PerJobBytesConservedUnderContention)
{
    const Topology topo = presets::byName("2D-SW_SW");
    // The same mix under three weight ladders must move identical
    // bytes per tenant: weights redistribute when bytes move, never
    // whose they are.
    std::vector<cluster::ClusterReport> reps;
    for (double ratio : {1.0, 4.0, 16.0}) {
        sim::EventQueue q;
        Cluster cl(q, topo, priorityConfig(ratio), contentionMix());
        reps.push_back(cl.run());
    }
    ASSERT_EQ(reps[0].jobs.size(), 2u);
    for (const auto& rep : reps) {
        Bytes sum = 0.0;
        for (const auto& j : rep.jobs) {
            EXPECT_GT(j.progressed, 0.0);
            sum += j.progressed;
            EXPECT_NEAR(j.progressed,
                        reps[0]
                            .jobs[static_cast<std::size_t>(j.job)]
                            .progressed,
                        1e-6 * j.progressed);
        }
        EXPECT_NEAR(sum, rep.total_bytes, 1e-6 * rep.total_bytes);
    }
}

TEST(Cluster, ClassAndJobAccountingConsistent)
{
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;
    Cluster cl(q, topo, priorityConfig(8.0), contentionMix());
    const auto rep = cl.run();
    auto& comm = cl.runtime();

    // Per-class bytes (aggregated over jobs) and per-job bytes both
    // partition the same fabric total.
    Bytes class_sum = 0.0;
    double class_util = 0.0;
    for (const auto& c : rep.classes) {
        class_sum += c.progressed;
        class_util += c.utilization;
    }
    // Per-job bytes come from the departure-time captures in the
    // report: every job has departed by now, so the runtime retired
    // its live wire accounting.
    Bytes job_sum = 0.0;
    for (const auto& j : rep.jobs)
        job_sum += j.progressed;
    EXPECT_NEAR(class_sum, rep.total_bytes, 1e-6 * rep.total_bytes);
    EXPECT_NEAR(job_sum, rep.total_bytes, 1e-6 * rep.total_bytes);
    // Class utilizations sum to the fabric utilization (same windows,
    // same denominator) — the retired per-tier aggregates must fold
    // back in exactly.
    EXPECT_NEAR(class_util, rep.fabric_utilization,
                1e-9 + 1e-6 * rep.fabric_utilization);

    // Retirement proof: with all tenants departed, no shared channel
    // tracks any per-class account and no live job rows remain — the
    // state a job-churning fabric stays in forever.
    EXPECT_TRUE(comm.jobReports().empty());
    EXPECT_EQ(comm.liveJobCount(), 0u);
    for (int d = 0; d < comm.topology().numDims(); ++d) {
        auto& ch = comm.engine(d).channel();
        ch.sync();
        EXPECT_EQ(ch.trackedClassCount(), 0u);
        EXPECT_EQ(ch.numClasses(), 0);
    }
}

TEST(Cluster, UrgentLatencyImprovesMonotonicallyWithWeightRatio)
{
    const Topology topo = presets::byName("2D-SW_SW");
    // Urgent-tier mean request latency must not degrade as the weight
    // ratio grows. The stream's period sits well above its latency so
    // no backlog builds: each request's latency is then a pure
    // function of its GPS share against the bulk training traffic,
    // the regime where monotonicity is a theorem (open-loop overload
    // adds queueing feedback that makes the curve locally noisy —
    // the bench covers that regime).
    auto mix = [] {
        std::vector<JobSpec> specs;
        specs.push_back(JobSpec::training(
            models::byName("DLRM"), 3, 0.0,
            static_cast<int>(PriorityTier::Bulk)));
        JobSpec infer = JobSpec::periodicInference(
            3.2e7, 2.0e6, 0.0, 0.0,
            static_cast<int>(PriorityTier::Urgent));
        infer.max_requests = 6;
        specs.push_back(infer);
        return specs;
    };
    std::vector<TimeNs> lat;
    for (double ratio : {1.0, 4.0, 16.0}) {
        sim::EventQueue q;
        Cluster cl(q, topo, priorityConfig(ratio), mix());
        const auto rep = cl.run();
        lat.push_back(rep.jobs[1].mean_latency);
    }
    EXPECT_LE(lat[1], lat[0] * (1.0 + 1e-9));
    EXPECT_LE(lat[2], lat[1] * (1.0 + 1e-9));
    EXPECT_LT(lat[2], lat[0]);
}

// ------------------------------------------------- periodic inference

TEST(Cluster, DeadlineAccountingSoloStream)
{
    const Topology topo = presets::byName("2D-SW_SW");
    // Solo: every request sees an idle fabric, so a generous deadline
    // hits 100% and an impossible one misses 100%.
    for (double deadline : {1.0e6, 1.0e3}) {
        sim::EventQueue q;
        JobSpec infer = JobSpec::periodicInference(
            3.2e7, 1.0e6, deadline);
        infer.max_requests = 5;
        Cluster cl(q, topo, priorityConfig(1.0), {infer});
        const auto rep = cl.run();
        EXPECT_EQ(rep.jobs[0].requests_issued, 5);
        EXPECT_EQ(rep.jobs[0].requests_completed, 5);
        if (deadline > 1.0e5)
            EXPECT_DOUBLE_EQ(rep.jobs[0].deadline_hit_rate, 1.0);
        else
            EXPECT_DOUBLE_EQ(rep.jobs[0].deadline_hit_rate, 0.0);
        EXPECT_GT(rep.jobs[0].mean_latency, 0.0);
        EXPECT_GE(rep.makespan, rep.jobs[0].finished);
    }
}

TEST(Cluster, OpenEndedPeriodicStopsWhenTrainingDrains)
{
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;
    std::vector<JobSpec> specs;
    specs.push_back(
        JobSpec::training(models::byName("DLRM"), 2));
    specs.push_back(JobSpec::periodicInference(1.6e7, 1.0e5));
    Cluster cl(q, topo, priorityConfig(4.0), std::move(specs));
    const auto rep = cl.run();
    // The stream issued at least once and stopped: every issued
    // request completed, and the job finished no later than the
    // makespan.
    EXPECT_GT(rep.jobs[1].requests_issued, 1);
    EXPECT_EQ(rep.jobs[1].requests_issued,
              rep.jobs[1].requests_completed);
    EXPECT_GE(rep.jobs[1].finished, 0.0);
    EXPECT_LE(rep.jobs[1].finished, rep.makespan);
}

TEST(Cluster, NeverArrivedPeriodicClosesCleanlyAtDrain)
{
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(models::byName("DLRM"), 2));
    // Arrives long after the training job drains: the pending arrival
    // must be cancelled (no makespan stretch) and the job closed with
    // zero work and a non-negative JCT.
    specs.push_back(
        JobSpec::periodicInference(1.6e7, 1.0e5, 0.0, 1.0e12));
    Cluster cl(q, topo, priorityConfig(1.0), std::move(specs));
    const auto rep = cl.run();
    EXPECT_EQ(rep.jobs[1].requests_issued, 0);
    EXPECT_GE(rep.jobs[1].jct(), 0.0);
    EXPECT_DOUBLE_EQ(rep.makespan, rep.jobs[0].finished);
    EXPECT_LT(rep.makespan, 1.0e12);
}

TEST(Cluster, OpenEndedPeriodicWithoutTrainingRejected)
{
    EXPECT_THROW(
        JobScheduler({JobSpec::periodicInference(1.6e7, 1.0e5)}),
        ConfigError);
}

// --------------------------------------- weight-aware admission (S1)

TEST(Admission, WeightAwareBitIdenticalToTierBlindUnderUniform)
{
    const Topology topo = presets::byName("3D-SW_SW_SW_homo");
    // Uniform weights: the weighted service demand reduces to the
    // tier-blind sum term for term, so full runs are bit-identical.
    for (bool tiered_classes : {false, true}) {
        std::vector<TimeNs> durs[2];
        for (int legacy = 0; legacy < 2; ++legacy) {
            runtime::RuntimeConfig cfg = runtime::themisScfConfig();
            if (tiered_classes) {
                // tiered(1): classes separated, weights all 1.
                cfg.scheduler = SchedulerKind::ThemisPriority;
                cfg.priority = PriorityPolicy::tiered(1.0);
            }
            cfg.legacy_tier_blind_headroom = legacy == 1;
            sim::EventQueue q;
            runtime::CommRuntime comm(q, topo, cfg);
            std::vector<int> ids;
            for (int i = 0; i < 4; ++i) {
                CollectiveRequest req;
                req.type = CollectiveType::AllReduce;
                req.size = 2.0e8;
                req.chunks = 32;
                req.priority_tier = i % kNumPriorityTiers;
                ids.push_back(comm.issue(req));
            }
            q.run();
            for (int id : ids)
                durs[legacy].push_back(comm.record(id).duration());
        }
        ASSERT_EQ(durs[0].size(), durs[1].size());
        for (std::size_t i = 0; i < durs[0].size(); ++i)
            EXPECT_TRUE(bitEquals(durs[0][i], durs[1][i]))
                << "tiered_classes=" << tiered_classes << " op " << i;
    }
}

TEST(Admission, WeightAwareHeadroomHelpsUrgentUnderWeights)
{
    const Topology topo = presets::byName("2D-SW_SW");
    // With real weight ladders the weight-aware check admits urgent
    // work a bulk backlog would have blocked; the urgent stream must
    // be no slower than under the tier-blind check.
    TimeNs mean[2] = {0.0, 0.0};
    for (int legacy = 0; legacy < 2; ++legacy) {
        runtime::RuntimeConfig cfg = priorityConfig(16.0);
        cfg.legacy_tier_blind_headroom = legacy == 1;
        sim::EventQueue q;
        Cluster cl(q, topo, cfg, contentionMix());
        mean[legacy] = cl.run().jobs[1].mean_latency;
    }
    EXPECT_LE(mean[0], mean[1] * (1.0 + 1e-9));
}

// ---------------------------------------------------- offset search

TEST(Cluster, OffsetSearchNeverLosesToZeroOffset)
{
    const Topology topo = presets::byName("2D-SW_SW");
    std::vector<JobSpec> twins;
    twins.push_back(JobSpec::training(models::byName("DLRM"), 2));
    twins.push_back(JobSpec::training(models::byName("DLRM"), 2));
    cluster::OffsetSearchOptions opts;
    opts.steps = 4;
    opts.iterations = 2;
    const auto res = cluster::searchPhaseOffsets(
        topo, priorityConfig(1.0), twins, opts);
    ASSERT_EQ(res.candidates.size(), 4u);
    EXPECT_GT(res.base_period, 0.0);
    // f = 0 is always evaluated, so best <= zero by construction.
    EXPECT_LE(res.best.metric, res.zero_metric);
    EXPECT_DOUBLE_EQ(res.candidates[0].metric, res.zero_metric);
    // Zero offsets for candidate 0; job 0 never shifts.
    for (const auto& c : res.candidates)
        EXPECT_DOUBLE_EQ(c.offsets[0], 0.0);
    EXPECT_DOUBLE_EQ(res.candidates[0].offsets[1], 0.0);
}

// --------------------------------------- lockstep convergence (S2)

TEST(Cluster, LockstepConvergenceReplayBitIdenticalToFullSim)
{
    const Topology topo = presets::byName("2D-SW_SW");
    auto mix = [] {
        std::vector<JobSpec> specs;
        specs.push_back(
            JobSpec::training(models::byName("DLRM"), 8));
        specs.push_back(
            JobSpec::training(models::byName("GNMT"), 8));
        return specs;
    };
    workload::ConvergenceOptions with_replay;
    with_replay.iterations = 8;
    workload::ConvergenceOptions no_replay = with_replay;
    no_replay.replay = false;

    sim::EventQueue q1;
    Cluster c1(q1, topo, runtime::themisScfConfig(), mix());
    ASSERT_TRUE(c1.replayEligibility().eligible);
    const auto replayed = c1.runConverged(with_replay);

    sim::EventQueue q2;
    Cluster c2(q2, topo, runtime::themisScfConfig(), mix());
    const auto full = c2.runConverged(no_replay);

    EXPECT_GE(replayed.steady_at, 0);
    EXPECT_GT(replayed.replayed_iterations, 0);
    EXPECT_EQ(full.replayed_iterations, 0);
    EXPECT_TRUE(workload::resultsBitIdentical(replayed, full));
    EXPECT_TRUE(replayed.replay_refusal.empty());
}

TEST(Cluster, LockstepExactnessCheckPassesOnTwoJobMix)
{
    const Topology topo = presets::byName("2D-SW_SW");
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(models::byName("DLRM"), 6));
    specs.push_back(JobSpec::training(models::byName("DLRM"), 6));
    workload::ConvergenceOptions opts;
    opts.iterations = 6;
    opts.exactness_check = true; // asserts internally on divergence
    sim::EventQueue q;
    Cluster cl(q, topo, runtime::themisScfConfig(),
               std::move(specs));
    const auto r = cl.runConverged(opts);
    EXPECT_GE(r.steady_at, 0);
    EXPECT_EQ(r.simulated_iterations, 6);
}

/** Training + open-ended periodic tenants with commensurate periods:
 *  the period-k lockstep path. Periods @p p1 : @p p2 set the round
 *  cadences (gcd-reduced). */
std::vector<JobSpec>
lockstepMix(int iters, double p1, double p2)
{
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(
        models::byName("DLRM"), iters, 0.0,
        static_cast<int>(PriorityTier::Bulk)));
    specs.push_back(JobSpec::periodicInference(
        1.6e7, p1, 0.0, 0.0,
        static_cast<int>(PriorityTier::Urgent)));
    specs.push_back(JobSpec::periodicInference(
        3.2e7, p2, 0.0, 0.0,
        static_cast<int>(PriorityTier::Urgent)));
    return specs;
}

TEST(Cluster, PeriodicMixNowEligibleForLockstepReplay)
{
    // PR 7 refused every training+periodic mix; the period-k engine
    // lifts that for open-ended commensurate streams. A single
    // periodic tenant gcd-reduces to cadence 1 (hyper-period 1).
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(models::byName("DLRM"), 10));
    specs.push_back(JobSpec::periodicInference(1.6e7, 1.0e5));
    const auto plan = JobScheduler(specs).lockstepPlan();
    ASSERT_TRUE(plan.eligible) << plan.reason;
    EXPECT_EQ(plan.hyper_period, 1);
    ASSERT_EQ(plan.cadences.size(), 2u);
    EXPECT_EQ(plan.cadences[1], 1);

    workload::ConvergenceOptions with_replay;
    with_replay.iterations = 10;
    workload::ConvergenceOptions no_replay = with_replay;
    no_replay.replay = false;

    sim::EventQueue q1;
    Cluster c1(q1, presets::byName("2D-SW_SW"), priorityConfig(4.0),
               specs);
    const auto replayed = c1.runConverged(with_replay);
    sim::EventQueue q2;
    Cluster c2(q2, presets::byName("2D-SW_SW"), priorityConfig(4.0),
               specs);
    const auto full = c2.runConverged(no_replay);

    EXPECT_GE(replayed.steady_at, 0);
    EXPECT_EQ(replayed.cycle_length, 1);
    EXPECT_GT(replayed.epochs_replayed, 0);
    EXPECT_TRUE(workload::resultsBitIdentical(replayed, full));
}

TEST(Cluster, PeriodKReplayBitIdenticalOnTwoThreeMix)
{
    // Cadences 2:3 -> stepping hyper-period 6. The joint trajectory
    // only repeats with period 6, so the period-1 detector would
    // never fire; the period-k detector must confirm a 6-round cycle
    // and replay the remainder bit-identically.
    const auto specs = lockstepMix(30, 2.0e5, 3.0e5);
    const auto plan = JobScheduler(specs).lockstepPlan();
    ASSERT_TRUE(plan.eligible) << plan.reason;
    EXPECT_EQ(plan.hyper_period, 6);
    EXPECT_EQ(plan.cadences[1], 2);
    EXPECT_EQ(plan.cadences[2], 3);

    workload::ConvergenceOptions with_replay;
    with_replay.iterations = 30;
    workload::ConvergenceOptions no_replay = with_replay;
    no_replay.replay = false;

    sim::EventQueue q1;
    Cluster c1(q1, presets::byName("2D-SW_SW"), priorityConfig(4.0),
               specs);
    const auto replayed = c1.runConverged(with_replay);
    sim::EventQueue q2;
    Cluster c2(q2, presets::byName("2D-SW_SW"), priorityConfig(4.0),
               specs);
    const auto full = c2.runConverged(no_replay);

    EXPECT_GE(replayed.steady_at, 0);
    EXPECT_EQ(replayed.cycle_length, 6);
    EXPECT_EQ(replayed.hyper_period, 6);
    EXPECT_GT(replayed.epochs_replayed, 0);
    EXPECT_EQ(replayed.epochs_simulated + replayed.epochs_replayed,
              30);
    EXPECT_EQ(full.epochs_replayed, 0);
    EXPECT_EQ(full.cycle_length, replayed.cycle_length);
    EXPECT_TRUE(workload::resultsBitIdentical(replayed, full));
    EXPECT_TRUE(replayed.replay_refusal.empty());
}

TEST(Cluster, PeriodKExactnessCheckPassesOnThreeFiveMix)
{
    // Cadences 3:5 -> hyper-period 15; exactness mode co-simulates
    // every post-detection round and asserts it (and the final
    // totals) bit-identical to the cyclic replay prediction.
    const auto specs = lockstepMix(40, 3.0e5, 5.0e5);
    workload::ConvergenceOptions opts;
    opts.iterations = 40;
    opts.exactness_check = true; // asserts internally on divergence
    sim::EventQueue q;
    Cluster cl(q, presets::byName("2D-SW_SW"), priorityConfig(4.0),
               specs);
    const auto r = cl.runConverged(opts);
    EXPECT_GE(r.steady_at, 0);
    EXPECT_EQ(r.cycle_length, 15);
    EXPECT_EQ(r.hyper_period, 15);
    EXPECT_EQ(r.epochs_simulated, 40);
}

TEST(Cluster, ReplayRefusedWhenCycleLimitBelowHyperPeriod)
{
    // Hyper-period 6 but a limit of 4: no multiple of 6 fits, so the
    // plan must refuse with the computed lcm in the diagnostic and
    // the cluster entry point must throw.
    const auto specs = lockstepMix(12, 2.0e5, 3.0e5);
    const auto plan = JobScheduler(specs).lockstepPlan(4);
    EXPECT_FALSE(plan.eligible);
    EXPECT_NE(plan.reason.find("lcm = 6"), std::string::npos)
        << plan.reason;
    EXPECT_NE(plan.reason.find("cycle limit 4"), std::string::npos);

    sim::EventQueue q;
    Cluster cl(q, presets::byName("2D-SW_SW"), priorityConfig(4.0),
               specs);
    workload::ConvergenceOptions opts;
    opts.iterations = 12;
    opts.cycle_limit = 4;
    EXPECT_THROW(cl.runConverged(opts), ConfigError);
}

TEST(Cluster, ReplayRefusedForCoPrimePeriods)
{
    // 9973 and 10007 ns are prime: the cadence lcm is ~1e8 rounds,
    // far beyond any practical cycle limit. The diagnostic must name
    // the offending pair so the user can fix the periods.
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(models::byName("DLRM"), 4));
    specs.push_back(JobSpec::periodicInference(1.6e7, 9973.0));
    specs.push_back(JobSpec::periodicInference(3.2e7, 10007.0));
    const auto plan = JobScheduler(specs).lockstepPlan();
    EXPECT_FALSE(plan.eligible);
    EXPECT_NE(plan.reason.find("lcm"), std::string::npos);
    EXPECT_NE(plan.reason.find("co-prime"), std::string::npos);
    EXPECT_NE(plan.reason.find("infer:"), std::string::npos);
    EXPECT_NE(plan.reason.find("worst pair"), std::string::npos)
        << plan.reason;
}

TEST(Cluster, ReplayRefusedForBoundedPeriodicStreams)
{
    // A bounded stream stops mid-run, so no round pattern repeats
    // forever; the old blanket refusal survives for this case.
    const auto elig =
        JobScheduler(contentionMix()).replayEligibility();
    EXPECT_FALSE(elig.eligible);
    EXPECT_NE(elig.reason.find("bounded"), std::string::npos);
}

TEST(Cluster, ReplayRefusedForSubNanosecondPeriodRounding)
{
    // llround(0.4) == 0: cadence derivation must reject it loudly
    // instead of silently clamping to cadence 1.
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(models::byName("DLRM"), 2));
    specs.push_back(JobSpec::periodicInference(1.6e7, 0.4));
    const auto plan = JobScheduler(specs).lockstepPlan();
    EXPECT_FALSE(plan.eligible);
    EXPECT_NE(plan.reason.find("rounds to"), std::string::npos)
        << plan.reason;
    EXPECT_NE(plan.reason.find("0.4"), std::string::npos);
}

TEST(Cluster, FaultEventInterruptedCycleReplayStaysBitIdentical)
{
    // A degrade window lands mid-run: replay must stop short of the
    // event, re-simulate through it, re-confirm the cycle, and still
    // produce bit-identical totals on a 2:3 mix.
    const auto specs = lockstepMix(36, 2.0e5, 3.0e5);
    sim::FaultTimeline tl;
    tl.addDegrade(0, 1.0e7, 5.0e5, 0.5);

    auto run = [&](bool replay) {
        runtime::RuntimeConfig cfg = priorityConfig(4.0);
        cfg.faults = &tl;
        sim::EventQueue q;
        Cluster cl(q, presets::byName("2D-SW_SW"), cfg, specs);
        workload::ConvergenceOptions opts;
        opts.iterations = 36;
        opts.replay = replay;
        return cl.runConverged(opts);
    };
    const auto replayed = run(true);
    const auto full = run(false);
    EXPECT_EQ(full.epochs_replayed, 0);
    EXPECT_TRUE(workload::resultsBitIdentical(replayed, full));
}

TEST(Cluster, ReplayRefusedForStaggeredArrivals)
{
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(models::byName("DLRM"), 2));
    specs.push_back(
        JobSpec::training(models::byName("DLRM"), 2, 5.0e4));
    const auto elig = JobScheduler(specs).replayEligibility();
    EXPECT_FALSE(elig.eligible);
    EXPECT_NE(elig.reason.find("arrive"), std::string::npos);
}

TEST(Convergence, SingleLoopReplayRefusedOnMultiJobRuntime)
{
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;
    runtime::CommRuntime comm(q, topo, runtime::themisScfConfig());
    // Another tenant used this runtime first (job 1), then drained.
    CollectiveRequest other;
    other.type = CollectiveType::AllReduce;
    other.size = 1.0e8;
    other.job = 1;
    comm.issue(other);
    q.run();
    EXPECT_EQ(comm.jobsObserved(), 2);

    workload::TrainingLoop loop(comm, models::byName("DLRM"));
    workload::ConvergenceOptions opts;
    opts.iterations = 4;
    const auto r = workload::runConverged(comm, loop, opts);
    EXPECT_FALSE(r.replay_refusal.empty());
    EXPECT_EQ(r.replayed_iterations, 0);
    EXPECT_EQ(r.simulated_iterations, 4);
}

TEST(Convergence, MultiLoopReplayRefusedWhenAJobIdGapIsUncovered)
{
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;
    runtime::CommRuntime comm(q, topo, runtime::themisScfConfig());
    // A tenant at job 1, inside the range the loops span ({0, 2}),
    // must still trigger the refusal — coverage is a set property,
    // not a maximum.
    CollectiveRequest other;
    other.type = CollectiveType::AllReduce;
    other.size = 1.0e8;
    other.job = 1;
    comm.issue(other);
    q.run();

    workload::TrainingLoop l0(comm, models::byName("DLRM"));
    workload::TrainingLoop l2(comm, models::byName("DLRM"));
    l0.setJob(0);
    l2.setJob(2);
    workload::ConvergenceOptions opts;
    opts.iterations = 3;
    const auto r = workload::runConverged(
        comm, std::vector<workload::TrainingLoop*>{&l0, &l2}, opts);
    EXPECT_FALSE(r.replay_refusal.empty());
    EXPECT_NE(r.replay_refusal.find("job 1"), std::string::npos);
    EXPECT_EQ(r.replayed_iterations, 0);
}

// --------------------------------------------------- misc validation

TEST(Cluster, JobSpecValidation)
{
    EXPECT_THROW(JobScheduler({}), ConfigError);
    JobSpec bad_train =
        JobSpec::training(models::byName("DLRM"), 0);
    EXPECT_THROW(JobScheduler({bad_train}), ConfigError);
    JobSpec bad_infer = JobSpec::periodicInference(0.0, 1.0e5);
    EXPECT_THROW(JobScheduler({bad_infer}), ConfigError);
    JobSpec bad_period = JobSpec::periodicInference(1.0e7, 0.0);
    EXPECT_THROW(JobScheduler({bad_period}), ConfigError);
}

TEST(Cluster, StaggeredArrivalsRunAndFinishInOrderOfWork)
{
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;
    std::vector<JobSpec> specs;
    specs.push_back(JobSpec::training(models::byName("DLRM"), 2));
    specs.push_back(
        JobSpec::training(models::byName("DLRM"), 2, 2.0e5));
    Cluster cl(q, topo, runtime::themisScfConfig(),
               std::move(specs));
    const auto rep = cl.run();
    EXPECT_DOUBLE_EQ(rep.jobs[1].arrival, 2.0e5);
    // Both jobs ran to completion; the staggered one finished last
    // (same work, later start under symmetric contention).
    EXPECT_EQ(rep.jobs[0].iterations, 2);
    EXPECT_EQ(rep.jobs[1].iterations, 2);
    EXPECT_GT(rep.jobs[1].finished, rep.jobs[0].finished);
    EXPECT_DOUBLE_EQ(rep.makespan, rep.jobs[1].finished);
}

// -------------------------------------------------- accounting churn

TEST(Cluster, ThousandJobChurnKeepsAccountingBounded)
{
    // 1000 short tenants churn through one runtime in overlapping
    // batches. Retiring each departed job must keep every per-job
    // accounting map sized by *concurrent* tenancy — the channels'
    // class maps, the utilization tracker's window accounts, and the
    // live-job set — while conservation still closes over the
    // departure-time captures.
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;
    runtime::CommRuntime comm(q, topo, runtime::themisScfConfig());

    constexpr int kJobs = 1000;
    constexpr int kBatch = 4; // concurrent tenants per wave
    Bytes retired_sum = 0.0;
    for (int base = 0; base < kJobs; base += kBatch) {
        for (int j = base; j < base + kBatch; ++j) {
            CollectiveRequest req;
            req.type = CollectiveType::AllReduce;
            req.size = 1.0e6;
            req.chunks = 2;
            req.priority_tier = j % kNumPriorityTiers;
            req.job = j;
            comm.issue(req);
        }
        q.run();
        for (int j = base; j < base + kBatch; ++j) {
            const auto r = comm.retireJob(j);
            EXPECT_EQ(r.job, j);
            EXPECT_EQ(r.issued, 1);
            EXPECT_EQ(r.completed, 1);
            EXPECT_GT(r.progressed, 0.0);
            retired_sum += r.progressed;
        }
        // Bounded-by-tenancy invariant, checked every wave: nothing
        // grows with the number of jobs already churned through.
        for (int d = 0; d < comm.topology().numDims(); ++d) {
            EXPECT_LE(
                comm.engine(d).channel().trackedClassCount(),
                static_cast<std::size_t>(kBatch *
                                         kNumPriorityTiers));
        }
        EXPECT_LE(comm.utilization().trackedClassCount(),
                  static_cast<std::size_t>(kBatch *
                                           kNumPriorityTiers));
        EXPECT_LE(comm.liveJobCount(),
                  static_cast<std::size_t>(kBatch + 1));
    }
    EXPECT_EQ(comm.jobsObserved(), kJobs);
    EXPECT_EQ(comm.liveJobCount(), 0u);

    // Per-tenant conservation over the whole churn: the sum of the
    // departure captures equals the fabric's total progressed bytes.
    Bytes fabric = 0.0;
    for (int d = 0; d < comm.topology().numDims(); ++d) {
        comm.engine(d).channel().sync();
        fabric += comm.engine(d).channel().progressedBytes();
    }
    EXPECT_NEAR(retired_sum, fabric, 1e-6 * fabric);

    // The per-tier aggregates keep the retired jobs' bytes visible in
    // the class reports even though every per-job account is gone.
    Bytes tier_sum = 0.0;
    for (const auto& c : comm.classReports())
        tier_sum += c.progressed;
    EXPECT_NEAR(tier_sum, fabric, 1e-6 * fabric);
}

} // namespace
} // namespace themis
