/**
 * @file
 * Tests of Algorithm 1: the Themis greedy scheduler, its robustness
 * threshold, the baseline scheduler and the splitter. The central
 * case reproduces the paper's Fig 7 walkthrough chunk by chunk.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "core/baseline_scheduler.hpp"
#include "core/splitter.hpp"
#include "core/themis_scheduler.hpp"
#include "topology/presets.hpp"

namespace themis {
namespace {

/** The Fig 5/Fig 7 platform: 4x4, BW(dim1) = 2*BW(dim2), no latency. */
LatencyModel
fig5Model()
{
    DimensionConfig d1, d2;
    d1.kind = d2.kind = DimKind::Switch;
    d1.size = d2.size = 4;
    d1.link_bw_gbps = 384.0; // 48 GB/s
    d2.link_bw_gbps = 192.0; // 24 GB/s
    d1.links_per_npu = d2.links_per_npu = 1;
    d1.step_latency_ns = d2.step_latency_ns = 0.0;
    return LatencyModel({d1, d2});
}

std::vector<int>
rsOrder(const ChunkSchedule& sched)
{
    std::vector<int> order;
    for (const auto& st : sched.stages) {
        if (st.phase == Phase::ReduceScatter)
            order.push_back(st.dim);
    }
    return order;
}

std::vector<int>
agOrder(const ChunkSchedule& sched)
{
    std::vector<int> order;
    for (const auto& st : sched.stages) {
        if (st.phase == Phase::AllGather)
            order.push_back(st.dim);
    }
    return order;
}

TEST(Splitter, EqualChunks)
{
    const auto chunks = splitCollective(256.0e6, 4);
    ASSERT_EQ(chunks.size(), 4u);
    for (const auto c : chunks)
        EXPECT_DOUBLE_EQ(c, 64.0e6);
}

TEST(Splitter, RejectsBadInput)
{
    EXPECT_THROW(splitCollective(0.0, 4), ConfigError);
    EXPECT_THROW(splitCollective(1.0e6, 0), ConfigError);
}

TEST(BaselineSched, AllChunksIdenticalFixedOrder)
{
    const auto model = fig5Model();
    BaselineScheduler sched(model);
    const auto out =
        sched.scheduleCollective(CollectiveType::AllReduce, 256.0e6, 4);
    ASSERT_EQ(out.size(), 4u);
    for (const auto& c : out) {
        EXPECT_EQ(rsOrder(c), (std::vector<int>{0, 1}));
        EXPECT_EQ(agOrder(c), (std::vector<int>{1, 0}));
        EXPECT_DOUBLE_EQ(c.size, 64.0e6);
    }
}

TEST(ThemisSched, ReproducesFig7ChunkDecisions)
{
    // Paper Fig 7: chunk 1 follows the baseline (loads balanced at
    // reset), chunk 2 starts at dim2 to fill its gap, chunks 3 and 4
    // start at dim1 to fill the now-overloaded dim2's gap.
    const auto model = fig5Model();
    ThemisScheduler sched(model);
    const auto out =
        sched.scheduleCollective(CollectiveType::AllReduce, 256.0e6, 4);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(rsOrder(out[0]), (std::vector<int>{0, 1})) << "chunk 1";
    EXPECT_EQ(rsOrder(out[1]), (std::vector<int>{1, 0})) << "chunk 2";
    EXPECT_EQ(rsOrder(out[2]), (std::vector<int>{0, 1})) << "chunk 3";
    EXPECT_EQ(rsOrder(out[3]), (std::vector<int>{0, 1})) << "chunk 4";
}

TEST(ThemisSched, AgPassMirrorsRsPass)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHetero());
    ThemisScheduler sched(model);
    const auto out =
        sched.scheduleCollective(CollectiveType::AllReduce, 1.0e9, 64);
    for (const auto& c : out) {
        auto rs = rsOrder(c);
        const auto ag = agOrder(c);
        std::reverse(rs.begin(), rs.end());
        EXPECT_EQ(ag, rs) << "chunk " << c.chunk_id;
    }
}

TEST(ThemisSched, EveryChunkIsAValidPermutation)
{
    const auto model =
        LatencyModel::fromTopology(presets::make4DRingFcRingSw());
    ThemisScheduler sched(model);
    const auto out =
        sched.scheduleCollective(CollectiveType::AllReduce, 0.5e9, 64);
    for (const auto& c : out) {
        auto rs = rsOrder(c);
        std::sort(rs.begin(), rs.end());
        EXPECT_EQ(rs, (std::vector<int>{0, 1, 2, 3}));
        EXPECT_EQ(c.stages.size(), 8u);
    }
}

TEST(ThemisSched, BalancesTrackedLoads)
{
    // After scheduling many chunks, the max/min tracked-load gap must
    // be far smaller than under baseline accounting.
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    ThemisScheduler sched(model);
    sched.scheduleCollective(CollectiveType::AllReduce, 1.0e9, 64);
    const auto& loads = sched.trackedLoads();
    const double max = *std::max_element(loads.begin(), loads.end());
    const double min = *std::min_element(loads.begin(), loads.end());
    EXPECT_LT((max - min) / max, 0.10);

    // Baseline load accounting on the same collective: dim1 carries
    // ~16x dim2's time load, a gap of >90%.
    DimLoadTracker baseline_tracker(model);
    baseline_tracker.reset(CollectiveType::AllReduce);
    for (int i = 0; i < 64; ++i) {
        baseline_tracker.add(model.stageLoads(
            1.0e9 / 64,
            makeStages(CollectiveType::ReduceScatter, {0, 1, 2}, {})));
    }
    const auto& bl = baseline_tracker.loads();
    const double bmax = *std::max_element(bl.begin(), bl.end());
    const double bmin = *std::min_element(bl.begin(), bl.end());
    EXPECT_GT((bmax - bmin) / bmax, 0.90);
}

TEST(ThemisSched, ThresholdRevertsToBaselineWhenBalanced)
{
    // A huge threshold keeps every chunk on the baseline schedule.
    const auto model = fig5Model();
    ThemisConfig cfg;
    cfg.threshold_fraction = 1.0e6; // absurdly large probe
    ThemisScheduler sched(model, cfg);
    const auto out =
        sched.scheduleCollective(CollectiveType::AllReduce, 256.0e6, 4);
    for (const auto& c : out)
        EXPECT_EQ(rsOrder(c), (std::vector<int>{0, 1}));
}

TEST(ThemisSched, DisabledThresholdSortsFromChunkOne)
{
    // Without the threshold, the very first chunk sorts by the A_K
    // seeded loads instead of following the baseline.
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    ThemisConfig cfg;
    cfg.use_threshold = false;
    ThemisScheduler sched(model, cfg);
    const auto out =
        sched.scheduleCollective(CollectiveType::AllReduce, 1.0e9, 64);
    // A_K(AR): dim1 = 8*700ns, dim2/3 = 6*700ns / 6*1700ns -> dim2 is
    // the least loaded at reset, so chunk 1 starts there.
    EXPECT_EQ(rsOrder(out[0])[0], 1);
}

TEST(ThemisSched, ReduceScatterOnlyUsesAscendingOrders)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHetero());
    ThemisScheduler sched(model);
    const auto out = sched.scheduleCollective(
        CollectiveType::ReduceScatter, 1.0e9, 64);
    for (const auto& c : out) {
        EXPECT_EQ(c.stages.size(), 3u);
        for (const auto& st : c.stages)
            EXPECT_EQ(st.phase, Phase::ReduceScatter);
    }
    // Later chunks must deviate from the baseline to balance loads.
    bool deviated = false;
    for (const auto& c : out)
        deviated = deviated || rsOrder(c) != std::vector<int>({0, 1, 2});
    EXPECT_TRUE(deviated);
}

TEST(ThemisSched, AllGatherOnlyStartsAtOuterDims)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHetero());
    ThemisScheduler sched(model);
    const auto out =
        sched.scheduleCollective(CollectiveType::AllGather, 1.0e9, 64);
    // Chunk 1 is balanced-at-reset -> baseline AG order dim3..dim1.
    EXPECT_EQ(agOrder(out[0]), (std::vector<int>{2, 1, 0}));
    for (const auto& c : out)
        for (const auto& st : c.stages)
            EXPECT_EQ(st.phase, Phase::AllGather);
}

TEST(ThemisSched, AllToAllKeepsBaselineOrder)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHetero());
    ThemisScheduler sched(model);
    const auto out =
        sched.scheduleCollective(CollectiveType::AllToAll, 1.0e8, 16);
    for (const auto& c : out) {
        std::vector<int> dims;
        for (const auto& st : c.stages) {
            EXPECT_EQ(st.phase, Phase::AllToAll);
            dims.push_back(st.dim);
        }
        EXPECT_EQ(dims, (std::vector<int>{0, 1, 2}));
    }
}

TEST(ThemisSched, TrackerResetsBetweenCollectives)
{
    const auto model = fig5Model();
    ThemisScheduler sched(model);
    const auto first =
        sched.scheduleCollective(CollectiveType::AllReduce, 256.0e6, 4);
    const auto second =
        sched.scheduleCollective(CollectiveType::AllReduce, 256.0e6, 4);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].stages, second[i].stages) << "chunk " << i;
}

TEST(ThemisSched, CarryLoadAblationAccumulatesAcrossCollectives)
{
    const auto model = fig5Model();
    ThemisConfig carry_cfg;
    carry_cfg.carry_load_across_collectives = true;
    ThemisScheduler carry(model, carry_cfg);
    ThemisScheduler reset(model);
    for (int i = 0; i < 2; ++i) {
        carry.scheduleCollective(CollectiveType::AllReduce, 256.0e6, 4);
        reset.scheduleCollective(CollectiveType::AllReduce, 256.0e6, 4);
    }
    // Carried tracker holds both collectives' loads; the paper's
    // resetting tracker only the last one's.
    EXPECT_NEAR(carry.trackedLoads()[0], 2.0 * reset.trackedLoads()[0],
                1e-3 * carry.trackedLoads()[0]);
}

TEST(SchedulerFactory, MakesBothKinds)
{
    const auto model = fig5Model();
    EXPECT_EQ(makeScheduler(SchedulerKind::Baseline, model)->name(),
              "Baseline");
    EXPECT_EQ(makeScheduler(SchedulerKind::Themis, model)->name(),
              "Themis");
    EXPECT_EQ(schedulerKindName(SchedulerKind::Themis), "Themis");
}

TEST(DimLoadTracker, ResetSeedsFixedDelays)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    DimLoadTracker tracker(model);
    tracker.reset(CollectiveType::AllReduce);
    const auto& loads = tracker.loads();
    // dim1: 16-wide switch -> 2*4 steps * 700 ns.
    EXPECT_DOUBLE_EQ(loads[0], 8.0 * 700.0);
    // dim3: 8-wide switch -> 2*3 steps * 1700 ns.
    EXPECT_DOUBLE_EQ(loads[2], 6.0 * 1700.0);
    tracker.reset(CollectiveType::AllReduce, false);
    for (const auto l : tracker.loads())
        EXPECT_DOUBLE_EQ(l, 0.0);
}

TEST(DimLoadTracker, AddAndExtremes)
{
    const auto model = fig5Model();
    DimLoadTracker tracker(model);
    tracker.reset(CollectiveType::AllReduce, false);
    tracker.add({3.0, 1.0});
    tracker.add({0.5, 1.0});
    EXPECT_DOUBLE_EQ(tracker.maxLoad(), 3.5);
    EXPECT_DOUBLE_EQ(tracker.minLoad(), 2.0);
    EXPECT_EQ(tracker.minLoadDim(), 1);
}

} // namespace
} // namespace themis
