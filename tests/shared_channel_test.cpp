/**
 * @file
 * Unit tests for the processor-sharing channel: serialization delay,
 * fair sharing, aborts and statistics accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "sim/shared_channel.hpp"

namespace themis::sim {
namespace {

TEST(SharedChannel, SingleTransferTakesBytesOverBandwidth)
{
    EventQueue q;
    SharedChannel ch(q, 100.0); // 100 GB/s
    TimeNs done_at = -1.0;
    ch.begin(1.0e6, [&] { done_at = q.now(); }); // 1 MB
    q.run();
    EXPECT_DOUBLE_EQ(done_at, 1.0e4); // 10 us
}

TEST(SharedChannel, ZeroByteTransferCompletesImmediately)
{
    EventQueue q;
    SharedChannel ch(q, 10.0);
    bool done = false;
    ch.begin(0.0, [&] { done = true; });
    q.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(SharedChannel, TwoEqualTransfersShareBandwidth)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t1 = -1.0, t2 = -1.0;
    ch.begin(1.0e6, [&] { t1 = q.now(); });
    ch.begin(1.0e6, [&] { t2 = q.now(); });
    q.run();
    // Each gets 50 GB/s: both finish at 20 us.
    EXPECT_DOUBLE_EQ(t1, 2.0e4);
    EXPECT_DOUBLE_EQ(t2, 2.0e4);
}

TEST(SharedChannel, ShorterTransferFinishesFirstThenRateRises)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t_small = -1.0, t_big = -1.0;
    ch.begin(2.0e6, [&] { t_big = q.now(); });
    ch.begin(1.0e6, [&] { t_small = q.now(); });
    q.run();
    // Shared until the small one drains: it needs 1MB at 50 GB/s ->
    // 20 us. The big one then has 1MB left at full rate -> +10 us.
    EXPECT_DOUBLE_EQ(t_small, 2.0e4);
    EXPECT_DOUBLE_EQ(t_big, 3.0e4);
}

TEST(SharedChannel, LateArrivalSharesRemainder)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t1 = -1.0, t2 = -1.0;
    ch.begin(2.0e6, [&] { t1 = q.now(); });
    q.schedule(1.0e4, [&] { ch.begin(0.5e6, [&] { t2 = q.now(); }); });
    q.run();
    // First runs alone for 10 us (1MB done). Then both share: second
    // needs 0.5MB at 50 GB/s = 10 us -> t2 = 20 us; first finishes its
    // last 0.5MB partly shared, partly alone:
    //   at t2 it has 1MB - 0.5MB = 0.5MB left, full rate -> 25 us.
    EXPECT_DOUBLE_EQ(t2, 2.0e4);
    EXPECT_DOUBLE_EQ(t1, 2.5e4);
}

TEST(SharedChannel, AbortFreesBandwidth)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t1 = -1.0;
    bool aborted_fired = false;
    ch.begin(1.0e6, [&] { t1 = q.now(); });
    const auto id = ch.begin(1.0e6, [&] { aborted_fired = true; });
    q.schedule(1.0e4, [&] { ch.abort(id); });
    q.run();
    EXPECT_FALSE(aborted_fired);
    // Shared for 10 us (0.5MB done), then full rate for 0.5MB (5 us).
    EXPECT_DOUBLE_EQ(t1, 1.5e4);
}

TEST(SharedChannel, CallbackCanStartNextTransfer)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t2 = -1.0;
    ch.begin(1.0e6, [&] {
        ch.begin(1.0e6, [&] { t2 = q.now(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(t2, 2.0e4);
}

TEST(SharedChannel, ProgressedBytesAccumulate)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    ch.begin(1.0e6, [] {});
    ch.begin(2.0e6, [] {});
    q.run();
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), 3.0e6, 1.0);
}

TEST(SharedChannel, PartialProgressVisibleAfterSync)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    ch.begin(2.0e6, [] {});
    q.runUntil(1.0e4); // halfway
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), 1.0e6, 1.0);
}

TEST(SharedChannel, BusyTimeExcludesIdleGaps)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    ch.begin(1.0e6, [] {});              // busy [0, 10us]
    q.schedule(5.0e4, [&] {              // idle [10us, 50us]
        ch.begin(1.0e6, [] {});          // busy [50us, 60us]
    });
    q.run();
    ch.sync();
    EXPECT_NEAR(ch.busyTime(), 2.0e4, 1.0);
}

TEST(SharedChannel, SimultaneousCompletions)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    int done = 0;
    for (int i = 0; i < 4; ++i)
        ch.begin(1.0e6, [&] { ++done; });
    q.run();
    EXPECT_EQ(done, 4);
    // Four equal transfers at quarter rate all end at 40 us.
    EXPECT_DOUBLE_EQ(q.now(), 4.0e4);
}

TEST(SharedChannel, ManyStaggeredTransfersConserveBytes)
{
    EventQueue q;
    SharedChannel ch(q, 7.5);
    double expected = 0.0;
    for (int i = 0; i < 50; ++i) {
        const double bytes = 1000.0 * (i + 1);
        expected += bytes;
        q.schedule(137.0 * i, [&ch, bytes] { ch.begin(bytes, [] {}); });
    }
    q.run();
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), expected, 1.0);
}

TEST(SharedChannel, ForcedDrainConservesBytesExactly)
{
    // Two transfers whose sizes differ by a sub-sliver amount: after
    // the first drains, the second's remainder moves in under
    // kTimeSliver and takes the forced-drain path. Conservation must
    // hold exactly — the residual is credited once, never twice.
    EventQueue q;
    SharedChannel ch(q, 100.0);
    int done = 0;
    const Bytes a = 1.0e6;
    const Bytes b = 1.0e6 + 1.0e-5; // residual far below the sliver
    ch.begin(a, [&] { ++done; });
    ch.begin(b, [&] { ++done; });
    q.run();
    EXPECT_EQ(done, 2);
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), a + b, 1e-6);
    EXPECT_EQ(ch.activeCount(), 0u);
}

TEST(SharedChannel, ConservationSumProgressedEqualsSumBegun)
{
    // Sum of progressed bytes == sum of begun bytes once everything
    // drains, across a mix of sizes chosen to exercise simultaneous
    // completions, forced drains and rate changes.
    EventQueue q;
    SharedChannel ch(q, 13.0);
    double begun = 0.0;
    int done = 0, expected_done = 0;
    for (int i = 0; i < 200; ++i) {
        const double bytes =
            (i % 7 == 0) ? 5000.0 : 997.0 * (i % 13) + 0.125 * i;
        begun += bytes;
        ++expected_done;
        q.schedule(41.0 * (i % 17),
                   [&ch, &done, bytes] { ch.begin(bytes, [&done] { ++done; }); });
    }
    q.run();
    ch.sync();
    EXPECT_EQ(done, expected_done);
    EXPECT_NEAR(ch.progressedBytes(), begun, 1e-3);
}

TEST(SharedChannel, AbortFromInsideCompletionCallback)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    SharedChannel::TransferId victim = 0;
    bool victim_fired = false;
    TimeNs t_survivor = -1.0;
    ch.begin(1.0e6, [&] { ch.abort(victim); });
    victim = ch.begin(3.0e6, [&] { victim_fired = true; });
    ch.begin(2.0e6, [&] { t_survivor = q.now(); });
    q.run();
    EXPECT_FALSE(victim_fired);
    // All three share until 1MB drains at t = 30us (rate 100/3). The
    // abort then leaves the survivor's last 1MB alone at full rate:
    // +10us.
    EXPECT_DOUBLE_EQ(t_survivor, 4.0e4);
    EXPECT_EQ(ch.activeCount(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(SharedChannel, BeginFromInsideCallbackJoinsSharing)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t_spawned = -1.0, t_old = -1.0;
    ch.begin(1.0e6, [&] {
        ch.begin(1.0e6, [&] { t_spawned = q.now(); });
    });
    ch.begin(3.0e6, [&] { t_old = q.now(); });
    q.run();
    // Shared halves until 20us (1MB each). Then the spawned 1MB and
    // the old transfer's remaining 2MB share: spawned +20us = 40us,
    // old then finishes its last 1MB alone at 50us.
    EXPECT_DOUBLE_EQ(t_spawned, 4.0e4);
    EXPECT_DOUBLE_EQ(t_old, 5.0e4);
}

TEST(SharedChannel, AbortAfterCompletionIsNoop)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    const auto id = ch.begin(1.0e6, [] {});
    q.run();
    ch.abort(id); // already drained: harmless
    EXPECT_EQ(ch.activeCount(), 0u);
}

TEST(SharedChannel, PeakActiveCountTracksHighWaterMark)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    for (int i = 0; i < 5; ++i)
        ch.begin(1.0e6 * (i + 1), [] {});
    EXPECT_EQ(ch.peakActiveCount(), 5u);
    q.run();
    EXPECT_EQ(ch.activeCount(), 0u);
    EXPECT_EQ(ch.peakActiveCount(), 5u);
}

TEST(SharedChannel, CompletionOrderIsDeterministicAndByBeginOrder)
{
    // Simultaneous completions fire their callbacks in begin order,
    // and the whole completion sequence is identical run after run.
    auto drive = [] {
        EventQueue q;
        SharedChannel ch(q, 50.0);
        std::vector<int> order;
        for (int i = 0; i < 40; ++i) {
            const double bytes = (i % 4 == 0) ? 2.0e5 : 1.0e5 * (i % 3 + 1);
            q.schedule(13.0 * (i % 5),
                       [&ch, &order, i, bytes] {
                           ch.begin(bytes, [&order, i] {
                               order.push_back(i);
                           });
                       });
        }
        q.run();
        return order;
    };
    const auto first = drive();
    const auto second = drive();
    EXPECT_EQ(first, second);
    EXPECT_EQ(first.size(), 40u);

    // Four equal transfers begun in one batch drain together, in
    // begin order.
    EventQueue q;
    SharedChannel ch(q, 100.0);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        ch.begin(1.0e6, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SharedChannel, VirtualTimeRebasePreservesConservation)
{
    // Push cumulative service past 1e15 virtual bytes (where, without
    // rebasing, a double's ulp would reach ~0.125 bytes — five orders
    // of magnitude above the drain epsilon) and verify byte
    // conservation and completion counting stay exact. A chain of
    // sequential petascale transfers crosses the 1e9 rebase threshold
    // many times over.
    EventQueue q;
    SharedChannel ch(q, 1000.0);
    constexpr Bytes kTransfer = 1.0e12;
    constexpr int kCount = 1200; // 1.2e15 cumulative virtual bytes
    int done = 0;
    std::function<void()> next = [&] {
        ++done;
        if (done < kCount)
            ch.begin(kTransfer, next);
    };
    ch.begin(kTransfer, next);
    q.run();
    ch.sync();
    EXPECT_EQ(done, kCount);
    EXPECT_EQ(ch.activeCount(), 0u);
    EXPECT_NEAR(ch.progressedBytes(), kTransfer * kCount, 1.0);
    // Serial service: total time is exactly total bytes / capacity.
    EXPECT_NEAR(q.now(), kTransfer * kCount / 1000.0, 1.0);
}

TEST(SharedChannel, RebaseAcrossConcurrentTransfers)
{
    // Two concurrent transfers straddling the rebase boundary: the
    // uniform shift of pending finish points must not disturb either
    // completion time or the byte accounting.
    EventQueue q;
    SharedChannel ch(q, 100.0);
    constexpr Bytes kA = 1.2e15;
    constexpr Bytes kB = 1.5e15;
    TimeNs t_a = -1.0, t_b = -1.0;
    ch.begin(kA, [&] { t_a = q.now(); });
    ch.begin(kB, [&] { t_b = q.now(); });
    q.run();
    ch.sync();
    // Equal sharing: A drains when both received kA bytes (time
    // 2*kA/cap), then B's remainder runs alone at full capacity.
    const TimeNs expect_a = 2.0 * kA / 100.0;
    const TimeNs expect_b = expect_a + (kB - kA) / 100.0;
    EXPECT_NEAR(t_a, expect_a, 1e-6 * expect_a);
    EXPECT_NEAR(t_b, expect_b, 1e-6 * expect_b);
    EXPECT_NEAR(ch.progressedBytes(), kA + kB, 1.0);
    EXPECT_EQ(ch.activeCount(), 0u);
}

TEST(SharedChannel, SetCapacityMidTransferChangesRate)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t1 = -1.0;
    ch.begin(2.0e6, [&] { t1 = q.now(); });
    q.schedule(1.0e4, [&] { ch.setCapacity(q.now(), 50.0); });
    q.run();
    // 10 us at 100 GB/s -> 1MB done; the remaining 1MB at 50 GB/s
    // takes 20 us more.
    EXPECT_NEAR(t1, 3.0e4, 1e-6 * 3.0e4);
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), 2.0e6, 1.0);
    EXPECT_EQ(ch.activeCount(), 0u);
}

TEST(SharedChannel, RepeatedCapacityStepsConserveBytes)
{
    // Many capacity steps while transfers are in flight: finish
    // points are capacity-independent in virtual time, so byte
    // conservation must hold exactly no matter how often (or how
    // hard) the capacity moves.
    EventQueue q;
    SharedChannel ch(q, 100.0);
    double begun = 0.0;
    int done = 0;
    for (int i = 0; i < 40; ++i) {
        const double bytes = 3.0e5 + 1.7e4 * (i % 9);
        begun += bytes;
        q.schedule(251.0 * i,
                   [&ch, &done, bytes] { ch.begin(bytes, [&done] { ++done; }); });
    }
    for (int i = 1; i <= 25; ++i) {
        const double cap = (i % 2 == 0) ? 100.0 : 100.0 / (1 + i % 5);
        q.schedule(431.0 * i, [&ch, cap, &q] { ch.setCapacity(q.now(), cap); });
    }
    q.run();
    ch.sync();
    EXPECT_EQ(done, 40);
    EXPECT_NEAR(ch.progressedBytes(), begun, 1.0 + 1e-6 * begun);
    EXPECT_EQ(ch.activeCount(), 0u);
}

TEST(SharedChannel, EpochResetAfterCapacityStepsAndRetiredClasses)
{
    // One "iteration epoch" with per-class traffic, a mid-epoch
    // capacity step and a class retirement; after epochReset() the
    // channel must behave exactly like a fresh one, including a
    // second epoch with its own capacity steps.
    EventQueue q;
    SharedChannel ch(q, 100.0);
    ch.begin(1.0e6, 1.0, [] {}, 0);
    ch.begin(1.0e6, 1.0, [] {}, 4);
    q.schedule(5.0e3, [&] { ch.setCapacity(q.now(), 200.0); });
    q.run();
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), 2.0e6, 1.0);
    EXPECT_NEAR(ch.classProgressedBytes(4), 1.0e6, 1.0);

    ch.retireClass(4);
    EXPECT_EQ(ch.numClasses(), 1);
    EXPECT_DOUBLE_EQ(ch.classProgressedBytes(4), 0.0);

    // Epoch boundary: the runtime rebases the queue first.
    q.rebaseToZero();
    ch.epochReset();
    EXPECT_DOUBLE_EQ(ch.progressedBytes(), 0.0);
    EXPECT_DOUBLE_EQ(ch.busyTime(), 0.0);
    EXPECT_DOUBLE_EQ(ch.classProgressedBytes(0), 0.0);

    // Second epoch: the capacity carried across the reset is the
    // stepped one (200), and stepping it again mid-epoch works the
    // same as in the first epoch. A begin() in the retired class
    // simply starts fresh accounts.
    EXPECT_DOUBLE_EQ(ch.capacity(), 200.0);
    TimeNs t1 = -1.0;
    ch.begin(2.0e6, 1.0, [&] { t1 = q.now(); }, 4);
    q.schedule(5.0e3, [&] { ch.setCapacity(q.now(), 100.0); });
    q.run();
    ch.sync();
    // 5 us at 200 GB/s -> 1MB done; remaining 1MB at 100 -> +10 us.
    EXPECT_NEAR(t1, 1.5e4, 1e-6 * 1.5e4);
    EXPECT_NEAR(ch.progressedBytes(), 2.0e6, 1.0);
    EXPECT_NEAR(ch.classProgressedBytes(4), 2.0e6, 1.0);
    EXPECT_EQ(ch.numClasses(), 5);
}

TEST(SharedChannel, FailActiveReportsRemaindersInBeginOrder)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    std::vector<double> remainders;
    bool completed = false;
    auto on_fail = [&](Bytes remaining) {
        remainders.push_back(remaining);
    };
    ch.begin(2.0e6, 1.0, [&] { completed = true; }, 0, on_fail);
    ch.begin(4.0e6, 1.0, [&] { completed = true; }, 0, on_fail);
    q.schedule(2.0e4, [&] { ch.failActive(); });
    q.run();
    EXPECT_FALSE(completed);
    EXPECT_EQ(ch.activeCount(), 0u);
    ASSERT_EQ(remainders.size(), 2u);
    // 20 us shared at 50 GB/s each: 1MB progressed per transfer.
    EXPECT_NEAR(remainders[0], 1.0e6, 1.0);
    EXPECT_NEAR(remainders[1], 3.0e6, 1.0);
    ch.sync();
    // The partial progress stays accounted.
    EXPECT_NEAR(ch.progressedBytes(), 2.0e6, 1.0);
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace themis::sim
