/**
 * @file
 * Unit tests for the processor-sharing channel: serialization delay,
 * fair sharing, aborts and statistics accounting.
 */

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "sim/shared_channel.hpp"

namespace themis::sim {
namespace {

TEST(SharedChannel, SingleTransferTakesBytesOverBandwidth)
{
    EventQueue q;
    SharedChannel ch(q, 100.0); // 100 GB/s
    TimeNs done_at = -1.0;
    ch.begin(1.0e6, [&] { done_at = q.now(); }); // 1 MB
    q.run();
    EXPECT_DOUBLE_EQ(done_at, 1.0e4); // 10 us
}

TEST(SharedChannel, ZeroByteTransferCompletesImmediately)
{
    EventQueue q;
    SharedChannel ch(q, 10.0);
    bool done = false;
    ch.begin(0.0, [&] { done = true; });
    q.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(SharedChannel, TwoEqualTransfersShareBandwidth)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t1 = -1.0, t2 = -1.0;
    ch.begin(1.0e6, [&] { t1 = q.now(); });
    ch.begin(1.0e6, [&] { t2 = q.now(); });
    q.run();
    // Each gets 50 GB/s: both finish at 20 us.
    EXPECT_DOUBLE_EQ(t1, 2.0e4);
    EXPECT_DOUBLE_EQ(t2, 2.0e4);
}

TEST(SharedChannel, ShorterTransferFinishesFirstThenRateRises)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t_small = -1.0, t_big = -1.0;
    ch.begin(2.0e6, [&] { t_big = q.now(); });
    ch.begin(1.0e6, [&] { t_small = q.now(); });
    q.run();
    // Shared until the small one drains: it needs 1MB at 50 GB/s ->
    // 20 us. The big one then has 1MB left at full rate -> +10 us.
    EXPECT_DOUBLE_EQ(t_small, 2.0e4);
    EXPECT_DOUBLE_EQ(t_big, 3.0e4);
}

TEST(SharedChannel, LateArrivalSharesRemainder)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t1 = -1.0, t2 = -1.0;
    ch.begin(2.0e6, [&] { t1 = q.now(); });
    q.schedule(1.0e4, [&] { ch.begin(0.5e6, [&] { t2 = q.now(); }); });
    q.run();
    // First runs alone for 10 us (1MB done). Then both share: second
    // needs 0.5MB at 50 GB/s = 10 us -> t2 = 20 us; first finishes its
    // last 0.5MB partly shared, partly alone:
    //   at t2 it has 1MB - 0.5MB = 0.5MB left, full rate -> 25 us.
    EXPECT_DOUBLE_EQ(t2, 2.0e4);
    EXPECT_DOUBLE_EQ(t1, 2.5e4);
}

TEST(SharedChannel, AbortFreesBandwidth)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t1 = -1.0;
    bool aborted_fired = false;
    ch.begin(1.0e6, [&] { t1 = q.now(); });
    const auto id = ch.begin(1.0e6, [&] { aborted_fired = true; });
    q.schedule(1.0e4, [&] { ch.abort(id); });
    q.run();
    EXPECT_FALSE(aborted_fired);
    // Shared for 10 us (0.5MB done), then full rate for 0.5MB (5 us).
    EXPECT_DOUBLE_EQ(t1, 1.5e4);
}

TEST(SharedChannel, CallbackCanStartNextTransfer)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t2 = -1.0;
    ch.begin(1.0e6, [&] {
        ch.begin(1.0e6, [&] { t2 = q.now(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(t2, 2.0e4);
}

TEST(SharedChannel, ProgressedBytesAccumulate)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    ch.begin(1.0e6, [] {});
    ch.begin(2.0e6, [] {});
    q.run();
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), 3.0e6, 1.0);
}

TEST(SharedChannel, PartialProgressVisibleAfterSync)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    ch.begin(2.0e6, [] {});
    q.runUntil(1.0e4); // halfway
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), 1.0e6, 1.0);
}

TEST(SharedChannel, BusyTimeExcludesIdleGaps)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    ch.begin(1.0e6, [] {});              // busy [0, 10us]
    q.schedule(5.0e4, [&] {              // idle [10us, 50us]
        ch.begin(1.0e6, [] {});          // busy [50us, 60us]
    });
    q.run();
    ch.sync();
    EXPECT_NEAR(ch.busyTime(), 2.0e4, 1.0);
}

TEST(SharedChannel, SimultaneousCompletions)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    int done = 0;
    for (int i = 0; i < 4; ++i)
        ch.begin(1.0e6, [&] { ++done; });
    q.run();
    EXPECT_EQ(done, 4);
    // Four equal transfers at quarter rate all end at 40 us.
    EXPECT_DOUBLE_EQ(q.now(), 4.0e4);
}

TEST(SharedChannel, ManyStaggeredTransfersConserveBytes)
{
    EventQueue q;
    SharedChannel ch(q, 7.5);
    double expected = 0.0;
    for (int i = 0; i < 50; ++i) {
        const double bytes = 1000.0 * (i + 1);
        expected += bytes;
        q.schedule(137.0 * i, [&ch, bytes] { ch.begin(bytes, [] {}); });
    }
    q.run();
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), expected, 1.0);
}

} // namespace
} // namespace themis::sim
