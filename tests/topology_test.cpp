/**
 * @file
 * Topology/dimension tests, including checks that the Table 2 presets
 * carry the paper's exact aggregate bandwidths and sizes.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topology/presets.hpp"
#include "topology/topology.hpp"

namespace themis {
namespace {

DimensionConfig
dim(DimKind kind, int size, double gbps, int links, TimeNs lat)
{
    DimensionConfig d;
    d.kind = kind;
    d.size = size;
    d.link_bw_gbps = gbps;
    d.links_per_npu = links;
    d.step_latency_ns = lat;
    return d;
}

TEST(Dimension, AggregateBandwidthIsLinksTimesLinkRate)
{
    const auto d = dim(DimKind::Switch, 16, 200.0, 6, 700.0);
    EXPECT_DOUBLE_EQ(bwToGbps(d.bandwidth()), 1200.0);
}

TEST(Dimension, ValidateRejectsDegenerateSize)
{
    auto d = dim(DimKind::Ring, 1, 100.0, 1, 0.0);
    EXPECT_THROW(d.validate(), ConfigError);
}

TEST(Dimension, ValidateRejectsNonPowerOfTwoSwitch)
{
    auto d = dim(DimKind::Switch, 6, 100.0, 1, 0.0);
    EXPECT_THROW(d.validate(), ConfigError);
}

TEST(Dimension, ValidateRejectsTooManyCliqueLinks)
{
    auto d = dim(DimKind::FullyConnected, 4, 100.0, 4, 0.0);
    EXPECT_THROW(d.validate(), ConfigError);
}

TEST(Dimension, ValidateAcceptsPaperConfigs)
{
    dim(DimKind::Ring, 4, 1000.0, 2, 20.0).validate();
    dim(DimKind::FullyConnected, 8, 200.0, 7, 700.0).validate();
    dim(DimKind::Switch, 64, 800.0, 1, 1700.0).validate();
    SUCCEED();
}

TEST(Dimension, KindNamesRoundTrip)
{
    for (DimKind k : {DimKind::Ring, DimKind::FullyConnected,
                      DimKind::Switch}) {
        EXPECT_EQ(dimKindFromName(dimKindName(k)), k);
    }
    EXPECT_THROW(dimKindFromName("mesh"), ConfigError);
}

TEST(Topology, TotalsAndSizeString)
{
    Topology t("test", {dim(DimKind::Switch, 16, 200.0, 6, 700.0),
                        dim(DimKind::Switch, 64, 800.0, 1, 1700.0)});
    EXPECT_EQ(t.totalNpus(), 1024);
    EXPECT_EQ(t.sizeString(), "16x64");
    EXPECT_DOUBLE_EQ(bwToGbps(t.totalBandwidth()), 2000.0);
}

TEST(Topology, RejectsEmpty)
{
    EXPECT_THROW(Topology("empty", {}), ConfigError);
}

TEST(Topology, DimIndexChecked)
{
    Topology t("t", {dim(DimKind::Ring, 4, 100.0, 2, 0.0)});
    EXPECT_DEATH(t.dim(1), "out of range");
}

struct PresetExpectation
{
    const char* name;
    std::vector<int> sizes;
    std::vector<double> aggr_gbps;
    std::vector<double> latency_ns;
};

class PresetTable2 : public ::testing::TestWithParam<PresetExpectation>
{};

// Table 2 of the paper, verbatim.
INSTANTIATE_TEST_SUITE_P(
    Table2, PresetTable2,
    ::testing::Values(
        PresetExpectation{"2D-SW_SW",
                          {16, 64},
                          {1200, 800},
                          {700, 1700}},
        PresetExpectation{"3D-SW_SW_SW_homo",
                          {16, 8, 8},
                          {800, 800, 800},
                          {700, 700, 1700}},
        PresetExpectation{"3D-SW_SW_SW_hetero",
                          {16, 8, 8},
                          {1600, 800, 400},
                          {700, 700, 1700}},
        PresetExpectation{"3D-FC_Ring_SW",
                          {8, 16, 8},
                          {1400, 800, 400},
                          {700, 700, 1700}},
        PresetExpectation{"4D-Ring_SW_SW_SW",
                          {4, 4, 8, 8},
                          {2000, 1600, 800, 400},
                          {20, 700, 700, 1700}},
        PresetExpectation{"4D-Ring_FC_Ring_SW",
                          {4, 8, 4, 8},
                          {3000, 1400, 1200, 800},
                          {20, 700, 700, 1700}}),
    [](const auto& inf) {
        std::string n = inf.param.name;
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST_P(PresetTable2, MatchesPaperRow)
{
    const auto& exp = GetParam();
    const Topology t = presets::byName(exp.name);
    ASSERT_EQ(t.numDims(), static_cast<int>(exp.sizes.size()));
    EXPECT_EQ(t.totalNpus(), 1024); // all Table 2 platforms are 1024
    for (int d = 0; d < t.numDims(); ++d) {
        const auto i = static_cast<std::size_t>(d);
        EXPECT_EQ(t.dim(d).size, exp.sizes[i]) << "dim " << d;
        EXPECT_DOUBLE_EQ(bwToGbps(t.dim(d).bandwidth()),
                         exp.aggr_gbps[i])
            << "dim " << d;
        EXPECT_DOUBLE_EQ(t.dim(d).step_latency_ns, exp.latency_ns[i])
            << "dim " << d;
    }
}

TEST(Presets, CurrentPlatformHasBigBandwidthGap)
{
    const Topology t = presets::makeCurrent2D();
    EXPECT_EQ(t.totalNpus(), 1024);
    EXPECT_DOUBLE_EQ(bwToGbps(t.dim(0).bandwidth()), 1200.0);
    EXPECT_DOUBLE_EQ(bwToGbps(t.dim(1).bandwidth()), 100.0);
}

TEST(Presets, AllSetHasSevenPlatforms)
{
    EXPECT_EQ(presets::nextGenTopologies().size(), 6u);
    EXPECT_EQ(presets::allTopologies().size(), 7u);
}

TEST(Presets, ByNameIsCaseInsensitiveAndChecked)
{
    EXPECT_EQ(presets::byName("3d-sw_sw_sw_HOMO").name(),
              "3D-SW_SW_SW_homo");
    EXPECT_THROW(presets::byName("5D-Torus"), ConfigError);
}

TEST(Presets, EveryPresetValidates)
{
    for (const auto& t : presets::allTopologies()) {
        EXPECT_GE(t.numDims(), 2) << t.name();
        EXPECT_EQ(t.totalNpus(), 1024) << t.name();
        EXPECT_FALSE(t.describe().empty());
    }
}

} // namespace
} // namespace themis
