/**
 * @file
 * Steady-state iteration replay: epoch mechanics, fingerprint-based
 * detection, replay-vs-full-simulation bit identity (including the
 * in-binary exactness mode), session-pool and arena reuse, and the
 * batched-vs-scalar admission equivalence.
 */

#include <gtest/gtest.h>

#include "models/model_zoo.hpp"
#include "runtime/comm_runtime.hpp"
#include "topology/presets.hpp"
#include "workload/convergence.hpp"
#include "workload/training_loop.hpp"

namespace themis::workload {
namespace {

/** Small hybrid workload with MP + DP traffic (fig12-shaped). */
ModelGraph
smallHybridModel()
{
    ModelGraph g;
    g.name = "small-hybrid";
    g.parallel = ParallelSpec::hybrid(16);
    g.fused_dp_grads = false;
    for (int i = 0; i < 3; ++i) {
        Layer l;
        l.name = "l" + std::to_string(i);
        l.fwd_flops = 2.0e11;
        l.bwd_flops = 4.0e11;
        l.dp_grad_bytes = 6.0e6;
        l.fwd_comm.push_back({CollectiveType::AllReduce, 4.0e6,
                              CommDomain::ModelParallel, true});
        l.bwd_comm.push_back({CollectiveType::AllReduce, 4.0e6,
                              CommDomain::ModelParallel, true});
        g.layers.push_back(l);
    }
    return g;
}

ConvergenceReport
runModel(const ModelGraph& model, const Topology& topo,
         const ConvergenceOptions& opts,
         runtime::RuntimeConfig cfg = runtime::themisScfConfig(),
         PlanCache* cache = nullptr)
{
    sim::EventQueue queue;
    cfg.plan_cache = cache;
    runtime::CommRuntime comm(queue, topo, cfg);
    TrainingLoop loop(comm, model);
    return runConverged(comm, loop, opts);
}

TEST(Convergence, SteadyStateDetectedQuickly)
{
    ConvergenceOptions opts;
    opts.iterations = 10;
    const auto r =
        runModel(smallHybridModel(), presets::make2DSwSw(), opts);
    EXPECT_EQ(r.iterations, 10);
    ASSERT_GE(r.steady_at, 1);
    // Deterministic planning: iteration 2 matches iteration 1, so at
    // most a handful of iterations are ever simulated.
    EXPECT_LE(r.simulated_iterations, 3);
    EXPECT_EQ(r.simulated_iterations + r.replayed_iterations, 10);
    EXPECT_NE(r.steady_fingerprint, 0u);
    EXPECT_GT(r.total.total, 0.0);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_EQ(r.per_iteration.size(), 10u);
}

TEST(Convergence, ReplayTotalsBitIdenticalToFullSimulation)
{
    const ModelGraph model = smallHybridModel();
    const Topology topo = presets::make2DSwSw();
    ConvergenceOptions replay_opts;
    replay_opts.iterations = 12;
    ConvergenceOptions full_opts;
    full_opts.iterations = 12;
    full_opts.replay = false;
    const auto fast = runModel(model, topo, replay_opts);
    const auto full = runModel(model, topo, full_opts);

    EXPECT_GT(fast.replayed_iterations, 0);
    EXPECT_EQ(full.replayed_iterations, 0);
    EXPECT_EQ(full.simulated_iterations, 12);
    EXPECT_TRUE(bitIdentical(fast.total, full.total));
    EXPECT_TRUE(bitIdentical(fast.last, full.last));
    EXPECT_EQ(fast.active_time, full.active_time);
    EXPECT_EQ(fast.ops, full.ops);
    ASSERT_EQ(fast.dim_bytes.size(), full.dim_bytes.size());
    for (std::size_t d = 0; d < fast.dim_bytes.size(); ++d)
        EXPECT_EQ(fast.dim_bytes[d], full.dim_bytes[d]) << "dim " << d;
    ASSERT_EQ(fast.class_bytes.size(), full.class_bytes.size());
    for (std::size_t c = 0; c < fast.class_bytes.size(); ++c)
        EXPECT_EQ(fast.class_bytes[c], full.class_bytes[c])
            << "class " << c;
    EXPECT_EQ(fast.utilization, full.utilization);
    ASSERT_EQ(fast.per_iteration.size(), full.per_iteration.size());
    for (std::size_t i = 0; i < fast.per_iteration.size(); ++i)
        EXPECT_TRUE(bitIdentical(fast.per_iteration[i],
                                 full.per_iteration[i]))
            << "iteration " << i;
}

TEST(Convergence, SingleLoopCycleLimitOneMatchesAuto)
{
    // A single always-stepping loop has hyper-period 1: cycle_limit 0
    // (auto) and 1 must be the same engine, bit for bit, and the new
    // period-k bookkeeping must report the degenerate cycle.
    const ModelGraph model = smallHybridModel();
    const Topology topo = presets::make2DSwSw();
    ConvergenceOptions auto_opts;
    auto_opts.iterations = 10;
    ConvergenceOptions one_opts = auto_opts;
    one_opts.cycle_limit = 1;
    const auto a = runModel(model, topo, auto_opts);
    const auto b = runModel(model, topo, one_opts);
    EXPECT_TRUE(resultsBitIdentical(a, b));
    EXPECT_EQ(a.steady_at, b.steady_at);
    EXPECT_EQ(a.cycle_length, 1);
    EXPECT_EQ(a.hyper_period, 1);
    EXPECT_EQ(a.epochs_simulated, a.simulated_iterations);
    EXPECT_EQ(a.epochs_replayed, a.replayed_iterations);
    EXPECT_GT(a.epochs_replayed, 0);
}

TEST(Convergence, ExactnessCheckModePasses)
{
    ConvergenceOptions opts;
    opts.iterations = 8;
    opts.exactness_check = true; // asserts internally on divergence
    const auto r =
        runModel(smallHybridModel(), presets::make2DSwSw(), opts);
    EXPECT_EQ(r.simulated_iterations, 8);
    EXPECT_EQ(r.replayed_iterations, 0);
    EXPECT_GE(r.steady_at, 1);
}

TEST(Convergence, ExactnessOnPaperWorkloadWithPlanCache)
{
    // fig12-shaped cell: a paper workload on a next-gen platform,
    // plan cache shared, enforced orders exercised elsewhere.
    PlanCache cache;
    ConvergenceOptions opts;
    opts.iterations = 5;
    opts.exactness_check = true;
    const auto topos = presets::nextGenTopologies();
    ASSERT_FALSE(topos.empty());
    const auto r = runModel(models::byName("ResNet-152"), topos[0],
                            opts, runtime::themisScfConfig(), &cache);
    EXPECT_EQ(r.simulated_iterations, 5);
    EXPECT_GE(r.steady_at, 1);
}

TEST(Convergence, BaselineSchedulerReachesSteadyStateToo)
{
    ConvergenceOptions opts;
    opts.iterations = 9;
    const auto r = runModel(smallHybridModel(), presets::make2DSwSw(),
                            opts, runtime::baselineConfig());
    EXPECT_GE(r.steady_at, 1);
    EXPECT_GT(r.replayed_iterations, 0);
}

TEST(Convergence, CarryLoadConfigNeverReplays)
{
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.themis.carry_load_across_collectives = true;
    ConvergenceOptions opts;
    opts.iterations = 6;
    const auto r = runModel(smallHybridModel(), presets::make2DSwSw(),
                            opts, cfg);
    // History-dependent plans: every iteration must be simulated.
    EXPECT_EQ(r.simulated_iterations, 6);
    EXPECT_EQ(r.replayed_iterations, 0);
    EXPECT_EQ(r.steady_at, -1);
}

TEST(Convergence, SessionPoolAndArenaStopGrowingAtSteadyState)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make2DSwSw(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, smallHybridModel());

    ConvergenceOptions opts;
    opts.iterations = 2;
    opts.replay = false;
    runConverged(comm, loop, opts);
    const std::size_t session_slots = comm.sessionSlotCount();
    std::size_t arena_slabs = 0;
    for (int d = 0; d < comm.topology().numDims(); ++d)
        arena_slabs += comm.engine(d).arenaSlabCount();

    runConverged(comm, loop, opts);
    runConverged(comm, loop, opts);
    EXPECT_EQ(comm.sessionSlotCount(), session_slots)
        << "sessions were re-allocated instead of recycled";
    std::size_t arena_slabs_after = 0;
    for (int d = 0; d < comm.topology().numDims(); ++d)
        arena_slabs_after += comm.engine(d).arenaSlabCount();
    EXPECT_EQ(arena_slabs_after, arena_slabs)
        << "engine arenas kept growing across epochs";
}

TEST(Convergence, EpochRebaseKeepsRecordsInIterationFrame)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make2DSwSw(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, smallHybridModel());
    comm.beginIterationEpoch();
    loop.runIteration();
    const auto s1 = comm.finishIterationEpoch();
    const TimeNs t1 = queue.now();
    comm.beginIterationEpoch();
    EXPECT_DOUBLE_EQ(queue.now(), 0.0); // clock rebased
    loop.runIteration();
    const auto s2 = comm.finishIterationEpoch();
    EXPECT_DOUBLE_EQ(t1, s1.duration);
    EXPECT_TRUE(s2.identicalTo(s2));
    EXPECT_GT(s1.duration, 0.0);
    EXPECT_GT(s1.ops, 0u);
    EXPECT_GT(s1.collectives, 0);
}

TEST(Convergence, FingerprintSeparatesDifferentWorkloads)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make2DSwSw(),
                              runtime::themisScfConfig());
    ModelGraph small = smallHybridModel();
    ModelGraph bigger = smallHybridModel();
    bigger.layers[1].dp_grad_bytes *= 2.0;
    TrainingLoop loop_a(comm, small);
    TrainingLoop loop_b(comm, bigger);

    comm.beginIterationEpoch();
    loop_a.runIteration();
    const auto sa = comm.finishIterationEpoch();
    comm.beginIterationEpoch();
    loop_b.runIteration();
    const auto sb = comm.finishIterationEpoch();
    EXPECT_NE(sa.fingerprint, sb.fingerprint);
    EXPECT_FALSE(sa.identicalTo(sb));
}

TEST(Convergence, BatchedAdmissionBitIdenticalToScalar)
{
    const ModelGraph model = smallHybridModel();
    for (const auto& topo :
         {presets::make2DSwSw(), presets::make3DSwSwSwHomo()}) {
        runtime::RuntimeConfig batched = runtime::themisScfConfig();
        runtime::RuntimeConfig scalar = batched;
        scalar.legacy_scalar_admission = true;
        ConvergenceOptions opts;
        opts.iterations = 4;
        opts.replay = false;
        const auto rb = runModel(model, topo, opts, batched);
        const auto rs = runModel(model, topo, opts, scalar);
        EXPECT_TRUE(bitIdentical(rb.total, rs.total));
        EXPECT_EQ(rb.ops, rs.ops);
        for (std::size_t d = 0; d < rb.dim_bytes.size(); ++d)
            EXPECT_EQ(rb.dim_bytes[d], rs.dim_bytes[d]);
    }
}

TEST(Convergence, BatchedAdmissionMatchesScalarUnderPriorities)
{
    // Mixed tiers force the batched dispatcher onto the scalar
    // fallback mid-run; results must still match the always-scalar
    // engine bit for bit.
    runtime::RuntimeConfig batched = runtime::themisScfConfig();
    batched.scheduler = SchedulerKind::ThemisPriority;
    batched.priority = PriorityPolicy::tiered(4.0);
    runtime::RuntimeConfig scalar = batched;
    scalar.legacy_scalar_admission = true;

    auto run_two_tenant = [&](const runtime::RuntimeConfig& cfg) {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, presets::make2DSwSw(), cfg);
        std::vector<TimeNs> done;
        for (int i = 0; i < 4; ++i) {
            CollectiveRequest r;
            r.type = CollectiveType::AllReduce;
            r.size = 1.0e8;
            r.priority_tier =
                static_cast<int>(i % 2 == 0 ? PriorityTier::Urgent
                                            : PriorityTier::Bulk);
            const int id = comm.issue(r);
            (void)id;
        }
        queue.run();
        for (const auto& rec : comm.records())
            done.push_back(rec.completed);
        return done;
    };
    EXPECT_EQ(run_two_tenant(batched), run_two_tenant(scalar));
}

TEST(Convergence, EnforcedOrderRunsStayOnScalarPathAndAgree)
{
    runtime::RuntimeConfig batched = runtime::themisScfConfig();
    batched.enforce_consistent_order = true;
    runtime::RuntimeConfig scalar = batched;
    scalar.legacy_scalar_admission = true;
    ConvergenceOptions opts;
    opts.iterations = 3;
    opts.replay = false;
    const auto rb = runModel(smallHybridModel(), presets::make2DSwSw(),
                             opts, batched);
    const auto rs = runModel(smallHybridModel(), presets::make2DSwSw(),
                             opts, scalar);
    EXPECT_TRUE(bitIdentical(rb.total, rs.total));
}

TEST(Convergence, RunWithoutEpochsStillWorksAfterEpochRun)
{
    // Epochs are opt-in: a plain runIteration() loop on the same
    // runtime keeps working after an epoch run (monotonic clock, no
    // rebasing).
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make2DSwSw(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, smallHybridModel());
    ConvergenceOptions opts;
    opts.iterations = 2;
    runConverged(comm, loop, opts);
    const auto it1 = loop.runIteration();
    const auto it2 = loop.runIteration();
    EXPECT_GT(it1.total, 0.0);
    EXPECT_GT(it2.total, 0.0);
}

} // namespace
} // namespace themis::workload
