/**
 * @file
 * Unit tests of the per-dimension execution engine: queueing order,
 * admission of parallel small ops, enforced-order gating, presence
 * and listener plumbing.
 */

#include <gtest/gtest.h>

#include "runtime/dimension_engine.hpp"

namespace themis::runtime {
namespace {

DimensionConfig
switchDim(int size, double gbps, TimeNs lat)
{
    DimensionConfig d;
    d.kind = DimKind::Switch;
    d.size = size;
    d.link_bw_gbps = gbps;
    d.links_per_npu = 1;
    d.step_latency_ns = lat;
    return d;
}

struct Harness
{
    sim::EventQueue queue;
    DimensionConfig cfg = switchDim(8, 800.0, 0.0);
    std::vector<int> finished;     // chunk ids in completion order
    std::vector<TimeNs> finish_at; // completion times

    ChunkOp
    op(int chunk, Bytes entering, int stage = 0,
       Phase phase = Phase::ReduceScatter)
    {
        return makeChunkOp(OpTag{0, chunk, stage}, phase, 0, 0,
                           entering, cfg, [this](const ChunkOp& o) {
                               finished.push_back(o.tag.chunk_id);
                               finish_at.push_back(queue.now());
                           });
    }
};

TEST(DimensionEngine, FifoRunsInArrivalOrder)
{
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Fifo,
                           AdmissionConfig{});
    engine.enqueue(h.op(0, 8.0e6));
    engine.enqueue(h.op(1, 1.0e6)); // smaller, but arrived later
    engine.enqueue(h.op(2, 4.0e6));
    h.queue.run();
    EXPECT_EQ(h.finished, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(engine.completedCount(), 3u);
}

TEST(DimensionEngine, ScfRunsShortestServiceFirst)
{
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Scf,
                           AdmissionConfig{});
    engine.enqueue(h.op(0, 8.0e6));
    engine.enqueue(h.op(1, 1.0e6));
    engine.enqueue(h.op(2, 4.0e6));
    h.queue.run();
    // Op 0 starts immediately (empty queue); then smallest first.
    EXPECT_EQ(h.finished, (std::vector<int>{0, 1, 2}));
    // With a big op queued FIRST while 0 runs, SCF picks 1 before 2:
    // verified by completion times (1 finishes before 2).
    EXPECT_LT(h.finish_at[1], h.finish_at[2]);
}

TEST(DimensionEngine, LargeOpsRunSerially)
{
    // Zero-latency ops have no headroom to hide: strictly serial.
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Fifo,
                           AdmissionConfig{});
    engine.enqueue(h.op(0, 8.0e6));
    engine.enqueue(h.op(1, 8.0e6));
    h.queue.run();
    // 7 MB wire each at 100 GB/s = 70 us; serial -> 70 and 140.
    EXPECT_NEAR(h.finish_at[0], 70.0e3, 1.0);
    EXPECT_NEAR(h.finish_at[1], 140.0e3, 1.0);
}

TEST(DimensionEngine, SmallOpsOverlapTheirLatency)
{
    Harness h;
    h.cfg = switchDim(8, 800.0, 10000.0); // 30 us fixed delay
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Fifo,
                           AdmissionConfig{});
    // 875 B wire each (~9 ns transfer) against 30 us latency: the
    // admission rule must stack them, so total time ~= one latency.
    for (int i = 0; i < 8; ++i)
        engine.enqueue(h.op(i, 1000.0));
    h.queue.run();
    ASSERT_EQ(h.finished.size(), 8u);
    EXPECT_LT(h.finish_at.back(), 2.0 * 30000.0);
}

TEST(DimensionEngine, MaxParallelCapRespected)
{
    Harness h;
    h.cfg = switchDim(8, 800.0, 10000.0);
    AdmissionConfig admission;
    admission.max_parallel_ops = 2;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Fifo,
                           admission);
    for (int i = 0; i < 6; ++i)
        engine.enqueue(h.op(i, 1000.0));
    EXPECT_LE(engine.activeCount(), 2u);
    h.queue.run();
    EXPECT_EQ(h.finished.size(), 6u);
    // Three serialized waves of two -> at least 3 latency periods.
    EXPECT_GE(h.finish_at.back(), 3.0 * 30000.0 - 1.0);
}

TEST(DimensionEngine, EnforcedOrderGatesStarts)
{
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Scf,
                           AdmissionConfig{});
    // Enforce 2 -> 0 -> 1 regardless of SCF preferences.
    engine.setEnforcedOrder(0, {OpKey{2, 0}, OpKey{0, 0}, OpKey{1, 0}});
    engine.enqueue(h.op(0, 1.0e6));
    engine.enqueue(h.op(1, 2.0e6));
    engine.enqueue(h.op(2, 8.0e6));
    h.queue.run();
    EXPECT_EQ(h.finished, (std::vector<int>{2, 0, 1}));
}

TEST(DimensionEngine, EnforcedOrderWaitsForMissingHead)
{
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Fifo,
                           AdmissionConfig{});
    engine.setEnforcedOrder(0, {OpKey{1, 0}, OpKey{0, 0}});
    engine.enqueue(h.op(0, 1.0e6)); // not the head: must wait
    h.queue.runUntil(1.0e6);
    EXPECT_EQ(engine.queuedCount(), 1u);
    EXPECT_EQ(engine.activeCount(), 0u);
    engine.enqueue(h.op(1, 1.0e6)); // the head arrives
    h.queue.run();
    EXPECT_EQ(h.finished, (std::vector<int>{1, 0}));
}

TEST(DimensionEngine, OtherCollectivesBypassEnforcedOrder)
{
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Fifo,
                           AdmissionConfig{});
    engine.setEnforcedOrder(7, {OpKey{0, 0}});
    // An op of collective 0 (no enforced order) runs freely even
    // though collective 7's head never arrives.
    engine.enqueue(h.op(3, 1.0e6));
    h.queue.run();
    EXPECT_EQ(h.finished, (std::vector<int>{3}));
}

TEST(DimensionEngine, PresenceTogglesWithWork)
{
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Fifo,
                           AdmissionConfig{});
    std::vector<bool> transitions;
    engine.setPresenceListener(
        [&](int dim, bool present, TimeNs when) {
            EXPECT_EQ(dim, 0);
            (void)when;
            transitions.push_back(present);
        });
    engine.enqueue(h.op(0, 1.0e6));
    h.queue.run();
    EXPECT_EQ(transitions, (std::vector<bool>{true, false}));
}

TEST(DimensionEngine, ListenersSeeStartAndFinish)
{
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 0, IntraDimPolicy::Fifo,
                           AdmissionConfig{});
    TimeNs started = -1.0, finished_start = -1.0;
    engine.setStartListener([&](const OpTag& tag) {
        EXPECT_EQ(tag.chunk_id, 5);
        started = h.queue.now();
    });
    engine.setFinishListener(
        [&](const ChunkOp& op, TimeNs started_at) {
            EXPECT_EQ(op.tag.chunk_id, 5);
            finished_start = started_at;
        });
    h.queue.scheduleAfter(2500.0,
                          [&] { engine.enqueue(h.op(5, 1.0e6)); });
    h.queue.run();
    EXPECT_DOUBLE_EQ(started, 2500.0);
    EXPECT_DOUBLE_EQ(finished_start, 2500.0);
}

TEST(DimensionEngine, RejectsWrongDimensionOps)
{
    Harness h;
    DimensionEngine engine(h.queue, h.cfg, 3, IntraDimPolicy::Fifo,
                           AdmissionConfig{});
    EXPECT_DEATH(engine.enqueue(h.op(0, 1.0e6)), "enqueued on dim");
}

} // namespace
} // namespace themis::runtime
