/**
 * @file
 * Hand-built workload graphs exercising every path of the training
 * loop: blocking chains, overlap barriers, ZeRO-style DP, recompute
 * accounting, fused vs per-layer gradient exchange, fully
 * model-parallel models, and the exposed-time attribution rules.
 */

#include <gtest/gtest.h>

#include "runtime/comm_runtime.hpp"
#include "topology/presets.hpp"
#include "workload/training_loop.hpp"

namespace themis::workload {
namespace {

Layer
computeLayer(const std::string& name, double flops)
{
    Layer l;
    l.name = name;
    l.fwd_flops = flops;
    l.bwd_flops = 2.0 * flops;
    return l;
}

IterationBreakdown
run(const ModelGraph& model, const Topology& topo,
    const runtime::RuntimeConfig& cfg = runtime::themisScfConfig())
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    TrainingLoop loop(comm, model);
    return loop.runIteration();
}

TEST(Scenario, PureComputeHasNoExposedComm)
{
    ModelGraph g;
    g.name = "compute-only";
    g.fused_dp_grads = false;
    for (int i = 0; i < 5; ++i)
        g.layers.push_back(computeLayer("l" + std::to_string(i),
                                        1.0e12));
    const auto it = run(g, presets::make2DSwSw());
    EXPECT_DOUBLE_EQ(it.exposed_mp, 0.0);
    EXPECT_DOUBLE_EQ(it.exposed_dp, 0.0);
    EXPECT_NEAR(it.total, it.fwd_compute + it.bwd_compute,
                1e-6 * it.total);
    // fwd : bwd = 1 : 2 by construction.
    EXPECT_NEAR(it.bwd_compute, 2.0 * it.fwd_compute,
                1e-6 * it.bwd_compute);
}

TEST(Scenario, BlockingChainExposesEveryCollective)
{
    // Every layer blocks on an MP All-Reduce in both passes; with
    // zero compute, the iteration is pure exposed-MP time.
    ModelGraph g;
    g.name = "blocking-chain";
    g.parallel = ParallelSpec::hybrid(16); // dim1 of the 2D platform
    g.fused_dp_grads = false;
    for (int i = 0; i < 4; ++i) {
        Layer l;
        l.name = "blk" + std::to_string(i);
        l.fwd_comm.push_back({CollectiveType::AllReduce, 8.0e6,
                              CommDomain::ModelParallel, true});
        l.bwd_comm.push_back({CollectiveType::AllReduce, 8.0e6,
                              CommDomain::ModelParallel, true});
        g.layers.push_back(l);
    }
    const auto it = run(g, presets::make2DSwSw());
    EXPECT_DOUBLE_EQ(it.fwd_compute, 0.0);
    EXPECT_DOUBLE_EQ(it.bwd_compute, 0.0);
    EXPECT_DOUBLE_EQ(it.exposed_dp, 0.0);
    EXPECT_NEAR(it.exposed_mp, it.total, 1e-9 * it.total);
    EXPECT_GT(it.total, 0.0);
}

TEST(Scenario, BarrierWithoutPendingCommIsFree)
{
    ModelGraph g;
    g.name = "noop-barrier";
    g.fused_dp_grads = false;
    g.layers.push_back(computeLayer("a", 1.0e12));
    Layer b = computeLayer("b", 1.0e12);
    b.wait_pending_before_fwd = true; // nothing outstanding
    g.layers.push_back(b);
    const auto it = run(g, presets::make2DSwSw());
    EXPECT_DOUBLE_EQ(it.exposed_mp, 0.0);
}

TEST(Scenario, OverlappedForwardCommHidesBehindCompute)
{
    // A tiny non-blocking World collective issued before a huge
    // compute layer: the barrier after it must not expose any time.
    ModelGraph g;
    g.name = "hidden-a2a";
    g.fused_dp_grads = false;
    Layer emb;
    emb.name = "emb";
    emb.fwd_comm.push_back({CollectiveType::AllToAll, 1.0e4,
                            CommDomain::World, false});
    g.layers.push_back(emb);
    g.layers.push_back(computeLayer("big", 1.0e14));
    Layer join = computeLayer("join", 1.0e12);
    join.wait_pending_before_fwd = true;
    g.layers.push_back(join);
    const auto it = run(g, presets::make2DSwSw());
    EXPECT_NEAR(it.exposed_mp, 0.0, 1.0);
}

TEST(Scenario, UnhiddenForwardCommExposesAtBarrier)
{
    // Same shape but the compute is negligible: the All-to-All's
    // latency surfaces as exposed MP at the barrier.
    ModelGraph g;
    g.name = "exposed-a2a";
    g.fused_dp_grads = false;
    Layer emb;
    emb.name = "emb";
    emb.fwd_comm.push_back({CollectiveType::AllToAll, 64.0e6,
                            CommDomain::World, false});
    g.layers.push_back(emb);
    Layer join = computeLayer("join", 1.0e9);
    join.wait_pending_before_fwd = true;
    g.layers.push_back(join);
    const auto it = run(g, presets::make2DSwSw());
    EXPECT_GT(it.exposed_mp, 0.0);
}

TEST(Scenario, FusedAndPerLayerGradsMoveTheSameBytes)
{
    auto make = [](bool fused) {
        ModelGraph g;
        g.name = fused ? "fused" : "bucketed";
        g.fused_dp_grads = fused;
        for (int i = 0; i < 6; ++i) {
            Layer l = computeLayer("l" + std::to_string(i), 1.0e10);
            l.dp_grad_bytes = 3.0e6;
            g.layers.push_back(l);
        }
        return g;
    };
    const auto topo = presets::make3DSwSwSwHomo();
    auto bytes_moved = [&](const ModelGraph& g) {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo,
                                  runtime::themisScfConfig());
        TrainingLoop loop(comm, g);
        loop.runIteration();
        Bytes total = 0.0;
        for (int d = 0; d < topo.numDims(); ++d) {
            comm.engine(d).channel().sync();
            total += comm.engine(d).channel().progressedBytes();
        }
        return total;
    };
    // Same gradient volume either way (chunking differs, so wire
    // volumes match only approximately through per-dim schedules).
    EXPECT_NEAR(bytes_moved(make(true)), bytes_moved(make(false)),
                0.15 * bytes_moved(make(true)));
}

TEST(Scenario, PerLayerGradsOverlapWithBackprop)
{
    // With per-layer bucketing the DP collectives hide behind the
    // remaining backward compute; fused exposes the whole exchange.
    auto make = [](bool fused) {
        ModelGraph g;
        g.name = "overlap";
        g.fused_dp_grads = fused;
        for (int i = 0; i < 8; ++i) {
            Layer l = computeLayer("l" + std::to_string(i), 2.0e13);
            l.dp_grad_bytes = 8.0e6;
            g.layers.push_back(l);
        }
        return g;
    };
    const auto topo = presets::make3DSwSwSwHomo();
    const auto fused = run(make(true), topo);
    const auto bucketed = run(make(false), topo);
    EXPECT_LT(bucketed.exposed_dp, fused.exposed_dp);
    EXPECT_LE(bucketed.total, fused.total * 1.001);
}

TEST(Scenario, ZeroStyleDpIssuesRsAndAg)
{
    ModelGraph g;
    g.name = "zero2";
    g.fused_dp_grads = false;
    Layer l = computeLayer("shard", 1.0e10);
    l.dp_grad_bytes = 16.0e6;
    l.zero_style_dp = true;
    g.layers.push_back(l);

    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make2DSwSw(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, g);
    loop.runIteration();
    ASSERT_EQ(comm.records().size(), 2u);
    EXPECT_EQ(comm.records()[0].type, CollectiveType::ReduceScatter);
    EXPECT_EQ(comm.records()[1].type, CollectiveType::AllGather);
    // AG gathers back the full parameters (result-size convention),
    // so its duration is commensurate with the reduce-scatter (they
    // overlap, sharing bandwidth, hence the loose band).
    EXPECT_NEAR(comm.records()[1].size, comm.records()[0].size, 1.0);
    EXPECT_NEAR(comm.records()[1].duration(),
                comm.records()[0].duration(),
                0.50 * comm.records()[0].duration());
}

TEST(Scenario, RecomputeElapsesInBackwardButCountsAsForward)
{
    ModelGraph g;
    g.name = "recompute";
    g.fused_dp_grads = false;
    Layer l;
    l.name = "ckpt";
    l.fwd_flops = 1.0e12;
    l.bwd_flops = 2.0e12;
    l.recompute_flops = 1.0e12;
    g.layers.push_back(l);
    const auto it = run(g, presets::make2DSwSw());
    // fwd bucket = fwd + recompute = 2e12 flops worth = bwd bucket.
    EXPECT_NEAR(it.fwd_compute, it.bwd_compute, 1e-6 * it.bwd_compute);
    EXPECT_NEAR(it.total, it.fwd_compute + it.bwd_compute,
                1e-6 * it.total);
}

TEST(Scenario, FullyModelParallelWorkloadHasNoDpTraffic)
{
    ModelGraph g;
    g.name = "all-mp";
    g.parallel = ParallelSpec::hybrid(1024); // the whole machine
    g.fused_dp_grads = false;
    Layer l = computeLayer("mp", 1.0e10);
    l.fwd_comm.push_back({CollectiveType::AllReduce, 4.0e6,
                          CommDomain::ModelParallel, true});
    l.dp_grad_bytes = 8.0e6; // must be silently droppable: no DP comm
    g.layers.push_back(l);
    const auto it = run(g, presets::make2DSwSw());
    EXPECT_GT(it.exposed_mp, 0.0);
    EXPECT_DOUBLE_EQ(it.exposed_dp, 0.0);
}

TEST(Scenario, TailAttributionSplitsDpAndMp)
{
    // Both a big DP exchange and a bigger non-blocking MP exchange
    // are outstanding at compute end: instants with DP pending count
    // as DP, the pure-MP remainder as MP.
    ModelGraph g;
    g.name = "tails";
    g.parallel = ParallelSpec::hybrid(16);
    g.fused_dp_grads = false;
    Layer l = computeLayer("l", 1.0e9);
    l.dp_grad_bytes = 8.0e6;
    l.bwd_comm.push_back({CollectiveType::AllReduce, 256.0e6,
                          CommDomain::ModelParallel, false});
    g.layers.push_back(l);
    const auto it = run(g, presets::make2DSwSw());
    EXPECT_GT(it.exposed_dp, 0.0);
    EXPECT_GT(it.exposed_mp, 0.0);
    EXPECT_NEAR(it.bucketSum(), it.total, 1e-6 * it.total);
}

TEST(Scenario, SchedulerChoiceNeverBreaksAccounting)
{
    for (const auto& cfg : {runtime::baselineConfig(),
                           runtime::themisFifoConfig(),
                           runtime::themisScfConfig()}) {
        ModelGraph g;
        g.name = "acct";
        Layer l = computeLayer("l", 5.0e12);
        l.dp_grad_bytes = 48.0e6;
        g.layers.push_back(l);
        const auto it = run(g, presets::make4DRingFcRingSw(), cfg);
        EXPECT_NEAR(it.bucketSum(), it.total, 1e-6 * it.total);
        EXPECT_GT(it.exposed_dp, 0.0);
    }
}

} // namespace
} // namespace themis::workload
