/**
 * @file
 * Unit tests for src/common: units, error macros, strings, RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/small_vector.hpp"
#include "common/string_util.hpp"
#include "common/units.hpp"

namespace themis {
namespace {

TEST(Units, GbpsConversionRoundTrips)
{
    EXPECT_DOUBLE_EQ(gbpsToBw(800.0), 100.0); // 800 Gb/s == 100 GB/s
    EXPECT_DOUBLE_EQ(bwToGbps(gbpsToBw(1234.5)), 1234.5);
}

TEST(Units, BandwidthUnitsAreBytesPerNanosecond)
{
    // 100 GB/s moves 100 bytes per nanosecond.
    const Bandwidth bw = gbpsToBw(800.0);
    const TimeNs t = 1.0e6; // 1 ms
    EXPECT_DOUBLE_EQ(bw * t, 100.0e6); // 100 MB in a millisecond
}

TEST(Units, TimeHelpers)
{
    EXPECT_DOUBLE_EQ(nsToUs(1500.0), 1.5);
    EXPECT_DOUBLE_EQ(nsToMs(2.5e6), 2.5);
    EXPECT_DOUBLE_EQ(kSec, 1.0e9);
}

TEST(Units, AlmostEqualTolerances)
{
    EXPECT_TRUE(almostEqual(1.0, 1.0));
    EXPECT_TRUE(almostEqual(1.0e12, 1.0e12 + 1.0));
    EXPECT_FALSE(almostEqual(1.0e12, 1.1e12));
    EXPECT_TRUE(almostEqual(0.0, 1.0e-9));
}

TEST(Error, FatalThrowsConfigError)
{
    EXPECT_THROW(THEMIS_FATAL("bad config " << 42), ConfigError);
}

TEST(Error, FatalMessageContainsPayload)
{
    try {
        THEMIS_FATAL("value was " << 7);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

TEST(Error, AssertPassesOnTrue)
{
    THEMIS_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(Error, AssertAbortsOnFalse)
{
    EXPECT_DEATH(THEMIS_ASSERT(false, "expected failure"),
                 "assertion");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, JoinInvertsSplit)
{
    EXPECT_EQ(join({"x", "y", "z"}, "-"), "x-y-z");
    EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, FmtBytesPicksScale)
{
    EXPECT_EQ(fmtBytes(512.0), "512 B");
    EXPECT_EQ(fmtBytes(2.5e6), "2.50 MB");
    EXPECT_EQ(fmtBytes(1.0e9), "1.00 GB");
}

TEST(Strings, FmtTimePicksScale)
{
    EXPECT_EQ(fmtTime(500.0), "500.0 ns");
    EXPECT_EQ(fmtTime(1.5e3), "1.5 us");
    EXPECT_EQ(fmtTime(2.0e6), "2.000 ms");
}

TEST(Strings, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.9514), "95.1%");
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("Themis-SCF"), "themis-scf");
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(99);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Logging, LevelFilters)
{
    const LogLevel prev = Logger::level();
    Logger::setLevel(LogLevel::Error);
    EXPECT_EQ(Logger::level(), LogLevel::Error);
    logInfo("should be suppressed");
    Logger::setLevel(prev);
}

TEST(SmallVector, StaysInlineUpToCapacity)
{
    SmallVector<int, 4> v;
    for (int i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_TRUE(v.inlined());
    EXPECT_EQ(v.size(), 4u);
    v.pop_back();
    v.clear();
    EXPECT_TRUE(v.inlined());
    EXPECT_TRUE(v.empty());
}

TEST(SmallVector, SpillsAndPreservesContents)
{
    SmallVector<int, 4> v;
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    EXPECT_FALSE(v.inlined());
    EXPECT_EQ(v.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(v.front(), 0);
    EXPECT_EQ(v.back(), 99);
}

TEST(SmallVector, PushBackOfOwnElementSurvivesGrowth)
{
    // push_back(v[0]) at exactly capacity must copy the element out
    // before the growth frees the old buffer.
    SmallVector<int, 4> v;
    for (int i = 0; i < 8; ++i)
        v.push_back(i + 1); // spilled, capacity 8, full
    v.push_back(v.front()); // triggers heap-to-heap growth
    EXPECT_EQ(v.back(), 1);
    v.push_back(v[5]);
    EXPECT_EQ(v.back(), 6);
}

TEST(SmallVector, WorksWithStdHeapAlgorithms)
{
    // The shared channels run std::push_heap/pop_heap over it.
    SmallVector<double, 8> v;
    for (int i = 0; i < 30; ++i) {
        v.push_back(static_cast<double>((i * 37) % 23));
        std::push_heap(v.begin(), v.end(), std::greater<double>{});
    }
    double prev = -1.0;
    while (!v.empty()) {
        std::pop_heap(v.begin(), v.end(), std::greater<double>{});
        const double top = v.back();
        v.pop_back();
        EXPECT_GE(top, prev);
        prev = top;
    }
}

TEST(Arena, RecyclesNodesWithoutNewSlabs)
{
    NodeArena arena;
    std::set<int, std::less<int>, ArenaAllocator<int>> s{
        std::less<int>{}, ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 1000; ++i)
        s.insert(i);
    const std::size_t slabs = arena.slabCount();
    EXPECT_GE(slabs, 1u);
    // Churn: erase and re-insert repeatedly; freed nodes must be
    // recycled, never re-carved from fresh slabs.
    for (int round = 0; round < 10; ++round) {
        s.clear();
        for (int i = 0; i < 1000; ++i)
            s.insert(i * round);
    }
    EXPECT_EQ(arena.slabCount(), slabs);
}

TEST(Arena, LargeBlocksFallBackToOperatorNew)
{
    NodeArena arena;
    void* p = arena.allocate(100000); // > kMaxBlock
    ASSERT_NE(p, nullptr);
    arena.deallocate(p, 100000);
    EXPECT_EQ(arena.slabCount(), 0u);
}

} // namespace
} // namespace themis
