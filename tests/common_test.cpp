/**
 * @file
 * Unit tests for src/common: units, error macros, strings, RNG.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/string_util.hpp"
#include "common/units.hpp"

namespace themis {
namespace {

TEST(Units, GbpsConversionRoundTrips)
{
    EXPECT_DOUBLE_EQ(gbpsToBw(800.0), 100.0); // 800 Gb/s == 100 GB/s
    EXPECT_DOUBLE_EQ(bwToGbps(gbpsToBw(1234.5)), 1234.5);
}

TEST(Units, BandwidthUnitsAreBytesPerNanosecond)
{
    // 100 GB/s moves 100 bytes per nanosecond.
    const Bandwidth bw = gbpsToBw(800.0);
    const TimeNs t = 1.0e6; // 1 ms
    EXPECT_DOUBLE_EQ(bw * t, 100.0e6); // 100 MB in a millisecond
}

TEST(Units, TimeHelpers)
{
    EXPECT_DOUBLE_EQ(nsToUs(1500.0), 1.5);
    EXPECT_DOUBLE_EQ(nsToMs(2.5e6), 2.5);
    EXPECT_DOUBLE_EQ(kSec, 1.0e9);
}

TEST(Units, AlmostEqualTolerances)
{
    EXPECT_TRUE(almostEqual(1.0, 1.0));
    EXPECT_TRUE(almostEqual(1.0e12, 1.0e12 + 1.0));
    EXPECT_FALSE(almostEqual(1.0e12, 1.1e12));
    EXPECT_TRUE(almostEqual(0.0, 1.0e-9));
}

TEST(Error, FatalThrowsConfigError)
{
    EXPECT_THROW(THEMIS_FATAL("bad config " << 42), ConfigError);
}

TEST(Error, FatalMessageContainsPayload)
{
    try {
        THEMIS_FATAL("value was " << 7);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

TEST(Error, AssertPassesOnTrue)
{
    THEMIS_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(Error, AssertAbortsOnFalse)
{
    EXPECT_DEATH(THEMIS_ASSERT(false, "expected failure"),
                 "assertion");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, JoinInvertsSplit)
{
    EXPECT_EQ(join({"x", "y", "z"}, "-"), "x-y-z");
    EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, FmtBytesPicksScale)
{
    EXPECT_EQ(fmtBytes(512.0), "512 B");
    EXPECT_EQ(fmtBytes(2.5e6), "2.50 MB");
    EXPECT_EQ(fmtBytes(1.0e9), "1.00 GB");
}

TEST(Strings, FmtTimePicksScale)
{
    EXPECT_EQ(fmtTime(500.0), "500.0 ns");
    EXPECT_EQ(fmtTime(1.5e3), "1.5 us");
    EXPECT_EQ(fmtTime(2.0e6), "2.000 ms");
}

TEST(Strings, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.9514), "95.1%");
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("Themis-SCF"), "themis-scf");
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(99);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Logging, LevelFilters)
{
    const LogLevel prev = Logger::level();
    Logger::setLevel(LogLevel::Error);
    EXPECT_EQ(Logger::level(), LogLevel::Error);
    logInfo("should be suppressed");
    Logger::setLevel(prev);
}

} // namespace
} // namespace themis
