/**
 * @file
 * Tests of the intra-dimension ordering policies (paper Sec 4.3).
 */

#include <gtest/gtest.h>

#include "core/intra_dim_policy.hpp"

namespace themis {
namespace {

QueuedOpView
view(std::uint64_t seq, TimeNs service, int chunk = 0)
{
    return QueuedOpView{seq, service, chunk};
}

TEST(IntraPolicy, FifoPicksOldestArrival)
{
    const std::vector<QueuedOpView> q{view(5, 1.0), view(2, 100.0),
                                      view(9, 0.5)};
    EXPECT_EQ(pickNextOp(IntraDimPolicy::Fifo, q), 1u);
}

TEST(IntraPolicy, ScfPicksSmallestServiceTime)
{
    const std::vector<QueuedOpView> q{view(1, 64.0e6), view(2, 4.0e6),
                                      view(3, 16.0e6)};
    EXPECT_EQ(pickNextOp(IntraDimPolicy::Scf, q), 1u);
}

TEST(IntraPolicy, ScfTieBreaksByArrival)
{
    const std::vector<QueuedOpView> q{view(7, 4.0e6), view(3, 4.0e6)};
    EXPECT_EQ(pickNextOp(IntraDimPolicy::Scf, q), 1u);
}

TEST(IntraPolicy, ScfFinalTieBreakByChunkId)
{
    const std::vector<QueuedOpView> q{view(3, 4.0e6, 9),
                                      view(3, 4.0e6, 2)};
    EXPECT_EQ(pickNextOp(IntraDimPolicy::Scf, q), 1u);
}

TEST(IntraPolicy, SingleElementQueue)
{
    const std::vector<QueuedOpView> q{view(42, 1.0)};
    EXPECT_EQ(pickNextOp(IntraDimPolicy::Fifo, q), 0u);
    EXPECT_EQ(pickNextOp(IntraDimPolicy::Scf, q), 0u);
}

TEST(IntraPolicy, EmptyQueuePanics)
{
    EXPECT_DEATH(pickNextOp(IntraDimPolicy::Fifo, {}), "empty");
}

TEST(IntraPolicy, Names)
{
    EXPECT_EQ(intraDimPolicyName(IntraDimPolicy::Fifo), "FIFO");
    EXPECT_EQ(intraDimPolicyName(IntraDimPolicy::Scf), "SCF");
}

} // namespace
} // namespace themis
