/**
 * @file
 * Tests of the Table 1 basic collective algorithms: step counts,
 * wire-volume conservation, per-step shapes, fixed delays.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "collective/algorithms.hpp"
#include "collective/cost_model.hpp"
#include "common/error.hpp"

namespace themis {
namespace {

DimensionConfig
makeDim(DimKind kind, int size, double gbps = 800.0, int links = 1,
        TimeNs lat = 700.0)
{
    DimensionConfig d;
    d.kind = kind;
    d.size = size;
    d.link_bw_gbps = gbps;
    d.links_per_npu = links;
    d.step_latency_ns = lat;
    return d;
}

Bytes
planBytes(const std::vector<StepPlan>& plan)
{
    Bytes total = 0.0;
    for (const auto& s : plan)
        total += s.bytes;
    return total;
}

TEST(Ring, StepCountIsPeersMinusOne)
{
    const auto d = makeDim(DimKind::Ring, 16, 200.0, 4);
    const auto& alg = algorithmFor(DimKind::Ring);
    EXPECT_EQ(alg.numSteps(Phase::ReduceScatter, d), 15);
    EXPECT_EQ(alg.numSteps(Phase::AllGather, d), 15);
}

TEST(Direct, OneStepWithFullClique)
{
    const auto d = makeDim(DimKind::FullyConnected, 8, 200.0, 7);
    EXPECT_EQ(algorithmFor(DimKind::FullyConnected)
                  .numSteps(Phase::ReduceScatter, d),
              1);
}

TEST(Direct, SerializesWithFewerLinks)
{
    const auto d = makeDim(DimKind::FullyConnected, 8, 200.0, 3);
    // 7 peers over 3 links -> 3 rounds.
    EXPECT_EQ(algorithmFor(DimKind::FullyConnected)
                  .numSteps(Phase::AllGather, d),
              3);
}

TEST(HalvingDoubling, LogSteps)
{
    const auto d = makeDim(DimKind::Switch, 64, 800.0, 1);
    EXPECT_EQ(algorithmFor(DimKind::Switch)
                  .numSteps(Phase::ReduceScatter, d),
              6);
}

TEST(HalvingDoubling, RsStepSizesHalve)
{
    const auto d = makeDim(DimKind::Switch, 8);
    const auto plan = algorithmFor(DimKind::Switch)
                          .plan(Phase::ReduceScatter, 8.0e6, d);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_DOUBLE_EQ(plan[0].bytes, 4.0e6);
    EXPECT_DOUBLE_EQ(plan[1].bytes, 2.0e6);
    EXPECT_DOUBLE_EQ(plan[2].bytes, 1.0e6);
}

TEST(HalvingDoubling, AgStepSizesDouble)
{
    const auto d = makeDim(DimKind::Switch, 8);
    const auto plan =
        algorithmFor(DimKind::Switch).plan(Phase::AllGather, 1.0e6, d);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_DOUBLE_EQ(plan[0].bytes, 1.0e6);
    EXPECT_DOUBLE_EQ(plan[1].bytes, 2.0e6);
    EXPECT_DOUBLE_EQ(plan[2].bytes, 4.0e6);
}

struct AlgCase
{
    DimKind kind;
    int size;
    int links;
};

class WireVolume
    : public ::testing::TestWithParam<std::tuple<AlgCase, Phase>>
{};

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, WireVolume,
    ::testing::Combine(
        ::testing::Values(AlgCase{DimKind::Ring, 4, 2},
                          AlgCase{DimKind::Ring, 16, 4},
                          AlgCase{DimKind::FullyConnected, 8, 7},
                          AlgCase{DimKind::FullyConnected, 8, 3},
                          AlgCase{DimKind::Switch, 8, 1},
                          AlgCase{DimKind::Switch, 64, 1}),
        ::testing::Values(Phase::ReduceScatter, Phase::AllGather,
                          Phase::AllToAll)));

TEST_P(WireVolume, PlanBytesMatchWireBytes)
{
    const auto& [c, phase] = GetParam();
    const auto d = makeDim(c.kind, c.size, 400.0, c.links);
    const Bytes entering = 48.0e6;
    const auto plan = algorithmFor(c.kind).plan(phase, entering, d);
    EXPECT_EQ(static_cast<int>(plan.size()),
              algorithmFor(c.kind).numSteps(phase, d));
    EXPECT_NEAR(planBytes(plan), wireBytes(phase, entering, c.size),
                1.0);
    for (const auto& s : plan) {
        EXPECT_DOUBLE_EQ(s.latency, d.step_latency_ns);
        EXPECT_GT(s.bytes, 0.0);
    }
}

TEST(CostModel, FixedDelayIsStepsTimesLatency)
{
    const auto d = makeDim(DimKind::Ring, 16, 200.0, 4, 700.0);
    EXPECT_DOUBLE_EQ(phaseFixedDelay(Phase::ReduceScatter, d),
                     15.0 * 700.0);
    // Ring All-Reduce takes 2P-2 steps (paper Sec 4.4).
    EXPECT_DOUBLE_EQ(typeFixedDelay(CollectiveType::AllReduce, d),
                     30.0 * 700.0);
}

TEST(CostModel, OpTimeIsFixedDelayPlusSerialization)
{
    const auto d = makeDim(DimKind::Switch, 8, 800.0, 1, 1000.0);
    // RS of 8MB on P=8 at 100 GB/s: wire 7MB -> 70 us; 3 steps of
    // 1 us latency.
    EXPECT_NEAR(chunkOpTime(Phase::ReduceScatter, 8.0e6, d),
                70.0e3 + 3.0e3, 1.0);
    EXPECT_NEAR(chunkTransferTime(Phase::ReduceScatter, 8.0e6, d),
                70.0e3, 1.0);
}

TEST(CostModel, Fig5NormalizedLatencies)
{
    // The Fig 5 example: 64MB RS on dim1 is the unit; dim2 has half
    // the bandwidth, so the 16MB RS on dim2 takes 0.5 units.
    const auto d1 = makeDim(DimKind::Switch, 4, 384.0, 1, 0.0);
    const auto d2 = makeDim(DimKind::Switch, 4, 192.0, 1, 0.0);
    const TimeNs unit = chunkOpTime(Phase::ReduceScatter, 64.0e6, d1);
    EXPECT_NEAR(chunkOpTime(Phase::ReduceScatter, 16.0e6, d2),
                0.5 * unit, unit * 1e-9);
    EXPECT_NEAR(chunkOpTime(Phase::AllGather, 4.0e6, d2), 0.5 * unit,
                unit * 1e-9);
    EXPECT_NEAR(chunkOpTime(Phase::AllGather, 16.0e6, d1), unit,
                unit * 1e-9);
}


TEST(InNetworkOffload, TwoStepsRegardlessOfSize)
{
    auto d = makeDim(DimKind::Switch, 64, 800.0, 1, 1700.0);
    d.in_network_offload = true;
    const auto& alg = algorithmFor(d);
    EXPECT_EQ(alg.name(), "InNetworkOffload");
    EXPECT_EQ(alg.numSteps(Phase::ReduceScatter, d), 2);
    EXPECT_DOUBLE_EQ(phaseFixedDelay(Phase::ReduceScatter, d),
                     2.0 * 1700.0);
}

TEST(InNetworkOffload, EgressVolumeIsResidentData)
{
    auto d = makeDim(DimKind::Switch, 8, 800.0, 1, 0.0);
    d.in_network_offload = true;
    const auto& alg = algorithmFor(d);
    // RS streams the resident chunk up once.
    EXPECT_NEAR(planBytes(alg.plan(Phase::ReduceScatter, 8.0e6, d)),
                8.0e6, 1.0);
    // AG streams the shard up once (multicast inside the fabric).
    EXPECT_NEAR(planBytes(alg.plan(Phase::AllGather, 1.0e6, d)),
                1.0e6, 1.0);
}

TEST(InNetworkOffload, AllReduceTrafficHalves)
{
    // Sec 4.5: offload reduces n_K. Full AR on one dimension: HD
    // moves 2*s*(P-1)/P, offload moves s*(1 + 1/P).
    auto d = makeDim(DimKind::Switch, 8, 800.0, 1, 0.0);
    const Bytes s = 64.0e6;
    const Bytes hd = planBytes(algorithmFor(d).plan(
                         Phase::ReduceScatter, s, d)) +
                     planBytes(algorithmFor(d).plan(
                         Phase::AllGather, s / 8.0, d));
    d.in_network_offload = true;
    const Bytes off = planBytes(algorithmFor(d).plan(
                          Phase::ReduceScatter, s, d)) +
                      planBytes(algorithmFor(d).plan(
                          Phase::AllGather, s / 8.0, d));
    EXPECT_LT(off, hd * 0.65);
}

TEST(InNetworkOffload, AllowsNonPowerOfTwoSwitch)
{
    auto d = makeDim(DimKind::Switch, 6, 800.0, 1, 700.0);
    EXPECT_THROW(d.validate(), ConfigError);
    d.in_network_offload = true;
    d.validate();
    SUCCEED();
}

TEST(InNetworkOffload, RejectedOnNonSwitch)
{
    auto d = makeDim(DimKind::Ring, 4, 800.0, 2, 20.0);
    d.in_network_offload = true;
    EXPECT_THROW(d.validate(), ConfigError);
}

} // namespace
} // namespace themis
