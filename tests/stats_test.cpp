/**
 * @file
 * Unit tests for the statistics layer: activity timelines (Fig 9
 * machinery), utilization windows (Fig 4 definition), CSV output and
 * text tables.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/activity_timeline.hpp"
#include "stats/csv_writer.hpp"
#include "stats/summary.hpp"
#include "stats/trace_writer.hpp"
#include "stats/utilization_tracker.hpp"

namespace themis::stats {
namespace {

TEST(ActivityTimeline, RecordsIntervals)
{
    ActivityTimeline tl(2);
    tl.onPresence(0, true, 100.0);
    tl.onPresence(0, false, 300.0);
    tl.onPresence(1, true, 200.0);
    tl.finalize(500.0);
    ASSERT_EQ(tl.intervals(0).size(), 1u);
    EXPECT_DOUBLE_EQ(tl.intervals(0)[0].first, 100.0);
    EXPECT_DOUBLE_EQ(tl.intervals(0)[0].second, 300.0);
    // Open interval closed at finalize time.
    ASSERT_EQ(tl.intervals(1).size(), 1u);
    EXPECT_DOUBLE_EQ(tl.intervals(1)[0].second, 500.0);
    EXPECT_DOUBLE_EQ(tl.busyTime(0), 200.0);
    EXPECT_DOUBLE_EQ(tl.busyTime(1), 300.0);
}

TEST(ActivityTimeline, DuplicateNotificationsIgnored)
{
    ActivityTimeline tl(1);
    tl.onPresence(0, true, 10.0);
    tl.onPresence(0, true, 20.0);
    tl.onPresence(0, false, 30.0);
    tl.onPresence(0, false, 40.0);
    tl.finalize(50.0);
    ASSERT_EQ(tl.intervals(0).size(), 1u);
    EXPECT_DOUBLE_EQ(tl.busyTime(0), 20.0);
}

TEST(ActivityTimeline, ProfileBucketization)
{
    ActivityTimeline tl(1);
    tl.onPresence(0, true, 0.0);
    tl.onPresence(0, false, 150.0);
    tl.finalize(400.0);
    const auto p = tl.profile(100.0, 400.0);
    ASSERT_EQ(p.rate.size(), 1u);
    ASSERT_EQ(p.rate[0].size(), 4u);
    EXPECT_DOUBLE_EQ(p.rate[0][0], 1.0);
    EXPECT_DOUBLE_EQ(p.rate[0][1], 0.5);
    EXPECT_DOUBLE_EQ(p.rate[0][2], 0.0);
    EXPECT_DOUBLE_EQ(p.rate[0][3], 0.0);
}

TEST(ActivityTimeline, ProfileHandlesIntervalSpanningManyBuckets)
{
    ActivityTimeline tl(1);
    tl.onPresence(0, true, 50.0);
    tl.onPresence(0, false, 350.0);
    tl.finalize(400.0);
    const auto p = tl.profile(100.0, 400.0);
    EXPECT_DOUBLE_EQ(p.rate[0][0], 0.5);
    EXPECT_DOUBLE_EQ(p.rate[0][1], 1.0);
    EXPECT_DOUBLE_EQ(p.rate[0][2], 1.0);
    EXPECT_DOUBLE_EQ(p.rate[0][3], 0.5);
}

TEST(UtilizationTracker, WindowedBytes)
{
    sim::EventQueue queue;
    sim::SharedChannel ch(queue, 100.0);
    UtilizationTracker tracker({&ch}, {100.0});

    tracker.windowStart(queue.now());
    ch.begin(1.0e6, [] {});
    queue.run(); // 10 us
    tracker.windowEnd(queue.now());

    EXPECT_DOUBLE_EQ(tracker.activeTime(), 1.0e4);
    EXPECT_NEAR(tracker.windowBytes()[0], 1.0e6, 1.0);
    EXPECT_NEAR(tracker.weightedUtilization(), 1.0, 1e-9);
}

TEST(UtilizationTracker, BytesOutsideWindowsExcluded)
{
    sim::EventQueue queue;
    sim::SharedChannel ch(queue, 100.0);
    UtilizationTracker tracker({&ch}, {100.0});

    ch.begin(1.0e6, [] {}); // outside any window
    queue.run();

    tracker.windowStart(queue.now());
    queue.runUntil(queue.now() + 1.0e4); // idle window
    tracker.windowEnd(queue.now());

    EXPECT_NEAR(tracker.windowBytes()[0], 0.0, 1.0);
    EXPECT_NEAR(tracker.weightedUtilization(), 0.0, 1e-9);
}

TEST(UtilizationTracker, WeightsByBandwidth)
{
    sim::EventQueue queue;
    sim::SharedChannel fast(queue, 300.0);
    sim::SharedChannel slow(queue, 100.0);
    UtilizationTracker tracker({&fast, &slow}, {300.0, 100.0});
    tracker.windowStart(0.0);
    fast.begin(3.0e6, [] {}); // 10 us at full rate
    queue.run();
    tracker.windowEnd(queue.now());
    // fast: 100% for 10 us; slow: 0%. Weighted: 300/400 = 75%.
    EXPECT_NEAR(tracker.weightedUtilization(), 0.75, 1e-9);
    const auto per_dim = tracker.perDimUtilization();
    EXPECT_NEAR(per_dim[0], 1.0, 1e-9);
    EXPECT_NEAR(per_dim[1], 0.0, 1e-9);
}

TEST(UtilizationTracker, MismatchedWindowsPanics)
{
    sim::EventQueue queue;
    sim::SharedChannel ch(queue, 1.0);
    UtilizationTracker tracker({&ch}, {1.0});
    EXPECT_DEATH(tracker.windowEnd(0.0), "no window");
    tracker.windowStart(0.0);
    EXPECT_DEATH(tracker.windowStart(1.0), "already open");
}

TEST(CsvWriter, WritesAndEscapes)
{
    const std::string path = "/tmp/themis_csv_test.csv";
    {
        CsvWriter csv(path);
        csv.writeRow({"a", "b,c", "d\"e"});
        csv.writeRow({"1", "2", "3"});
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
    EXPECT_EQ(line2, "1,2,3");
    std::remove(path.c_str());
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}


TEST(TraceWriter, EmitsTraceEventJson)
{
    TraceWriter trace;
    trace.record(0, "RS c0.s0", 1000.0, 3000.0);
    trace.record(1, "AG \"odd\" name", 2000.0, 2500.0);
    EXPECT_EQ(trace.eventCount(), 2u);
    const std::string json = trace.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"RS c0.s0\""), std::string::npos);
    EXPECT_NE(json.find("\\\"odd\\\""), std::string::npos);
    // Timestamps in microseconds.
    EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
}

TEST(TraceWriter, RejectsNegativeDuration)
{
    TraceWriter trace;
    EXPECT_DEATH(trace.record(0, "bad", 10.0, 5.0), "ends before");
}

TEST(TraceWriter, WritesFile)
{
    const std::string path = "/tmp/themis_trace_test.json";
    TraceWriter trace;
    trace.record(0, "op", 0.0, 1000.0);
    trace.writeFile(path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("traceEvents"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace themis::stats
