/**
 * @file
 * Fault-aware adaptive re-planning and per-link failure domain tests:
 * the link@ timeline grammar, link-index validation against the
 * topology, partial-capacity semantics of single-link outages (with
 * byte conservation), fault-free bit-identity with adaptation armed,
 * deterministic re-planning under capacity loss, adaptive-vs-static
 * makespans, seeded retry jitter, and retry exhaustion surfacing as a
 * structured failure.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/themis_scheduler.hpp"
#include "models/model_zoo.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/fault_timeline.hpp"
#include "stats/summary.hpp"
#include "topology/presets.hpp"
#include "workload/convergence.hpp"
#include "workload/training_loop.hpp"

namespace themis {
namespace {

using sim::FaultKind;
using sim::FaultTimeline;

// ------------------------------------------------- link@ grammar

TEST(LinkTimeline, ParsesLinkEvents)
{
    const auto tl = FaultTimeline::parse("link@1e4+5e4:dim=0,index=2");
    ASSERT_EQ(tl.eventCount(), 2u);
    const auto& ev = tl.events();
    EXPECT_EQ(ev[0].kind, FaultKind::LinkDown);
    EXPECT_EQ(ev[1].kind, FaultKind::LinkUp);
    EXPECT_DOUBLE_EQ(ev[0].at, 1.0e4);
    EXPECT_DOUBLE_EQ(ev[1].at, 6.0e4);
    EXPECT_EQ(ev[0].link, 2);
    EXPECT_EQ(ev[1].link, 2);
    EXPECT_EQ(ev[0].pair, ev[1].pair);
    // The up edge carries the nominal down window for accounting.
    EXPECT_DOUBLE_EQ(ev[1].factor, 5.0e4);
}

TEST(LinkTimeline, RejectsBadLinkSpecs)
{
    EXPECT_THROW(FaultTimeline::parse("link@1e4+5e4:dim=0"),
                 ConfigError); // missing index
    EXPECT_THROW(FaultTimeline::parse("link@1e4:dim=0,index=1"),
                 ConfigError); // missing down window
    EXPECT_THROW(
        FaultTimeline::parse("link@1e4+5e4:dim=0,index=-1"),
        ConfigError); // negative index
    EXPECT_THROW(
        FaultTimeline::parse("link@1e4+5e4:dim=0,index=1,factor=0.5"),
        ConfigError); // link events take no factor
    EXPECT_THROW(FaultTimeline::parse("flap@1e4+5e4:dim=0,index=1"),
                 ConfigError); // only link events take an index
}

TEST(LinkTimeline, LinkIndexValidatedAgainstTopology)
{
    // 2D-SW_SW: dim0 has 6 links per NPU, dim1 has 1.
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;

    FaultTimeline bad;
    bad.addLinkFlap(1, 1, 1.0e4, 1.0e3); // dim1 only has link 0
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &bad;
    EXPECT_THROW(runtime::CommRuntime(q, topo, cfg), ConfigError);

    FaultTimeline ok;
    ok.addLinkFlap(0, 5, 1.0e4, 1.0e3); // dim0's last link
    cfg.faults = &ok;
    EXPECT_NO_THROW(runtime::CommRuntime(q, topo, cfg));
}

// ------------------------------------------- runtime behavior

/** One AllReduce on a fresh runtime; keeps the runtime alive for
 *  post-run inspection. */
struct CollectiveRun
{
    std::unique_ptr<sim::EventQueue> queue;
    std::unique_ptr<runtime::CommRuntime> comm;
    TimeNs duration = 0.0;
};

CollectiveRun
runOneCollective(const Topology& topo,
                 const runtime::RuntimeConfig& cfg, Bytes size = 1.0e8,
                 int chunks = 8)
{
    CollectiveRun run;
    run.queue = std::make_unique<sim::EventQueue>();
    run.comm =
        std::make_unique<runtime::CommRuntime>(*run.queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = size;
    req.chunks = chunks;
    const int id = run.comm->issue(req);
    run.queue->run();
    run.comm->finalizeStats();
    run.duration = run.comm->record(id).duration();
    return run;
}

TEST(LinkFaults, SingleLinkOutageConservesBytesAndAccounts)
{
    const Topology topo = presets::byName("2D-SW_SW");
    const auto clean =
        runOneCollective(topo, runtime::themisScfConfig());

    FaultTimeline tl;
    const TimeNs down = 4.0e4;
    tl.addLinkFlap(0, 3, 2.0e4, down); // one of dim0's 6 links
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    const auto faulted = runOneCollective(topo, cfg);
    auto& comm = *faulted.comm;

    // The outage failed in-flight transfers (retried), and the dim
    // kept running on the surviving 5/6 capacity — the re-sent bytes
    // cost dim0 time, though the makespan only moves if dim0 was the
    // critical path.
    EXPECT_GT(comm.engine(0).retryCount(), 0u);
    EXPECT_GT(comm.engine(0).lostBytes(), 0.0);
    EXPECT_GE(faulted.duration, clean.duration);
    const auto& ut = comm.utilization();
    EXPECT_EQ(ut.flaps()[0], 1u);
    EXPECT_DOUBLE_EQ(ut.downTime()[0], down);
    EXPECT_EQ(ut.retries()[0], comm.engine(0).retryCount());

    // Conservation: wire bytes = useful schedule bytes + re-sent.
    for (int d = 0; d < topo.numDims(); ++d) {
        auto& clean_ch = clean.comm->engine(d).channel();
        auto& fault_ch = faulted.comm->engine(d).channel();
        clean_ch.sync();
        fault_ch.sync();
        const Bytes want = clean_ch.progressedBytes() +
                           comm.engine(d).lostBytes();
        EXPECT_NEAR(fault_ch.progressedBytes(), want,
                    1.0 + 1e-6 * want)
            << "dim " << d;
    }
}

TEST(LinkFaults, FullLinkOutageHoldsLikeAWholeDimFlap)
{
    // Taking down every link of a dim via per-link events must hold
    // the dimension (no zero-capacity division), then recover.
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    for (int l = 0; l < 6; ++l)
        tl.addLinkFlap(0, l, 2.0e4, 4.0e4);
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    const auto faulted = runOneCollective(topo, cfg);
    const auto clean =
        runOneCollective(topo, runtime::themisScfConfig());
    EXPECT_GT(faulted.duration, clean.duration);
    for (int d = 0; d < topo.numDims(); ++d) {
        auto& clean_ch = clean.comm->engine(d).channel();
        auto& fault_ch = faulted.comm->engine(d).channel();
        clean_ch.sync();
        fault_ch.sync();
        const Bytes want = clean_ch.progressedBytes() +
                           faulted.comm->engine(d).lostBytes();
        EXPECT_NEAR(fault_ch.progressedBytes(), want,
                    1.0 + 1e-6 * want)
            << "dim " << d;
    }
}

// -------------------------------------- adaptive re-planning

struct TrainRun
{
    workload::ConvergenceReport report;
    std::uint64_t replans = 0;
    std::uint64_t capacity_fp = 0;
};

TrainRun
runDlrm(const Topology& topo, const FaultTimeline* tl, bool adapt,
        int iterations, bool replay = true)
{
    auto cfg = runtime::themisScfConfig();
    cfg.faults = tl;
    cfg.adaptation.enabled = adapt;
    sim::EventQueue q;
    runtime::CommRuntime comm(q, topo, cfg);
    workload::TrainingLoop loop(comm, models::byName("DLRM"));
    workload::ConvergenceOptions opts;
    opts.iterations = iterations;
    opts.replay = replay;
    TrainRun r;
    r.report = workload::runConverged(comm, loop, opts);
    r.replans = comm.replanCount();
    r.capacity_fp = comm.capacityFingerprint();
    return r;
}

TEST(Adaptation, FaultFreeBitIdenticalWithAdaptationArmed)
{
    // Arming the adaptation layer must cost nothing when no fault
    // fires: the capacity epoch stays 0 and every result bit matches
    // the static engine's.
    const Topology topo = presets::byName("2D-SW_SW");
    const FaultTimeline empty;
    const auto plain = runDlrm(topo, nullptr, false, 8);
    const auto armed = runDlrm(topo, &empty, true, 8);
    EXPECT_TRUE(
        workload::resultsBitIdentical(plain.report, armed.report));
    EXPECT_EQ(armed.replans, 0u);
    EXPECT_EQ(armed.capacity_fp, 0u);
}

TEST(Adaptation, ReplanEngagesDeterministicallyUnderStraggler)
{
    // A permanent straggler mid-iteration-0 triggers exactly one
    // re-plan; the whole adaptive run is deterministic and the
    // phase-aware replay engine still matches full simulation.
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    tl.addStraggler(0, 5.0e4, 0.25);
    const auto a = runDlrm(topo, &tl, true, 8);
    const auto b = runDlrm(topo, &tl, true, 8);
    EXPECT_GT(a.replans, 0u);
    EXPECT_NE(a.capacity_fp, 0u);
    EXPECT_EQ(a.replans, b.replans);
    EXPECT_EQ(a.capacity_fp, b.capacity_fp);
    EXPECT_TRUE(workload::resultsBitIdentical(a.report, b.report));

    const auto full = runDlrm(topo, &tl, true, 8, /*replay=*/false);
    EXPECT_TRUE(workload::resultsBitIdentical(a.report, full.report));
}

TEST(Adaptation, AdaptivePlanBeatsStaleStaticPlan)
{
    // Under a permanent 4x one-dim straggler the degraded-model plan
    // shifts load off the slow dimension; the static plan keeps
    // feeding it as if it were healthy.
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    tl.addStraggler(0, 0.0, 0.25);

    auto static_cfg = runtime::themisScfConfig();
    static_cfg.faults = &tl;
    const auto stale = runOneCollective(topo, static_cfg);

    auto adapt_cfg = runtime::themisScfConfig();
    adapt_cfg.faults = &tl;
    adapt_cfg.adaptation.enabled = true;
    const auto adaptive = runOneCollective(topo, adapt_cfg);

    EXPECT_GT(adaptive.comm->replanCount(), 0u);
    EXPECT_LT(adaptive.duration, stale.duration);
}

// ------------------------------------------------ retry jitter

TEST(RetryJitter, FaultFreeRunsIgnoreJitter)
{
    // Jitter only touches retry backoff; with no retries the timing
    // must stay bit-identical whatever the spread.
    const Topology topo = presets::byName("2D-SW_SW");
    const auto plain =
        runOneCollective(topo, runtime::themisScfConfig());
    auto cfg = runtime::themisScfConfig();
    cfg.retry.jitter = 0.9;
    const auto jittered = runOneCollective(topo, cfg);
    EXPECT_DOUBLE_EQ(jittered.duration, plain.duration);
}

TEST(RetryJitter, JitteredRetriesAreSeededAndConserve)
{
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    tl.addLinkFlap(0, 1, 2.0e4, 4.0e4);

    auto run = [&](double jitter, std::uint64_t seed) {
        auto cfg = runtime::themisScfConfig();
        cfg.faults = &tl;
        cfg.retry.jitter = jitter;
        cfg.retry.jitter_seed = seed;
        return runOneCollective(topo, cfg);
    };
    const auto a = run(0.5, 7);
    const auto b = run(0.5, 7);
    EXPECT_GT(a.comm->engine(0).retryCount(), 0u);
    EXPECT_DOUBLE_EQ(a.duration, b.duration); // same seed, same run

    // jitter=0 reproduces the unjittered engine bit for bit
    // (whatever the seed — the hash is never consulted).
    const auto z1 = run(0.0, 7);
    const auto z2 = run(0.0, 12345);
    EXPECT_DOUBLE_EQ(z1.duration, z2.duration);

    // Conservation holds under jittered retries.
    const auto clean =
        runOneCollective(topo, runtime::themisScfConfig());
    for (int d = 0; d < topo.numDims(); ++d) {
        auto& clean_ch = clean.comm->engine(d).channel();
        auto& ch = a.comm->engine(d).channel();
        clean_ch.sync();
        ch.sync();
        const Bytes want = clean_ch.progressedBytes() +
                           a.comm->engine(d).lostBytes();
        EXPECT_NEAR(ch.progressedBytes(), want, 1.0 + 1e-6 * want)
            << "dim " << d;
    }

    auto bad = runtime::themisScfConfig();
    bad.faults = &tl;
    bad.retry.jitter = 1.0; // spread must stay in [0, 1)
    sim::EventQueue q;
    EXPECT_THROW(runtime::CommRuntime(q, topo, bad), ConfigError);
}

// ------------------------------------------- retry exhaustion

TEST(RetryExhaustion, SurfacesStructuredFatalReport)
{
    // Repeated single-link outages with a 1-attempt budget: each
    // down edge fails the active transfer, the engine rotates in the
    // next pending op, and once every dim0 op has burned its single
    // attempt the next failure is fatal. The error must carry a
    // structured report and the per-dim counters must record the
    // fatality.
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    for (int k = 0; k < 8; ++k)
        tl.addLinkFlap(0, k % 2, 1.0e4 + 2.0e3 * k, 1.0e3);
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    cfg.retry.max_attempts = 1;
    cfg.retry.backoff_base_ns = 1.0e3;

    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e8;
    req.chunks = 4;
    comm.issue(req);
    try {
        queue.run();
        FAIL() << "expected RetryExhaustedError";
    } catch (const runtime::RetryExhaustedError& e) {
        EXPECT_EQ(e.report().dim, 0);
        EXPECT_EQ(e.report().attempts, 2);
        EXPECT_GT(e.report().lost_bytes, 0.0);
        const std::string msg = e.what();
        EXPECT_NE(msg.find("retry"), std::string::npos) << msg;
    }
    ASSERT_NE(comm.fatalRetry(), nullptr);
    EXPECT_EQ(comm.fatalRetry()->dim, 0);
    EXPECT_GE(comm.utilization().fatalRetries()[0], 1u);
    EXPECT_EQ(comm.utilization().fatalRetries()[1], 0u);
}

TEST(RetryExhaustion, FatalColumnRendersInFaultTable)
{
    std::vector<stats::FaultDimRow> rows;
    rows.push_back({"dim0 (SW)", 2, 3, 1.5e4, 9, 2.0e6, 4});
    rows.push_back({"dim1 (SW)", 0, 0, 0.0, 0, 0.0, 0});
    const std::string out = stats::renderFaultTable(rows);
    EXPECT_NE(out.find("Fatal"), std::string::npos);
    EXPECT_NE(out.find('4'), std::string::npos);
}

} // namespace
} // namespace themis
