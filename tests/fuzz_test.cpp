/**
 * @file
 * Randomized property tests over the whole stack. A seeded RNG builds
 * arbitrary (valid) topologies and collective requests; the suite
 * checks invariants that must hold for *every* input:
 *
 *  - every collective completes and the event queue drains;
 *  - byte conservation: the bytes each dimension's channel moved equal
 *    the scheduler's predicted wire volumes exactly;
 *  - utilization stays within [0, 1] per dimension and overall;
 *  - Themis never schedules a non-permutation, and its makespan never
 *    loses badly to baseline;
 *  - shadow-enforced ordering reproduces free-running timing;
 *  - the data plane reduces/gathers correctly for random machines and
 *    random stage orders;
 *  - mixed-period cluster mixes replay steady cycles bit-identically
 *    to full simulation on random platforms.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/cluster.hpp"
#include "collective/dataplane/dataplane_collectives.hpp"
#include "common/random.hpp"
#include "core/themis_scheduler.hpp"
#include "models/model_zoo.hpp"
#include "npu/npu_machine.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/fault_timeline.hpp"

namespace themis {
namespace {

/** Random valid dimension. */
DimensionConfig
randomDim(Rng& rng)
{
    DimensionConfig d;
    switch (rng.uniformInt(0, 2)) {
      case 0:
        d.kind = DimKind::Ring;
        d.size = static_cast<int>(rng.uniformInt(2, 12));
        d.links_per_npu = static_cast<int>(rng.uniformInt(1, 2));
        break;
      case 1:
        d.kind = DimKind::FullyConnected;
        d.size = static_cast<int>(rng.uniformInt(2, 9));
        d.links_per_npu =
            static_cast<int>(rng.uniformInt(1, d.size - 1));
        break;
      default:
        d.kind = DimKind::Switch;
        d.size = 1 << rng.uniformInt(1, 5);
        d.links_per_npu = 1;
        d.in_network_offload = rng.coin(0.25);
        break;
    }
    d.link_bw_gbps = rng.uniformReal(25.0, 1600.0);
    d.step_latency_ns = rng.uniformReal(0.0, 2000.0);
    return d;
}

Topology
randomTopology(Rng& rng)
{
    const int dims = static_cast<int>(rng.uniformInt(1, 4));
    std::vector<DimensionConfig> cfg;
    for (int i = 0; i < dims; ++i)
        cfg.push_back(randomDim(rng));
    return Topology("fuzz", std::move(cfg));
}

CollectiveRequest
randomRequest(Rng& rng)
{
    CollectiveRequest req;
    switch (rng.uniformInt(0, 3)) {
      case 0: req.type = CollectiveType::AllReduce; break;
      case 1: req.type = CollectiveType::ReduceScatter; break;
      case 2: req.type = CollectiveType::AllGather; break;
      default: req.type = CollectiveType::AllToAll; break;
    }
    req.size = rng.uniformReal(1.0e5, 2.0e9);
    req.chunks = static_cast<int>(rng.uniformInt(1, 128));
    return req;
}

class RuntimeFuzz : public ::testing::TestWithParam<int>
{};

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeFuzz, ::testing::Range(1, 26));

TEST_P(RuntimeFuzz, CollectiveCompletesAndConservesBytes)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Topology topo = randomTopology(rng);
    const CollectiveRequest req = randomRequest(rng);

    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo,
                              runtime::themisScfConfig());
    const int id = comm.issue(req);
    queue.run();
    comm.finalizeStats();
    ASSERT_TRUE(comm.record(id).done());
    EXPECT_GT(comm.record(id).duration(), 0.0);

    // Predicted wire volume per dimension, from the scheduler's own
    // stage-load algebra (loads are times; multiply back by BW).
    const auto& model = comm.modelForScope({});
    ThemisScheduler reference(model);
    const auto schedules = reference.scheduleCollective(
        req.type,
        schedulableSize(req.type, req.size, model.dimSizes()),
        req.chunks);
    std::vector<Bytes> expected(
        static_cast<std::size_t>(topo.numDims()), 0.0);
    for (const auto& sched : schedules) {
        const auto loads = model.stageLoads(sched.size, sched.stages);
        for (int d = 0; d < topo.numDims(); ++d) {
            expected[static_cast<std::size_t>(d)] +=
                loads[static_cast<std::size_t>(d)] *
                topo.dim(d).bandwidth();
        }
    }
    for (int d = 0; d < topo.numDims(); ++d) {
        auto& ch = comm.engine(d).channel();
        ch.sync();
        EXPECT_NEAR(ch.progressedBytes(),
                    expected[static_cast<std::size_t>(d)],
                    1.0 + 1e-6 * expected[static_cast<std::size_t>(d)])
            << "dim " << d << " on " << topo.describe();
    }
}

TEST_P(RuntimeFuzz, UtilizationStaysPhysical)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
    const Topology topo = randomTopology(rng);
    const CollectiveRequest req = randomRequest(rng);

    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo,
                              runtime::themisScfConfig());
    comm.issue(req);
    queue.run();
    comm.finalizeStats();
    const double util = comm.utilization().weightedUtilization();
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9) << topo.describe();
    for (double u : comm.utilization().perDimUtilization())
        EXPECT_LE(u, 1.0 + 1e-9) << topo.describe();
}

TEST_P(RuntimeFuzz, ThemisNeverLosesBadlyToBaseline)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
    const Topology topo = randomTopology(rng);
    CollectiveRequest req = randomRequest(rng);
    req.type = CollectiveType::AllReduce; // the scheduled pattern

    auto run = [&](const runtime::RuntimeConfig& cfg) {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, cfg);
        const int id = comm.issue(req);
        queue.run();
        return comm.record(id).duration();
    };
    const TimeNs base = run(runtime::baselineConfig());
    const TimeNs scf = run(runtime::themisScfConfig());
    // Robustness requirement: even on adversarial random platforms
    // the threshold must keep Themis within a modest factor.
    EXPECT_LE(scf, base * 1.35) << topo.describe();
}

TEST_P(RuntimeFuzz, ShadowEnforcementMatchesPolicy)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
    const Topology topo = randomTopology(rng);
    const CollectiveRequest req = randomRequest(rng);

    auto run = [&](bool enforce) {
        auto cfg = runtime::themisScfConfig();
        cfg.enforce_consistent_order = enforce;
        cfg.order_planner = runtime::OrderPlanner::ShadowSim;
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, cfg);
        const int id = comm.issue(req);
        queue.run();
        return comm.record(id).duration();
    };
    const TimeNs policy = run(false);
    const TimeNs enforced = run(true);
    EXPECT_NEAR(policy, enforced, 1e-9 * policy) << topo.describe();
}

TEST_P(RuntimeFuzz, SchedulesAreValidPermutations)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
    const Topology topo = randomTopology(rng);
    const auto model = LatencyModel::fromTopology(topo);
    ThemisScheduler sched(model);
    const CollectiveRequest req = randomRequest(rng);
    const auto out =
        sched.scheduleCollective(req.type, req.size, req.chunks);
    ASSERT_EQ(static_cast<int>(out.size()), req.chunks);
    for (const auto& c : out) {
        EXPECT_EQ(c.stages.size(),
                  static_cast<std::size_t>(stagesForType(
                      req.type, topo.numDims())));
        // Each pass visits every dimension exactly once.
        std::vector<int> rs, ag;
        for (const auto& st : c.stages) {
            if (st.phase == Phase::AllGather)
                ag.push_back(st.dim);
            else
                rs.push_back(st.dim);
        }
        for (auto* pass : {&rs, &ag}) {
            if (pass->empty())
                continue;
            std::sort(pass->begin(), pass->end());
            for (std::size_t i = 0; i < pass->size(); ++i)
                EXPECT_EQ((*pass)[i], static_cast<int>(i));
        }
    }
}


class FaultFuzz : public ::testing::TestWithParam<int>
{};

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range(300, 318));

TEST_P(FaultFuzz, RandomFaultTimelinesConserveBytesAndDrain)
{
    // Random topology + collective + fault timeline (degrades,
    // stragglers, flaps in arbitrary interleavings). Invariants:
    // the run drains with no stuck transfers, and each dimension's
    // wire bytes equal the scheduled volume plus the bytes failed
    // attempts moved before their flap (exact conservation).
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Topology topo = randomTopology(rng);
    const CollectiveRequest req = randomRequest(rng);

    sim::FaultTimeline faults;
    const int events = static_cast<int>(rng.uniformInt(1, 6));
    for (int e = 0; e < events; ++e) {
        const int dim =
            static_cast<int>(rng.uniformInt(0, topo.numDims() - 1));
        const TimeNs at = rng.uniformReal(0.0, 5.0e6);
        switch (rng.uniformInt(0, 2)) {
          case 0:
            faults.addDegrade(dim, at, rng.uniformReal(1.0e4, 2.0e6),
                              rng.uniformReal(0.05, 0.95));
            break;
          case 1:
            faults.addStraggler(dim, at, rng.uniformReal(0.3, 0.9));
            break;
          default:
            faults.addFlap(dim, at, rng.uniformReal(1.0e3, 1.0e6));
            break;
        }
    }

    auto cfg = runtime::themisScfConfig();
    cfg.faults = &faults;
    cfg.retry.max_attempts = 100;
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    const int id = comm.issue(req);
    queue.run();
    comm.finalizeStats();
    ASSERT_TRUE(comm.record(id).done())
        << topo.describe() << "\n" << faults.describe();
    EXPECT_TRUE(queue.empty());

    const auto& model = comm.modelForScope({});
    ThemisScheduler reference(model);
    const auto schedules = reference.scheduleCollective(
        req.type,
        schedulableSize(req.type, req.size, model.dimSizes()),
        req.chunks);
    std::vector<Bytes> expected(
        static_cast<std::size_t>(topo.numDims()), 0.0);
    for (const auto& sched : schedules) {
        const auto loads = model.stageLoads(sched.size, sched.stages);
        for (int d = 0; d < topo.numDims(); ++d) {
            expected[static_cast<std::size_t>(d)] +=
                loads[static_cast<std::size_t>(d)] *
                topo.dim(d).bandwidth();
        }
    }
    for (int d = 0; d < topo.numDims(); ++d) {
        auto& ch = comm.engine(d).channel();
        ch.sync();
        const Bytes want = expected[static_cast<std::size_t>(d)] +
                           comm.engine(d).lostBytes();
        EXPECT_NEAR(ch.progressedBytes(), want, 1.0 + 1e-6 * want)
            << "dim " << d << " (" << comm.engine(d).retryCount()
            << " retries) on " << topo.describe() << "\n"
            << faults.describe();
    }
}

class AdaptationFuzz : public ::testing::TestWithParam<int>
{};

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptationFuzz,
                         ::testing::Range(500, 512));

TEST_P(AdaptationFuzz, LinkFaultsWithAdaptationConserveAndRepeat)
{
    // Random topology + collective + fault timelines that mix
    // per-link outages with capacity events, with adaptive
    // re-planning armed on even seeds and off on odd ones.
    // Invariants: the run drains, the result is reproducible, and
    // wire bytes equal the (clean-planned) schedule volume plus
    // re-sent bytes. Events start at >= 1e3 ns so the collective
    // plans against the clean model at t=0 — which pins the
    // scheduled volume whether or not adaptation later re-plans
    // (re-plans only affect collectives issued afterwards).
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Topology topo = randomTopology(rng);
    const CollectiveRequest req = randomRequest(rng);

    sim::FaultTimeline faults;
    const int events = static_cast<int>(rng.uniformInt(1, 5));
    for (int e = 0; e < events; ++e) {
        const int dim =
            static_cast<int>(rng.uniformInt(0, topo.numDims() - 1));
        const TimeNs at = rng.uniformReal(1.0e3, 5.0e6);
        switch (rng.uniformInt(0, 2)) {
          case 0: {
            const int link = static_cast<int>(rng.uniformInt(
                0, topo.dim(dim).links_per_npu - 1));
            faults.addLinkFlap(dim, link, at,
                               rng.uniformReal(1.0e3, 5.0e5));
            break;
          }
          case 1:
            faults.addDegrade(dim, at, rng.uniformReal(1.0e4, 2.0e6),
                              rng.uniformReal(0.05, 0.95));
            break;
          default:
            faults.addStraggler(dim, at, rng.uniformReal(0.3, 0.9));
            break;
        }
    }

    auto cfg = runtime::themisScfConfig();
    cfg.faults = &faults;
    cfg.retry.max_attempts = 100;
    cfg.adaptation.enabled = GetParam() % 2 == 0;

    auto run = [&]() {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, cfg);
        const int id = comm.issue(req);
        queue.run();
        comm.finalizeStats();
        EXPECT_TRUE(comm.record(id).done())
            << topo.describe() << "\n" << faults.describe();
        EXPECT_TRUE(queue.empty());
        std::vector<Bytes> wire, lost;
        for (int d = 0; d < topo.numDims(); ++d) {
            auto& ch = comm.engine(d).channel();
            ch.sync();
            wire.push_back(ch.progressedBytes());
            lost.push_back(comm.engine(d).lostBytes());
        }
        return std::make_pair(wire, lost);
    };
    const auto [wire, lost] = run();
    const auto [wire2, lost2] = run();
    for (int d = 0; d < topo.numDims(); ++d) {
        const auto i = static_cast<std::size_t>(d);
        EXPECT_DOUBLE_EQ(wire[i], wire2[i]) << "dim " << d;
        EXPECT_DOUBLE_EQ(lost[i], lost2[i]) << "dim " << d;
    }

    // Conservation against the clean plan (a post-event re-plan
    // would change comm.modelForScope, so rebuild the reference
    // from the topology directly).
    const auto model = LatencyModel::fromTopology(topo);
    ThemisScheduler reference(model);
    const auto schedules = reference.scheduleCollective(
        req.type,
        schedulableSize(req.type, req.size, model.dimSizes()),
        req.chunks);
    std::vector<Bytes> expected(
        static_cast<std::size_t>(topo.numDims()), 0.0);
    for (const auto& sched : schedules) {
        const auto loads = model.stageLoads(sched.size, sched.stages);
        for (int d = 0; d < topo.numDims(); ++d) {
            expected[static_cast<std::size_t>(d)] +=
                loads[static_cast<std::size_t>(d)] *
                topo.dim(d).bandwidth();
        }
    }
    for (int d = 0; d < topo.numDims(); ++d) {
        const auto i = static_cast<std::size_t>(d);
        const Bytes want = expected[i] + lost[i];
        EXPECT_NEAR(wire[i], want, 1.0 + 1e-6 * want)
            << "dim " << d << " on " << topo.describe() << "\n"
            << faults.describe();
    }
}

class ClusterMixFuzz : public ::testing::TestWithParam<int>
{};

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterMixFuzz,
                         ::testing::Range(400, 411));

TEST_P(ClusterMixFuzz, MixedPeriodReplayBitIdenticalToFullSim)
{
    // Random small platform + training job + 1-2 open-ended periodic
    // tenants with commensurate periods (base x small ints): the
    // period-k lockstep engine must produce results bit-identical to
    // full simulation whether or not a steady cycle was confirmed
    // and replayed.
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Topology topo = randomTopology(rng);
    while (topo.totalNpus() > 512)
        topo = randomTopology(rng);

    const int rounds = static_cast<int>(rng.uniformInt(10, 24));
    // Integer base so period multiples share it as an exact gcd.
    const TimeNs base = std::floor(1.0e5 * rng.uniformReal(0.5, 2.0));
    std::vector<cluster::JobSpec> specs;
    specs.push_back(cluster::JobSpec::training(
        models::byName("DLRM"), rounds));
    const int streams = static_cast<int>(rng.uniformInt(1, 2));
    for (int s = 0; s < streams; ++s) {
        const double mult =
            static_cast<double>(rng.uniformInt(1, 4));
        specs.push_back(cluster::JobSpec::periodicInference(
            rng.uniformReal(1.0e6, 4.0e7), base * mult));
    }
    const auto plan = cluster::JobScheduler(specs).lockstepPlan();
    ASSERT_TRUE(plan.eligible) << plan.reason;

    auto run = [&](bool replay) {
        sim::EventQueue q;
        cluster::Cluster cl(q, topo, runtime::themisScfConfig(),
                            specs);
        workload::ConvergenceOptions opts;
        opts.iterations = rounds;
        opts.replay = replay;
        return cl.runConverged(opts);
    };
    const auto fast = run(true);
    const auto full = run(false);
    EXPECT_EQ(full.epochs_replayed, 0);
    EXPECT_EQ(fast.epochs_simulated + fast.epochs_replayed, rounds);
    EXPECT_TRUE(workload::resultsBitIdentical(fast, full))
        << topo.describe() << " rounds " << rounds << " hyper "
        << plan.hyper_period;
}

class BackendEquivalenceFuzz : public ::testing::TestWithParam<int>
{};

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalenceFuzz,
                         ::testing::Range(200, 212));

TEST_P(BackendEquivalenceFuzz, PerNpuMatchesFrontendOnRandomPlatforms)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    // Random platform, capped to <= 256 NPUs for the per-NPU run.
    Topology topo = randomTopology(rng);
    while (topo.totalNpus() > 256)
        topo = randomTopology(rng);
    const Bytes size = rng.uniformReal(1.0e6, 2.0e8);
    const int chunks = static_cast<int>(rng.uniformInt(2, 32));

    const auto model = LatencyModel::fromTopology(topo);
    ThemisScheduler sched(model);
    const auto schedules = sched.scheduleCollective(
        CollectiveType::AllReduce, size, chunks);

    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo,
                              runtime::themisScfConfig());
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = size;
    req.chunks = chunks;
    const int id = comm.issue(req);
    queue.run();
    const TimeNs frontend = comm.record(id).duration();

    const auto per_npu = npu::simulatePerNpu(
        topo, CollectiveType::AllReduce, schedules);
    ASSERT_TRUE(per_npu.completed) << topo.describe();
    EXPECT_NEAR(per_npu.makespan, frontend, 1e-6 * frontend)
        << topo.describe();
}

class DataPlaneFuzz : public ::testing::TestWithParam<int>
{};

INSTANTIATE_TEST_SUITE_P(Seeds, DataPlaneFuzz,
                         ::testing::Range(100, 116));

TEST_P(DataPlaneFuzz, RandomMachinesAllReduceCorrectly)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    // Random small machine (<= 64 NPUs).
    const int dims = static_cast<int>(rng.uniformInt(1, 3));
    std::vector<int> sizes;
    std::vector<DimKind> kinds;
    int total = 1;
    for (int d = 0; d < dims; ++d) {
        int size = 0;
        DimKind kind = DimKind::Ring;
        switch (rng.uniformInt(0, 2)) {
          case 0:
            kind = DimKind::Ring;
            size = static_cast<int>(rng.uniformInt(2, 5));
            break;
          case 1:
            kind = DimKind::FullyConnected;
            size = static_cast<int>(rng.uniformInt(2, 5));
            break;
          default:
            kind = DimKind::Switch;
            size = 1 << rng.uniformInt(1, 2);
            break;
        }
        sizes.push_back(size);
        kinds.push_back(kind);
        total *= size;
    }
    if (total > 64)
        GTEST_SKIP() << "machine too large for this seed";

    LogicalMachine machine(sizes);
    // Random RS and AG orders (independent, per Observation 1).
    std::vector<int> rs(static_cast<std::size_t>(dims));
    std::iota(rs.begin(), rs.end(), 0);
    std::vector<int> ag = rs;
    rng.shuffle(rs);
    rng.shuffle(ag);

    const auto seed_fn = [&](int npu, std::int64_t off) {
        return static_cast<DataValue>(npu) * 7919 + off * 13 + 1;
    };
    DataPlane dp(machine, kinds, machine.numNpus() * 4);
    dp.initFullReplicas(seed_fn);
    dp.runAllReduce(rs, ag);
    EXPECT_TRUE(dp.verifyAllReduced(seed_fn))
        << "machine " << total << " NPUs, seed " << GetParam();
}

} // namespace
} // namespace themis
