/**
 * @file
 * Cross-module integration tests: single-collective microbenchmark
 * properties over the full Table 2 platform suite — the qualitative
 * claims of paper Sec 6.1 must hold in the simulator.
 */

#include <gtest/gtest.h>

#include "core/ideal_estimator.hpp"
#include "runtime/comm_runtime.hpp"
#include "topology/presets.hpp"
#include "topology/provisioning.hpp"

namespace themis {
namespace {

struct RunResult
{
    TimeNs time = 0.0;
    double util = 0.0;
};

RunResult
runAllReduce(const Topology& topo, const runtime::RuntimeConfig& cfg,
             Bytes size, int chunks = 64)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = size;
    req.chunks = chunks;
    const int id = comm.issue(req);
    queue.run();
    comm.finalizeStats();
    return RunResult{comm.record(id).duration(),
                     comm.utilization().weightedUtilization()};
}

class AllPresets : public ::testing::TestWithParam<std::string>
{
  protected:
    Topology topo_ = presets::byName(GetParam());
};

INSTANTIATE_TEST_SUITE_P(
    Table2, AllPresets,
    ::testing::Values("2D-SW_SW", "3D-SW_SW_SW_homo",
                      "3D-SW_SW_SW_hetero", "3D-FC_Ring_SW",
                      "4D-Ring_SW_SW_SW", "4D-Ring_FC_Ring_SW"),
    [](const auto& inf) {
        std::string n = inf.param;
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST_P(AllPresets, ThemisScfBeatsBaselineOnLargeAllReduce)
{
    const auto base =
        runAllReduce(topo_, runtime::baselineConfig(), 1.0e9);
    const auto scf =
        runAllReduce(topo_, runtime::themisScfConfig(), 1.0e9);
    EXPECT_LT(scf.time, base.time);
    EXPECT_GT(scf.util, base.util);
}

TEST_P(AllPresets, ThemisScfAtLeastAsGoodAsFifo)
{
    const auto fifo =
        runAllReduce(topo_, runtime::themisFifoConfig(), 1.0e9);
    const auto scf =
        runAllReduce(topo_, runtime::themisScfConfig(), 1.0e9);
    EXPECT_LE(scf.time, fifo.time * 1.05);
}

TEST_P(AllPresets, ThemisScfUtilizationHigh)
{
    // Paper Sec 6.1: Themis+SCF averages 95.14% BW utilization on the
    // 100MB-1GB range; allow per-topology slack.
    const auto scf =
        runAllReduce(topo_, runtime::themisScfConfig(), 1.0e9);
    EXPECT_GT(scf.util, 0.80) << topo_.name();
    EXPECT_LE(scf.util, 1.0 + 1e-9);
}

TEST_P(AllPresets, BaselineUtilizationTracksClosedForm)
{
    // The steady-state analysis (Sec 3.3) predicts baseline
    // utilization in the bandwidth-bound limit; the simulated value
    // for a 1 GB collective must be close.
    const auto base =
        runAllReduce(topo_, runtime::baselineConfig(), 1.0e9);
    const auto predicted = analyzeBaseline(topo_).weighted_utilization;
    EXPECT_NEAR(base.util, predicted, 0.08) << topo_.name();
}

TEST_P(AllPresets, ShadowSimEnforcementMatchesPolicyExactly)
{
    // A shadow-simulated order replays the engines' own behaviour, so
    // enforcing it must not change the timing of a lone collective.
    auto cfg = runtime::themisScfConfig();
    const auto policy = runAllReduce(topo_, cfg, 2.0e8);
    cfg.enforce_consistent_order = true;
    cfg.order_planner = runtime::OrderPlanner::ShadowSim;
    const auto enforced = runAllReduce(topo_, cfg, 2.0e8);
    EXPECT_NEAR(enforced.time, policy.time, 1e-6 * policy.time)
        << topo_.name();
}

TEST_P(AllPresets, FastSerialEnforcementStaysCompetitive)
{
    // The paper's fast pre-simulation ignores parallel admission
    // ("does not need to consider detailed network modeling"); its
    // enforced order may cost some head-of-line blocking but must
    // remain within a modest factor of the free-running policy.
    auto cfg = runtime::themisScfConfig();
    const auto policy = runAllReduce(topo_, cfg, 2.0e8);
    cfg.enforce_consistent_order = true;
    cfg.order_planner = runtime::OrderPlanner::FastSerial;
    const auto enforced = runAllReduce(topo_, cfg, 2.0e8);
    EXPECT_LE(enforced.time, policy.time * 1.75) << topo_.name();
    EXPECT_GE(enforced.time, policy.time * 0.70) << topo_.name();
}

TEST_P(AllPresets, LargerCollectivesRaiseUtilization)
{
    const auto small =
        runAllReduce(topo_, runtime::themisScfConfig(), 1.0e8);
    const auto large =
        runAllReduce(topo_, runtime::themisScfConfig(), 1.0e9);
    EXPECT_GE(large.util, small.util - 0.05) << topo_.name();
}

TEST_P(AllPresets, RsAndAgAreHalfAnAllReduce)
{
    const auto ar =
        runAllReduce(topo_, runtime::themisScfConfig(), 1.0e9);
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo_,
                              runtime::themisScfConfig());
    CollectiveRequest rs;
    rs.type = CollectiveType::ReduceScatter;
    rs.size = 1.0e9;
    rs.chunks = 64;
    const int id = comm.issue(rs);
    queue.run();
    const TimeNs rs_time = comm.record(id).duration();
    EXPECT_NEAR(rs_time, ar.time / 2.0, 0.25 * rs_time)
        << topo_.name();
}

TEST(Integration, CurrentPlatformBaselineIsAlreadyEfficient)
{
    // Sec 3.2: the current 2D platform reaches ~97.7% utilization
    // with baseline scheduling; Themis cannot add much there.
    const auto topo = presets::makeCurrent2D();
    const auto base =
        runAllReduce(topo, runtime::baselineConfig(), 1.0e9);
    EXPECT_GT(base.util, 0.93);
    const auto scf =
        runAllReduce(topo, runtime::themisScfConfig(), 1.0e9);
    EXPECT_LT(base.time / scf.time, 1.08);
}

TEST(Integration, HomoTopologySeesLargestGain)
{
    // 3D-SW_SW_SW_homo has the worst baseline utilization (~35%) and
    // thus the biggest Themis speedup (paper: up to 2.7x).
    const auto topo = presets::make3DSwSwSwHomo();
    const auto base =
        runAllReduce(topo, runtime::baselineConfig(), 1.0e9);
    const auto scf =
        runAllReduce(topo, runtime::themisScfConfig(), 1.0e9);
    const double speedup = base.time / scf.time;
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 3.0);
}

TEST(Integration, MoreChunksHelpThemisNotBaseline)
{
    // Fig 10's qualitative content.
    const auto topo = presets::make3DSwSwSwHetero();
    const auto base4 =
        runAllReduce(topo, runtime::baselineConfig(), 1.0e8, 4);
    const auto base256 =
        runAllReduce(topo, runtime::baselineConfig(), 1.0e8, 256);
    EXPECT_NEAR(base4.util, base256.util, 0.10);

    const auto scf4 =
        runAllReduce(topo, runtime::themisScfConfig(), 1.0e8, 4);
    const auto scf256 =
        runAllReduce(topo, runtime::themisScfConfig(), 1.0e8, 256);
    EXPECT_GT(scf256.util, scf4.util + 0.15);
}

TEST(Integration, IdealNeverLosesToSimulationByMuch)
{
    // Ideal pools all bandwidth; simulated Themis time with latency
    // can't beat it by more than the (P-1)/P volume discount.
    for (const auto& topo : presets::nextGenTopologies()) {
        const auto model = LatencyModel::fromTopology(topo);
        const TimeNs ideal = idealCollectiveTime(
            CollectiveType::AllReduce, 1.0e9, model);
        const auto scf =
            runAllReduce(topo, runtime::themisScfConfig(), 1.0e9);
        EXPECT_GT(scf.time, 0.8 * ideal) << topo.name();
    }
}

} // namespace
} // namespace themis
