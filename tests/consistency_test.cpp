/**
 * @file
 * Tests of the schedule-consistency pre-simulation (paper Sec 4.6):
 * the planner's per-dimension orders cover every chunk operation
 * exactly once, are deterministic, and are deadlock-free together
 * with the chunks' stage orders.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/baseline_scheduler.hpp"
#include "core/consistency_planner.hpp"
#include "core/themis_scheduler.hpp"
#include "topology/presets.hpp"

namespace themis {
namespace {

std::vector<ChunkSchedule>
themisSchedules(const LatencyModel& model, Bytes size, int chunks)
{
    ThemisScheduler sched(model);
    return sched.scheduleCollective(CollectiveType::AllReduce, size,
                                    chunks);
}

TEST(ConsistencyPlanner, CoversEveryOpExactlyOnce)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHetero());
    const auto schedules = themisSchedules(model, 1.0e9, 16);
    ConsistencyPlanner planner(model, IntraDimPolicy::Scf);
    const auto plan = planner.plan(schedules);
    ASSERT_EQ(plan.order.size(), 3u);

    std::map<std::pair<int, int>, int> seen;
    std::size_t total = 0;
    for (int d = 0; d < 3; ++d) {
        for (const auto& op : plan.order[static_cast<std::size_t>(d)]) {
            ++seen[{op.chunk_id, op.stage_index}];
            ++total;
            // The op's stage must actually target this dimension.
            const auto& sched =
                schedules[static_cast<std::size_t>(op.chunk_id)];
            EXPECT_EQ(sched.stages[static_cast<std::size_t>(
                                       op.stage_index)]
                          .dim,
                      d);
        }
    }
    EXPECT_EQ(total, 16u * 6u); // 16 chunks x 2D stages (D=3)
    for (const auto& [key, count] : seen)
        EXPECT_EQ(count, 1);
}

TEST(ConsistencyPlanner, DeterministicAcrossCalls)
{
    const auto model =
        LatencyModel::fromTopology(presets::make4DRingFcRingSw());
    const auto schedules = themisSchedules(model, 0.5e9, 32);
    ConsistencyPlanner planner(model, IntraDimPolicy::Scf);
    const auto a = planner.plan(schedules);
    const auto b = planner.plan(schedules);
    ASSERT_EQ(a.order.size(), b.order.size());
    for (std::size_t d = 0; d < a.order.size(); ++d) {
        ASSERT_EQ(a.order[d].size(), b.order[d].size());
        for (std::size_t i = 0; i < a.order[d].size(); ++i)
            EXPECT_TRUE(a.order[d][i] == b.order[d][i]);
    }
    EXPECT_DOUBLE_EQ(a.estimated_makespan, b.estimated_makespan);
}

TEST(ConsistencyPlanner, PlansAreDeadlockFree)
{
    for (const auto& topo : presets::nextGenTopologies()) {
        const auto model = LatencyModel::fromTopology(topo);
        const auto schedules = themisSchedules(model, 1.0e8, 16);
        for (auto policy :
             {IntraDimPolicy::Fifo, IntraDimPolicy::Scf}) {
            ConsistencyPlanner planner(model, policy);
            const auto plan = planner.plan(schedules);
            EXPECT_TRUE(planIsDeadlockFree(schedules, plan))
                << topo.name() << " / " << intraDimPolicyName(policy);
        }
    }
}

TEST(ConsistencyPlanner, MakespanPositiveAndPolicySensitive)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    const auto schedules = themisSchedules(model, 1.0e9, 64);
    ConsistencyPlanner fifo(model, IntraDimPolicy::Fifo);
    ConsistencyPlanner scf(model, IntraDimPolicy::Scf);
    const auto pf = fifo.plan(schedules);
    const auto ps = scf.plan(schedules);
    EXPECT_GT(pf.estimated_makespan, 0.0);
    EXPECT_GT(ps.estimated_makespan, 0.0);
    // SCF exists to reduce starvation: it must not be slower here.
    EXPECT_LE(ps.estimated_makespan, pf.estimated_makespan * 1.001);
}

TEST(ConsistencyPlanner, BaselineFirstDimOrderIsChunkOrder)
{
    // Baseline + FIFO: every chunk has the same schedule, so dim1
    // starts RS ops in chunk order.
    const auto model =
        LatencyModel::fromTopology(presets::make2DSwSw());
    BaselineScheduler sched(model);
    const auto schedules =
        sched.scheduleCollective(CollectiveType::AllReduce, 2.56e8, 8);
    ConsistencyPlanner planner(model, IntraDimPolicy::Fifo);
    const auto plan = planner.plan(schedules);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(plan.order[0][static_cast<std::size_t>(i)].chunk_id,
                  i);
        EXPECT_EQ(
            plan.order[0][static_cast<std::size_t>(i)].stage_index, 0);
    }
}

TEST(ConsistencyPlanner, CyclicOrderIsDetectedAsDeadlock)
{
    // Hand-build a cyclic plan: chunk 0 stage 0 must run before
    // chunk 1 stage 0 on dim A, but chunk 1 stage... the reverse on
    // dim B, while stage order forces the opposite — a cycle.
    std::vector<ChunkSchedule> schedules(2);
    schedules[0].chunk_id = 0;
    schedules[0].size = 1.0;
    schedules[0].stages = {{Phase::ReduceScatter, 0},
                           {Phase::ReduceScatter, 1}};
    schedules[1].chunk_id = 1;
    schedules[1].size = 1.0;
    schedules[1].stages = {{Phase::ReduceScatter, 1},
                           {Phase::ReduceScatter, 0}};
    ConsistencyPlan bad;
    // dim0: chunk1.stage1 before chunk0.stage0;
    // dim1: chunk0.stage1 before chunk1.stage0 -> cycle.
    bad.order = {{OpKey{1, 1}, OpKey{0, 0}},
                 {OpKey{0, 1}, OpKey{1, 0}}};
    EXPECT_FALSE(planIsDeadlockFree(schedules, bad));

    ConsistencyPlan good;
    good.order = {{OpKey{0, 0}, OpKey{1, 1}},
                  {OpKey{1, 0}, OpKey{0, 1}}};
    EXPECT_TRUE(planIsDeadlockFree(schedules, good));
}

} // namespace
} // namespace themis
