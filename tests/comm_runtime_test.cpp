/**
 * @file
 * CommRuntime facade tests: scope normalization and caching, record
 * bookkeeping, trace integration, utilization windows across
 * overlapping scoped collectives, and error paths.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "runtime/comm_runtime.hpp"
#include "stats/trace_writer.hpp"
#include "topology/presets.hpp"

namespace themis::runtime {
namespace {

CollectiveRequest
request(CollectiveType type, Bytes size, int chunks,
        std::vector<ScopeDim> scope = {})
{
    CollectiveRequest req;
    req.type = type;
    req.size = size;
    req.chunks = chunks;
    req.scope = std::move(scope);
    return req;
}

TEST(CommRuntime, ScopeNormalizationErrors)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make3DSwSwSwHomo(),
                     themisScfConfig());
    auto issue = [&](std::vector<ScopeDim> scope) {
        comm.issue(request(CollectiveType::AllReduce, 1.0e6, 2,
                           std::move(scope)));
    };
    EXPECT_THROW(issue({ScopeDim{3, 0}}), ConfigError);   // no dim 3
    EXPECT_THROW(issue({ScopeDim{1, 0}, ScopeDim{0, 0}}), // unordered
                 ConfigError);
    EXPECT_THROW(issue({ScopeDim{0, 32}}), ConfigError);  // too big
    EXPECT_THROW(issue({ScopeDim{0, 1}}), ConfigError);   // degenerate
}

TEST(CommRuntime, DefaultChunksApplied)
{
    sim::EventQueue queue;
    auto cfg = themisScfConfig();
    cfg.default_chunks = 7;
    CommRuntime comm(queue, presets::make2DSwSw(), cfg);
    comm.issue(request(CollectiveType::AllReduce, 7.0e6, 0));
    queue.run();
    // 7 chunks x (RS+AG on 2 dims) = 28 ops over both engines.
    EXPECT_EQ(comm.engine(0).completedCount() +
                  comm.engine(1).completedCount(),
              28u);
}

TEST(CommRuntime, PerScopeSchedulerStateIsIsolated)
{
    // Carry-over load tracking must be per scope: traffic on the MP
    // scope must not perturb the DP scope's scheduler.
    sim::EventQueue queue;
    auto cfg = themisScfConfig();
    cfg.themis.carry_load_across_collectives = true;
    CommRuntime comm(queue, presets::make3DSwSwSwHomo(), cfg);
    const std::vector<ScopeDim> mp{ScopeDim{0, 0}, ScopeDim{1, 0}};
    const std::vector<ScopeDim> dp{ScopeDim{2, 0}};
    comm.issue(request(CollectiveType::AllReduce, 8.0e6, 4, mp));
    comm.issue(request(CollectiveType::AllReduce, 8.0e6, 4, dp));
    queue.run();
    EXPECT_EQ(comm.records().size(), 2u);
    for (const auto& rec : comm.records())
        EXPECT_TRUE(rec.done());
}

TEST(CommRuntime, OverlappingScopedCollectivesShareOneWindow)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make3DSwSwSwHomo(),
                     themisScfConfig());
    // Two disjoint-scope collectives issued together: one
    // communication-active window covering both.
    comm.issue(request(CollectiveType::AllReduce, 64.0e6, 8,
                       {ScopeDim{0, 0}}));
    comm.issue(request(CollectiveType::AllReduce, 64.0e6, 8,
                       {ScopeDim{2, 0}}));
    queue.run();
    comm.finalizeStats();
    const TimeNs t0 = comm.record(0).duration();
    const TimeNs t1 = comm.record(1).duration();
    EXPECT_NEAR(comm.utilization().activeTime(), std::max(t0, t1),
                1.0);
}

TEST(CommRuntime, TraceCapturesEveryOp)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make2DSwSw(),
                     themisScfConfig());
    stats::TraceWriter trace;
    comm.attachTrace(trace);
    comm.issue(request(CollectiveType::AllReduce, 16.0e6, 4));
    queue.run();
    // 4 chunks x 4 stages.
    EXPECT_EQ(trace.eventCount(), 16u);
    const std::string json = trace.toJson();
    EXPECT_NE(json.find("RS c0.s0"), std::string::npos);
    EXPECT_NE(json.find("AG c3.s3"), std::string::npos);
}

TEST(CommRuntime, RecordsKeepUserFacingSizes)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make2DSwSw(),
                     themisScfConfig());
    // AG records keep the gathered-result convention the caller used.
    const int id =
        comm.issue(request(CollectiveType::AllGather, 128.0e6, 8));
    queue.run();
    EXPECT_DOUBLE_EQ(comm.record(id).size, 128.0e6);
    EXPECT_EQ(comm.record(id).scope.size(), 2u);
    EXPECT_EQ(comm.record(id).scope[0].participants, 16);
}

TEST(CommRuntime, ManySequentialCollectivesStayConsistent)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make3DSwSwSwHetero(),
                     themisScfConfig());
    CollectiveRequest req =
        request(CollectiveType::AllReduce, 4.0e6, 4);
    int completed = 0;
    std::function<void()> chain = [&] {
        ++completed;
        if (completed < 10)
            comm.issue(req, chain);
    };
    comm.issue(req, chain);
    queue.run();
    comm.finalizeStats();
    EXPECT_EQ(completed, 10);
    EXPECT_EQ(comm.outstanding(), 0);
    // All ten back-to-back collectives fall in one active window
    // (each issue happens inside the predecessor's completion).
    EXPECT_NEAR(comm.utilization().activeTime(),
                comm.records().back().completed -
                    comm.records().front().issued,
                1.0);
}

TEST(CommRuntime, EngineAccessorBoundsChecked)
{
    sim::EventQueue queue;
    CommRuntime comm(queue, presets::make2DSwSw(),
                     themisScfConfig());
    EXPECT_DEATH(comm.engine(2), "bad dimension");
    EXPECT_DEATH(comm.record(0), "unknown collective");
}

TEST(CommRuntime, IndexedAndLegacyEngineSelectionAgree)
{
    // The indexed ready-set and the pre-PR linear scan must pick
    // identical ops in identical order — checked end-to-end via
    // bit-identical completion times across policies, collective
    // types, and overlapping collectives.
    for (const auto& base_cfg :
         {baselineConfig(), themisFifoConfig(), themisScfConfig()}) {
        for (const auto type :
             {CollectiveType::AllReduce, CollectiveType::AllToAll}) {
            auto run = [&](bool legacy) {
                RuntimeConfig cfg = base_cfg;
                cfg.legacy_engine_scan = legacy;
                sim::EventQueue queue;
                CommRuntime comm(queue,
                                 presets::make3DSwSwSwHetero(), cfg);
                const int a = comm.issue(request(type, 4.0e8, 24));
                // Overlap a second, scoped collective mid-flight.
                queue.runUntil(queue.now() + 1.0e5);
                const int b = comm.issue(
                    request(type, 1.0e8, 8,
                            {ScopeDim{0, 0}, ScopeDim{1, 0}}));
                queue.run();
                return std::pair<TimeNs, TimeNs>(
                    comm.record(a).duration(),
                    comm.record(b).duration());
            };
            const auto fast = run(false);
            const auto legacy = run(true);
            EXPECT_EQ(fast.first, legacy.first);
            EXPECT_EQ(fast.second, legacy.second);
        }
    }
}

TEST(CommRuntime, IndexedSelectionHonorsEnforcedOrders)
{
    for (const auto planner :
         {OrderPlanner::ShadowSim, OrderPlanner::FastSerial}) {
        auto run = [&](bool legacy) {
            RuntimeConfig cfg = themisScfConfig();
            cfg.enforce_consistent_order = true;
            cfg.order_planner = planner;
            cfg.legacy_engine_scan = legacy;
            sim::EventQueue queue;
            CommRuntime comm(queue, presets::make3DSwSwSwHetero(),
                             cfg);
            const int id = comm.issue(
                request(CollectiveType::AllReduce, 4.0e8, 24));
            queue.run();
            return comm.record(id).duration();
        };
        EXPECT_EQ(run(false), run(true));
    }
}

} // namespace
} // namespace themis::runtime
