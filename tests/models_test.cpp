/**
 * @file
 * Model-zoo sanity tests: the four paper workloads carry parameter
 * counts, FLOPs and communication volumes consistent with their
 * published architectures.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/model_zoo.hpp"

namespace themis::models {
namespace {

double
totalParamsFromGrads(const workload::ModelGraph& g)
{
    // FP16 gradients: 2 bytes per parameter.
    return g.totalDpGradBytes() / 2.0;
}

TEST(ResNet152, ParameterCountMatchesArchitecture)
{
    const auto g = makeResNet152();
    const double params = totalParamsFromGrads(g);
    EXPECT_GT(params, 58.0e6);
    EXPECT_LT(params, 62.0e6);
}

TEST(ResNet152, ForwardFlopsPerImage)
{
    const auto g = makeResNet152();
    const double flops_per_image =
        g.totalFwdFlops() / g.minibatch_per_npu;
    // ~11.6 GMACs -> ~23 GFLOPs at 2 FLOPs/MAC.
    EXPECT_GT(flops_per_image, 20.0e9);
    EXPECT_LT(flops_per_image, 27.0e9);
}

TEST(ResNet152, LayerStructure)
{
    const auto g = makeResNet152();
    // conv1 + (3+8+36+3) blocks + fc = 52 layers.
    EXPECT_EQ(g.layers.size(), 52u);
    EXPECT_EQ(g.parallel.mpDegree(), 1);
    EXPECT_EQ(g.minibatch_per_npu, 32);
    for (const auto& l : g.layers) {
        EXPECT_GT(l.dp_grad_bytes, 0.0) << l.name;
        EXPECT_TRUE(l.fwd_comm.empty()) << l.name;
    }
}

TEST(Gnmt, ParameterCountInPublishedRange)
{
    const auto g = makeGNMT();
    const double params = totalParamsFromGrads(g);
    EXPECT_GT(params, 180.0e6);
    EXPECT_LT(params, 300.0e6);
    EXPECT_EQ(g.minibatch_per_npu, 128);
}

TEST(Gnmt, BackwardIsTwiceForward)
{
    const auto g = makeGNMT();
    EXPECT_NEAR(g.totalBwdFlops(), 2.0 * g.totalFwdFlops(),
                1e-6 * g.totalBwdFlops());
}

TEST(Dlrm, AllToAllVolumeMatchesConfig)
{
    const DlrmConfig cfg;
    const auto g = makeDLRM(cfg);
    // mb * tables * dim * 2B = 512*26*128*2 = 3.4 MB.
    const Bytes expect = 512.0 * 26.0 * 128.0 * 2.0;
    bool found_fwd = false, found_bwd = false;
    for (const auto& l : g.layers) {
        for (const auto& op : l.fwd_comm) {
            if (op.type == CollectiveType::AllToAll) {
                EXPECT_DOUBLE_EQ(op.size, expect);
                EXPECT_FALSE(op.blocking);
                EXPECT_EQ(op.domain, workload::CommDomain::World);
                found_fwd = true;
            }
        }
        for (const auto& op : l.bwd_comm) {
            if (op.type == CollectiveType::AllToAll) {
                EXPECT_DOUBLE_EQ(op.size, expect);
                found_bwd = true;
            }
        }
    }
    EXPECT_TRUE(found_fwd);
    EXPECT_TRUE(found_bwd);
}

TEST(Dlrm, TopMlpWaitsForEmbeddings)
{
    const auto g = makeDLRM();
    int barriers = 0;
    for (const auto& l : g.layers)
        barriers += l.wait_pending_before_fwd ? 1 : 0;
    EXPECT_EQ(barriers, 1);
    // The barrier must come after the bottom MLP.
    EXPECT_TRUE(g.layers[4].wait_pending_before_fwd)
        << "embedding + 3 bottom-MLP layers precede the barrier";
}

TEST(Transformer1T, ParameterCountIsOneTrillion)
{
    const Transformer1TConfig cfg;
    // 12 * h^2 * L.
    const double block_params =
        12.0 * cfg.hidden * static_cast<double>(cfg.hidden) *
        cfg.num_layers;
    EXPECT_GT(block_params, 0.99e12);
    EXPECT_LT(block_params, 1.02e12);

    // The graph carries the MP-sharded slice per NPU.
    const auto g = makeTransformer1T(cfg);
    const double shard = totalParamsFromGrads(g);
    EXPECT_NEAR(shard * cfg.mp_degree, block_params, 0.05 * block_params);
}

TEST(Transformer1T, UsesZeroStyleDpAndBlockingMpComm)
{
    const auto g = makeTransformer1T();
    EXPECT_EQ(g.parallel.mpDegree(), 128);
    int blocking_ars = 0;
    for (const auto& l : g.layers) {
        if (l.dp_grad_bytes > 0.0) {
            EXPECT_TRUE(l.zero_style_dp) << l.name;
        }
        for (const auto& op : l.fwd_comm) {
            EXPECT_TRUE(op.blocking) << l.name;
            EXPECT_EQ(op.domain, workload::CommDomain::ModelParallel);
            ++blocking_ars;
        }
    }
    // One activation All-Reduce per block (+1 head all-gather).
    EXPECT_EQ(blocking_ars, 32 + 1);
}

TEST(Transformer1T, RecomputeChargedToForward)
{
    const auto g = makeTransformer1T();
    double recompute = 0.0;
    for (const auto& l : g.layers)
        recompute += l.recompute_flops;
    EXPECT_GT(recompute, 0.0);
}

TEST(Zoo, ByNameRoundTripsAndRejectsUnknown)
{
    for (const auto& name : paperWorkloads())
        EXPECT_EQ(byName(name).name, name);
    EXPECT_THROW(byName("AlexNet"), ConfigError);
}

TEST(Zoo, MinibatchesMatchPaper)
{
    EXPECT_EQ(byName("ResNet-152").minibatch_per_npu, 32);
    EXPECT_EQ(byName("GNMT").minibatch_per_npu, 128);
    EXPECT_EQ(byName("DLRM").minibatch_per_npu, 512);
    EXPECT_EQ(byName("Transformer-1T").minibatch_per_npu, 16);
}

TEST(Zoo, DescribeMentionsName)
{
    for (const auto& name : paperWorkloads()) {
        const auto g = byName(name);
        EXPECT_NE(g.describe().find(name), std::string::npos);
    }
}

} // namespace
} // namespace themis::models
