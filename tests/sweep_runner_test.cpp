/**
 * @file
 * Tests for the parallel sweep harness: result ordering, determinism
 * across worker counts, fresh per-job queues, and error propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/error.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/shared_channel.hpp"
#include "sim/sweep_runner.hpp"
#include "topology/presets.hpp"

namespace themis::sim {
namespace {

TEST(SweepRunner, ResultsComeBackInIndexOrder)
{
    const auto results = sweepIndexed(
        64,
        [](std::size_t i, EventQueue& queue) {
            double out = -1.0;
            queue.schedule(static_cast<double>(i),
                           [&out, i] { out = static_cast<double>(i * i); });
            queue.run();
            return out;
        },
        SweepOptions{4});
    ASSERT_EQ(results.size(), 64u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_DOUBLE_EQ(results[i], static_cast<double>(i * i));
}

TEST(SweepRunner, EveryJobSeesAFreshQueue)
{
    std::atomic<int> violations{0};
    const auto results = sweepIndexed(
        32,
        [&violations](std::size_t i, EventQueue& queue) {
            if (queue.now() != 0.0 || !queue.empty())
                ++violations;
            // Leave time advanced and an event pending: the harness
            // must reset before handing the queue to the next job.
            queue.schedule(100.0 + static_cast<double>(i), [] {});
            queue.runUntil(50.0);
            return static_cast<int>(i);
        },
        SweepOptions{2});
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(results.size(), 32u);
}

TEST(SweepRunner, SerialAndParallelProduceIdenticalResults)
{
    auto job = [](std::size_t i, EventQueue& queue) {
        SharedChannel ch(queue, 10.0 + static_cast<double>(i % 3));
        TimeNs done_at = -1.0;
        ch.begin(1000.0 * (static_cast<double>(i) + 1.0),
                 [&done_at, &queue] { done_at = queue.now(); });
        queue.run();
        return done_at;
    };
    const auto serial = sweepIndexed(40, job, SweepOptions{1});
    const auto parallel = sweepIndexed(40, job, SweepOptions{4});
    EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, FullRuntimeGridMatchesSerialBaseline)
{
    // The real use case: independent CommRuntime simulations across
    // workers must produce bit-identical collective times to running
    // them one by one on a private queue.
    const Topology topo = presets::make3DSwSwSwHomo();
    const std::vector<int> chunk_counts{4, 16, 64};
    auto job = [&](std::size_t i, EventQueue& queue) {
        runtime::CommRuntime comm(queue, topo,
                                  runtime::themisScfConfig());
        CollectiveRequest req;
        req.type = CollectiveType::AllReduce;
        req.size = 50.0e6;
        req.chunks = chunk_counts[i];
        const int id = comm.issue(req);
        queue.run();
        return comm.record(id).duration();
    };
    const auto parallel =
        sweepIndexed(chunk_counts.size(), job, SweepOptions{3});
    for (std::size_t i = 0; i < chunk_counts.size(); ++i) {
        EventQueue queue;
        EXPECT_DOUBLE_EQ(parallel[i], job(i, queue));
    }
}

TEST(SweepRunner, PropagatesJobExceptions)
{
    SweepRunner runner(SweepOptions{2});
    std::vector<SweepRunner::Job> jobs;
    for (int i = 0; i < 8; ++i) {
        jobs.push_back([i](EventQueue&) {
            if (i == 5)
                THEMIS_FATAL("job " << i << " exploded");
        });
    }
    EXPECT_THROW(runner.run(std::move(jobs)), ConfigError);
}

TEST(SweepRunner, EmptyJobListIsFine)
{
    SweepRunner runner;
    runner.run({});
    SUCCEED();
}

TEST(SweepRunner, SingleThreadRunsInline)
{
    SweepRunner runner(SweepOptions{1});
    EXPECT_EQ(runner.threads(), 1);
    int count = 0;
    std::vector<SweepRunner::Job> jobs;
    for (int i = 0; i < 5; ++i)
        jobs.push_back([&count](EventQueue&) { ++count; });
    runner.run(std::move(jobs));
    EXPECT_EQ(count, 5);
}

TEST(SweepRunner, FrontEndOptionSelectsWorkerQueues)
{
    auto job = [](std::size_t i, EventQueue& queue) {
        SharedChannel ch(queue, 25.0);
        TimeNs done_at = -1.0;
        ch.begin(500.0 * (static_cast<double>(i % 7) + 1.0),
                 [&done_at, &queue] { done_at = queue.now(); });
        queue.run();
        return done_at;
    };
    SweepOptions calendar;
    calendar.threads = 4;
    calendar.front_end = EventFrontEnd::Calendar;
    SweepOptions heap;
    heap.threads = 4;
    heap.front_end = EventFrontEnd::Heap;
    // Bit-identical results regardless of the pending-set front end.
    EXPECT_EQ(sweepIndexed(24, job, calendar),
              sweepIndexed(24, job, heap));
}

} // namespace
} // namespace themis::sim
