/**
 * @file
 * Tests of the NPU coordinate algebra underlying the data plane.
 */

#include <gtest/gtest.h>

#include "collective/dataplane/logical_machine.hpp"
#include "common/error.hpp"

namespace themis {
namespace {

TEST(LogicalMachine, CountsAndRoundTrip)
{
    LogicalMachine m({4, 3, 2});
    EXPECT_EQ(m.numNpus(), 24);
    EXPECT_EQ(m.numDims(), 3);
    for (int npu = 0; npu < m.numNpus(); ++npu)
        EXPECT_EQ(m.npuAt(m.coordsOf(npu)), npu);
}

TEST(LogicalMachine, Dim1IsInnermost)
{
    LogicalMachine m({4, 2});
    EXPECT_EQ(m.coordsOf(0), (std::vector<int>{0, 0}));
    EXPECT_EQ(m.coordsOf(1), (std::vector<int>{1, 0}));
    EXPECT_EQ(m.coordsOf(4), (std::vector<int>{0, 1}));
    EXPECT_EQ(m.coordsOf(7), (std::vector<int>{3, 1}));
}

TEST(LogicalMachine, PeerGroupOrderedByCoordinate)
{
    LogicalMachine m({4, 2});
    EXPECT_EQ(m.peerGroup(5, 0), (std::vector<int>{4, 5, 6, 7}));
    EXPECT_EQ(m.peerGroup(5, 1), (std::vector<int>{1, 5}));
    EXPECT_EQ(m.positionInGroup(5, 0), 1);
    EXPECT_EQ(m.positionInGroup(5, 1), 1);
}

TEST(LogicalMachine, GroupsPartitionTheMachine)
{
    LogicalMachine m({4, 3, 2});
    for (int d = 0; d < m.numDims(); ++d) {
        const auto groups = m.allGroups(d);
        EXPECT_EQ(static_cast<int>(groups.size()),
                  m.numNpus() / m.dimSize(d));
        std::vector<int> seen(static_cast<std::size_t>(m.numNpus()), 0);
        for (const auto& g : groups) {
            EXPECT_EQ(static_cast<int>(g.size()), m.dimSize(d));
            for (int npu : g)
                ++seen[static_cast<std::size_t>(npu)];
        }
        for (int c : seen)
            EXPECT_EQ(c, 1);
    }
}

TEST(LogicalMachine, MembersOfAGroupShareOtherCoords)
{
    LogicalMachine m({2, 3, 4});
    for (int npu = 0; npu < m.numNpus(); ++npu) {
        for (int d = 0; d < m.numDims(); ++d) {
            const auto base = m.coordsOf(npu);
            for (int peer : m.peerGroup(npu, d)) {
                const auto pc = m.coordsOf(peer);
                for (int e = 0; e < m.numDims(); ++e) {
                    if (e != d) {
                        EXPECT_EQ(pc[static_cast<std::size_t>(e)],
                                  base[static_cast<std::size_t>(e)]);
                    }
                }
            }
        }
    }
}

TEST(LogicalMachine, RejectsBadConfigs)
{
    EXPECT_THROW(LogicalMachine({}), ConfigError);
    EXPECT_THROW(LogicalMachine({4, 1}), ConfigError);
}

} // namespace
} // namespace themis
