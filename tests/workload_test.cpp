/**
 * @file
 * Workload-layer tests: roofline, parallelization scopes, and the
 * training-loop co-simulation's accounting invariants.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/model_zoo.hpp"
#include "topology/presets.hpp"
#include "workload/parallel_spec.hpp"
#include "workload/roofline.hpp"
#include "workload/training_loop.hpp"

namespace themis::workload {
namespace {

TEST(Roofline, ComputeBoundRegime)
{
    RooflineConfig cfg;
    cfg.peak_tflops = 312.0; // A100-class
    // 312 GFLOP of math, negligible memory -> 1 ms.
    EXPECT_NEAR(computeTime(312.0e9, 0.0, cfg), 1.0e6, 1.0);
}

TEST(Roofline, MemoryBoundRegime)
{
    RooflineConfig cfg;
    cfg.mem_bw_gbps = 2039.0; // A100-class HBM
    // 2039 MB of traffic, negligible math -> 1 ms.
    EXPECT_NEAR(computeTime(0.0, 2039.0e6, cfg), 1.0e6, 1.0);
}

TEST(Roofline, EfficiencyScalesBoth)
{
    RooflineConfig cfg;
    cfg.peak_tflops = 312.0;
    cfg.efficiency = 0.5;
    EXPECT_NEAR(computeTime(312.0e9, 0.0, cfg), 2.0e6, 1.0);
}

TEST(Roofline, DefaultsModelNextGenNpu)
{
    // Calibrated defaults (see RooflineConfig docs): ~2 PFLOP/s FP16
    // and ~8 TB/s HBM.
    const RooflineConfig cfg;
    EXPECT_NEAR(computeTime(2.0e15, 0.0, cfg), 1.0e9, 1.0); // 1 s
    EXPECT_NEAR(computeTime(0.0, 8.0e12, cfg), 1.0e9, 1.0); // 1 s
}

TEST(ParallelSpec, PureDataParallelSpansEverything)
{
    const auto spec = ParallelSpec::dataParallel();
    const auto topo = presets::make3DSwSwSwHomo();
    const auto scope = spec.scopeFor(CommDomain::DataParallel, topo);
    ASSERT_EQ(scope.size(), 3u);
    for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(scope[static_cast<std::size_t>(d)].dim, d);
        EXPECT_EQ(scope[static_cast<std::size_t>(d)].participants,
                  topo.dim(d).size);
    }
    EXPECT_EQ(spec.ways(CommDomain::DataParallel, topo), 1024);
}

TEST(ParallelSpec, Transformer1TDpUsesOnlyLastDim)
{
    // Paper Sec 6.2: "the data-parallel communication of
    // Transformer-1T uses only the last network dimension in all of
    // the topologies."
    const auto spec = ParallelSpec::hybrid(128);
    for (const auto& topo : presets::nextGenTopologies()) {
        const auto dp = spec.scopeFor(CommDomain::DataParallel, topo);
        ASSERT_EQ(dp.size(), 1u) << topo.name();
        EXPECT_EQ(dp[0].dim, topo.numDims() - 1) << topo.name();
        EXPECT_EQ(spec.ways(CommDomain::DataParallel, topo), 8)
            << topo.name();
    }
}

TEST(ParallelSpec, MpScopeCoversFirstDims)
{
    const auto spec = ParallelSpec::hybrid(128);
    const auto topo = presets::make3DSwSwSwHomo(); // 16x8x8
    const auto mp = spec.scopeFor(CommDomain::ModelParallel, topo);
    ASSERT_EQ(mp.size(), 2u);
    EXPECT_EQ(mp[0].dim, 0);
    EXPECT_EQ(mp[0].participants, 16);
    EXPECT_EQ(mp[1].dim, 1);
    EXPECT_EQ(mp[1].participants, 8);
}

TEST(ParallelSpec, MpSplitsADimensionWhenNeeded)
{
    // 2D 16x64: MP=128 takes all of dim1 and 8 of dim2; DP gets the
    // remaining 8-way sub-groups of dim2.
    const auto spec = ParallelSpec::hybrid(128);
    const auto topo = presets::make2DSwSw();
    const auto mp = spec.scopeFor(CommDomain::ModelParallel, topo);
    ASSERT_EQ(mp.size(), 2u);
    EXPECT_EQ(mp[1].participants, 8);
    const auto dp = spec.scopeFor(CommDomain::DataParallel, topo);
    ASSERT_EQ(dp.size(), 1u);
    EXPECT_EQ(dp[0].dim, 1);
    EXPECT_EQ(dp[0].participants, 8);
}

TEST(ParallelSpec, WorldCoversMachine)
{
    const auto spec = ParallelSpec::hybrid(4);
    const auto topo = presets::make4DRingSwSwSw();
    EXPECT_EQ(spec.scopeFor(CommDomain::World, topo).size(), 4u);
    EXPECT_EQ(spec.ways(CommDomain::World, topo), 1024);
}

TEST(ParallelSpec, RejectsMisalignedDegree)
{
    const auto spec = ParallelSpec::hybrid(6);
    EXPECT_THROW(spec.scopeFor(CommDomain::ModelParallel,
                               presets::make2DSwSw()),
                 ConfigError);
}

class LoopOnWorkload
    : public ::testing::TestWithParam<const char*>
{};

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, LoopOnWorkload,
                         ::testing::Values("ResNet-152", "GNMT", "DLRM",
                                           "Transformer-1T"),
                         [](const auto& inf) {
                             std::string n = inf.param;
                             for (char& c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST_P(LoopOnWorkload, BreakdownBucketsSumToTotal)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make3DSwSwSwHetero(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, models::byName(GetParam()));
    const auto it = loop.runIteration();
    EXPECT_GT(it.total, 0.0);
    EXPECT_NEAR(it.bucketSum(), it.total, 1e-6 * it.total);
    EXPECT_GT(it.fwd_compute, 0.0);
    EXPECT_GT(it.bwd_compute, 0.0);
    EXPECT_GE(it.exposed_mp, 0.0);
    EXPECT_GE(it.exposed_dp, 0.0);
}

TEST_P(LoopOnWorkload, ThemisDoesNotSlowDownTraining)
{
    auto run_total = [&](const runtime::RuntimeConfig& cfg) {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, presets::make3DSwSwSwHomo(),
                                  cfg);
        TrainingLoop loop(comm, models::byName(GetParam()));
        return loop.runIteration().total;
    };
    const TimeNs base = run_total(runtime::baselineConfig());
    const TimeNs scf = run_total(runtime::themisScfConfig());
    EXPECT_LE(scf, base * 1.001) << "Themis must not regress";
}

TEST(TrainingLoop, DataParallelWorkloadsHaveNoExposedMp)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make2DSwSw(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, models::makeResNet152());
    const auto it = loop.runIteration();
    EXPECT_DOUBLE_EQ(it.exposed_mp, 0.0);
    EXPECT_GT(it.exposed_dp, 0.0);
}

TEST(TrainingLoop, TransformerExposesMp)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make3DSwSwSwHomo(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, models::makeTransformer1T());
    const auto it = loop.runIteration();
    EXPECT_GT(it.exposed_mp, 0.0);
    // MP activation traffic dominates DP for Transformer-1T (Fig 12).
    EXPECT_GT(it.exposed_mp, it.exposed_dp);
}

TEST(TrainingLoop, DlrmOverlapsAllToAll)
{
    // The forward All-to-All overlaps the bottom MLP; it may expose
    // some wait at the top-MLP barrier but the iteration must account
    // it as MP time.
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make3DSwSwSwHetero(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, models::makeDLRM());
    const auto it = loop.runIteration();
    EXPECT_GT(it.total, 0.0);
    EXPECT_GT(it.exposed_dp, 0.0);
}

TEST(TrainingLoop, IterationsAreReproducible)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make3DSwSwSwHomo(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, models::makeGNMT());
    const auto a = loop.runIteration();
    const auto b = loop.runIteration();
    EXPECT_NEAR(a.total, b.total, 1e-6 * a.total);
    EXPECT_NEAR(a.exposed_dp, b.exposed_dp, 1e-6 * a.total);
}

TEST(TrainingLoop, MultiIterationSumsBuckets)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, presets::make2DSwSw(),
                              runtime::themisScfConfig());
    TrainingLoop loop(comm, models::makeDLRM());
    const auto one = loop.runIteration();
    const auto three = loop.run(3);
    EXPECT_NEAR(three.total, 3.0 * one.total, 1e-6 * three.total);
}

} // namespace
} // namespace themis::workload
