/**
 * @file
 * Fault & heterogeneity scenario engine tests: timeline parsing with
 * field-level diagnostics, seeded flap storms, capacity degradation
 * and straggler semantics, link flaps with retry/backoff, per-dim
 * fault accounting, the fault report table, phase-aware convergence
 * replay (bit-identical to full simulation around fault windows), and
 * multi-job cluster runs under faults.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "models/model_zoo.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/fault_timeline.hpp"
#include "stats/summary.hpp"
#include "topology/presets.hpp"
#include "workload/convergence.hpp"
#include "workload/training_loop.hpp"

namespace themis {
namespace {

using sim::FaultKind;
using sim::FaultTimeline;

// ------------------------------------------------------- parsing

TEST(FaultTimeline, ParsesEveryKind)
{
    const auto tl = FaultTimeline::parse(
        "degrade@1e6+5e5:dim=0,factor=0.5;"
        "flap@2e6+1e4:dim=1;"
        "straggler@0:dim=0,factor=0.8;"
        "storm@3e6+1e6:dim=1,flaps=3,down=2e3");
    // degrade -> start+end, flap -> down+up, straggler -> 1,
    // storm(3) -> 3 * (down+up).
    EXPECT_EQ(tl.eventCount(), 2u + 2u + 1u + 6u);
    EXPECT_EQ(tl.maxDim(), 1);
    EXPECT_FALSE(tl.empty());
    // Events come out sorted by time.
    const auto& ev = tl.events();
    for (std::size_t i = 1; i < ev.size(); ++i)
        EXPECT_LE(ev[i - 1].at, ev[i].at);
    EXPECT_EQ(ev.front().kind, FaultKind::StragglerStart);
}

TEST(FaultTimeline, DegradeExpandsToPairedStartAndEnd)
{
    FaultTimeline tl;
    tl.addDegrade(2, 100.0, 50.0, 0.25);
    ASSERT_EQ(tl.eventCount(), 2u);
    const auto& ev = tl.events();
    EXPECT_EQ(ev[0].kind, FaultKind::DegradeStart);
    EXPECT_EQ(ev[1].kind, FaultKind::DegradeEnd);
    EXPECT_DOUBLE_EQ(ev[0].at, 100.0);
    EXPECT_DOUBLE_EQ(ev[1].at, 150.0);
    EXPECT_EQ(ev[0].pair, ev[1].pair);
    EXPECT_EQ(ev[0].dim, 2);
    EXPECT_DOUBLE_EQ(ev[0].factor, 0.25);
}

TEST(FaultTimeline, DiagnosticsNameEventAndField)
{
    try {
        FaultTimeline::parse(
            "flap@1e3+1e2:dim=0;degrade@1e6+5e5:dim=0,factor=2.0");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("event 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("degrade"), std::string::npos) << msg;
        EXPECT_NE(msg.find("factor"), std::string::npos) << msg;
    }
    try {
        FaultTimeline::parse("degrade@abc+5e5:dim=0,factor=0.5");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("event 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("time"), std::string::npos) << msg;
    }
}

TEST(FaultTimeline, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultTimeline::parse(""), ConfigError);
    EXPECT_THROW(FaultTimeline::parse("degrade@1+1:factor=0.5"),
                 ConfigError); // missing dim
    EXPECT_THROW(FaultTimeline::parse("degrade@1+1:dim=0"),
                 ConfigError); // missing factor
    EXPECT_THROW(FaultTimeline::parse("degrade@1:dim=0,factor=0.5"),
                 ConfigError); // missing window
    EXPECT_THROW(
        FaultTimeline::parse("straggler@1+5:dim=0,factor=0.5"),
        ConfigError); // straggler takes no duration
    EXPECT_THROW(FaultTimeline::parse("flap@1+5:dim=0,factor=0.5"),
                 ConfigError); // flap takes no factor
    EXPECT_THROW(FaultTimeline::parse("flap@1+5:dim=0,bogus=1"),
                 ConfigError); // unknown field
    EXPECT_THROW(FaultTimeline::parse("flap@1+5:dim=0,dim=1"),
                 ConfigError); // duplicate field
    EXPECT_THROW(FaultTimeline::parse("meteor@1+5:dim=0"),
                 ConfigError); // unknown kind
    EXPECT_THROW(FaultTimeline::parse("flap@nan+5:dim=0"),
                 ConfigError);
    EXPECT_THROW(FaultTimeline::parse("flap@-5+5:dim=0"),
                 ConfigError);
    EXPECT_THROW(FaultTimeline::parse("storm@1+5:dim=0,flaps=2"),
                 ConfigError); // storm needs down
}

TEST(FaultTimeline, StormExpansionIsDeterministicPerSeed)
{
    const std::string spec =
        "storm@0+1e6:dim=0,flaps=5,down=1e3,seed=42";
    const auto a = FaultTimeline::parse(spec);
    const auto b = FaultTimeline::parse(spec);
    ASSERT_EQ(a.eventCount(), b.eventCount());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].at, b.events()[i].at) << i;
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind) << i;
    }
    const auto c = FaultTimeline::parse(
        "storm@0+1e6:dim=0,flaps=5,down=1e3,seed=43");
    bool any_diff = false;
    for (std::size_t i = 0; i < a.events().size(); ++i)
        any_diff = any_diff || a.events()[i].at != c.events()[i].at;
    EXPECT_TRUE(any_diff) << "different seeds produced the same storm";
}

TEST(FaultTimeline, NextEventQueriesAndDimValidation)
{
    FaultTimeline tl;
    tl.addDegrade(0, 100.0, 50.0, 0.5);
    EXPECT_DOUBLE_EQ(tl.nextEventAtOrAfter(0.0), 100.0);
    EXPECT_DOUBLE_EQ(tl.nextEventAtOrAfter(100.0), 100.0);
    EXPECT_DOUBLE_EQ(tl.nextEventAfter(100.0), 150.0);
    EXPECT_TRUE(std::isinf(tl.nextEventAfter(150.0)));
    EXPECT_TRUE(std::isinf(tl.nextEventAtOrAfter(150.1)));
    EXPECT_NO_THROW(tl.validateForDims(1));
    EXPECT_THROW(tl.validateForDims(0), ConfigError);
    FaultTimeline far;
    far.addStraggler(5, 0.0, 0.5);
    EXPECT_THROW(far.validateForDims(2), ConfigError);
}

// ------------------------------------------- runtime fault behavior

/** One AllReduce on a fresh runtime; keeps the runtime alive for
 *  post-run inspection. */
struct CollectiveRun
{
    std::unique_ptr<sim::EventQueue> queue;
    std::unique_ptr<runtime::CommRuntime> comm;
    TimeNs duration = 0.0;
};

CollectiveRun
runOneCollective(const Topology& topo,
                 const runtime::RuntimeConfig& cfg)
{
    CollectiveRun run;
    run.queue = std::make_unique<sim::EventQueue>();
    run.comm =
        std::make_unique<runtime::CommRuntime>(*run.queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e8;
    req.chunks = 8;
    const int id = run.comm->issue(req);
    run.queue->run();
    run.comm->finalizeStats();
    run.duration = run.comm->record(id).duration();
    return run;
}

TEST(FaultRuntime, StragglerSlowsTheRunWithinBounds)
{
    const Topology topo = presets::byName("2D-SW_SW");
    const TimeNs base =
        runOneCollective(topo, runtime::themisScfConfig()).duration;

    FaultTimeline tl;
    tl.addStraggler(0, 0.0, 0.25); // dim 0 at quarter speed, forever
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    const TimeNs slow = runOneCollective(topo, cfg).duration;
    // Dim 0's wire phases take 4x; the whole run sits between the
    // fault-free time and the all-wire-4x bound.
    EXPECT_GT(slow, base);
    EXPECT_LE(slow, 4.0 * base + 1.0);
}

TEST(FaultRuntime, EventAfterCompletionChangesNothing)
{
    const Topology topo = presets::byName("2D-SW_SW");
    const TimeNs base =
        runOneCollective(topo, runtime::themisScfConfig()).duration;

    FaultTimeline tl;
    tl.addDegrade(0, 1.0e15, 1.0e6, 0.5); // long after the run ends
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    const TimeNs same = runOneCollective(topo, cfg).duration;
    EXPECT_DOUBLE_EQ(same, base);
}

TEST(FaultRuntime, FlapFailsRetriesAndAccounts)
{
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    const TimeNs down = 5.0e4;
    tl.addFlap(0, 1.0e4, down);
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    const auto faulted = runOneCollective(topo, cfg);
    auto& comm = *faulted.comm;

    EXPECT_GT(comm.engine(0).retryCount(), 0u);
    EXPECT_GT(comm.engine(0).lostBytes(), 0.0);
    EXPECT_EQ(comm.engine(1).retryCount(), 0u);
    const auto& ut = comm.utilization();
    EXPECT_EQ(ut.flaps()[0], 1u);
    EXPECT_DOUBLE_EQ(ut.downTime()[0], down);
    EXPECT_EQ(ut.retries()[0], comm.engine(0).retryCount());
    EXPECT_DOUBLE_EQ(ut.retryLostBytes()[0],
                     comm.engine(0).lostBytes());

    // The flap costs time: down window plus re-sent bytes.
    const auto clean =
        runOneCollective(topo, runtime::themisScfConfig());
    EXPECT_GT(faulted.duration, clean.duration);

    // Conservation: wire bytes = useful schedule bytes + re-sent.
    for (int d = 0; d < topo.numDims(); ++d) {
        auto& clean_ch = clean.comm->engine(d).channel();
        auto& fault_ch = faulted.comm->engine(d).channel();
        clean_ch.sync();
        fault_ch.sync();
        const Bytes want = clean_ch.progressedBytes() +
                           comm.engine(d).lostBytes();
        EXPECT_NEAR(fault_ch.progressedBytes(), want,
                    1.0 + 1e-6 * want)
            << "dim " << d;
    }
}

TEST(FaultRuntime, ConfigRejectsBadWiring)
{
    const Topology topo = presets::byName("2D-SW_SW");
    sim::EventQueue q;

    FaultTimeline far;
    far.addFlap(7, 0.0, 1.0e3); // dim 7 on a 2D machine
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &far;
    EXPECT_THROW(runtime::CommRuntime(q, topo, cfg), ConfigError);

    FaultTimeline ok;
    ok.addFlap(0, 0.0, 1.0e3);
    auto bad_retry = runtime::themisScfConfig();
    bad_retry.faults = &ok;
    bad_retry.retry.max_attempts = 0;
    EXPECT_THROW(runtime::CommRuntime(q, topo, bad_retry),
                 ConfigError);

    auto legacy = runtime::themisScfConfig();
    legacy.faults = &ok;
    legacy.legacy_engine_scan = true;
    EXPECT_THROW(runtime::CommRuntime(q, topo, legacy), ConfigError);
}

// ------------------------------------------------ fault report table

TEST(FaultStats, RenderFaultTableFormatsRows)
{
    std::vector<stats::FaultDimRow> rows;
    rows.push_back({"dim0 (SW)", 4, 2, 5.0e4, 7, 1.5e6});
    rows.push_back({"dim1 (SW)", 0, 0, 0.0, 0, 0.0});
    const std::string out = stats::renderFaultTable(rows);
    EXPECT_NE(out.find("Dim"), std::string::npos);
    EXPECT_NE(out.find("Retries"), std::string::npos);
    EXPECT_NE(out.find("dim0 (SW)"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    // Idle dimensions render "-" for time/bytes, not 0-valued noise.
    EXPECT_NE(out.find('-'), std::string::npos);
}

// --------------------------------------- phase-aware convergence

workload::ModelGraph
smallHybridModel()
{
    workload::ModelGraph g;
    g.name = "small-hybrid";
    g.parallel = workload::ParallelSpec::hybrid(16);
    g.fused_dp_grads = false;
    for (int i = 0; i < 3; ++i) {
        workload::Layer l;
        l.name = "l" + std::to_string(i);
        l.fwd_flops = 2.0e11;
        l.bwd_flops = 4.0e11;
        l.dp_grad_bytes = 6.0e6;
        l.fwd_comm.push_back({CollectiveType::AllReduce, 4.0e6,
                              workload::CommDomain::ModelParallel,
                              true});
        l.bwd_comm.push_back({CollectiveType::AllReduce, 4.0e6,
                              workload::CommDomain::ModelParallel,
                              true});
        g.layers.push_back(l);
    }
    return g;
}

workload::ConvergenceReport
runModel(const Topology& topo, const workload::ConvergenceOptions& o,
         const FaultTimeline* faults)
{
    auto cfg = runtime::themisScfConfig();
    cfg.faults = faults;
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    workload::TrainingLoop loop(comm, smallHybridModel());
    return runConverged(comm, loop, o);
}

TEST(FaultConvergence, NullAndEmptyTimelineBitIdentical)
{
    const Topology topo = presets::make2DSwSw();
    workload::ConvergenceOptions opts;
    opts.iterations = 8;
    const FaultTimeline empty;
    const auto with_null = runModel(topo, opts, nullptr);
    const auto with_empty = runModel(topo, opts, &empty);
    EXPECT_TRUE(resultsBitIdentical(with_null, with_empty));
    EXPECT_GT(with_empty.replayed_iterations, 0);
}

TEST(FaultConvergence, PhaseAwareReplayBitIdenticalToFullSim)
{
    const Topology topo = presets::make2DSwSw();

    // Measure one fault-free iteration to place the fault window in
    // units of iterations.
    workload::ConvergenceOptions probe;
    probe.iterations = 1;
    probe.replay = false;
    const TimeNs d = runModel(topo, probe, nullptr).last.total;
    ASSERT_GT(d, 0.0);

    // Degrade dim 0 inside iteration 4 (of 12), recovering within
    // the same iteration; flap dim 1 inside iteration 7.
    FaultTimeline tl;
    tl.addDegrade(0, 3.25 * d, 0.5 * d, 0.5);
    tl.addFlap(1, 6.4 * d, 0.05 * d);

    workload::ConvergenceOptions replay_opts;
    replay_opts.iterations = 12;
    workload::ConvergenceOptions full_opts;
    full_opts.iterations = 12;
    full_opts.replay = false;

    const auto fast = runModel(topo, replay_opts, &tl);
    const auto full = runModel(topo, full_opts, &tl);

    // The replay engine skipped work but split the run at the fault
    // phases (so not everything replays).
    EXPECT_GT(fast.replayed_iterations, 0);
    EXPECT_LT(fast.replayed_iterations, 11);
    EXPECT_EQ(full.simulated_iterations, 12);
    EXPECT_TRUE(resultsBitIdentical(fast, full));

    // In-binary exactness proof of the same scenario.
    workload::ConvergenceOptions exact_opts;
    exact_opts.iterations = 12;
    exact_opts.exactness_check = true;
    const auto checked = runModel(topo, exact_opts, &tl);
    EXPECT_EQ(checked.simulated_iterations, 12);
    EXPECT_TRUE(resultsBitIdentical(checked, full));
}

TEST(FaultConvergence, PermanentStragglerStillReachesSteadyState)
{
    // A straggler from t=0 changes capacities once; iterations after
    // it are mutually identical, so detection + replay must engage
    // (the timeline is quiescent past its only event).
    const Topology topo = presets::make2DSwSw();
    FaultTimeline tl;
    tl.addStraggler(0, 0.0, 0.5);
    workload::ConvergenceOptions opts;
    opts.iterations = 10;
    const auto r = runModel(topo, opts, &tl);
    EXPECT_GT(r.replayed_iterations, 0);
    EXPECT_EQ(r.simulated_iterations + r.replayed_iterations, 10);

    workload::ConvergenceOptions full_opts;
    full_opts.iterations = 10;
    full_opts.replay = false;
    const auto full = runModel(topo, full_opts, &tl);
    EXPECT_TRUE(resultsBitIdentical(r, full));
}

// ------------------------------------------------- cluster under faults

TEST(FaultCluster, MultiJobRunSurvivesFaultsAndConserves)
{
    const Topology topo = presets::byName("2D-SW_SW");
    std::vector<cluster::JobSpec> specs;
    specs.push_back(cluster::JobSpec::training(
        models::byName("DLRM"), 2, 0.0,
        static_cast<int>(PriorityTier::Bulk)));
    cluster::JobSpec infer = cluster::JobSpec::periodicInference(
        3.2e7, 3.0e5, 5.0e5, 0.0,
        static_cast<int>(PriorityTier::Urgent));
    infer.max_requests = 6;
    specs.push_back(infer);

    auto run = [&](const FaultTimeline* tl, std::vector<Bytes>* wire,
                   std::vector<Bytes>* lost) {
        auto cfg = runtime::themisScfConfig();
        cfg.scheduler = SchedulerKind::ThemisPriority;
        cfg.priority = PriorityPolicy::tiered(4.0);
        cfg.faults = tl;
        sim::EventQueue q;
        cluster::Cluster cl(q, topo, cfg, specs);
        const auto rep = cl.run();
        auto& comm = cl.runtime();
        for (int d = 0; d < topo.numDims(); ++d) {
            auto& ch = comm.engine(d).channel();
            ch.sync();
            wire->push_back(ch.progressedBytes());
            lost->push_back(comm.engine(d).lostBytes());
        }
        return rep;
    };

    std::vector<Bytes> clean_wire, clean_lost;
    const auto clean = run(nullptr, &clean_wire, &clean_lost);

    FaultTimeline tl;
    tl.addDegrade(0, 2.0e5, 4.0e5, 0.5);
    tl.addFlap(1, 5.0e5, 2.0e4);
    std::vector<Bytes> wire, lost;
    const auto faulted = run(&tl, &wire, &lost);

    // Same work completed in both worlds.
    ASSERT_EQ(faulted.jobs.size(), clean.jobs.size());
    for (std::size_t j = 0; j < faulted.jobs.size(); ++j) {
        EXPECT_EQ(faulted.jobs[j].iterations, clean.jobs[j].iterations)
            << "job " << j;
        EXPECT_EQ(faulted.jobs[j].requests_completed,
                  clean.jobs[j].requests_completed)
            << "job " << j;
    }
    EXPECT_GE(faulted.makespan, clean.makespan);
    // Per-dim conservation: wire bytes = clean wire bytes + re-sent.
    for (int d = 0; d < topo.numDims(); ++d) {
        const Bytes want = clean_wire[static_cast<std::size_t>(d)] +
                           lost[static_cast<std::size_t>(d)];
        EXPECT_NEAR(wire[static_cast<std::size_t>(d)], want,
                    1.0 + 1e-6 * want)
            << "dim " << d;
        EXPECT_DOUBLE_EQ(clean_lost[static_cast<std::size_t>(d)], 0.0);
    }
}

} // namespace
} // namespace themis
