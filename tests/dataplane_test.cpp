/**
 * @file
 * Data-plane semantic tests: the Table 1 algorithms move and reduce
 * real data correctly, and — the paper's Observation 1 — *any*
 * permutation of RS dimensions followed by any permutation of AG
 * dimensions yields a correct All-Reduce. This is the property that
 * makes Themis's per-chunk dynamic schedules legal.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "collective/dataplane/dataplane_collectives.hpp"
#include "common/error.hpp"

namespace themis {
namespace {

DataValue
seed(int npu, std::int64_t offset)
{
    return static_cast<DataValue>(npu) * 100003 + offset * 7 + 1;
}

std::vector<std::vector<int>>
allPermutations(int n)
{
    std::vector<int> idx(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        idx[static_cast<std::size_t>(i)] = i;
    std::vector<std::vector<int>> out;
    do {
        out.push_back(idx);
    } while (std::next_permutation(idx.begin(), idx.end()));
    return out;
}

TEST(DataPlaneSingleDim, RingReduceScatter)
{
    LogicalMachine m({4});
    DataPlane dp(m, {DimKind::Ring}, 16);
    dp.initFullReplicas(seed);
    dp.reduceScatterDim(0);
    EXPECT_TRUE(dp.verifyReduceScattered(seed));
}

TEST(DataPlaneSingleDim, RingAllReduce)
{
    LogicalMachine m({5}); // rings work for any size
    DataPlane dp(m, {DimKind::Ring}, 25);
    dp.initFullReplicas(seed);
    dp.runAllReduce({0}, {0});
    EXPECT_TRUE(dp.verifyAllReduced(seed));
}

TEST(DataPlaneSingleDim, DirectAllReduce)
{
    LogicalMachine m({8});
    DataPlane dp(m, {DimKind::FullyConnected}, 32);
    dp.initFullReplicas(seed);
    dp.runAllReduce({0}, {0});
    EXPECT_TRUE(dp.verifyAllReduced(seed));
}

TEST(DataPlaneSingleDim, HalvingDoublingAllReduce)
{
    LogicalMachine m({8});
    DataPlane dp(m, {DimKind::Switch}, 64);
    dp.initFullReplicas(seed);
    dp.runAllReduce({0}, {0});
    EXPECT_TRUE(dp.verifyAllReduced(seed));
}

TEST(DataPlaneSingleDim, RingAllGather)
{
    LogicalMachine m({6});
    DataPlane dp(m, {DimKind::Ring}, 18);
    dp.initShards(seed);
    dp.allGatherDim(0);
    EXPECT_TRUE(dp.verifyAllGathered(seed));
}

TEST(DataPlaneSingleDim, HalvingDoublingAllGather)
{
    LogicalMachine m({8});
    DataPlane dp(m, {DimKind::Switch}, 32);
    dp.initShards(seed);
    dp.allGatherDim(0);
    EXPECT_TRUE(dp.verifyAllGathered(seed));
}

/**
 * Observation 1 property sweep: on a heterogeneous 3D machine, every
 * (rs_order, ag_order) pair out of the 6x6 possibilities produces a
 * correct All-Reduce.
 */
class Observation1
    : public ::testing::TestWithParam<
          std::tuple<std::vector<int>, std::vector<int>>>
{};

INSTANTIATE_TEST_SUITE_P(
    AllOrderPairs, Observation1,
    ::testing::Combine(::testing::ValuesIn(allPermutations(3)),
                       ::testing::ValuesIn(allPermutations(3))));

TEST_P(Observation1, AnyRsAgOrderIsACorrectAllReduce)
{
    const auto& [rs_order, ag_order] = GetParam();
    LogicalMachine m({4, 2, 4});
    DataPlane dp(
        m, {DimKind::Ring, DimKind::Switch, DimKind::FullyConnected},
        m.numNpus() * 4);
    dp.initFullReplicas(seed);
    dp.runAllReduce(rs_order, ag_order);
    EXPECT_TRUE(dp.verifyAllReduced(seed));
}

TEST(DataPlaneMultiDim, RsOnlyAnyOrderScattersCorrectly)
{
    for (const auto& order : allPermutations(3)) {
        LogicalMachine m({2, 4, 2});
        DataPlane dp(
            m, {DimKind::Switch, DimKind::Ring, DimKind::Switch},
            m.numNpus() * 2);
        dp.initFullReplicas(seed);
        for (int d : order)
            dp.reduceScatterDim(d);
        EXPECT_TRUE(dp.verifyReduceScattered(seed))
            << "order " << order[0] << order[1] << order[2];
    }
}

TEST(DataPlaneMultiDim, AgOnlyAnyOrderGathersCorrectly)
{
    for (const auto& order : allPermutations(3)) {
        LogicalMachine m({2, 2, 4});
        DataPlane dp(
            m, {DimKind::Switch, DimKind::FullyConnected, DimKind::Ring},
            m.numNpus() * 2);
        dp.initShards(seed);
        for (int d : order)
            dp.allGatherDim(d);
        EXPECT_TRUE(dp.verifyAllGathered(seed))
            << "order " << order[0] << order[1] << order[2];
    }
}

TEST(DataPlaneMultiDim, MixedInterleavedAgBeforeLastRsIsStillValid)
{
    // RS(d0), RS(d1), AG(d0), AG(d1) — the AG order differing from
    // the reversed RS order exercises strided (non-contiguous) shards.
    LogicalMachine m({4, 4});
    DataPlane dp(m, {DimKind::Switch, DimKind::Switch},
                 m.numNpus() * 4);
    dp.initFullReplicas(seed);
    dp.reduceScatterDim(0);
    dp.reduceScatterDim(1);
    dp.allGatherDim(0); // not the reverse order
    dp.allGatherDim(1);
    EXPECT_TRUE(dp.verifyAllReduced(seed));
}

TEST(DataPlaneMultiDim, ChunkedAllReduceWithHeterogeneousSchedules)
{
    // Four chunks, each with a different (Themis-style) schedule, on
    // independent element spaces: all must all-reduce correctly.
    const std::vector<std::pair<std::vector<int>, std::vector<int>>>
        schedules = {
            {{0, 1}, {1, 0}}, // baseline
            {{1, 0}, {0, 1}}, // starts at dim2
            {{0, 1}, {0, 1}}, // non-mirrored AG
            {{1, 0}, {1, 0}},
        };
    for (const auto& [rs, ag] : schedules) {
        LogicalMachine m({4, 4});
        DataPlane dp(m, {DimKind::Ring, DimKind::Switch},
                     m.numNpus() * 2);
        dp.initFullReplicas(seed);
        dp.runAllReduce(rs, ag);
        EXPECT_TRUE(dp.verifyAllReduced(seed));
    }
}

TEST(DataPlane, RejectsMisalignedElementCount)
{
    LogicalMachine m({4, 2});
    EXPECT_THROW(DataPlane(m, {DimKind::Ring, DimKind::Switch}, 12),
                 ConfigError);
}

TEST(DataPlane, VerifyCatchesCorruption)
{
    LogicalMachine m({4});
    DataPlane dp(m, {DimKind::Ring}, 8);
    dp.initFullReplicas(seed);
    // No collective ran; replicas are not the reduced values.
    EXPECT_FALSE(dp.verifyAllReduced(seed));
}


TEST(DataPlaneOffload, SwitchOffloadAllReduce)
{
    // In-network reduction (Sec 4.5) on a non-power-of-two switch.
    LogicalMachine m({6});
    DataPlane dp(m, {DimKind::Switch}, 36, {true});
    dp.initFullReplicas(seed);
    dp.runAllReduce({0}, {0});
    EXPECT_TRUE(dp.verifyAllReduced(seed));
}

TEST(DataPlaneOffload, MixedOffloadAndPeerToPeerDims)
{
    LogicalMachine m({4, 4});
    for (const auto& rs : allPermutations(2)) {
        for (const auto& ag : allPermutations(2)) {
            DataPlane dp(m, {DimKind::Ring, DimKind::Switch},
                         m.numNpus() * 2, {false, true});
            dp.initFullReplicas(seed);
            dp.runAllReduce(rs, ag);
            EXPECT_TRUE(dp.verifyAllReduced(seed));
        }
    }
}

TEST(DataPlaneOffload, RejectsOffloadOnRing)
{
    LogicalMachine m({4});
    EXPECT_THROW(DataPlane(m, {DimKind::Ring}, 8, {true}),
                 ConfigError);
}

} // namespace
} // namespace themis
