/**
 * @file
 * Telemetry subsystem tests: metric instrument semantics (counters,
 * gauges, log2 histograms with tail percentiles), registry stability
 * and epoch reset, the bounded flight-recorder ring, TraceWriter JSON
 * escaping (round-trip) and time-base stitching, runtime publishing
 * for clean / faulted / adaptive runs, convergence-replay
 * bit-identity with telemetry armed, RunReport serialization, fatal
 * retry postmortems, cluster per-job metrics with deadline misses,
 * and the telemetry tail columns of the text tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "models/model_zoo.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/fault_timeline.hpp"
#include "stats/summary.hpp"
#include "stats/telemetry/flight_recorder.hpp"
#include "stats/telemetry/json_writer.hpp"
#include "stats/telemetry/metrics.hpp"
#include "stats/telemetry/run_report.hpp"
#include "stats/telemetry/telemetry.hpp"
#include "stats/trace_writer.hpp"
#include "topology/presets.hpp"
#include "workload/convergence.hpp"
#include "workload/training_loop.hpp"

namespace themis {
namespace {

using sim::FaultTimeline;
using stats::telemetry::FlightEvent;
using stats::telemetry::FlightKind;
using stats::telemetry::FlightRecorder;
using stats::telemetry::Histogram;
using stats::telemetry::MetricsRegistry;
using stats::telemetry::RunReport;
using stats::telemetry::Telemetry;

// ------------------------------------------------- instruments

TEST(TelemetryMetrics, CounterAndGaugeSemantics)
{
    MetricsRegistry reg;
    auto& c = reg.counter("runtime.collectives.issued");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    auto& g = reg.gauge("engine.dim0.channel.capacity_gbps");
    g.set(300.0);
    g.set(150.0);
    EXPECT_DOUBLE_EQ(g.value(), 150.0);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(TelemetryMetrics, HistogramBucketsAndTails)
{
    // Bucket 0 absorbs everything below 1.0 -- including the
    // negative values deadline slack produces; b >= 1 holds
    // [2^(b-1), 2^b).
    EXPECT_EQ(Histogram::bucketOf(-5.0), 0);
    EXPECT_EQ(Histogram::bucketOf(0.0), 0);
    EXPECT_EQ(Histogram::bucketOf(0.5), 0);
    EXPECT_EQ(Histogram::bucketOf(1.0), 1);
    EXPECT_EQ(Histogram::bucketOf(2.0), 2);
    EXPECT_EQ(Histogram::bucketOf(3.0), 2);
    EXPECT_EQ(Histogram::bucketOf(4.0), 3);
    EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(3), 8.0);

    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
    for (int i = 0; i < 100; ++i)
        h.record(1000.0);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
    // All mass in one bucket: every percentile clamps to the exact
    // min/max.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 1000.0);

    // A negative sample lands in the underflow bucket; exact min is
    // kept so the low tail stays truthful.
    h.record(-7.5);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -7.5);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_GE(h.percentile(0.0), h.min());
    EXPECT_LE(h.percentile(1.0), h.max());

    // Values past the last bucket boundary saturate but keep max.
    Histogram big;
    big.record(1.0e300);
    EXPECT_DOUBLE_EQ(big.max(), 1.0e300);
    EXPECT_DOUBLE_EQ(big.percentile(0.99), 1.0e300);
}

TEST(TelemetryMetrics, RegistryStableRefsSortedIterationAndReset)
{
    MetricsRegistry reg;
    auto& c = reg.counter("zebra");
    c.add(3);
    // Inserting more names must not move existing instruments
    // (hot paths cache the reference).
    for (int i = 0; i < 64; ++i)
        reg.counter("c" + std::to_string(i));
    EXPECT_EQ(reg.counter("zebra").value(), 3u);
    EXPECT_EQ(&reg.counter("zebra"), &c);

    EXPECT_EQ(reg.findCounter("nope"), nullptr);
    EXPECT_EQ(reg.findGauge("nope"), nullptr);
    EXPECT_EQ(reg.findHistogram("nope"), nullptr);
    ASSERT_NE(reg.findCounter("zebra"), nullptr);

    // Iteration is name-sorted (deterministic snapshots).
    std::string prev;
    for (const auto& [name, counter] : reg.counters()) {
        EXPECT_LT(prev, name);
        prev = name;
    }

    // Epoch reset zeroes values but keeps every name registered, so
    // instrument pointers stay valid across convergence epochs.
    const std::size_t before = reg.size();
    reg.histogram("h").record(5.0);
    reg.gauge("g").set(2.0);
    reg.reset();
    EXPECT_EQ(reg.size(), before + 2);
    EXPECT_EQ(reg.counter("zebra").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
}

// ---------------------------------------------- flight recorder

TEST(TelemetryFlight, RingBoundsOrderAndDescriptions)
{
    FlightRecorder rec(4);
    EXPECT_EQ(rec.capacity(), 4u);
    for (int i = 0; i < 10; ++i)
        rec.record({static_cast<TimeNs>(i), FlightKind::Retry, i % 2,
                    i, 100.0 * i});
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.totalRecorded(), 10u);
    EXPECT_EQ(rec.dropped(), 6u);
    const auto ev = rec.events();
    ASSERT_EQ(ev.size(), 4u);
    for (std::size_t i = 0; i < ev.size(); ++i) {
        EXPECT_DOUBLE_EQ(ev[i].at, 6.0 + static_cast<double>(i));
        EXPECT_EQ(ev[i].kind, FlightKind::Retry);
    }

    EXPECT_STREQ(stats::telemetry::flightKindName(FlightKind::Retry),
                 "retry");
    EXPECT_STREQ(
        stats::telemetry::flightKindName(FlightKind::FatalRetry),
        "fatal-retry");
    const std::string line =
        stats::telemetry::describeFlightEvent(ev.front());
    EXPECT_NE(line.find("retry"), std::string::npos) << line;

    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.totalRecorded(), 0u);
}

// ------------------------------------------------- trace writer

/** Minimal JSON string unescape (the inverse of the writer's escape
 *  set) so the escaping test can prove a true round trip. */
std::string
unescapeJsonString(const std::string& s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
            const int code = std::stoi(s.substr(i + 1, 4), nullptr, 16);
            out += static_cast<char>(code);
            i += 4;
            break;
        }
        default: ADD_FAILURE() << "unknown escape \\" << s[i];
        }
    }
    return out;
}

TEST(TraceWriterEscaping, NamesRoundTripThroughJson)
{
    // The regression this guards: event names with quotes, slashes,
    // tabs, newlines or raw control bytes used to be spliced into the
    // JSON verbatim, producing output chrome://tracing rejects.
    const std::string evil =
        std::string("q\"uo\\te\nnl\ttab") + '\x01' + "ctl";
    stats::TraceWriter tw;
    tw.record(0, evil, 0.0, 10.0);
    const std::string json = tw.toJson();

    const std::string esc = "q\\\"uo\\\\te\\nnl\\ttab\\u0001ctl";
    EXPECT_NE(json.find(esc), std::string::npos) << json;
    // No raw control bytes or unescaped quotes-in-name survive.
    for (char ch : json)
        EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);

    // Round trip: the escaped form decodes back to the original.
    EXPECT_EQ(unescapeJsonString(esc), evil);
}

TEST(TraceWriter, TimeBaseStitchingAndMetadata)
{
    stats::TraceWriter tw;
    tw.setProcessName(stats::TraceWriter::kRunPid, "run");
    tw.setThreadName(stats::TraceWriter::kRunPid,
                     stats::TraceWriter::kFaultTid, "faults");

    EXPECT_DOUBLE_EQ(tw.timeBase(), 0.0);
    tw.advanceTimeBase(100.0);
    tw.advanceTimeBase(50.0);
    EXPECT_DOUBLE_EQ(tw.timeBase(), 150.0);

    // Relative records get the base folded in; Abs records do not.
    tw.span(1, 1, "rel", 0.0, 10.0);
    tw.instant(3, 1, "rel-i", 5.0);
    tw.spanAbs(3, 3, "abs", 150.0, 160.0);
    tw.instantAbs(3, 1, "abs-i", 155.0);
    EXPECT_EQ(tw.eventCount(), 4u);
    EXPECT_EQ(tw.instantCount(), 2u);

    const std::string json = tw.toJson();
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"run\""), std::string::npos);
    EXPECT_NE(json.find("\"faults\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // 150 ns base + 0 rel = 0.15 us, same instant as the abs span.
    EXPECT_NE(json.find("0.15"), std::string::npos) << json;
}

// --------------------------------------- runtime publishing

/** One AllReduce with telemetry armed; keeps everything alive for
 *  post-run inspection. */
struct TelemetryRun
{
    std::unique_ptr<Telemetry> telem;
    std::unique_ptr<stats::TraceWriter> trace;
    std::unique_ptr<sim::EventQueue> queue;
    std::unique_ptr<runtime::CommRuntime> comm;
    TimeNs duration = 0.0;
};

TelemetryRun
runOneInstrumented(const Topology& topo, runtime::RuntimeConfig cfg)
{
    TelemetryRun run;
    run.telem = std::make_unique<Telemetry>();
    run.trace = std::make_unique<stats::TraceWriter>();
    run.telem->trace = run.trace.get();
    cfg.telemetry = run.telem.get();
    run.queue = std::make_unique<sim::EventQueue>();
    run.comm =
        std::make_unique<runtime::CommRuntime>(*run.queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e8;
    req.chunks = 8;
    const int id = run.comm->issue(req);
    run.queue->run();
    run.comm->finalizeStats();
    run.duration = run.comm->record(id).duration();
    return run;
}

TEST(TelemetryRuntime, SingleCollectivePublishesCoreMetrics)
{
    const Topology topo = presets::byName("2D-SW_SW");
    const auto run =
        runOneInstrumented(topo, runtime::themisScfConfig());
    const auto& reg = run.telem->metrics;

    const auto* issued = reg.findCounter("runtime.collectives.issued");
    const auto* done = reg.findCounter("runtime.collectives.completed");
    ASSERT_NE(issued, nullptr);
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(issued->value(), 1u);
    EXPECT_EQ(done->value(), 1u);

    const auto* dur = reg.findHistogram("runtime.collective_ns");
    ASSERT_NE(dur, nullptr);
    EXPECT_EQ(dur->count(), 1u);
    EXPECT_DOUBLE_EQ(dur->sum(), run.duration);

    // chunk_ops accumulates at epoch close; a bare collective closes
    // no epoch, but the instrument is registered up front.
    ASSERT_NE(reg.findCounter("runtime.chunk_ops"), nullptr);

    // finalizeStats publishes the per-engine gauges (1-based dims,
    // matching the report tables' "dim1 (SW)" labels).
    const auto* cap =
        reg.findGauge("engine.dim1.channel.capacity_gbps");
    ASSERT_NE(cap, nullptr);
    EXPECT_GT(cap->value(), 0.0);
    const auto* done_ops = reg.findGauge("engine.dim1.completed_ops");
    ASSERT_NE(done_ops, nullptr);
    EXPECT_GT(done_ops->value(), 0.0);
    EXPECT_NE(reg.findGauge("engine.dim2.channel.progressed_bytes"),
              nullptr);

    // The flight recorder saw both edges of the collective.
    bool saw_issue = false, saw_done = false;
    for (const auto& e : run.telem->recorder.events()) {
        saw_issue |= e.kind == FlightKind::CollectiveIssued;
        saw_done |= e.kind == FlightKind::CollectiveDone;
    }
    EXPECT_TRUE(saw_issue);
    EXPECT_TRUE(saw_done);

    // And the fabric rows carry the chunk-op spans.
    EXPECT_GT(run.trace->eventCount(), 0u);
    EXPECT_NE(run.trace->toJson().find("\"fabric\""),
              std::string::npos);
}

TEST(TelemetryRuntime, FaultAndRetryMetricsMatchTheCounters)
{
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    tl.addFlap(0, 1.0e4, 5.0e4);
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    const auto run = runOneInstrumented(topo, cfg);
    const auto& reg = run.telem->metrics;
    const auto& ut = run.comm->utilization();

    const auto* applied = reg.findCounter("fault.events_applied");
    ASSERT_NE(applied, nullptr);
    EXPECT_EQ(applied->value(), 2u); // down + up edge

    const auto* retries = reg.findCounter("fault.retries");
    ASSERT_NE(retries, nullptr);
    EXPECT_EQ(retries->value(), ut.retries()[0] + ut.retries()[1]);
    EXPECT_GT(retries->value(), 0u);

    const auto* backoff =
        reg.findHistogram("fault.retry_backoff_ns");
    ASSERT_NE(backoff, nullptr);
    EXPECT_EQ(backoff->count(), retries->value());
    EXPECT_GT(backoff->max(), 0.0);

    const auto* lost = reg.findHistogram("fault.retry_lost_bytes");
    ASSERT_NE(lost, nullptr);
    EXPECT_NEAR(lost->sum(),
                ut.retryLostBytes()[0] + ut.retryLostBytes()[1],
                1e-6);

    bool saw_fault = false, saw_retry = false;
    for (const auto& e : run.telem->recorder.events()) {
        saw_fault |= e.kind == FlightKind::FaultEvent;
        saw_retry |= e.kind == FlightKind::Retry;
    }
    EXPECT_TRUE(saw_fault);
    EXPECT_TRUE(saw_retry);
}

TEST(TelemetryTrace, FaultInstantPrecedesReplanUnderAdaptation)
{
    // A straggler edge mid-run with adaptation armed: the trace must
    // carry the fault instant first, then the re-plan instant the
    // adaptation layer reacts with -- the `--faults --adapt` ordering
    // the Perfetto timeline sells.
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    tl.addStraggler(0, 1.0e4, 0.5);
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    cfg.adaptation.enabled = true;
    const auto run = runOneInstrumented(topo, cfg);

    const auto* replans =
        run.telem->metrics.findCounter("adapt.replans");
    ASSERT_NE(replans, nullptr);
    EXPECT_GE(replans->value(), 1u);
    EXPECT_EQ(replans->value(), run.comm->replanCount());

    bool saw_replan = false;
    for (const auto& e : run.telem->recorder.events())
        saw_replan |= e.kind == FlightKind::Replan;
    EXPECT_TRUE(saw_replan);

    const std::string json = run.trace->toJson();
    const auto fault_at = json.find("fault: straggler");
    const auto replan_at = json.find("re-plan");
    ASSERT_NE(fault_at, std::string::npos) << json;
    ASSERT_NE(replan_at, std::string::npos) << json;
    EXPECT_LT(fault_at, replan_at);
}

// ------------------------------------- convergence bit-identity

workload::ModelGraph
smallHybridModel()
{
    workload::ModelGraph g;
    g.name = "small-hybrid";
    g.parallel = workload::ParallelSpec::hybrid(16);
    g.fused_dp_grads = false;
    for (int i = 0; i < 3; ++i) {
        workload::Layer l;
        l.name = "l" + std::to_string(i);
        l.fwd_flops = 2.0e11;
        l.bwd_flops = 4.0e11;
        l.dp_grad_bytes = 6.0e6;
        l.fwd_comm.push_back({CollectiveType::AllReduce, 4.0e6,
                              workload::CommDomain::ModelParallel,
                              true});
        l.bwd_comm.push_back({CollectiveType::AllReduce, 4.0e6,
                              workload::CommDomain::ModelParallel,
                              true});
        g.layers.push_back(l);
    }
    return g;
}

TEST(TelemetryConvergence, ReplayBitIdenticalWithTelemetryOn)
{
    const Topology topo = presets::make2DSwSw();
    workload::ConvergenceOptions opts;
    opts.iterations = 8;

    auto plain_cfg = runtime::themisScfConfig();
    sim::EventQueue q1;
    runtime::CommRuntime plain(q1, topo, plain_cfg);
    workload::TrainingLoop l1(plain, smallHybridModel());
    const auto off = runConverged(plain, l1, opts);

    Telemetry telem;
    stats::TraceWriter trace;
    telem.trace = &trace;
    auto cfg = runtime::themisScfConfig();
    cfg.telemetry = &telem;
    sim::EventQueue q2;
    runtime::CommRuntime comm(q2, topo, cfg);
    workload::TrainingLoop l2(comm, smallHybridModel());
    const auto on = runConverged(comm, l2, opts);

    // Telemetry is a pure observer: armed vs. unarmed runs produce
    // bit-identical results even through analytic replay.
    EXPECT_TRUE(resultsBitIdentical(off, on));
    EXPECT_GT(on.replayed_iterations, 0);

    const auto* replayed =
        telem.metrics.findCounter("replay.epochs_replayed");
    ASSERT_NE(replayed, nullptr);
    EXPECT_EQ(replayed->value(),
              static_cast<std::uint64_t>(on.replayed_iterations));

    // Simulated epochs closed with their chunk-op totals.
    const auto* ops =
        telem.metrics.findCounter("runtime.chunk_ops");
    ASSERT_NE(ops, nullptr);
    EXPECT_GT(ops->value(), 0u);

    // The replay span stitches the skipped rounds into the timeline.
    EXPECT_NE(trace.toJson().find("replay x"), std::string::npos);
    // Time base covers every epoch the queue rebased away.
    EXPECT_GT(trace.timeBase(), 0.0);
}

// --------------------------------------------------- run report

TEST(TelemetryReport, RoundTripsSectionsMetricsAndRecorder)
{
    MetricsRegistry reg;
    reg.counter("runtime.collectives.issued").add(3);
    reg.gauge("engine.dim0.channel.capacity_gbps").set(300.0);
    auto& h = reg.histogram("runtime.collective_ns");
    for (int i = 1; i <= 10; ++i)
        h.record(1000.0 * i);
    FlightRecorder rec(8);
    rec.record({1.0, FlightKind::Replan, 0, 1, 0.5});

    RunReport report("single");
    report.setInfo("topology", "2D-SW_SW");
    report.setNumber("time_ns", 1.25e6);
    report.addSection("jobs", "[{\"job\":0}]");
    report.attachMetrics(&reg);
    report.attachRecorder(&rec);

    const std::string j = report.toJson();
    EXPECT_NE(j.find(RunReport::kSchemaVersion), std::string::npos);
    EXPECT_NE(j.find("\"mode\":\"single\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"topology\":\"2D-SW_SW\""), std::string::npos);
    EXPECT_NE(j.find("time_ns"), std::string::npos);
    EXPECT_NE(j.find("\"jobs\":[{\"job\":0}]"), std::string::npos);
    EXPECT_NE(j.find("runtime.collectives.issued"), std::string::npos);
    EXPECT_NE(j.find("\"p99\""), std::string::npos);
    EXPECT_NE(j.find("\"flight_recorder\""), std::string::npos);
    EXPECT_NE(j.find("\"re-plan\""), std::string::npos);
    EXPECT_NE(j.find("\"dropped\":0"), std::string::npos);

    // Identical inputs serialize byte-identically (sorted keys).
    EXPECT_EQ(j, report.toJson());
}

// ------------------------------------------- fatal postmortem

TEST(TelemetryFatal, FlightRecorderCapturesRetryExhaustion)
{
    // The adaptation_test exhaustion recipe with telemetry armed: the
    // run dies with RetryExhaustedError, and the flight recorder must
    // hold the fatal edge (the postmortem path the CLI dumps).
    const Topology topo = presets::byName("2D-SW_SW");
    FaultTimeline tl;
    for (int k = 0; k < 8; ++k)
        tl.addLinkFlap(0, k % 2, 1.0e4 + 2.0e3 * k, 1.0e3);
    auto cfg = runtime::themisScfConfig();
    cfg.faults = &tl;
    cfg.retry.max_attempts = 1;
    cfg.retry.backoff_base_ns = 1.0e3;
    Telemetry telem;
    cfg.telemetry = &telem;

    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e8;
    req.chunks = 4;
    comm.issue(req);
    EXPECT_THROW(queue.run(), runtime::RetryExhaustedError);

    const auto* fatal =
        telem.metrics.findCounter("fault.fatal_retries");
    ASSERT_NE(fatal, nullptr);
    EXPECT_GE(fatal->value(), 1u);

    bool saw_fatal = false;
    FlightEvent fe;
    for (const auto& e : telem.recorder.events())
        if (e.kind == FlightKind::FatalRetry) {
            saw_fatal = true;
            fe = e;
        }
    ASSERT_TRUE(saw_fatal);
    EXPECT_EQ(fe.dim, 0);
    const std::string line =
        stats::telemetry::describeFlightEvent(fe);
    EXPECT_NE(line.find("fatal-retry"), std::string::npos) << line;
}

// ------------------------------------------- cluster publishing

TEST(TelemetryCluster, PerJobMetricsDeadlineMissesAndTraceRows)
{
    const Topology topo = presets::byName("2D-SW_SW");
    Telemetry telem;
    stats::TraceWriter trace;
    telem.trace = &trace;
    auto cfg = runtime::themisScfConfig();
    cfg.telemetry = &telem;

    std::vector<cluster::JobSpec> specs;
    specs.push_back(
        cluster::JobSpec::training(models::byName("DLRM"), 2));
    // 1 ns deadline: every request misses, slack goes negative (the
    // underflow-bucket case the slack histogram exists for).
    auto infer = cluster::JobSpec::periodicInference(1.6e7, 1.0e5, 1.0);
    infer.max_requests = 3;
    specs.push_back(infer);

    sim::EventQueue q;
    cluster::Cluster cl(q, topo, cfg, std::move(specs));
    const auto rep = cl.run();
    ASSERT_EQ(rep.jobs.size(), 2u);
    const auto& reg = telem.metrics;

    // Per-job unit histograms feed the report tails.
    const auto* iters =
        reg.findHistogram("cluster.job.0.iteration_ns");
    ASSERT_NE(iters, nullptr);
    EXPECT_EQ(iters->count(), 2u);
    EXPECT_GE(rep.jobs[0].unit_p99, 0.0);
    EXPECT_GE(rep.jobs[0].unit_max, rep.jobs[0].unit_p99);

    const auto* lat = reg.findHistogram("cluster.job.1.request_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count(), 3u);
    EXPECT_DOUBLE_EQ(rep.jobs[1].unit_max, lat->max());

    const auto* slack =
        reg.findHistogram("cluster.job.1.deadline_slack_ns");
    ASSERT_NE(slack, nullptr);
    EXPECT_EQ(slack->count(), 3u);
    EXPECT_LT(slack->max(), 0.0); // every request blew the deadline

    const auto* misses =
        reg.findCounter("cluster.job.1.deadline_misses");
    ASSERT_NE(misses, nullptr);
    EXPECT_EQ(misses->value(), 3u);
    EXPECT_EQ(rep.jobs[1].deadline_misses, 3);

    bool saw_miss = false;
    for (const auto& e : telem.recorder.events())
        saw_miss |= e.kind == FlightKind::DeadlineMiss;
    EXPECT_TRUE(saw_miss);

    // The jobs process carries per-job request / iteration spans.
    const std::string json = trace.toJson();
    EXPECT_NE(json.find("\"jobs\""), std::string::npos);
    EXPECT_NE(json.find("iter#"), std::string::npos);
    EXPECT_NE(json.find("req#"), std::string::npos);
    EXPECT_NE(json.find("deadline miss"), std::string::npos);
}

// ------------------------------------------------ table columns

TEST(TelemetryTables, JobAndFaultTablesRenderTailColumns)
{
    std::vector<stats::JobUsageRow> jobs;
    stats::JobUsageRow with;
    with.name = "infer:16.00 MB";
    with.kind = "infer";
    with.units = 3;
    with.mean_unit = 1.0e6;
    with.unit_p99 = 1.5e6;
    with.unit_max = 2.0e6;
    jobs.push_back(with);
    stats::JobUsageRow without;
    without.name = "train:DLRM";
    without.kind = "train";
    jobs.push_back(without);
    const std::string out = stats::renderJobTable(jobs);
    EXPECT_NE(out.find("p99 unit"), std::string::npos);
    EXPECT_NE(out.find("Max unit"), std::string::npos);
    // The telemetry-less row renders "-" in the tail columns.
    EXPECT_NE(out.find('-'), std::string::npos);

    std::vector<stats::FaultDimRow> dims;
    stats::FaultDimRow d0;
    d0.name = "dim0 (SW)";
    d0.retries = 7;
    d0.lost_bytes = 1.5e6;
    d0.backoff_p99 = 4.0e3;
    d0.backoff_max = 8.0e3;
    dims.push_back(d0);
    dims.push_back({"dim1 (SW)"});
    const std::string ftab = stats::renderFaultTable(dims);
    EXPECT_NE(ftab.find("Backoff p99"), std::string::npos);
    EXPECT_NE(ftab.find("Backoff max"), std::string::npos);
    EXPECT_NE(ftab.find("dim0 (SW)"), std::string::npos);
}

} // namespace
} // namespace themis
