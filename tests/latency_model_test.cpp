/**
 * @file
 * Tests of the Themis Latency Model (Fig 6): chunk-op predictions,
 * per-schedule dimension loads, scoped sub-dimension groups.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/latency_model.hpp"
#include "topology/presets.hpp"

namespace themis {
namespace {

TEST(LatencyModel, FromTopologyKeepsDims)
{
    const auto topo = presets::make3DSwSwSwHetero();
    const auto model = LatencyModel::fromTopology(topo);
    EXPECT_EQ(model.numDims(), 3);
    EXPECT_EQ(model.dimSizes(), (std::vector<int>{16, 8, 8}));
}

TEST(LatencyModel, TransferTimeMatchesClosedForm)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    // dim1: 16 peers at 100 GB/s; RS of 16 MB moves 15 MB -> 150 us.
    EXPECT_NEAR(model.transferTime(Phase::ReduceScatter, 16.0e6, 0),
                150.0e3, 1.0);
}

TEST(LatencyModel, OpTimeAddsFixedDelay)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    // dim1 is a 16-wide switch: 4 halving-doubling steps of 700 ns.
    EXPECT_NEAR(model.opTime(Phase::ReduceScatter, 16.0e6, 0) -
                    model.transferTime(Phase::ReduceScatter, 16.0e6, 0),
                4.0 * 700.0, 1e-6);
}

TEST(LatencyModel, CollectiveFixedDelayDoublesForAllReduce)
{
    const auto model =
        LatencyModel::fromTopology(presets::make3DSwSwSwHomo());
    EXPECT_DOUBLE_EQ(
        model.collectiveFixedDelay(CollectiveType::AllReduce, 2),
        2.0 * model.collectiveFixedDelay(CollectiveType::ReduceScatter,
                                         2));
}

TEST(LatencyModel, StageLoadsFollowShrinkingSizes)
{
    // Fig 5 micro-example: 4x4, BW(dim1)=2*BW(dim2).
    DimensionConfig d1, d2;
    d1.kind = d2.kind = DimKind::Switch;
    d1.size = d2.size = 4;
    d1.link_bw_gbps = 384.0; // 48 GB/s
    d2.link_bw_gbps = 192.0; // 24 GB/s
    d1.links_per_npu = d2.links_per_npu = 1;
    d1.step_latency_ns = d2.step_latency_ns = 0.0;
    const LatencyModel model({d1, d2});

    ChunkSchedule sched;
    sched.size = 64.0e6;
    sched.stages = baselineStages(CollectiveType::AllReduce, 2);
    const auto loads = model.stageLoads(sched.size, sched.stages);
    ASSERT_EQ(loads.size(), 2u);
    // dim1: RS 48MB + AG 48MB at 48 GB/s = 2 units (1 unit = 1 ms).
    EXPECT_NEAR(loads[0], 2.0e6, 1.0);
    // dim2: RS 12MB + AG 12MB at 24 GB/s = 1 unit.
    EXPECT_NEAR(loads[1], 1.0e6, 1.0);
}

TEST(LatencyModel, MirroredAgLoadsEqualRsLoads)
{
    const auto model =
        LatencyModel::fromTopology(presets::make4DRingFcRingSw());
    const Bytes chunk = 16.0e6;
    const std::vector<int> rs{2, 0, 3, 1};
    const std::vector<int> ag{1, 3, 0, 2};
    const auto rs_only = model.stageLoads(
        chunk, makeStages(CollectiveType::ReduceScatter, rs, {}));
    const auto full = model.stageLoads(
        chunk, makeStages(CollectiveType::AllReduce, rs, ag));
    for (std::size_t d = 0; d < rs_only.size(); ++d)
        EXPECT_NEAR(full[d], 2.0 * rs_only[d], 1e-6) << "dim " << d;
}

TEST(LatencyModel, ScopeSelectsAndResizesDims)
{
    const auto topo = presets::make2DSwSw(); // 16 x 64
    // Transformer-1T style MP scope: all of dim1, 8 of dim2's 64.
    const auto model = LatencyModel::fromScope(
        topo, {ScopeDim{0, 16}, ScopeDim{1, 8}});
    EXPECT_EQ(model.numDims(), 2);
    EXPECT_EQ(model.dim(0).size, 16);
    EXPECT_EQ(model.dim(1).size, 8);
    // Bandwidth/latency stay physical.
    EXPECT_DOUBLE_EQ(bwToGbps(model.dim(1).bandwidth()), 800.0);
    EXPECT_DOUBLE_EQ(model.dim(1).step_latency_ns, 1700.0);
}

TEST(LatencyModel, ScopeSubgroupShrinksFixedDelay)
{
    const auto topo = presets::make2DSwSw();
    const auto full = LatencyModel::fromScope(topo, {ScopeDim{1, 0}});
    const auto sub = LatencyModel::fromScope(topo, {ScopeDim{1, 8}});
    // 64-wide halving-doubling: 6 steps; 8-wide: 3 steps.
    EXPECT_DOUBLE_EQ(
        full.collectiveFixedDelay(CollectiveType::ReduceScatter, 0),
        6.0 * 1700.0);
    EXPECT_DOUBLE_EQ(
        sub.collectiveFixedDelay(CollectiveType::ReduceScatter, 0),
        3.0 * 1700.0);
}

TEST(LatencyModel, ScopeRejectsOversizedGroup)
{
    const auto topo = presets::make2DSwSw();
    EXPECT_THROW(LatencyModel::fromScope(topo, {ScopeDim{0, 32}}),
                 ConfigError);
}

TEST(ChunkSchedule, EnteringSizeWalksStages)
{
    ChunkSchedule sched;
    sched.size = 64.0e6;
    sched.stages = baselineStages(CollectiveType::AllReduce, 2);
    const std::vector<int> sizes{4, 4};
    EXPECT_DOUBLE_EQ(enteringSize(sched, sizes, 0), 64.0e6);
    EXPECT_DOUBLE_EQ(enteringSize(sched, sizes, 1), 16.0e6);
    EXPECT_DOUBLE_EQ(enteringSize(sched, sizes, 2), 4.0e6);  // AG dim2
    EXPECT_DOUBLE_EQ(enteringSize(sched, sizes, 3), 16.0e6); // AG dim1
    EXPECT_DOUBLE_EQ(enteringSize(sched, sizes, 4), 64.0e6); // done
}

TEST(ChunkSchedule, BaselineStagesShape)
{
    const auto ar = baselineStages(CollectiveType::AllReduce, 3);
    ASSERT_EQ(ar.size(), 6u);
    EXPECT_EQ(ar[0], (StageAssignment{Phase::ReduceScatter, 0}));
    EXPECT_EQ(ar[2], (StageAssignment{Phase::ReduceScatter, 2}));
    EXPECT_EQ(ar[3], (StageAssignment{Phase::AllGather, 2}));
    EXPECT_EQ(ar[5], (StageAssignment{Phase::AllGather, 0}));

    const auto ag = baselineStages(CollectiveType::AllGather, 3);
    ASSERT_EQ(ag.size(), 3u);
    EXPECT_EQ(ag[0].dim, 2); // AG starts at the outermost dimension
}

TEST(ChunkSchedule, MakeStagesRejectsNonPermutation)
{
    EXPECT_DEATH(
        makeStages(CollectiveType::ReduceScatter, {0, 0}, {}),
        "permutation");
}

} // namespace
} // namespace themis
