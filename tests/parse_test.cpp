/**
 * @file
 * Tests of the textual topology parser (CLI/config front door).
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topology/parse.hpp"
#include "topology/presets.hpp"

namespace themis {
namespace {

TEST(Parse, MinimalDimension)
{
    const auto t = parseTopology("t", "SW:8:400");
    ASSERT_EQ(t.numDims(), 1);
    EXPECT_EQ(t.dim(0).kind, DimKind::Switch);
    EXPECT_EQ(t.dim(0).size, 8);
    EXPECT_DOUBLE_EQ(t.dim(0).link_bw_gbps, 400.0);
    EXPECT_EQ(t.dim(0).links_per_npu, 1);
    EXPECT_DOUBLE_EQ(t.dim(0).step_latency_ns, 700.0);
}

TEST(Parse, FullPaperTopologyRoundTrips)
{
    const std::string spec =
        "Ring:4:1500x2:20,FC:8:200x7:700,Ring:4:200x6:700,"
        "SW:8:800:1700";
    const auto t = parseTopology("4D", spec);
    const auto ref = presets::make4DRingFcRingSw();
    ASSERT_EQ(t.numDims(), ref.numDims());
    for (int d = 0; d < t.numDims(); ++d) {
        EXPECT_EQ(t.dim(d).kind, ref.dim(d).kind) << d;
        EXPECT_EQ(t.dim(d).size, ref.dim(d).size) << d;
        EXPECT_DOUBLE_EQ(t.dim(d).bandwidth(), ref.dim(d).bandwidth())
            << d;
        EXPECT_DOUBLE_EQ(t.dim(d).step_latency_ns,
                         ref.dim(d).step_latency_ns)
            << d;
    }
    // Spec -> Topology -> spec is stable.
    EXPECT_EQ(topologySpec(t), spec);
}

TEST(Parse, OffloadAttribute)
{
    const auto t = parseTopology("t", "SW:6:400:1700:offload");
    EXPECT_TRUE(t.dim(0).in_network_offload);
    EXPECT_EQ(t.dim(0).size, 6); // non-power-of-two OK with offload

    const auto t2 = parseTopology("t2", "SW:8:400:offload");
    EXPECT_TRUE(t2.dim(0).in_network_offload);
    EXPECT_DOUBLE_EQ(t2.dim(0).step_latency_ns, 700.0); // default
}

TEST(Parse, CaseInsensitiveKinds)
{
    EXPECT_EQ(parseTopology("t", "ring:4:100x2").dim(0).kind,
              DimKind::Ring);
    EXPECT_EQ(parseTopology("t", "fc:4:100x3").dim(0).kind,
              DimKind::FullyConnected);
}

TEST(Parse, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseTopology("t", ""), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8"), ConfigError);
    EXPECT_THROW(parseTopology("t", "Mesh:8:100"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:abc:100"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:100x"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:100:700:bogus"),
                 ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:100:700:offload:extra"),
                 ConfigError);
    // Validation errors surface too: 6-wide switch without offload.
    EXPECT_THROW(parseTopology("t", "SW:6:100"), ConfigError);
}

TEST(Parse, RejectsNonPositiveAndNonFiniteBandwidth)
{
    EXPECT_THROW(parseTopology("t", "SW:8:0"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:-100"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:nan"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:inf"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:-inf"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:100x0"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:100x-2"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:100x2.5"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:400:nan"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8:400:-5"), ConfigError);
    EXPECT_THROW(parseTopology("t", "SW:8.5:400"), ConfigError);
}

TEST(Parse, ErrorsNameTheOffendingDimension)
{
    // A bad field in a multi-dimension spec points at its dimension
    // index and the offending field, not just the raw number.
    try {
        parseTopology("t", "Ring:4:100,SW:8:nan,SW:8:400");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("dimension 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bandwidth"), std::string::npos) << msg;
    }
    try {
        parseTopology("t", "Ring:4:100,FC:8:200,SW:8:0");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("dimension 2"), std::string::npos) << msg;
    }
}

TEST(Parse, EveryPresetSpecRoundTrips)
{
    for (const auto& topo : presets::allTopologies()) {
        const auto spec = topologySpec(topo);
        const auto parsed = parseTopology(topo.name(), spec);
        EXPECT_EQ(parsed.numDims(), topo.numDims()) << topo.name();
        EXPECT_DOUBLE_EQ(parsed.totalBandwidth(),
                         topo.totalBandwidth())
            << topo.name();
        EXPECT_EQ(topologySpec(parsed), spec) << topo.name();
    }
}

} // namespace
} // namespace themis
