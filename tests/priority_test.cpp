/**
 * @file
 * Weighted-fairness dataplane tests: weighted-GPS channel invariants
 * (weight-proportional sharing, byte conservation, weight-aware
 * rebasing), equal-weight ≡ egalitarian bit-identical equivalence
 * across fig08/fig10/fig12-shaped harnesses, tier precedence and
 * no-starvation in the dimension engines, the priority-aware Themis
 * scheduler variant, priority-extended plan-cache keys, the step-plan
 * memo, and per-class statistics.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/priority_policy.hpp"
#include "core/themis_scheduler.hpp"
#include "models/model_zoo.hpp"
#include "runtime/comm_runtime.hpp"
#include "runtime/dimension_engine.hpp"
#include "sim/shared_channel.hpp"
#include "topology/parse.hpp"
#include "topology/presets.hpp"
#include "workload/training_loop.hpp"

namespace themis {
namespace {

using sim::ChannelFairness;
using sim::EventQueue;
using sim::SharedChannel;

// ---------------------------------------------------------- channel

TEST(WeightedChannel, SharesSplitByWeight)
{
    EventQueue q;
    SharedChannel ch(q, 100.0); // 100 B/ns
    TimeNs t_heavy = -1.0, t_light = -1.0;
    // Weight 3 moving 3 MB and weight 1 moving 1 MB have the same
    // virtual demand (1e6), so they drain together: combined rate
    // 100 B/ns split 75/25.
    ch.begin(3.0e6, 3.0, [&] { t_heavy = q.now(); }, 0);
    ch.begin(1.0e6, 1.0, [&] { t_light = q.now(); }, 1);
    q.run();
    EXPECT_DOUBLE_EQ(t_heavy, 4.0e4);
    EXPECT_DOUBLE_EQ(t_light, 4.0e4);
    ch.sync();
    EXPECT_NEAR(ch.progressedBytes(), 4.0e6, 1e-3);
    EXPECT_NEAR(ch.classProgressedBytes(0), 3.0e6, 1e-3);
    EXPECT_NEAR(ch.classProgressedBytes(1), 1.0e6, 1e-3);
}

TEST(WeightedChannel, HeavyFlowDrainsFirstThenRateRises)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    TimeNs t_a = -1.0, t_b = -1.0;
    // A: 2 MB at weight 2 (virtual demand 1e6); B: 2 MB at weight 1
    // (virtual demand 2e6). Phase 1 rate split 2:1 — A drains at
    // t = 3e6/100 = 3e4 having moved 2 MB while B moved 1 MB. B's
    // remaining 1 MB then runs alone: t = 3e4 + 1e4.
    ch.begin(2.0e6, 2.0, [&] { t_a = q.now(); });
    ch.begin(2.0e6, 1.0, [&] { t_b = q.now(); });
    q.run();
    EXPECT_DOUBLE_EQ(t_a, 3.0e4);
    EXPECT_DOUBLE_EQ(t_b, 4.0e4);
}

TEST(WeightedChannel, ByteConservationUnderMixedWeights)
{
    EventQueue q;
    SharedChannel ch(q, 64.0);
    const double weights[] = {0.5, 1.0, 2.0, 4.0, 8.0};
    const Bytes sizes[] = {3.0e5, 1.1e6, 7.0e6, 2.3e6, 9.9e5};
    Bytes expected[2] = {0.0, 0.0};
    int done = 0;
    for (int i = 0; i < 5; ++i) {
        const int cls = i % 2;
        expected[cls] += sizes[i];
        ch.begin(sizes[i], weights[i], [&] { ++done; }, cls);
    }
    // One aborted transfer: its partial progress stays accounted but
    // its remainder must vanish.
    const auto aborted = ch.begin(5.0e6, 2.0, [&] { ++done; }, 0);
    q.scheduleAfter(10.0, [&] { ch.abort(aborted); });
    q.run();
    ch.sync();
    EXPECT_EQ(done, 5);
    EXPECT_EQ(ch.activeCount(), 0u);
    // The aborted flow progressed for 10 ns within a weight pool; its
    // contribution is whatever it received before the abort. Total
    // conservation: completed bytes plus that partial service.
    const Bytes total = ch.progressedBytes();
    const Bytes cls_sum =
        ch.classProgressedBytes(0) + ch.classProgressedBytes(1);
    EXPECT_NEAR(total, cls_sum, 1e-3);
    EXPECT_GE(total, expected[0] + expected[1] - 1e-3);
    // Per-class accounting covers each class's completed demand (the
    // abort only ever adds on top of class 0).
    EXPECT_GE(ch.classProgressedBytes(0), expected[0] - 1e-3);
    EXPECT_NEAR(ch.classProgressedBytes(1), expected[1], 1e-3);
    EXPECT_GT(ch.classBusyTime(0), 0.0);
    EXPECT_GT(ch.classBusyTime(1), 0.0);
}

TEST(WeightedChannel, WeightAwareRebasePastPetascale)
{
    // Sequential petascale transfers at non-unit weight cross the
    // 1e9-virtual-byte rebase threshold millions of times over (the
    // weight halving doubles virtual demand); conservation and serial
    // timing must stay exact.
    EventQueue q;
    SharedChannel ch(q, 1000.0);
    constexpr Bytes kTransfer = 1.0e12;
    constexpr int kCount = 1200; // 2.4e15 cumulative virtual bytes
    int done = 0;
    std::function<void()> next = [&] {
        ++done;
        if (done < kCount)
            ch.begin(kTransfer, 0.5, next, done % 2);
    };
    ch.begin(kTransfer, 0.5, next, 0);
    q.run();
    ch.sync();
    EXPECT_EQ(done, kCount);
    EXPECT_NEAR(ch.progressedBytes(), kTransfer * kCount, 1.0);
    EXPECT_NEAR(q.now(), kTransfer * kCount / 1000.0, 1.0);
}

TEST(WeightedChannel, RebaseAcrossConcurrentMixedWeights)
{
    EventQueue q;
    SharedChannel ch(q, 100.0);
    constexpr Bytes kA = 1.2e15; // weight 2 -> virtual demand 6e14
    constexpr Bytes kB = 1.5e15; // weight 1 -> virtual demand 1.5e15
    TimeNs t_a = -1.0, t_b = -1.0;
    ch.begin(kA, 2.0, [&] { t_a = q.now(); }, 0);
    ch.begin(kB, 1.0, [&] { t_b = q.now(); }, 1);
    q.run();
    ch.sync();
    // Phase 1: A at 2/3 capacity, B at 1/3. A drains at
    // kA / (2/3 * 100); B then finishes its remainder alone.
    const TimeNs expect_a = kA / (100.0 * 2.0 / 3.0);
    const Bytes b_at_a = expect_a * 100.0 / 3.0;
    const TimeNs expect_b = expect_a + (kB - b_at_a) / 100.0;
    EXPECT_NEAR(t_a, expect_a, 1e-6 * expect_a);
    EXPECT_NEAR(t_b, expect_b, 1e-6 * expect_b);
    EXPECT_NEAR(ch.progressedBytes(), kA + kB, 2.0);
}

TEST(WeightedChannel, EqualWeightsBitIdenticalToEgalitarian)
{
    // The same staggered begin/abort script on a Weighted and an
    // Egalitarian channel must produce *bit-identical* completion
    // timestamps — unit weights make the arithmetic reduce
    // term-for-term.
    auto run = [](ChannelFairness fairness) {
        EventQueue q;
        SharedChannel ch(q, 37.5, fairness);
        std::vector<TimeNs> times;
        SharedChannel::TransferId victim = 0;
        for (int i = 0; i < 6; ++i) {
            q.scheduleAfter(static_cast<TimeNs>(i) * 13.0, [&, i] {
                const auto id = ch.begin(
                    1.0e5 * (i + 1) + 0.37 * i,
                    [&] { times.push_back(q.now()); });
                if (i == 3)
                    victim = id;
            });
        }
        q.scheduleAfter(5000.0, [&] { ch.abort(victim); });
        q.run();
        ch.sync();
        times.push_back(ch.progressedBytes());
        times.push_back(ch.busyTime());
        return times;
    };
    const auto weighted = run(ChannelFairness::Weighted);
    const auto egalitarian = run(ChannelFairness::Egalitarian);
    ASSERT_EQ(weighted.size(), egalitarian.size());
    for (std::size_t i = 0; i < weighted.size(); ++i)
        EXPECT_EQ(weighted[i], egalitarian[i]) << "index " << i;
}

// ------------------------------------------- runtime equivalence

runtime::RuntimeConfig
withChannelMode(runtime::RuntimeConfig cfg, bool egalitarian)
{
    cfg.legacy_egalitarian_channel = egalitarian;
    return cfg;
}

struct RunOutcome
{
    TimeNs duration = 0.0;
    double util = 0.0;

    bool
    operator==(const RunOutcome& o) const
    {
        return duration == o.duration && util == o.util;
    }
};

RunOutcome
runOnce(const Topology& topo, const runtime::RuntimeConfig& cfg,
        CollectiveType type, Bytes size, int chunks)
{
    EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = type;
    req.size = size;
    req.chunks = chunks;
    const int id = comm.issue(req);
    queue.run();
    comm.finalizeStats();
    return RunOutcome{comm.record(id).duration(),
                      comm.utilization().weightedUtilization()};
}

TEST(EgalitarianEquivalence, Fig08SizeSweepBitIdentical)
{
    // The fig08 harness shape: All-Reduce size sweep across the three
    // Table 3 scheduler configs. Weighted (all-unit weights) vs the
    // pre-refactor egalitarian channel must match bit-for-bit.
    const Topology topo = presets::byName("2D-SW_SW");
    const std::vector<runtime::RuntimeConfig> cfgs = {
        runtime::baselineConfig(), runtime::themisFifoConfig(),
        runtime::themisScfConfig()};
    for (const auto& cfg : cfgs) {
        for (Bytes size : {1.0e8, 5.0e8, 1.0e9}) {
            const RunOutcome weighted =
                runOnce(topo, withChannelMode(cfg, false),
                        CollectiveType::AllReduce, size, 64);
            const RunOutcome egalitarian =
                runOnce(topo, withChannelMode(cfg, true),
                        CollectiveType::AllReduce, size, 64);
            EXPECT_TRUE(weighted == egalitarian)
                << "size " << size << ": " << weighted.duration
                << " vs " << egalitarian.duration;
        }
    }
}

TEST(EgalitarianEquivalence, Fig10ChunkSweepBitIdentical)
{
    // The fig10 harness shape: chunks-per-collective sensitivity,
    // including enforced consistent orders (shadow simulation runs
    // through the same channels).
    const Topology topo = presets::byName("3D-SW_SW_SW_homo");
    for (int chunks : {4, 16, 64}) {
        for (bool enforce : {false, true}) {
            runtime::RuntimeConfig cfg = runtime::themisScfConfig();
            cfg.enforce_consistent_order = enforce;
            const RunOutcome weighted =
                runOnce(topo, withChannelMode(cfg, false),
                        CollectiveType::AllReduce, 5.0e8, chunks);
            const RunOutcome egalitarian =
                runOnce(topo, withChannelMode(cfg, true),
                        CollectiveType::AllReduce, 5.0e8, chunks);
            EXPECT_TRUE(weighted == egalitarian)
                << chunks << " chunks, enforce " << enforce;
        }
    }
}

TEST(EgalitarianEquivalence, Fig12TrainingIterationBitIdentical)
{
    // The fig12 harness shape: a full training iteration (compute +
    // blocking/non-blocking collectives with tier tags) must be
    // unaffected by the channel formulation under the default uniform
    // policy.
    const Topology topo = presets::byName("2D-SW_SW");
    const auto workloads = models::paperWorkloads();
    ASSERT_GE(workloads.size(), 2u);
    for (std::size_t w = 0; w < 2; ++w) {
        auto run_iter = [&](bool egalitarian) {
            EventQueue queue;
            runtime::CommRuntime comm(
                queue, topo,
                withChannelMode(runtime::themisScfConfig(),
                                egalitarian));
            workload::TrainingLoop loop(comm,
                                        models::byName(workloads[w]));
            return loop.runIteration();
        };
        const auto a = run_iter(false);
        const auto b = run_iter(true);
        EXPECT_EQ(a.fwd_compute, b.fwd_compute) << workloads[w];
        EXPECT_EQ(a.bwd_compute, b.bwd_compute) << workloads[w];
        EXPECT_EQ(a.exposed_mp, b.exposed_mp) << workloads[w];
        EXPECT_EQ(a.exposed_dp, b.exposed_dp) << workloads[w];
        EXPECT_EQ(a.total, b.total) << workloads[w];
    }
}

// ------------------------------------------------ engine tiering

DimensionConfig
engineDim(int size, double gbps, TimeNs lat)
{
    DimensionConfig d;
    d.kind = DimKind::Switch;
    d.size = size;
    d.link_bw_gbps = gbps;
    d.links_per_npu = 1;
    d.step_latency_ns = lat;
    return d;
}

struct TierHarness
{
    sim::EventQueue queue;
    DimensionConfig cfg = engineDim(8, 800.0, 0.0);
    std::vector<int> started; // chunk ids in start order

    runtime::ChunkOp
    op(int chunk, Bytes entering, FlowClass flow)
    {
        return runtime::makeChunkOp(
            runtime::OpTag{flow.tier, chunk, 0}, Phase::ReduceScatter,
            0, 0, entering, cfg, [](const runtime::ChunkOp&) {}, flow);
    }
};

TEST(DimensionEngineTiers, HigherTierSelectsFirst)
{
    TierHarness h;
    runtime::DimensionEngine engine(h.queue, h.cfg, 0,
                                    IntraDimPolicy::Scf,
                                    runtime::AdmissionConfig{});
    engine.setStartListener([&](const runtime::OpTag& tag) {
        h.started.push_back(tag.chunk_id);
    });
    const FlowClass bulk{0, 1.0};
    const FlowClass urgent{2, 4.0};
    // Op 0 starts immediately (empty engine, zero-latency ops run
    // serially); the queue then holds bulk 1, 2 and urgent 3. Tier
    // precedence must start 3 before the earlier, smaller bulk ops.
    engine.enqueue(h.op(0, 8.0e6, bulk));
    engine.enqueue(h.op(1, 1.0e6, bulk));
    engine.enqueue(h.op(2, 2.0e6, bulk));
    engine.enqueue(h.op(3, 4.0e6, urgent));
    h.queue.run();
    EXPECT_EQ(h.started, (std::vector<int>{0, 3, 1, 2}));
}

TEST(DimensionEngineTiers, LowTierNeverStarvesUnderSustainedLoad)
{
    TierHarness h;
    runtime::AdmissionConfig admission;
    admission.max_parallel_ops = 1; // strictly serial: worst case
    runtime::DimensionEngine engine(h.queue, h.cfg, 0,
                                    IntraDimPolicy::Scf, admission);
    int bulk_started_after = -1; // urgent starts before the bulk op
    int urgent_started = 0;
    engine.setStartListener([&](const runtime::OpTag& tag) {
        if (tag.collective_id == 0 && bulk_started_after < 0)
            bulk_started_after = urgent_started;
        if (tag.collective_id == 2)
            ++urgent_started;
    });
    const FlowClass bulk{0, 1.0};
    const FlowClass urgent{2, 8.0};
    // Sustained urgent stream: every completion enqueues a fresh
    // urgent op, so the ready set never drains. The single bulk op
    // must still start within the anti-starvation bound.
    int remaining = 400;
    std::function<void()> feed = [&] {
        if (remaining-- <= 0)
            return;
        auto op = runtime::makeChunkOp(
            runtime::OpTag{2, remaining, 0}, Phase::ReduceScatter, 0,
            0, 1.0e5, h.cfg,
            [&](const runtime::ChunkOp&) { feed(); }, urgent);
        engine.enqueue(std::move(op));
    };
    engine.enqueue(h.op(7, 4.0e6, bulk));
    for (int i = 0; i < 4; ++i)
        feed();
    h.queue.run();
    ASSERT_GE(bulk_started_after, 0) << "bulk op never started";
    EXPECT_LE(bulk_started_after,
              runtime::AdmissionConfig{}.max_priority_bypass + 4);
    EXPECT_GT(urgent_started, 100); // the stream really was sustained
}

// ---------------------------------------------- scheduler variant

TEST(ThemisPriority, UrgentFlowBypassesThreshold)
{
    // dim1's fixed delay is slightly larger than dim2's, so the
    // seeded tracker loads are unbalanced but the gap stays below
    // the threshold (which is dominated by a full fixed delay):
    // plain Themis falls back to the baseline order while the
    // priority-aware variant balances an urgent chunk onto the
    // lighter dimension first.
    const Topology topo =
        parseTopology("t", "SW:4:400:700,SW:4:400:600");
    const LatencyModel model = LatencyModel::fromTopology(topo);
    ThemisScheduler plain(model);
    ThemisScheduler aware(model, ThemisConfig{},
                          /*priority_aware=*/true);
    const Bytes tiny = 1.0e3;
    const FlowClass urgent{static_cast<int>(PriorityTier::Urgent),
                           4.0};
    const FlowClass bulk{static_cast<int>(PriorityTier::Bulk), 1.0};

    const auto base = plain.scheduleCollective(
        CollectiveType::ReduceScatter, tiny, 1);
    const auto bulk_plan = aware.scheduleCollective(
        CollectiveType::ReduceScatter, tiny, 1, bulk);
    const auto urgent_plan = aware.scheduleCollective(
        CollectiveType::ReduceScatter, tiny, 1, urgent);

    ASSERT_EQ(base.size(), 1u);
    // Below threshold: plain Themis and the bulk flow keep the
    // baseline dim order.
    EXPECT_EQ(base[0].stages, bulk_plan[0].stages);
    EXPECT_EQ(base[0].stages[0].dim, 0);
    // The urgent flow balances: lighter dim2 (index 1) first.
    EXPECT_EQ(urgent_plan[0].stages[0].dim, 1);
}

TEST(ThemisPriority, UniformPolicyPlansExactlyLikeThemis)
{
    const Topology topo = presets::byName("2D-SW_SW");
    const LatencyModel model = LatencyModel::fromTopology(topo);
    ThemisScheduler plain(model);
    ThemisScheduler aware(model, ThemisConfig{},
                          /*priority_aware=*/true);
    // A uniform policy maps every tier to class 0 — below Urgent, so
    // the variant must plan identically.
    const FlowClass uniform_flow = PriorityPolicy::uniform().flowFor(
        static_cast<int>(PriorityTier::Urgent));
    for (Bytes size : {1.0e6, 5.0e8}) {
        const auto a = plain.scheduleCollective(
            CollectiveType::AllReduce, size, 8);
        const auto b = aware.scheduleCollective(
            CollectiveType::AllReduce, size, 8, uniform_flow);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].stages, b[i].stages);
    }
}

// ------------------------------------------------- cache keying

TEST(PlanCachePriority, KeysExtendByPriorityFingerprint)
{
    const auto uniform_fp = PriorityPolicy::uniform().fingerprint();
    const auto tiered_fp = PriorityPolicy::tiered(4.0).fingerprint();
    EXPECT_NE(uniform_fp, tiered_fp);
    EXPECT_EQ(uniform_fp, PriorityPolicy::uniform().fingerprint());
    EXPECT_EQ(tiered_fp, PriorityPolicy::tiered(4.0).fingerprint());
    EXPECT_NE(PriorityPolicy::tiered(2.0).fingerprint(), tiered_fp);

    // Priority-aware scheduler: the urgent-bypass bit and the policy
    // split cache entries.
    const PlanKey a =
        PlanKey::make(SchedulerKind::ThemisPriority, ThemisConfig{},
                      CollectiveType::AllReduce, 1e8, 64, 42, 2,
                      tiered_fp);
    const PlanKey b =
        PlanKey::make(SchedulerKind::ThemisPriority, ThemisConfig{},
                      CollectiveType::AllReduce, 1e8, 64, 42, 0,
                      tiered_fp);
    const PlanKey c =
        PlanKey::make(SchedulerKind::ThemisPriority, ThemisConfig{},
                      CollectiveType::AllReduce, 1e8, 64, 42, 2,
                      uniform_fp);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);

    // Bulk and Standard plan identically (no bypass), so the tier
    // normalizes to the bypass bit and they share one entry.
    const PlanKey b2 =
        PlanKey::make(SchedulerKind::ThemisPriority, ThemisConfig{},
                      CollectiveType::AllReduce, 1e8, 64, 42, 1,
                      tiered_fp);
    EXPECT_TRUE(b == b2);

    // Priority-unaware schedulers normalize both fields away.
    const PlanKey d =
        PlanKey::make(SchedulerKind::Themis, ThemisConfig{},
                      CollectiveType::AllReduce, 1e8, 64, 42, 2,
                      tiered_fp);
    const PlanKey e =
        PlanKey::make(SchedulerKind::Themis, ThemisConfig{},
                      CollectiveType::AllReduce, 1e8, 64, 42, 0,
                      uniform_fp);
    EXPECT_TRUE(d == e);
}

TEST(PlanCachePriority, StepMemoReturnsIdenticalOps)
{
    const Topology topo = presets::byName("2D-SW_SW");
    const LatencyModel model = LatencyModel::fromTopology(topo);
    PlanCache cache;
    auto noop = [](const runtime::ChunkOp&) {};
    const auto plain = runtime::makeChunkOp(
        runtime::OpTag{0, 0, 0}, Phase::ReduceScatter, 0, 0, 2.5e6,
        model.dim(0), noop);
    for (int i = 0; i < 3; ++i) {
        const auto memoized = runtime::makeChunkOp(
            runtime::OpTag{0, 0, 0}, Phase::ReduceScatter, 0, 0,
            2.5e6, model.dim(0), noop, FlowClass{}, &cache,
            model.dimFingerprint(0));
        EXPECT_EQ(memoized.fixed_delay, plain.fixed_delay);
        EXPECT_EQ(memoized.transfer_time, plain.transfer_time);
        ASSERT_EQ(memoized.steps.size(), plain.steps.size());
        EXPECT_EQ(memoized.steps[0].bytes, plain.steps[0].bytes);
        EXPECT_EQ(memoized.steps[0].latency, plain.steps[0].latency);
    }
    const auto stats = cache.stats();
    EXPECT_EQ(stats.step_misses, 1u);
    EXPECT_EQ(stats.step_hits, 2u);
    EXPECT_EQ(cache.stepCount(), 1u);
    // A different dimension fingerprint is a distinct entry.
    (void)runtime::makeChunkOp(runtime::OpTag{0, 0, 1},
                               Phase::ReduceScatter, 1, 1, 2.5e6,
                               model.dim(1), noop, FlowClass{}, &cache,
                               model.dimFingerprint(1));
    EXPECT_EQ(cache.stepCount(), 2u);
}

// ------------------------------------------------ per-class stats

TEST(ClassStats, TieredPolicyReportsPerClassUsage)
{
    const Topology topo = presets::byName("2D-SW_SW");
    runtime::RuntimeConfig cfg = runtime::themisScfConfig();
    cfg.priority = PriorityPolicy::tiered(4.0);
    EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest bulk;
    bulk.type = CollectiveType::AllReduce;
    bulk.size = 2.0e8;
    bulk.priority_tier = static_cast<int>(PriorityTier::Bulk);
    CollectiveRequest urgent = bulk;
    urgent.size = 2.0e7;
    urgent.priority_tier = static_cast<int>(PriorityTier::Urgent);
    comm.issue(bulk);
    comm.issue(urgent);
    queue.run();
    comm.finalizeStats();

    const auto reports = comm.classReports();
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0].issued, 1);
    EXPECT_EQ(reports[0].completed, 1);
    EXPECT_EQ(reports[1].issued, 0);
    EXPECT_EQ(reports[2].issued, 1);
    EXPECT_DOUBLE_EQ(reports[0].weight, 1.0);
    EXPECT_DOUBLE_EQ(reports[2].weight, 16.0);
    EXPECT_GT(reports[0].progressed, 0.0);
    EXPECT_GT(reports[2].progressed, 0.0);
    EXPECT_GT(reports[0].mean_duration, 0.0);
    EXPECT_GT(reports[2].mean_duration, 0.0);
    // Class utilizations partition the weighted utilization.
    const double total = comm.utilization().weightedUtilization();
    EXPECT_NEAR(reports[0].utilization + reports[1].utilization +
                    reports[2].utilization,
                total, 1e-9);
    EXPECT_GT(reports[0].utilization, 0.0);
    EXPECT_GT(reports[2].utilization, 0.0);
}

TEST(ClassStats, UniformPolicyCollapsesToOneClass)
{
    const Topology topo = presets::byName("2D-SW_SW");
    EventQueue queue;
    runtime::CommRuntime comm(queue, topo,
                              runtime::themisScfConfig());
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e8;
    req.priority_tier = static_cast<int>(PriorityTier::Urgent);
    comm.issue(req);
    req.priority_tier = static_cast<int>(PriorityTier::Bulk);
    comm.issue(req);
    queue.run();
    comm.finalizeStats();
    const auto reports = comm.classReports();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].issued, 2);
    EXPECT_EQ(reports[0].completed, 2);
}

TEST(ClassStats, WeightsImproveUrgentCompletionAndConserveBytes)
{
    // The bench_priority_contention invariant in miniature: a bulk
    // batch plus an urgent chain, run at unit vs 8x weights. The
    // urgent mean must improve; the aggregate bytes must not change.
    const Topology topo = presets::byName("2D-SW_SW");
    auto run = [&](double ratio) {
        runtime::RuntimeConfig cfg = runtime::themisScfConfig();
        cfg.scheduler = SchedulerKind::ThemisPriority;
        cfg.priority = PriorityPolicy::tiered(ratio);
        EventQueue queue;
        runtime::CommRuntime comm(queue, topo, cfg);
        int remaining = 8;
        std::vector<int> ids;
        std::function<void()> chain = [&] {
            if (remaining-- <= 0)
                return;
            CollectiveRequest r;
            r.type = CollectiveType::AllReduce;
            r.size = 3.2e7;
            r.chunks = 8;
            r.priority_tier = static_cast<int>(PriorityTier::Urgent);
            ids.push_back(comm.issue(r, [&] { chain(); }));
        };
        chain();
        for (int i = 0; i < 4; ++i) {
            CollectiveRequest r;
            r.type = CollectiveType::AllReduce;
            r.size = 2.56e8;
            r.priority_tier = static_cast<int>(PriorityTier::Bulk);
            comm.issue(r);
        }
        queue.run();
        TimeNs mean = 0.0;
        for (int id : ids)
            mean += comm.record(id).duration();
        mean /= static_cast<double>(ids.size());
        Bytes total = 0.0;
        for (int d = 0; d < topo.numDims(); ++d) {
            comm.engine(d).channel().sync();
            total += comm.engine(d).channel().progressedBytes();
        }
        return std::pair<TimeNs, Bytes>{mean, total};
    };
    const auto flat = run(1.0);
    const auto weighted = run(8.0);
    EXPECT_LT(weighted.first, flat.first);
    EXPECT_NEAR(weighted.second, flat.second, 1e-6 * flat.second);
}

} // namespace
} // namespace themis
