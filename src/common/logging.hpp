/**
 * @file
 * Minimal leveled logger. The simulator is a library first, so logging
 * defaults to warnings-only and writes to stderr; benches and examples
 * raise the level explicitly when narrating runs.
 */

#ifndef THEMIS_COMMON_LOGGING_HPP
#define THEMIS_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace themis {

/** Severity levels, ordered. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global logger configuration and sink. */
class Logger
{
  public:
    /** Set the global threshold; messages below it are dropped. */
    static void setLevel(LogLevel level);

    /** Current global threshold. */
    static LogLevel level();

    /** Emit one message at @p level with a severity prefix. */
    static void write(LogLevel level, const std::string& msg);

  private:
    static LogLevel global_level_;
};

namespace detail {

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Log at Debug level. */
template <typename... Args>
void
logDebug(Args&&... args)
{
    if (Logger::level() <= LogLevel::Debug)
        Logger::write(LogLevel::Debug,
                      detail::concat(std::forward<Args>(args)...));
}

/** Log at Info level (gem5's inform()). */
template <typename... Args>
void
logInfo(Args&&... args)
{
    if (Logger::level() <= LogLevel::Info)
        Logger::write(LogLevel::Info,
                      detail::concat(std::forward<Args>(args)...));
}

/** Log at Warn level (gem5's warn()). */
template <typename... Args>
void
logWarn(Args&&... args)
{
    if (Logger::level() <= LogLevel::Warn)
        Logger::write(LogLevel::Warn,
                      detail::concat(std::forward<Args>(args)...));
}

/** Log at Error level. */
template <typename... Args>
void
logError(Args&&... args)
{
    if (Logger::level() <= LogLevel::Error)
        Logger::write(LogLevel::Error,
                      detail::concat(std::forward<Args>(args)...));
}

} // namespace themis

#endif // THEMIS_COMMON_LOGGING_HPP
