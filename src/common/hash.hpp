/**
 * @file
 * FNV-1a hashing over 64-bit lanes, shared by the latency-model
 * fingerprint and the plan-cache key hashes so the two can never
 * diverge. Doubles enter by exact bit pattern: keys must compare the
 * values the consumers actually saw, not a rounded rendition.
 */

#ifndef THEMIS_COMMON_HASH_HPP
#define THEMIS_COMMON_HASH_HPP

#include <cstdint>
#include <cstring>

namespace themis {

/** Incremental FNV-1a accumulator; see file comment. */
class Fnv1a
{
  public:
    void
    mix(std::uint64_t v)
    {
        hash_ ^= v;
        hash_ *= 1099511628211ull;
    }

    void
    mix(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 1469598103934665603ull;
};

/**
 * Bit-pattern equality for doubles used in hash keys: keys that
 * compare equal must hash equal (so -0.0 != 0.0 here, and a NaN
 * equals itself), mirroring what Fnv1a::mix(double) feeds the hash.
 */
inline bool
bitEquals(double a, double b)
{
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
}

} // namespace themis

#endif // THEMIS_COMMON_HASH_HPP
