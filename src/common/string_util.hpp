/**
 * @file
 * Small string/formatting helpers shared by reports and benches.
 */

#ifndef THEMIS_COMMON_STRING_UTIL_HPP
#define THEMIS_COMMON_STRING_UTIL_HPP

#include <string>
#include <vector>

#include "common/units.hpp"

namespace themis {

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string& s, char sep);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/** printf-style double with fixed precision. */
std::string fmtDouble(double v, int precision = 2);

/** Human-readable data size, e.g. "256.00 MB". */
std::string fmtBytes(Bytes b);

/** Human-readable time, e.g. "1.53 ms" / "421.7 us". */
std::string fmtTime(TimeNs t);

/** Human-readable bandwidth in Gbit/s. */
std::string fmtGbps(Bandwidth bw);

/** Percentage with one decimal, e.g. "95.1%". */
std::string fmtPercent(double fraction);

/** Lower-case copy (ASCII). */
std::string toLower(std::string s);

/**
 * JSON string-literal escape of @p s (no surrounding quotes). Handles
 * quotes, backslashes and every control character below 0x20 (the
 * common ones as \n-style shorthands, the rest as \u00XX); other bytes
 * pass through untouched, so UTF-8 payloads survive.
 */
std::string jsonEscape(const std::string& s);

} // namespace themis

#endif // THEMIS_COMMON_STRING_UTIL_HPP
