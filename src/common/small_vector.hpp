/**
 * @file
 * Inline small-vector for trivially copyable elements.
 *
 * The simulator's hottest containers hold a handful of POD entries —
 * the shared channels' finish heaps rarely exceed the concurrent
 * chunk-op count of one dimension — yet std::vector heap-allocates on
 * the first push. SmallVector keeps the first N elements in inline
 * storage (no allocation at all for the common case) and spills to a
 * heap buffer only past that, with the contiguous layout and
 * random-access iterators std::push_heap / std::pop_heap and batch
 * rebasing loops need.
 *
 * Restricted on purpose: elements must be trivially copyable (growth
 * is a memcpy, clear is a size reset), and the container is
 * move-only-in-spirit — it is neither copyable nor movable, matching
 * how the channels embed it.
 */

#ifndef THEMIS_COMMON_SMALL_VECTOR_HPP
#define THEMIS_COMMON_SMALL_VECTOR_HPP

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

#include "common/error.hpp"

namespace themis {

/** Inline-first contiguous container; see file comment. */
template <typename T, std::size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector grows by memcpy");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "heap spill relies on operator new[] alignment");
    static_assert(N > 0, "inline capacity must be positive");

  public:
    using value_type = T;
    using iterator = T*;
    using const_iterator = const T*;

    SmallVector() = default;
    SmallVector(const SmallVector&) = delete;
    SmallVector& operator=(const SmallVector&) = delete;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return capacity_; }

    /** True while the elements still live in the inline buffer. */
    bool inlined() const { return heap_ == nullptr; }

    T* data() { return data_; }
    const T* data() const { return data_; }

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }

    T& front() { return data_[0]; }
    const T& front() const { return data_[0]; }
    T& back() { return data_[size_ - 1]; }
    const T& back() const { return data_[size_ - 1]; }

    void
    push_back(const T& v)
    {
        if (size_ == capacity_) {
            // v may alias an element of this container; growth frees
            // the old buffer, so copy it out first (T is trivially
            // copyable — this is a register-sized move).
            const T copy = v;
            grow(capacity_ * 2);
            data_[size_++] = copy;
            return;
        }
        data_[size_++] = v;
    }

    void
    pop_back()
    {
        THEMIS_ASSERT(size_ > 0, "pop_back on empty SmallVector");
        --size_;
    }

    /** Drops the elements; keeps whatever buffer is current. */
    void clear() { size_ = 0; }

    void
    reserve(std::size_t n)
    {
        if (n > capacity_)
            grow(n);
    }

  private:
    void
    grow(std::size_t n)
    {
        auto fresh = std::make_unique<unsigned char[]>(n * sizeof(T));
        std::memcpy(fresh.get(), data_, size_ * sizeof(T));
        heap_ = std::move(fresh);
        data_ = reinterpret_cast<T*>(heap_.get());
        capacity_ = n;
    }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    std::unique_ptr<unsigned char[]> heap_;
    T* data_ = reinterpret_cast<T*>(inline_);
    std::size_t size_ = 0;
    std::size_t capacity_ = N;
};

} // namespace themis

#endif // THEMIS_COMMON_SMALL_VECTOR_HPP
