/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the simulator (data-plane skew injection,
 * fuzz tests) flows through Rng so runs are reproducible from a seed.
 */

#ifndef THEMIS_COMMON_RANDOM_HPP
#define THEMIS_COMMON_RANDOM_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace themis {

/** Seedable RNG wrapper around std::mt19937_64. */
class Rng
{
  public:
    /** Construct with an explicit seed; identical seeds replay runs. */
    explicit Rng(std::uint64_t seed = 0x7e315c0dULL);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli draw with probability @p p of true. */
    bool coin(double p);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Access the underlying engine (for std distributions). */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace themis

#endif // THEMIS_COMMON_RANDOM_HPP
