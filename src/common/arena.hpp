/**
 * @file
 * Recycling node arena for the runtime hot path.
 *
 * Every chunk op that flows through a dimension engine inserts and
 * erases nodes in the pending store, the policy-ordered ready set and
 * the active map — with std::allocator that is one malloc and one
 * free per node per op, and over a multi-iteration training run the
 * nodes scatter across the heap. The arena hands out fixed-size
 * blocks carved from chunked slabs and recycles freed blocks through
 * per-size free lists: after the first iteration has shaped the pool,
 * steady-state iterations allocate nothing and every node of one
 * engine lives in a handful of contiguous slabs.
 *
 * Single-threaded by design (each engine owns one arena, and an
 * engine lives on exactly one simulation thread). Memory is returned
 * to the OS only when the arena is destroyed — an explicit epoch
 * "reset" is unnecessary because recycling is continuous; the pool's
 * high-water mark is the iteration shape.
 */

#ifndef THEMIS_COMMON_ARENA_HPP
#define THEMIS_COMMON_ARENA_HPP

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/error.hpp"

namespace themis {

/** Chunked fixed-block pool with per-size free lists; see above. */
class NodeArena
{
  public:
    /** Block granularity; also the alignment every block satisfies. */
    static constexpr std::size_t kGranularity =
        alignof(std::max_align_t);

    /** Largest block served from the pool (larger -> operator new). */
    static constexpr std::size_t kMaxBlock = 512;

    /** Slab size; amortizes the underlying allocation. */
    static constexpr std::size_t kSlabBytes = 64 * 1024;

    NodeArena() : free_heads_(kMaxBlock / kGranularity, nullptr) {}
    NodeArena(const NodeArena&) = delete;
    NodeArena& operator=(const NodeArena&) = delete;

    void*
    allocate(std::size_t bytes)
    {
        if (bytes > kMaxBlock)
            return ::operator new(bytes);
        const std::size_t cls = sizeClass(bytes);
        if (void* p = free_heads_[cls]) {
            free_heads_[cls] = *static_cast<void**>(p);
            return p;
        }
        const std::size_t block = (cls + 1) * kGranularity;
        if (slab_remaining_ < block) {
            slabs_.push_back(
                std::make_unique<unsigned char[]>(kSlabBytes));
            slab_cursor_ = slabs_.back().get();
            slab_remaining_ = kSlabBytes;
        }
        void* p = slab_cursor_;
        slab_cursor_ += block;
        slab_remaining_ -= block;
        return p;
    }

    void
    deallocate(void* p, std::size_t bytes)
    {
        if (p == nullptr)
            return;
        if (bytes > kMaxBlock) {
            ::operator delete(p);
            return;
        }
        const std::size_t cls = sizeClass(bytes);
        *static_cast<void**>(p) = free_heads_[cls];
        free_heads_[cls] = p;
    }

    /** Slabs allocated so far (a flat count across epochs proves the
     *  pool reached its high-water mark). */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    static std::size_t
    sizeClass(std::size_t bytes)
    {
        if (bytes == 0)
            bytes = 1;
        return (bytes - 1) / kGranularity;
    }

    std::vector<std::unique_ptr<unsigned char[]>> slabs_;
    unsigned char* slab_cursor_ = nullptr;
    std::size_t slab_remaining_ = 0;
    /** Intrusive free-list heads, one per block size class. */
    std::vector<void*> free_heads_;
};

/**
 * std::allocator-compatible adapter over a NodeArena. The arena must
 * outlive every container constructed with the allocator. Allocators
 * compare equal iff they share the arena.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    static_assert(alignof(T) <= NodeArena::kGranularity,
                  "over-aligned type in arena container");

    explicit ArenaAllocator(NodeArena* arena) : arena_(arena)
    {
        THEMIS_ASSERT(arena != nullptr, "null arena");
    }

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena())
    {
    }

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(arena_->allocate(n * sizeof(T)));
    }

    void
    deallocate(T* p, std::size_t n)
    {
        arena_->deallocate(p, n * sizeof(T));
    }

    NodeArena* arena() const { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U>& o) const
    {
        return arena_ == o.arena();
    }

    template <typename U>
    bool
    operator!=(const ArenaAllocator<U>& o) const
    {
        return arena_ != o.arena();
    }

  private:
    NodeArena* arena_;
};

} // namespace themis

#endif // THEMIS_COMMON_ARENA_HPP
