#include "common/logging.hpp"

#include <cstdio>

namespace themis {

LogLevel Logger::global_level_ = LogLevel::Warn;

void
Logger::setLevel(LogLevel level)
{
    global_level_ = level;
}

LogLevel
Logger::level()
{
    return global_level_;
}

void
Logger::write(LogLevel level, const std::string& msg)
{
    const char* prefix = "";
    switch (level) {
      case LogLevel::Debug: prefix = "debug"; break;
      case LogLevel::Info:  prefix = "info";  break;
      case LogLevel::Warn:  prefix = "warn";  break;
      case LogLevel::Error: prefix = "error"; break;
      case LogLevel::Off:   return;
    }
    std::fprintf(stderr, "[themis:%s] %s\n", prefix, msg.c_str());
}

} // namespace themis
