/**
 * @file
 * Unit conventions used across the Themis code base.
 *
 * All simulated time is kept in nanoseconds, data sizes in bytes and
 * bandwidth in bytes-per-nanosecond. Bytes-per-nanosecond is numerically
 * identical to gigabytes-per-second, which keeps configuration values
 * readable. The paper quotes link speeds in Gbit/s (uni-directional),
 * hence the gbpsToBw() helper.
 *
 * The types are plain doubles rather than wrapper classes: the whole
 * simulator is a fluid/analytical model and mixes the three quantities
 * in rate equations constantly. Naming (TimeNs/Bytes/Bandwidth) plus the
 * conversion helpers keep intent clear without ceremony.
 */

#ifndef THEMIS_COMMON_UNITS_HPP
#define THEMIS_COMMON_UNITS_HPP

#include <cmath>
#include <cstdint>

namespace themis {

/** Simulated time, in nanoseconds. */
using TimeNs = double;

/** Data size, in bytes. Fractional values appear after chunk splits. */
using Bytes = double;

/** Bandwidth, in bytes per nanosecond (numerically equal to GB/s). */
using Bandwidth = double;

/** One mebibyte, as used for human-readable sizes. */
inline constexpr Bytes kMiB = 1024.0 * 1024.0;

/** One megabyte (decimal), as used by the paper for collective sizes. */
inline constexpr Bytes kMB = 1.0e6;

/** One gigabyte (decimal). */
inline constexpr Bytes kGB = 1.0e9;

/** One microsecond, in nanoseconds. */
inline constexpr TimeNs kUs = 1.0e3;

/** One millisecond, in nanoseconds. */
inline constexpr TimeNs kMs = 1.0e6;

/** One second, in nanoseconds. */
inline constexpr TimeNs kSec = 1.0e9;

/**
 * Convert a link speed quoted in Gbit/s (uni-directional, as in the
 * paper's Table 2) into simulator bandwidth units.
 */
constexpr Bandwidth
gbpsToBw(double gbps)
{
    return gbps / 8.0;
}

/** Convert simulator bandwidth back to Gbit/s for reporting. */
constexpr double
bwToGbps(Bandwidth bw)
{
    return bw * 8.0;
}

/** Convert nanoseconds to microseconds for reporting. */
constexpr double
nsToUs(TimeNs t)
{
    return t / kUs;
}

/** Convert nanoseconds to milliseconds for reporting. */
constexpr double
nsToMs(TimeNs t)
{
    return t / kMs;
}

/**
 * Tolerant floating-point comparison for times/sizes produced by the
 * fluid model. Relative tolerance with an absolute floor.
 */
inline bool
almostEqual(double a, double b, double rel_tol = 1e-9, double abs_tol = 1e-6)
{
    const double diff = std::fabs(a - b);
    if (diff <= abs_tol)
        return true;
    return diff <= rel_tol * std::fmax(std::fabs(a), std::fabs(b));
}

} // namespace themis

#endif // THEMIS_COMMON_UNITS_HPP
