#include "common/string_util.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace themis {

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string>& parts, const std::string& sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtBytes(Bytes b)
{
    if (b >= kGB)
        return fmtDouble(b / kGB, 2) + " GB";
    if (b >= kMB)
        return fmtDouble(b / kMB, 2) + " MB";
    if (b >= 1.0e3)
        return fmtDouble(b / 1.0e3, 2) + " KB";
    return fmtDouble(b, 0) + " B";
}

std::string
fmtTime(TimeNs t)
{
    if (t >= kSec)
        return fmtDouble(t / kSec, 3) + " s";
    if (t >= kMs)
        return fmtDouble(t / kMs, 3) + " ms";
    if (t >= kUs)
        return fmtDouble(t / kUs, 1) + " us";
    return fmtDouble(t, 1) + " ns";
}

std::string
fmtGbps(Bandwidth bw)
{
    return fmtDouble(bwToGbps(bw), 1) + " Gb/s";
}

std::string
fmtPercent(double fraction)
{
    return fmtDouble(fraction * 100.0, 1) + "%";
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
toLower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace themis
