#include "common/random.hpp"

namespace themis {

Rng::Rng(std::uint64_t seed)
    : engine_(seed)
{}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniformReal(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

bool
Rng::coin(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

} // namespace themis
