/**
 * @file
 * Error-reporting primitives, following the gem5 fatal()/panic() split:
 *
 *  - THEMIS_FATAL: the *user's* fault (bad configuration, invalid
 *    arguments). Throws themis::ConfigError so callers/tests can catch.
 *  - THEMIS_PANIC: an internal invariant violation (a Themis bug).
 *    Prints and aborts.
 *  - THEMIS_ASSERT: cheap invariant check that panics on failure with
 *    a message; enabled in all build types (the simulator is not
 *    perf-critical enough to justify silent release-mode corruption).
 */

#ifndef THEMIS_COMMON_ERROR_HPP
#define THEMIS_COMMON_ERROR_HPP

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace themis {

/** Exception type for configuration / usage errors (gem5's fatal()). */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

namespace detail {

[[noreturn]] inline void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": " << msg;
    throw ConfigError(oss.str());
}

} // namespace detail
} // namespace themis

/** Report a user/configuration error; throws themis::ConfigError. */
#define THEMIS_FATAL(msg)                                                  \
    do {                                                                   \
        std::ostringstream themis_oss_;                                    \
        themis_oss_ << msg; /* NOLINT */                                   \
        ::themis::detail::fatalImpl(__FILE__, __LINE__,                    \
                                    themis_oss_.str());                    \
    } while (0)

/** Report an internal bug; prints and aborts. */
#define THEMIS_PANIC(msg)                                                  \
    do {                                                                   \
        std::ostringstream themis_oss_;                                    \
        themis_oss_ << msg; /* NOLINT */                                   \
        ::themis::detail::panicImpl(__FILE__, __LINE__,                    \
                                    themis_oss_.str());                    \
    } while (0)

/** Invariant check; panics (with the condition text) when violated. */
#define THEMIS_ASSERT(cond, msg)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream themis_oss_;                                \
            themis_oss_ << "assertion (" #cond ") failed: " << msg;        \
            ::themis::detail::panicImpl(__FILE__, __LINE__,                \
                                        themis_oss_.str());                \
        }                                                                  \
    } while (0)

#endif // THEMIS_COMMON_ERROR_HPP
