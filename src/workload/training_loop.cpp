#include "workload/training_loop.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace themis::workload {

IterationBreakdown&
IterationBreakdown::operator+=(const IterationBreakdown& o)
{
    fwd_compute += o.fwd_compute;
    bwd_compute += o.bwd_compute;
    exposed_mp += o.exposed_mp;
    exposed_dp += o.exposed_dp;
    total += o.total;
    return *this;
}

bool
bitIdentical(const IterationBreakdown& a, const IterationBreakdown& b)
{
    return bitEquals(a.fwd_compute, b.fwd_compute) &&
           bitEquals(a.bwd_compute, b.bwd_compute) &&
           bitEquals(a.exposed_mp, b.exposed_mp) &&
           bitEquals(a.exposed_dp, b.exposed_dp) &&
           bitEquals(a.total, b.total);
}

TrainingLoop::TrainingLoop(runtime::CommRuntime& comm, ModelGraph model,
                           RooflineConfig roofline)
    : comm_(comm), model_(std::move(model)), roofline_(roofline)
{
    THEMIS_ASSERT(!model_.layers.empty(), "model with no layers");
    const Topology& topo = comm_.topology();
    for (CommDomain d : {CommDomain::DataParallel,
                         CommDomain::ModelParallel, CommDomain::World}) {
        if (d == CommDomain::ModelParallel &&
            model_.parallel.mpDegree() == 1) {
            continue; // no MP communicator in pure data-parallel
        }
        if (d == CommDomain::DataParallel &&
            model_.parallel.ways(d, topo) == 1) {
            continue; // fully model-parallel: no DP communicator
        }
        scopes_[d] = model_.parallel.scopeFor(d, topo);
        ways_[d] = model_.parallel.ways(d, topo);
    }
}

IterationBreakdown
TrainingLoop::runIteration()
{
    beginIterationAsync(nullptr);
    comm_.queue().run();
    THEMIS_ASSERT(iteration_done_,
                  "event queue drained before the iteration finished "
                  "(lost completion callback?)");
    return current_;
}

void
TrainingLoop::beginIterationAsync(IterationCallback on_done)
{
    THEMIS_ASSERT(!iterationInFlight(),
                  "iteration already in flight on this loop");
    // Reset per-iteration state.
    in_fwd_ = true;
    layer_ = 0;
    waiting_ = WaitKind::None;
    blocking_remaining_ = 0;
    pending_fwd_nb_ = 0;
    pending_mp_nb_ = 0;
    pending_dp_ = 0;
    iteration_started_ = true;
    iteration_done_ = false;
    on_iteration_done_ = std::move(on_done);
    current_ = IterationBreakdown{};
    drain_mark_ = comm_.queue().now();
    iter_start_ = comm_.queue().now();
    startFwdLayer();
}

IterationBreakdown
TrainingLoop::run(int n)
{
    THEMIS_ASSERT(n >= 1, "need at least one iteration");
    IterationBreakdown sum;
    for (int i = 0; i < n; ++i)
        sum += runIteration();
    return sum;
}

void
TrainingLoop::startFwdLayer()
{
    if (layer_ >= static_cast<int>(model_.layers.size())) {
        // Forward pass done; backward starts at the last layer.
        in_fwd_ = false;
        layer_ = static_cast<int>(model_.layers.size()) - 1;
        startBwdLayer();
        return;
    }
    const Layer& l = model_.layers[static_cast<std::size_t>(layer_)];
    if (l.wait_pending_before_fwd && pending_fwd_nb_ > 0) {
        waiting_ = WaitKind::FwdBarrier;
        wait_started_ = comm_.queue().now();
        return; // resumed by onNonBlockingDone()
    }
    const TimeNs t = computeTime(l.fwd_flops, l.fwd_mem_bytes, roofline_);
    current_.fwd_compute += t;
    comm_.queue().scheduleAfter(t, [this] { afterFwdCompute(); });
}

void
TrainingLoop::afterFwdCompute()
{
    const Layer& l = model_.layers[static_cast<std::size_t>(layer_)];
    blocking_remaining_ = 0;
    for (const auto& op : l.fwd_comm)
        issueComm(op, /*in_fwd=*/true);
    if (blocking_remaining_ > 0) {
        waiting_ = WaitKind::Blocking;
        wait_started_ = comm_.queue().now();
        return; // resumed by onBlockingDone()
    }
    ++layer_;
    startFwdLayer();
}

void
TrainingLoop::startBwdLayer()
{
    if (layer_ < 0) {
        finishCompute();
        return;
    }
    const Layer& l = model_.layers[static_cast<std::size_t>(layer_)];
    const TimeNs t_bwd =
        computeTime(l.bwd_flops, l.bwd_mem_bytes, roofline_);
    const TimeNs t_re = computeTime(l.recompute_flops, 0.0, roofline_);
    // Recompute elapses during the backward pass but is reported as
    // forward compute (paper Fig 12 note on Transformer-1T).
    current_.bwd_compute += t_bwd;
    current_.fwd_compute += t_re;
    comm_.queue().scheduleAfter(t_bwd + t_re,
                                [this] { afterBwdCompute(); });
}

void
TrainingLoop::afterBwdCompute()
{
    const Layer& l = model_.layers[static_cast<std::size_t>(layer_)];
    blocking_remaining_ = 0;
    for (const auto& op : l.bwd_comm)
        issueComm(op, /*in_fwd=*/false);
    if (!model_.fused_dp_grads)
        issueDpGrads(l.dp_grad_bytes, l.zero_style_dp);
    if (blocking_remaining_ > 0) {
        waiting_ = WaitKind::Blocking;
        wait_started_ = comm_.queue().now();
        return;
    }
    --layer_;
    startBwdLayer();
}

void
TrainingLoop::issueComm(const LayerCommOp& op, bool in_fwd)
{
    THEMIS_ASSERT(op.size > 0.0, "zero-size layer collective");
    CollectiveRequest req;
    req.type = op.type;
    req.size = op.size;
    req.chunks = 0; // runtime default CPC
    req.scope = scopes_.at(op.domain);
    req.priority_tier =
        tier_override_ >= 0
            ? tier_override_
            : (op.priority_tier >= 0
                   ? op.priority_tier
                   : model_.parallel.priorityTierFor(op.domain));
    req.job = job_;

    if (op.blocking) {
        ++blocking_remaining_;
        comm_.issue(req, [this] { onBlockingDone(); });
    } else {
        if (in_fwd)
            ++pending_fwd_nb_;
        if (op.domain == CommDomain::DataParallel)
            ++pending_dp_;
        else
            ++pending_mp_nb_;
        const CommDomain domain = op.domain;
        comm_.issue(req, [this, domain, in_fwd] {
            onNonBlockingDone(domain, in_fwd);
        });
    }
}

void
TrainingLoop::issueDpGrads(Bytes grad_bytes, bool zero_style)
{
    if (grad_bytes <= 0.0)
        return;
    if (scopes_.find(CommDomain::DataParallel) == scopes_.end())
        return; // fully model-parallel workload
    const auto& scope = scopes_.at(CommDomain::DataParallel);
    auto issue_nb = [&](CollectiveType type, Bytes size) {
        CollectiveRequest req;
        req.type = type;
        req.size = size;
        req.chunks = 0;
        req.scope = scope;
        req.priority_tier =
            tier_override_ >= 0
                ? tier_override_
                : model_.parallel.priorityTierFor(
                      CommDomain::DataParallel);
        req.job = job_;
        ++pending_dp_;
        comm_.issue(req, [this] {
            onNonBlockingDone(CommDomain::DataParallel,
                              /*in_fwd=*/false);
        });
    };
    if (zero_style) {
        // ZeRO-2: reduce-scatter gradients, then all-gather the
        // updated parameters (AG size is the gathered result).
        issue_nb(CollectiveType::ReduceScatter, grad_bytes);
        issue_nb(CollectiveType::AllGather, grad_bytes);
    } else {
        issue_nb(CollectiveType::AllReduce, grad_bytes);
    }
}

void
TrainingLoop::onBlockingDone()
{
    THEMIS_ASSERT(blocking_remaining_ > 0, "spurious blocking callback");
    if (--blocking_remaining_ > 0)
        return;
    THEMIS_ASSERT(waiting_ == WaitKind::Blocking, "not blocked");
    current_.exposed_mp += comm_.queue().now() - wait_started_;
    waiting_ = WaitKind::None;
    advanceAfterComm();
}

void
TrainingLoop::advanceAfterComm()
{
    if (in_fwd_) {
        ++layer_;
        startFwdLayer();
    } else {
        --layer_;
        startBwdLayer();
    }
}

void
TrainingLoop::onNonBlockingDone(CommDomain domain, bool in_fwd)
{
    if (waiting_ == WaitKind::FinalDrain) {
        // Attribute the drain segment ending now: any instant with an
        // outstanding DP collective counts as exposed DP, the rest of
        // the tail (overlapped MP/World traffic still in flight) as
        // exposed MP.
        const TimeNs now = comm_.queue().now();
        if (pending_dp_ > 0)
            current_.exposed_dp += now - drain_mark_;
        else
            current_.exposed_mp += now - drain_mark_;
        drain_mark_ = now;
    }
    if (in_fwd) {
        THEMIS_ASSERT(pending_fwd_nb_ > 0, "spurious fwd-comm callback");
        --pending_fwd_nb_;
    }
    if (domain == CommDomain::DataParallel) {
        THEMIS_ASSERT(pending_dp_ > 0, "spurious DP callback");
        --pending_dp_;
    } else {
        THEMIS_ASSERT(pending_mp_nb_ > 0, "spurious MP callback");
        --pending_mp_nb_;
    }
    if (waiting_ == WaitKind::FwdBarrier && pending_fwd_nb_ == 0) {
        // DLRM-style join: the wait for overlapped forward comm is
        // exposed model-parallel time.
        current_.exposed_mp += comm_.queue().now() - wait_started_;
        waiting_ = WaitKind::None;
        startFwdLayer(); // retry the barrier layer (now clear)
        return;
    }
    if (waiting_ == WaitKind::FinalDrain)
        maybeFinishIteration();
}

void
TrainingLoop::finishCompute()
{
    // Fused DP gradients: one collective over every layer's gradient
    // bytes, issued at the end of back-propagation.
    if (model_.fused_dp_grads) {
        bool zero_style = false;
        for (const auto& l : model_.layers)
            zero_style = zero_style || l.zero_style_dp;
        issueDpGrads(model_.totalDpGradBytes(), zero_style);
    }
    compute_end_ = comm_.queue().now();
    drain_mark_ = compute_end_;
    waiting_ = WaitKind::FinalDrain;
    maybeFinishIteration();
}

void
TrainingLoop::maybeFinishIteration()
{
    if (pending_dp_ > 0 || pending_mp_nb_ > 0 || pending_fwd_nb_ > 0)
        return;
    // All drain segments were attributed in onNonBlockingDone().
    waiting_ = WaitKind::None;
    iteration_done_ = true;
    // The iteration ends at the simulated instant its last collective
    // completed — which, when one loop owns the queue, is exactly the
    // time run() returns at, so the synchronous path is unchanged.
    current_.total = comm_.queue().now() - iter_start_;
    if (on_iteration_done_) {
        IterationCallback cb = std::move(on_iteration_done_);
        on_iteration_done_ = nullptr;
        cb(current_);
    }
}

} // namespace themis::workload
