#include "workload/convergence.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/hash.hpp"

namespace themis::workload {

namespace {

using runtime::CommRuntime;

/**
 * Fold one iteration into the running totals. Replay uses the same
 * function with the steady iteration's values, so the replayed
 * accumulation performs bit-for-bit the operations full simulation
 * would.
 */
void
accumulate(ConvergenceReport& r, const IterationBreakdown& b,
           const CommRuntime::EpochStats& s)
{
    r.total += b;
    r.last = b;
    r.per_iteration.push_back(b);
    r.active_time += s.active_time;
    if (r.dim_bytes.size() < s.dim_bytes.size())
        r.dim_bytes.resize(s.dim_bytes.size(), 0.0);
    for (std::size_t d = 0; d < s.dim_bytes.size(); ++d)
        r.dim_bytes[d] += s.dim_bytes[d];
    if (r.class_bytes.size() < s.class_bytes.size())
        r.class_bytes.resize(s.class_bytes.size(), 0.0);
    for (std::size_t c = 0; c < s.class_bytes.size(); ++c)
        r.class_bytes[c] += s.class_bytes[c];
    r.ops += s.ops;
    r.collectives += s.collectives;
}

void
finalizeUtilization(ConvergenceReport& r, const Topology& topo)
{
    if (r.active_time <= 0.0)
        return;
    Bandwidth total_bw = 0.0;
    for (int d = 0; d < topo.numDims(); ++d)
        total_bw += topo.dim(d).bandwidth();
    Bytes total_bytes = 0.0;
    for (Bytes b : r.dim_bytes)
        total_bytes += b;
    r.utilization = total_bytes / (total_bw * r.active_time);
}

bool
assertIdentical(const IterationBreakdown& b,
                const CommRuntime::EpochStats& s,
                const IterationBreakdown& steady_b,
                const CommRuntime::EpochStats& steady_s, int iteration)
{
    THEMIS_ASSERT(bitIdentical(b, steady_b) &&
                      s.identicalTo(steady_s),
                  "exactness check: iteration "
                      << iteration
                      << " diverged from the steady-state iteration "
                         "the replay engine would have substituted "
                         "(fingerprint "
                      << s.fingerprint << " vs "
                      << steady_s.fingerprint << ")");
    return true;
}

} // namespace

bool
resultsBitIdentical(const ConvergenceReport& a,
                    const ConvergenceReport& b)
{
    if (!bitIdentical(a.total, b.total) ||
        !bitIdentical(a.last, b.last) ||
        !bitEquals(a.active_time, b.active_time) || a.ops != b.ops ||
        a.collectives != b.collectives ||
        !bitEquals(a.utilization, b.utilization) ||
        a.per_iteration.size() != b.per_iteration.size() ||
        a.dim_bytes.size() != b.dim_bytes.size() ||
        a.class_bytes.size() != b.class_bytes.size())
        return false;
    for (std::size_t i = 0; i < a.per_iteration.size(); ++i)
        if (!bitIdentical(a.per_iteration[i], b.per_iteration[i]))
            return false;
    for (std::size_t d = 0; d < a.dim_bytes.size(); ++d)
        if (!bitEquals(a.dim_bytes[d], b.dim_bytes[d]))
            return false;
    for (std::size_t c = 0; c < a.class_bytes.size(); ++c)
        if (!bitEquals(a.class_bytes[c], b.class_bytes[c]))
            return false;
    return true;
}

ConvergenceReport
runConverged(runtime::CommRuntime& comm, TrainingLoop& loop,
             const ConvergenceOptions& opts)
{
    return runConverged(comm, std::vector<TrainingLoop*>{&loop},
                        opts);
}

ConvergenceReport
runConverged(runtime::CommRuntime& comm,
             const std::vector<TrainingLoop*>& loops,
             const ConvergenceOptions& opts)
{
    THEMIS_ASSERT(opts.iterations >= 1, "need at least one iteration");
    THEMIS_ASSERT(opts.confirm_iterations >= 2,
                  "steady state needs at least a pair of identical "
                  "iterations");
    THEMIS_ASSERT(!loops.empty(), "no training loops to step");
    ConvergenceReport r;
    r.iterations = opts.iterations;
    r.per_iteration.reserve(
        static_cast<std::size_t>(opts.iterations));

    // Multi-job guard: steady-state detection fingerprints only what
    // the stepped loops produce. If the runtime has ever carried more
    // jobs than that (a cluster mix with periodic tenants, a loop the
    // caller forgot to pass), an identical-looking epoch pair could
    // alias state the fingerprint cannot see — refuse replay and
    // simulate every iteration instead of silently integrating.
    ConvergenceOptions eff = opts;
    {
        std::set<int> covered;
        for (const TrainingLoop* loop : loops) {
            THEMIS_ASSERT(loop != nullptr, "null training loop");
            covered.insert(loop->job());
        }
        // Every job id the runtime has ever seen must belong to a
        // stepped loop — a gap (loops {0, 2} with a tenant at 1) is
        // exactly as uncoverable as a tenant past the maximum.
        int uncovered = -1;
        for (int j = 0; j < comm.jobsObserved(); ++j) {
            if (covered.find(j) == covered.end()) {
                uncovered = j;
                break;
            }
        }
        if ((eff.replay || eff.exactness_check) && uncovered >= 0) {
            r.replay_refusal =
                "runtime has observed " +
                std::to_string(comm.jobsObserved()) +
                " jobs but no stepped loop covers job " +
                std::to_string(uncovered) +
                "; analytic replay cannot fingerprint the other "
                "tenants' traffic";
            logWarn("convergence replay refused: ", r.replay_refusal);
            eff.replay = false;
            eff.exactness_check = false;
        }
    }

    IterationBreakdown prev_b;
    CommRuntime::EpochStats prev_s;
    bool have_prev = false;
    int streak = 0; // consecutive iterations identical to their predecessor

    // Phase-aware replay under a fault timeline: replay may only
    // substitute iterations that lie entirely inside the current
    // quiescent phase. From the just-simulated steady epoch (absolute
    // start fd->base(), duration d), count how many of the remaining
    // iterations fit before the next fault event. An event exactly at
    // an iteration's start boundary belongs to that iteration (the
    // driver applies it at the epoch's first window start), so it
    // caps the span; an event exactly at an iteration's end belongs
    // to the next one. The steady epoch itself must be event-free
    // past its own start: an event inside it means the next epoch
    // begins under different capacities than the steady epoch did,
    // even if that event had no observable effect on this epoch.
    // Without a fault driver every remaining iteration is replayable
    // — the pre-fault behavior, byte for byte.
    runtime::FaultDriver* const fd = comm.faultDriver();
    const auto replayableSpan = [&](int remaining, TimeNs d) -> int {
        if (fd == nullptr)
            return remaining;
        const TimeNs base = fd->base();
        const sim::FaultTimeline& tl = fd->timeline();
        if (tl.nextEventAfter(base) < base + d)
            return 0;
        int n = 0;
        // Repeated addition, exactly mirroring the simulated path's
        // per-epoch base_ += duration, so replay and simulation see
        // bit-identical boundary positions.
        TimeNs start = base + d;
        while (n < remaining) {
            if (tl.nextEventAtOrAfter(start) < start + d)
                break;
            start += d;
            ++n;
        }
        return n;
    };

    // The one place an iteration is actually event-simulated: every
    // path below (detection loop, exactness continuation, no-replay
    // continuation) runs the epoch protocol through this helper, so a
    // protocol change cannot desynchronize them. One round = every
    // loop runs one iteration to completion on the shared queue.
    auto simulate_epoch =
        [&]() -> std::pair<IterationBreakdown,
                           CommRuntime::EpochStats> {
        comm.beginIterationEpoch();
        IterationBreakdown b;
        if (loops.size() == 1) {
            // Single loop: the synchronous path, byte for byte.
            b = loops.front()->runIteration();
        } else {
            for (TrainingLoop* loop : loops)
                loop->beginIterationAsync(nullptr);
            comm.queue().run();
            for (TrainingLoop* loop : loops) {
                THEMIS_ASSERT(
                    !loop->iterationInFlight(),
                    "event queue drained before every job's iteration "
                    "finished (lost completion callback?)");
                b += loop->lastIteration();
            }
        }
        CommRuntime::EpochStats s = comm.finishIterationEpoch();
        accumulate(r, b, s);
        ++r.simulated_iterations;
        return {std::move(b), std::move(s)};
    };

    for (int i = 0; i < eff.iterations; ++i) {
        const auto [b, s] = simulate_epoch();

        if (have_prev && s.identicalTo(prev_s) &&
            bitIdentical(b, prev_b))
            ++streak;
        else
            streak = 0;
        prev_b = b;
        prev_s = s;
        have_prev = true;

        const bool steady = s.replay_safe &&
                            streak >= eff.confirm_iterations - 1;
        if (steady && r.steady_at < 0) {
            r.steady_at = i;
            r.steady_fingerprint = s.fingerprint;
        }
        if (!steady || i + 1 >= eff.iterations)
            continue;

        if (eff.exactness_check) {
            // Proof mode: predict the replayable span analytically,
            // then keep simulating and hold every iteration — and
            // the books over the span — to the prediction. Under a
            // fault timeline the span ends at the next phase
            // boundary and the outer loop re-enters detection there.
            const int n =
                replayableSpan(eff.iterations - (i + 1), s.duration);
            if (n == 0)
                continue; // fault boundary abuts: keep simulating
            ConvergenceReport predicted = r;
            for (int k = 0; k < n; ++k)
                accumulate(predicted, b, s);
            for (int k = 0; k < n; ++k) {
                ++i;
                const auto [bk, sk] = simulate_epoch();
                assertIdentical(bk, sk, b, s, i);
            }
            THEMIS_ASSERT(resultsBitIdentical(r, predicted),
                          "exactness check: the replay prediction "
                          "diverged from the fully simulated run");
            continue;
        }
        if (eff.replay) {
            // Analytic replay: integrate the steady iteration forward
            // — O(dimensions + classes) additions per iteration, no
            // event loop — up to the next fault-phase boundary (or
            // the end of the run). The fault driver's base advances
            // by the same additions the simulated path would apply,
            // and detection resumes past the boundary.
            const int n =
                replayableSpan(eff.iterations - (i + 1), s.duration);
            if (n == 0)
                continue; // fault boundary abuts: keep simulating
            for (int k = 0; k < n; ++k) {
                accumulate(r, b, s);
                ++r.replayed_iterations;
                if (fd != nullptr)
                    fd->skipReplayedEpoch(s.duration);
            }
            i += n;
            continue;
        }
        // Replay disabled (measurement baseline): keep simulating;
        // leave steady_at as the first detection point.
        for (int k = i + 1; k < eff.iterations; ++k)
            simulate_epoch();
        break;
    }

    finalizeUtilization(r, comm.topology());
    return r;
}

} // namespace themis::workload
