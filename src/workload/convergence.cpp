#include "workload/convergence.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/hash.hpp"
#include "stats/telemetry/telemetry.hpp"
#include "stats/trace_writer.hpp"

namespace themis::workload {

namespace {

using runtime::CommRuntime;

/**
 * Saturation bound for the stepping hyper-period: past this the mix
 * can never confirm a cycle on any practical horizon, and the exact
 * lcm no longer matters (only that it exceeds every cycle limit).
 */
constexpr long long kHyperPeriodSaturation = 1LL << 30;

/**
 * Fold one iteration into the running totals. Replay uses the same
 * function with the steady cycle's values, so the replayed
 * accumulation performs bit-for-bit the operations full simulation
 * would.
 */
void
accumulate(ConvergenceReport& r, const IterationBreakdown& b,
           const CommRuntime::EpochStats& s)
{
    r.total += b;
    r.last = b;
    r.per_iteration.push_back(b);
    r.active_time += s.active_time;
    if (r.dim_bytes.size() < s.dim_bytes.size())
        r.dim_bytes.resize(s.dim_bytes.size(), 0.0);
    for (std::size_t d = 0; d < s.dim_bytes.size(); ++d)
        r.dim_bytes[d] += s.dim_bytes[d];
    if (r.class_bytes.size() < s.class_bytes.size())
        r.class_bytes.resize(s.class_bytes.size(), 0.0);
    for (std::size_t c = 0; c < s.class_bytes.size(); ++c)
        r.class_bytes[c] += s.class_bytes[c];
    r.ops += s.ops;
    r.collectives += s.collectives;
}

void
finalizeUtilization(ConvergenceReport& r, const Topology& topo)
{
    if (r.active_time <= 0.0)
        return;
    Bandwidth total_bw = 0.0;
    for (int d = 0; d < topo.numDims(); ++d)
        total_bw += topo.dim(d).bandwidth();
    Bytes total_bytes = 0.0;
    for (Bytes b : r.dim_bytes)
        total_bytes += b;
    r.utilization = total_bytes / (total_bw * r.active_time);
}

bool
assertIdentical(const IterationBreakdown& b,
                const CommRuntime::EpochStats& s,
                const IterationBreakdown& steady_b,
                const CommRuntime::EpochStats& steady_s, int iteration)
{
    THEMIS_ASSERT(bitIdentical(b, steady_b) &&
                      s.identicalTo(steady_s),
                  "exactness check: iteration "
                      << iteration
                      << " diverged from the steady-cycle iteration "
                         "the replay engine would have substituted "
                         "(fingerprint "
                      << s.fingerprint << " vs "
                      << steady_s.fingerprint << ")");
    return true;
}

/** One ring slot: a round's measured deltas, bit for bit. */
struct Epoch
{
    IterationBreakdown b;
    CommRuntime::EpochStats s;
};

} // namespace

bool
resultsBitIdentical(const ConvergenceReport& a,
                    const ConvergenceReport& b)
{
    if (!bitIdentical(a.total, b.total) ||
        !bitIdentical(a.last, b.last) ||
        !bitEquals(a.active_time, b.active_time) || a.ops != b.ops ||
        a.collectives != b.collectives ||
        !bitEquals(a.utilization, b.utilization) ||
        a.per_iteration.size() != b.per_iteration.size() ||
        a.dim_bytes.size() != b.dim_bytes.size() ||
        a.class_bytes.size() != b.class_bytes.size())
        return false;
    for (std::size_t i = 0; i < a.per_iteration.size(); ++i)
        if (!bitIdentical(a.per_iteration[i], b.per_iteration[i]))
            return false;
    for (std::size_t d = 0; d < a.dim_bytes.size(); ++d)
        if (!bitEquals(a.dim_bytes[d], b.dim_bytes[d]))
            return false;
    for (std::size_t c = 0; c < a.class_bytes.size(); ++c)
        if (!bitEquals(a.class_bytes[c], b.class_bytes[c]))
            return false;
    return true;
}

ConvergenceReport
runConverged(runtime::CommRuntime& comm, TrainingLoop& loop,
             const ConvergenceOptions& opts)
{
    return runConverged(comm, std::vector<TrainingLoop*>{&loop},
                        opts);
}

ConvergenceReport
runConverged(runtime::CommRuntime& comm,
             const std::vector<TrainingLoop*>& loops,
             const ConvergenceOptions& opts)
{
    std::vector<LockstepJob> jobs;
    jobs.reserve(loops.size());
    for (TrainingLoop* loop : loops) {
        THEMIS_ASSERT(loop != nullptr, "null training loop");
        LockstepJob j;
        j.loop = loop;
        j.job = loop->job();
        jobs.push_back(std::move(j));
    }
    return runConverged(comm, jobs, opts);
}

ConvergenceReport
runConverged(runtime::CommRuntime& comm,
             const std::vector<LockstepJob>& jobs,
             const ConvergenceOptions& opts)
{
    THEMIS_ASSERT(opts.iterations >= 1, "need at least one iteration");
    THEMIS_ASSERT(opts.confirm_iterations >= 2,
                  "steady state needs at least a pair of identical "
                  "cycles");
    THEMIS_ASSERT(!jobs.empty(), "no lockstep jobs to step");
    THEMIS_ASSERT(opts.cycle_limit >= 0,
                  "cycle limit must be >= 1 (0 = auto)");
    for (const LockstepJob& j : jobs) {
        THEMIS_ASSERT(j.cadence >= 1,
                      "lockstep cadence must be >= 1, got "
                          << j.cadence);
        THEMIS_ASSERT(j.loop != nullptr || (j.begin && j.last),
                      "lockstep job " << j.job
                                      << " needs a training loop or "
                                         "begin/last hooks");
    }

    ConvergenceReport r;
    r.iterations = opts.iterations;
    r.per_iteration.reserve(
        static_cast<std::size_t>(opts.iterations));

    // Stepping hyper-period: the joint due-set pattern of the mix
    // repeats with period lcm(cadences), so only multiples of it can
    // be true cycle lengths — shorter "matches" would align rounds
    // with different due sets.
    long long hyper = 1;
    for (const LockstepJob& j : jobs) {
        hyper = std::lcm(hyper, static_cast<long long>(j.cadence));
        if (hyper > kHyperPeriodSaturation) {
            hyper = kHyperPeriodSaturation;
            break;
        }
    }
    r.hyper_period = static_cast<int>(
        std::min(hyper, kHyperPeriodSaturation));

    // Multi-job guard: steady-state detection fingerprints only what
    // the stepped jobs produce. If the runtime has ever carried more
    // jobs than that (a tenant the caller forgot to pass), an
    // identical-looking epoch pair could alias state the fingerprint
    // cannot see — refuse replay and simulate every round instead of
    // silently integrating.
    ConvergenceOptions eff = opts;
    {
        std::set<int> covered;
        for (const LockstepJob& j : jobs)
            covered.insert(j.job);
        // Every job id the runtime has ever seen must belong to a
        // stepped job — a gap (jobs {0, 2} with a tenant at 1) is
        // exactly as uncoverable as a tenant past the maximum.
        int uncovered = -1;
        for (int j = 0; j < comm.jobsObserved(); ++j) {
            if (covered.find(j) == covered.end()) {
                uncovered = j;
                break;
            }
        }
        if ((eff.replay || eff.exactness_check) && uncovered >= 0) {
            r.replay_refusal =
                "runtime has observed " +
                std::to_string(comm.jobsObserved()) +
                " jobs but no stepped loop covers job " +
                std::to_string(uncovered) +
                "; analytic replay cannot fingerprint the other "
                "tenants' traffic";
            logWarn("convergence replay refused: ", r.replay_refusal);
            eff.replay = false;
            eff.exactness_check = false;
        }
    }

    // Candidate cycle lengths: multiples of the hyper-period up to
    // the cycle limit (0 = auto: exactly the hyper-period). A limit
    // below the hyper-period leaves no candidate, so replay is
    // refused with a diagnostic; the detection horizon is further
    // bounded by the iteration count (a longer cycle could never
    // confirm within the run anyway).
    const long long limit =
        eff.cycle_limit > 0 ? eff.cycle_limit : hyper;
    long long k_max = (limit / hyper) * hyper;
    if ((eff.replay || eff.exactness_check) && k_max == 0) {
        r.replay_refusal =
            "cycle limit " + std::to_string(limit) +
            " is below the mix's stepping hyper-period " +
            std::to_string(hyper) +
            " rounds; a confirmed cycle cannot fit, so analytic "
            "replay is refused (raise --cycle-limit)";
        logWarn("convergence replay refused: ", r.replay_refusal);
        eff.replay = false;
        eff.exactness_check = false;
    }
    k_max = std::min(k_max,
                     static_cast<long long>(eff.iterations) / hyper *
                         hyper);

    std::vector<long long> candidates;
    for (long long k = hyper; k <= k_max; k += hyper)
        candidates.push_back(k);
    // Per-candidate run lengths of "round i bit-matches round i - k".
    std::vector<long long> streaks(candidates.size(), 0);

    // Bounded epoch ring: round i lives in slot i % cap, and the
    // comparison target i - k (k <= k_max < cap) is still resident
    // when round i is recorded. Replayed rounds are recorded too, so
    // post-fault re-detection sees the same history full simulation
    // would have.
    const std::size_t cap = static_cast<std::size_t>(k_max) + 1;
    std::vector<Epoch> ring(cap);

    const auto record = [&](long long round,
                            const IterationBreakdown& b,
                            const CommRuntime::EpochStats& s) {
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            const long long k = candidates[c];
            if (round < k) {
                continue;
            }
            const Epoch& past =
                ring[static_cast<std::size_t>(round - k) % cap];
            if (past.s.identicalTo(s) && bitIdentical(past.b, b))
                ++streaks[c];
            else
                streaks[c] = 0;
        }
        Epoch& slot = ring[static_cast<std::size_t>(round) % cap];
        slot.b = b;
        slot.s = s;
    };

    // Smallest candidate whose last (confirm_iterations - 1) cycles
    // each bit-matched the cycle before them, with every epoch of the
    // confirming cycle replay-safe. For a single-cadence mix (k = 1)
    // this is exactly the original period-1 condition.
    const auto confirmedCycle = [&](long long round) -> long long {
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            const long long k = candidates[c];
            if (streaks[c] <
                static_cast<long long>(eff.confirm_iterations - 1) *
                    k)
                continue;
            bool safe = true;
            for (long long m = 0; m < k && safe; ++m)
                safe = ring[static_cast<std::size_t>(round - m) % cap]
                           .s.replay_safe;
            if (safe)
                return k;
        }
        return 0;
    };

    // Phase-aware replay under a fault timeline: replay may only
    // substitute rounds that lie entirely inside the current
    // quiescent phase. From the just-simulated epoch (absolute start
    // fd->base(), duration = the cycle's last epoch), count how many
    // of the remaining rounds fit before the next fault event,
    // walking the cycle's per-epoch durations cyclically. An event
    // exactly at a round's start boundary belongs to that round (the
    // driver applies it at the epoch's first window start), so it
    // caps the span; an event exactly at a round's end belongs to the
    // next one. The confirming epoch itself must be event-free past
    // its own start: an event inside it means the next round begins
    // under different capacities than the steady cycle did, even if
    // that event had no observable effect on this epoch. Without a
    // fault driver every remaining round is replayable — the
    // pre-fault behavior, byte for byte.
    runtime::FaultDriver* const fd = comm.faultDriver();
    const auto replayableSpan =
        [&](long long remaining,
            const std::vector<Epoch>& block) -> long long {
        if (fd == nullptr)
            return remaining;
        const TimeNs base = fd->base();
        const sim::FaultTimeline& tl = fd->timeline();
        const TimeNs d_last = block.back().s.duration;
        if (tl.nextEventAfter(base) < base + d_last)
            return 0;
        long long n = 0;
        // Repeated addition, exactly mirroring the simulated path's
        // per-epoch base_ += duration, so replay and simulation see
        // bit-identical boundary positions. Round i + 1 + n maps to
        // block slot n % k.
        TimeNs start = base + d_last;
        const std::size_t k = block.size();
        while (n < remaining) {
            const TimeNs d =
                block[static_cast<std::size_t>(n) % k].s.duration;
            if (tl.nextEventAtOrAfter(start) < start + d)
                break;
            start += d;
            ++n;
        }
        return n;
    };

    // The one place a round is actually event-simulated: every path
    // below (detection loop, exactness continuation) runs the epoch
    // protocol through this helper, so a protocol change cannot
    // desynchronize them. One round = every *due* job (round %
    // cadence == 0) runs one unit of work to completion on the shared
    // queue.
    std::vector<const LockstepJob*> due;
    auto simulate_epoch = [&](long long round)
        -> std::pair<IterationBreakdown, CommRuntime::EpochStats> {
        comm.beginIterationEpoch();
        IterationBreakdown b;
        due.clear();
        for (const LockstepJob& j : jobs)
            if (round % j.cadence == 0)
                due.push_back(&j);
        if (jobs.size() == 1 && due.size() == 1 &&
            due.front()->loop != nullptr) {
            // Single always-stepping loop: the synchronous path,
            // byte for byte.
            b = due.front()->loop->runIteration();
        } else {
            int custom_inflight = 0;
            for (const LockstepJob* j : due) {
                if (j->loop != nullptr) {
                    j->loop->beginIterationAsync(nullptr);
                } else {
                    ++custom_inflight;
                    j->begin([&custom_inflight] {
                        --custom_inflight;
                    });
                }
            }
            comm.queue().run();
            for (const LockstepJob* j : due) {
                if (j->loop != nullptr) {
                    THEMIS_ASSERT(
                        !j->loop->iterationInFlight(),
                        "event queue drained before every job's "
                        "iteration finished (lost completion "
                        "callback?)");
                    b += j->loop->lastIteration();
                } else {
                    b += j->last();
                }
            }
            THEMIS_ASSERT(custom_inflight == 0,
                          "event queue drained before every job's "
                          "request finished (lost completion "
                          "callback?)");
        }
        CommRuntime::EpochStats s = comm.finishIterationEpoch();
        accumulate(r, b, s);
        ++r.simulated_iterations;
        ++r.epochs_simulated;
        return {std::move(b), std::move(s)};
    };

    for (long long i = 0; i < eff.iterations; ++i) {
        const auto [b, s] = simulate_epoch(i);
        record(i, b, s);

        const long long k = confirmedCycle(i);
        if (k > 0 && r.steady_at < 0) {
            r.steady_at = static_cast<int>(i);
            r.steady_fingerprint = s.fingerprint;
            r.cycle_length = static_cast<int>(k);
        }
        if (k == 0 || i + 1 >= eff.iterations)
            continue;

        // The confirmed cycle, oldest epoch first: rounds i - k + 1
        // .. i. Copied out of the ring — recording replayed rounds
        // recycles the very slots the cycle lives in.
        std::vector<Epoch> block;
        block.reserve(static_cast<std::size_t>(k));
        for (long long m = k - 1; m >= 0; --m)
            block.push_back(
                ring[static_cast<std::size_t>(i - m) % cap]);

        if (eff.exactness_check) {
            // Proof mode: predict the replayable span analytically,
            // then keep simulating and hold every round — and the
            // books over the span — to the prediction. Under a fault
            // timeline the span ends at the next phase boundary and
            // the outer loop re-enters detection there.
            const long long n =
                replayableSpan(eff.iterations - (i + 1), block);
            if (n == 0)
                continue; // fault boundary abuts: keep simulating
            ConvergenceReport predicted = r;
            for (long long m = 0; m < n; ++m) {
                const Epoch& e =
                    block[static_cast<std::size_t>(m % k)];
                accumulate(predicted, e.b, e.s);
            }
            for (long long m = 0; m < n; ++m) {
                ++i;
                const auto [bk, sk] = simulate_epoch(i);
                const Epoch& e =
                    block[static_cast<std::size_t>(m % k)];
                assertIdentical(bk, sk, e.b, e.s,
                                static_cast<int>(i));
                record(i, bk, sk);
            }
            THEMIS_ASSERT(resultsBitIdentical(r, predicted),
                          "exactness check: the replay prediction "
                          "diverged from the fully simulated run");
            continue;
        }
        if (eff.replay) {
            // Analytic replay: integrate the confirmed cycle forward
            // — O(dimensions + classes) additions per round, no
            // event loop — up to the next fault-phase boundary (or
            // the end of the run). When simulation resumes afterward
            // the replayed span is rounded down to whole cycles: the
            // runtime state only matches round i's after a full
            // cycle, so resuming mid-cycle would simulate from the
            // wrong phase. A partial tail is fine at the true end of
            // the run, where nothing resumes. The fault driver's
            // base advances by the same additions the simulated path
            // would apply, and detection resumes past the boundary.
            long long n =
                replayableSpan(eff.iterations - (i + 1), block);
            if (n < eff.iterations - (i + 1))
                n -= n % k;
            if (n == 0)
                continue; // fault boundary abuts: keep simulating
            TimeNs replayed_span = 0.0;
            for (long long m = 0; m < n; ++m) {
                const Epoch& e =
                    block[static_cast<std::size_t>(m % k)];
                accumulate(r, e.b, e.s);
                ++r.replayed_iterations;
                ++r.epochs_replayed;
                // Advances the fault driver's base plus the
                // telemetry/trace time bases by the same additions
                // the simulated path would apply.
                comm.noteReplayedEpoch(e.s.duration);
                replayed_span += e.s.duration;
                record(i + 1 + m, e.b, e.s);
            }
            if (auto* tel = comm.telemetry();
                tel != nullptr && tel->trace != nullptr) {
                // Replay-span metadata: one span covering the skipped
                // rounds, ending at the (already-advanced) absolute
                // now, so the Perfetto timeline shows where replay
                // stood in for simulation.
                char label[64];
                std::snprintf(label, sizeof(label),
                              "replay x%lld (cycle %d)", n,
                              static_cast<int>(k));
                const TimeNs end_abs = tel->trace->timeBase() +
                                       comm.queue().now();
                tel->trace->spanAbs(stats::TraceWriter::kRunPid,
                                    stats::TraceWriter::kReplayTid,
                                    label, end_abs - replayed_span,
                                    end_abs);
            }
            i += n;
            continue;
        }
        // Replay disabled (measurement baseline): keep simulating;
        // steady_at stays at the first detection point.
    }

    finalizeUtilization(r, comm.topology());
    return r;
}

} // namespace themis::workload
