#include "workload/model_graph.hpp"

#include <sstream>

#include "common/string_util.hpp"

namespace themis::workload {

double
ModelGraph::totalFwdFlops() const
{
    double total = 0.0;
    for (const auto& l : layers)
        total += l.fwd_flops;
    return total;
}

double
ModelGraph::totalBwdFlops() const
{
    double total = 0.0;
    for (const auto& l : layers)
        total += l.bwd_flops + l.recompute_flops;
    return total;
}

Bytes
ModelGraph::totalDpGradBytes() const
{
    Bytes total = 0.0;
    for (const auto& l : layers)
        total += l.dp_grad_bytes;
    return total;
}

std::string
ModelGraph::describe() const
{
    std::ostringstream oss;
    oss << name << ": " << layers.size() << " layers, "
        << fmtDouble(totalFwdFlops() / 1.0e12, 2) << " TFLOP fwd/NPU, "
        << fmtBytes(totalDpGradBytes()) << " DP grads/NPU, MP degree "
        << parallel.mpDegree() << ", mb/NPU " << minibatch_per_npu;
    return oss.str();
}

} // namespace themis::workload
