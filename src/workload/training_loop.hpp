/**
 * @file
 * Training-loop co-simulation (paper Sec 5.2 / Sec 6.2).
 *
 * Walks a model's layers forward then backward on the shared event
 * queue. Compute advances simulated time through the roofline model;
 * layer communication is issued to the CommRuntime:
 *
 *  - blocking collectives (model-parallel activations/gradients)
 *    stall the loop — their wait time is *exposed MP communication*;
 *  - non-blocking collectives (DP gradients, DLRM's embedding
 *    all-to-all) overlap with the remaining compute and only gate the
 *    iteration end — the tail beyond the last compute is exposed,
 *    split into MP and DP portions.
 *
 * By construction every simulated instant of an iteration is either
 * forward compute, backward compute, exposed MP, or exposed DP time,
 * which is exactly the Fig 12 decomposition.
 */

#ifndef THEMIS_WORKLOAD_TRAINING_LOOP_HPP
#define THEMIS_WORKLOAD_TRAINING_LOOP_HPP

#include <map>

#include "runtime/comm_runtime.hpp"
#include "workload/model_graph.hpp"
#include "workload/roofline.hpp"

namespace themis::workload {

/** Fig 12 per-iteration time decomposition. */
struct IterationBreakdown
{
    TimeNs fwd_compute = 0.0;
    TimeNs bwd_compute = 0.0;
    TimeNs exposed_mp = 0.0;
    TimeNs exposed_dp = 0.0;
    TimeNs total = 0.0;

    /** Sum of the four buckets (== total, up to rounding). */
    TimeNs
    bucketSum() const
    {
        return fwd_compute + bwd_compute + exposed_mp + exposed_dp;
    }

    IterationBreakdown& operator+=(const IterationBreakdown& o);
};

/**
 * Bit-pattern equality over every bucket. This is the workload-level
 * steady-state criterion of the iteration replay engine (and what the
 * fig12 bench uses to prove optimized/baseline sweep equivalence):
 * two iterations whose decompositions differ in even one ulp are not
 * replayable copies of each other.
 */
bool bitIdentical(const IterationBreakdown& a,
                  const IterationBreakdown& b);

/** Drives training iterations of one model on one platform. */
class TrainingLoop
{
  public:
    /** Invoked when an asynchronously begun iteration completes. */
    using IterationCallback =
        std::function<void(const IterationBreakdown&)>;

    /**
     * @param comm     communication runtime (owns the topology)
     * @param model    workload definition
     * @param roofline accelerator compute model
     */
    TrainingLoop(runtime::CommRuntime& comm, ModelGraph model,
                 RooflineConfig roofline = {});

    /**
     * Simulate one training iteration to completion (drains the event
     * queue) and return its time decomposition.
     */
    IterationBreakdown runIteration();

    /** Simulate @p n iterations; returns the summed decomposition. */
    IterationBreakdown run(int n);

    /**
     * Begin one iteration *without* running the event queue: the
     * caller drives the (possibly shared) queue and @p on_done fires
     * — at the simulated instant the iteration completes — with the
     * iteration's decomposition. This is the multi-job stepping mode:
     * several loops (and periodic jobs) progress concurrently on one
     * queue, each discovering its own completion. A single loop driven
     * this way and then drained is bit-identical to runIteration().
     */
    void beginIterationAsync(IterationCallback on_done);

    /** True while an asynchronously begun iteration is in flight. */
    bool iterationInFlight() const
    {
        return iteration_started_ && !iteration_done_;
    }

    /** Decomposition of the most recently completed iteration. */
    const IterationBreakdown& lastIteration() const { return current_; }

    /**
     * Bind this loop to cluster job @p job: every collective it
     * issues carries the job id for per-tenant wire accounting.
     * Default 0 (the single-workload identity).
     */
    void setJob(int job) { job_ = job; }

    /** Bound job id. */
    int job() const { return job_; }

    /**
     * Force every collective of this loop onto one priority tier
     * (PriorityTier values) instead of the per-domain defaults; a
     * negative value restores the defaults. A cluster uses this to
     * assign whole-job priority classes.
     */
    void setTierOverride(int tier) { tier_override_ = tier; }

    /** The workload being trained. */
    const ModelGraph& model() const { return model_; }

  private:
    enum class WaitKind { None, FwdBarrier, Blocking, FinalDrain };

    void startFwdLayer();
    void afterFwdCompute();
    void startBwdLayer();
    void afterBwdCompute();
    void issueComm(const LayerCommOp& op, bool in_fwd);
    void issueDpGrads(Bytes grad_bytes, bool zero_style);
    void onBlockingDone();
    void onNonBlockingDone(CommDomain domain, bool in_fwd);
    void finishCompute();
    void maybeFinishIteration();
    void advanceAfterComm();

    runtime::CommRuntime& comm_;
    ModelGraph model_;
    RooflineConfig roofline_;
    std::map<CommDomain, std::vector<ScopeDim>> scopes_;
    std::map<CommDomain, long> ways_;

    /** Cluster job binding (0 = single-workload default). */
    int job_ = 0;

    /** Whole-loop priority tier override; negative = domain defaults. */
    int tier_override_ = -1;

    // Per-iteration state.
    bool in_fwd_ = true;
    int layer_ = 0;
    WaitKind waiting_ = WaitKind::None;
    int blocking_remaining_ = 0;
    int pending_fwd_nb_ = 0;
    int pending_mp_nb_ = 0;
    int pending_dp_ = 0;
    TimeNs wait_started_ = 0.0;
    TimeNs compute_end_ = 0.0;
    TimeNs drain_mark_ = 0.0;
    TimeNs iter_start_ = 0.0;
    bool iteration_started_ = false;
    bool iteration_done_ = false;
    IterationCallback on_iteration_done_;
    IterationBreakdown current_;
};

} // namespace themis::workload

#endif // THEMIS_WORKLOAD_TRAINING_LOOP_HPP
