/**
 * @file
 * Training-loop co-simulation (paper Sec 5.2 / Sec 6.2).
 *
 * Walks a model's layers forward then backward on the shared event
 * queue. Compute advances simulated time through the roofline model;
 * layer communication is issued to the CommRuntime:
 *
 *  - blocking collectives (model-parallel activations/gradients)
 *    stall the loop — their wait time is *exposed MP communication*;
 *  - non-blocking collectives (DP gradients, DLRM's embedding
 *    all-to-all) overlap with the remaining compute and only gate the
 *    iteration end — the tail beyond the last compute is exposed,
 *    split into MP and DP portions.
 *
 * By construction every simulated instant of an iteration is either
 * forward compute, backward compute, exposed MP, or exposed DP time,
 * which is exactly the Fig 12 decomposition.
 */

#ifndef THEMIS_WORKLOAD_TRAINING_LOOP_HPP
#define THEMIS_WORKLOAD_TRAINING_LOOP_HPP

#include <map>

#include "runtime/comm_runtime.hpp"
#include "workload/model_graph.hpp"
#include "workload/roofline.hpp"

namespace themis::workload {

/** Fig 12 per-iteration time decomposition. */
struct IterationBreakdown
{
    TimeNs fwd_compute = 0.0;
    TimeNs bwd_compute = 0.0;
    TimeNs exposed_mp = 0.0;
    TimeNs exposed_dp = 0.0;
    TimeNs total = 0.0;

    /** Sum of the four buckets (== total, up to rounding). */
    TimeNs
    bucketSum() const
    {
        return fwd_compute + bwd_compute + exposed_mp + exposed_dp;
    }

    IterationBreakdown& operator+=(const IterationBreakdown& o);
};

/**
 * Bit-pattern equality over every bucket. This is the workload-level
 * steady-state criterion of the iteration replay engine (and what the
 * fig12 bench uses to prove optimized/baseline sweep equivalence):
 * two iterations whose decompositions differ in even one ulp are not
 * replayable copies of each other.
 */
bool bitIdentical(const IterationBreakdown& a,
                  const IterationBreakdown& b);

/** Drives training iterations of one model on one platform. */
class TrainingLoop
{
  public:
    /**
     * @param comm     communication runtime (owns the topology)
     * @param model    workload definition
     * @param roofline accelerator compute model
     */
    TrainingLoop(runtime::CommRuntime& comm, ModelGraph model,
                 RooflineConfig roofline = {});

    /**
     * Simulate one training iteration to completion (drains the event
     * queue) and return its time decomposition.
     */
    IterationBreakdown runIteration();

    /** Simulate @p n iterations; returns the summed decomposition. */
    IterationBreakdown run(int n);

    /** The workload being trained. */
    const ModelGraph& model() const { return model_; }

  private:
    enum class WaitKind { None, FwdBarrier, Blocking, FinalDrain };

    void startFwdLayer();
    void afterFwdCompute();
    void startBwdLayer();
    void afterBwdCompute();
    void issueComm(const LayerCommOp& op, bool in_fwd);
    void issueDpGrads(Bytes grad_bytes, bool zero_style);
    void onBlockingDone();
    void onNonBlockingDone(CommDomain domain, bool in_fwd);
    void finishCompute();
    void maybeFinishIteration();
    void advanceAfterComm();

    runtime::CommRuntime& comm_;
    ModelGraph model_;
    RooflineConfig roofline_;
    std::map<CommDomain, std::vector<ScopeDim>> scopes_;
    std::map<CommDomain, long> ways_;

    // Per-iteration state.
    bool in_fwd_ = true;
    int layer_ = 0;
    WaitKind waiting_ = WaitKind::None;
    int blocking_remaining_ = 0;
    int pending_fwd_nb_ = 0;
    int pending_mp_nb_ = 0;
    int pending_dp_ = 0;
    TimeNs wait_started_ = 0.0;
    TimeNs compute_end_ = 0.0;
    TimeNs drain_mark_ = 0.0;
    bool iteration_done_ = false;
    IterationBreakdown current_;
};

} // namespace themis::workload

#endif // THEMIS_WORKLOAD_TRAINING_LOOP_HPP
