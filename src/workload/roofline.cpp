#include "workload/roofline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace themis::workload {

TimeNs
computeTime(double flops, Bytes mem_bytes, const RooflineConfig& cfg)
{
    THEMIS_ASSERT(cfg.peak_tflops > 0.0 && cfg.mem_bw_gbps > 0.0 &&
                      cfg.efficiency > 0.0,
                  "invalid roofline configuration");
    THEMIS_ASSERT(flops >= 0.0 && mem_bytes >= 0.0,
                  "negative compute demand");
    // TFLOP/s = 1e12 FLOP/s = 1e3 FLOP/ns; GB/s = 1 byte/ns.
    const double flop_per_ns = cfg.peak_tflops * 1.0e3 * cfg.efficiency;
    const double bytes_per_ns = cfg.mem_bw_gbps * cfg.efficiency;
    return std::max(flops / flop_per_ns, mem_bytes / bytes_per_ns);
}

} // namespace themis::workload
