#include "workload/parallel_spec.hpp"

#include "common/error.hpp"

namespace themis::workload {

ParallelSpec::ParallelSpec(int mp_npus)
    : mp_npus_(mp_npus)
{
    if (mp_npus_ < 1)
        THEMIS_FATAL("model-parallel degree must be >= 1, got "
                     << mp_npus_);
}

ParallelSpec
ParallelSpec::dataParallel()
{
    return ParallelSpec(1);
}

ParallelSpec
ParallelSpec::hybrid(int mp_npus)
{
    return ParallelSpec(mp_npus);
}

std::vector<ScopeDim>
ParallelSpec::scopeFor(CommDomain domain, const Topology& topo) const
{
    std::vector<ScopeDim> scope;
    if (domain == CommDomain::World) {
        for (int d = 0; d < topo.numDims(); ++d)
            scope.push_back(ScopeDim{d, topo.dim(d).size});
        return scope;
    }

    // Split every dimension's size into an MP part (filled from dim1
    // forward) and the complementary DP part.
    long remaining_mp = mp_npus_;
    for (int d = 0; d < topo.numDims(); ++d) {
        const int size = topo.dim(d).size;
        int mp_part = 1;
        if (remaining_mp > 1) {
            mp_part = static_cast<int>(
                remaining_mp < size ? remaining_mp : size);
            if (size % mp_part != 0)
                THEMIS_FATAL("model-parallel degree " << mp_npus_
                             << " does not align with dimension sizes of "
                             << topo.name());
            remaining_mp /= mp_part;
        }
        const int dp_part = size / mp_part;
        if (domain == CommDomain::ModelParallel && mp_part > 1)
            scope.push_back(ScopeDim{d, mp_part});
        if (domain == CommDomain::DataParallel && dp_part > 1)
            scope.push_back(ScopeDim{d, dp_part});
    }
    if (remaining_mp > 1)
        THEMIS_FATAL("model-parallel degree " << mp_npus_
                     << " exceeds the machine size of " << topo.name());
    if (scope.empty())
        THEMIS_FATAL(commDomainName(domain)
                     << " domain is empty on " << topo.name()
                     << " (degree mismatch)");
    return scope;
}

int
ParallelSpec::priorityTierFor(CommDomain domain) const
{
    return defaultPriorityTier(domain);
}

long
ParallelSpec::ways(CommDomain domain, const Topology& topo) const
{
    switch (domain) {
      case CommDomain::World:
        return topo.totalNpus();
      case CommDomain::ModelParallel:
        return mp_npus_;
      case CommDomain::DataParallel:
        THEMIS_ASSERT(topo.totalNpus() % mp_npus_ == 0,
                      "MP degree does not divide the machine");
        return topo.totalNpus() / mp_npus_;
    }
    THEMIS_PANIC("unknown CommDomain");
}

} // namespace themis::workload
