/**
 * @file
 * A training workload: named sequence of layers plus its
 * parallelization strategy and per-iteration metadata.
 */

#ifndef THEMIS_WORKLOAD_MODEL_GRAPH_HPP
#define THEMIS_WORKLOAD_MODEL_GRAPH_HPP

#include <string>
#include <vector>

#include "workload/layer.hpp"
#include "workload/parallel_spec.hpp"

namespace themis::workload {

/** One DNN training workload; see file comment. */
struct ModelGraph
{
    std::string name;

    /** Execution order for the forward pass (backward is reversed). */
    std::vector<Layer> layers;

    /** Parallelization strategy (Sec 5.2). */
    ParallelSpec parallel = ParallelSpec::dataParallel();

    /** Per-NPU mini-batch size (reporting only). */
    int minibatch_per_npu = 0;

    /**
     * Fuse all layers' DP gradients into one All-Reduce issued when
     * back-propagation completes (the paper's model: "exposed
     * communication occurs at the end of back-propagation"; this also
     * puts the workload collectives in Fig 8's 100MB-1GB range).
     * When false, each layer issues its own DP collective as its
     * backward pass finishes (ZeRO-style bucketing, Transformer-1T).
     */
    bool fused_dp_grads = true;

    /** Total forward FLOPs per NPU per iteration. */
    double totalFwdFlops() const;

    /** Total backward (+recompute) FLOPs per NPU per iteration. */
    double totalBwdFlops() const;

    /** Total per-NPU DP gradient bytes per iteration. */
    Bytes totalDpGradBytes() const;

    /** Multi-line summary for reports. */
    std::string describe() const;
};

} // namespace themis::workload

#endif // THEMIS_WORKLOAD_MODEL_GRAPH_HPP
