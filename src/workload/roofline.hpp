/**
 * @file
 * Roofline FP16 compute model (paper Sec 5.1: "we assumed roofline
 * FP16 performance from the total FLOPS available on current
 * state-of-the-art accelerators"). Defaults model an A100-class NPU.
 */

#ifndef THEMIS_WORKLOAD_ROOFLINE_HPP
#define THEMIS_WORKLOAD_ROOFLINE_HPP

#include "common/units.hpp"

namespace themis::workload {

/**
 * Accelerator compute/memory peaks. The defaults model the
 * next-generation NPUs the paper's platforms are built from
 * (B200-class: ~2 PFLOP/s FP16, ~8 TB/s HBM); calibrated so the
 * per-iteration communication-to-compute ratios of the four paper
 * workloads land in the ranges Fig 12's speedups imply. A100-class
 * values (312 TFLOP/s, 2039 GB/s) are a valid configuration too —
 * they shift every workload toward compute-bound and shrink all
 * speedups uniformly.
 */
struct RooflineConfig
{
    /** Peak dense FP16 throughput in TFLOP/s. */
    double peak_tflops = 2000.0;

    /** HBM bandwidth in GB/s. */
    double mem_bw_gbps = 8000.0;

    /** Achievable fraction of the peaks (kernel efficiency). */
    double efficiency = 1.0;
};

/**
 * Roofline execution time: max of the compute-bound and
 * memory-bound estimates.
 */
TimeNs computeTime(double flops, Bytes mem_bytes,
                   const RooflineConfig& cfg);

} // namespace themis::workload

#endif // THEMIS_WORKLOAD_ROOFLINE_HPP
