/**
 * @file
 * Parallelization strategy: maps logical communication domains onto
 * topology scopes (paper Sec 5.2).
 *
 * Model-parallel groups occupy the *first* dimensions of the platform
 * (highest bandwidth, closest NPUs); data-parallel replicas span what
 * remains. A model-parallel degree that does not align with dimension
 * boundaries splits a dimension into sub-groups (supported by the
 * runtime's ScopeDim participants).
 */

#ifndef THEMIS_WORKLOAD_PARALLEL_SPEC_HPP
#define THEMIS_WORKLOAD_PARALLEL_SPEC_HPP

#include <vector>

#include "core/chunk.hpp"
#include "topology/topology.hpp"
#include "workload/layer.hpp"

namespace themis::workload {

/** Domain-to-scope mapping; see file comment. */
class ParallelSpec
{
  public:
    /** Pure data-parallel over the whole machine. */
    static ParallelSpec dataParallel();

    /**
     * Hybrid: model-parallel over the first @p mp_npus NPUs
     * (mp_npus == 1 degenerates to pure data-parallel).
     */
    static ParallelSpec hybrid(int mp_npus);

    /** Model-parallel degree. */
    int mpDegree() const { return mp_npus_; }

    /**
     * Scope of @p domain on @p topo. DataParallel covers the
     * dimensions (or sub-dimensions) not consumed by model
     * parallelism; World covers everything. Throws ConfigError when
     * the MP degree cannot be carved out of the dimension sizes.
     */
    std::vector<ScopeDim> scopeFor(CommDomain domain,
                                   const Topology& topo) const;

    /** Number of NPUs in one @p domain communicator on @p topo. */
    long ways(CommDomain domain, const Topology& topo) const;

    /**
     * Priority tier of @p domain's collectives under this strategy.
     * Currently the domain default (MP urgent, World standard, DP
     * bulk); strategies that reshape domain criticality (e.g. a
     * pipeline schedule) override here rather than in every model.
     */
    int priorityTierFor(CommDomain domain) const;

  private:
    explicit ParallelSpec(int mp_npus);

    int mp_npus_ = 1;
};

} // namespace themis::workload

#endif // THEMIS_WORKLOAD_PARALLEL_SPEC_HPP
