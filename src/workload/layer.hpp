/**
 * @file
 * Workload-layer building blocks: one DNN layer with its compute
 * demands and the communication it triggers during training.
 *
 * Communication is expressed against logical *domains* rather than
 * physical dimensions so that model definitions stay independent of
 * the platform; the ParallelSpec maps domains to topology scopes
 * (paper Sec 5.2 parallelization strategies).
 */

#ifndef THEMIS_WORKLOAD_LAYER_HPP
#define THEMIS_WORKLOAD_LAYER_HPP

#include <string>
#include <vector>

#include "collective/phase.hpp"
#include "core/priority_policy.hpp"

namespace themis::workload {

/** Logical communicator a collective runs over. */
enum class CommDomain {
    DataParallel,  ///< replicas of the same model shard
    ModelParallel, ///< NPUs sharing one model shard
    World,         ///< every NPU (DLRM's embedding all-to-all)
};

/** Domain name for reports. */
std::string commDomainName(CommDomain domain);

/**
 * Default priority tier of a domain's traffic: blocking
 * model-parallel collectives stall the training loop the moment they
 * are issued (urgent); DLRM-style World traffic overlaps but gates a
 * forward barrier (standard); data-parallel gradient traffic only
 * gates the iteration end (bulk). Layers can override per op.
 */
int defaultPriorityTier(CommDomain domain);

/** One collective a layer triggers. */
struct LayerCommOp
{
    CollectiveType type = CollectiveType::AllReduce;

    /** Per-NPU collective size in bytes. */
    Bytes size = 0.0;

    CommDomain domain = CommDomain::ModelParallel;

    /**
     * Blocking ops stall the training loop until completion (e.g.
     * Transformer-1T activation All-Reduce); non-blocking ops overlap
     * with the remaining compute and only gate the iteration end
     * (e.g. DLRM's embedding All-to-All, all DP gradient traffic).
     */
    bool blocking = true;

    /**
     * Priority tag this op's collective carries to the runtime
     * (PriorityTier values); negative derives the tier from the
     * domain via defaultPriorityTier(). Inert under the default
     * uniform PriorityPolicy.
     */
    int priority_tier = -1;
};

/** One layer of the training workload. */
struct Layer
{
    std::string name;

    /** Forward-pass FLOPs per NPU. */
    double fwd_flops = 0.0;

    /** Backward-pass FLOPs per NPU (typically 2x forward). */
    double bwd_flops = 0.0;

    /**
     * Extra recompute FLOPs executed during the backward pass but
     * accounted as forward compute in reports (Transformer-1T's
     * forward-in-backprop under ZeRO; paper Fig 12 note).
     */
    double recompute_flops = 0.0;

    /** Forward memory traffic per NPU (roofline). */
    Bytes fwd_mem_bytes = 0.0;

    /** Backward memory traffic per NPU (roofline). */
    Bytes bwd_mem_bytes = 0.0;

    /**
     * Per-NPU weight-gradient bytes this layer contributes. The
     * training loop turns this into data-parallel communication when
     * the layer's backward pass completes: one All-Reduce by default,
     * or a Reduce-Scatter + All-Gather pair under ZeRO-style sharding.
     */
    Bytes dp_grad_bytes = 0.0;

    /** Use RS+AG instead of AR for the DP gradient traffic. */
    bool zero_style_dp = false;

    /** Collectives issued right after this layer's forward compute. */
    std::vector<LayerCommOp> fwd_comm;

    /** Collectives issued right after this layer's backward compute. */
    std::vector<LayerCommOp> bwd_comm;

    /**
     * Barrier: before this layer's forward compute, wait for all
     * outstanding non-blocking *forward* communication (DLRM waits
     * for the embedding All-to-All before its top MLP).
     */
    bool wait_pending_before_fwd = false;
};

} // namespace themis::workload

#endif // THEMIS_WORKLOAD_LAYER_HPP
