#include "workload/layer.hpp"

#include "common/error.hpp"

namespace themis::workload {

std::string
commDomainName(CommDomain domain)
{
    switch (domain) {
      case CommDomain::DataParallel:  return "DP";
      case CommDomain::ModelParallel: return "MP";
      case CommDomain::World:         return "World";
    }
    THEMIS_PANIC("unknown CommDomain " << static_cast<int>(domain));
}

int
defaultPriorityTier(CommDomain domain)
{
    switch (domain) {
      case CommDomain::ModelParallel:
        return static_cast<int>(PriorityTier::Urgent);
      case CommDomain::World:
        return static_cast<int>(PriorityTier::Standard);
      case CommDomain::DataParallel:
        return static_cast<int>(PriorityTier::Bulk);
    }
    THEMIS_PANIC("unknown CommDomain " << static_cast<int>(domain));
}

} // namespace themis::workload
