#include "workload/layer.hpp"

#include "common/error.hpp"

namespace themis::workload {

std::string
commDomainName(CommDomain domain)
{
    switch (domain) {
      case CommDomain::DataParallel:  return "DP";
      case CommDomain::ModelParallel: return "MP";
      case CommDomain::World:         return "World";
    }
    THEMIS_PANIC("unknown CommDomain " << static_cast<int>(domain));
}

} // namespace themis::workload
