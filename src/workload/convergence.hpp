/**
 * @file
 * Steady-state detector + iteration replay engine for multi-iteration
 * training (convergence) runs.
 *
 * A training workload issues byte-identical traffic every iteration,
 * and after the first iteration has warmed the plan cache (or simply
 * because planning is deterministic) the simulated schedule repeats
 * exactly. Simulating hundreds of identical iterations is therefore
 * pure waste — yet convergence studies and multi-job scenarios need
 * exactly such horizons.
 *
 * The runner executes each iteration inside a CommRuntime *iteration
 * epoch*: the event-queue and channel clocks are rebased to zero and
 * every statistics accumulator restarts, so an iteration's trajectory
 * is a deterministic function of the (quiescent) runtime state alone
 * and its measured stats are exact per-iteration deltas, bit-stable
 * across identical iterations. Each epoch yields a fingerprint (event
 * trace of every chunk-op start/finish, plan-cache keys, per-class
 * and per-dimension byte totals, utilization time, anti-starvation
 * streaks). Once `confirm_iterations` consecutive epochs are
 * identical — fingerprints and full stats, bit for bit — the
 * remaining iterations are *replayed analytically*: the steady
 * iteration's time, bytes and utilization are integrated forward with
 * O(dimensions + classes) additions per iteration instead of
 * re-running the event loop. The accumulation arithmetic is the same
 * one the fully simulated path uses, so replayed totals are
 * bit-identical to what full simulation would produce — and the
 * `exactness_check` mode proves it in-binary by co-running the full
 * simulation after detection and asserting every subsequent iteration
 * (and the final totals) against the replay prediction.
 */

#ifndef THEMIS_WORKLOAD_CONVERGENCE_HPP
#define THEMIS_WORKLOAD_CONVERGENCE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "workload/training_loop.hpp"

namespace themis::workload {

/** Tunables of a multi-iteration convergence run. */
struct ConvergenceOptions
{
    /** Iterations to account for (>= 1). */
    int iterations = 1;

    /**
     * Replay analytically once steady state is confirmed. Off =
     * simulate every iteration (measurement baseline; results are
     * bit-identical either way).
     */
    bool replay = true;

    /**
     * Consecutive bit-identical iterations required before the
     * remainder is replayed (>= 2; the first pair is one match).
     */
    int confirm_iterations = 2;

    /**
     * Keep simulating after detection and assert every subsequent
     * iteration — and the final totals — bit-identical to the replay
     * prediction (panics on divergence). Implies no wall-clock
     * savings; this is the proof mode.
     */
    bool exactness_check = false;
};

/** Outcome of a convergence run. */
struct ConvergenceReport
{
    /** Iterations accounted for (== options.iterations). */
    int iterations = 0;

    /** Iterations actually simulated through the event loop. */
    int simulated_iterations = 0;

    /** Iterations replayed analytically. */
    int replayed_iterations = 0;

    /**
     *0-based index of the iteration whose epoch confirmed steady
     * state, or -1 if it was never reached.
     */
    int steady_at = -1;

    /** Fingerprint of the steady iteration (0 if none). */
    std::uint64_t steady_fingerprint = 0;

    /** Summed decomposition over all iterations. */
    IterationBreakdown total;

    /** The final iteration's decomposition. */
    IterationBreakdown last;

    /** Per-iteration decompositions (size == iterations). */
    std::vector<IterationBreakdown> per_iteration;

    /** Summed communication-active window time. */
    TimeNs active_time = 0.0;

    /** Summed bytes progressed per dimension. */
    std::vector<Bytes> dim_bytes;

    /** Summed bytes progressed per flow class. */
    std::vector<Bytes> class_bytes;

    /** Summed chunk ops executed (replayed iterations count the
     *  steady iteration's ops). */
    std::uint64_t ops = 0;

    /** Collectives accounted for across all iterations. */
    long collectives = 0;

    /**
     * Non-empty when analytic replay was *refused* even though
     * options requested it (e.g. the runtime has observed more jobs
     * than the stepped loops cover, so steady-state fingerprints
     * could alias another tenant's state). The run falls back to full
     * simulation; the reason is also logged at Warn level.
     */
    std::string replay_refusal;

    /**
     * Fig-4-definition utilization over the whole run: total bytes /
     * (total machine bandwidth x active_time).
     */
    double utilization = 0.0;
};

/**
 * Bit-pattern equality of two runs' *simulation results* — total and
 * per-iteration decompositions, active time, per-dimension and
 * per-class bytes, op/collective counts, utilization. Run bookkeeping
 * (simulated vs replayed counts, wall time, steady_at) is excluded:
 * a replayed run and a fully simulated run of the same workload must
 * satisfy this even though they did different amounts of event-loop
 * work. The single definition of "bit-identical" shared by the
 * exactness-check mode and the convergence bench.
 */
bool resultsBitIdentical(const ConvergenceReport& a,
                         const ConvergenceReport& b);

/**
 * Run @p loop for opts.iterations training iterations on @p comm with
 * steady-state replay; see file comment. The runtime must be
 * quiescent and must be driven only by @p loop for the duration.
 * Refuses replay (full simulation, logged reason, report field) when
 * @p comm has observed collectives from more jobs than @p loop
 * covers — a single loop cannot fingerprint another tenant's state.
 */
ConvergenceReport runConverged(runtime::CommRuntime& comm,
                               TrainingLoop& loop,
                               const ConvergenceOptions& opts = {});

/**
 * Multi-job lockstep convergence: every loop in @p loops (each bound
 * to its own job id, all sharing @p comm) begins one iteration per
 * round; the shared event queue runs until all of them complete, and
 * the round is one iteration epoch. The epoch fingerprint therefore
 * covers *all* jobs' traces — issue hashes mix job ids and every
 * chunk op of every job lands in the per-dimension event trace — so
 * two identical rounds mean the whole cluster's joint trajectory
 * repeats, and the remainder replays analytically exactly as in the
 * single-job case. Reported breakdowns are summed across loops per
 * round. Jobs whose traffic is *not* iteration-shaped (periodic
 * inference with its own period) cannot join a lockstep round; the
 * cluster layer refuses replay for those mixes (see
 * cluster::Cluster::replayEligibility).
 */
ConvergenceReport
runConverged(runtime::CommRuntime& comm,
             const std::vector<TrainingLoop*>& loops,
             const ConvergenceOptions& opts = {});

} // namespace themis::workload

#endif // THEMIS_WORKLOAD_CONVERGENCE_HPP
