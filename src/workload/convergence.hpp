/**
 * @file
 * Steady-state detector + iteration replay engine for multi-iteration
 * training (convergence) runs, generalized to *period-k cycles*.
 *
 * A training workload issues byte-identical traffic every iteration,
 * and after the first iteration has warmed the plan cache (or simply
 * because planning is deterministic) the simulated schedule repeats
 * exactly. Simulating hundreds of identical iterations is therefore
 * pure waste — yet convergence studies and multi-job scenarios need
 * exactly such horizons.
 *
 * The runner executes each round inside a CommRuntime *iteration
 * epoch*: the event-queue and channel clocks are rebased to zero and
 * every statistics accumulator restarts, so a round's trajectory is a
 * deterministic function of the (quiescent) runtime state alone and
 * its measured stats are exact per-round deltas, bit-stable across
 * identical rounds. Each epoch yields a fingerprint (event trace of
 * every chunk-op start/finish, plan-cache keys, per-class and
 * per-dimension byte totals, utilization time, anti-starvation
 * streaks, fault counters).
 *
 * Multi-cadence mixes (a training loop stepping every round plus
 * inference tenants stepping every 2nd and 3rd round) never repeat
 * with period 1: their joint trajectory repeats with the *stepping
 * hyper-period* H = lcm(cadences). The detector therefore keeps a
 * bounded ring of per-epoch (breakdown, stats) entries and, for every
 * candidate cycle length k in {H, 2H, ...} up to `cycle_limit`,
 * counts how long the last k epochs have bit-matched the k epochs
 * before them. Once a candidate holds for `confirm_iterations - 1`
 * whole cycles, the remaining rounds are *replayed analytically*:
 * the confirmed k-epoch delta block is integrated forward cyclically
 * with O(dimensions + classes) additions per round instead of
 * re-running the event loop. The accumulation arithmetic is the same
 * one the fully simulated path uses, so replayed totals are
 * bit-identical to what full simulation would produce — and the
 * `exactness_check` mode proves it in-binary by co-running the full
 * simulation after detection and asserting every subsequent round
 * (and the final totals) against the replay prediction. With a single
 * always-stepping job the machinery reduces exactly to the original
 * period-1 engine, byte for byte.
 */

#ifndef THEMIS_WORKLOAD_CONVERGENCE_HPP
#define THEMIS_WORKLOAD_CONVERGENCE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "workload/training_loop.hpp"

namespace themis::workload {

/** Tunables of a multi-iteration convergence run. */
struct ConvergenceOptions
{
    /** Iterations to account for (>= 1). */
    int iterations = 1;

    /**
     * Replay analytically once steady state is confirmed. Off =
     * simulate every iteration (measurement baseline; results are
     * bit-identical either way).
     */
    bool replay = true;

    /**
     * Consecutive bit-identical iterations required before the
     * remainder is replayed (>= 2; the first pair is one match).
     */
    int confirm_iterations = 2;

    /**
     * Keep simulating after detection and assert every subsequent
     * iteration — and the final totals — bit-identical to the replay
     * prediction (panics on divergence). Implies no wall-clock
     * savings; this is the proof mode.
     */
    bool exactness_check = false;

    /**
     * Largest cycle length (in rounds) the detector may confirm.
     * 0 = auto: the job mix's stepping hyper-period H (1 for a
     * single-cadence mix). Candidates are the multiples of H up to
     * this bound; if the bound is below H, replay is refused with a
     * diagnostic (detection itself still needs no bound).
     */
    int cycle_limit = 0;
};

/** Outcome of a convergence run. */
struct ConvergenceReport
{
    /** Iterations accounted for (== options.iterations). */
    int iterations = 0;

    /** Iterations actually simulated through the event loop. */
    int simulated_iterations = 0;

    /** Iterations replayed analytically. */
    int replayed_iterations = 0;

    /**
     * Length (in rounds) of the first confirmed steady cycle, or 0 if
     * steady state was never reached. 1 for single-cadence mixes.
     */
    int cycle_length = 0;

    /** Stepping hyper-period of the job mix (lcm of cadences). */
    int hyper_period = 1;

    /**
     * Epoch counters: rounds driven through the event loop vs rounds
     * substituted analytically. For the single-cadence overloads these
     * equal simulated/replayed_iterations; for mixed-cadence lockstep
     * runs they count *rounds*, of which each job only steps a
     * cadence-th. Bookkeeping, excluded from resultsBitIdentical().
     */
    int epochs_simulated = 0;
    int epochs_replayed = 0;

    /**
     *0-based index of the iteration whose epoch confirmed steady
     * state, or -1 if it was never reached.
     */
    int steady_at = -1;

    /** Fingerprint of the steady cycle's last epoch (0 if none). */
    std::uint64_t steady_fingerprint = 0;

    /** Summed decomposition over all iterations. */
    IterationBreakdown total;

    /** The final iteration's decomposition. */
    IterationBreakdown last;

    /** Per-iteration decompositions (size == iterations). */
    std::vector<IterationBreakdown> per_iteration;

    /** Summed communication-active window time. */
    TimeNs active_time = 0.0;

    /** Summed bytes progressed per dimension. */
    std::vector<Bytes> dim_bytes;

    /** Summed bytes progressed per flow class. */
    std::vector<Bytes> class_bytes;

    /** Summed chunk ops executed (replayed iterations count the
     *  steady iteration's ops). */
    std::uint64_t ops = 0;

    /** Collectives accounted for across all iterations. */
    long collectives = 0;

    /**
     * Non-empty when analytic replay was *refused* even though
     * options requested it (e.g. the runtime has observed more jobs
     * than the stepped loops cover, so steady-state fingerprints
     * could alias another tenant's state). The run falls back to full
     * simulation; the reason is also logged at Warn level.
     */
    std::string replay_refusal;

    /**
     * Fig-4-definition utilization over the whole run: total bytes /
     * (total machine bandwidth x active_time).
     */
    double utilization = 0.0;
};

/**
 * Bit-pattern equality of two runs' *simulation results* — total and
 * per-iteration decompositions, active time, per-dimension and
 * per-class bytes, op/collective counts, utilization. Run bookkeeping
 * (simulated vs replayed counts, wall time, steady_at) is excluded:
 * a replayed run and a fully simulated run of the same workload must
 * satisfy this even though they did different amounts of event-loop
 * work. The single definition of "bit-identical" shared by the
 * exactness-check mode and the convergence bench.
 */
bool resultsBitIdentical(const ConvergenceReport& a,
                         const ConvergenceReport& b);

/**
 * Run @p loop for opts.iterations training iterations on @p comm with
 * steady-state replay; see file comment. The runtime must be
 * quiescent and must be driven only by @p loop for the duration.
 * Refuses replay (full simulation, logged reason, report field) when
 * @p comm has observed collectives from more jobs than @p loop
 * covers — a single loop cannot fingerprint another tenant's state.
 */
ConvergenceReport runConverged(runtime::CommRuntime& comm,
                               TrainingLoop& loop,
                               const ConvergenceOptions& opts = {});

/**
 * One participant of a lockstep convergence round. Either a training
 * loop (steps via beginIterationAsync) or a custom begin/last pair
 * (e.g. a periodic-inference request issued through the cluster
 * layer). The job steps on every round r with r % cadence == 0 —
 * cadence 2 means "every other round" — so a mixed-cadence cluster
 * mix maps periodic tenants onto relative round cadences and the
 * joint trajectory repeats with period lcm(cadences).
 */
struct LockstepJob
{
    /** Training-loop participant (nullptr for custom jobs). */
    TrainingLoop* loop = nullptr;

    /**
     * Custom participant: begin one unit of work, invoke the passed
     * completion callback when it finishes on the shared queue.
     * Required (with `last`) iff loop == nullptr.
     */
    std::function<void(const std::function<void()>&)> begin;

    /** Custom participant: the just-completed unit's breakdown. */
    std::function<IterationBreakdown()> last;

    /** Job id this participant covers (for the multi-tenant guard). */
    int job = 0;

    /** Steps on rounds r with r % cadence == 0 (>= 1). */
    int cadence = 1;
};

/**
 * Multi-job lockstep convergence: every loop in @p loops (each bound
 * to its own job id, all sharing @p comm) begins one iteration per
 * round; the shared event queue runs until all of them complete, and
 * the round is one iteration epoch. The epoch fingerprint therefore
 * covers *all* jobs' traces — issue hashes mix job ids and every
 * chunk op of every job lands in the per-dimension event trace — so
 * two identical rounds mean the whole cluster's joint trajectory
 * repeats, and the remainder replays analytically exactly as in the
 * single-job case. Reported breakdowns are summed across loops per
 * round.
 */
ConvergenceReport
runConverged(runtime::CommRuntime& comm,
             const std::vector<TrainingLoop*>& loops,
             const ConvergenceOptions& opts = {});

/**
 * Cadence-aware lockstep convergence over an arbitrary participant
 * mix: round r steps exactly the jobs with r % cadence == 0, the
 * shared queue drains, and the round is one iteration epoch. Steady
 * state is a period-k *cycle* (k a multiple of the cadence
 * hyper-period, bounded by opts.cycle_limit); once confirmed, whole
 * cycles are replayed analytically by integrating the k-epoch delta
 * block — bit-identical to full simulation, provable in-binary via
 * opts.exactness_check. This is the engine the cluster layer drives
 * for mixed training + periodic-inference mixes (see
 * cluster::Cluster::runConverged).
 */
ConvergenceReport
runConverged(runtime::CommRuntime& comm,
             const std::vector<LockstepJob>& jobs,
             const ConvergenceOptions& opts = {});

} // namespace themis::workload

#endif // THEMIS_WORKLOAD_CONVERGENCE_HPP
