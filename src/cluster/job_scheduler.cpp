#include "cluster/job_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "sim/sweep_runner.hpp"

namespace themis::cluster {

namespace {

/**
 * Hyper-period bound: a periodic mix whose least common multiple of
 * periods exceeds this many multiples of the shortest period is
 * treated as never reaching a common steady state (co-prime periods
 * in the limit).
 */
constexpr std::int64_t kMaxHyperPeriodRounds = 64;

std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    while (b != 0) {
        const std::int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace

JobScheduler::JobScheduler(std::vector<JobSpec> specs)
    : specs_(std::move(specs))
{
    if (specs_.empty())
        THEMIS_FATAL("cluster job mix is empty");
    if (static_cast<int>(specs_.size()) >
        runtime::kMaxJobsPerRuntime) {
        THEMIS_FATAL("cluster job mix has "
                     << specs_.size() << " jobs; the runtime's per-job "
                     << "accounting supports at most "
                     << runtime::kMaxJobsPerRuntime);
    }
    for (const JobSpec& spec : specs_) {
        spec.validate();
        if (spec.kind == JobKind::Training)
            ++training_jobs_;
    }
    for (const JobSpec& spec : specs_) {
        if (spec.kind == JobKind::PeriodicInference &&
            spec.max_requests == 0 && training_jobs_ == 0) {
            THEMIS_FATAL(
                "periodic job '"
                << spec.label()
                << "' is open-ended (max_requests = 0) but the mix has "
                   "no training job to bound the run; set "
                   "max_requests");
        }
    }
}

int
JobScheduler::effectiveTier(const JobSpec& spec)
{
    if (spec.priority_tier >= 0)
        return spec.priority_tier;
    return spec.kind == JobKind::PeriodicInference
               ? static_cast<int>(PriorityTier::Urgent)
               : -1; // training: per-domain defaults
}

void
JobScheduler::shiftArrivals(const std::vector<TimeNs>& offsets)
{
    THEMIS_ASSERT(offsets.size() == specs_.size(),
                  "offset vector rank " << offsets.size()
                                        << " != job count "
                                        << specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        THEMIS_ASSERT(offsets[i] >= 0.0,
                      "negative arrival offset " << offsets[i]);
        specs_[i].arrival += offsets[i];
    }
}

JobScheduler::ReplayEligibility
JobScheduler::replayEligibility() const
{
    ReplayEligibility out;

    // Periodic jobs: their cadence is absolute time, not iteration
    // rounds, so they cannot join a lockstep epoch. Distinguish the
    // fundamentally hopeless case (co-prime periods — no common
    // steady state exists) from the merely unimplemented one.
    std::vector<std::int64_t> periods;
    for (const JobSpec& spec : specs_)
        if (spec.kind == JobKind::PeriodicInference)
            periods.push_back(std::max<std::int64_t>(
                1, std::llround(spec.period)));
    if (periods.size() >= 2) {
        std::int64_t lcm = periods.front();
        const std::int64_t min_period =
            *std::min_element(periods.begin(), periods.end());
        bool unbounded = false;
        for (std::size_t i = 1; i < periods.size() && !unbounded;
             ++i) {
            const std::int64_t g = gcd64(lcm, periods[i]);
            // lcm := lcm * p / g, with an early bail before overflow
            // (past the bound the exact value no longer matters).
            const std::int64_t factor = periods[i] / g;
            if (lcm > kMaxHyperPeriodRounds * min_period / factor)
                unbounded = true;
            else
                lcm *= factor;
        }
        if (unbounded || lcm / min_period > kMaxHyperPeriodRounds) {
            std::ostringstream oss;
            oss << "periodic jobs have co-prime (or nearly co-prime) "
                   "periods: their hyper-period exceeds "
                << kMaxHyperPeriodRounds
                << "x the shortest period, so the mix never reaches a "
                   "common steady state; convergence replay refused";
            out.reason = oss.str();
            return out;
        }
    }
    if (!periods.empty()) {
        out.reason =
            "periodic-inference cadence is clocked in absolute time, "
            "not iteration rounds; a common quiescent point with the "
            "training iterations is not guaranteed, so the mix is "
            "simulated in full (convergence replay refused)";
        return out;
    }

    // Training-only: lockstep rounds need a common start and a common
    // horizon.
    const int iters = specs_.front().iterations;
    for (const JobSpec& spec : specs_) {
        if (spec.arrival != 0.0) {
            out.reason =
                "job '" + spec.label() +
                "' arrives at a non-zero offset; lockstep rounds need "
                "a common start (convergence replay refused)";
            return out;
        }
        if (spec.iterations != iters) {
            out.reason =
                "training jobs disagree on iteration counts; lockstep "
                "rounds need a common horizon (convergence replay "
                "refused)";
            return out;
        }
    }
    out.eligible = true;
    return out;
}

OffsetSearchResult
searchPhaseOffsets(const Topology& topo,
                   const runtime::RuntimeConfig& config,
                   const std::vector<JobSpec>& specs,
                   const OffsetSearchOptions& options)
{
    THEMIS_ASSERT(options.steps >= 1, "need at least one candidate");
    THEMIS_ASSERT(options.iterations >= 1,
                  "need at least one iteration per candidate");
    // Validate the mix up front (and reuse the scheduler's checks).
    JobScheduler base(specs);

    // Reference period: the first training job's solo iteration time.
    std::size_t t0 = specs.size();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].kind == JobKind::Training) {
            t0 = i;
            break;
        }
    }
    if (t0 == specs.size())
        THEMIS_FATAL("phase-offset search needs at least one training "
                     "job (periodic cadences are fixed by spec)");
    TimeNs base_period = 0.0;
    {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, config);
        workload::TrainingLoop loop(comm, specs[t0].model,
                                    specs[t0].roofline);
        base_period = loop.runIteration().total;
    }
    THEMIS_ASSERT(base_period > 0.0, "solo iteration took no time");

    // Candidates simulate a short horizon (options.iterations per
    // training job): the searched quantity is the steady interleaving
    // pattern, which shows after a couple of iterations.
    std::vector<JobSpec> eval_specs = specs;
    for (JobSpec& spec : eval_specs)
        if (spec.kind == JobKind::Training)
            spec.iterations = options.iterations;

    const std::size_t n = specs.size();
    std::vector<std::vector<TimeNs>> offset_vectors;
    for (int f = 0; f < options.steps; ++f) {
        std::vector<TimeNs> offsets(n, 0.0);
        const double frac =
            static_cast<double>(f) / options.steps;
        for (std::size_t k = 0; k < n; ++k)
            offsets[k] = static_cast<double>(k) * frac * base_period;
        offset_vectors.push_back(std::move(offsets));
    }

    const auto metrics = sim::sweepIndexed(
        offset_vectors.size(),
        [&](std::size_t i, sim::EventQueue& queue) {
            JobScheduler sched(eval_specs);
            sched.shiftArrivals(offset_vectors[i]);
            Cluster cell(queue, topo, config, std::move(sched));
            const ClusterReport rep = cell.run();
            double metric = 0.0;
            bool any_training = false;
            for (const JobStats& js : rep.jobs) {
                if (js.kind != JobKind::Training)
                    continue;
                any_training = true;
                metric += js.mean_iteration;
            }
            return any_training ? metric : rep.makespan;
        },
        sim::SweepOptions{options.threads});

    OffsetSearchResult out;
    out.base_period = base_period;
    out.zero_metric = metrics.front();
    for (std::size_t i = 0; i < offset_vectors.size(); ++i) {
        out.candidates.push_back(
            OffsetCandidate{offset_vectors[i], metrics[i]});
        if (i == 0 || metrics[i] < out.best.metric)
            out.best = out.candidates.back();
    }
    return out;
}

} // namespace themis::cluster
