#include "cluster/job_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "sim/sweep_runner.hpp"

namespace themis::cluster {

namespace {

std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    while (b != 0) {
        const std::int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/** lcm with saturation at int64 max (good enough for diagnostics). */
std::int64_t
lcm64Saturating(std::int64_t a, std::int64_t b)
{
    const std::int64_t g = gcd64(a, b);
    const std::int64_t f = b / g;
    constexpr std::int64_t kMax =
        std::numeric_limits<std::int64_t>::max();
    if (f != 0 && a > kMax / f)
        return kMax;
    return a * f;
}

} // namespace

JobScheduler::JobScheduler(std::vector<JobSpec> specs)
    : specs_(std::move(specs))
{
    if (specs_.empty())
        THEMIS_FATAL("cluster job mix is empty");
    if (static_cast<int>(specs_.size()) >
        runtime::kMaxJobsPerRuntime) {
        THEMIS_FATAL("cluster job mix has "
                     << specs_.size() << " jobs; the runtime's per-job "
                     << "accounting supports at most "
                     << runtime::kMaxJobsPerRuntime);
    }
    for (const JobSpec& spec : specs_) {
        spec.validate();
        if (spec.kind == JobKind::Training)
            ++training_jobs_;
    }
    for (const JobSpec& spec : specs_) {
        if (spec.kind == JobKind::PeriodicInference &&
            spec.max_requests == 0 && training_jobs_ == 0) {
            THEMIS_FATAL(
                "periodic job '"
                << spec.label()
                << "' is open-ended (max_requests = 0) but the mix has "
                   "no training job to bound the run; set "
                   "max_requests");
        }
    }
}

int
JobScheduler::effectiveTier(const JobSpec& spec)
{
    if (spec.priority_tier >= 0)
        return spec.priority_tier;
    return spec.kind == JobKind::PeriodicInference
               ? static_cast<int>(PriorityTier::Urgent)
               : -1; // training: per-domain defaults
}

void
JobScheduler::shiftArrivals(const std::vector<TimeNs>& offsets)
{
    THEMIS_ASSERT(offsets.size() == specs_.size(),
                  "offset vector rank " << offsets.size()
                                        << " != job count "
                                        << specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        THEMIS_ASSERT(offsets[i] >= 0.0,
                      "negative arrival offset " << offsets[i]);
        specs_[i].arrival += offsets[i];
    }
}

JobScheduler::LockstepPlan
JobScheduler::lockstepPlan(std::int64_t cycle_limit) const
{
    LockstepPlan out;
    out.cadences.assign(specs_.size(), 1);
    if (cycle_limit < 1) {
        out.reason = "cycle limit " + std::to_string(cycle_limit) +
                     " is not positive; need at least one round "
                     "(convergence replay refused)";
        return out;
    }

    // Lockstep rounds are anchored by training iterations: every
    // round restarts from quiescence, so a pure request stream has
    // nothing to pace it.
    if (training_jobs_ == 0) {
        out.reason =
            "mix has no training job; lockstep rounds are anchored "
            "by training iterations (convergence replay refused)";
        return out;
    }

    // Common start and a common training horizon.
    int iters = -1;
    for (const JobSpec& spec : specs_) {
        if (spec.arrival != 0.0) {
            out.reason =
                "job '" + spec.label() +
                "' arrives at a non-zero offset; lockstep rounds need "
                "a common start (convergence replay refused)";
            return out;
        }
        if (spec.kind != JobKind::Training)
            continue;
        if (iters < 0)
            iters = spec.iterations;
        if (spec.iterations != iters) {
            out.reason =
                "training jobs disagree on iteration counts; lockstep "
                "rounds need a common horizon (convergence replay "
                "refused)";
            return out;
        }
    }

    // Periodic jobs join by reinterpreting their periods as relative
    // round cadences: cadence_i = period_i / gcd(all periods). Only
    // open-ended streams qualify — a bounded stream stops mid-run, so
    // no round pattern of the mix can repeat forever.
    std::vector<std::size_t> periodic_idx;
    std::vector<std::int64_t> periods;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const JobSpec& spec = specs_[i];
        if (spec.kind != JobKind::PeriodicInference)
            continue;
        if (spec.max_requests > 0) {
            out.reason =
                "periodic job '" + spec.label() + "' is bounded (" +
                std::to_string(spec.max_requests) +
                " requests); it would stop mid-run and break the "
                "steady cycle (convergence replay refused)";
            return out;
        }
        const std::int64_t p = std::llround(spec.period);
        if (p <= 0) {
            std::ostringstream oss;
            oss << "periodic job '" << spec.label() << "' has period "
                << spec.period << " ns, which rounds to "
                << p
                << "; cadence derivation needs a positive integer "
                   "period (convergence replay refused)";
            out.reason = oss.str();
            return out;
        }
        periodic_idx.push_back(i);
        periods.push_back(p);
    }

    if (!periods.empty()) {
        std::int64_t g = periods.front();
        for (std::int64_t p : periods)
            g = gcd64(g, p);
        std::vector<std::int64_t> cadences(periods.size());
        std::int64_t hyper = 1;
        for (std::size_t j = 0; j < periods.size(); ++j) {
            cadences[j] = periods[j] / g;
            hyper = lcm64Saturating(hyper, cadences[j]);
        }
        if (hyper > cycle_limit) {
            // Diagnose the dominant contributors: the pair of
            // periodic jobs with the largest pairwise cadence lcm
            // (co-prime periods in the limit).
            std::size_t wa = 0, wb = periods.size() > 1 ? 1 : 0;
            std::int64_t worst = 0;
            for (std::size_t a = 0; a < periods.size(); ++a) {
                for (std::size_t b = a + 1; b < periods.size(); ++b) {
                    const std::int64_t l =
                        lcm64Saturating(cadences[a], cadences[b]);
                    if (l > worst) {
                        worst = l;
                        wa = a;
                        wb = b;
                    }
                }
            }
            std::ostringstream oss;
            oss << "stepping hyper-period lcm = " << hyper
                << " rounds exceeds the cycle limit " << cycle_limit;
            if (periods.size() > 1) {
                oss << "; worst pair: '"
                    << specs_[periodic_idx[wa]].label() << "' (period "
                    << periods[wa] << " ns, cadence " << cadences[wa]
                    << ") and '" << specs_[periodic_idx[wb]].label()
                    << "' (period " << periods[wb] << " ns, cadence "
                    << cadences[wb] << "), pairwise lcm " << worst;
            }
            oss << "; co-prime (or nearly co-prime) periods never "
                   "reach a confirmable steady cycle — raise "
                   "--cycle-limit or adjust the periods (convergence "
                   "replay refused)";
            out.reason = oss.str();
            return out;
        }
        for (std::size_t j = 0; j < periods.size(); ++j)
            out.cadences[periodic_idx[j]] =
                static_cast<int>(cadences[j]);
        out.hyper_period = static_cast<int>(hyper);
    }

    out.eligible = true;
    return out;
}

JobScheduler::ReplayEligibility
JobScheduler::replayEligibility() const
{
    const LockstepPlan plan = lockstepPlan();
    ReplayEligibility out;
    out.eligible = plan.eligible;
    out.reason = plan.reason;
    return out;
}

OffsetSearchResult
searchPhaseOffsets(const Topology& topo,
                   const runtime::RuntimeConfig& config,
                   const std::vector<JobSpec>& specs,
                   const OffsetSearchOptions& options)
{
    THEMIS_ASSERT(options.steps >= 1, "need at least one candidate");
    THEMIS_ASSERT(options.iterations >= 1,
                  "need at least one iteration per candidate");
    // Validate the mix up front (and reuse the scheduler's checks).
    JobScheduler base(specs);

    // Reference period: the first training job's solo iteration time.
    std::size_t t0 = specs.size();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].kind == JobKind::Training) {
            t0 = i;
            break;
        }
    }
    if (t0 == specs.size())
        THEMIS_FATAL("phase-offset search needs at least one training "
                     "job (periodic cadences are fixed by spec)");
    TimeNs base_period = 0.0;
    {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, config);
        workload::TrainingLoop loop(comm, specs[t0].model,
                                    specs[t0].roofline);
        base_period = loop.runIteration().total;
    }
    THEMIS_ASSERT(base_period > 0.0, "solo iteration took no time");

    // Candidates simulate a short horizon (options.iterations per
    // training job): the searched quantity is the steady interleaving
    // pattern, which shows after a couple of iterations.
    std::vector<JobSpec> eval_specs = specs;
    for (JobSpec& spec : eval_specs)
        if (spec.kind == JobKind::Training)
            spec.iterations = options.iterations;

    const std::size_t n = specs.size();
    std::vector<std::vector<TimeNs>> offset_vectors;
    for (int f = 0; f < options.steps; ++f) {
        std::vector<TimeNs> offsets(n, 0.0);
        const double frac =
            static_cast<double>(f) / options.steps;
        for (std::size_t k = 0; k < n; ++k)
            offsets[k] = static_cast<double>(k) * frac * base_period;
        offset_vectors.push_back(std::move(offsets));
    }

    // Replay-eligible mixes ride the period-k convergence fast path:
    // each candidate becomes a lockstep run whose per-round phase
    // delays encode the offsets (arrival shifts cannot survive rounds
    // that restart from quiescence), steady cycles replay
    // analytically, and the metric is the mean round time — equal to
    // the summed training mean-iteration metric for training-only
    // mixes. Ineligible mixes keep the free-running evaluation.
    const auto plan = base.lockstepPlan();
    const auto metrics =
        plan.eligible
            ? sim::sweepIndexed(
                  offset_vectors.size(),
                  [&](std::size_t i, sim::EventQueue& queue) {
                      Cluster cell(queue, topo, config,
                                   JobScheduler(eval_specs));
                      workload::ConvergenceOptions copts;
                      copts.iterations = options.iterations;
                      const auto rep = cell.runConverged(
                          copts, offset_vectors[i]);
                      return rep.total.total / options.iterations;
                  },
                  sim::SweepOptions{options.threads})
            : sim::sweepIndexed(
                  offset_vectors.size(),
                  [&](std::size_t i, sim::EventQueue& queue) {
                      JobScheduler sched(eval_specs);
                      sched.shiftArrivals(offset_vectors[i]);
                      Cluster cell(queue, topo, config,
                                   std::move(sched));
                      const ClusterReport rep = cell.run();
                      double metric = 0.0;
                      bool any_training = false;
                      for (const JobStats& js : rep.jobs) {
                          if (js.kind != JobKind::Training)
                              continue;
                          any_training = true;
                          metric += js.mean_iteration;
                      }
                      return any_training ? metric : rep.makespan;
                  },
                  sim::SweepOptions{options.threads});

    OffsetSearchResult out;
    out.base_period = base_period;
    out.zero_metric = metrics.front();
    for (std::size_t i = 0; i < offset_vectors.size(); ++i) {
        out.candidates.push_back(
            OffsetCandidate{offset_vectors[i], metrics[i]});
        if (i == 0 || metrics[i] < out.best.metric)
            out.best = out.candidates.back();
    }
    return out;
}

} // namespace themis::cluster
