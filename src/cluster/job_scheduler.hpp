/**
 * @file
 * Cluster job admission and placement-in-time.
 *
 * The JobScheduler owns the static side of a cluster run: it
 * validates the job mix, assigns contiguous job ids, resolves each
 * job's whole-job priority tier (the runtime's PriorityPolicy then
 * maps tiers to wire-level FlowClasses), and decides *when* each job
 * starts. Arrival times come from the specs; on top of that the
 * scheduler offers a CASSINI-style *phase-offset search*: because
 * training traffic is bursty (compute phases alternate with
 * communication bursts), shifting one job's start time by a fraction
 * of an iteration can interleave the jobs' bursts instead of
 * colliding them — the same total traffic finishes sooner with no
 * priority knob at all. The search simulates candidate offset
 * vectors as independent cells across the SweepRunner's workers and
 * picks the best aggregate iteration time.
 *
 * It also answers *replay eligibility*: whether a mix can use the
 * steady-state convergence replay engine. Lockstep rounds require
 * every tenant to quiesce at common round boundaries; periodic jobs
 * join by reinterpreting their periods as relative round *cadences*
 * (period / gcd of all periods), so a 2e5:3e5 mix steps its tenants
 * every 2nd and 3rd round and the joint trajectory repeats with the
 * cadence hyper-period lcm. Mixes whose hyper-period exceeds the
 * cycle limit — co-prime periods in the limit — never reach a
 * confirmable steady cycle, so the scheduler refuses replay for
 * those with a concrete reason (the computed LCM and the offending
 * job pair) instead of silently integrating a fingerprint that
 * cannot repeat.
 */

#ifndef THEMIS_CLUSTER_JOB_SCHEDULER_HPP
#define THEMIS_CLUSTER_JOB_SCHEDULER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/job.hpp"
#include "runtime/comm_runtime.hpp"
#include "topology/topology.hpp"

namespace themis::cluster {

/** Validates and time-places a job mix; see file comment. */
class JobScheduler
{
  public:
    /** Verdict on steady-state convergence replay for a job mix. */
    struct ReplayEligibility
    {
        bool eligible = false;

        /** Human-readable refusal reason when not eligible. */
        std::string reason;
    };

    /**
     * How a mix maps onto lockstep convergence rounds: per-job round
     * cadences (training jobs step every round; periodic jobs step
     * every period/gcd rounds) and the resulting stepping
     * hyper-period. Ineligible mixes carry the refusal reason.
     */
    struct LockstepPlan
    {
        bool eligible = false;

        /** Human-readable refusal reason when not eligible. */
        std::string reason;

        /** Rounds between steps, one entry per job (spec order). */
        std::vector<int> cadences;

        /** lcm of the cadences (1 for training-only mixes). */
        int hyper_period = 1;
    };

    /**
     * Default bound on the confirmable cycle length (in rounds) when
     * the caller does not pass --cycle-limit: mixes whose stepping
     * hyper-period exceeds this are refused as never reaching a
     * practical steady state.
     */
    static constexpr std::int64_t kDefaultCycleLimit = 64;

    /**
     * @param specs one entry per job; ids are assigned by position.
     * Throws ConfigError on an ill-formed mix (bad specs, open-ended
     * periodic jobs without any training job to bound them, more jobs
     * than the runtime's accounting supports).
     */
    explicit JobScheduler(std::vector<JobSpec> specs);

    /** The validated specs, in job-id order. */
    const std::vector<JobSpec>& specs() const { return specs_; }

    /** Number of jobs. */
    int jobCount() const { return static_cast<int>(specs_.size()); }

    /** True when at least one training job is present. */
    bool hasTraining() const { return training_jobs_ > 0; }

    /**
     * Priority tier job @p job's collectives carry: the spec's tier
     * if set, otherwise the kind default (training: per-domain tiers,
     * reported as -1; inference: Urgent).
     */
    static int effectiveTier(const JobSpec& spec);

    /**
     * Shift every job's arrival by its entry in @p offsets (same
     * length as specs; values >= 0). This is how an offset-search
     * result is applied before constructing the cluster.
     */
    void shiftArrivals(const std::vector<TimeNs>& offsets);

    /**
     * Can this mix run under the convergence replay engine (lockstep
     * rounds, period-k steady-cycle detection, analytic integration)?
     * Eligible when every job starts at arrival 0, training jobs
     * agree on an iteration count, periodic jobs are open-ended
     * (bounded streams would stop mid-run and break the cycle), at
     * least one training job anchors the rounds, and the cadence
     * hyper-period fits @p cycle_limit. Refusals name the concrete
     * obstacle — for hyper-period blowups, the computed LCM and the
     * offending job pair.
     */
    LockstepPlan
    lockstepPlan(std::int64_t cycle_limit = kDefaultCycleLimit) const;

    /**
     * Boolean façade over lockstepPlan() at the default cycle limit
     * (kept for callers that only need the verdict + reason).
     */
    ReplayEligibility replayEligibility() const;

  private:
    std::vector<JobSpec> specs_;
    int training_jobs_ = 0;
};

/** Tunables of the phase-offset search. */
struct OffsetSearchOptions
{
    /**
     * Candidate start-phase fractions per search: offsets are
     * k * (f / steps) * base_period for job k, f = 0..steps-1
     * (f = 0 is the as-specified arrival vector and is always
     * evaluated, so the result can never be worse than not
     * searching).
     */
    int steps = 6;

    /** Sweep worker threads (0 = SweepRunner default). */
    int threads = 0;

    /** Iterations each candidate simulates per training job (>= 1). */
    int iterations = 2;
};

/** One evaluated offset vector. */
struct OffsetCandidate
{
    /** Arrival shift per job (same order as the specs). */
    std::vector<TimeNs> offsets;

    /**
     * Aggregate cost: summed mean iteration time over the training
     * jobs (the makespan when the mix has no training jobs).
     */
    double metric = 0.0;
};

/** Outcome of searchPhaseOffsets(). */
struct OffsetSearchResult
{
    /** Best candidate (lowest metric; ties keep the earliest). */
    OffsetCandidate best;

    /** The zero-offset (as-specified) candidate's metric. */
    double zero_metric = 0.0;

    /** Reference period the fractions scale (job 0 solo iteration). */
    TimeNs base_period = 0.0;

    /** Every evaluated candidate, in fraction order. */
    std::vector<OffsetCandidate> candidates;
};

/**
 * CASSINI-style interleaving search: simulate the job mix under
 * candidate arrival-offset vectors (independent cells across sweep
 * workers, sharing @p config's plan cache if set) and return the
 * offsets minimizing aggregate iteration time. The reference period
 * is job 0's solo iteration duration, measured first.
 */
OffsetSearchResult
searchPhaseOffsets(const Topology& topo,
                   const runtime::RuntimeConfig& config,
                   const std::vector<JobSpec>& specs,
                   const OffsetSearchOptions& options = {});

} // namespace themis::cluster

#endif // THEMIS_CLUSTER_JOB_SCHEDULER_HPP
