/**
 * @file
 * Cluster job descriptions and per-job statistics.
 *
 * A *job* is one tenant of a shared training fabric: either a
 * multi-iteration training workload (a model from the zoo or a custom
 * graph, driven by workload::TrainingLoop in its asynchronous
 * stepping mode) or a *periodic inference* job in the Metronome
 * mold — a fixed-size collective issued on a fixed period, each
 * request carrying a completion deadline. Jobs arrive at configurable
 * times, carry a whole-job priority tier (mapped to a wire-level
 * FlowClass by the runtime's PriorityPolicy), and are tagged with a
 * job id that partitions the shared channels' byte accounting, so a
 * cluster run can prove per-tenant conservation and report fabric
 * share per job.
 */

#ifndef THEMIS_CLUSTER_JOB_HPP
#define THEMIS_CLUSTER_JOB_HPP

#include <string>

#include "core/chunk.hpp"
#include "core/priority_policy.hpp"
#include "workload/model_graph.hpp"
#include "workload/roofline.hpp"
#include "workload/training_loop.hpp"

namespace themis::cluster {

/** What kind of tenant a job is. */
enum class JobKind {
    Training,          ///< iterative TrainingLoop workload
    PeriodicInference, ///< fixed-size collectives on a period+deadline
};

/** Kind name ("train"/"infer") for reports. */
std::string jobKindName(JobKind kind);

/** Static description of one cluster job; see file comment. */
struct JobSpec
{
    JobKind kind = JobKind::Training;

    /** Report label; empty derives one from the kind and workload. */
    std::string name;

    /** Simulated arrival time (jobs may start staggered). */
    TimeNs arrival = 0.0;

    /**
     * Whole-job priority tier (PriorityTier values). Negative keeps
     * the defaults: training traffic uses the per-domain tiers (MP
     * urgent / World standard / DP bulk); periodic inference defaults
     * to Urgent (its deadline is the whole point).
     */
    int priority_tier = -1;

    // --- training jobs ---

    /** Workload to train (must have layers when kind == Training). */
    workload::ModelGraph model;

    /** Training iterations to run (>= 1). */
    int iterations = 1;

    /** Accelerator compute model for the training loop. */
    workload::RooflineConfig roofline{};

    // --- periodic inference jobs ---

    /** Collective pattern each request issues. */
    CollectiveType request_type = CollectiveType::AllReduce;

    /** Per-NPU size of each request's collective (> 0). */
    Bytes request_size = 0.0;

    /** Issue period (> 0); requests fire open-loop on this cadence. */
    TimeNs period = 0.0;

    /** Per-request completion deadline; 0 disables deadline stats. */
    TimeNs deadline = 0.0;

    /**
     * Requests to issue; 0 means "until every training job in the
     * cluster finishes" (invalid in a cluster with no training jobs).
     */
    int max_requests = 0;

    /** Convenience constructor for a training job. */
    static JobSpec training(workload::ModelGraph model, int iterations,
                            TimeNs arrival = 0.0, int tier = -1);

    /** Convenience constructor for a periodic-inference job. */
    static JobSpec periodicInference(Bytes request_size, TimeNs period,
                                     TimeNs deadline = 0.0,
                                     TimeNs arrival = 0.0,
                                     int tier = -1);

    /** Resolved report label. */
    std::string label() const;

    /** Throws ConfigError on an ill-formed spec. */
    void validate() const;
};

/** Everything one job did during a cluster run. */
struct JobStats
{
    /** Job id (index in the cluster's spec list). */
    int job = 0;

    std::string name;
    JobKind kind = JobKind::Training;

    /** Arrival and completion times; jct = finished - arrival. */
    TimeNs arrival = 0.0;
    TimeNs finished = -1.0;
    TimeNs jct() const { return finished - arrival; }

    // --- training ---

    /** Completed training iterations. */
    int iterations = 0;

    /** Summed decomposition over the job's iterations. */
    workload::IterationBreakdown totals;

    /** Mean iteration duration. */
    TimeNs mean_iteration = 0.0;

    /**
     * Share of the job's time that was exposed communication
     * ((exposed MP + exposed DP) / total); negative for non-training
     * jobs.
     */
    double exposed_share = -1.0;

    // --- periodic inference ---

    /** Requests issued / completed. */
    int requests_issued = 0;
    int requests_completed = 0;

    /** Mean request completion latency. */
    TimeNs mean_latency = 0.0;

    /** Requests that met / missed their deadline. */
    int deadline_hits = 0;
    int deadline_misses = 0;

    /** Hit fraction; negative when the job carries no deadline. */
    double deadline_hit_rate = -1.0;

    // --- wire-level (from CommRuntime::jobReports()) ---

    /** Bytes this job progressed across every dimension. */
    Bytes progressed = 0.0;

    /** Job share of machine bandwidth in comm-active windows. */
    double utilization = 0.0;

    /** Collectives the job issued / completed. */
    int collectives_issued = 0;
    int collectives_completed = 0;

    // --- telemetry tails ---

    /**
     * Unit-time tail (ns) from the job's telemetry histogram: p99 and
     * worst case over iteration durations (training) or request
     * latencies (inference). Negative when the job completed no units
     * (or, for lockstep training rows, when per-step durations are
     * not individually tracked).
     */
    double unit_p99 = -1.0;
    double unit_max = -1.0;
};

} // namespace themis::cluster

#endif // THEMIS_CLUSTER_JOB_HPP
