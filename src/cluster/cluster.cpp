#include "cluster/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "stats/telemetry/telemetry.hpp"
#include "stats/trace_writer.hpp"

namespace themis::cluster {

/** One training tenant: a loop plus its remaining-iteration budget. */
struct Cluster::TrainingJob
{
    std::size_t job;
    workload::TrainingLoop loop;
    int remaining;
    /** Iteration-duration tail, always tracked (cheap, fixed size). */
    stats::telemetry::Histogram iter_hist;
    /** Registry mirror (cluster.job.<id>.iteration_ns); may be null. */
    stats::telemetry::Histogram* m_iter = nullptr;

    TrainingJob(std::size_t job_id, runtime::CommRuntime& comm,
                const JobSpec& spec)
        : job(job_id), loop(comm, spec.model, spec.roofline),
          remaining(spec.iterations)
    {
        loop.setJob(static_cast<int>(job_id));
        if (spec.priority_tier >= 0)
            loop.setTierOverride(spec.priority_tier);
    }
};

/** One periodic-inference tenant: open-loop request stream state. */
struct Cluster::PeriodicJob
{
    std::size_t job = 0;
    int issued = 0;
    int completed = 0;
    int outstanding = 0;
    int hits = 0;
    int misses = 0;
    TimeNs latency_sum = 0.0;
    TimeNs last_completion = -1.0;
    sim::EventQueue::EventId next_timer = 0;
    /** Pending arrival event; cleared at first issue, cancelled when
     *  the cluster drains before the job ever arrives. */
    sim::EventQueue::EventId arrival_event = 0;
    /** No further requests will be issued (drain or count reached). */
    bool stopped = false;
    /** Last lockstep-round request's decomposition (latency only:
     *  inference has no compute phases in this model). */
    workload::IterationBreakdown last_breakdown;
    /** Request-latency tail, always tracked (cheap, fixed size). */
    stats::telemetry::Histogram latency_hist;
    /** Registry mirrors (cluster.job.<id>.*); null without telemetry.
     *  Slack records deadline - latency per judged request — negative
     *  on a miss, which the histogram's underflow bucket absorbs
     *  while min/max stay exact. */
    stats::telemetry::Histogram* m_latency = nullptr;
    stats::telemetry::Histogram* m_slack = nullptr;
    stats::telemetry::Counter* m_misses = nullptr;
};

Cluster::Cluster(sim::EventQueue& queue, Topology topo,
                 runtime::RuntimeConfig config, JobScheduler sched)
    : queue_(queue), sched_(std::move(sched))
{
    comm_ = std::make_unique<runtime::CommRuntime>(
        queue_, std::move(topo), config);
    const auto& specs = sched_.specs();
    for (std::size_t j = 0; j < specs.size(); ++j) {
        const JobSpec& spec = specs[j];
        JobStats st;
        st.job = static_cast<int>(j);
        st.name = spec.label();
        st.kind = spec.kind;
        st.arrival = spec.arrival;
        stats_.push_back(std::move(st));
        if (spec.kind == JobKind::Training) {
            training_.push_back(
                std::make_unique<TrainingJob>(j, *comm_, spec));
            ++training_remaining_;
        } else {
            auto pj = std::make_unique<PeriodicJob>();
            pj->job = j;
            periodic_.push_back(std::move(pj));
        }
    }
    telem_ = comm_->telemetry();
    if (telem_ != nullptr) {
        // Per-job registry instruments under stable dotted names, and
        // one trace row per job ("jobs" process, tid = job id + 1).
        char name[64];
        for (auto& tj : training_) {
            std::snprintf(name, sizeof(name),
                          "cluster.job.%d.iteration_ns",
                          static_cast<int>(tj->job));
            tj->m_iter = &telem_->metrics.histogram(name);
        }
        for (auto& pj : periodic_) {
            const int j = static_cast<int>(pj->job);
            std::snprintf(name, sizeof(name),
                          "cluster.job.%d.request_ns", j);
            pj->m_latency = &telem_->metrics.histogram(name);
            if (specs[pj->job].deadline > 0.0) {
                std::snprintf(name, sizeof(name),
                              "cluster.job.%d.deadline_slack_ns", j);
                pj->m_slack = &telem_->metrics.histogram(name);
                std::snprintf(name, sizeof(name),
                              "cluster.job.%d.deadline_misses", j);
                pj->m_misses = &telem_->metrics.counter(name);
            }
        }
        if (telem_->trace != nullptr) {
            telem_->trace->setProcessName(
                stats::TraceWriter::kJobsPid, "jobs");
            for (std::size_t j = 0; j < specs.size(); ++j)
                telem_->trace->setThreadName(
                    stats::TraceWriter::kJobsPid,
                    static_cast<int>(j) + 1, specs[j].label());
        }
    }
}

Cluster::Cluster(sim::EventQueue& queue, Topology topo,
                 runtime::RuntimeConfig config,
                 std::vector<JobSpec> specs)
    : Cluster(queue, std::move(topo), config,
              JobScheduler(std::move(specs)))
{}

Cluster::~Cluster() = default;

ClusterReport
Cluster::run()
{
    THEMIS_ASSERT(!used_,
                  "a Cluster simulates once; construct a new one");
    used_ = true;
    if (training_remaining_ == 0)
        draining_ = true; // pure periodic mix: counts bound the run
    for (std::size_t i = 0; i < training_.size(); ++i) {
        const JobSpec& spec = sched_.specs()[training_[i]->job];
        queue_.scheduleAfter(spec.arrival,
                             [this, i] { startTrainingJob(i); });
    }
    for (std::size_t i = 0; i < periodic_.size(); ++i) {
        const JobSpec& spec = sched_.specs()[periodic_[i]->job];
        periodic_[i]->arrival_event = queue_.scheduleAfter(
            spec.arrival, [this, i] { issueRequest(i); });
    }
    queue_.run();
    comm_->finalizeStats();
    return buildReport();
}

void
Cluster::startTrainingJob(std::size_t idx)
{
    TrainingJob& tj = *training_[idx];
    const TimeNs t0 = queue_.now();
    tj.loop.beginIterationAsync(
        [this, idx, t0](const workload::IterationBreakdown& b) {
            TrainingJob& tj = *training_[idx];
            JobStats& st = stats_[tj.job];
            ++st.iterations;
            st.totals += b;
            const TimeNs dur = queue_.now() - t0;
            tj.iter_hist.record(dur);
            if (tj.m_iter != nullptr)
                tj.m_iter->record(dur);
            if (telem_ != nullptr && telem_->trace != nullptr) {
                char label[32];
                std::snprintf(label, sizeof(label), "iter#%d",
                              st.iterations);
                telem_->trace->span(stats::TraceWriter::kJobsPid,
                                    static_cast<int>(tj.job) + 1,
                                    label, t0, queue_.now());
            }
            if (--tj.remaining > 0) {
                startTrainingJob(idx);
                return;
            }
            st.finished = queue_.now();
            retireJobAccounting(static_cast<int>(tj.job));
            onTrainingJobFinished(idx);
        });
}

void
Cluster::retireJobAccounting(int job)
{
    if (final_wire_.count(job) != 0)
        return;
    final_wire_.emplace(job, comm_->retireJob(job));
}

void
Cluster::onTrainingJobFinished(std::size_t idx)
{
    (void)idx;
    THEMIS_ASSERT(training_remaining_ > 0,
                  "training job finished twice");
    if (--training_remaining_ == 0)
        beginDrain();
}

void
Cluster::beginDrain()
{
    draining_ = true;
    // Open-ended periodic streams stop issuing the moment the last
    // training job completes; in-flight requests drain normally.
    // Bounded streams (max_requests > 0) keep running to their count.
    for (std::size_t i = 0; i < periodic_.size(); ++i) {
        PeriodicJob& pj = *periodic_[i];
        const JobSpec& spec = sched_.specs()[pj.job];
        if (spec.max_requests > 0 || pj.stopped)
            continue;
        pj.stopped = true;
        if (pj.next_timer != 0) {
            queue_.cancel(pj.next_timer);
            pj.next_timer = 0;
        }
        JobStats& st = stats_[pj.job];
        if (pj.arrival_event != 0) {
            // The stream never arrived: cancel the pending arrival so
            // it cannot stretch the makespan, and close the job with
            // zero work (finished == arrival, JCT 0) rather than a
            // negative JCT.
            queue_.cancel(pj.arrival_event);
            pj.arrival_event = 0;
            st.finished = st.arrival;
            retireJobAccounting(static_cast<int>(pj.job));
            continue;
        }
        if (pj.outstanding == 0 && st.finished < 0.0) {
            st.finished =
                pj.completed > 0 ? pj.last_completion : queue_.now();
            retireJobAccounting(static_cast<int>(pj.job));
        }
    }
}

void
Cluster::issueRequest(std::size_t idx)
{
    PeriodicJob& pj = *periodic_[idx];
    pj.next_timer = 0;
    pj.arrival_event = 0; // the job has arrived
    const JobSpec& spec = sched_.specs()[pj.job];
    if (pj.stopped)
        return;
    ++pj.issued;
    ++pj.outstanding;
    CollectiveRequest req;
    req.type = spec.request_type;
    req.size = spec.request_size;
    req.chunks = 0; // runtime default CPC
    req.priority_tier = JobScheduler::effectiveTier(spec);
    req.job = static_cast<int>(pj.job);
    const TimeNs issued_at = queue_.now();
    comm_->issue(req, [this, idx, issued_at] {
        PeriodicJob& pj = *periodic_[idx];
        noteRequestDone(idx, issued_at);
        if (pj.stopped && pj.outstanding == 0) {
            JobStats& st = stats_[pj.job];
            if (st.finished < 0.0)
                st.finished = queue_.now();
            retireJobAccounting(static_cast<int>(pj.job));
        }
    });
    if (spec.max_requests > 0 && pj.issued >= spec.max_requests) {
        pj.stopped = true;
        return;
    }
    pj.next_timer = queue_.scheduleAfter(
        spec.period, [this, idx] { issueRequest(idx); });
}

void
Cluster::beginLockstepRequest(std::size_t idx,
                              const std::function<void()>& done)
{
    PeriodicJob& pj = *periodic_[idx];
    const JobSpec& spec = sched_.specs()[pj.job];
    ++pj.issued;
    ++pj.outstanding;
    CollectiveRequest req;
    req.type = spec.request_type;
    req.size = spec.request_size;
    req.chunks = 0; // runtime default CPC
    req.priority_tier = JobScheduler::effectiveTier(spec);
    req.job = static_cast<int>(pj.job);
    const TimeNs issued_at = queue_.now();
    comm_->issue(req, [this, idx, issued_at, done] {
        PeriodicJob& pj = *periodic_[idx];
        const TimeNs latency = noteRequestDone(idx, issued_at);
        pj.last_breakdown = workload::IterationBreakdown{};
        pj.last_breakdown.exposed_mp = latency;
        pj.last_breakdown.total = latency;
        done();
    });
}

TimeNs
Cluster::noteRequestDone(std::size_t idx, TimeNs issued_at)
{
    PeriodicJob& pj = *periodic_[idx];
    const JobSpec& spec = sched_.specs()[pj.job];
    --pj.outstanding;
    ++pj.completed;
    pj.last_completion = queue_.now();
    const TimeNs latency = queue_.now() - issued_at;
    pj.latency_sum += latency;
    pj.latency_hist.record(latency);
    if (pj.m_latency != nullptr)
        pj.m_latency->record(latency);
    if (telem_ != nullptr && telem_->trace != nullptr) {
        char label[32];
        std::snprintf(label, sizeof(label), "req#%d", pj.completed);
        telem_->trace->span(stats::TraceWriter::kJobsPid,
                            static_cast<int>(pj.job) + 1, label,
                            issued_at, queue_.now());
    }
    if (spec.deadline > 0.0) {
        const TimeNs slack = spec.deadline - latency;
        if (pj.m_slack != nullptr)
            pj.m_slack->record(slack);
        if (latency <= spec.deadline) {
            ++pj.hits;
        } else {
            ++pj.misses;
            if (pj.m_misses != nullptr)
                pj.m_misses->add();
            if (telem_ != nullptr) {
                telem_->recorder.record(stats::telemetry::FlightEvent{
                    telem_->absolute(queue_.now()),
                    stats::telemetry::FlightKind::DeadlineMiss, -1,
                    static_cast<int>(pj.job), latency});
                if (telem_->trace != nullptr) {
                    char label[40];
                    std::snprintf(label, sizeof(label),
                                  "deadline miss #%d", pj.misses);
                    telem_->trace->instant(
                        stats::TraceWriter::kJobsPid,
                        static_cast<int>(pj.job) + 1, label,
                        queue_.now());
                }
            }
        }
    }
    return latency;
}

ClusterReport
Cluster::buildReport()
{
    ClusterReport rep;
    rep.makespan = queue_.now();
    rep.fabric_utilization =
        comm_->utilization().weightedUtilization();
    for (int d = 0; d < comm_->topology().numDims(); ++d) {
        comm_->engine(d).channel().sync();
        rep.total_bytes +=
            comm_->engine(d).channel().progressedBytes();
    }
    const auto wire = comm_->jobReports();
    for (JobStats& st : stats_) {
        // Departed jobs read their departure-time capture (their
        // runtime accounting was retired); anything still live is
        // looked up by job id — with retirement the live list is not
        // index-addressable.
        const runtime::CommRuntime::JobReport* w = nullptr;
        const auto fin = final_wire_.find(st.job);
        if (fin != final_wire_.end()) {
            w = &fin->second;
        } else {
            for (const auto& lw : wire)
                if (lw.job == st.job)
                    w = &lw;
        }
        if (w != nullptr) {
            st.progressed = w->progressed;
            // Re-normalize window bytes against the final active
            // time: a share frozen at departure would overstate
            // early-exiting tenants.
            st.utilization =
                comm_->utilization().utilizationOf(w->window_bytes);
            st.collectives_issued = w->issued;
            st.collectives_completed = w->completed;
        }
        if (st.kind == JobKind::Training) {
            if (st.iterations > 0)
                st.mean_iteration =
                    st.totals.total / st.iterations;
            if (st.totals.total > 0.0)
                st.exposed_share =
                    (st.totals.exposed_mp + st.totals.exposed_dp) /
                    st.totals.total;
            for (const auto& tj : training_)
                if (static_cast<int>(tj->job) == st.job &&
                    tj->iter_hist.count() > 0) {
                    st.unit_p99 = tj->iter_hist.percentile(0.99);
                    st.unit_max = tj->iter_hist.max();
                }
        } else {
            const PeriodicJob* pj = nullptr;
            for (const auto& p : periodic_)
                if (static_cast<int>(p->job) == st.job)
                    pj = p.get();
            THEMIS_ASSERT(pj != nullptr, "periodic job state missing");
            st.requests_issued = pj->issued;
            st.requests_completed = pj->completed;
            if (pj->completed > 0)
                st.mean_latency = pj->latency_sum / pj->completed;
            st.deadline_hits = pj->hits;
            st.deadline_misses = pj->misses;
            const int judged = pj->hits + pj->misses;
            if (judged > 0)
                st.deadline_hit_rate =
                    static_cast<double>(pj->hits) / judged;
            if (pj->latency_hist.count() > 0) {
                st.unit_p99 = pj->latency_hist.percentile(0.99);
                st.unit_max = pj->latency_hist.max();
            }
        }
    }
    rep.jobs = stats_;
    rep.classes = comm_->classReports();
    return rep;
}

workload::ConvergenceReport
Cluster::runConverged(const workload::ConvergenceOptions& opts,
                      const std::vector<TimeNs>& phase_offsets)
{
    THEMIS_ASSERT(!used_,
                  "a Cluster simulates once; construct a new one");
    const std::int64_t limit =
        opts.cycle_limit > 0
            ? static_cast<std::int64_t>(opts.cycle_limit)
            : JobScheduler::kDefaultCycleLimit;
    const auto plan = sched_.lockstepPlan(limit);
    if (!plan.eligible) {
        logWarn("cluster convergence run refused: ", plan.reason);
        THEMIS_FATAL("cluster convergence run refused: "
                     << plan.reason);
    }
    THEMIS_ASSERT(phase_offsets.empty() ||
                      phase_offsets.size() == sched_.specs().size(),
                  "phase offset vector rank "
                      << phase_offsets.size() << " != job count "
                      << sched_.specs().size());
    used_ = true;
    lockstep_plan_ = plan;

    // One lockstep participant per job, in job-id order: training
    // loops step every round, periodic tenants every cadence-th round
    // through the same wire path issueRequest uses. A positive phase
    // offset turns the participant into a delayed starter within its
    // round — the lockstep representation of a CASSINI phase shift
    // (arrival shifts cannot survive rounds that restart from
    // quiescence).
    std::vector<workload::LockstepJob> jobs;
    jobs.reserve(sched_.specs().size());
    const auto& specs = sched_.specs();
    std::size_t ti = 0, pi = 0;
    for (std::size_t j = 0; j < specs.size(); ++j) {
        workload::LockstepJob lj;
        lj.job = static_cast<int>(j);
        lj.cadence = plan.cadences[j];
        const TimeNs off =
            phase_offsets.empty() ? 0.0 : phase_offsets[j];
        if (specs[j].kind == JobKind::Training) {
            workload::TrainingLoop* loop = &training_[ti++]->loop;
            if (off > 0.0) {
                lj.begin = [this, loop,
                            off](const std::function<void()>& done) {
                    queue_.scheduleAfter(off, [loop, done] {
                        loop->beginIterationAsync(
                            [done](
                                const workload::IterationBreakdown&) {
                                done();
                            });
                    });
                };
                lj.last = [loop] { return loop->lastIteration(); };
            } else {
                lj.loop = loop;
            }
        } else {
            const std::size_t p = pi++;
            lj.begin = [this, p,
                        off](const std::function<void()>& done) {
                if (off > 0.0)
                    queue_.scheduleAfter(off, [this, p, done] {
                        beginLockstepRequest(p, done);
                    });
                else
                    beginLockstepRequest(p, done);
            };
            lj.last = [this, p] {
                return periodic_[p]->last_breakdown;
            };
        }
        jobs.push_back(std::move(lj));
    }
    return workload::runConverged(*comm_, jobs, opts);
}

std::vector<JobStats>
Cluster::lockstepJobStats(int rounds) const
{
    THEMIS_ASSERT(used_, "lockstepJobStats reads a completed "
                         "runConverged() run; call that first");
    THEMIS_ASSERT(rounds >= 1, "need at least one lockstep round");
    std::vector<JobStats> out = stats_;
    const auto& specs = sched_.specs();
    std::size_t ti = 0, pi = 0;
    for (std::size_t j = 0; j < specs.size(); ++j) {
        JobStats& st = out[j];
        const int cadence = j < lockstep_plan_.cadences.size()
                                ? lockstep_plan_.cadences[j]
                                : 1;
        // Rounds r in [0, rounds) with r % cadence == 0.
        const int steps = (rounds - 1) / std::max(cadence, 1) + 1;
        if (specs[j].kind == JobKind::Training) {
            const workload::TrainingLoop& loop = training_[ti++]->loop;
            const workload::IterationBreakdown& b =
                loop.lastIteration();
            st.iterations = steps;
            st.mean_iteration = b.total;
            if (b.total > 0.0)
                st.exposed_share =
                    (b.exposed_mp + b.exposed_dp) / b.total;
        } else {
            const PeriodicJob& pj = *periodic_[pi++];
            // Replayed rounds repeat simulated ones bit-identically,
            // so the analytic step count is the true request count;
            // latency and deadline tallies come from the simulated
            // subset (each cycle's repeats are identical anyway).
            st.requests_issued = steps;
            st.requests_completed = steps;
            if (pj.completed > 0)
                st.mean_latency = pj.latency_sum / pj.completed;
            st.deadline_hits = pj.hits;
            st.deadline_misses = pj.misses;
            const int judged = pj.hits + pj.misses;
            if (judged > 0)
                st.deadline_hit_rate =
                    static_cast<double>(pj.hits) / judged;
            // Tails come from the simulated subset of rounds; each
            // replayed round repeats a simulated one bit-identically,
            // so the distribution's support is unchanged.
            if (pj.latency_hist.count() > 0) {
                st.unit_p99 = pj.latency_hist.percentile(0.99);
                st.unit_max = pj.latency_hist.max();
            }
        }
    }
    return out;
}

} // namespace themis::cluster
