/**
 * @file
 * Multi-job cluster co-simulation: many tenants, one shared fabric.
 *
 * Themis (and PRs 1-4) schedule one job's collectives across a
 * heterogeneous topology; production clusters run *many* jobs on the
 * same fabric — the setting CASSINI (network-aware interleaving of
 * competing jobs) and Metronome (deadline-aware periodic traffic with
 * priority tiers) study. The Cluster owns one CommRuntime (one
 * topology, one shared event queue) and a set of jobs from the
 * JobScheduler: training loops stepping asynchronously and periodic
 * inference streams firing open-loop, all contending for the same
 * dimension engines and weighted-GPS channels. Per-job identity is a
 * first-class runtime attribute (CollectiveRequest::job ->
 * FlowClass::job -> channel accounting class), so the report can
 * assert byte conservation per tenant and split fabric utilization
 * by job, not just by priority class.
 *
 * Lifecycle: construct with a queue, topology, runtime config and
 * specs; call run() exactly once (free-running co-simulation), or —
 * for mixes the JobScheduler deems eligible — runConverged() to drive
 * the jobs in lockstep rounds through the steady-state replay engine.
 */

#ifndef THEMIS_CLUSTER_CLUSTER_HPP
#define THEMIS_CLUSTER_CLUSTER_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/job.hpp"
#include "cluster/job_scheduler.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/event_queue.hpp"
#include "workload/convergence.hpp"

namespace themis::cluster {

/** Outcome of one cluster co-simulation. */
struct ClusterReport
{
    /** Simulated time the last job (and its traffic) finished. */
    TimeNs makespan = 0.0;

    /** Fig-4-definition utilization over the whole run. */
    double fabric_utilization = 0.0;

    /** Total bytes progressed across every dimension. */
    Bytes total_bytes = 0.0;

    /** Per-job outcomes, in job-id order. */
    std::vector<JobStats> jobs;

    /** Per-priority-class usage (aggregated over jobs). */
    std::vector<runtime::CommRuntime::ClassReport> classes;
};

/** Co-simulates a job mix on one fabric; see file comment. */
class Cluster
{
  public:
    /**
     * @param queue  shared event queue (must outlive the cluster)
     * @param topo   the fabric every job contends for
     * @param config runtime configuration (scheduler, PriorityPolicy
     *               mapping the jobs' tiers to flow classes, plan
     *               cache, ...)
     * @param sched  validated job mix
     */
    Cluster(sim::EventQueue& queue, Topology topo,
            runtime::RuntimeConfig config, JobScheduler sched);

    /** Convenience: wraps the specs in a JobScheduler. */
    Cluster(sim::EventQueue& queue, Topology topo,
            runtime::RuntimeConfig config, std::vector<JobSpec> specs);

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;
    ~Cluster();

    /**
     * Free-running co-simulation: every job starts at its arrival
     * time and progresses on the shared queue until training jobs
     * complete their iterations and periodic jobs drain. Call once.
     */
    ClusterReport run();

    /**
     * Lockstep convergence run through the period-k steady-cycle
     * replay engine (workload::runConverged over every job: training
     * loops step each round, periodic tenants step every cadence-th
     * round per the lockstep plan). Requires an eligible
     * lockstepPlan() at opts.cycle_limit (0 = auto: the plan's
     * hyper-period) — throws ConfigError with the refusal reason
     * otherwise (e.g. periodic jobs whose co-prime periods never
     * reach a confirmable cycle). Call once, instead of run().
     * @p opts.iterations is the number of lockstep *rounds* and
     * overrides the specs' per-job iteration counts.
     * @p phase_offsets (empty = all zero; else one entry per job)
     * delays each job's step within every round — the lockstep
     * representation of a CASSINI-style phase shift, evaluated by
     * searchPhaseOffsets on the replay fast path.
     */
    workload::ConvergenceReport
    runConverged(const workload::ConvergenceOptions& opts,
                 const std::vector<TimeNs>& phase_offsets = {});

    /** Replay verdict for this mix (see JobScheduler). */
    JobScheduler::ReplayEligibility replayEligibility() const
    {
        return sched_.replayEligibility();
    }

    /** Lockstep cadence plan for this mix (see JobScheduler). */
    JobScheduler::LockstepPlan
    lockstepPlan(std::int64_t cycle_limit =
                     JobScheduler::kDefaultCycleLimit) const
    {
        return sched_.lockstepPlan(cycle_limit);
    }

    /**
     * Per-job usage rows for a completed runConverged() run over
     * @p rounds lockstep rounds. Free-running runs get these from
     * ClusterReport; the convergence path has no makespan-style
     * report, so this reads the counters the lockstep round driver
     * left behind (steps taken, last-iteration decomposition, request
     * latency and deadline tallies). Call after runConverged().
     */
    std::vector<JobStats> lockstepJobStats(int rounds) const;

    /** The job mix. */
    const JobScheduler& scheduler() const { return sched_; }

    /** The shared runtime (stats/diagnostics). */
    runtime::CommRuntime& runtime() { return *comm_; }

  private:
    struct TrainingJob;
    struct PeriodicJob;

    void startTrainingJob(std::size_t idx);
    void issueRequest(std::size_t idx);
    /**
     * Issue one lockstep-round request for periodic job @p idx and
     * invoke @p done when it completes: the same wire traffic as
     * issueRequest (tier, size, job id) minus the free-running timer
     * — the convergence engine paces the stream by round cadence
     * instead.
     */
    void beginLockstepRequest(std::size_t idx,
                              const std::function<void()>& done);
    void onTrainingJobFinished(std::size_t idx);
    /** Stop open-ended periodic streams once training is done. */
    void beginDrain();
    /**
     * A job's traffic is complete: capture its final wire report and
     * retire its runtime accounting (CommRuntime::retireJob), so the
     * shared maps track only still-active tenants no matter how many
     * jobs churn through. Idempotent per job.
     */
    void retireJobAccounting(int job);
    /**
     * Shared completion accounting for one periodic request (both the
     * free-running and the lockstep path): latency tallies and
     * histograms, deadline judgment, and — when the runtime carries a
     * telemetry sink — the per-job trace span plus deadline-miss
     * instants and flight events. Returns the request latency.
     */
    TimeNs noteRequestDone(std::size_t idx, TimeNs issued_at);
    ClusterReport buildReport();

    sim::EventQueue& queue_;
    JobScheduler sched_;
    std::unique_ptr<runtime::CommRuntime> comm_;
    /** The runtime's telemetry sink (config-owned; may be null). */
    stats::telemetry::Telemetry* telem_ = nullptr;
    std::vector<std::unique_ptr<TrainingJob>> training_;
    std::vector<std::unique_ptr<PeriodicJob>> periodic_;
    std::vector<JobStats> stats_;
    /**
     * Final wire reports captured at each job's departure — report
     * output (one entry per job, like stats_), not accounting state;
     * the runtime's own maps shrink as jobs retire into here.
     */
    std::map<int, runtime::CommRuntime::JobReport> final_wire_;
    /** Cadence plan captured by runConverged (for lockstepJobStats). */
    JobScheduler::LockstepPlan lockstep_plan_;
    int training_remaining_ = 0;
    bool draining_ = false;
    bool used_ = false;
};

} // namespace themis::cluster

#endif // THEMIS_CLUSTER_CLUSTER_HPP
