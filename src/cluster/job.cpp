#include "cluster/job.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis::cluster {

std::string
jobKindName(JobKind kind)
{
    return kind == JobKind::Training ? "train" : "infer";
}

JobSpec
JobSpec::training(workload::ModelGraph model, int iterations,
                  TimeNs arrival, int tier)
{
    JobSpec spec;
    spec.kind = JobKind::Training;
    spec.model = std::move(model);
    spec.iterations = iterations;
    spec.arrival = arrival;
    spec.priority_tier = tier;
    return spec;
}

JobSpec
JobSpec::periodicInference(Bytes request_size, TimeNs period,
                           TimeNs deadline, TimeNs arrival, int tier)
{
    JobSpec spec;
    spec.kind = JobKind::PeriodicInference;
    spec.request_size = request_size;
    spec.period = period;
    spec.deadline = deadline;
    spec.arrival = arrival;
    spec.priority_tier = tier;
    return spec;
}

std::string
JobSpec::label() const
{
    if (!name.empty())
        return name;
    std::ostringstream oss;
    if (kind == JobKind::Training) {
        oss << "train:"
            << (model.name.empty() ? "custom" : model.name);
    } else {
        oss << "infer:" << fmtBytes(request_size);
    }
    return oss.str();
}

void
JobSpec::validate() const
{
    if (arrival < 0.0)
        THEMIS_FATAL("job '" << label() << "': negative arrival time "
                             << arrival);
    if (priority_tier >= kNumPriorityTiers)
        THEMIS_FATAL("job '" << label() << "': priority tier "
                             << priority_tier << " outside [0, "
                             << kNumPriorityTiers << ")");
    if (kind == JobKind::Training) {
        if (model.layers.empty())
            THEMIS_FATAL("training job '" << label()
                                          << "' has no layers");
        if (iterations < 1)
            THEMIS_FATAL("training job '"
                         << label() << "': iterations must be >= 1, got "
                         << iterations);
        return;
    }
    if (request_size <= 0.0)
        THEMIS_FATAL("periodic job '" << label()
                                      << "': request size must be "
                                         "positive, got "
                                      << request_size);
    if (period <= 0.0)
        THEMIS_FATAL("periodic job '" << label()
                                      << "': period must be positive, "
                                         "got "
                                      << period);
    if (deadline < 0.0)
        THEMIS_FATAL("periodic job '" << label()
                                      << "': negative deadline "
                                      << deadline);
    if (max_requests < 0)
        THEMIS_FATAL("periodic job '" << label()
                                      << "': negative request count "
                                      << max_requests);
}

} // namespace themis::cluster
