/**
 * @file
 * One in-flight collective: drives its chunks through their scheduled
 * stages across the dimension engines and reports completion.
 */

#ifndef THEMIS_RUNTIME_COLLECTIVE_SESSION_HPP
#define THEMIS_RUNTIME_COLLECTIVE_SESSION_HPP

#include <functional>
#include <memory>
#include <vector>

#include "core/chunk.hpp"
#include "core/latency_model.hpp"
#include "runtime/dimension_engine.hpp"

namespace themis::runtime {

/** Executes the chunk schedules of one collective; see file comment. */
class CollectiveSession
{
  public:
    /** Invoked once when every chunk finished its last stage. */
    using CompletionCallback = std::function<void(CollectiveSession&)>;

    /** Immutable chunk schedules, shareable via the plan cache. */
    using SchedulePtr =
        std::shared_ptr<const std::vector<ChunkSchedule>>;

    /**
     * @param id        runtime-unique collective id
     * @param type      collective pattern (for reporting)
     * @param schedules per-chunk stage orders (scheduler output;
     *                  possibly shared with other sessions through the
     *                  plan cache — never mutated)
     * @param engines   engine per *local* dimension of the scope
     * @param model     scope latency model; its dimension configs
     *                  carry the effective peer-group sizes (possibly
     *                  sub-groups of the physical dimensions)
     * @param queue     event queue (for timestamps)
     * @param on_done   completion callback
     * @param flow      flow class every chunk op of this collective
     *                  carries (priority tier + GPS weight)
     * @param step_cache optional step-plan memo shared with the plan
     *                  cache (not owned; may be null)
     */
    CollectiveSession(int id, CollectiveType type, SchedulePtr schedules,
                      std::vector<DimensionEngine*> engines,
                      const LatencyModel& model, sim::EventQueue& queue,
                      CompletionCallback on_done, FlowClass flow = {},
                      PlanCache* step_cache = nullptr);

    /** Convenience overload wrapping freshly derived schedules. */
    CollectiveSession(int id, CollectiveType type,
                      std::vector<ChunkSchedule> schedules,
                      std::vector<DimensionEngine*> engines,
                      const LatencyModel& model, sim::EventQueue& queue,
                      CompletionCallback on_done, FlowClass flow = {},
                      PlanCache* step_cache = nullptr);

    CollectiveSession(const CollectiveSession&) = delete;
    CollectiveSession& operator=(const CollectiveSession&) = delete;

    /**
     * Re-arm this session object for a new collective, reusing its
     * engine-vector capacity and completion closure (the runtime's
     * iteration-epoch session pool recycles sessions this way, so
     * steady-state iterations construct no sessions at all). Requires
     * the previous collective to have completed (asserts). The event
     * queue binding is fixed for the object's lifetime.
     */
    void reset(int id, CollectiveType type, SchedulePtr schedules,
               const std::vector<DimensionEngine*>& engines,
               const LatencyModel& model, CompletionCallback on_done,
               FlowClass flow = {}, PlanCache* step_cache = nullptr);

    /** Submit stage 0 of every chunk. Records the issue time. */
    void start();

    /** Runtime-unique id. */
    int id() const { return id_; }

    /** Collective pattern. */
    CollectiveType type() const { return type_; }

    /** True once every chunk completed all stages. */
    bool done() const { return completed_chunks_ == schedules_->size(); }

    /** Simulation time of start(). */
    TimeNs startTime() const { return start_time_; }

    /** Simulation time the last stage completed. */
    TimeNs endTime() const { return end_time_; }

    /** The chunk schedules being executed. */
    const std::vector<ChunkSchedule>& schedules() const
    {
        return *schedules_;
    }

    /** Flow class of this collective's chunk operations. */
    const FlowClass& flow() const { return flow_; }

  private:
    void submitStage(std::size_t chunk_idx, int stage_index,
                     Bytes entering);
    void onOpComplete(const ChunkOp& op);
    /** Shared schedule/engine/model consistency checks. */
    void validate() const;

    int id_;
    CollectiveType type_;
    SchedulePtr schedules_;
    std::vector<DimensionEngine*> engines_;
    const LatencyModel* model_;
    sim::EventQueue& queue_;
    CompletionCallback on_done_;
    FlowClass flow_;
    PlanCache* step_cache_;
    /** One op-completion closure, built once and copied per op
     *  (small-buffer copy; no per-stage closure allocations). */
    std::function<void(const ChunkOp&)> on_op_complete_;

    std::size_t completed_chunks_ = 0;
    TimeNs start_time_ = 0.0;
    TimeNs end_time_ = 0.0;
    bool started_ = false;
};

} // namespace themis::runtime

#endif // THEMIS_RUNTIME_COLLECTIVE_SESSION_HPP
