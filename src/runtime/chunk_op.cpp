#include "runtime/chunk_op.hpp"

#include "common/error.hpp"

namespace themis::runtime {

ChunkOp
makeChunkOp(const OpTag& tag, Phase phase, int local_dim, int global_dim,
            Bytes entering, const DimensionConfig& dim,
            std::function<void(const ChunkOp&)> on_complete,
            FlowClass flow, PlanCache* step_cache,
            std::uint64_t dim_fingerprint)
{
    THEMIS_ASSERT(on_complete, "chunk op needs a completion callback");
    ChunkOp op;
    op.tag = tag;
    op.phase = phase;
    op.local_dim = local_dim;
    op.global_dim = global_dim;
    op.entering = entering;
    op.flow = flow;
    // Execution granularity follows the paper's cost model
    // (Sec 4.4): one fixed delay A_K = steps * step_latency, then one
    // bandwidth-occupying transfer of the full wire volume N_K. The
    // per-step plan is summed into that lump; concurrent chunks hide
    // each other's fixed delays through the shared channel. The lump
    // is a pure function of (phase, entering, dimension), so repeated
    // iterations fetch it from the step memo instead of re-deriving
    // the algorithm's step vector.
    StepSummary summary;
    const StepKey key{phase, entering, dim_fingerprint};
    if (step_cache == nullptr || !step_cache->findStep(key, summary)) {
        summary = StepSummary{};
        for (const auto& s :
             algorithmFor(dim).plan(phase, entering, dim)) {
            summary.fixed_delay += s.latency;
            summary.total_bytes += s.bytes;
        }
        if (step_cache != nullptr)
            step_cache->storeStep(key, summary);
    }
    op.fixed_delay = summary.fixed_delay;
    op.transfer_time = summary.total_bytes / dim.bandwidth();
    op.steps.push_back(StepPlan{summary.fixed_delay,
                                summary.total_bytes});
    op.on_complete = std::move(on_complete);
    return op;
}

} // namespace themis::runtime
