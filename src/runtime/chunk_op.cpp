#include "runtime/chunk_op.hpp"

#include "common/error.hpp"

namespace themis::runtime {

ChunkOp
makeChunkOp(const OpTag& tag, Phase phase, int local_dim, int global_dim,
            Bytes entering, const DimensionConfig& dim,
            std::function<void(const ChunkOp&)> on_complete)
{
    THEMIS_ASSERT(on_complete, "chunk op needs a completion callback");
    ChunkOp op;
    op.tag = tag;
    op.phase = phase;
    op.local_dim = local_dim;
    op.global_dim = global_dim;
    op.entering = entering;
    // Execution granularity follows the paper's cost model
    // (Sec 4.4): one fixed delay A_K = steps * step_latency, then one
    // bandwidth-occupying transfer of the full wire volume N_K. The
    // per-step plan is summed into that lump; concurrent chunks hide
    // each other's fixed delays through the shared channel.
    Bytes total_bytes = 0.0;
    for (const auto& s : algorithmFor(dim).plan(phase, entering,
                                                dim)) {
        op.fixed_delay += s.latency;
        total_bytes += s.bytes;
    }
    op.transfer_time = total_bytes / dim.bandwidth();
    op.steps = {StepPlan{op.fixed_delay, total_bytes}};
    op.on_complete = std::move(on_complete);
    return op;
}

} // namespace themis::runtime
