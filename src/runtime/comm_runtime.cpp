#include "runtime/comm_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/string_util.hpp"

namespace themis::runtime {

RuntimeConfig
baselineConfig()
{
    RuntimeConfig cfg;
    cfg.scheduler = SchedulerKind::Baseline;
    cfg.intra_policy = IntraDimPolicy::Fifo;
    return cfg;
}

RuntimeConfig
themisFifoConfig()
{
    RuntimeConfig cfg;
    cfg.scheduler = SchedulerKind::Themis;
    cfg.intra_policy = IntraDimPolicy::Fifo;
    return cfg;
}

RuntimeConfig
themisScfConfig()
{
    RuntimeConfig cfg;
    cfg.scheduler = SchedulerKind::Themis;
    cfg.intra_policy = IntraDimPolicy::Scf;
    return cfg;
}

CommRuntime::CommRuntime(sim::EventQueue& queue, Topology topo,
                         RuntimeConfig config)
    : queue_ref_(queue), topo_(std::move(topo)), config_(config),
      activity_(topo_.numDims())
{
    THEMIS_ASSERT(!config_.legacy_egalitarian_channel ||
                      config_.priority.isUniform(),
                  "the egalitarian channel baseline requires the "
                  "uniform priority policy (unit weights)");
    telem_ = config_.telemetry;
    if (telem_ != nullptr) {
        // Resolve the hot-path instruments once; registry references
        // are stable, so per-event publishing is pointer-deref cheap.
        auto& m = telem_->metrics;
        m_issued_ = &m.counter("runtime.collectives.issued");
        m_completed_ = &m.counter("runtime.collectives.completed");
        m_collective_ns_ = &m.histogram("runtime.collective_ns");
        m_epochs_ = &m.counter("runtime.epochs");
        m_epoch_ns_ = &m.histogram("runtime.epoch_ns");
        m_chunk_ops_ = &m.counter("runtime.chunk_ops");
        m_replans_ = &m.counter("adapt.replans");
        m_retries_ = &m.counter("fault.retries");
        m_backoff_ns_ = &m.histogram("fault.retry_backoff_ns");
        m_lost_bytes_ = &m.histogram("fault.retry_lost_bytes");
        m_fatal_ = &m.counter("fault.fatal_retries");
        m_replayed_ = &m.counter("replay.epochs_replayed");
    }
    const sim::ChannelFairness fairness =
        config_.legacy_egalitarian_channel
            ? sim::ChannelFairness::Egalitarian
            : sim::ChannelFairness::Weighted;
    std::vector<sim::SharedChannel*> channels;
    std::vector<Bandwidth> bws;
    for (int d = 0; d < topo_.numDims(); ++d) {
        engines_.push_back(std::make_unique<DimensionEngine>(
            queue_ref_, topo_.dim(d), d, config_.intra_policy,
            config_.admission, config_.legacy_engine_scan, fairness,
            config_.legacy_scalar_admission,
            config_.legacy_tier_blind_headroom));
        engines_.back()->setPresenceListener(
            [this](int dim, bool present, TimeNs when) {
                activity_.onPresence(dim, present, when);
            });
        channels.push_back(&engines_.back()->channel());
        bws.push_back(topo_.dim(d).bandwidth());
    }
    utilization_ = std::make_unique<stats::UtilizationTracker>(
        std::move(channels), std::move(bws));
    if (config_.faults != nullptr) {
        if (config_.legacy_engine_scan)
            THEMIS_FATAL("fault injection requires the indexed engine "
                         "path; legacy_engine_scan is a measurement "
                         "baseline");
        config_.faults->validateForDims(topo_.numDims());
        std::vector<DimensionEngine*> raw;
        raw.reserve(engines_.size());
        for (auto& engine : engines_) {
            engine->armFaults(config_.retry);
            engine->setRetryListener(
                [this](int dim, Bytes lost, TimeNs backoff) {
                    utilization_->recordRetry(
                        static_cast<std::size_t>(dim), lost, backoff);
                    if (telem_ != nullptr) {
                        m_retries_->add();
                        m_backoff_ns_->record(backoff);
                        m_lost_bytes_->record(lost);
                        telem_->recorder.record(
                            stats::telemetry::FlightEvent{
                                telem_->absolute(queue_ref_.now()),
                                stats::telemetry::FlightKind::Retry,
                                dim, -1, lost});
                    }
                });
            engine->setFatalRetryListener(
                [this](const FatalRetryReport& report) {
                    if (!has_fatal_retry_) {
                        fatal_retry_ = report;
                        has_fatal_retry_ = true;
                    }
                    utilization_->recordFatalRetry(
                        static_cast<std::size_t>(report.dim));
                    if (telem_ != nullptr) {
                        m_fatal_->add();
                        telem_->recorder.record(
                            stats::telemetry::FlightEvent{
                                telem_->absolute(queue_ref_.now()),
                                stats::telemetry::FlightKind::
                                    FatalRetry,
                                report.dim, report.attempts,
                                report.lost_bytes});
                        if (telem_->trace != nullptr) {
                            char label[64];
                            std::snprintf(
                                label, sizeof(label),
                                "retry exhausted dim%d (attempt %d)",
                                report.dim + 1, report.attempts);
                            telem_->trace->instant(
                                stats::TraceWriter::kRunPid,
                                stats::TraceWriter::kFaultTid, label,
                                queue_ref_.now());
                        }
                    }
                });
            raw.push_back(engine.get());
        }
        fault_driver_ = std::make_unique<FaultDriver>(
            queue_ref_, *config_.faults, std::move(raw),
            utilization_.get());
        if (config_.adaptation.enabled) {
            if (!(config_.adaptation.replan_threshold >= 0.0))
                THEMIS_FATAL("adaptation replan_threshold must be "
                             ">= 0, got "
                             << config_.adaptation.replan_threshold);
            planned_factors_.assign(
                static_cast<std::size_t>(topo_.numDims()), 1.0);
            fault_driver_->setCapacityListener(
                [this](int dim) { onCapacityChange(dim); });
        }
    }
    if (telem_ != nullptr) {
        if (fault_driver_)
            fault_driver_->setTelemetry(telem_);
        if (telem_->trace != nullptr)
            attachTrace(*telem_->trace);
    }
}

void
CommRuntime::onCapacityChange(int dim)
{
    const double now =
        fault_driver_->planningFactor(dim);
    const double planned =
        planned_factors_[static_cast<std::size_t>(dim)];
    if (std::abs(now - planned) <=
        config_.adaptation.replan_threshold * planned)
        return;
    replan();
}

void
CommRuntime::replan()
{
    Fnv1a h;
    h.mix(std::uint64_t{0x4341}); // "CA" — capacity epoch domain
    bool clean = true;
    for (std::size_t d = 0; d < planned_factors_.size(); ++d) {
        planned_factors_[d] =
            fault_driver_->planningFactor(static_cast<int>(d));
        if (!bitEquals(planned_factors_[d], 1.0))
            clean = false;
        h.mix(planned_factors_[d]);
    }
    // A fully recovered fabric plans under fingerprint 0 again, so
    // post-fault plans come from the same cache entries (and are
    // bit-identical to) the pre-fault ones.
    capacity_fingerprint_ = clean ? 0 : h.value();
    // Retire every scope: schedulers and planners hold references to
    // their scope's model, and in-flight sessions hold pointers into
    // it too, so states move to the graveyard until the fabric is
    // quiescent. The next issue() rebuilds against the new factors.
    for (auto& [scope, state] : scopes_)
        retired_scopes_.push_back(std::move(state));
    scopes_.clear();
    ++replan_count_;
    logDebug("adaptation t=", queue_ref_.now(), " re-plan #",
             replan_count_, " capacity epoch ", capacity_fingerprint_);
    if (telem_ != nullptr) {
        m_replans_->add();
        telem_->recorder.record(stats::telemetry::FlightEvent{
            telem_->absolute(queue_ref_.now()),
            stats::telemetry::FlightKind::Replan, -1,
            static_cast<int>(replan_count_),
            static_cast<double>(capacity_fingerprint_ != 0)});
        if (telem_->trace != nullptr) {
            char label[48];
            std::snprintf(label, sizeof(label), "re-plan #%llu",
                          static_cast<unsigned long long>(
                              replan_count_));
            telem_->trace->instant(stats::TraceWriter::kRunPid,
                                   stats::TraceWriter::kAdaptTid,
                                   label, queue_ref_.now());
        }
    }
}

std::vector<ScopeDim>
CommRuntime::normalizeScope(const std::vector<ScopeDim>& scope) const
{
    std::vector<ScopeDim> out;
    if (scope.empty()) {
        for (int d = 0; d < topo_.numDims(); ++d)
            out.push_back(ScopeDim{d, topo_.dim(d).size});
        return out;
    }
    for (std::size_t i = 0; i < scope.size(); ++i) {
        const int d = scope[i].dim;
        if (d < 0 || d >= topo_.numDims())
            THEMIS_FATAL("collective scope references dimension "
                         << d << " outside the " << topo_.numDims()
                         << "D topology");
        if (i > 0 && d <= scope[i - 1].dim)
            THEMIS_FATAL("collective scope must list dimensions in "
                         "strictly increasing order");
        const int full = topo_.dim(d).size;
        int participants =
            scope[i].participants > 0 ? scope[i].participants : full;
        if (participants < 2 || participants > full)
            THEMIS_FATAL("scope participants " << participants
                                               << " invalid for dim of "
                                               << full << " NPUs");
        out.push_back(ScopeDim{d, participants});
    }
    return out;
}

CommRuntime::ScopeState&
CommRuntime::scopeState(const std::vector<ScopeDim>& scope)
{
    auto it = scopes_.find(scope);
    if (it != scopes_.end())
        return it->second;
    ScopeState state;
    state.model = std::make_unique<LatencyModel>(
        LatencyModel::fromScope(topo_, scope));
    if (capacity_fingerprint_ != 0) {
        // Degraded capacity epoch: plan against the fabric as it is.
        // The clean path (fingerprint 0) never reaches here, so
        // fault-free runs build bit-identical models.
        std::vector<double> factors;
        factors.reserve(scope.size());
        for (const auto& s : scope)
            factors.push_back(
                planned_factors_[static_cast<std::size_t>(s.dim)]);
        state.model = std::make_unique<LatencyModel>(
            state.model->scaledBy(factors));
    }
    state.scheduler =
        makeScheduler(config_.scheduler, *state.model, config_.themis);
    state.planner = std::make_unique<ConsistencyPlanner>(
        *state.model, config_.intra_policy);
    return scopes_.emplace(scope, std::move(state)).first->second;
}

const LatencyModel&
CommRuntime::modelForScope(const std::vector<ScopeDim>& scope)
{
    return *scopeState(normalizeScope(scope)).model;
}

PlanCache*
CommRuntime::usableCache() const
{
    if (config_.plan_cache == nullptr)
        return nullptr;
    // A Themis scheduler carrying load state across collectives makes
    // plans history-dependent — the one configuration memoization
    // cannot represent.
    if ((config_.scheduler == SchedulerKind::Themis ||
         config_.scheduler == SchedulerKind::ThemisPriority) &&
        config_.themis.carry_load_across_collectives)
        return nullptr;
    return config_.plan_cache;
}

CollectiveSession::SchedulePtr
CommRuntime::planFor(ScopeState& state, PlanCache* cache,
                     const PlanKey& key, CollectiveType type,
                     Bytes size, int chunks, const FlowClass& flow)
{
    if (cache == nullptr) {
        return std::make_shared<const std::vector<ChunkSchedule>>(
            state.scheduler->scheduleCollective(type, size, chunks,
                                                flow));
    }
    if (auto plan = cache->findPlan(key))
        return plan;
    return cache->storePlan(
        key, state.scheduler->scheduleCollective(type, size, chunks,
                                                 flow));
}

PlanCache::OrderPtr
CommRuntime::ordersFor(ScopeState& state, PlanCache* cache,
                       const PlanKey& key,
                       const std::vector<ChunkSchedule>& schedules,
                       const std::vector<ScopeDim>& scope,
                       const FlowClass& flow)
{
    OrderKey order_key;
    if (cache != nullptr) {
        order_key.plan = key;
        order_key.intra_policy = config_.intra_policy;
        order_key.planner = static_cast<int>(config_.order_planner);
        order_key.max_parallel_ops = config_.admission.max_parallel_ops;
        order_key.latency_headroom = config_.admission.latency_headroom;
        if (auto orders = cache->findOrders(order_key))
            return orders;
    }
    std::vector<std::vector<OpKey>> orders;
    if (config_.order_planner == OrderPlanner::ShadowSim) {
        orders = shadowPlanOrders(key.type, schedules, scope,
                                  *state.model, flow);
    } else {
        auto plan = state.planner->plan(schedules);
        THEMIS_ASSERT(planIsDeadlockFree(schedules, plan),
                      "consistency planner emitted a cyclic order");
        orders = std::move(plan.order);
    }
    if (cache != nullptr)
        return cache->storeOrders(order_key, std::move(orders));
    return std::make_shared<const std::vector<std::vector<OpKey>>>(
        std::move(orders));
}

int
CommRuntime::issue(const CollectiveRequest& request, Callback on_done)
{
    const std::vector<ScopeDim> scope = normalizeScope(request.scope);
    THEMIS_ASSERT(request.job >= 0 && request.job < kMaxJobsPerRuntime,
                  "job index " << request.job << " outside [0, "
                               << kMaxJobsPerRuntime << ")");
    if (outstanding_ == 0) {
        // Fault events that came due while the fabric idled apply
        // now, before planning and the window snapshot: the reopening
        // collective must plan under (and the window must open under)
        // the capacities the timeline prescribes for this instant.
        // (Request validation runs above so a rejected issue leaves
        // no window open.)
        if (fault_driver_)
            fault_driver_->onWindowStart(queue_ref_.now());
        utilization_->windowStart(queue_ref_.now());
    }
    ScopeState& state = scopeState(scope);

    const int chunks =
        request.chunks > 0 ? request.chunks : config_.default_chunks;
    const Bytes size = schedulableSize(request.type, request.size,
                                       state.model->dimSizes());
    FlowClass flow = config_.priority.flowFor(request.priority_tier);
    flow.job = request.job;
    if (request.job > max_job_seen_)
        max_job_seen_ = request.job;
    live_jobs_.insert(request.job);
    PlanCache* cache = usableCache();
    const PlanKey key =
        PlanKey::make(config_.scheduler, config_.themis, request.type,
                      size, chunks, state.model->fingerprint(),
                      flow.tier, config_.priority.fingerprint(),
                      capacity_fingerprint_);
    CollectiveSession::SchedulePtr schedules =
        planFor(state, cache, key, request.type, size, chunks, flow);

    const int id = static_cast<int>(records_.size());
    Record rec;
    rec.id = id;
    rec.type = request.type;
    rec.size = request.size;
    rec.scope = scope;
    rec.issued = queue_ref_.now();
    rec.priority_tier = request.priority_tier;
    rec.flow = flow;
    rec.job = request.job;
    records_.push_back(rec);
    if (on_done)
        callbacks_[id] = std::move(on_done);

    if (telem_ != nullptr) {
        m_issued_->add();
        telem_->recorder.record(stats::telemetry::FlightEvent{
            telem_->absolute(rec.issued),
            stats::telemetry::FlightKind::CollectiveIssued, id,
            rec.job, size});
    }

    if (epoch_active_) {
        // Plan-level fingerprint component: what was issued, when,
        // and under which (fully plan-determining) cache key.
        epoch_hash_.mix(std::uint64_t{0x4953}); // "IS"
        epoch_hash_.mix(static_cast<std::uint64_t>(id));
        epoch_hash_.mix(planKeyHash(key));
        epoch_hash_.mix(static_cast<std::uint64_t>(flow.tier));
        epoch_hash_.mix(flow.weight);
        // Job identity is part of the trace: a multi-job epoch whose
        // issue interleaving shifts between jobs must not fingerprint
        // equal to one that merely issued the same shapes.
        epoch_hash_.mix(static_cast<std::uint64_t>(flow.job));
        epoch_hash_.mix(rec.issued);
    }

    std::vector<DimensionEngine*>& engines = engine_scratch_;
    engines.clear();
    engines.reserve(scope.size());
    for (const auto& s : scope)
        engines.push_back(engines_[static_cast<std::size_t>(s.dim)].get());

    if (config_.enforce_consistent_order) {
        // Pre-simulate to fix per-dimension start orders (Sec 4.6.2).
        const PlanCache::OrderPtr orders =
            ordersFor(state, cache, key, *schedules, scope, flow);
        THEMIS_ASSERT(orders->size() == scope.size(),
                      "order plan rank mismatch");
        for (std::size_t local = 0; local < scope.size(); ++local) {
            engines[local]->setEnforcedOrder(id, (*orders)[local]);
        }
    }

    ++outstanding_;

    auto on_session_done = [this](CollectiveSession& s) {
        onCollectiveDone(s.id());
    };
    // Step plans are history-free, so even configs whose chunk
    // schedules bypass the cache (carry-load Themis) memoize them.
    PlanCache* step_cache = config_.plan_cache;
    CollectiveSession* session;
    if (sessions_live_ < sessions_.size()) {
        // Epoch session pool: recycle the slot in place.
        session = sessions_[sessions_live_].get();
        session->reset(id, request.type, std::move(schedules), engines,
                       *state.model, on_session_done, flow, step_cache);
    } else {
        sessions_.push_back(std::make_unique<CollectiveSession>(
            id, request.type, std::move(schedules), engines,
            *state.model, queue_ref_, on_session_done, flow,
            step_cache));
        session = sessions_.back().get();
    }
    ++sessions_live_;
    session->start();
    return id;
}

void
CommRuntime::beginIterationEpoch()
{
    THEMIS_ASSERT(!epoch_active_, "iteration epoch already open");
    THEMIS_ASSERT(outstanding_ == 0,
                  "iteration epoch with " << outstanding_
                                          << " collectives in flight");
    THEMIS_ASSERT(queue_ref_.empty(),
                  "iteration epoch with pending events");
    // Fold the elapsed epoch into the fault timeline's absolute base
    // before the clock rebases under it. Telemetry and trace time
    // bases advance in lockstep so the run timeline stays monotonic
    // across the rebase.
    if (fault_driver_)
        fault_driver_->onEpochRebase(queue_ref_.now());
    if (telem_ != nullptr)
        telem_->time_base += queue_ref_.now();
    if (trace_ != nullptr)
        trace_->advanceTimeBase(queue_ref_.now());
    queue_ref_.rebaseToZero();
    // Epoch mode keeps per-epoch records only: ids, like the clock,
    // restart at zero, so a thousand-iteration run does not retain a
    // thousand iterations of Record history (and classReports() keeps
    // describing the same epoch as the channels' per-epoch byte
    // accounting). All callbacks have fired (outstanding_ == 0).
    THEMIS_ASSERT(callbacks_.empty(),
                  "uncollected completion callbacks at epoch start");
    records_.clear();
    epoch_hash_ = Fnv1a{};
    epoch_completed_base_.clear();
    for (auto& engine : engines_) {
        engine->beginIterationEpoch();
        engine->armFingerprint(&epoch_hash_);
        epoch_completed_base_.push_back(engine->completedCount());
    }
    utilization_->epochReset();
    activity_.reset();
    sessions_live_ = 0; // recycle the previous epoch's sessions
    epoch_active_ = true;
}

CommRuntime::EpochStats
CommRuntime::finishIterationEpoch()
{
    THEMIS_ASSERT(epoch_active_, "no iteration epoch open");
    THEMIS_ASSERT(outstanding_ == 0,
                  "closing an epoch with " << outstanding_
                                           << " collectives in flight");
    EpochStats s;
    s.duration = queue_ref_.now();
    s.active_time = utilization_->activeTime();
    s.collectives = static_cast<int>(records_.size());
    // A Themis scheduler carrying load across collectives keeps
    // hidden history the fingerprint cannot see; such epochs must be
    // simulated, never replayed.
    s.replay_safe =
        !((config_.scheduler == SchedulerKind::Themis ||
           config_.scheduler == SchedulerKind::ThemisPriority) &&
          config_.themis.carry_load_across_collectives);
    int num_classes = 1;
    for (std::size_t d = 0; d < engines_.size(); ++d) {
        sim::SharedChannel& ch = engines_[d]->channel();
        ch.sync();
        s.dim_bytes.push_back(ch.progressedBytes());
        num_classes = std::max(num_classes, ch.numClasses());
        s.ops += engines_[d]->completedCount() -
                 epoch_completed_base_[d];
    }
    s.class_bytes.assign(static_cast<std::size_t>(num_classes), 0.0);
    for (const auto& engine : engines_)
        for (int c = 0; c < num_classes; ++c)
            s.class_bytes[static_cast<std::size_t>(c)] +=
                engine->channel().classProgressedBytes(c);
    // Close the fingerprint over the aggregate epoch observables plus
    // the one piece of cross-epoch hidden scheduling state (the
    // engines' anti-starvation streaks).
    epoch_hash_.mix(std::uint64_t{0x4550}); // "EP"
    epoch_hash_.mix(s.duration);
    epoch_hash_.mix(s.active_time);
    epoch_hash_.mix(static_cast<std::uint64_t>(s.collectives));
    epoch_hash_.mix(s.ops);
    for (Bytes b : s.dim_bytes)
        epoch_hash_.mix(b);
    for (Bytes b : s.class_bytes)
        epoch_hash_.mix(b);
    for (const auto& engine : engines_)
        epoch_hash_.mix(
            static_cast<std::uint64_t>(engine->bypassStreak()));
    // Fault-engine observables: per-dimension retries, lost bytes and
    // link downtime this epoch. All-zero on fault-free runs (with or
    // without an armed driver), so arming alone leaves the
    // fingerprint's inputs — and thus steady-state detection —
    // untouched.
    for (std::size_t d = 0; d < engines_.size(); ++d) {
        epoch_hash_.mix(utilization_->retries()[d]);
        epoch_hash_.mix(utilization_->retryLostBytes()[d]);
        epoch_hash_.mix(utilization_->downTime()[d]);
    }
    // Adaptation state the next epoch plans under: a constant 0 on
    // clean (or non-adaptive) runs, so it perturbs nothing; once a
    // re-plan changes the capacity epoch, steady-state detection must
    // see the hidden planning-factor state, not just the plan keys
    // already issued.
    epoch_hash_.mix(capacity_fingerprint_);
    s.fingerprint = epoch_hash_.value();
    for (auto& engine : engines_)
        engine->disarmFingerprint();
    epoch_active_ = false;
    if (telem_ != nullptr) {
        m_epochs_->add();
        m_epoch_ns_->record(s.duration);
        m_chunk_ops_->add(s.ops);
        telem_->recorder.record(stats::telemetry::FlightEvent{
            telem_->absolute(s.duration),
            stats::telemetry::FlightKind::EpochClosed, -1,
            s.collectives, s.duration});
    }
    return s;
}

void
CommRuntime::noteReplayedEpoch(TimeNs d)
{
    if (fault_driver_)
        fault_driver_->skipReplayedEpoch(d);
    if (telem_ != nullptr) {
        telem_->time_base += d;
        m_replayed_->add();
        telem_->recorder.record(stats::telemetry::FlightEvent{
            telem_->absolute(queue_ref_.now()),
            stats::telemetry::FlightKind::ReplaySkip, -1, -1, d});
    }
    if (trace_ != nullptr)
        trace_->advanceTimeBase(d);
}

bool
CommRuntime::EpochStats::identicalTo(const EpochStats& o) const
{
    if (fingerprint != o.fingerprint ||
        !bitEquals(duration, o.duration) ||
        !bitEquals(active_time, o.active_time) ||
        collectives != o.collectives || ops != o.ops ||
        replay_safe != o.replay_safe ||
        dim_bytes.size() != o.dim_bytes.size() ||
        class_bytes.size() != o.class_bytes.size())
        return false;
    for (std::size_t i = 0; i < dim_bytes.size(); ++i)
        if (!bitEquals(dim_bytes[i], o.dim_bytes[i]))
            return false;
    for (std::size_t i = 0; i < class_bytes.size(); ++i)
        if (!bitEquals(class_bytes[i], o.class_bytes[i]))
            return false;
    return true;
}

void
CommRuntime::onCollectiveDone(int id)
{
    auto& rec = records_[static_cast<std::size_t>(id)];
    THEMIS_ASSERT(!rec.done(), "collective " << id << " finished twice");
    rec.completed = queue_ref_.now();
    --outstanding_;
    if (telem_ != nullptr) {
        m_completed_->add();
        m_collective_ns_->record(rec.duration());
        telem_->recorder.record(stats::telemetry::FlightEvent{
            telem_->absolute(rec.completed),
            stats::telemetry::FlightKind::CollectiveDone, id, rec.job,
            rec.duration()});
    }
    if (outstanding_ == 0) {
        utilization_->windowEnd(queue_ref_.now());
        // Disarm the pending fault event: with no work outstanding it
        // would only stall queue.run(); the next window start catches
        // up on anything that comes due during the idle gap.
        if (fault_driver_)
            fault_driver_->onWindowEnd(queue_ref_.now());
        // Quiescent: no session can still point into a scope state
        // retired by a mid-flight re-plan, so the graveyard drains.
        retired_scopes_.clear();
    }
    if (config_.enforce_consistent_order) {
        for (const auto& s : rec.scope) {
            engines_[static_cast<std::size_t>(s.dim)]
                ->clearEnforcedOrder(id);
        }
    }
    auto cb = callbacks_.find(id);
    if (cb != callbacks_.end()) {
        Callback fn = std::move(cb->second);
        callbacks_.erase(cb);
        fn();
    }
}

const CommRuntime::Record&
CommRuntime::record(int id) const
{
    THEMIS_ASSERT(id >= 0 && id < static_cast<int>(records_.size()),
                  "unknown collective id " << id);
    return records_[static_cast<std::size_t>(id)];
}

DimensionEngine&
CommRuntime::engine(int global_dim)
{
    THEMIS_ASSERT(global_dim >= 0 && global_dim < topo_.numDims(),
                  "bad dimension " << global_dim);
    return *engines_[static_cast<std::size_t>(global_dim)];
}

std::vector<std::vector<OpKey>>
CommRuntime::shadowPlanOrders(CollectiveType type,
                              const std::vector<ChunkSchedule>& schedules,
                              const std::vector<ScopeDim>& scope,
                              const LatencyModel& model,
                              const FlowClass& flow)
{
    sim::EventQueue shadow_queue;
    std::vector<std::unique_ptr<DimensionEngine>> shadow_engines;
    std::vector<DimensionEngine*> engine_ptrs;
    std::vector<std::vector<OpKey>> orders(scope.size());
    for (std::size_t local = 0; local < scope.size(); ++local) {
        DimensionConfig shadow_dim = topo_.dim(scope[local].dim);
        if (capacity_fingerprint_ != 0) {
            // The shadow must replay the degraded fabric the orders
            // will run on, or its op interleaving would mispredict.
            shadow_dim.link_bw_gbps *= planned_factors_[
                static_cast<std::size_t>(scope[local].dim)];
        }
        shadow_engines.push_back(std::make_unique<DimensionEngine>(
            shadow_queue, std::move(shadow_dim),
            scope[local].dim, config_.intra_policy, config_.admission,
            config_.legacy_engine_scan,
            config_.legacy_egalitarian_channel
                ? sim::ChannelFairness::Egalitarian
                : sim::ChannelFairness::Weighted,
            config_.legacy_scalar_admission,
            config_.legacy_tier_blind_headroom));
        auto* bucket = &orders[local];
        shadow_engines.back()->setStartListener(
            [bucket](const OpTag& tag) {
                bucket->push_back(OpKey{tag.chunk_id, tag.stage_index});
            });
        engine_ptrs.push_back(shadow_engines.back().get());
    }
    // The shadow runs the collective alone, so its flow class cannot
    // change relative order — passing it keeps the replay faithful.
    CollectiveSession shadow(0, type, schedules, std::move(engine_ptrs),
                             model, shadow_queue, nullptr, flow,
                             config_.plan_cache);
    shadow.start();
    shadow_queue.run();
    THEMIS_ASSERT(shadow.done(),
                  "shadow planning simulation did not complete");
    return orders;
}

void
CommRuntime::attachTrace(stats::TraceWriter& trace)
{
    trace_ = &trace;
    trace.setProcessName(stats::TraceWriter::kFabricPid, "fabric");
    for (auto& engine : engines_) {
        // Direct engine hook, not a FinishListener lambda: the span
        // fires once per chunk op, and std::function dispatch is
        // measurable against the <=10% tracing budget
        // bench/telemetry_overhead.cpp enforces.
        engine->attachTrace(&trace);
    }
}

void
CommRuntime::finalizeStats()
{
    activity_.finalize(queue_ref_.now());
    publishTelemetry();
}

void
CommRuntime::publishTelemetry()
{
    if (telem_ == nullptr)
        return;
    for (std::size_t d = 0; d < engines_.size(); ++d) {
        engines_[d]->channel().sync();
        char prefix[32];
        std::snprintf(prefix, sizeof(prefix), "engine.dim%d",
                      static_cast<int>(d) + 1);
        engines_[d]->publishMetrics(telem_->metrics, prefix);
    }
    auto& m = telem_->metrics;
    m.gauge("runtime.session_slots")
        .set(static_cast<double>(sessionSlotCount()));
    m.gauge("runtime.live_jobs")
        .set(static_cast<double>(liveJobCount()));
    m.gauge("adapt.capacity_degraded")
        .set(capacity_fingerprint_ != 0 ? 1.0 : 0.0);
}

std::vector<CommRuntime::ClassReport>
CommRuntime::classReports()
{
    // The channels account per (job, tier) pair (accountingClass());
    // tier rows aggregate over jobs. Tiers present: whatever the
    // channels currently track, plus the retired-job aggregates,
    // plus every tier a record was mapped to (a class may have
    // issued-but-untransferred collectives).
    std::set<int> acct;
    for (const auto& engine : engines_) {
        engine->channel().sync();
        for (const int c : engine->channel().classIds())
            acct.insert(c);
    }
    int num_tiers = 1;
    for (const int c : acct)
        num_tiers = std::max(num_tiers, accountingTier(c) + 1);
    for (int t = 0; t < kNumPriorityTiers; ++t)
        if (retired_tiers_[static_cast<std::size_t>(t)].progressed >
            0.0)
            num_tiers = std::max(num_tiers, t + 1);
    for (const auto& rec : records_)
        num_tiers = std::max(num_tiers, rec.flow.tier + 1);

    std::vector<ClassReport> out(
        static_cast<std::size_t>(num_tiers));
    for (int t = 0; t < num_tiers; ++t) {
        ClassReport& r = out[static_cast<std::size_t>(t)];
        r.tier = t;
        r.weight = config_.priority.flowFor(t).weight;
        if (t < kNumPriorityTiers) {
            // Departed tenants' contribution, re-normalized against
            // the *current* active time so it stays commensurable
            // with the live classes' utilization shares.
            const auto& ret =
                retired_tiers_[static_cast<std::size_t>(t)];
            r.progressed += ret.progressed;
            r.utilization +=
                utilization_->utilizationOf(ret.window_bytes);
        }
    }
    for (const int c : acct) {
        ClassReport& r =
            out[static_cast<std::size_t>(accountingTier(c))];
        for (const auto& engine : engines_)
            r.progressed +=
                engine->channel().classProgressedBytes(c);
        r.utilization += utilization_->classUtilization(c);
    }
    for (const auto& rec : records_) {
        ClassReport& r =
            out[static_cast<std::size_t>(rec.flow.tier)];
        ++r.issued;
        if (rec.done()) {
            ++r.completed;
            r.mean_duration += rec.duration();
        }
    }
    for (ClassReport& r : out)
        if (r.completed > 0)
            r.mean_duration /= r.completed;
    return out;
}

std::vector<CommRuntime::JobReport>
CommRuntime::jobReports()
{
    for (const auto& engine : engines_)
        engine->channel().sync();
    std::map<int, JobReport> rows;
    for (const int j : live_jobs_)
        rows[j].job = j;
    for (const auto& engine : engines_) {
        for (const int c : engine->channel().classIds()) {
            const auto it = rows.find(accountingJob(c));
            if (it == rows.end())
                continue;
            it->second.progressed +=
                engine->channel().classProgressedBytes(c);
        }
    }
    for (auto& [j, r] : rows) {
        for (int t = 0; t < kNumPriorityTiers; ++t) {
            const int c = j * kNumPriorityTiers + t;
            const auto& wb = utilization_->classWindowBytes();
            const auto it = wb.find(c);
            if (it != wb.end())
                r.window_bytes += it->second;
        }
        r.utilization = utilization_->utilizationOf(r.window_bytes);
    }
    // Records of retired jobs stay in history; their rows are gone,
    // so they simply don't attribute here.
    for (const auto& rec : records_) {
        const auto it = rows.find(rec.job);
        if (it == rows.end())
            continue;
        JobReport& r = it->second;
        ++r.issued;
        if (rec.done()) {
            ++r.completed;
            r.mean_duration += rec.duration();
        }
    }
    std::vector<JobReport> out;
    out.reserve(rows.size());
    for (auto& [j, r] : rows) {
        if (r.completed > 0)
            r.mean_duration /= r.completed;
        out.push_back(std::move(r));
    }
    return out;
}

CommRuntime::JobReport
CommRuntime::retireJob(int job)
{
    THEMIS_ASSERT(job >= 0 && job < kMaxJobsPerRuntime,
                  "job index " << job << " outside [0, "
                               << kMaxJobsPerRuntime << ")");
    JobReport r;
    r.job = job;
    for (const auto& engine : engines_)
        engine->channel().sync();
    // Final channel accounting, folded into the per-tier retired
    // aggregates as it is read so classReports() totals survive the
    // erase below.
    for (int t = 0; t < kNumPriorityTiers; ++t) {
        const int c = job * kNumPriorityTiers + t;
        RetiredTierAcct& ret =
            retired_tiers_[static_cast<std::size_t>(t)];
        Bytes progressed = 0.0;
        for (const auto& engine : engines_)
            progressed += engine->channel().classProgressedBytes(c);
        // Tracker first (it reads the channels), then the channels.
        const Bytes window = utilization_->retireClass(c);
        for (const auto& engine : engines_)
            engine->channel().retireClass(c);
        r.progressed += progressed;
        r.window_bytes += window;
        ret.progressed += progressed;
        ret.window_bytes += window;
    }
    r.utilization = utilization_->utilizationOf(r.window_bytes);
    for (const auto& rec : records_) {
        if (rec.job != job)
            continue;
        ++r.issued;
        if (rec.done()) {
            ++r.completed;
            r.mean_duration += rec.duration();
        }
    }
    if (r.completed > 0)
        r.mean_duration /= r.completed;
    live_jobs_.erase(job);
    return r;
}

} // namespace themis::runtime
