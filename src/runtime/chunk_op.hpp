/**
 * @file
 * Runtime representation of one chunk operation: one phase (RS/AG/A2A)
 * of one chunk executing on one network dimension. Sessions create
 * ops; dimension engines execute them step by step on the event queue
 * and invoke the completion callback.
 *
 * Every op carries its collective's FlowClass (priority tier + GPS
 * weight), which the engines thread down to the shared channels —
 * priority is a first-class attribute from workload to wire.
 */

#ifndef THEMIS_RUNTIME_CHUNK_OP_HPP
#define THEMIS_RUNTIME_CHUNK_OP_HPP

#include <cstddef>
#include <cstdint>
#include <functional>

#include "collective/algorithms.hpp"
#include "common/error.hpp"
#include "core/chunk.hpp"
#include "core/plan_cache.hpp"
#include "core/priority_policy.hpp"

namespace themis::runtime {

/** Globally unique identity of a chunk operation. */
struct OpTag
{
    int collective_id = 0;
    int chunk_id = 0;
    int stage_index = 0;

    bool
    operator==(const OpTag& o) const
    {
        return collective_id == o.collective_id &&
               chunk_id == o.chunk_id && stage_index == o.stage_index;
    }

    bool
    operator<(const OpTag& o) const
    {
        if (collective_id != o.collective_id)
            return collective_id < o.collective_id;
        if (chunk_id != o.chunk_id)
            return chunk_id < o.chunk_id;
        return stage_index < o.stage_index;
    }
};

/**
 * Inline step storage. The cost model lumps every op into a single
 * (fixed delay, wire bytes) step (Sec 4.4), so a heap-allocated
 * vector per op was pure overhead on the hot path — ops are created
 * per stage per chunk per iteration. A small fixed array keeps the op
 * trivially movable with zero allocations while preserving the
 * engine's generic step iteration.
 */
class StepList
{
  public:
    static constexpr std::size_t kCapacity = 4;

    void
    push_back(const StepPlan& step)
    {
        THEMIS_ASSERT(count_ < kCapacity, "chunk op step overflow");
        items_[count_++] = step;
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    const StepPlan&
    operator[](std::size_t i) const
    {
        return items_[i];
    }

    const StepPlan* begin() const { return items_; }
    const StepPlan* end() const { return items_ + count_; }

  private:
    StepPlan items_[kCapacity];
    std::size_t count_ = 0;
};

/** A schedulable chunk operation; see file comment. */
struct ChunkOp
{
    OpTag tag;
    Phase phase = Phase::ReduceScatter;

    /** Dimension index within the collective's scope. */
    int local_dim = 0;

    /** Dimension index within the full topology. */
    int global_dim = 0;

    /** Per-NPU data size entering this stage. */
    Bytes entering = 0.0;

    /** Flow class of the parent collective (tier + GPS weight). */
    FlowClass flow;

    /** Algorithm step plan (latency + bytes per step). */
    StepList steps;

    /** Sum of step transfer times at full bandwidth (N*B). */
    TimeNs transfer_time = 0.0;

    /** Sum of step latencies (A). */
    TimeNs fixed_delay = 0.0;

    /**
     * Failed execution attempts so far (link flaps). 0 on the first
     * start; each retry re-runs the op from step 0 after backoff.
     */
    int attempt = 0;

    /** Invoked by the engine when the op finishes. */
    std::function<void(const ChunkOp&)> on_complete;
};

/**
 * Build a ChunkOp for @p phase of chunk @p tag on dimension @p dim
 * (computes the step plan and time aggregates). @p flow is the parent
 * collective's flow class. When @p step_cache is non-null the lumped
 * step aggregates are memoized under (phase, entering,
 * @p dim_fingerprint) — pass LatencyModel::dimFingerprint() of the
 * stage's dimension.
 */
ChunkOp makeChunkOp(const OpTag& tag, Phase phase, int local_dim,
                    int global_dim, Bytes entering,
                    const DimensionConfig& dim,
                    std::function<void(const ChunkOp&)> on_complete,
                    FlowClass flow = {}, PlanCache* step_cache = nullptr,
                    std::uint64_t dim_fingerprint = 0);

} // namespace themis::runtime

#endif // THEMIS_RUNTIME_CHUNK_OP_HPP
