/**
 * @file
 * Runtime representation of one chunk operation: one phase (RS/AG/A2A)
 * of one chunk executing on one network dimension. Sessions create
 * ops; dimension engines execute them step by step on the event queue
 * and invoke the completion callback.
 */

#ifndef THEMIS_RUNTIME_CHUNK_OP_HPP
#define THEMIS_RUNTIME_CHUNK_OP_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "collective/algorithms.hpp"
#include "core/chunk.hpp"

namespace themis::runtime {

/** Globally unique identity of a chunk operation. */
struct OpTag
{
    int collective_id = 0;
    int chunk_id = 0;
    int stage_index = 0;

    bool
    operator==(const OpTag& o) const
    {
        return collective_id == o.collective_id &&
               chunk_id == o.chunk_id && stage_index == o.stage_index;
    }

    bool
    operator<(const OpTag& o) const
    {
        if (collective_id != o.collective_id)
            return collective_id < o.collective_id;
        if (chunk_id != o.chunk_id)
            return chunk_id < o.chunk_id;
        return stage_index < o.stage_index;
    }
};

/** A schedulable chunk operation; see file comment. */
struct ChunkOp
{
    OpTag tag;
    Phase phase = Phase::ReduceScatter;

    /** Dimension index within the collective's scope. */
    int local_dim = 0;

    /** Dimension index within the full topology. */
    int global_dim = 0;

    /** Per-NPU data size entering this stage. */
    Bytes entering = 0.0;

    /** Algorithm step plan (latency + bytes per step). */
    std::vector<StepPlan> steps;

    /** Sum of step transfer times at full bandwidth (N*B). */
    TimeNs transfer_time = 0.0;

    /** Sum of step latencies (A). */
    TimeNs fixed_delay = 0.0;

    /** Invoked by the engine when the op finishes. */
    std::function<void(const ChunkOp&)> on_complete;
};

/**
 * Build a ChunkOp for @p phase of chunk @p tag on dimension @p dim
 * (computes the step plan and time aggregates).
 */
ChunkOp makeChunkOp(const OpTag& tag, Phase phase, int local_dim,
                    int global_dim, Bytes entering,
                    const DimensionConfig& dim,
                    std::function<void(const ChunkOp&)> on_complete);

} // namespace themis::runtime

#endif // THEMIS_RUNTIME_CHUNK_OP_HPP
