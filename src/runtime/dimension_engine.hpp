/**
 * @file
 * Per-dimension execution engine.
 *
 * Owns one SharedChannel (the dimension's aggregate bandwidth) and a
 * queue of pending chunk operations. Responsibilities:
 *
 *  - intra-dimension ordering: FIFO or Smallest-Chunk-First
 *    (paper Sec 4.3), or an *enforced* per-collective order produced
 *    by the consistency planner (Sec 4.6.2);
 *  - admission: one big chunk at a time saturates the bandwidth, but
 *    small operations (transfer time below their fixed latency) run
 *    in parallel so their latency gaps overlap — the paper's second
 *    provision in Sec 4.3;
 *  - step execution: each algorithm step waits its latency (no
 *    bandwidth held) and then transfers its bytes through the shared
 *    channel (processor sharing across concurrent ops).
 */

#ifndef THEMIS_RUNTIME_DIMENSION_ENGINE_HPP
#define THEMIS_RUNTIME_DIMENSION_ENGINE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/consistency_planner.hpp"
#include "core/intra_dim_policy.hpp"
#include "runtime/chunk_op.hpp"
#include "sim/event_queue.hpp"
#include "sim/shared_channel.hpp"

namespace themis::runtime {

/** Parallel-admission tunables (paper Sec 4.3 second provision). */
struct AdmissionConfig
{
    /** Hard cap on concurrently executing ops per dimension. */
    int max_parallel_ops = 64;

    /**
     * Admit another op while the active set's summed transfer time is
     * below latency_headroom x (the largest active fixed delay): the
     * batch's serialization work does not yet dwarf the latency it
     * must hide, so bandwidth would idle without more chunks. Large
     * chunks (transfer >> fixed delay) therefore run alone, while
     * small latency-bound chunks stack until the dimension saturates
     * — the paper's "multiple chunks per dimension should be run in
     * parallel to fully saturate". 9x headroom targets ~90% busy in
     * the worst (lock-step) case.
     */
    double latency_headroom = 9.0;
};

/** Executes chunk ops on one network dimension; see file comment. */
class DimensionEngine
{
  public:
    /** Presence callback: (global dim, has-ops, time). */
    using PresenceListener = std::function<void(int, bool, TimeNs)>;

    /** Start callback: fired whenever an op begins executing. */
    using StartListener = std::function<void(const OpTag&)>;

    /** Finish callback: (op, start time) fired at op completion. */
    using FinishListener =
        std::function<void(const ChunkOp&, TimeNs started)>;

    /**
     * @param queue      event queue driving the simulation
     * @param config     this dimension's network parameters
     * @param global_dim index of this dimension in the full topology
     * @param policy     intra-dimension ordering policy
     * @param admission  parallel-admission tunables
     */
    DimensionEngine(sim::EventQueue& queue, DimensionConfig config,
                    int global_dim, IntraDimPolicy policy,
                    AdmissionConfig admission);

    DimensionEngine(const DimensionEngine&) = delete;
    DimensionEngine& operator=(const DimensionEngine&) = delete;

    /** Queue @p op; it starts when ordering and admission allow. */
    void enqueue(ChunkOp op);

    /**
     * Enforce a start order for the ops of @p collective_id on this
     * dimension (consistency planner output, Sec 4.6.2). Ops of that
     * collective then start exactly in this order; ops of other
     * collectives interleave by policy.
     */
    void setEnforcedOrder(int collective_id, std::vector<OpKey> order);

    /** Drop the enforced order of @p collective_id (when it ends). */
    void clearEnforcedOrder(int collective_id);

    /** Observe queue+active presence transitions (for Fig 9). */
    void setPresenceListener(PresenceListener listener);

    /** Observe op starts (shadow-simulation order capture). */
    void setStartListener(StartListener listener);

    /** Observe op completions with their start times (tracing). */
    void setFinishListener(FinishListener listener);

    /** The underlying bandwidth resource (stats access). */
    sim::SharedChannel& channel() { return channel_; }
    const sim::SharedChannel& channel() const { return channel_; }

    /** Dimension network parameters. */
    const DimensionConfig& config() const { return config_; }

    /** Index in the full topology. */
    int globalDim() const { return global_dim_; }

    /** Currently queued (not yet started) op count. */
    std::size_t queuedCount() const { return queue_.size(); }

    /** Currently executing op count. */
    std::size_t activeCount() const { return active_.size(); }

    /** Total ops completed by this engine. */
    std::uint64_t completedCount() const { return completed_; }

  private:
    struct PendingOp
    {
        ChunkOp op;
        std::uint64_t arrival_seq;
    };

    struct ActiveOp
    {
        ChunkOp op;
        std::size_t next_step = 0;
        TimeNs started_at = 0.0;
    };

    void tryStart();
    bool admissionAllows(const ChunkOp& candidate) const;
    /** Queue index to start next, or npos if ordering blocks. */
    std::size_t selectNext() const;
    void startOp(ChunkOp op);
    void advance(std::uint64_t exec_id);
    void finish(std::uint64_t exec_id);
    void notifyPresence();

    sim::EventQueue& queue_ref_;
    DimensionConfig config_;
    int global_dim_;
    IntraDimPolicy policy_;
    AdmissionConfig admission_;
    sim::SharedChannel channel_;

    std::deque<PendingOp> queue_;
    std::map<std::uint64_t, ActiveOp> active_;
    /** Aggregates over active_, maintained incrementally so the
     *  admission check is O(1) instead of rescanning the active set. */
    TimeNs active_transfer_sum_ = 0.0;
    std::multiset<TimeNs> active_delays_;
    std::uint64_t next_exec_id_ = 1;
    std::uint64_t arrival_counter_ = 0;
    std::uint64_t completed_ = 0;

    struct EnforcedOrder
    {
        std::vector<OpKey> order;
        std::size_t next = 0;
    };
    std::map<int, EnforcedOrder> enforced_;

    PresenceListener presence_;
    StartListener start_listener_;
    FinishListener finish_listener_;
    bool last_presence_ = false;
};

} // namespace themis::runtime

#endif // THEMIS_RUNTIME_DIMENSION_ENGINE_HPP
