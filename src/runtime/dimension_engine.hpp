/**
 * @file
 * Per-dimension execution engine.
 *
 * Owns one SharedChannel (the dimension's aggregate bandwidth) and a
 * queue of pending chunk operations. Responsibilities:
 *
 *  - intra-dimension ordering: FIFO or Smallest-Chunk-First
 *    (paper Sec 4.3), or an *enforced* per-collective order produced
 *    by the consistency planner (Sec 4.6.2). Flow-class tiers rank
 *    above the policy: among eligible ops, higher tiers select
 *    first, with an anti-starvation age bound (below);
 *  - admission: one big chunk at a time saturates the bandwidth, but
 *    small operations (transfer time below their fixed latency) run
 *    in parallel so their latency gaps overlap — the paper's second
 *    provision in Sec 4.3;
 *  - step execution: each algorithm step waits its latency (no
 *    bandwidth held) and then transfers its bytes through the shared
 *    channel (processor sharing across concurrent ops).
 *
 * Selection is indexed: pending ops that are *eligible* (their
 * collective has no enforced order, or they are exactly its next
 * expected op) live in a ready-set ordered by the intra-dimension
 * policy key, so picking the next op is O(log n) instead of a linear
 * rescan of the queue per start. Ops of an enforced collective that
 * are not yet expected are parked per collective and promoted when
 * the order cursor reaches them. The pre-PR linear scan is retained
 * behind `legacy_scan` so benches can measure both paths in the same
 * binary; the two paths pick identical ops in identical order (the
 * legacy scan is tier-aware too, but implements no anti-starvation
 * aging — it is a measurement baseline, exercised with uniform
 * priorities).
 *
 * Refills are *batched* on the common path: when the ready set spans
 * one flow tier, no enforced order is installed and no
 * anti-starvation debt is pending, the selection order is exactly the
 * ready set's iteration order and no start can reshape it — so the
 * engine evaluates the admission headroom checks over the ready
 * prefix in one streamed pass with the aggregates (running
 * transfer-time sum, running max delay, running active count) hoisted
 * into locals and a branch-light admit formula, instead of
 * re-querying the active multiset and map per start. The
 * one-op-at-a-time loop remains for enforced orders, mixed tiers and
 * pending bypasses, and is selectable outright (`scalar_admission`)
 * as an equivalence baseline; both paths admit identical prefixes.
 *
 * Anti-starvation: tier precedence alone would let a sustained
 * high-tier stream park a low-tier op forever. The engine counts
 * consecutive starts that jumped over an older, lower-tier waiting
 * op; once the streak reaches AdmissionConfig::max_priority_bypass,
 * the oldest waiting op is selected next regardless of tier. Lower
 * tiers are therefore delayed, never starved.
 */

#ifndef THEMIS_RUNTIME_DIMENSION_ENGINE_HPP
#define THEMIS_RUNTIME_DIMENSION_ENGINE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "core/consistency_planner.hpp"
#include "core/intra_dim_policy.hpp"
#include "runtime/chunk_op.hpp"
#include "sim/event_queue.hpp"
#include "sim/shared_channel.hpp"
#include "stats/telemetry/metrics.hpp"

namespace themis::stats {
class TraceWriter;
} // namespace themis::stats

namespace themis::runtime {

/** Parallel-admission tunables (paper Sec 4.3 second provision). */
struct AdmissionConfig
{
    /** Hard cap on concurrently executing ops per dimension. */
    int max_parallel_ops = 64;

    /**
     * Admit another op while the active set's summed transfer time is
     * below latency_headroom x (the largest active fixed delay): the
     * batch's serialization work does not yet dwarf the latency it
     * must hide, so bandwidth would idle without more chunks. Large
     * chunks (transfer >> fixed delay) therefore run alone, while
     * small latency-bound chunks stack until the dimension saturates
     * — the paper's "multiple chunks per dimension should be run in
     * parallel to fully saturate". 9x headroom targets ~90% busy in
     * the worst (lock-step) case.
     *
     * The service demand is *weighted*: each active op's transfer
     * time counts scaled by its GPS weight relative to the
     * candidate's, i.e. admit while
     *   sum_i(transfer_i * w_i) < headroom * max_delay * w_candidate.
     * Under weighted GPS the active set's work drains past a
     * candidate of weight w_c at w_c's share, so a bulk backlog looks
     * small to an urgent candidate (admit) and an urgent burst looks
     * large to a bulk candidate (hold back). With uniform weights
     * every w is 1.0 and the formula is bit-identical to the
     * tier-blind sum (the pre-PR check, retained behind
     * RuntimeConfig.legacy_tier_blind_headroom).
     */
    double latency_headroom = 9.0;

    /**
     * Anti-starvation bound: after this many consecutive op starts
     * that bypassed an older, lower-tier waiting op, the oldest
     * waiting op starts next regardless of tier. Irrelevant under a
     * uniform priority policy (no op ever outranks another). 64
     * bounds low-tier waiting at roughly one collective's worth of
     * chunk ops while keeping forced inversions rare enough not to
     * perturb the urgent stream (a forced bulk transfer parks itself
     * in the shared channel for its full duration).
     */
    int max_priority_bypass = 64;
};

/**
 * Retry/backoff tunables for flapped transfers (fault engine). A
 * failed chunk op re-enters the ready set after exponential backoff:
 * attempt k (1-based) waits min(backoff_base_ns * 2^(k-1),
 * backoff_cap_ns) before requeueing — optionally spread by seeded
 * deterministic jitter — and exceeding max_attempts throws
 * RetryExhaustedError (the scenario out-flaps the retry budget).
 */
struct RetryConfig
{
    TimeNs backoff_base_ns = 1e4; ///< first-retry delay (10 us)
    TimeNs backoff_cap_ns = 1e6;  ///< backoff ceiling (1 ms)
    int max_attempts = 16;        ///< fatal beyond this many failures

    /**
     * Backoff jitter spread in [0, 1): each retry's delay is scaled
     * by a deterministic factor in [1 - jitter/2, 1 + jitter/2) drawn
     * by hashing (jitter_seed, dim, op identity, attempt). A link
     * flap fails every in-flight transfer at one instant; without
     * jitter they all back off to the same tick and re-collide
     * (a synchronized retry storm). 0 disables jitter entirely and
     * reproduces the unjittered timings bit for bit.
     */
    double jitter = 0.0;

    /** Seed for the jitter hash; same seed -> same retry timings. */
    std::uint64_t jitter_seed = 0x7e315c0dULL;
};

/**
 * Structured diagnostic of a transfer that ran out of retry budget:
 * which dimension and op gave up, after how many attempts, and the
 * dimension's cumulative re-sent bytes at that point.
 */
struct FatalRetryReport
{
    int dim = -1;        ///< global dimension index
    OpTag op{};          ///< the op that exhausted its budget
    int attempts = 0;    ///< failed attempts (== max_attempts + 1)
    Bytes lost_bytes = 0.0; ///< dim's cumulative re-sent bytes
};

/**
 * Thrown when a transfer exceeds RetryConfig::max_attempts. Derives
 * from ConfigError so existing catch sites keep working; carries the
 * FatalRetryReport so the CLI can print a readable diagnostic and
 * exit non-zero instead of surfacing a raw exception.
 */
class RetryExhaustedError : public ConfigError
{
  public:
    RetryExhaustedError(const std::string& what, FatalRetryReport report)
        : ConfigError(what), report_(report)
    {
    }

    const FatalRetryReport& report() const { return report_; }

  private:
    FatalRetryReport report_;
};

/** Executes chunk ops on one network dimension; see file comment. */
class DimensionEngine
{
  public:
    /** Presence callback: (global dim, has-ops, time). */
    using PresenceListener = std::function<void(int, bool, TimeNs)>;

    /** Start callback: fired whenever an op begins executing. */
    using StartListener = std::function<void(const OpTag&)>;

    /** Finish callback: (op, start time) fired at op completion. */
    using FinishListener =
        std::function<void(const ChunkOp&, TimeNs started)>;

    /**
     * Retry callback: (global dim, lost bytes, backoff delay) per
     * failed attempt. The delay is the exponential-backoff wait the
     * attempt will requeue after (computed even for the attempt that
     * exhausts the budget, where no requeue follows).
     */
    using RetryListener = std::function<void(int, Bytes, TimeNs)>;

    /** Fired once, just before RetryExhaustedError is thrown. */
    using FatalRetryListener =
        std::function<void(const FatalRetryReport&)>;

    /**
     * @param queue       event queue driving the simulation
     * @param config      this dimension's network parameters
     * @param global_dim  index of this dimension in the full topology
     * @param policy      intra-dimension ordering policy
     * @param admission   parallel-admission tunables
     * @param legacy_scan use the pre-PR O(queue) selection scan
     *                    (measurement baseline; results identical)
     * @param fairness    the shared channel's sharing discipline
     *                    (Egalitarian is the pre-priority equal-share
     *                    baseline; requires unit flow weights)
     * @param scalar_admission run the one-op-at-a-time admission
     *                    check loop instead of the batched prefix
     *                    pass (measurement/equivalence baseline;
     *                    results identical)
     * @param tier_blind_headroom use the pre-PR tier-blind admission
     *                    headroom (unweighted transfer-time sum)
     *                    instead of weighted service demand
     *                    (measurement/equivalence baseline; identical
     *                    under uniform flow weights)
     */
    DimensionEngine(sim::EventQueue& queue, DimensionConfig config,
                    int global_dim, IntraDimPolicy policy,
                    AdmissionConfig admission, bool legacy_scan = false,
                    sim::ChannelFairness fairness =
                        sim::ChannelFairness::Weighted,
                    bool scalar_admission = false,
                    bool tier_blind_headroom = false);

    DimensionEngine(const DimensionEngine&) = delete;
    DimensionEngine& operator=(const DimensionEngine&) = delete;

    /** Queue @p op; it starts when ordering and admission allow. */
    void enqueue(ChunkOp op);

    /**
     * Enforce a start order for the ops of @p collective_id on this
     * dimension (consistency planner output, Sec 4.6.2). Ops of that
     * collective then start exactly in this order; ops of other
     * collectives interleave by policy.
     *
     * Normally installed before the collective's session starts.
     * Replacing an existing order mid-flight is supported only if the
     * new order lists exclusively not-yet-started ops (the cursor
     * restarts at the new order's head; an already-started op named
     * there would be waited for forever).
     */
    void setEnforcedOrder(int collective_id, std::vector<OpKey> order);

    /** Drop the enforced order of @p collective_id (when it ends). */
    void clearEnforcedOrder(int collective_id);

    /** Observe queue+active presence transitions (for Fig 9). */
    void setPresenceListener(PresenceListener listener);

    /** Observe op starts (shadow-simulation order capture). */
    void setStartListener(StartListener listener);

    /** Observe op completions with their start times (tracing). */
    void setFinishListener(FinishListener listener);

    /**
     * Emit one fabric-row span per completed chunk op into @p trace
     * (null detaches). A direct pointer, not a FinishListener: this
     * fires on every op and the std::function dispatch alone is
     * measurable against the <=10% tracing budget
     * bench/telemetry_overhead.cpp enforces.
     */
    void attachTrace(stats::TraceWriter* trace);

    /**
     * Enable the fault path: transfers begun on the channel carry a
     * failure handler, and failed ops re-enter the ready set after
     * exponential backoff per @p retry. Incompatible with the legacy
     * scan (a measurement baseline). Arming changes no timing while
     * no fault fires — fault-free runs stay bit-identical.
     */
    void armFaults(const RetryConfig& retry);

    /** Observe failed attempts (per-dimension retry accounting). */
    void setRetryListener(RetryListener listener);

    /** Observe retry-budget exhaustion (structured failure report). */
    void setFatalRetryListener(FatalRetryListener listener);

    /**
     * Flap control (FaultDriver): @p down=true fails every transfer
     * in flight on the channel (each op backs off and retries) and
     * holds new starts; @p down=false releases the hold and refills.
     * Requires armFaults(). Idempotent per state.
     */
    void setLinkDown(bool down);

    /** True while the link is flapped down. */
    bool linkDown() const { return link_down_; }

    /**
     * Partial-link failure (FaultDriver): fail every transfer in
     * flight on the channel once (each backs off and retries) WITHOUT
     * holding new starts — the dimension's surviving links keep
     * serving at whatever capacity the driver set. Requires
     * armFaults(). Used when some but not all links of the dim go
     * down; a full outage uses setLinkDown(true) instead.
     */
    void failInFlight();

    /** Failed attempts so far (cumulative). */
    std::uint64_t retryCount() const { return retry_count_; }

    /**
     * Wire bytes moved by failed attempts (cumulative) — work that
     * will be re-sent. progressedBytes() of the channel equals the
     * useful schedule bytes plus exactly this amount.
     */
    Bytes lostBytes() const { return lost_bytes_; }

    /** The underlying bandwidth resource (stats access). */
    sim::SharedChannel& channel() { return channel_; }
    const sim::SharedChannel& channel() const { return channel_; }

    /** Dimension network parameters. */
    const DimensionConfig& config() const { return config_; }

    /** Index in the full topology. */
    int globalDim() const { return global_dim_; }

    /** Currently queued (not yet started) op count. */
    std::size_t
    queuedCount() const
    {
        return legacy_scan_ ? queue_.size() : pending_.size();
    }

    /** Currently executing op count. */
    std::size_t activeCount() const { return active_.size(); }

    /** Total ops completed by this engine. */
    std::uint64_t completedCount() const { return completed_; }

    /**
     * Arm per-op event tracing into @p sink: every op start and
     * finish mixes (dimension, op identity, timestamp) into the
     * hash, in execution order. The caller's epoch reset restarts
     * collective ids and the clock, so the mixed values are
     * epoch-relative by construction. Disarmed engines pay a single
     * null check per op.
     */
    void armFingerprint(Fnv1a* sink) { fingerprint_ = sink; }

    /** Stop tracing into the fingerprint sink. */
    void disarmFingerprint() { fingerprint_ = nullptr; }

    /**
     * Iteration-epoch reset: requires an idle engine (no queued or
     * active ops) and an already-rebased event queue; rebases and
     * zeroes the shared channel (SharedChannel::epochReset()).
     */
    void beginIterationEpoch();

    /**
     * Anti-starvation streak carried across ops. Exposed so epoch
     * fingerprints can cover this one piece of cross-iteration
     * hidden scheduling state.
     */
    int bypassStreak() const { return bypass_streak_; }

    /** Arena slabs backing the pending/ready/active stores. */
    std::size_t arenaSlabCount() const { return arena_.slabCount(); }

    /**
     * Publish this engine's cumulative observables as gauges under
     * `<prefix>.` dotted names (telemetry snapshot; pure observer).
     */
    void publishMetrics(stats::telemetry::MetricsRegistry& registry,
                        const std::string& prefix) const;

  private:
    struct PendingOp
    {
        ChunkOp op;
        std::uint64_t arrival_seq;
    };

    struct ActiveOp
    {
        ChunkOp op;
        std::size_t next_step = 0;
        TimeNs started_at = 0.0;
    };

    /** Ready-set key; ordering implements tier + policy tie-breaks. */
    struct ReadyKey
    {
        int tier = 0;
        TimeNs service_time = 0.0;
        std::uint64_t arrival_seq = 0;
        int chunk_id = 0;
    };

    struct ReadyCompare
    {
        IntraDimPolicy policy;

        bool
        operator()(const ReadyKey& a, const ReadyKey& b) const
        {
            // Higher flow-class tiers first; the policy orders within
            // a tier (matches pickNextOp's tier precedence).
            if (a.tier != b.tier)
                return a.tier > b.tier;
            if (policy == IntraDimPolicy::Scf) {
                if (a.service_time != b.service_time)
                    return a.service_time < b.service_time;
                if (a.arrival_seq != b.arrival_seq)
                    return a.arrival_seq < b.arrival_seq;
                return a.chunk_id < b.chunk_id;
            }
            return a.arrival_seq < b.arrival_seq;
        }
    };

    struct EnforcedOrder
    {
        std::vector<OpKey> order;
        std::size_t next = 0;
        /** Parked (not yet expected) ops: OpKey -> arrival_seq. */
        std::map<std::pair<int, int>, std::uint64_t> parked;
    };

    static ReadyKey
    readyKeyOf(const PendingOp& p)
    {
        return ReadyKey{p.op.flow.tier,
                        p.op.transfer_time + p.op.fixed_delay,
                        p.arrival_seq, p.op.tag.chunk_id};
    }

    /** Insert/remove @p p in both ready indexes (policy + age). */
    void readyInsert(const PendingOp& p);
    void readyErase(const PendingOp& p);

    void tryStart();
    /** One-op-at-a-time refill over the indexed ready set (general
     *  path: enforced orders, mixed tiers, anti-starvation). */
    void tryStartScalar();
    /** Batched refill: admission headroom checks streamed over the
     *  ready prefix in one pass with register-resident aggregates
     *  (single-tier, order-free fast path). */
    void tryStartBatch();
    void tryStartLegacy();
    bool admissionAllows(const ChunkOp& candidate) const;
    /** Queue index to start next, or npos if ordering blocks. */
    std::size_t selectNext() const;
    /** Promote @p eo's newly expected op from parked to ready. */
    void promoteExpected(EnforcedOrder& eo);
    void startOp(ChunkOp op);
    void advance(std::uint64_t exec_id);
    void finish(std::uint64_t exec_id);
    /** Fault path: remove @p exec_id from the active set, account
     *  @p lost re-sent bytes, and schedule its backoff requeue. */
    void failOp(std::uint64_t exec_id, Bytes lost);

    /** Capped exponential backoff (plus jitter) for @p op's attempt. */
    TimeNs retryBackoffDelay(const ChunkOp& op) const;
    /** Backoff expiry: the op re-enters pending/ready directly (an
     *  enforced order's cursor has already passed a started op). */
    void requeueRetry(ChunkOp op);
    void notifyPresence();

    sim::EventQueue& queue_ref_;
    DimensionConfig config_;
    int global_dim_;
    IntraDimPolicy policy_;
    AdmissionConfig admission_;
    bool legacy_scan_;
    bool scalar_admission_;
    bool tier_blind_headroom_;
    sim::SharedChannel channel_;

    /**
     * Node arena backing every per-op container below: after the
     * first iteration has shaped the pool, op churn allocates nothing
     * and the nodes stay packed in a few slabs (declared first so it
     * outlives the containers).
     */
    NodeArena arena_;

    std::deque<PendingOp> queue_; ///< legacy-scan pending store
    /** Indexed pending store: arrival_seq -> op, plus the eligible
     *  set ordered by policy key. */
    std::unordered_map<
        std::uint64_t, PendingOp, std::hash<std::uint64_t>,
        std::equal_to<std::uint64_t>,
        ArenaAllocator<std::pair<const std::uint64_t, PendingOp>>>
        pending_;
    std::set<ReadyKey, ReadyCompare, ArenaAllocator<ReadyKey>> ready_;
    /** Age index over ready_ (arrival_seq ascending): the oldest
     *  waiting op, for the anti-starvation bound. */
    std::set<std::uint64_t, std::less<std::uint64_t>,
             ArenaAllocator<std::uint64_t>>
        ready_age_;
    /** Consecutive starts that bypassed an older lower-tier op. */
    int bypass_streak_ = 0;
    std::map<std::uint64_t, ActiveOp, std::less<std::uint64_t>,
             ArenaAllocator<std::pair<const std::uint64_t, ActiveOp>>>
        active_;
    /** Aggregates over active_, maintained incrementally so the
     *  admission check is O(1) instead of rescanning the active set. */
    TimeNs active_transfer_sum_ = 0.0;
    /** Weight-scaled transfer-time sum (sum of transfer_i * w_i) for
     *  the weight-aware headroom check; equals active_transfer_sum_
     *  bit for bit when every weight is 1. */
    TimeNs active_weighted_sum_ = 0.0;
    std::multiset<TimeNs, std::less<TimeNs>, ArenaAllocator<TimeNs>>
        active_delays_;
    std::uint64_t next_exec_id_ = 1;
    std::uint64_t arrival_counter_ = 0;
    std::uint64_t completed_ = 0;

    /** Iteration-trace sink; null when disarmed. */
    Fnv1a* fingerprint_ = nullptr;

    /** Fault path state; see armFaults()/setLinkDown(). */
    bool faults_armed_ = false;
    RetryConfig retry_;
    RetryListener retry_listener_;
    FatalRetryListener fatal_retry_listener_;
    bool link_down_ = false;
    std::uint64_t retry_count_ = 0;
    Bytes lost_bytes_ = 0.0;

    std::map<int, EnforcedOrder> enforced_;

    PresenceListener presence_;
    StartListener start_listener_;
    FinishListener finish_listener_;
    /** Per-op span sink (attachTrace); null when tracing is off. */
    stats::TraceWriter* trace_ = nullptr;
    bool last_presence_ = false;
};

} // namespace themis::runtime

#endif // THEMIS_RUNTIME_DIMENSION_ENGINE_HPP
