/**
 * @file
 * CommRuntime: the public entry point of the communication simulator.
 *
 * Owns one DimensionEngine per topology dimension, a scheduler per
 * collective scope, and the statistics instrumentation (utilization
 * windows per the Fig 4 definition, per-dimension activity for Fig 9).
 * The workload layer — or a bench — issues CollectiveRequests and
 * runs the shared event queue; callbacks fire on completion.
 */

#ifndef THEMIS_RUNTIME_COMM_RUNTIME_HPP
#define THEMIS_RUNTIME_COMM_RUNTIME_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/hash.hpp"
#include "core/plan_cache.hpp"
#include "core/priority_policy.hpp"
#include "core/scheduler.hpp"
#include "runtime/collective_session.hpp"
#include "runtime/fault_driver.hpp"
#include "sim/fault_timeline.hpp"
#include "stats/activity_timeline.hpp"
#include "stats/telemetry/telemetry.hpp"
#include "stats/trace_writer.hpp"
#include "stats/utilization_tracker.hpp"
#include "topology/topology.hpp"

namespace themis::runtime {

/** How enforced per-dimension orders are derived (Sec 4.6.2). */
enum class OrderPlanner
{
    /**
     * Replay the collective through a private shadow simulation of
     * the same engines and record op start orders — exact for a
     * collective running alone.
     */
    ShadowSim,

    /**
     * The paper's fast pre-simulation: serial service per dimension
     * with the latency model ("does not need to consider detailed
     * network modeling"). Approximate but cheap.
     */
    FastSerial,
};

/**
 * Fault-aware adaptive re-planning knobs. When enabled (and a
 * FaultTimeline is armed), every capacity-changing event the
 * FaultDriver applies — degrade window edge, permanent straggler,
 * per-link outage edge — makes the runtime snapshot the per-dim
 * planning factors, derive a capacity-epoch fingerprint, and rebuild
 * its scope schedulers against the degraded bandwidths: newly issued
 * collectives plan for the fabric as it actually is, while in-flight
 * collectives finish under the plan they started with. Fault-free
 * runs (empty timeline, or enabled with no events) are bit-identical
 * to the non-adaptive engine.
 */
struct AdaptationConfig
{
    /** Master switch; off reproduces the static-plan engine. */
    bool enabled = false;

    /**
     * Minimum relative change of a dimension's planning factor
     * (|new - planned| / planned) before a re-plan fires. Filters
     * capacity wiggle that would churn plans for no makespan gain;
     * 0 re-plans on every capacity-changing event.
     */
    double replan_threshold = 0.05;
};

/** Full configuration of the communication runtime (Table 3 rows). */
struct RuntimeConfig
{
    /** Inter-dimension scheduling policy. */
    SchedulerKind scheduler = SchedulerKind::Themis;

    /** Themis tunables (ignored for the baseline scheduler). */
    ThemisConfig themis{};

    /** Intra-dimension ordering (paper: baseline uses FIFO). */
    IntraDimPolicy intra_policy = IntraDimPolicy::Scf;

    /** Default chunks per collective when the request says 0. */
    int default_chunks = 64;

    /** Parallel-admission tunables. */
    AdmissionConfig admission{};

    /**
     * Pre-simulate and enforce per-dimension chunk-op orders
     * (Sec 4.6.2). Identical results on the symmetric timing model;
     * required for correctness on real skewed systems.
     */
    bool enforce_consistent_order = false;

    /** Planner used when enforce_consistent_order is set. */
    OrderPlanner order_planner = OrderPlanner::ShadowSim;

    /**
     * Shared plan-memoization cache (core/plan_cache.hpp); nullptr
     * disables memoization. Not owned — the caller keeps it alive for
     * the runtime's lifetime and may share one instance across the
     * runtimes of a whole sweep (it is thread-safe). Results are
     * bit-identical with and without a cache; the only configuration
     * whose plans are history-dependent (Themis with
     * carry_load_across_collectives) bypasses it automatically.
     */
    PlanCache* plan_cache = nullptr;

    /**
     * Use the pre-PR O(queue) linear selection scan in the dimension
     * engines instead of the indexed ready-set. Identical results;
     * exists so benches can measure the optimization in one binary.
     */
    bool legacy_engine_scan = false;

    /**
     * Maps collective priority tiers (CollectiveRequest::priority_tier)
     * to wire-level flow classes. The default uniform policy collapses
     * every tier onto one unit-weight class, reproducing the
     * egalitarian pre-priority dataplane bit-for-bit; a tiered policy
     * gives urgent collectives ready-set precedence and a larger
     * weighted-GPS share on every shared channel.
     */
    PriorityPolicy priority{};

    /**
     * Drive the shared channels with the pre-priority egalitarian
     * equal-share arithmetic instead of weighted GPS. Requires the
     * uniform priority policy; results are bit-identical to the
     * weighted path with unit weights — exists so equivalence tests
     * and benches can compare both in one binary.
     */
    bool legacy_egalitarian_channel = false;

    /**
     * Run the engines' one-op-at-a-time admission check loop instead
     * of the batched ready-prefix pass. Identical results; exists so
     * tests and benches can compare both in one binary.
     */
    bool legacy_scalar_admission = false;

    /**
     * Use the pre-PR tier-blind admission headroom check (unweighted
     * transfer-time sum) instead of weighted service demand (see
     * AdmissionConfig::latency_headroom). Bit-identical under uniform
     * flow weights; exists so equivalence tests and benches can
     * compare both in one binary.
     */
    bool legacy_tier_blind_headroom = false;

    /**
     * Fault/heterogeneity scenario to apply (capacity degradations,
     * stragglers, link flaps with transfer failure + retry). Not
     * owned — the caller keeps the timeline alive for the runtime's
     * lifetime. nullptr (the default) and an *empty* timeline both
     * run the fault-free fast path bit-identically; arming alone
     * changes no timing. Incompatible with legacy_engine_scan.
     */
    const sim::FaultTimeline* faults = nullptr;

    /** Retry/backoff tunables for flapped transfers. */
    RetryConfig retry{};

    /** Fault-aware adaptive re-planning (needs `faults`). */
    AdaptationConfig adaptation{};

    /**
     * Telemetry sink (metrics registry + flight recorder + optional
     * trace). Not owned — the caller keeps it alive for the runtime's
     * lifetime, one instance per simulation thread (the registry is
     * not thread-safe). nullptr (the default) disables all publishing
     * at one branch per site; every publisher is a pure observer, so
     * telemetry-on runs are bit-identical to telemetry-off runs.
     */
    stats::telemetry::Telemetry* telemetry = nullptr;
};

/** Table 3 convenience constructors. */
RuntimeConfig baselineConfig();
RuntimeConfig themisFifoConfig();
RuntimeConfig themisScfConfig();

/** The communication simulator facade; see file comment. */
class CommRuntime
{
  public:
    /** Completion callback of one collective. */
    using Callback = std::function<void()>;

    /** Bookkeeping record of one issued collective. */
    struct Record
    {
        int id = 0;
        CollectiveType type = CollectiveType::AllReduce;
        Bytes size = 0.0;
        std::vector<ScopeDim> scope;
        TimeNs issued = 0.0;
        TimeNs completed = -1.0;

        /** Request's priority tag. */
        int priority_tier = 1;

        /** Flow class the priority policy assigned (carries the job). */
        FlowClass flow;

        /** Cluster job that issued the collective (0 = default). */
        int job = 0;

        bool done() const { return completed >= 0.0; }
        TimeNs duration() const { return completed - issued; }
    };

    /** Per-flow-class usage summary (see classReports()). */
    struct ClassReport
    {
        /** Flow class index (PriorityPolicy tier). */
        int tier = 0;

        /** GPS weight the policy assigns this class. */
        double weight = 1.0;

        /** Collectives issued / completed in this class. */
        int issued = 0;
        int completed = 0;

        /** Mean completion time of the finished collectives. */
        TimeNs mean_duration = 0.0;

        /** Bytes progressed by this class across all dimensions. */
        Bytes progressed = 0.0;

        /**
         * Class bandwidth utilization during communication-active
         * windows: class bytes / (total BW x active time).
         */
        double utilization = 0.0;
    };

    /** Per-job usage summary (see jobReports()). */
    struct JobReport
    {
        /** Cluster job index. */
        int job = 0;

        /** Collectives issued / completed by this job. */
        int issued = 0;
        int completed = 0;

        /** Mean completion time of the finished collectives. */
        TimeNs mean_duration = 0.0;

        /**
         * Bytes the job progressed across all dimensions (wire-level
         * accounting from the shared channels, so conservation can be
         * asserted per tenant, not just in aggregate).
         */
        Bytes progressed = 0.0;

        /**
         * Job share of machine bandwidth during communication-active
         * windows: job bytes / (total BW x active time).
         */
        double utilization = 0.0;

        /**
         * Bytes the job progressed during communication-active
         * windows (the utilization numerator). Kept separately so a
         * report captured at job departure can be re-normalized
         * against the final active time (utilizationOf()) instead of
         * freezing a mid-run utilization share.
         */
        Bytes window_bytes = 0.0;
    };

    /**
     * @param queue shared event queue (must outlive the runtime)
     * @param topo  platform topology (copied)
     * @param config scheduling/runtime configuration
     */
    CommRuntime(sim::EventQueue& queue, Topology topo,
                RuntimeConfig config = {});

    CommRuntime(const CommRuntime&) = delete;
    CommRuntime& operator=(const CommRuntime&) = delete;

    /**
     * Issue a collective at the current simulation time.
     * @return the collective's runtime id.
     */
    int issue(const CollectiveRequest& request, Callback on_done = {});

    /** Number of issued-but-unfinished collectives. */
    int outstanding() const { return outstanding_; }

    /** Records of all issued collectives, in issue order. */
    const std::vector<Record>& records() const { return records_; }

    /** Record by collective id. */
    const Record& record(int id) const;

    /** The simulated platform. */
    const Topology& topology() const { return topo_; }

    /** Per-dimension engine (stats/diagnostics). */
    DimensionEngine& engine(int global_dim);

    /** Utilization during comm-active windows (Fig 4 definition). */
    const stats::UtilizationTracker& utilization() const
    {
        return *utilization_;
    }

    /**
     * Per-flow-class usage over everything issued so far (one entry
     * per class the priority policy produced, ascending tier).
     * Utilization columns cover closed communication-active windows;
     * progressed bytes cover all time up to the last channel sync
     * (the call syncs every channel).
     */
    std::vector<ClassReport> classReports();

    /**
     * Per-job usage over everything issued so far (one entry per
     * *live* — not retired — job, ascending job index). Same window
     * semantics as classReports(). A single-workload runtime returns
     * one row (job 0 is live from construction). Entries carry their
     * job id; with retirement the list is not index-addressable.
     */
    std::vector<JobReport> jobReports();

    /**
     * Capture @p job's final usage report, then drop every piece of
     * its per-job accounting: its (job, tier) classes on every shared
     * channel, its utilization-window accounts, and its row in
     * jobReports(). This is what keeps a long-lived multi-tenant
     * runtime O(active jobs) instead of O(all-ever-seen) — call it
     * once the job's last collective has completed (asserts the job
     * has no transfers in flight).
     *
     * The retired classes' progressed/window bytes fold into per-tier
     * aggregates so classReports() tier rows remain conservation-
     * complete across the whole run. jobsObserved() still counts the
     * retired job; its Records stay in records() history.
     */
    JobReport retireJob(int job);

    /** Jobs currently live (issued at least once or job 0, not
     *  retired) — the accounting-size bound retireJob maintains. */
    std::size_t liveJobCount() const { return live_jobs_.size(); }

    /**
     * Number of distinct cluster jobs this runtime has ever seen
     * (max job index + 1; at least 1). Unlike records(), this count
     * survives iteration-epoch resets — the convergence runner uses
     * it to refuse single-loop replay on a runtime other jobs drive.
     */
    int jobsObserved() const { return max_job_seen_ + 1; }

    /**
     * The fault driver applying RuntimeConfig::faults, or nullptr on
     * a fault-free runtime. The convergence replayer uses it to find
     * quiescent phases of the timeline.
     */
    FaultDriver* faultDriver() { return fault_driver_.get(); }
    const FaultDriver* faultDriver() const
    {
        return fault_driver_.get();
    }

    /**
     * Times the adaptation layer re-planned (snapshotted degraded
     * bandwidths and rebuilt the scope schedulers). 0 on fault-free
     * or non-adaptive runs.
     */
    std::uint64_t replanCount() const { return replan_count_; }

    /**
     * Capacity-epoch fingerprint the adaptation layer currently plans
     * under: 0 on a clean fabric (all planning factors 1.0), else a
     * hash of the per-dim factors. Mixed into every PlanKey, so
     * degraded plans cache separately from clean ones.
     */
    std::uint64_t capacityFingerprint() const
    {
        return capacity_fingerprint_;
    }

    /**
     * Structured report of the first transfer that exhausted its
     * retry budget, or nullptr if none has (the corresponding
     * RetryExhaustedError is in flight when this is non-null —
     * callers typically read it from the catch site).
     */
    const FatalRetryReport* fatalRetry() const
    {
        return has_fatal_retry_ ? &fatal_retry_ : nullptr;
    }

    /** Per-dimension activity intervals (Fig 9). */
    stats::ActivityTimeline& activity() { return activity_; }

    /** The telemetry sink this runtime publishes into (may be null). */
    stats::telemetry::Telemetry* telemetry() const
    {
        return config_.telemetry;
    }

    /**
     * A replayed (not simulated) convergence round of duration @p d
     * passed: advance the fault driver's absolute base exactly as the
     * simulated path would have, and advance the telemetry/trace time
     * bases so the run timeline stays monotonic across the skip.
     */
    void noteReplayedEpoch(TimeNs d);

    /**
     * Snapshot per-dimension engine/channel observables into the
     * telemetry registry as gauges (`engine.dim<k>.*`). Idempotent;
     * no-op without a telemetry sink. finalizeStats() calls this, and
     * callers that bypass finalizeStats may call it directly before
     * serializing a report.
     */
    void publishTelemetry();

    /**
     * Stream every completed chunk operation into @p trace (one
     * timeline row per dimension; labels like "RS c3.s1 (2.0 MB)").
     * The writer must outlive the runtime.
     */
    void attachTrace(stats::TraceWriter& trace);

    /**
     * Finish statistics at the current simulation time (closes open
     * activity intervals). Call after the event queue drains.
     */
    void finalizeStats();

    /**
     * Everything one iteration epoch produced, measured as exact
     * per-epoch deltas (the epoch reset zeroes every accumulator, so
     * these values are bit-stable across identical iterations — no
     * large-accumulator rounding wobble).
     *
     * The fingerprint folds together the event trace (every chunk-op
     * start/finish with epoch-relative timestamps, per dimension),
     * the plan-cache keys and issue times of every collective, the
     * per-dimension and per-class progressed-byte totals, the
     * utilization window time, and the engines' anti-starvation
     * streaks — two consecutive epochs with identical fingerprints
     * (and identical stats) are the steady-state criterion the
     * convergence replay engine uses.
     */
    struct EpochStats
    {
        std::uint64_t fingerprint = 0;

        /** Simulated epoch duration (epoch clock starts at zero). */
        TimeNs duration = 0.0;

        /** Communication-active window time within the epoch. */
        TimeNs active_time = 0.0;

        /** Collectives issued during the epoch. */
        int collectives = 0;

        /** Chunk ops completed across all engines. */
        std::uint64_t ops = 0;

        /**
         * False when the scheduler carries load state across
         * collectives (history-dependent plans): such epochs must
         * not be replayed analytically even if fingerprints repeat,
         * because the scheduler's hidden state is not fingerprinted.
         */
        bool replay_safe = true;

        /** Bytes progressed per dimension during the epoch. */
        std::vector<Bytes> dim_bytes;

        /** Bytes progressed per flow class (summed over dims). */
        std::vector<Bytes> class_bytes;

        /** Bit-exact equality over every field (doubles compared by
         *  bit pattern). */
        bool identicalTo(const EpochStats& o) const;
    };

    /**
     * Open an iteration epoch: requires a fully quiescent runtime (no
     * outstanding collectives, drained event queue). Rebases the
     * event-queue clock and every channel clock to zero, zeroes the
     * per-epoch statistics accumulators (utilization windows,
     * progressed bytes, activity timeline), rewinds the session pool
     * so this epoch reuses the previous epoch's session objects, and
     * arms per-op fingerprinting.
     *
     * Epoch mode hands stats ownership to the caller: utilization(),
     * classReports() and records() then describe the current epoch
     * only — records (and their ids) restart at zero each epoch along
     * with the clock, so arbitrarily long runs hold one iteration's
     * worth of history.
     */
    void beginIterationEpoch();

    /** Close the epoch and return its stats; see EpochStats. */
    EpochStats finishIterationEpoch();

    /** True between beginIterationEpoch() and finishIterationEpoch(). */
    bool inIterationEpoch() const { return epoch_active_; }

    /**
     * Session objects ever constructed (the pool's high-water mark:
     * flat across steady-state epochs, proving session reuse).
     */
    std::size_t sessionSlotCount() const { return sessions_.size(); }

    /** The event queue driving this runtime. */
    sim::EventQueue& queue() { return queue_ref_; }

    /** The latency model for @p scope (shared with schedulers). */
    const LatencyModel& modelForScope(const std::vector<ScopeDim>& scope);

  private:
    struct ScopeState
    {
        std::unique_ptr<LatencyModel> model;
        std::unique_ptr<Scheduler> scheduler;
        std::unique_ptr<ConsistencyPlanner> planner;
    };

    ScopeState& scopeState(const std::vector<ScopeDim>& scope);
    std::vector<ScopeDim>
    normalizeScope(const std::vector<ScopeDim>& scope) const;
    void onCollectiveDone(int id);

    /** FaultDriver capacity hook: re-plan when dim @p dim's planning
     *  factor drifted past the threshold. */
    void onCapacityChange(int dim);
    /** Snapshot planning factors, refresh the capacity fingerprint,
     *  and retire every scope so the next issue re-plans. */
    void replan();

    /** The plan cache, or nullptr when this config cannot use one. */
    PlanCache* usableCache() const;
    /**
     * Derive (or fetch, when @p cache is non-null) the chunk
     * schedules of one request. @p key is the request's plan-cache
     * key (ignored when @p cache is null).
     */
    CollectiveSession::SchedulePtr
    planFor(ScopeState& state, PlanCache* cache, const PlanKey& key,
            CollectiveType type, Bytes size, int chunks,
            const FlowClass& flow);
    /** Derive (or fetch) enforced per-dimension orders (Sec 4.6.2). */
    PlanCache::OrderPtr
    ordersFor(ScopeState& state, PlanCache* cache, const PlanKey& key,
              const std::vector<ChunkSchedule>& schedules,
              const std::vector<ScopeDim>& scope,
              const FlowClass& flow);

    /**
     * Replay @p schedules through a private shadow simulation and
     * return the per-local-dimension op start orders (Sec 4.6.2).
     */
    std::vector<std::vector<OpKey>>
    shadowPlanOrders(CollectiveType type,
                     const std::vector<ChunkSchedule>& schedules,
                     const std::vector<ScopeDim>& scope,
                     const LatencyModel& model, const FlowClass& flow);

    sim::EventQueue& queue_ref_;
    Topology topo_;
    RuntimeConfig config_;

    std::vector<std::unique_ptr<DimensionEngine>> engines_;
    std::map<std::vector<ScopeDim>, ScopeState> scopes_;
    /**
     * Session pool: slots up to sessions_live_ belong to the current
     * epoch (or to the whole run when epochs are unused); an epoch
     * reset rewinds the watermark so finished sessions are recycled
     * in place instead of re-heap-allocated per collective.
     */
    std::vector<std::unique_ptr<CollectiveSession>> sessions_;
    std::size_t sessions_live_ = 0;
    /** Scratch engine list reused across issue() calls. */
    std::vector<DimensionEngine*> engine_scratch_;
    std::vector<Record> records_;
    std::map<int, Callback> callbacks_;

    int outstanding_ = 0;
    stats::ActivityTimeline activity_;
    std::unique_ptr<stats::UtilizationTracker> utilization_;
    std::unique_ptr<FaultDriver> fault_driver_;

    // Telemetry (all pure observers; null when publishing is off).
    stats::telemetry::Telemetry* telem_ = nullptr;
    stats::TraceWriter* trace_ = nullptr;
    /** Hot-path instrument handles, resolved once in the ctor. */
    stats::telemetry::Counter* m_issued_ = nullptr;
    stats::telemetry::Counter* m_completed_ = nullptr;
    stats::telemetry::Histogram* m_collective_ns_ = nullptr;
    stats::telemetry::Counter* m_epochs_ = nullptr;
    stats::telemetry::Histogram* m_epoch_ns_ = nullptr;
    stats::telemetry::Counter* m_chunk_ops_ = nullptr;
    stats::telemetry::Counter* m_replans_ = nullptr;
    stats::telemetry::Counter* m_retries_ = nullptr;
    stats::telemetry::Histogram* m_backoff_ns_ = nullptr;
    stats::telemetry::Histogram* m_lost_bytes_ = nullptr;
    stats::telemetry::Counter* m_fatal_ = nullptr;
    stats::telemetry::Counter* m_replayed_ = nullptr;

    // Fault-adaptation state (see AdaptationConfig).
    /** Per-dim factors the current plans were derived against. */
    std::vector<double> planned_factors_;
    std::uint64_t capacity_fingerprint_ = 0;
    std::uint64_t replan_count_ = 0;
    /**
     * Scope graveyard: states retired by replan() while collectives
     * were in flight. Sessions hold raw pointers into their scope's
     * LatencyModel, so a retired state must outlive every collective
     * issued under it; drained once the fabric is quiescent.
     */
    std::vector<ScopeState> retired_scopes_;

    /** First retry-budget exhaustion, kept for post-mortem display. */
    FatalRetryReport fatal_retry_{};
    bool has_fatal_retry_ = false;

    // Iteration-epoch state.
    bool epoch_active_ = false;
    Fnv1a epoch_hash_;
    std::vector<std::uint64_t> epoch_completed_base_;

    /** Largest job index ever issued (persists across epochs). */
    int max_job_seen_ = 0;

    /**
     * Jobs with live accounting: seeded with job 0 (the default job
     * of single-workload runtimes), grown by issue(), shrunk by
     * retireJob(). Bounded by concurrent tenancy, not churn.
     */
    std::set<int> live_jobs_{0};

    /**
     * Channel-accounting totals of retired jobs, folded per tier at
     * retirement so classReports() stays conservation-complete after
     * the per-job maps forget a tenant. Fixed-size — this is the O(1)
     * residue of unbounded job churn.
     */
    struct RetiredTierAcct
    {
        Bytes progressed = 0.0;
        Bytes window_bytes = 0.0;
    };
    std::array<RetiredTierAcct, kNumPriorityTiers> retired_tiers_{};
};

/**
 * Sanity cap on cluster job indices per runtime. Jobs stride the
 * shared channels' per-class accounting space (accountingClass()),
 * but that accounting is map-based and stays O(active jobs) when the
 * caller retires departed tenants (retireJob()), so the cap only
 * rejects wild indices — churning many thousands of short jobs
 * through one runtime is a supported scenario.
 */
constexpr int kMaxJobsPerRuntime = 65536;

} // namespace themis::runtime

#endif // THEMIS_RUNTIME_COMM_RUNTIME_HPP
