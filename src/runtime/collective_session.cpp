#include "runtime/collective_session.hpp"

#include "common/error.hpp"

namespace themis::runtime {

CollectiveSession::CollectiveSession(int id, CollectiveType type,
                                     std::vector<ChunkSchedule> schedules,
                                     std::vector<DimensionEngine*> engines,
                                     const LatencyModel& model,
                                     sim::EventQueue& queue,
                                     CompletionCallback on_done,
                                     FlowClass flow,
                                     PlanCache* step_cache)
    : CollectiveSession(
          id, type,
          std::make_shared<const std::vector<ChunkSchedule>>(
              std::move(schedules)),
          std::move(engines), model, queue, std::move(on_done), flow,
          step_cache)
{
}

CollectiveSession::CollectiveSession(int id, CollectiveType type,
                                     SchedulePtr schedules,
                                     std::vector<DimensionEngine*> engines,
                                     const LatencyModel& model,
                                     sim::EventQueue& queue,
                                     CompletionCallback on_done,
                                     FlowClass flow,
                                     PlanCache* step_cache)
    : id_(id), type_(type), schedules_(std::move(schedules)),
      engines_(std::move(engines)), model_(&model), queue_(queue),
      on_done_(std::move(on_done)), flow_(flow),
      step_cache_(step_cache),
      on_op_complete_(
          [this](const ChunkOp& op) { onOpComplete(op); })
{
    validate();
}

void
CollectiveSession::reset(int id, CollectiveType type,
                         SchedulePtr schedules,
                         const std::vector<DimensionEngine*>& engines,
                         const LatencyModel& model,
                         CompletionCallback on_done, FlowClass flow,
                         PlanCache* step_cache)
{
    THEMIS_ASSERT(!started_ || done(),
                  "recycling a session whose collective is in flight");
    id_ = id;
    type_ = type;
    schedules_ = std::move(schedules);
    engines_ = engines; // copy into the retained capacity
    model_ = &model;
    on_done_ = std::move(on_done);
    flow_ = flow;
    step_cache_ = step_cache;
    // on_op_complete_ captures `this`, which is stable — reuse it.
    completed_chunks_ = 0;
    start_time_ = 0.0;
    end_time_ = 0.0;
    started_ = false;
    validate();
}

void
CollectiveSession::validate() const
{
    THEMIS_ASSERT(schedules_ != nullptr, "null schedule plan");
    THEMIS_ASSERT(!schedules_->empty(), "collective with no chunks");
    THEMIS_ASSERT(!engines_.empty(), "collective with no dimensions");
    THEMIS_ASSERT(model_->numDims() ==
                      static_cast<int>(engines_.size()),
                  "model/engine rank mismatch");
    for (auto* e : engines_)
        THEMIS_ASSERT(e != nullptr, "null dimension engine");
    for (const auto& sched : *schedules_) {
        THEMIS_ASSERT(!sched.stages.empty(), "chunk with no stages");
        for (const auto& st : sched.stages) {
            THEMIS_ASSERT(st.dim >= 0 &&
                              st.dim < static_cast<int>(engines_.size()),
                          "stage references local dim " << st.dim
                              << " outside scope");
        }
    }
}

void
CollectiveSession::start()
{
    THEMIS_ASSERT(!started_, "session started twice");
    started_ = true;
    start_time_ = queue_.now();
    for (std::size_t i = 0; i < schedules_->size(); ++i)
        submitStage(i, 0, (*schedules_)[i].size);
}

void
CollectiveSession::submitStage(std::size_t chunk_idx, int stage_index,
                               Bytes entering)
{
    const ChunkSchedule& sched = (*schedules_)[chunk_idx];
    const StageAssignment& stage =
        sched.stages[static_cast<std::size_t>(stage_index)];
    DimensionEngine* engine =
        engines_[static_cast<std::size_t>(stage.dim)];
    OpTag tag{id_, sched.chunk_id, stage_index};
    engine->enqueue(makeChunkOp(
        tag, stage.phase, stage.dim, engine->globalDim(), entering,
        model_->dim(stage.dim), on_op_complete_, flow_, step_cache_,
        model_->dimFingerprint(stage.dim)));
}

void
CollectiveSession::onOpComplete(const ChunkOp& op)
{
    // Find the chunk (chunk ids are dense indexes per session).
    const auto chunk_idx = static_cast<std::size_t>(op.tag.chunk_id);
    THEMIS_ASSERT(chunk_idx < schedules_->size(), "unknown chunk id");
    const ChunkSchedule& sched = (*schedules_)[chunk_idx];
    const int next = op.tag.stage_index + 1;
    const auto& stage =
        sched.stages[static_cast<std::size_t>(op.tag.stage_index)];
    const Bytes after = sizeAfterPhase(stage.phase, op.entering,
                                       model_->dim(stage.dim).size);
    if (next < static_cast<int>(sched.stages.size())) {
        submitStage(chunk_idx, next, after);
        return;
    }
    ++completed_chunks_;
    if (done()) {
        end_time_ = queue_.now();
        if (on_done_)
            on_done_(*this);
    }
}

} // namespace themis::runtime
