/**
 * @file
 * Applies a FaultTimeline to the live runtime.
 *
 * The driver owns the mapping from timeline events (absolute run
 * time) to simulator actions: stepping a SharedChannel's capacity
 * (degrade/straggler edges) and flapping a DimensionEngine's link
 * down/up. Two pieces of machinery make this correct inside the
 * existing runtime without perturbing fault-free runs:
 *
 *  - *Lazy application.* A queue event scheduled past the workload's
 *    completion would stall or artificially extend queue.run(), so
 *    the driver only keeps an event armed on the queue while the
 *    runtime has outstanding collectives (the same windows
 *    UtilizationTracker measures). When a window opens, every event
 *    whose time has passed during the idle gap is applied on the
 *    spot — observationally equivalent, because capacity only
 *    matters while transfers exist and a flap window that ended
 *    while the fabric was idle failed nothing.
 *
 *  - *Epoch rebasing.* Iteration epochs rebase the event queue to
 *    zero; the driver accumulates those rebases into base_, so
 *    timeline times stay absolute across a whole convergence run.
 *    Replayed (analytically skipped) iterations advance base_ by the
 *    same repeated addition the simulated path would, keeping the
 *    arithmetic bit-identical.
 *
 * Overlapping flaps on one dimension are depth-counted: the link is
 * down while any flap window covers now, and the engine sees exactly
 * one down/up transition pair per covered stretch.
 */

#ifndef THEMIS_RUNTIME_FAULT_DRIVER_HPP
#define THEMIS_RUNTIME_FAULT_DRIVER_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_timeline.hpp"

namespace themis::stats {
class UtilizationTracker;
namespace telemetry {
struct Telemetry;
}
} // namespace themis::stats

namespace themis::runtime {

class DimensionEngine;

/** Drives one FaultTimeline against one CommRuntime's engines. */
class FaultDriver
{
  public:
    /**
     * Fired after an applied event changed dimension @p dim's
     * effective capacity (degrade edge, straggler, per-link edge; not
     * whole-dim flaps, which hold the engine rather than rescale it).
     * The runtime's adaptation layer hooks this to re-plan.
     */
    using CapacityListener = std::function<void(int dim)>;

    /**
     * @param queue    the runtime's event queue
     * @param timeline schedule to apply (absolute times; must outlive
     *                 the driver)
     * @param engines  one engine per global dimension, fault-armed
     * @param tracker  fault-counter sink (may be null)
     */
    FaultDriver(sim::EventQueue& queue,
                const sim::FaultTimeline& timeline,
                std::vector<DimensionEngine*> engines,
                stats::UtilizationTracker* tracker);

    FaultDriver(const FaultDriver&) = delete;
    FaultDriver& operator=(const FaultDriver&) = delete;

    /**
     * A communication-active window opens at queue time @p now:
     * catch up on events whose absolute time has passed, then arm
     * the next future event on the queue.
     */
    void onWindowStart(TimeNs now);

    /** The window closed; disarm the pending event (if any). */
    void onWindowEnd(TimeNs now);

    /**
     * An iteration epoch is about to rebase the queue from @p elapsed
     * to zero; fold the elapsed time into the absolute base. Must be
     * called with no event armed (windows are closed at epoch edges).
     */
    void onEpochRebase(TimeNs elapsed);

    /**
     * A replayed (not simulated) iteration of duration @p d passed;
     * advance the base exactly as onEpochRebase would have.
     */
    void skipReplayedEpoch(TimeNs d);

    /** Observe capacity-changing events (fault adaptation hook). */
    void setCapacityListener(CapacityListener listener);

    /**
     * Publish applied fault events into @p telemetry (counter, flight
     * recorder, trace instants). Pure observer — never alters what
     * apply() does — so arming telemetry keeps runs bit-identical.
     */
    void setTelemetry(stats::telemetry::Telemetry* telemetry);

    /**
     * The factor by which dim @p dim's *planning* bandwidth currently
     * differs from clean: straggler x active degrades x the surviving
     * links' share under per-link outages (clamped to at least one
     * link — a full outage holds the engine instead of zeroing the
     * model). 1.0 on a clean dimension. Matches the composition
     * refreshCapacity applies to the live channel, so plans made
     * against a model scaled by this factor track actual capacity.
     */
    double planningFactor(int dim) const;

    /** Absolute run time of the current epoch's t=0. */
    TimeNs base() const { return base_; }

    /** The timeline being applied. */
    const sim::FaultTimeline& timeline() const { return timeline_; }

    /** Events applied so far. */
    std::size_t appliedCount() const { return next_; }

  private:
    /** Apply every event with at <= @p abs_now. */
    void catchUp(TimeNs abs_now);
    /** Arm the next unapplied event on the queue (window open). */
    void armNext();
    /** Apply one event to the engines/channels at queue time now. */
    void apply(const sim::FaultEvent& e);
    /** Recompute and set dim @p dim's effective capacity. */
    void refreshCapacity(int dim);

    sim::EventQueue& queue_;
    const sim::FaultTimeline& timeline_;
    std::vector<DimensionEngine*> engines_;
    stats::UtilizationTracker* tracker_;

    /** Sync the engine's hold state to flap depth + link outages. */
    void syncLinkState(int dim);
    /** Per-link capacity share of @p dim (1.0 without link faults). */
    double linkShare(int dim) const;

    /** Per-dimension multiplier state. */
    struct DimState
    {
        double straggler = 1.0;
        /** Active degrade windows: (pair id, factor). */
        std::vector<std::pair<std::uint64_t, double>> degrades;
        int flap_depth = 0;
        /** Overlap depth per link index (sized on first link event). */
        std::vector<int> link_depth;
        /** Links currently down (distinct indices with depth > 0). */
        int links_down = 0;
    };
    std::vector<Bandwidth> base_bw_;
    std::vector<DimState> dims_;

    std::size_t next_ = 0; ///< cursor into timeline_.events()
    TimeNs base_ = 0.0;    ///< absolute time of queue time zero
    sim::EventQueue::EventId armed_ = 0;
    bool window_open_ = false;
    CapacityListener capacity_listener_;
    stats::telemetry::Telemetry* telemetry_ = nullptr;
};

} // namespace themis::runtime

#endif // THEMIS_RUNTIME_FAULT_DRIVER_HPP
