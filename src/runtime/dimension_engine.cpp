#include "runtime/dimension_engine.hpp"

#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "stats/trace_writer.hpp"

namespace themis::runtime {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/** Append a non-negative int's digits at @p p; returns one past the
 *  last digit. snprintf replacement for the per-chunk-op trace label
 *  (the hottest telemetry path). */
char*
appendInt(char* p, int v)
{
    if (v >= 10)
        p = appendInt(p, v / 10);
    *p++ = static_cast<char>('0' + v % 10);
    return p;
}

std::pair<int, int>
parkKey(const OpKey& key)
{
    return {key.chunk_id, key.stage_index};
}

std::pair<int, int>
parkKey(const OpTag& tag)
{
    return {tag.chunk_id, tag.stage_index};
}

} // namespace

DimensionEngine::DimensionEngine(sim::EventQueue& queue,
                                 DimensionConfig config, int global_dim,
                                 IntraDimPolicy policy,
                                 AdmissionConfig admission,
                                 bool legacy_scan,
                                 sim::ChannelFairness fairness,
                                 bool scalar_admission,
                                 bool tier_blind_headroom)
    : queue_ref_(queue), config_(config), global_dim_(global_dim),
      policy_(policy), admission_(admission), legacy_scan_(legacy_scan),
      scalar_admission_(scalar_admission),
      tier_blind_headroom_(tier_blind_headroom),
      channel_(queue, config.bandwidth(), fairness),
      pending_(0, std::hash<std::uint64_t>{},
               std::equal_to<std::uint64_t>{},
               ArenaAllocator<std::pair<const std::uint64_t,
                                        PendingOp>>(&arena_)),
      ready_(ReadyCompare{policy}, ArenaAllocator<ReadyKey>(&arena_)),
      ready_age_(std::less<std::uint64_t>{},
                 ArenaAllocator<std::uint64_t>(&arena_)),
      active_(std::less<std::uint64_t>{},
              ArenaAllocator<std::pair<const std::uint64_t, ActiveOp>>(
                  &arena_)),
      active_delays_(std::less<TimeNs>{},
                     ArenaAllocator<TimeNs>(&arena_))
{
    config_.validate();
    THEMIS_ASSERT(admission_.max_parallel_ops >= 1,
                  "max_parallel_ops must be >= 1");
    THEMIS_ASSERT(admission_.latency_headroom > 0.0,
                  "latency_headroom must be positive");
    THEMIS_ASSERT(admission_.max_priority_bypass >= 1,
                  "max_priority_bypass must be >= 1");
}

void
DimensionEngine::beginIterationEpoch()
{
    THEMIS_ASSERT(queuedCount() == 0 && active_.empty(),
                  "iteration epoch reset with ops in flight on dim "
                      << global_dim_);
    channel_.epochReset();
}

void
DimensionEngine::readyInsert(const PendingOp& p)
{
    ready_.insert(readyKeyOf(p));
    ready_age_.insert(p.arrival_seq);
}

void
DimensionEngine::readyErase(const PendingOp& p)
{
    ready_.erase(readyKeyOf(p));
    ready_age_.erase(p.arrival_seq);
}

void
DimensionEngine::setEnforcedOrder(int collective_id,
                                  std::vector<OpKey> order)
{
    if (legacy_scan_) {
        enforced_[collective_id] = EnforcedOrder{std::move(order), 0, {}};
        // Installing an order can change which queued op is eligible
        // (normally none are queued yet — orders are installed before
        // the session starts — but a replacement mid-flight must not
        // leave a newly eligible op stranded).
        tryStartLegacy();
        return;
    }
    // Replacing an existing order first releases its parked ops back
    // into the ready set so none are stranded; the re-scan below
    // re-parks them under the new order.
    auto old = enforced_.find(collective_id);
    if (old != enforced_.end()) {
        for (const auto& [key, seq] : old->second.parked) {
            auto pit = pending_.find(seq);
            THEMIS_ASSERT(pit != pending_.end(),
                          "parked op missing from pending store");
            readyInsert(pit->second);
        }
        enforced_.erase(old);
    }
    EnforcedOrder& eo = enforced_[collective_id];
    eo.order = std::move(order);
    // Ops of this collective may already be pending (normally the
    // order is installed before the session starts, so this loop sees
    // an empty set): park every one that is not the expected head.
    for (const auto& [seq, p] : pending_) {
        if (p.op.tag.collective_id != collective_id)
            continue;
        if (p.op.attempt > 0)
            continue; // retry waiting out a flap; cursor passed it
        THEMIS_ASSERT(eo.next < eo.order.size(),
                      "enforced order shorter than pending op count");
        if (parkKey(p.op.tag) != parkKey(eo.order[eo.next])) {
            readyErase(p);
            eo.parked.emplace(parkKey(p.op.tag), seq);
        }
    }
    // See the legacy branch: a replacement may have made an op
    // startable (released from the old order's parking).
    tryStart();
}

void
DimensionEngine::clearEnforcedOrder(int collective_id)
{
    auto it = enforced_.find(collective_id);
    if (it == enforced_.end())
        return;
    for (const auto& [key, seq] : it->second.parked) {
        auto pit = pending_.find(seq);
        THEMIS_ASSERT(pit != pending_.end(),
                      "parked op missing from pending store");
        readyInsert(pit->second);
    }
    const bool unparked = !it->second.parked.empty();
    enforced_.erase(it);
    if (unparked)
        tryStart();
}

void
DimensionEngine::setPresenceListener(PresenceListener listener)
{
    presence_ = std::move(listener);
}

void
DimensionEngine::setStartListener(StartListener listener)
{
    start_listener_ = std::move(listener);
}

void
DimensionEngine::setFinishListener(FinishListener listener)
{
    finish_listener_ = std::move(listener);
}

void
DimensionEngine::attachTrace(stats::TraceWriter* trace)
{
    trace_ = trace;
}

void
DimensionEngine::armFaults(const RetryConfig& retry)
{
    THEMIS_ASSERT(!legacy_scan_,
                  "fault injection requires the indexed engine path "
                  "(legacy_scan is a measurement baseline)");
    if (!(retry.backoff_base_ns > 0.0))
        THEMIS_FATAL("retry backoff_base_ns must be positive, got "
                     << retry.backoff_base_ns);
    if (retry.backoff_cap_ns < retry.backoff_base_ns)
        THEMIS_FATAL("retry backoff_cap_ns "
                     << retry.backoff_cap_ns << " is below base "
                     << retry.backoff_base_ns);
    if (retry.max_attempts < 1)
        THEMIS_FATAL("retry max_attempts must be >= 1, got "
                     << retry.max_attempts);
    if (retry.jitter < 0.0 || retry.jitter >= 1.0)
        THEMIS_FATAL("retry jitter must be in [0, 1), got "
                     << retry.jitter);
    faults_armed_ = true;
    retry_ = retry;
}

void
DimensionEngine::setRetryListener(RetryListener listener)
{
    retry_listener_ = std::move(listener);
}

void
DimensionEngine::setFatalRetryListener(FatalRetryListener listener)
{
    fatal_retry_listener_ = std::move(listener);
}

void
DimensionEngine::failInFlight()
{
    THEMIS_ASSERT(faults_armed_,
                  "failInFlight on an engine without armFaults()");
    if (link_down_)
        return; // full outage already failed (and holds) everything
    channel_.failActive();
    // Not a hold: ready ops may start immediately on the surviving
    // links' capacity (the driver has already rescaled the channel).
    tryStart();
}

void
DimensionEngine::setLinkDown(bool down)
{
    THEMIS_ASSERT(faults_armed_,
                  "setLinkDown on an engine without armFaults()");
    if (down == link_down_)
        return; // overlapping flaps are depth-counted by the driver
    link_down_ = down;
    if (down) {
        // Every transfer in flight fails; each failure handler runs
        // failOp(), which schedules the op's backoff requeue. Ops in
        // their latency phase are not on the channel — they fail at
        // the latency timer's do_transfer when it sees the link down.
        channel_.failActive();
    } else {
        tryStart();
    }
}

void
DimensionEngine::notifyPresence()
{
    const bool present = queuedCount() > 0 || !active_.empty();
    if (present == last_presence_)
        return;
    last_presence_ = present;
    if (presence_)
        presence_(global_dim_, present, queue_ref_.now());
}

void
DimensionEngine::enqueue(ChunkOp op)
{
    THEMIS_ASSERT(op.global_dim == global_dim_,
                  "op for dim " << op.global_dim << " enqueued on dim "
                                << global_dim_);
    const std::uint64_t seq = arrival_counter_++;
    if (legacy_scan_) {
        queue_.push_back(PendingOp{std::move(op), seq});
        notifyPresence();
        tryStartLegacy();
        return;
    }
    auto eit = enforced_.find(op.tag.collective_id);
    if (eit != enforced_.end()) {
        EnforcedOrder& eo = eit->second;
        THEMIS_ASSERT(eo.next < eo.order.size(),
                      "enforced order exhausted but ops keep arriving");
        if (parkKey(op.tag) != parkKey(eo.order[eo.next])) {
            // Not the expected head: park until the cursor reaches it.
            // Nothing became startable, so no tryStart().
            eo.parked.emplace(parkKey(op.tag), seq);
            pending_.emplace(seq, PendingOp{std::move(op), seq});
            notifyPresence();
            return;
        }
    }
    auto [pit, inserted] =
        pending_.emplace(seq, PendingOp{std::move(op), seq});
    THEMIS_ASSERT(inserted, "duplicate arrival sequence");
    readyInsert(pit->second);
    notifyPresence();
    tryStart();
}

bool
DimensionEngine::admissionAllows(const ChunkOp& candidate) const
{
    if (active_.empty())
        return true;
    if (static_cast<int>(active_.size()) >= admission_.max_parallel_ops)
        return false;
    const TimeNs max_delay = *active_delays_.rbegin();
    if (tier_blind_headroom_) {
        // Pre-PR baseline: unweighted service demand (the candidate's
        // weight is irrelevant).
        return active_transfer_sum_ <
               admission_.latency_headroom * max_delay;
    }
    // Weighted service demand as the candidate sees it under GPS:
    // admit while sum_i(t_i * w_i) < headroom * max_delay * w_cand.
    // With uniform weights both sides multiply by 1.0 — bit-identical
    // to the tier-blind check.
    return active_weighted_sum_ <
           admission_.latency_headroom * max_delay *
               candidate.flow.weight;
}

std::size_t
DimensionEngine::selectNext() const
{
    if (queue_.empty())
        return kNone;

    // Candidates: ops of collectives without an enforced order, plus —
    // for each enforced collective — exactly its next expected op.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const auto& op = queue_[i].op;
        const auto it = enforced_.find(op.tag.collective_id);
        if (it == enforced_.end()) {
            candidates.push_back(i);
            continue;
        }
        const auto& eo = it->second;
        THEMIS_ASSERT(eo.next < eo.order.size(),
                      "enforced order exhausted but ops keep arriving");
        const OpKey& expected = eo.order[eo.next];
        if (op.tag.chunk_id == expected.chunk_id &&
            op.tag.stage_index == expected.stage_index) {
            candidates.push_back(i);
        }
    }
    if (candidates.empty())
        return kNone; // enforced head(s) not yet arrived: wait

    std::vector<QueuedOpView> views;
    views.reserve(candidates.size());
    for (std::size_t idx : candidates) {
        const auto& p = queue_[idx];
        views.push_back(QueuedOpView{
            p.arrival_seq, p.op.transfer_time + p.op.fixed_delay,
            p.op.tag.chunk_id, p.op.flow.tier});
    }
    return candidates[pickNextOp(policy_, views)];
}

void
DimensionEngine::promoteExpected(EnforcedOrder& eo)
{
    if (eo.next >= eo.order.size())
        return;
    auto it = eo.parked.find(parkKey(eo.order[eo.next]));
    if (it == eo.parked.end())
        return; // expected op has not arrived yet
    auto pit = pending_.find(it->second);
    THEMIS_ASSERT(pit != pending_.end(),
                  "parked op missing from pending store");
    readyInsert(pit->second);
    eo.parked.erase(it);
}

void
DimensionEngine::tryStart()
{
    if (link_down_)
        return; // flapped: holds until the driver raises the link
    // The batched refill handles the overwhelmingly common shape —
    // one flow tier, no enforced orders, no anti-starvation debt —
    // where selection order is exactly ready_ iteration order and no
    // start can reshape the candidate set. Everything else takes the
    // general one-op-at-a-time path. The two paths admit identical
    // prefixes by construction (the batch evaluates the same
    // check against the same running aggregates).
    if (scalar_admission_) {
        tryStartScalar();
        return;
    }
    if (ready_.empty())
        return;
    if (!enforced_.empty() ||
        bypass_streak_ >= admission_.max_priority_bypass ||
        ready_.begin()->tier != std::prev(ready_.end())->tier) {
        tryStartScalar();
        return;
    }
    tryStartBatch();
}

void
DimensionEngine::tryStartBatch()
{
    // One streamed pass over the policy-ordered ready prefix. The
    // admission aggregates (running transfer-time sum, running max
    // delay, running active count) are hoisted into locals, so every
    // candidate costs exactly one branch-light admit evaluation —
    // arithmetic on register-resident doubles, no per-start re-query
    // of the active multiset or map — and the pass stops at the
    // first rejection, which closes the refill (nothing admitted
    // later could change the verdict: the aggregates only grow).
    // Admit rule == scalar path: the first op of an idle engine is
    // always admitted; otherwise admit while the active count is
    // under the hard cap and the (weighted) service demand is below
    // headroom x largest delay (x the candidate's weight on the
    // weight-aware path; see AdmissionConfig::latency_headroom).
    double sum =
        tier_blind_headroom_ ? active_transfer_sum_
                             : active_weighted_sum_;
    double max_delay =
        active_delays_.empty() ? 0.0 : *active_delays_.rbegin();
    std::size_t active_n = active_.size();
    const double headroom = admission_.latency_headroom;
    const auto maxpar =
        static_cast<std::size_t>(admission_.max_parallel_ops);
    bool started = false;
    while (!ready_.empty()) {
        const std::uint64_t seq = ready_.begin()->arrival_seq;
        const auto pit = pending_.find(seq);
        THEMIS_ASSERT(pit != pending_.end(),
                      "ready op missing from pending store");
        const double w = pit->second.op.flow.weight;
        const double budget = tier_blind_headroom_
                                  ? headroom * max_delay
                                  : headroom * max_delay * w;
        const bool admit =
            (active_n == 0) |
            ((active_n < maxpar) & (sum < budget));
        if (!admit)
            break;
        sum += tier_blind_headroom_
                   ? pit->second.op.transfer_time
                   : pit->second.op.transfer_time * w;
        max_delay = pit->second.op.fixed_delay > max_delay
                        ? pit->second.op.fixed_delay
                        : max_delay;
        ++active_n;
        ready_.erase(ready_.begin());
        ready_age_.erase(seq);
        ChunkOp op = std::move(pit->second.op);
        pending_.erase(pit);
        startOp(std::move(op));
        started = true;
    }
    // Same-tier starts can never bypass an older lower-tier op, so
    // the streak ends at zero exactly as the scalar path's per-start
    // updates would leave it.
    if (started)
        bypass_streak_ = 0;
}

void
DimensionEngine::tryStartScalar()
{
    while (!ready_.empty()) {
        // Tier-then-policy head by default; the oldest waiting op
        // once the bypass streak hits the anti-starvation bound.
        std::uint64_t chosen_seq = ready_.begin()->arrival_seq;
        const std::uint64_t oldest_seq = *ready_age_.begin();
        if (bypass_streak_ >= admission_.max_priority_bypass)
            chosen_seq = oldest_seq;
        auto pit = pending_.find(chosen_seq);
        THEMIS_ASSERT(pit != pending_.end(),
                      "ready op missing from pending store");
        if (!admissionAllows(pit->second.op))
            return;
        if (chosen_seq == oldest_seq) {
            bypass_streak_ = 0;
        } else {
            auto oldest_pit = pending_.find(oldest_seq);
            THEMIS_ASSERT(oldest_pit != pending_.end(),
                          "ready op missing from pending store");
            // Only count genuine priority inversions: starting a
            // newer op of the same (or lower) tier is the policy's
            // own ordering, not a tier bypass.
            if (pit->second.op.flow.tier >
                oldest_pit->second.op.flow.tier)
                ++bypass_streak_;
            else
                bypass_streak_ = 0;
        }
        readyErase(pit->second);
        ChunkOp op = std::move(pit->second.op);
        pending_.erase(pit);
        // Retried ops (attempt > 0) already advanced their
        // collective's enforced cursor at their first start; bumping
        // it again would skip the true next op forever.
        if (op.attempt == 0) {
            auto eit = enforced_.find(op.tag.collective_id);
            if (eit != enforced_.end()) {
                ++eit->second.next;
                promoteExpected(eit->second);
            }
        }
        startOp(std::move(op));
    }
}

void
DimensionEngine::tryStartLegacy()
{
    while (true) {
        const std::size_t pick = selectNext();
        if (pick == kNone)
            return;
        if (!admissionAllows(queue_[pick].op))
            return;
        ChunkOp op = std::move(queue_[pick].op);
        queue_.erase(queue_.begin() + static_cast<long>(pick));
        // Advance the enforced cursor when this op was the expected
        // head of its collective's order.
        auto it = enforced_.find(op.tag.collective_id);
        if (it != enforced_.end())
            ++it->second.next;
        startOp(std::move(op));
    }
}

void
DimensionEngine::startOp(ChunkOp op)
{
    const std::uint64_t exec_id = next_exec_id_++;
    THEMIS_ASSERT(!op.steps.empty(), "op with no steps");
    if (fingerprint_ != nullptr) {
        // Event-trace component of the iteration fingerprint: op
        // starts in execution order, identified and timestamped in
        // the epoch frame (collective ids and the clock both restart
        // at the epoch reset).
        fingerprint_->mix(std::uint64_t{0x5354}); // "ST"
        fingerprint_->mix(static_cast<std::uint64_t>(global_dim_));
        fingerprint_->mix(
            static_cast<std::uint64_t>(op.tag.collective_id));
        fingerprint_->mix(static_cast<std::uint64_t>(op.tag.chunk_id));
        fingerprint_->mix(
            static_cast<std::uint64_t>(op.tag.stage_index));
        fingerprint_->mix(queue_ref_.now());
    }
    logDebug("dim", global_dim_ + 1, " t=", queue_ref_.now(),
             " start chunk ", op.tag.chunk_id, " stage ",
             op.tag.stage_index, " (", phaseName(op.phase), ", ",
             op.entering, " B in, ", active_.size(), " active)");
    if (start_listener_)
        start_listener_(op.tag);
    active_transfer_sum_ += op.transfer_time;
    active_weighted_sum_ += op.transfer_time * op.flow.weight;
    active_delays_.insert(op.fixed_delay);
    active_.emplace(exec_id,
                    ActiveOp{std::move(op), 0, queue_ref_.now()});
    advance(exec_id);
}

void
DimensionEngine::advance(std::uint64_t exec_id)
{
    auto it = active_.find(exec_id);
    THEMIS_ASSERT(it != active_.end(), "advance on unknown op");
    ActiveOp& a = it->second;
    if (a.next_step >= a.op.steps.size()) {
        finish(exec_id);
        return;
    }
    const StepPlan step = a.op.steps[a.next_step];
    const FlowClass flow = a.op.flow;
    ++a.next_step;
    auto do_transfer = [this, exec_id, step, flow] {
        if (faults_armed_ && link_down_) {
            // The latency phase ended under a flapped link: the wire
            // transfer cannot start. Fail the attempt on the spot (no
            // bytes moved) and back off like a mid-flight failure.
            failOp(exec_id, 0.0);
            return;
        }
        // Channel accounting is per (job, tier): job 0 — the single-
        // workload case — maps onto the plain tier indices.
        if (faults_armed_) {
            channel_.begin(
                step.bytes, flow.weight,
                [this, exec_id] { advance(exec_id); },
                accountingClass(flow),
                [this, exec_id, step](Bytes remaining) {
                    // Bytes the failed wire step DID move get re-sent
                    // on retry; account them as lost work.
                    failOp(exec_id, step.bytes - remaining);
                });
        } else {
            channel_.begin(step.bytes, flow.weight,
                           [this, exec_id] { advance(exec_id); },
                           accountingClass(flow));
        }
    };
    if (step.latency > 0.0) {
        queue_ref_.scheduleAfter(step.latency, do_transfer);
    } else {
        do_transfer();
    }
}

void
DimensionEngine::finish(std::uint64_t exec_id)
{
    auto it = active_.find(exec_id);
    THEMIS_ASSERT(it != active_.end(), "finish on unknown op");
    ChunkOp op = std::move(it->second.op);
    const TimeNs started_at = it->second.started_at;
    active_.erase(it);
    active_transfer_sum_ -= op.transfer_time;
    active_weighted_sum_ -= op.transfer_time * op.flow.weight;
    const auto delay_it = active_delays_.find(op.fixed_delay);
    THEMIS_ASSERT(delay_it != active_delays_.end(),
                  "active delay aggregate out of sync");
    active_delays_.erase(delay_it);
    if (active_.empty()) {
        // Shed fp drift at quiesce points.
        active_transfer_sum_ = 0.0;
        active_weighted_sum_ = 0.0;
    }
    ++completed_;
    if (fingerprint_ != nullptr) {
        fingerprint_->mix(std::uint64_t{0x464e}); // "FN"
        fingerprint_->mix(static_cast<std::uint64_t>(global_dim_));
        fingerprint_->mix(
            static_cast<std::uint64_t>(op.tag.collective_id));
        fingerprint_->mix(static_cast<std::uint64_t>(op.tag.chunk_id));
        fingerprint_->mix(
            static_cast<std::uint64_t>(op.tag.stage_index));
        fingerprint_->mix(queue_ref_.now());
    }
    if (trace_ != nullptr) {
        // Hand-rolled "RS c3.s1" label: short enough for the string's
        // SSO buffer, so the whole per-op span is allocation-free.
        char label[32];
        char* p = label;
        for (const char* t = phaseTag(op.phase); *t != '\0';)
            *p++ = *t++;
        *p++ = ' ';
        *p++ = 'c';
        p = appendInt(p, op.tag.chunk_id);
        *p++ = '.';
        *p++ = 's';
        p = appendInt(p, op.tag.stage_index);
        trace_->recordFabricOp(global_dim_, label,
                               static_cast<std::size_t>(p - label),
                               started_at, queue_ref_.now());
    }
    if (finish_listener_)
        finish_listener_(op, started_at);
    // Completion may enqueue the chunk's next stage on another
    // dimension (or this one); notify first, then refill.
    op.on_complete(op);
    notifyPresence();
    if (legacy_scan_)
        tryStartLegacy();
    else
        tryStart();
}

void
DimensionEngine::failOp(std::uint64_t exec_id, Bytes lost)
{
    auto it = active_.find(exec_id);
    THEMIS_ASSERT(it != active_.end(), "failOp on unknown op");
    ActiveOp& a = it->second;
    THEMIS_ASSERT(a.next_step >= 1, "failOp before any step began");
    // Earlier steps of this attempt completed in full; the whole op
    // restarts from step 0 on retry, so their bytes are re-sent too.
    for (std::size_t s = 0; s + 1 < a.next_step; ++s)
        lost += a.op.steps[s].bytes;
    ChunkOp op = std::move(a.op);
    active_.erase(it);
    active_transfer_sum_ -= op.transfer_time;
    active_weighted_sum_ -= op.transfer_time * op.flow.weight;
    const auto delay_it = active_delays_.find(op.fixed_delay);
    THEMIS_ASSERT(delay_it != active_delays_.end(),
                  "active delay aggregate out of sync");
    active_delays_.erase(delay_it);
    if (active_.empty()) {
        active_transfer_sum_ = 0.0;
        active_weighted_sum_ = 0.0;
    }
    ++op.attempt;
    ++retry_count_;
    lost_bytes_ += lost;
    if (fingerprint_ != nullptr) {
        fingerprint_->mix(std::uint64_t{0x464c}); // "FL"
        fingerprint_->mix(static_cast<std::uint64_t>(global_dim_));
        fingerprint_->mix(
            static_cast<std::uint64_t>(op.tag.collective_id));
        fingerprint_->mix(static_cast<std::uint64_t>(op.tag.chunk_id));
        fingerprint_->mix(
            static_cast<std::uint64_t>(op.tag.stage_index));
        fingerprint_->mix(static_cast<std::uint64_t>(op.attempt));
        fingerprint_->mix(queue_ref_.now());
    }
    logDebug("dim", global_dim_ + 1, " t=", queue_ref_.now(),
             " FAIL chunk ", op.tag.chunk_id, " stage ",
             op.tag.stage_index, " attempt ", op.attempt, " (", lost,
             " B lost)");
    const TimeNs delay = retryBackoffDelay(op);
    if (retry_listener_)
        retry_listener_(global_dim_, lost, delay);
    if (op.attempt > retry_.max_attempts) {
        FatalRetryReport report;
        report.dim = global_dim_;
        report.op = op.tag;
        report.attempts = op.attempt;
        report.lost_bytes = lost_bytes_;
        if (fatal_retry_listener_)
            fatal_retry_listener_(report);
        std::ostringstream oss;
        oss << "chunk " << op.tag.chunk_id << " stage "
            << op.tag.stage_index << " on dim " << global_dim_
            << " exceeded " << retry_.max_attempts
            << " retry attempts; raise retry max_attempts or shorten "
               "the flap windows";
        throw RetryExhaustedError(oss.str(), report);
    }
    queue_ref_.scheduleAfter(
        delay, [this, op = std::move(op)]() mutable {
            requeueRetry(std::move(op));
        });
    notifyPresence();
}

TimeNs
DimensionEngine::retryBackoffDelay(const ChunkOp& op) const
{
    // Exponential backoff, capped: base * 2^(attempt-1). The loop
    // form avoids pow()/overflow and is exact in doubles.
    TimeNs delay = retry_.backoff_base_ns;
    for (int k = 1; k < op.attempt && delay < retry_.backoff_cap_ns;
         ++k)
        delay *= 2.0;
    if (delay > retry_.backoff_cap_ns)
        delay = retry_.backoff_cap_ns;
    if (retry_.jitter > 0.0) {
        // Deterministic per-(op, attempt) spread so a flap's batch of
        // simultaneous failures fans out instead of re-colliding on
        // one backoff tick. Hash -> u in [0, 1) -> factor in
        // [1 - jitter/2, 1 + jitter/2).
        Fnv1a h;
        h.mix(retry_.jitter_seed);
        h.mix(static_cast<std::uint64_t>(global_dim_));
        h.mix(static_cast<std::uint64_t>(op.tag.collective_id));
        h.mix(static_cast<std::uint64_t>(op.tag.chunk_id));
        h.mix(static_cast<std::uint64_t>(op.tag.stage_index));
        h.mix(static_cast<std::uint64_t>(op.attempt));
        const double u =
            static_cast<double>(h.value() >> 11) * 0x1.0p-53;
        delay *= 1.0 + retry_.jitter * (u - 0.5);
    }
    return delay;
}

void
DimensionEngine::publishMetrics(
    stats::telemetry::MetricsRegistry& registry,
    const std::string& prefix) const
{
    registry.gauge(prefix + ".completed_ops")
        .set(static_cast<double>(completed_));
    registry.gauge(prefix + ".retries")
        .set(static_cast<double>(retry_count_));
    registry.gauge(prefix + ".lost_bytes").set(lost_bytes_);
    registry.gauge(prefix + ".bypass_streak")
        .set(static_cast<double>(bypass_streak_));
    channel_.publishMetrics(registry, prefix + ".channel");
}

void
DimensionEngine::requeueRetry(ChunkOp op)
{
    const std::uint64_t seq = arrival_counter_++;
    auto [pit, inserted] =
        pending_.emplace(seq, PendingOp{std::move(op), seq});
    THEMIS_ASSERT(inserted, "duplicate arrival sequence");
    readyInsert(pit->second);
    notifyPresence();
    tryStart();
}

} // namespace themis::runtime
