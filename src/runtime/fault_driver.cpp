#include "runtime/fault_driver.hpp"

#include <algorithm>

#include <cstdio>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "runtime/dimension_engine.hpp"
#include "stats/telemetry/telemetry.hpp"
#include "stats/trace_writer.hpp"
#include "stats/utilization_tracker.hpp"

namespace themis::runtime {

FaultDriver::FaultDriver(sim::EventQueue& queue,
                         const sim::FaultTimeline& timeline,
                         std::vector<DimensionEngine*> engines,
                         stats::UtilizationTracker* tracker)
    : queue_(queue), timeline_(timeline), engines_(std::move(engines)),
      tracker_(tracker), dims_(engines_.size())
{
    THEMIS_ASSERT(!engines_.empty(), "fault driver with no engines");
    for (auto* e : engines_)
        THEMIS_ASSERT(e != nullptr, "null engine");
    timeline_.validateForDims(static_cast<int>(engines_.size()));
    std::vector<int> links_per_dim;
    links_per_dim.reserve(engines_.size());
    base_bw_.reserve(engines_.size());
    for (const auto* e : engines_) {
        base_bw_.push_back(e->channel().capacity());
        links_per_dim.push_back(e->config().links_per_npu);
    }
    timeline_.validateLinks(links_per_dim);
}

void
FaultDriver::setCapacityListener(CapacityListener listener)
{
    capacity_listener_ = std::move(listener);
}

void
FaultDriver::setTelemetry(stats::telemetry::Telemetry* telemetry)
{
    telemetry_ = telemetry;
}

double
FaultDriver::linkShare(int dim) const
{
    const DimState& st = dims_[static_cast<std::size_t>(dim)];
    if (st.links_down == 0)
        return 1.0;
    const int links =
        engines_[static_cast<std::size_t>(dim)]->config().links_per_npu;
    // A full outage holds the engine (syncLinkState); clamping to one
    // surviving link keeps the channel capacity and the planning
    // factor positive, and is irrelevant while nothing can start.
    const int up = std::max(links - st.links_down, 1);
    return static_cast<double>(up) / static_cast<double>(links);
}

double
FaultDriver::planningFactor(int dim) const
{
    const DimState& st = dims_[static_cast<std::size_t>(dim)];
    double f = st.straggler;
    for (const auto& [pair, factor] : st.degrades)
        f *= factor;
    return f * linkShare(dim);
}

void
FaultDriver::syncLinkState(int dim)
{
    const DimState& st = dims_[static_cast<std::size_t>(dim)];
    DimensionEngine* engine = engines_[static_cast<std::size_t>(dim)];
    const int links = engine->config().links_per_npu;
    const bool want_down =
        st.flap_depth > 0 || (links > 0 && st.links_down >= links);
    if (want_down != engine->linkDown())
        engine->setLinkDown(want_down);
}

void
FaultDriver::refreshCapacity(int dim)
{
    const DimState& st = dims_[static_cast<std::size_t>(dim)];
    Bandwidth eff = base_bw_[static_cast<std::size_t>(dim)];
    eff *= st.straggler;
    for (const auto& [pair, factor] : st.degrades)
        eff *= factor;
    eff *= linkShare(dim);
    engines_[static_cast<std::size_t>(dim)]->channel().setCapacity(
        queue_.now(), eff);
    if (tracker_ != nullptr)
        tracker_->recordCapacityEvent(static_cast<std::size_t>(dim));
}

void
FaultDriver::apply(const sim::FaultEvent& e)
{
    DimState& st = dims_[static_cast<std::size_t>(e.dim)];
    DimensionEngine* engine = engines_[static_cast<std::size_t>(e.dim)];
    logDebug("fault t=", queue_.now(), " (abs ", e.at, ") dim ",
             e.dim + 1, " ", sim::faultKindName(e.kind));
    if (telemetry_ != nullptr) {
        // Observational only: the instant sits at the event's
        // absolute timeline position (lazy application may apply it
        // later in queue time, but the timeline edge is the fact).
        telemetry_->metrics.counter("fault.events_applied").add();
        telemetry_->recorder.record(stats::telemetry::FlightEvent{
            e.at, stats::telemetry::FlightKind::FaultEvent, e.dim,
            static_cast<int>(e.kind), e.factor});
        if (telemetry_->trace != nullptr) {
            char label[64];
            std::snprintf(label, sizeof(label), "fault: %s dim%d",
                          sim::faultKindName(e.kind), e.dim + 1);
            telemetry_->trace->instantAbs(
                stats::TraceWriter::kRunPid,
                stats::TraceWriter::kFaultTid, label, e.at);
        }
    }
    switch (e.kind) {
    case sim::FaultKind::DegradeStart:
        st.degrades.emplace_back(e.pair, e.factor);
        refreshCapacity(e.dim);
        if (capacity_listener_)
            capacity_listener_(e.dim);
        break;
    case sim::FaultKind::DegradeEnd: {
        const auto it = std::find_if(
            st.degrades.begin(), st.degrades.end(),
            [&](const auto& d) { return d.first == e.pair; });
        THEMIS_ASSERT(it != st.degrades.end(),
                      "degrade-end without matching start");
        st.degrades.erase(it);
        refreshCapacity(e.dim);
        if (capacity_listener_)
            capacity_listener_(e.dim);
        break;
    }
    case sim::FaultKind::StragglerStart:
        st.straggler *= e.factor;
        refreshCapacity(e.dim);
        if (capacity_listener_)
            capacity_listener_(e.dim);
        break;
    case sim::FaultKind::FlapDown:
        ++st.flap_depth;
        syncLinkState(e.dim);
        break;
    case sim::FaultKind::FlapUp:
        THEMIS_ASSERT(st.flap_depth > 0,
                      "flap-up without matching flap-down");
        // The nominal down window rides in the event's factor field;
        // recording it here (not wall-clock deltas) keeps downtime
        // accounting independent of lazy application.
        if (tracker_ != nullptr)
            tracker_->recordFlap(static_cast<std::size_t>(e.dim),
                                 e.factor);
        --st.flap_depth;
        syncLinkState(e.dim);
        break;
    case sim::FaultKind::LinkDown: {
        const int links = engine->config().links_per_npu;
        if (st.link_depth.empty())
            st.link_depth.assign(static_cast<std::size_t>(links), 0);
        if (++st.link_depth[static_cast<std::size_t>(e.link)] == 1) {
            ++st.links_down;
            // Striped transfers lose a lane: everything in flight on
            // the dim fails once and retries on the survivors' share
            // (or holds, under a full outage).
            const bool was_down = engine->linkDown();
            syncLinkState(e.dim);
            if (!was_down)
                engine->failInFlight();
            refreshCapacity(e.dim);
            if (capacity_listener_)
                capacity_listener_(e.dim);
        }
        break;
    }
    case sim::FaultKind::LinkUp: {
        THEMIS_ASSERT(!st.link_depth.empty() &&
                          st.link_depth[static_cast<std::size_t>(
                              e.link)] > 0,
                      "link-up without matching link-down");
        // Per-link downtime rolls into the dim's flap counters: the
        // nominal down window rides in the factor field, as FlapUp.
        if (tracker_ != nullptr)
            tracker_->recordFlap(static_cast<std::size_t>(e.dim),
                                 e.factor);
        if (--st.link_depth[static_cast<std::size_t>(e.link)] == 0) {
            --st.links_down;
            refreshCapacity(e.dim);
            syncLinkState(e.dim);
            if (capacity_listener_)
                capacity_listener_(e.dim);
        }
        break;
    }
    }
}

void
FaultDriver::catchUp(TimeNs abs_now)
{
    const auto& events = timeline_.events();
    while (next_ < events.size() && events[next_].at <= abs_now) {
        apply(events[next_]);
        ++next_;
    }
}

void
FaultDriver::armNext()
{
    THEMIS_ASSERT(armed_ == 0, "fault event already armed");
    const auto& events = timeline_.events();
    if (next_ >= events.size())
        return;
    // Relative (current-epoch) firing time; catchUp has applied
    // everything at or before now, so this is strictly in the future.
    const TimeNs rel = events[next_].at - base_;
    armed_ = queue_.schedule(rel, [this] {
        armed_ = 0;
        catchUp(base_ + queue_.now());
        armNext();
    });
}

void
FaultDriver::onWindowStart(TimeNs now)
{
    THEMIS_ASSERT(!window_open_, "fault window already open");
    window_open_ = true;
    catchUp(base_ + now);
    armNext();
}

void
FaultDriver::onWindowEnd(TimeNs now)
{
    (void)now;
    THEMIS_ASSERT(window_open_, "fault window not open");
    window_open_ = false;
    if (armed_ != 0) {
        queue_.cancel(armed_);
        armed_ = 0;
    }
}

void
FaultDriver::onEpochRebase(TimeNs elapsed)
{
    THEMIS_ASSERT(armed_ == 0 && !window_open_,
                  "epoch rebase with the fault window open");
    base_ += elapsed;
}

void
FaultDriver::skipReplayedEpoch(TimeNs d)
{
    THEMIS_ASSERT(armed_ == 0 && !window_open_,
                  "replay skip with the fault window open");
    base_ += d;
}

} // namespace themis::runtime
