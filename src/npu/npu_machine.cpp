#include "npu/npu_machine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace themis::npu {

namespace {

/** splitmix64, for deterministic per-op skew. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

class Simulation
{
  public:
    Simulation(const Topology& topo, CollectiveType type,
               const std::vector<ChunkSchedule>& schedules,
               const NpuSimConfig& config)
        : topo_(topo), type_(type), schedules_(schedules),
          config_(config), machine_(dimSizes(topo))
    {
        THEMIS_ASSERT(!schedules_.empty(), "no chunk schedules");
        num_npus_ = machine_.numNpus();
        num_chunks_ = static_cast<int>(schedules_.size());
        num_stages_ =
            static_cast<int>(schedules_.front().stages.size());
        for (const auto& s : schedules_) {
            THEMIS_ASSERT(static_cast<int>(s.stages.size()) ==
                              num_stages_,
                          "ragged chunk schedules unsupported");
        }
        ops_.resize(static_cast<std::size_t>(num_npus_) * num_chunks_ *
                    num_stages_);
        const int dims = topo_.numDims();
        engines_.resize(static_cast<std::size_t>(num_npus_) * dims);
        for (int n = 0; n < num_npus_; ++n) {
            for (int d = 0; d < dims; ++d) {
                engineAt(n, d).channel =
                    std::make_unique<sim::SharedChannel>(
                        queue_, topo_.dim(d).bandwidth());
            }
        }
        if (!config_.enforced_order.empty()) {
            THEMIS_ASSERT(static_cast<int>(
                              config_.enforced_order.size()) == dims,
                          "enforced order rank mismatch");
        }
    }

    NpuRunResult
    run()
    {
        for (int n = 0; n < num_npus_; ++n)
            for (int c = 0; c < num_chunks_; ++c)
                enqueueStage(n, c, 0, schedules_[static_cast<
                                          std::size_t>(c)].size);
        queue_.run();

        NpuRunResult result;
        result.makespan = queue_.now();
        result.egress_bytes.assign(
            static_cast<std::size_t>(num_npus_),
            std::vector<Bytes>(static_cast<std::size_t>(topo_.numDims()),
                               0.0));
        std::size_t incomplete = 0;
        for (const auto& op : ops_) {
            if (op.exists && !op.completed)
                ++incomplete;
        }
        for (int n = 0; n < num_npus_; ++n) {
            for (int d = 0; d < topo_.numDims(); ++d) {
                auto& ch = *engineAt(n, d).channel;
                ch.sync();
                result.egress_bytes[static_cast<std::size_t>(n)]
                                   [static_cast<std::size_t>(d)] =
                    ch.progressedBytes();
            }
        }
        result.stuck_ops = incomplete;
        result.completed = incomplete == 0 && allStagesDone();
        return result;
    }

  private:
    struct OpState
    {
        bool exists = false;
        bool started = false;
        bool send_done = false;
        bool completed = false;
        int recv_needed = 0;
        Bytes entering = 0.0;
        TimeNs transfer_time = 0.0;
        TimeNs fixed_delay = 0.0;
        std::uint64_t arrival_seq = 0;
    };

    struct Engine
    {
        std::unique_ptr<sim::SharedChannel> channel;
        std::vector<std::size_t> queued; // op indices
        std::vector<std::size_t> active;
        std::size_t enforced_next = 0;
    };

    static std::vector<int>
    dimSizes(const Topology& topo)
    {
        std::vector<int> sizes;
        for (const auto& d : topo.dims())
            sizes.push_back(d.size);
        return sizes;
    }

    std::size_t
    opIndex(int npu, int chunk, int stage) const
    {
        return (static_cast<std::size_t>(npu) * num_chunks_ + chunk) *
                   num_stages_ +
               static_cast<std::size_t>(stage);
    }

    Engine&
    engineAt(int npu, int dim)
    {
        return engines_[static_cast<std::size_t>(npu) *
                            topo_.numDims() +
                        static_cast<std::size_t>(dim)];
    }

    const StageAssignment&
    stageOf(int chunk, int stage) const
    {
        return schedules_[static_cast<std::size_t>(chunk)]
            .stages[static_cast<std::size_t>(stage)];
    }

    /** NPUs whose sends this op must wait for. */
    std::vector<int>
    sendersOf(int npu, int dim) const
    {
        const auto& cfg = topo_.dim(dim);
        const auto group = machine_.peerGroup(npu, dim);
        const int pos = machine_.positionInGroup(npu, dim);
        const int p = cfg.size;
        std::vector<int> senders;
        if (cfg.in_network_offload ||
            cfg.kind == DimKind::FullyConnected) {
            for (int member : group) {
                if (member != npu)
                    senders.push_back(member);
            }
        } else if (cfg.kind == DimKind::Ring) {
            senders.push_back(
                group[static_cast<std::size_t>((pos - 1 + p) % p)]);
        } else {
            for (int mask = 1; mask < p; mask <<= 1) {
                senders.push_back(
                    group[static_cast<std::size_t>(pos ^ mask)]);
            }
        }
        return senders;
    }

    /** NPUs that wait for this op's send (inverse of sendersOf). */
    std::vector<int>
    receiversOf(int npu, int dim) const
    {
        const auto& cfg = topo_.dim(dim);
        if (cfg.kind == DimKind::Ring && !cfg.in_network_offload) {
            const auto group = machine_.peerGroup(npu, dim);
            const int pos = machine_.positionInGroup(npu, dim);
            return {group[static_cast<std::size_t>(
                (pos + 1) % cfg.size)]};
        }
        return sendersOf(npu, dim); // symmetric relations otherwise
    }

    void
    enqueueStage(int npu, int chunk, int stage, Bytes entering)
    {
        const auto& st = stageOf(chunk, stage);
        const std::size_t idx = opIndex(npu, chunk, stage);
        OpState& op = ops_[idx];
        THEMIS_ASSERT(!op.exists, "stage enqueued twice");
        op.exists = true;
        op.entering = entering;
        // Reuse the runtime's lumped cost construction.
        auto probe = runtime::makeChunkOp(
            runtime::OpTag{0, chunk, stage}, st.phase, st.dim, st.dim,
            entering, topo_.dim(st.dim), [](const runtime::ChunkOp&) {});
        op.transfer_time = probe.transfer_time;
        op.fixed_delay = probe.fixed_delay;
        op.arrival_seq = arrival_counter_++;

        Engine& engine = engineAt(npu, st.dim);
        engine.queued.push_back(idx);
        tryStart(npu, st.dim);
    }

    bool
    admissionAllows(const Engine& engine) const
    {
        if (engine.active.empty())
            return true;
        if (static_cast<int>(engine.active.size()) >=
            config_.admission.max_parallel_ops) {
            return false;
        }
        TimeNs transfer_sum = 0.0;
        TimeNs max_delay = 0.0;
        for (std::size_t idx : engine.active) {
            transfer_sum += ops_[idx].transfer_time;
            max_delay = std::max(max_delay, ops_[idx].fixed_delay);
        }
        return transfer_sum <
               config_.admission.latency_headroom * max_delay;
    }

    /** Queue slot to start next, or npos. */
    std::size_t
    selectNext(int npu, int dim)
    {
        Engine& engine = engineAt(npu, dim);
        if (engine.queued.empty())
            return static_cast<std::size_t>(-1);
        std::vector<std::size_t> candidates;
        if (!config_.enforced_order.empty()) {
            const auto& order =
                config_.enforced_order[static_cast<std::size_t>(dim)];
            if (engine.enforced_next >= order.size())
                return static_cast<std::size_t>(-1);
            const OpKey& expected = order[engine.enforced_next];
            for (std::size_t q = 0; q < engine.queued.size(); ++q) {
                const std::size_t idx = engine.queued[q];
                const int chunk = static_cast<int>(
                    idx / num_stages_ % num_chunks_);
                const int stage =
                    static_cast<int>(idx % num_stages_);
                if (chunk == expected.chunk_id &&
                    stage == expected.stage_index) {
                    candidates.push_back(q);
                }
            }
        } else {
            for (std::size_t q = 0; q < engine.queued.size(); ++q)
                candidates.push_back(q);
        }
        if (candidates.empty())
            return static_cast<std::size_t>(-1);
        std::vector<QueuedOpView> views;
        views.reserve(candidates.size());
        for (std::size_t q : candidates) {
            const OpState& op = ops_[engine.queued[q]];
            const int chunk = static_cast<int>(
                engine.queued[q] / num_stages_ % num_chunks_);
            views.push_back(QueuedOpView{
                op.arrival_seq, op.transfer_time + op.fixed_delay,
                chunk});
        }
        return candidates[pickNextOp(config_.policy, views)];
    }

    void
    tryStart(int npu, int dim)
    {
        while (true) {
            Engine& engine = engineAt(npu, dim);
            const std::size_t slot = selectNext(npu, dim);
            if (slot == static_cast<std::size_t>(-1))
                return;
            if (!admissionAllows(engine))
                return;
            const std::size_t idx = engine.queued[slot];
            engine.queued.erase(engine.queued.begin() +
                                static_cast<long>(slot));
            if (!config_.enforced_order.empty())
                ++engine.enforced_next;
            engine.active.push_back(idx);
            startOp(npu, dim, idx);
        }
    }

    void
    startOp(int npu, int dim, std::size_t idx)
    {
        OpState& op = ops_[idx];
        op.started = true;
        const int chunk =
            static_cast<int>(idx / num_stages_ % num_chunks_);
        const int stage = static_cast<int>(idx % num_stages_);
        // Receive requirement: peers whose sends have not drained yet.
        op.recv_needed = 0;
        for (int sender : sendersOf(npu, dim)) {
            if (!ops_[opIndex(sender, chunk, stage)].send_done)
                ++op.recv_needed;
        }
        TimeNs delay = op.fixed_delay;
        if (config_.max_skew_ns > 0.0) {
            const std::uint64_t h =
                mix(mix(mix(config_.seed ^ static_cast<std::uint64_t>(
                                               npu)) ^
                        static_cast<std::uint64_t>(chunk)) ^
                    static_cast<std::uint64_t>(stage));
            delay += config_.max_skew_ns *
                     (static_cast<double>(h >> 11) / 9007199254740992.0);
        }
        queue_.scheduleAfter(delay, [this, npu, dim, idx] {
            engineAt(npu, dim).channel->begin(
                ops_[idx].transfer_time *
                    topo_.dim(dim).bandwidth(),
                [this, npu, dim, idx] { onSendDone(npu, dim, idx); });
        });
    }

    void
    onSendDone(int npu, int dim, std::size_t idx)
    {
        OpState& op = ops_[idx];
        op.send_done = true;
        const int chunk =
            static_cast<int>(idx / num_stages_ % num_chunks_);
        const int stage = static_cast<int>(idx % num_stages_);
        // Notify receivers that were waiting on this send.
        for (int receiver : receiversOf(npu, dim)) {
            OpState& ro = ops_[opIndex(receiver, chunk, stage)];
            if (ro.started && !ro.completed) {
                THEMIS_ASSERT(ro.recv_needed > 0,
                              "receive accounting underflow");
                --ro.recv_needed;
                maybeComplete(receiver, dim, chunk, stage);
            }
        }
        maybeComplete(npu, dim, chunk, stage);
    }

    void
    maybeComplete(int npu, int dim, int chunk, int stage)
    {
        const std::size_t idx = opIndex(npu, chunk, stage);
        OpState& op = ops_[idx];
        if (op.completed || !op.send_done || op.recv_needed > 0)
            return;
        op.completed = true;
        Engine& engine = engineAt(npu, dim);
        engine.active.erase(std::find(engine.active.begin(),
                                      engine.active.end(), idx));
        // Advance the chunk to its next stage on this NPU.
        if (stage + 1 < num_stages_) {
            const Bytes after = sizeAfterPhase(
                stageOf(chunk, stage).phase, op.entering,
                topo_.dim(stageOf(chunk, stage).dim).size);
            enqueueStage(npu, chunk, stage + 1, after);
        }
        tryStart(npu, dim);
    }

    bool
    allStagesDone() const
    {
        for (const auto& op : ops_) {
            if (!op.exists || !op.completed)
                return false;
        }
        return true;
    }

    const Topology& topo_;
    CollectiveType type_;
    const std::vector<ChunkSchedule>& schedules_;
    NpuSimConfig config_;
    LogicalMachine machine_;
    sim::EventQueue queue_;
    int num_npus_ = 0;
    int num_chunks_ = 0;
    int num_stages_ = 0;
    std::vector<OpState> ops_;
    std::vector<Engine> engines_;
    std::uint64_t arrival_counter_ = 0;
};

} // namespace

NpuRunResult
simulatePerNpu(const Topology& topo, CollectiveType type,
               const std::vector<ChunkSchedule>& schedules,
               const NpuSimConfig& config)
{
    Simulation sim(topo, type, schedules, config);
    return sim.run();
}

} // namespace themis::npu
