/**
 * @file
 * Per-NPU message-passing backend.
 *
 * The main runtime computes timing at logical-dimension granularity,
 * which is exact for the paper's symmetric, contention-free platforms.
 * This backend drops that assumption: it simulates *every NPU*, each
 * with its own per-dimension egress link and chunk-operation queue,
 * and gates every operation on the matching sends of its peer group —
 * a chunk op only completes once the data its peers contribute has
 * actually left their links.
 *
 * Purposes:
 *  - cross-validation: on an unskewed platform every NPU behaves
 *    identically and the makespan must equal the dimension-granular
 *    runtime exactly (asserted in tests and the validation bench);
 *  - the paper's Sec 4.6.2 consistency problem, made concrete:
 *    injecting per-NPU runtime skew lets NPUs pick different chunk
 *    orders, which can deadlock (ops waiting on peers that are stuck
 *    behind them); enforcing the pre-simulated per-dimension order
 *    restores progress at a bounded cost.
 */

#ifndef THEMIS_NPU_NPU_MACHINE_HPP
#define THEMIS_NPU_NPU_MACHINE_HPP

#include <map>
#include <memory>
#include <vector>

#include "collective/dataplane/logical_machine.hpp"
#include "core/consistency_planner.hpp"
#include "core/intra_dim_policy.hpp"
#include "runtime/chunk_op.hpp"
#include "runtime/dimension_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/shared_channel.hpp"
#include "topology/topology.hpp"

namespace themis::npu {

/** Configuration of a per-NPU simulation run. */
struct NpuSimConfig
{
    /** Intra-dimension ordering on every NPU's queues. */
    IntraDimPolicy policy = IntraDimPolicy::Scf;

    /** Same admission rule as the dimension-granular runtime. */
    runtime::AdmissionConfig admission{};

    /**
     * Maximum extra per-op start delay injected per NPU (deterministic
     * from `seed`); zero disables skew. Models the "runtime variation"
     * of Sec 4.6.2 (packet drops, endpoint congestion).
     */
    TimeNs max_skew_ns = 0.0;

    /** Seed for the skew injection. */
    std::uint64_t seed = 1;

    /**
     * Per-dimension enforced start orders (Sec 4.6.2), identical on
     * every NPU; empty = free-running policy order.
     */
    std::vector<std::vector<OpKey>> enforced_order;
};

/** Result of one per-NPU collective simulation. */
struct NpuRunResult
{
    /** True when every chunk finished on every NPU. */
    bool completed = false;

    /** Simulated completion time of the slowest NPU. */
    TimeNs makespan = 0.0;

    /** Number of chunk operations that never finished (deadlock). */
    std::size_t stuck_ops = 0;

    /** Bytes sent per NPU per dimension. */
    std::vector<std::vector<Bytes>> egress_bytes;
};

/**
 * Simulate the execution of @p schedules (one set, replicated on
 * every NPU, as the paper requires) on @p topo with per-NPU fidelity.
 *
 * Every NPU owns one egress SharedChannel per dimension and runs the
 * chunk stages in schedule order; an operation holds an engine slot
 * from start until both its own send has drained *and* every peer's
 * matching send has drained (ring: predecessor; halving-doubling: all
 * partners; direct/offload: the whole group).
 */
NpuRunResult simulatePerNpu(const Topology& topo,
                            CollectiveType type,
                            const std::vector<ChunkSchedule>& schedules,
                            const NpuSimConfig& config = {});

} // namespace themis::npu

#endif // THEMIS_NPU_NPU_MACHINE_HPP
