/**
 * @file
 * Bandwidth-provisioning analysis (paper Sec 3.3 and Sec 6.3).
 *
 * For two dimensions K < L the paper classifies the bandwidth split:
 *
 *  - Just-Enough:      BW(dimK) == P_K * ... * P_{L-1} * BW(dimL)
 *                      baseline scheduling already saturates both.
 *  - Over-Provisioned: BW(dimK)  < P_K * ... * P_{L-1} * BW(dimL)
 *                      baseline wastes dimL; Themis recovers it.
 *  - Under-Provisioned:BW(dimK)  > P_K * ... * P_{L-1} * BW(dimL)
 *                      no scheduling policy can drive both dimensions;
 *                      such design points should be prohibited.
 *
 * This header also provides the closed-form steady-state analysis of
 * baseline scheduling (stage time per dimension, bottleneck, weighted
 * utilization) used to cross-check the simulator and to regenerate the
 * Sec 3.3 discussion.
 */

#ifndef THEMIS_TOPOLOGY_PROVISIONING_HPP
#define THEMIS_TOPOLOGY_PROVISIONING_HPP

#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace themis {

/** Sec 6.3 bandwidth-distribution scenarios. */
enum class ProvisionScenario {
    JustEnough,
    OverProvisioned,
    UnderProvisioned,
};

/** Human-readable scenario name. */
std::string provisionScenarioName(ProvisionScenario s);

/** Classification of one ordered dimension pair (K < L, 0-based). */
struct PairProvisioning
{
    int dim_k = 0;
    int dim_l = 0;
    /** BW(dimK) / (P_K * ... * P_{L-1} * BW(dimL)); 1.0 == just enough. */
    double ratio = 1.0;
    ProvisionScenario scenario = ProvisionScenario::JustEnough;
};

/**
 * Classify dimensions @p k < @p l of @p topo.
 * @param tolerance relative slack around 1.0 that still counts as
 *        Just-Enough.
 */
PairProvisioning classifyPair(const Topology& topo, int k, int l,
                              double tolerance = 0.01);

/** Classify all ordered pairs (k < l). */
std::vector<PairProvisioning> classifyAllPairs(const Topology& topo,
                                               double tolerance = 0.01);

/**
 * True when no dimension pair is Under-Provisioned, i.e. a scheduler
 * (like Themis) can in principle drive every dimension at full rate.
 */
bool fullUtilizationPossible(const Topology& topo,
                             double tolerance = 0.01);

/**
 * Closed-form steady-state behaviour of *baseline* scheduling for a
 * large All-Reduce (bandwidth-dominated regime, latency ignored).
 */
struct BaselineAnalysis
{
    /**
     * Stage time per byte of original chunk size, one entry per
     * dimension: t_k = prefix_shrink * (P_k-1)/P_k / BW_k.
     */
    std::vector<double> stage_time_per_byte;

    /** Index of the slowest (bottleneck) stage. */
    int bottleneck_dim = 0;

    /** Per-dimension utilization t_k / t_max. */
    std::vector<double> dim_utilization;

    /**
     * Weighted average bandwidth utilization (weights = per-dim BW),
     * the paper's Fig 4 metric in the bandwidth-dominated limit.
     */
    double weighted_utilization = 0.0;
};

/** Analyze baseline hierarchical scheduling on @p topo. */
BaselineAnalysis analyzeBaseline(const Topology& topo);

/**
 * The bandwidth vector that would make baseline scheduling efficient
 * ("Just Enough" for every consecutive pair), anchored at dim1's BW:
 * BW(dim1) = P_1 * BW(dim2) = P_1 * P_2 * BW(dim3) = ...
 */
std::vector<Bandwidth> baselineEfficientBandwidths(const Topology& topo);

} // namespace themis

#endif // THEMIS_TOPOLOGY_PROVISIONING_HPP
