#include "topology/topology.hpp"

#include <sstream>

#include "common/error.hpp"

namespace themis {

Topology::Topology(std::string name, std::vector<DimensionConfig> dims)
    : name_(std::move(name)), dims_(std::move(dims))
{
    if (dims_.empty())
        THEMIS_FATAL("topology '" << name_ << "' has no dimensions");
    for (const auto& d : dims_)
        d.validate();
}

const DimensionConfig&
Topology::dim(int i) const
{
    THEMIS_ASSERT(i >= 0 && i < numDims(),
                  "dimension index " << i << " out of range for "
                                     << numDims() << "D topology");
    return dims_[static_cast<std::size_t>(i)];
}

long
Topology::totalNpus() const
{
    long total = 1;
    for (const auto& d : dims_)
        total *= d.size;
    return total;
}

Bandwidth
Topology::totalBandwidth() const
{
    Bandwidth total = 0.0;
    for (const auto& d : dims_)
        total += d.bandwidth();
    return total;
}

std::string
Topology::sizeString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0)
            oss << "x";
        oss << dims_[i].size;
    }
    return oss.str();
}

std::string
Topology::describe() const
{
    std::ostringstream oss;
    oss << name_ << " (" << sizeString() << ", " << totalNpus()
        << " NPUs)\n";
    for (std::size_t i = 0; i < dims_.size(); ++i)
        oss << "  dim" << i + 1 << ": " << dims_[i].describe() << "\n";
    return oss.str();
}

} // namespace themis
