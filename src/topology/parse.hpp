/**
 * @file
 * Textual topology descriptions, for CLI tools and config files.
 *
 * Grammar (one dimension per comma-separated field, dim1 first):
 *
 *     dim    := kind ':' size ':' bw [ 'x' links ] [ ':' latency ]
 *               [ ':offload' ]
 *     kind   := 'Ring' | 'FC' | 'SW'        (case-insensitive)
 *     bw     := per-link bandwidth in Gbit/s
 *     links  := links per NPU (default 1)
 *     latency:= per-step latency in ns (default 700)
 *
 * Example — the paper's 4D-Ring_FC_Ring_SW:
 *
 *     Ring:4:1500x2:20,FC:8:200x7:700,Ring:4:200x6:700,SW:8:800:1700
 */

#ifndef THEMIS_TOPOLOGY_PARSE_HPP
#define THEMIS_TOPOLOGY_PARSE_HPP

#include <string>

#include "topology/topology.hpp"

namespace themis {

/**
 * Parse @p spec into a Topology named @p name.
 * Throws ConfigError with a precise message on malformed input.
 */
Topology parseTopology(const std::string& name,
                       const std::string& spec);

/** Render @p topo back into the parseable spec form. */
std::string topologySpec(const Topology& topo);

} // namespace themis

#endif // THEMIS_TOPOLOGY_PARSE_HPP
