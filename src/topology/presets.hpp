/**
 * @file
 * Target platforms from the paper (Table 2 plus the "current" 2D
 * platform used in Fig 4's motivation).
 *
 * Naming convention follows the paper: number of dimensions, then the
 * per-dimension wiring in dim1..dimD order, e.g. "3D-FC_Ring_SW".
 */

#ifndef THEMIS_TOPOLOGY_PRESETS_HPP
#define THEMIS_TOPOLOGY_PRESETS_HPP

#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace themis::presets {

/** 2D-SW_SW: 16x64, aggr BW (1200, 800) Gb/s. */
Topology make2DSwSw();

/** 3D-SW_SW_SW_homo: 16x8x8, aggr BW (800, 800, 800) Gb/s. */
Topology make3DSwSwSwHomo();

/** 3D-SW_SW_SW_hetero: 16x8x8, aggr BW (1600, 800, 400) Gb/s. */
Topology make3DSwSwSwHetero();

/** 3D-FC_Ring_SW: 8x16x8, aggr BW (1400, 800, 400) Gb/s. */
Topology make3DFcRingSw();

/** 4D-Ring_SW_SW_SW: 4x4x8x8, aggr BW (2000, 1600, 800, 400) Gb/s. */
Topology make4DRingSwSwSw();

/** 4D-Ring_FC_Ring_SW: 4x8x4x8, aggr BW (3000, 1400, 1200, 800). */
Topology make4DRingFcRingSw();

/**
 * The "current topology" of Fig 4: a DGX-2-class 2D platform, 16x64,
 * 1200 Gb/s NVLink-class dim1, 100 Gb/s NIC dim2. Its large dim1:dim2
 * bandwidth gap is why baseline scheduling already achieves ~98%
 * utilization there (paper Sec 3.2).
 */
Topology makeCurrent2D();

/** All six next-generation platforms of Table 2, in table order. */
std::vector<Topology> nextGenTopologies();

/** nextGenTopologies() plus the current 2D platform (Fig 4 set). */
std::vector<Topology> allTopologies();

/**
 * Look up a preset by its paper name (case-insensitive), e.g.
 * "3D-SW_SW_SW_homo" or "Current-2D". Throws ConfigError if unknown.
 */
Topology byName(const std::string& name);

/** Names accepted by byName(), in canonical order. */
std::vector<std::string> presetNames();

} // namespace themis::presets

#endif // THEMIS_TOPOLOGY_PRESETS_HPP
