/**
 * @file
 * Multi-dimensional training-platform topology (paper Sec 3.1).
 *
 * A Topology is an ordered list of dimensions, dim1 first (innermost /
 * usually highest bandwidth). The notation P1 x P2 x ... x PD matches
 * the paper; the total NPU count is the product of all sizes.
 */

#ifndef THEMIS_TOPOLOGY_TOPOLOGY_HPP
#define THEMIS_TOPOLOGY_TOPOLOGY_HPP

#include <string>
#include <vector>

#include "topology/dimension.hpp"

namespace themis {

/** An immutable multi-dimensional network description. */
class Topology
{
  public:
    /**
     * Build a topology from dimension configs (dim1 first).
     * Validates every dimension; throws ConfigError on bad input.
     */
    Topology(std::string name, std::vector<DimensionConfig> dims);

    /** Platform name, e.g. "3D-SW_SW_SW_homo". */
    const std::string& name() const { return name_; }

    /** Number of dimensions D. */
    int numDims() const { return static_cast<int>(dims_.size()); }

    /** Dimension config, 0-based (dim index 0 == the paper's dim1). */
    const DimensionConfig& dim(int i) const;

    /** All dimensions, dim1 first. */
    const std::vector<DimensionConfig>& dims() const { return dims_; }

    /** Total NPU count (product of all dimension sizes). */
    long totalNpus() const;

    /** Sum of per-NPU aggregate bandwidth over all dimensions. */
    Bandwidth totalBandwidth() const;

    /** Size string "16x8x8". */
    std::string sizeString() const;

    /** Multi-line description (one line per dimension). */
    std::string describe() const;

  private:
    std::string name_;
    std::vector<DimensionConfig> dims_;
};

} // namespace themis

#endif // THEMIS_TOPOLOGY_TOPOLOGY_HPP
