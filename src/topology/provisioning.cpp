#include "topology/provisioning.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace themis {

std::string
provisionScenarioName(ProvisionScenario s)
{
    switch (s) {
      case ProvisionScenario::JustEnough:       return "Just-Enough";
      case ProvisionScenario::OverProvisioned:  return "Over-Provisioned";
      case ProvisionScenario::UnderProvisioned: return "Under-Provisioned";
    }
    THEMIS_PANIC("unknown ProvisionScenario");
}

PairProvisioning
classifyPair(const Topology& topo, int k, int l, double tolerance)
{
    THEMIS_ASSERT(0 <= k && k < l && l < topo.numDims(),
                  "bad dimension pair (" << k << ", " << l << ")");
    double shrink = 1.0;
    for (int i = k; i < l; ++i)
        shrink *= topo.dim(i).size;

    PairProvisioning p;
    p.dim_k = k;
    p.dim_l = l;
    p.ratio = topo.dim(k).bandwidth() / (shrink * topo.dim(l).bandwidth());
    if (p.ratio > 1.0 + tolerance)
        p.scenario = ProvisionScenario::UnderProvisioned;
    else if (p.ratio < 1.0 - tolerance)
        p.scenario = ProvisionScenario::OverProvisioned;
    else
        p.scenario = ProvisionScenario::JustEnough;
    return p;
}

std::vector<PairProvisioning>
classifyAllPairs(const Topology& topo, double tolerance)
{
    std::vector<PairProvisioning> out;
    for (int k = 0; k < topo.numDims(); ++k)
        for (int l = k + 1; l < topo.numDims(); ++l)
            out.push_back(classifyPair(topo, k, l, tolerance));
    return out;
}

bool
fullUtilizationPossible(const Topology& topo, double tolerance)
{
    for (const auto& p : classifyAllPairs(topo, tolerance)) {
        if (p.scenario == ProvisionScenario::UnderProvisioned)
            return false;
    }
    return true;
}

BaselineAnalysis
analyzeBaseline(const Topology& topo)
{
    BaselineAnalysis a;
    const int d = topo.numDims();
    a.stage_time_per_byte.resize(static_cast<std::size_t>(d));
    double prefix = 1.0; // product of sizes of earlier dimensions
    for (int k = 0; k < d; ++k) {
        const auto& dim = topo.dim(k);
        const double alpha =
            static_cast<double>(dim.size - 1) / dim.size;
        a.stage_time_per_byte[static_cast<std::size_t>(k)] =
            (1.0 / prefix) * alpha / dim.bandwidth();
        prefix *= dim.size;
    }
    const auto max_it = std::max_element(a.stage_time_per_byte.begin(),
                                         a.stage_time_per_byte.end());
    a.bottleneck_dim = static_cast<int>(
        std::distance(a.stage_time_per_byte.begin(), max_it));
    const double t_max = *max_it;

    a.dim_utilization.resize(static_cast<std::size_t>(d));
    double weighted = 0.0;
    Bandwidth total_bw = 0.0;
    for (int k = 0; k < d; ++k) {
        const double u =
            a.stage_time_per_byte[static_cast<std::size_t>(k)] / t_max;
        a.dim_utilization[static_cast<std::size_t>(k)] = u;
        weighted += u * topo.dim(k).bandwidth();
        total_bw += topo.dim(k).bandwidth();
    }
    a.weighted_utilization = weighted / total_bw;
    return a;
}

std::vector<Bandwidth>
baselineEfficientBandwidths(const Topology& topo)
{
    std::vector<Bandwidth> bws;
    double prefix = 1.0;
    const Bandwidth anchor = topo.dim(0).bandwidth();
    for (int k = 0; k < topo.numDims(); ++k) {
        bws.push_back(anchor / prefix);
        prefix *= topo.dim(k).size;
    }
    return bws;
}

} // namespace themis
