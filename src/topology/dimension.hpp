/**
 * @file
 * Per-dimension network description.
 *
 * A training platform is a D-dimensional hierarchical network (paper
 * Fig 1): every NPU belongs to one peer group per dimension, of size
 * P_i, wired as a ring, a fully-connected clique, or through a switch.
 * Table 2 of the paper describes each dimension by link technology
 * (bandwidth per link, links per NPU, per-step latency); the simulator
 * consumes the aggregate per-NPU bandwidth, the peer-group size and the
 * step latency.
 */

#ifndef THEMIS_TOPOLOGY_DIMENSION_HPP
#define THEMIS_TOPOLOGY_DIMENSION_HPP

#include <string>

#include "common/units.hpp"

namespace themis {

/** Physical wiring of one network dimension (paper Table 1). */
enum class DimKind {
    Ring,           ///< physical ring; ring collective algorithm
    FullyConnected, ///< clique; direct (one-step) algorithm
    Switch,         ///< switched; halving-doubling algorithm
};

/** Short name ("Ring", "FC", "SW") used in topology names. */
std::string dimKindName(DimKind kind);

/** Parse "Ring"/"FC"/"SW" (case-insensitive). Throws ConfigError. */
DimKind dimKindFromName(const std::string& name);

/**
 * Configuration of one network dimension.
 *
 * Bandwidth convention follows the paper: all values are
 * uni-directional, and the modelled quantity is the *aggregate*
 * bandwidth each NPU can drive into this dimension, i.e.
 * links_per_npu * link bandwidth (Table 2 "Aggr BW/NPU").
 */
struct DimensionConfig
{
    /** Physical wiring; selects the collective algorithm (Table 1). */
    DimKind kind = DimKind::Switch;

    /** Peer-group size P_i (number of NPUs communicating here). */
    int size = 0;

    /** Per-link bandwidth in Gbit/s, uni-directional. */
    double link_bw_gbps = 0.0;

    /** Links each NPU drives into this dimension. */
    int links_per_npu = 1;

    /**
     * Per-step latency in nanoseconds: the direct NPU-to-NPU latency
     * for a minimum-length message (paper Table 2 "Network Latency",
     * the step_latency of Sec 4.4).
     */
    TimeNs step_latency_ns = 0.0;

    /**
     * In-network collective offload (paper Sec 4.5): the dimension's
     * switch reduces/multicasts, cutting the wire traffic n_K (each
     * NPU streams its data once instead of (P-1)/P twice per
     * All-Reduce) and the fixed delay A_K (two switch traversals
     * instead of log2(P) steps). Only meaningful for Switch
     * dimensions; offloaded switches also lift the power-of-two size
     * requirement.
     */
    bool in_network_offload = false;

    /** Aggregate per-NPU bandwidth in bytes/ns. */
    Bandwidth
    bandwidth() const
    {
        return gbpsToBw(link_bw_gbps * links_per_npu);
    }

    /**
     * Validate ranges and algorithm requirements (e.g. switch groups
     * must be powers of two for halving-doubling). Throws ConfigError.
     */
    void validate() const;

    /** One-line human-readable description. */
    std::string describe() const;
};

/** True when @p v is a positive power of two. */
bool isPowerOfTwo(int v);

} // namespace themis

#endif // THEMIS_TOPOLOGY_DIMENSION_HPP
