#include "topology/dimension.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis {

std::string
dimKindName(DimKind kind)
{
    switch (kind) {
      case DimKind::Ring:           return "Ring";
      case DimKind::FullyConnected: return "FC";
      case DimKind::Switch:         return "SW";
    }
    THEMIS_PANIC("unknown DimKind " << static_cast<int>(kind));
}

DimKind
dimKindFromName(const std::string& name)
{
    const std::string n = toLower(name);
    if (n == "ring")
        return DimKind::Ring;
    if (n == "fc" || n == "fullyconnected")
        return DimKind::FullyConnected;
    if (n == "sw" || n == "switch")
        return DimKind::Switch;
    THEMIS_FATAL("unknown dimension kind '" << name
                                            << "' (use Ring/FC/SW)");
}

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

void
DimensionConfig::validate() const
{
    if (size < 2)
        THEMIS_FATAL("dimension size must be >= 2, got " << size);
    // Order the comparisons so NaN (which fails every '<') is caught
    // by the explicit finiteness check rather than slipping through.
    if (!std::isfinite(link_bw_gbps) || link_bw_gbps <= 0.0)
        THEMIS_FATAL("link bandwidth must be positive and finite, got "
                     << link_bw_gbps);
    if (links_per_npu < 1)
        THEMIS_FATAL("links per NPU must be >= 1, got " << links_per_npu);
    if (!std::isfinite(step_latency_ns) || step_latency_ns < 0.0)
        THEMIS_FATAL("step latency must be >= 0 and finite, got "
                     << step_latency_ns);
    switch (kind) {
      case DimKind::Ring:
        // Rings use at most two directions' worth of neighbour links;
        // more links model parallel rings, which is fine.
        break;
      case DimKind::FullyConnected:
        if (links_per_npu > size - 1) {
            THEMIS_FATAL("fully-connected dimension of size "
                         << size << " supports at most " << size - 1
                         << " links per NPU, got " << links_per_npu);
        }
        break;
      case DimKind::Switch:
        if (!in_network_offload && !isPowerOfTwo(size)) {
            THEMIS_FATAL("switch dimension size must be a power of two "
                         "for halving-doubling, got " << size);
        }
        break;
    }
    if (in_network_offload && kind != DimKind::Switch)
        THEMIS_FATAL("in-network offload requires a switch dimension");
}

std::string
DimensionConfig::describe() const
{
    std::ostringstream oss;
    oss << dimKindName(kind) << "(P=" << size << ", "
        << link_bw_gbps << " Gb/s x" << links_per_npu << " = "
        << fmtGbps(bandwidth()) << ", step " << step_latency_ns << " ns"
        << (in_network_offload ? ", offload" : "") << ")";
    return oss.str();
}

} // namespace themis
