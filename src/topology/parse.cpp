#include "topology/parse.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis {

namespace {

double
parseNumber(const std::string& text, const std::string& what)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(text, &used);
        if (used != text.size())
            THEMIS_FATAL("trailing characters in " << what << " '"
                                                   << text << "'");
        return v;
    } catch (const std::invalid_argument&) {
        THEMIS_FATAL("cannot parse " << what << " '" << text << "'");
    } catch (const std::out_of_range&) {
        THEMIS_FATAL(what << " '" << text << "' out of range");
    }
}

DimensionConfig
parseDimension(const std::string& field)
{
    auto parts = split(field, ':');
    if (parts.size() < 3)
        THEMIS_FATAL("dimension '" << field
                                   << "' needs kind:size:bw at least");

    DimensionConfig d;
    d.kind = dimKindFromName(parts[0]);
    d.size = static_cast<int>(parseNumber(parts[1], "dimension size"));

    // Bandwidth with an optional 'x<links>' suffix.
    const std::string& bw_field = parts[2];
    const auto x = bw_field.find('x');
    if (x == std::string::npos) {
        d.link_bw_gbps = parseNumber(bw_field, "bandwidth");
        d.links_per_npu = 1;
    } else {
        d.link_bw_gbps =
            parseNumber(bw_field.substr(0, x), "bandwidth");
        d.links_per_npu = static_cast<int>(
            parseNumber(bw_field.substr(x + 1), "links per NPU"));
    }

    d.step_latency_ns = 700.0;
    std::size_t next = 3;
    if (next < parts.size() && toLower(parts[next]) != "offload") {
        d.step_latency_ns = parseNumber(parts[next], "step latency");
        ++next;
    }
    if (next < parts.size()) {
        if (toLower(parts[next]) != "offload")
            THEMIS_FATAL("unexpected dimension attribute '"
                         << parts[next] << "'");
        d.in_network_offload = true;
        ++next;
    }
    if (next != parts.size())
        THEMIS_FATAL("too many fields in dimension '" << field << "'");
    d.validate();
    return d;
}

} // namespace

Topology
parseTopology(const std::string& name, const std::string& spec)
{
    if (spec.empty())
        THEMIS_FATAL("empty topology specification");
    std::vector<DimensionConfig> dims;
    for (const auto& field : split(spec, ','))
        dims.push_back(parseDimension(field));
    return Topology(name, std::move(dims));
}

std::string
topologySpec(const Topology& topo)
{
    std::ostringstream oss;
    for (int i = 0; i < topo.numDims(); ++i) {
        const auto& d = topo.dim(i);
        if (i > 0)
            oss << ",";
        oss << dimKindName(d.kind) << ":" << d.size << ":"
            << fmtDouble(d.link_bw_gbps, 0);
        if (d.links_per_npu != 1)
            oss << "x" << d.links_per_npu;
        oss << ":" << fmtDouble(d.step_latency_ns, 0);
        if (d.in_network_offload)
            oss << ":offload";
    }
    return oss.str();
}

} // namespace themis
