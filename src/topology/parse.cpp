#include "topology/parse.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis {

namespace {

double
parseNumber(const std::string& text, const std::string& what)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(text, &used);
        if (used != text.size())
            THEMIS_FATAL("trailing characters in " << what << " '"
                                                   << text << "'");
        // std::stod happily accepts "nan" and "inf", and NaN then
        // slips past every '<= 0' validation downstream.
        if (!std::isfinite(v))
            THEMIS_FATAL(what << " '" << text << "' must be finite");
        return v;
    } catch (const std::invalid_argument&) {
        THEMIS_FATAL("cannot parse " << what << " '" << text << "'");
    } catch (const std::out_of_range&) {
        THEMIS_FATAL(what << " '" << text << "' out of range");
    }
}

int
parseInt(const std::string& text, const std::string& what)
{
    const double v = parseNumber(text, what);
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v)
        THEMIS_FATAL(what << " '" << text << "' must be an integer");
    return i;
}

DimensionConfig
parseDimension(const std::string& field)
{
    auto parts = split(field, ':');
    if (parts.size() < 3)
        THEMIS_FATAL("dimension '" << field
                                   << "' needs kind:size:bw at least");

    DimensionConfig d;
    d.kind = dimKindFromName(parts[0]);
    d.size = parseInt(parts[1], "dimension size");

    // Bandwidth with an optional 'x<links>' suffix.
    const std::string& bw_field = parts[2];
    const auto x = bw_field.find('x');
    if (x == std::string::npos) {
        d.link_bw_gbps = parseNumber(bw_field, "bandwidth");
        d.links_per_npu = 1;
    } else {
        d.link_bw_gbps =
            parseNumber(bw_field.substr(0, x), "bandwidth");
        d.links_per_npu =
            parseInt(bw_field.substr(x + 1), "links per NPU");
    }
    if (d.link_bw_gbps <= 0.0)
        THEMIS_FATAL("field 'bandwidth': must be positive, got '"
                     << bw_field << "'");

    d.step_latency_ns = 700.0;
    std::size_t next = 3;
    if (next < parts.size() && toLower(parts[next]) != "offload") {
        d.step_latency_ns = parseNumber(parts[next], "step latency");
        ++next;
    }
    if (next < parts.size()) {
        if (toLower(parts[next]) != "offload")
            THEMIS_FATAL("unexpected dimension attribute '"
                         << parts[next] << "'");
        d.in_network_offload = true;
        ++next;
    }
    if (next != parts.size())
        THEMIS_FATAL("too many fields in dimension '" << field << "'");
    d.validate();
    return d;
}

} // namespace

Topology
parseTopology(const std::string& name, const std::string& spec)
{
    if (spec.empty())
        THEMIS_FATAL("empty topology specification");
    std::vector<DimensionConfig> dims;
    const auto fields = split(spec, ',');
    for (std::size_t i = 0; i < fields.size(); ++i) {
        try {
            dims.push_back(parseDimension(fields[i]));
        } catch (const ConfigError& e) {
            THEMIS_FATAL("topology dimension " << i << " ('"
                                               << fields[i]
                                               << "'): " << e.what());
        }
    }
    return Topology(name, std::move(dims));
}

std::string
topologySpec(const Topology& topo)
{
    std::ostringstream oss;
    for (int i = 0; i < topo.numDims(); ++i) {
        const auto& d = topo.dim(i);
        if (i > 0)
            oss << ",";
        oss << dimKindName(d.kind) << ":" << d.size << ":"
            << fmtDouble(d.link_bw_gbps, 0);
        if (d.links_per_npu != 1)
            oss << "x" << d.links_per_npu;
        oss << ":" << fmtDouble(d.step_latency_ns, 0);
        if (d.in_network_offload)
            oss << ":offload";
    }
    return oss.str();
}

} // namespace themis
