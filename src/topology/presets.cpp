#include "topology/presets.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis::presets {

namespace {

DimensionConfig
dim(DimKind kind, int size, double link_bw_gbps, int links, TimeNs lat)
{
    DimensionConfig d;
    d.kind = kind;
    d.size = size;
    d.link_bw_gbps = link_bw_gbps;
    d.links_per_npu = links;
    d.step_latency_ns = lat;
    return d;
}

} // namespace

Topology
make2DSwSw()
{
    return Topology("2D-SW_SW",
                    {dim(DimKind::Switch, 16, 200.0, 6, 700.0),
                     dim(DimKind::Switch, 64, 800.0, 1, 1700.0)});
}

Topology
make3DSwSwSwHomo()
{
    return Topology("3D-SW_SW_SW_homo",
                    {dim(DimKind::Switch, 16, 200.0, 4, 700.0),
                     dim(DimKind::Switch, 8, 200.0, 4, 700.0),
                     dim(DimKind::Switch, 8, 800.0, 1, 1700.0)});
}

Topology
make3DSwSwSwHetero()
{
    return Topology("3D-SW_SW_SW_hetero",
                    {dim(DimKind::Switch, 16, 200.0, 8, 700.0),
                     dim(DimKind::Switch, 8, 200.0, 4, 700.0),
                     dim(DimKind::Switch, 8, 400.0, 1, 1700.0)});
}

Topology
make3DFcRingSw()
{
    return Topology("3D-FC_Ring_SW",
                    {dim(DimKind::FullyConnected, 8, 200.0, 7, 700.0),
                     dim(DimKind::Ring, 16, 200.0, 4, 700.0),
                     dim(DimKind::Switch, 8, 400.0, 1, 1700.0)});
}

Topology
make4DRingSwSwSw()
{
    return Topology("4D-Ring_SW_SW_SW",
                    {dim(DimKind::Ring, 4, 1000.0, 2, 20.0),
                     dim(DimKind::Switch, 4, 200.0, 8, 700.0),
                     dim(DimKind::Switch, 8, 200.0, 4, 700.0),
                     dim(DimKind::Switch, 8, 400.0, 1, 1700.0)});
}

Topology
make4DRingFcRingSw()
{
    return Topology("4D-Ring_FC_Ring_SW",
                    {dim(DimKind::Ring, 4, 1500.0, 2, 20.0),
                     dim(DimKind::FullyConnected, 8, 200.0, 7, 700.0),
                     dim(DimKind::Ring, 4, 200.0, 6, 700.0),
                     dim(DimKind::Switch, 8, 800.0, 1, 1700.0)});
}

Topology
makeCurrent2D()
{
    return Topology("Current-2D",
                    {dim(DimKind::Switch, 16, 200.0, 6, 700.0),
                     dim(DimKind::Switch, 64, 100.0, 1, 1700.0)});
}

std::vector<Topology>
nextGenTopologies()
{
    return {make2DSwSw(),        make3DSwSwSwHomo(),
            make3DSwSwSwHetero(), make3DFcRingSw(),
            make4DRingSwSwSw(),  make4DRingFcRingSw()};
}

std::vector<Topology>
allTopologies()
{
    auto all = nextGenTopologies();
    all.insert(all.begin(), makeCurrent2D());
    return all;
}

Topology
byName(const std::string& name)
{
    const std::string n = toLower(name);
    for (auto& t : allTopologies()) {
        if (toLower(t.name()) == n)
            return t;
    }
    THEMIS_FATAL("unknown topology preset '"
                 << name << "'; known: " << join(presetNames(), ", "));
}

std::vector<std::string>
presetNames()
{
    std::vector<std::string> names;
    for (const auto& t : allTopologies())
        names.push_back(t.name());
    return names;
}

} // namespace themis::presets
