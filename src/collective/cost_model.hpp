/**
 * @file
 * Closed-form timing of one chunk operation on one dimension
 * (paper Sec 4.4): Latency(dimK) = A_K + N_K * B_K (+ idle, which is a
 * property of the runtime schedule, not of a single op).
 */

#ifndef THEMIS_COLLECTIVE_COST_MODEL_HPP
#define THEMIS_COLLECTIVE_COST_MODEL_HPP

#include "collective/algorithms.hpp"
#include "collective/phase.hpp"
#include "topology/dimension.hpp"

namespace themis {

/**
 * Serialization time only (N * B): wire bytes at the dimension's
 * aggregate bandwidth, excluding step latencies.
 */
TimeNs chunkTransferTime(Phase phase, Bytes entering,
                         const DimensionConfig& dim);

/** Fixed delay A_K for one phase: steps * step latency (Table 1 algo). */
TimeNs phaseFixedDelay(Phase phase, const DimensionConfig& dim);

/**
 * Fixed delay A_K for a whole collective type on this dimension; an
 * All-Reduce pays both its RS and AG stage latencies (e.g. ring-based
 * All-Reduce takes 2P-2 steps, paper Sec 4.4).
 */
TimeNs typeFixedDelay(CollectiveType type, const DimensionConfig& dim);

/**
 * Complete single-op time on an otherwise idle dimension:
 * A + N * B, summed over the algorithm's step plan.
 */
TimeNs chunkOpTime(Phase phase, Bytes entering,
                   const DimensionConfig& dim);

} // namespace themis

#endif // THEMIS_COLLECTIVE_COST_MODEL_HPP
