/**
 * @file
 * Coordinate algebra of the multi-dimensional NPU machine.
 *
 * NPU ids enumerate the machine with dim1 innermost (fastest varying),
 * matching Fig 1 of the paper: NPUs sharing all coordinates except
 * dimension d form d's peer group.
 *
 * This is the substrate of the data-plane executor: the timing model
 * never needs individual NPUs (symmetric platforms), but semantic
 * validation of collective algorithms and schedules does.
 */

#ifndef THEMIS_COLLECTIVE_DATAPLANE_LOGICAL_MACHINE_HPP
#define THEMIS_COLLECTIVE_DATAPLANE_LOGICAL_MACHINE_HPP

#include <vector>

namespace themis {

/** Id/coordinate mapping for a P1 x P2 x ... x PD machine. */
class LogicalMachine
{
  public:
    /** @param dim_sizes peer-group sizes, dim1 first; each >= 2. */
    explicit LogicalMachine(std::vector<int> dim_sizes);

    /** Number of dimensions D. */
    int numDims() const { return static_cast<int>(sizes_.size()); }

    /** Peer-group size of dimension @p d (0-based). */
    int dimSize(int d) const;

    /** Total NPU count. */
    int numNpus() const { return total_; }

    /** Coordinates of @p npu, one per dimension. */
    std::vector<int> coordsOf(int npu) const;

    /** NPU id at @p coords. */
    int npuAt(const std::vector<int>& coords) const;

    /**
     * Peer group of @p npu along dimension @p d: NPU ids ordered by
     * their coordinate in d (so index in the list == position).
     */
    std::vector<int> peerGroup(int npu, int d) const;

    /** Position of @p npu within its dimension-@p d peer group. */
    int positionInGroup(int npu, int d) const;

    /**
     * All peer groups of dimension @p d (each a vector of NPU ids);
     * groups partition the machine.
     */
    std::vector<std::vector<int>> allGroups(int d) const;

  private:
    std::vector<int> sizes_;
    std::vector<int> strides_;
    int total_ = 1;
};

} // namespace themis

#endif // THEMIS_COLLECTIVE_DATAPLANE_LOGICAL_MACHINE_HPP
