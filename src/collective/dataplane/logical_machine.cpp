#include "collective/dataplane/logical_machine.hpp"

#include "common/error.hpp"

namespace themis {

LogicalMachine::LogicalMachine(std::vector<int> dim_sizes)
    : sizes_(std::move(dim_sizes))
{
    if (sizes_.empty())
        THEMIS_FATAL("logical machine needs at least one dimension");
    strides_.resize(sizes_.size());
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
        if (sizes_[d] < 2)
            THEMIS_FATAL("dimension size must be >= 2, got " << sizes_[d]);
        strides_[d] = total_;
        total_ *= sizes_[d];
    }
}

int
LogicalMachine::dimSize(int d) const
{
    THEMIS_ASSERT(d >= 0 && d < numDims(), "bad dimension " << d);
    return sizes_[static_cast<std::size_t>(d)];
}

std::vector<int>
LogicalMachine::coordsOf(int npu) const
{
    THEMIS_ASSERT(npu >= 0 && npu < total_, "bad NPU id " << npu);
    std::vector<int> coords(sizes_.size());
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
        coords[d] = (npu / strides_[d]) % sizes_[d];
    }
    return coords;
}

int
LogicalMachine::npuAt(const std::vector<int>& coords) const
{
    THEMIS_ASSERT(coords.size() == sizes_.size(),
                  "coordinate rank mismatch");
    int id = 0;
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
        THEMIS_ASSERT(coords[d] >= 0 && coords[d] < sizes_[d],
                      "coordinate " << coords[d] << " out of range in dim "
                                    << d);
        id += coords[d] * strides_[d];
    }
    return id;
}

std::vector<int>
LogicalMachine::peerGroup(int npu, int d) const
{
    THEMIS_ASSERT(d >= 0 && d < numDims(), "bad dimension " << d);
    auto coords = coordsOf(npu);
    std::vector<int> group;
    group.reserve(static_cast<std::size_t>(sizes_[static_cast<std::size_t>(d)]));
    for (int c = 0; c < sizes_[static_cast<std::size_t>(d)]; ++c) {
        coords[static_cast<std::size_t>(d)] = c;
        group.push_back(npuAt(coords));
    }
    return group;
}

int
LogicalMachine::positionInGroup(int npu, int d) const
{
    return coordsOf(npu)[static_cast<std::size_t>(d)];
}

std::vector<std::vector<int>>
LogicalMachine::allGroups(int d) const
{
    THEMIS_ASSERT(d >= 0 && d < numDims(), "bad dimension " << d);
    std::vector<std::vector<int>> groups;
    std::vector<bool> seen(static_cast<std::size_t>(total_), false);
    for (int npu = 0; npu < total_; ++npu) {
        if (seen[static_cast<std::size_t>(npu)])
            continue;
        auto group = peerGroup(npu, d);
        for (int member : group)
            seen[static_cast<std::size_t>(member)] = true;
        groups.push_back(std::move(group));
    }
    return groups;
}

} // namespace themis
