#include "collective/dataplane/dataplane_collectives.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace themis {

namespace {

/** Slice @p seg into @p parts equal consecutive pieces. */
std::vector<DataSegment>
sliceSegment(const DataSegment& seg, int parts)
{
    THEMIS_ASSERT(parts > 0, "bad slice count " << parts);
    THEMIS_ASSERT(seg.size() % static_cast<std::size_t>(parts) == 0,
                  "segment of " << seg.size() << " elements not divisible"
                                << " into " << parts << " blocks");
    const std::size_t block = seg.size() / static_cast<std::size_t>(parts);
    std::vector<DataSegment> out(static_cast<std::size_t>(parts));
    for (int p = 0; p < parts; ++p) {
        auto& s = out[static_cast<std::size_t>(p)];
        const std::size_t base = static_cast<std::size_t>(p) * block;
        s.offsets.assign(seg.offsets.begin() + static_cast<long>(base),
                         seg.offsets.begin() + static_cast<long>(base + block));
        s.values.assign(seg.values.begin() + static_cast<long>(base),
                        seg.values.begin() + static_cast<long>(base + block));
    }
    return out;
}

/** Elementwise add @p src into @p dst; offsets must match exactly. */
void
accumulate(DataSegment& dst, const DataSegment& src)
{
    THEMIS_ASSERT(dst.offsets == src.offsets,
                  "accumulate offset mismatch (" << dst.size() << " vs "
                                                 << src.size() << ")");
    for (std::size_t i = 0; i < dst.values.size(); ++i)
        dst.values[i] += src.values[i];
}

/** Merge disjoint sorted segments into one sorted segment. */
DataSegment
mergeSegments(std::vector<DataSegment> parts)
{
    DataSegment out;
    std::size_t total = 0;
    for (const auto& p : parts)
        total += p.size();
    out.offsets.reserve(total);
    out.values.reserve(total);
    // Sort parts by first offset, then do a full merge with a
    // disjointness check (parts can interleave after strided shards).
    std::vector<std::size_t> cursor(parts.size(), 0);
    for (std::size_t produced = 0; produced < total; ++produced) {
        std::size_t best = parts.size();
        std::int64_t best_off = 0;
        for (std::size_t p = 0; p < parts.size(); ++p) {
            if (cursor[p] >= parts[p].size())
                continue;
            const std::int64_t off = parts[p].offsets[cursor[p]];
            if (best == parts.size() || off < best_off) {
                best = p;
                best_off = off;
            }
        }
        THEMIS_ASSERT(best < parts.size(), "merge ran dry");
        THEMIS_ASSERT(out.offsets.empty() || out.offsets.back() < best_off,
                      "merge segments overlap at offset " << best_off);
        out.offsets.push_back(best_off);
        out.values.push_back(parts[best].values[cursor[best]]);
        ++cursor[best];
    }
    return out;
}

} // namespace

DataPlane::DataPlane(const LogicalMachine& machine,
                     std::vector<DimKind> kinds, std::int64_t elements,
                     std::vector<bool> offload)
    : machine_(machine), kinds_(std::move(kinds)), elements_(elements),
      offload_(std::move(offload)),
      buffers_(static_cast<std::size_t>(machine.numNpus()))
{
    if (static_cast<int>(kinds_.size()) != machine_.numDims())
        THEMIS_FATAL("need one algorithm kind per dimension: got "
                     << kinds_.size() << " for " << machine_.numDims()
                     << " dims");
    if (offload_.empty())
        offload_.assign(kinds_.size(), false);
    if (offload_.size() != kinds_.size())
        THEMIS_FATAL("offload flags rank mismatch");
    for (std::size_t d = 0; d < kinds_.size(); ++d) {
        if (offload_[d] && kinds_[d] != DimKind::Switch)
            THEMIS_FATAL("in-network offload requires a switch "
                         "dimension");
    }
    if (elements_ <= 0 || elements_ % machine_.numNpus() != 0)
        THEMIS_FATAL("element count " << elements_
                                      << " must be a positive multiple of "
                                      << machine_.numNpus());
}

void
DataPlane::initFullReplicas(const Seeder& f)
{
    for (int npu = 0; npu < machine_.numNpus(); ++npu) {
        auto& buf = buffers_[static_cast<std::size_t>(npu)];
        buf.offsets.resize(static_cast<std::size_t>(elements_));
        buf.values.resize(static_cast<std::size_t>(elements_));
        for (std::int64_t o = 0; o < elements_; ++o) {
            buf.offsets[static_cast<std::size_t>(o)] = o;
            buf.values[static_cast<std::size_t>(o)] = f(npu, o);
        }
    }
}

void
DataPlane::initShards(const Seeder& f)
{
    const std::int64_t shard = elements_ / machine_.numNpus();
    for (int npu = 0; npu < machine_.numNpus(); ++npu) {
        auto& buf = buffers_[static_cast<std::size_t>(npu)];
        buf.offsets.resize(static_cast<std::size_t>(shard));
        buf.values.resize(static_cast<std::size_t>(shard));
        for (std::int64_t i = 0; i < shard; ++i) {
            const std::int64_t o = npu * shard + i;
            buf.offsets[static_cast<std::size_t>(i)] = o;
            buf.values[static_cast<std::size_t>(i)] = f(npu, o);
        }
    }
}

void
DataPlane::reduceScatterDim(int d)
{
    for (const auto& group : machine_.allGroups(d)) {
        if (offload_[static_cast<std::size_t>(d)]) {
            offloadReduceScatterGroup(group);
            continue;
        }
        switch (kinds_[static_cast<std::size_t>(d)]) {
          case DimKind::Ring:
            ringReduceScatterGroup(group);
            break;
          case DimKind::FullyConnected:
            directReduceScatterGroup(group);
            break;
          case DimKind::Switch:
            hdReduceScatterGroup(group);
            break;
        }
    }
}

void
DataPlane::allGatherDim(int d)
{
    for (const auto& group : machine_.allGroups(d)) {
        if (offload_[static_cast<std::size_t>(d)]) {
            offloadAllGatherGroup(group);
            continue;
        }
        switch (kinds_[static_cast<std::size_t>(d)]) {
          case DimKind::Ring:
            ringAllGatherGroup(group);
            break;
          case DimKind::FullyConnected:
            directAllGatherGroup(group);
            break;
          case DimKind::Switch:
            hdAllGatherGroup(group);
            break;
        }
    }
}

void
DataPlane::runAllReduce(const std::vector<int>& rs_order,
                        const std::vector<int>& ag_order)
{
    THEMIS_ASSERT(static_cast<int>(rs_order.size()) == machine_.numDims() &&
                      static_cast<int>(ag_order.size()) == machine_.numDims(),
                  "All-Reduce schedule must cover every dimension");
    for (int d : rs_order)
        reduceScatterDim(d);
    for (int d : ag_order)
        allGatherDim(d);
}

const DataSegment&
DataPlane::segment(int npu) const
{
    THEMIS_ASSERT(npu >= 0 && npu < machine_.numNpus(),
                  "bad NPU id " << npu);
    return buffers_[static_cast<std::size_t>(npu)];
}

// ------------------------------------------------------ ring algorithm

void
DataPlane::ringReduceScatterGroup(const std::vector<int>& group)
{
    const int p = static_cast<int>(group.size());
    // Every member holds the same offsets; slice each buffer into P
    // position-indexed blocks.
    std::vector<std::vector<DataSegment>> blocks;
    blocks.reserve(group.size());
    for (int member : group) {
        blocks.push_back(
            sliceSegment(buffers_[static_cast<std::size_t>(member)], p));
    }
    // Step s: member j sends block (j-s) mod p to member (j+1) mod p,
    // which accumulates it. Messages of one step are exchanged
    // simultaneously: copy out, then apply.
    for (int s = 0; s < p - 1; ++s) {
        std::vector<DataSegment> in_flight(static_cast<std::size_t>(p));
        for (int j = 0; j < p; ++j) {
            const int idx = ((j - s) % p + p) % p;
            in_flight[static_cast<std::size_t>(j)] =
                blocks[static_cast<std::size_t>(j)]
                      [static_cast<std::size_t>(idx)];
        }
        for (int j = 0; j < p; ++j) {
            const int from = (j - 1 + p) % p;
            const int idx = ((j - 1 - s) % p + p) % p;
            accumulate(blocks[static_cast<std::size_t>(j)]
                             [static_cast<std::size_t>(idx)],
                       in_flight[static_cast<std::size_t>(from)]);
        }
    }
    // Member j ends owning fully reduced block (j+1) mod p.
    for (int j = 0; j < p; ++j) {
        const int keep = (j + 1) % p;
        buffers_[static_cast<std::size_t>(group[static_cast<std::size_t>(j)])] =
            blocks[static_cast<std::size_t>(j)]
                  [static_cast<std::size_t>(keep)];
    }
}

void
DataPlane::ringAllGatherGroup(const std::vector<int>& group)
{
    const int p = static_cast<int>(group.size());
    // held[j][k] = shard originally owned by position k, if j has it.
    std::vector<std::vector<DataSegment>> held(
        static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
        held[static_cast<std::size_t>(j)].resize(
            static_cast<std::size_t>(p));
        held[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)] =
            buffers_[static_cast<std::size_t>(
                group[static_cast<std::size_t>(j)])];
    }
    // Step s: member j forwards shard (j-s) mod p to (j+1) mod p.
    for (int s = 0; s < p - 1; ++s) {
        for (int j = 0; j < p; ++j) {
            const int idx = ((j - 1 - s) % p + p) % p;
            const int from = (j - 1 + p) % p;
            held[static_cast<std::size_t>(j)][static_cast<std::size_t>(idx)] =
                held[static_cast<std::size_t>(from)]
                    [static_cast<std::size_t>(idx)];
        }
    }
    for (int j = 0; j < p; ++j) {
        buffers_[static_cast<std::size_t>(
            group[static_cast<std::size_t>(j)])] =
            mergeSegments(held[static_cast<std::size_t>(j)]);
    }
}

// ---------------------------------------------------- direct algorithm

void
DataPlane::directReduceScatterGroup(const std::vector<int>& group)
{
    const int p = static_cast<int>(group.size());
    std::vector<std::vector<DataSegment>> blocks;
    blocks.reserve(group.size());
    for (int member : group) {
        blocks.push_back(
            sliceSegment(buffers_[static_cast<std::size_t>(member)], p));
    }
    // Every member receives block j from every peer and reduces.
    for (int j = 0; j < p; ++j) {
        DataSegment result =
            blocks[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)];
        for (int k = 0; k < p; ++k) {
            if (k == j)
                continue;
            accumulate(result, blocks[static_cast<std::size_t>(k)]
                                     [static_cast<std::size_t>(j)]);
        }
        buffers_[static_cast<std::size_t>(
            group[static_cast<std::size_t>(j)])] = std::move(result);
    }
}

void
DataPlane::directAllGatherGroup(const std::vector<int>& group)
{
    std::vector<DataSegment> all;
    all.reserve(group.size());
    for (int member : group)
        all.push_back(buffers_[static_cast<std::size_t>(member)]);
    DataSegment merged = mergeSegments(std::move(all));
    for (int member : group)
        buffers_[static_cast<std::size_t>(member)] = merged;
}

// ------------------------------------------------ halving-doubling

void
DataPlane::hdReduceScatterGroup(const std::vector<int>& group)
{
    const int p = static_cast<int>(group.size());
    THEMIS_ASSERT(isPowerOfTwo(p),
                  "halving-doubling needs power-of-two group, got " << p);
    // Recursive halving, masks P/2 down to 1. Pairs exchange the half
    // they are not keeping; simultaneous exchange within each step.
    for (int mask = p / 2; mask >= 1; mask /= 2) {
        std::vector<DataSegment> outgoing(static_cast<std::size_t>(p));
        std::vector<DataSegment> keeping(static_cast<std::size_t>(p));
        for (int j = 0; j < p; ++j) {
            auto halves = sliceSegment(
                buffers_[static_cast<std::size_t>(
                    group[static_cast<std::size_t>(j)])],
                2);
            const bool keep_upper = (j & mask) != 0;
            keeping[static_cast<std::size_t>(j)] =
                std::move(halves[keep_upper ? 1 : 0]);
            outgoing[static_cast<std::size_t>(j)] =
                std::move(halves[keep_upper ? 0 : 1]);
        }
        for (int j = 0; j < p; ++j) {
            const int partner = j ^ mask;
            accumulate(keeping[static_cast<std::size_t>(j)],
                       outgoing[static_cast<std::size_t>(partner)]);
            buffers_[static_cast<std::size_t>(
                group[static_cast<std::size_t>(j)])] =
                std::move(keeping[static_cast<std::size_t>(j)]);
        }
    }
}

void
DataPlane::hdAllGatherGroup(const std::vector<int>& group)
{
    const int p = static_cast<int>(group.size());
    THEMIS_ASSERT(isPowerOfTwo(p),
                  "halving-doubling needs power-of-two group, got " << p);
    // Recursive doubling, masks 1 up to P/2: pairs swap entire
    // holdings and merge.
    for (int mask = 1; mask < p; mask *= 2) {
        std::vector<DataSegment> snapshot(static_cast<std::size_t>(p));
        for (int j = 0; j < p; ++j) {
            snapshot[static_cast<std::size_t>(j)] =
                buffers_[static_cast<std::size_t>(
                    group[static_cast<std::size_t>(j)])];
        }
        for (int j = 0; j < p; ++j) {
            const int partner = j ^ mask;
            std::vector<DataSegment> parts;
            parts.push_back(snapshot[static_cast<std::size_t>(j)]);
            parts.push_back(snapshot[static_cast<std::size_t>(partner)]);
            buffers_[static_cast<std::size_t>(
                group[static_cast<std::size_t>(j)])] =
                mergeSegments(std::move(parts));
        }
    }
}

// ------------------------------------------------ in-network offload

void
DataPlane::offloadReduceScatterGroup(const std::vector<int>& group)
{
    // The switch receives every member's data, reduces, and returns
    // each member its position-indexed slice (Sec 4.5).
    const int p = static_cast<int>(group.size());
    DataSegment reduced =
        buffers_[static_cast<std::size_t>(group[0])];
    for (int j = 1; j < p; ++j) {
        accumulate(reduced,
                   buffers_[static_cast<std::size_t>(
                       group[static_cast<std::size_t>(j)])]);
    }
    auto slices = sliceSegment(reduced, p);
    for (int j = 0; j < p; ++j) {
        buffers_[static_cast<std::size_t>(
            group[static_cast<std::size_t>(j)])] =
            std::move(slices[static_cast<std::size_t>(j)]);
    }
}

void
DataPlane::offloadAllGatherGroup(const std::vector<int>& group)
{
    // Every member streams its shard up; the switch multicasts the
    // union back to all of them.
    std::vector<DataSegment> all;
    all.reserve(group.size());
    for (int member : group)
        all.push_back(buffers_[static_cast<std::size_t>(member)]);
    DataSegment merged = mergeSegments(std::move(all));
    for (int member : group)
        buffers_[static_cast<std::size_t>(member)] = merged;
}

// -------------------------------------------------------- verification

bool
DataPlane::verifyAllReduced(const Seeder& f) const
{
    std::vector<DataValue> expected(static_cast<std::size_t>(elements_),
                                    0);
    for (int npu = 0; npu < machine_.numNpus(); ++npu)
        for (std::int64_t o = 0; o < elements_; ++o)
            expected[static_cast<std::size_t>(o)] += f(npu, o);

    for (int npu = 0; npu < machine_.numNpus(); ++npu) {
        const auto& buf = buffers_[static_cast<std::size_t>(npu)];
        if (buf.size() != static_cast<std::size_t>(elements_))
            return false;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            if (buf.offsets[i] != static_cast<std::int64_t>(i))
                return false;
            if (buf.values[i] != expected[i])
                return false;
        }
    }
    return true;
}

bool
DataPlane::verifyReduceScattered(const Seeder& f) const
{
    std::vector<DataValue> expected(static_cast<std::size_t>(elements_),
                                    0);
    for (int npu = 0; npu < machine_.numNpus(); ++npu)
        for (std::int64_t o = 0; o < elements_; ++o)
            expected[static_cast<std::size_t>(o)] += f(npu, o);

    std::vector<int> covered(static_cast<std::size_t>(elements_), 0);
    for (int npu = 0; npu < machine_.numNpus(); ++npu) {
        const auto& buf = buffers_[static_cast<std::size_t>(npu)];
        if (buf.size() !=
            static_cast<std::size_t>(elements_ / machine_.numNpus()))
            return false;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            const auto o = static_cast<std::size_t>(buf.offsets[i]);
            if (buf.values[i] != expected[o])
                return false;
            ++covered[o];
        }
    }
    for (int c : covered) {
        if (c != 1)
            return false;
    }
    return true;
}

bool
DataPlane::verifyAllGathered(const Seeder& f) const
{
    const std::int64_t shard = elements_ / machine_.numNpus();
    for (int npu = 0; npu < machine_.numNpus(); ++npu) {
        const auto& buf = buffers_[static_cast<std::size_t>(npu)];
        if (buf.size() != static_cast<std::size_t>(elements_))
            return false;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            const std::int64_t o = buf.offsets[i];
            if (o != static_cast<std::int64_t>(i))
                return false;
            const int owner = static_cast<int>(o / shard);
            if (buf.values[i] != f(owner, o))
                return false;
        }
    }
    return true;
}

} // namespace themis
