/**
 * @file
 * Data-plane collective executor.
 *
 * Executes RS/AG phase sequences on *real per-NPU buffers*, moving and
 * reducing integer data exactly as the ring / direct / halving-doubling
 * algorithms prescribe. The timing model elsewhere exploits platform
 * symmetry; this executor is the semantic ground truth used to prove:
 *
 *  - each basic algorithm implements its pattern correctly (Fig 2/3),
 *  - Observation 1 of the paper: *any* permutation of RS dimensions
 *    followed by *any* permutation of AG dimensions yields a correct
 *    All-Reduce,
 *  - chunked execution with per-chunk schedules (what Themis emits)
 *    reduces/gathers every element exactly once.
 *
 * Buffers are sparse ordered segments (offset -> value) because
 * interleaved RS/AG orders produce strided, non-contiguous shards.
 */

#ifndef THEMIS_COLLECTIVE_DATAPLANE_DATAPLANE_COLLECTIVES_HPP
#define THEMIS_COLLECTIVE_DATAPLANE_DATAPLANE_COLLECTIVES_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "collective/dataplane/logical_machine.hpp"
#include "topology/dimension.hpp"

namespace themis {

/** Exact value type; sums of initial values never overflow in tests. */
using DataValue = std::int64_t;

/** Sparse, ordered NPU-resident buffer: (element offset, value). */
struct DataSegment
{
    /** Offsets strictly increasing. */
    std::vector<std::int64_t> offsets;
    std::vector<DataValue> values;

    std::size_t size() const { return offsets.size(); }
};

/**
 * One chunk's worth of collective state across every NPU of a logical
 * machine. Reduction is addition over int64.
 */
class DataPlane
{
  public:
    /** Seeds element values: value = f(npu, element offset). */
    using Seeder = std::function<DataValue(int npu, std::int64_t offset)>;

    /**
     * @param machine    the NPU grid
     * @param kinds      per-dimension algorithm selector (Table 1
     *                   kinds); size must equal machine dims
     * @param elements   elements initially resident on each NPU; must
     *                   be divisible by the machine's total NPU count
     *                   so every RS order slices evenly
     * @param offload    per-dimension in-network offload flags
     *                   (Sec 4.5; the switch reduces/multicasts);
     *                   empty = no offload anywhere
     */
    DataPlane(const LogicalMachine& machine, std::vector<DimKind> kinds,
              std::int64_t elements, std::vector<bool> offload = {});

    /** (Re)initialize: every NPU holds [0, elements) seeded by @p f. */
    void initFullReplicas(const Seeder& f);

    /**
     * (Re)initialize for All-Gather tests: NPU n holds the contiguous
     * shard [n*elements/N, (n+1)*elements/N), seeded by @p f.
     */
    void initShards(const Seeder& f);

    /** Run a Reduce-Scatter phase on dimension @p d (all groups). */
    void reduceScatterDim(int d);

    /** Run an All-Gather phase on dimension @p d (all groups). */
    void allGatherDim(int d);

    /**
     * Run a full All-Reduce: RS over @p rs_order then AG over
     * @p ag_order (both permutations of all dimensions, in any order —
     * Observation 1).
     */
    void runAllReduce(const std::vector<int>& rs_order,
                      const std::vector<int>& ag_order);

    /** Current buffer of @p npu. */
    const DataSegment& segment(int npu) const;

    /** Elements per NPU at init time. */
    std::int64_t elements() const { return elements_; }

    /**
     * Check the All-Reduce postcondition: every NPU holds all
     * offsets [0, elements) with value == sum over NPUs of f(npu, o).
     * @return true when correct.
     */
    bool verifyAllReduced(const Seeder& f) const;

    /**
     * Check the Reduce-Scatter postcondition: NPU segments are
     * pairwise disjoint, their union covers [0, elements), and each
     * value is the machine-wide reduction.
     */
    bool verifyReduceScattered(const Seeder& f) const;

    /** Check the All-Gather postcondition for initShards() data. */
    bool verifyAllGathered(const Seeder& f) const;

  private:
    void ringReduceScatterGroup(const std::vector<int>& group);
    void ringAllGatherGroup(const std::vector<int>& group);
    void directReduceScatterGroup(const std::vector<int>& group);
    void directAllGatherGroup(const std::vector<int>& group);
    void hdReduceScatterGroup(const std::vector<int>& group);
    void hdAllGatherGroup(const std::vector<int>& group);
    void offloadReduceScatterGroup(const std::vector<int>& group);
    void offloadAllGatherGroup(const std::vector<int>& group);

    const LogicalMachine& machine_;
    std::vector<DimKind> kinds_;
    std::int64_t elements_;
    std::vector<bool> offload_;
    std::vector<DataSegment> buffers_;
};

} // namespace themis

#endif // THEMIS_COLLECTIVE_DATAPLANE_DATAPLANE_COLLECTIVES_HPP
