#include "collective/phase.hpp"

#include "common/error.hpp"

namespace themis {

const char*
phaseTag(Phase p)
{
    switch (p) {
      case Phase::ReduceScatter: return "RS";
      case Phase::AllGather:     return "AG";
      case Phase::AllToAll:      return "A2A";
    }
    THEMIS_PANIC("unknown Phase " << static_cast<int>(p));
}

std::string
phaseName(Phase p)
{
    return phaseTag(p);
}

std::string
collectiveTypeName(CollectiveType t)
{
    switch (t) {
      case CollectiveType::AllReduce:     return "All-Reduce";
      case CollectiveType::ReduceScatter: return "Reduce-Scatter";
      case CollectiveType::AllGather:     return "All-Gather";
      case CollectiveType::AllToAll:      return "All-to-All";
    }
    THEMIS_PANIC("unknown CollectiveType " << static_cast<int>(t));
}

Bytes
sizeAfterPhase(Phase phase, Bytes entering, int peers)
{
    THEMIS_ASSERT(peers >= 2, "phase on degenerate dimension " << peers);
    THEMIS_ASSERT(entering >= 0.0, "negative size " << entering);
    switch (phase) {
      case Phase::ReduceScatter:
        return entering / peers;
      case Phase::AllGather:
        return entering * peers;
      case Phase::AllToAll:
        return entering;
    }
    THEMIS_PANIC("unknown Phase");
}

Bytes
wireBytes(Phase phase, Bytes entering, int peers)
{
    THEMIS_ASSERT(peers >= 2, "phase on degenerate dimension " << peers);
    const double p = static_cast<double>(peers);
    switch (phase) {
      case Phase::ReduceScatter:
        return entering * (p - 1.0) / p;
      case Phase::AllGather:
        return entering * (p - 1.0);
      case Phase::AllToAll:
        return entering * (p - 1.0) / p;
    }
    THEMIS_PANIC("unknown Phase");
}

int
stagesForType(CollectiveType t, int num_dims)
{
    return t == CollectiveType::AllReduce ? 2 * num_dims : num_dims;
}

} // namespace themis
