#include "collective/cost_model.hpp"

#include "common/error.hpp"

namespace themis {

TimeNs
chunkTransferTime(Phase phase, Bytes entering, const DimensionConfig& dim)
{
    // Sum the algorithm's plan rather than using wireBytes() directly:
    // in-network offload changes the egress volume (Sec 4.5).
    Bytes total = 0.0;
    for (const auto& step :
         algorithmFor(dim).plan(phase, entering, dim)) {
        total += step.bytes;
    }
    return total / dim.bandwidth();
}

TimeNs
phaseFixedDelay(Phase phase, const DimensionConfig& dim)
{
    return algorithmFor(dim).fixedDelay(phase, dim);
}

TimeNs
typeFixedDelay(CollectiveType type, const DimensionConfig& dim)
{
    switch (type) {
      case CollectiveType::AllReduce:
        return phaseFixedDelay(Phase::ReduceScatter, dim) +
               phaseFixedDelay(Phase::AllGather, dim);
      case CollectiveType::ReduceScatter:
        return phaseFixedDelay(Phase::ReduceScatter, dim);
      case CollectiveType::AllGather:
        return phaseFixedDelay(Phase::AllGather, dim);
      case CollectiveType::AllToAll:
        return phaseFixedDelay(Phase::AllToAll, dim);
    }
    THEMIS_PANIC("unknown CollectiveType");
}

TimeNs
chunkOpTime(Phase phase, Bytes entering, const DimensionConfig& dim)
{
    TimeNs total = 0.0;
    for (const auto& step :
         algorithmFor(dim).plan(phase, entering, dim)) {
        total += step.latency + step.bytes / dim.bandwidth();
    }
    return total;
}

} // namespace themis
