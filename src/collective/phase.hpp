/**
 * @file
 * Collective communication patterns and their size algebra (paper
 * Sec 2.1 and Sec 2.3).
 *
 * A collective *type* is what the workload requests (All-Reduce,
 * Reduce-Scatter, All-Gather, All-to-All). A *phase* is what one chunk
 * executes on one network dimension; All-Reduce decomposes into a
 * Reduce-Scatter phase sequence followed by an All-Gather phase
 * sequence.
 *
 * Size convention (paper Sec 2.3): the size of a chunk at a stage is
 * the data residing on each NPU *before* the stage begins. RS on a
 * dimension of size P shrinks it by P; AG grows it by P; All-to-All
 * keeps it.
 */

#ifndef THEMIS_COLLECTIVE_PHASE_HPP
#define THEMIS_COLLECTIVE_PHASE_HPP

#include <string>

#include "common/units.hpp"

namespace themis {

/** Per-dimension chunk operation kind. */
enum class Phase {
    ReduceScatter,
    AllGather,
    AllToAll,
};

/** Workload-visible collective pattern. */
enum class CollectiveType {
    AllReduce,
    ReduceScatter,
    AllGather,
    AllToAll,
};

/** Short phase name ("RS"/"AG"/"A2A"). */
std::string phaseName(Phase p);

/** Allocation-free phaseName for per-chunk-op hot paths (tracing). */
const char* phaseTag(Phase p);

/** Collective type name ("All-Reduce", ...). */
std::string collectiveTypeName(CollectiveType t);

/**
 * Per-NPU data size after executing @p phase on a dimension of size
 * @p peers, given the entering size.
 */
Bytes sizeAfterPhase(Phase phase, Bytes entering, int peers);

/**
 * Bytes each NPU sends on the wire to execute @p phase on a dimension
 * of @p peers, given the entering size (paper Sec 4.4 footnote: ring
 * RS/AG moves (P-1)/P of the resident data; for AG the resident data
 * is the shard, so the wire volume is entering*(P-1)).
 */
Bytes wireBytes(Phase phase, Bytes entering, int peers);

/**
 * Number of per-dimension stages a chunk of collective @p t traverses
 * on a D-dimensional network: 2*D for All-Reduce, D otherwise.
 */
int stagesForType(CollectiveType t, int num_dims);

} // namespace themis

#endif // THEMIS_COLLECTIVE_PHASE_HPP
