#include "collective/algorithms.hpp"

#include <cmath>

#include "common/error.hpp"

namespace themis {

namespace {

int
log2Exact(int v)
{
    THEMIS_ASSERT(isPowerOfTwo(v), "size " << v << " not a power of two");
    int l = 0;
    while ((1 << l) < v)
        ++l;
    return l;
}

} // namespace

// ---------------------------------------------------------------- Ring

int
RingAlgorithm::numSteps(Phase phase, const DimensionConfig& dim) const
{
    (void)phase; // RS, AG and A2A all take P-1 neighbour hops
    return dim.size - 1;
}

std::vector<StepPlan>
RingAlgorithm::plan(Phase phase, Bytes entering,
                    const DimensionConfig& dim) const
{
    const int steps = numSteps(phase, dim);
    const Bytes total = wireBytes(phase, entering, dim.size);
    const Bytes per_step = total / steps;
    std::vector<StepPlan> out(static_cast<std::size_t>(steps));
    for (auto& s : out) {
        s.latency = dim.step_latency_ns;
        s.bytes = per_step;
    }
    return out;
}

// -------------------------------------------------------------- Direct

int
DirectAlgorithm::numSteps(Phase phase, const DimensionConfig& dim) const
{
    (void)phase;
    const int peers = dim.size - 1;
    return (peers + dim.links_per_npu - 1) / dim.links_per_npu;
}

std::vector<StepPlan>
DirectAlgorithm::plan(Phase phase, Bytes entering,
                      const DimensionConfig& dim) const
{
    const int steps = numSteps(phase, dim);
    const Bytes total = wireBytes(phase, entering, dim.size);
    const Bytes per_step = total / steps;
    std::vector<StepPlan> out(static_cast<std::size_t>(steps));
    for (auto& s : out) {
        s.latency = dim.step_latency_ns;
        s.bytes = per_step;
    }
    return out;
}

// ---------------------------------------------------- Halving-Doubling

int
HalvingDoublingAlgorithm::numSteps(Phase phase,
                                   const DimensionConfig& dim) const
{
    (void)phase;
    return log2Exact(dim.size);
}

std::vector<StepPlan>
HalvingDoublingAlgorithm::plan(Phase phase, Bytes entering,
                               const DimensionConfig& dim) const
{
    const int steps = numSteps(phase, dim);
    std::vector<StepPlan> out(static_cast<std::size_t>(steps));
    switch (phase) {
      case Phase::ReduceScatter: {
        // Recursive halving: exchange entering/2, entering/4, ...
        Bytes sz = entering / 2.0;
        for (auto& s : out) {
            s.latency = dim.step_latency_ns;
            s.bytes = sz;
            sz /= 2.0;
        }
        break;
      }
      case Phase::AllGather: {
        // Recursive doubling: exchange shard, 2*shard, 4*shard, ...
        Bytes sz = entering;
        for (auto& s : out) {
            s.latency = dim.step_latency_ns;
            s.bytes = sz;
            sz *= 2.0;
        }
        break;
      }
      case Phase::AllToAll: {
        // Bruck-style exchange through the switch: equal volume per
        // step, total (P-1)/P of the resident data.
        const Bytes total = wireBytes(phase, entering, dim.size);
        for (auto& s : out) {
            s.latency = dim.step_latency_ns;
            s.bytes = total / steps;
        }
        break;
      }
    }
    return out;
}

// ------------------------------------------------- In-network offload

int
InNetworkOffloadAlgorithm::numSteps(Phase phase,
                                    const DimensionConfig& dim) const
{
    (void)phase;
    (void)dim;
    return 2; // NPU -> switch -> NPU
}

std::vector<StepPlan>
InNetworkOffloadAlgorithm::plan(Phase phase, Bytes entering,
                                const DimensionConfig& dim) const
{
    // Egress per NPU: RS streams the resident data up once; AG
    // streams the shard up once (the switch multicasts); A2A is
    // forwarded without reduction, so the usual (P-1)/P leaves.
    Bytes total = 0.0;
    switch (phase) {
      case Phase::ReduceScatter:
      case Phase::AllGather:
        total = entering;
        break;
      case Phase::AllToAll:
        total = wireBytes(phase, entering, dim.size);
        break;
    }
    return {StepPlan{dim.step_latency_ns, total / 2.0},
            StepPlan{dim.step_latency_ns, total / 2.0}};
}

// ------------------------------------------------------------ Registry

const CollectiveAlgorithm&
algorithmFor(DimKind kind)
{
    static const RingAlgorithm ring;
    static const DirectAlgorithm direct;
    static const HalvingDoublingAlgorithm hd;
    switch (kind) {
      case DimKind::Ring:           return ring;
      case DimKind::FullyConnected: return direct;
      case DimKind::Switch:         return hd;
    }
    THEMIS_PANIC("unknown DimKind " << static_cast<int>(kind));
}

const CollectiveAlgorithm&
algorithmFor(const DimensionConfig& dim)
{
    static const InNetworkOffloadAlgorithm offload;
    if (dim.in_network_offload) {
        THEMIS_ASSERT(dim.kind == DimKind::Switch,
                      "offload on a non-switch dimension");
        return offload;
    }
    return algorithmFor(dim.kind);
}

} // namespace themis
