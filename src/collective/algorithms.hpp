/**
 * @file
 * Topology-aware basic collective algorithms (paper Table 1, Sec 2.2).
 *
 * Each algorithm turns (phase, entering chunk size, dimension) into a
 * sequence of steps; a step is a fixed latency (the NPU-to-NPU
 * minimum-message delay) followed by a byte transfer that occupies the
 * dimension's bandwidth. The per-dimension communication runtime
 * executes these step plans; the Themis latency model sums them.
 *
 * Wire-volume invariant shared by all three algorithms: a phase on a
 * dimension of size P moves wireBytes(phase, entering, P) bytes per
 * NPU; the algorithms differ in the number of steps (and hence the
 * fixed delay A_K = steps * step_latency).
 */

#ifndef THEMIS_COLLECTIVE_ALGORITHMS_HPP
#define THEMIS_COLLECTIVE_ALGORITHMS_HPP

#include <string>
#include <vector>

#include "collective/phase.hpp"
#include "topology/dimension.hpp"

namespace themis {

/** One algorithm step: wait @p latency, then transfer @p bytes. */
struct StepPlan
{
    TimeNs latency = 0.0;
    Bytes bytes = 0.0;
};

/**
 * Interface of a basic (single-dimension) collective algorithm.
 * Implementations are stateless; use algorithmFor() to obtain the
 * Table 1 mapping.
 */
class CollectiveAlgorithm
{
  public:
    virtual ~CollectiveAlgorithm() = default;

    /** Algorithm name, e.g. "Ring". */
    virtual std::string name() const = 0;

    /** Number of communication steps for @p phase on @p dim. */
    virtual int numSteps(Phase phase, const DimensionConfig& dim)
        const = 0;

    /**
     * Full step plan for one chunk: @p entering is the per-NPU data
     * size before the stage begins. The sum of plan bytes equals
     * wireBytes(phase, entering, dim.size).
     */
    virtual std::vector<StepPlan> plan(Phase phase, Bytes entering,
                                       const DimensionConfig& dim)
        const = 0;

    /** Fixed delay A_K = numSteps * step latency (paper Sec 4.4). */
    TimeNs
    fixedDelay(Phase phase, const DimensionConfig& dim) const
    {
        return numSteps(phase, dim) * dim.step_latency_ns;
    }
};

/**
 * Ring algorithm: P-1 steps; RS moves entering/P per step, AG moves
 * the shard per step. Natural contention-free fit for ring wiring.
 */
class RingAlgorithm final : public CollectiveAlgorithm
{
  public:
    std::string name() const override { return "Ring"; }
    int numSteps(Phase phase, const DimensionConfig& dim) const override;
    std::vector<StepPlan> plan(Phase phase, Bytes entering,
                               const DimensionConfig& dim) const override;
};

/**
 * Direct algorithm for fully-connected dimensions: every NPU exchanges
 * with every peer simultaneously. With fewer than P-1 links the
 * exchange serializes into ceil((P-1)/links) rounds.
 */
class DirectAlgorithm final : public CollectiveAlgorithm
{
  public:
    std::string name() const override { return "Direct"; }
    int numSteps(Phase phase, const DimensionConfig& dim) const override;
    std::vector<StepPlan> plan(Phase phase, Bytes entering,
                               const DimensionConfig& dim) const override;
};

/**
 * Halving-doubling for switched dimensions: log2(P) steps; RS halves
 * the active data each step (recursive halving), AG doubles it
 * (recursive doubling). Requires power-of-two group sizes.
 */
class HalvingDoublingAlgorithm final : public CollectiveAlgorithm
{
  public:
    std::string name() const override { return "HalvingDoubling"; }
    int numSteps(Phase phase, const DimensionConfig& dim) const override;
    std::vector<StepPlan> plan(Phase phase, Bytes entering,
                               const DimensionConfig& dim) const override;
};

/**
 * In-network collective offload (paper Sec 4.5, SHARP-class): the
 * switch reduces and multicasts. Two switch traversals regardless of
 * group size (A_K = 2 * step latency); egress traffic per NPU is the
 * resident data streamed once for RS and the shard streamed once for
 * AG (the multicast fan-out happens inside the fabric).
 */
class InNetworkOffloadAlgorithm final : public CollectiveAlgorithm
{
  public:
    std::string name() const override { return "InNetworkOffload"; }
    int numSteps(Phase phase, const DimensionConfig& dim) const override;
    std::vector<StepPlan> plan(Phase phase, Bytes entering,
                               const DimensionConfig& dim) const override;
};

/**
 * Table 1 mapping: Ring -> Ring, FullyConnected -> Direct,
 * Switch -> HalvingDoubling. Returns a process-lifetime singleton.
 */
const CollectiveAlgorithm& algorithmFor(DimKind kind);

/**
 * Algorithm for a concrete dimension: Table 1 by wiring, except that
 * offload-capable switches (Sec 4.5) use InNetworkOffload.
 */
const CollectiveAlgorithm& algorithmFor(const DimensionConfig& dim);

} // namespace themis

#endif // THEMIS_COLLECTIVE_ALGORITHMS_HPP
