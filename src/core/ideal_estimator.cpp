#include "core/ideal_estimator.hpp"

namespace themis {

TimeNs
idealCollectiveTime(CollectiveType type, Bytes size,
                    const LatencyModel& model)
{
    Bandwidth total_bw = 0.0;
    for (const auto& d : model.dims())
        total_bw += d.bandwidth();
    const double passes =
        type == CollectiveType::AllReduce ? 2.0 : 1.0;
    return passes * size / total_bw;
}

} // namespace themis
