#include "core/chunk.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace themis {

namespace {

void
checkPermutation(const std::vector<int>& order, const char* what)
{
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        THEMIS_ASSERT(sorted[i] == static_cast<int>(i),
                      what << " order is not a permutation of 0.."
                           << order.size() - 1);
    }
}

} // namespace

std::vector<StageAssignment>
makeStages(CollectiveType type, const std::vector<int>& rs_order,
           const std::vector<int>& ag_order)
{
    std::vector<StageAssignment> stages;
    switch (type) {
      case CollectiveType::AllReduce:
        checkPermutation(rs_order, "RS");
        checkPermutation(ag_order, "AG");
        THEMIS_ASSERT(rs_order.size() == ag_order.size(),
                      "RS/AG pass rank mismatch");
        for (int d : rs_order)
            stages.push_back({Phase::ReduceScatter, d});
        for (int d : ag_order)
            stages.push_back({Phase::AllGather, d});
        break;
      case CollectiveType::ReduceScatter:
        checkPermutation(rs_order, "RS");
        for (int d : rs_order)
            stages.push_back({Phase::ReduceScatter, d});
        break;
      case CollectiveType::AllGather:
        checkPermutation(ag_order, "AG");
        for (int d : ag_order)
            stages.push_back({Phase::AllGather, d});
        break;
      case CollectiveType::AllToAll:
        checkPermutation(rs_order, "A2A");
        for (int d : rs_order)
            stages.push_back({Phase::AllToAll, d});
        break;
    }
    return stages;
}

std::vector<StageAssignment>
baselineStages(CollectiveType type, int num_dims)
{
    std::vector<int> forward(static_cast<std::size_t>(num_dims));
    std::iota(forward.begin(), forward.end(), 0);
    std::vector<int> backward(forward.rbegin(), forward.rend());
    switch (type) {
      case CollectiveType::AllReduce:
        return makeStages(type, forward, backward);
      case CollectiveType::ReduceScatter:
      case CollectiveType::AllToAll:
        return makeStages(type, forward, {});
      case CollectiveType::AllGather:
        return makeStages(type, {}, backward);
    }
    THEMIS_PANIC("unknown CollectiveType");
}

Bytes
enteringSize(const ChunkSchedule& sched, const std::vector<int>& dim_sizes,
             int stage_index)
{
    THEMIS_ASSERT(stage_index >= 0 &&
                      stage_index <= static_cast<int>(sched.stages.size()),
                  "stage index " << stage_index << " out of range");
    Bytes size = sched.size;
    for (int i = 0; i < stage_index; ++i) {
        const auto& st = sched.stages[static_cast<std::size_t>(i)];
        size = sizeAfterPhase(st.phase, size,
                              dim_sizes[static_cast<std::size_t>(st.dim)]);
    }
    return size;
}

Bytes
schedulableSize(CollectiveType type, Bytes request_size,
                const std::vector<int>& dim_sizes)
{
    if (type != CollectiveType::AllGather)
        return request_size;
    double participants = 1.0;
    for (int p : dim_sizes)
        participants *= p;
    return request_size / participants;
}

std::string
describeSchedule(const ChunkSchedule& sched)
{
    std::ostringstream oss;
    oss << "chunk " << sched.chunk_id << ": ";
    for (std::size_t i = 0; i < sched.stages.size(); ++i) {
        if (i > 0)
            oss << " -> ";
        oss << phaseName(sched.stages[i].phase) << " dim"
            << sched.stages[i].dim + 1;
    }
    return oss.str();
}

} // namespace themis
