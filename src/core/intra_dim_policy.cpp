#include "core/intra_dim_policy.hpp"

#include "common/error.hpp"

namespace themis {

std::string
intraDimPolicyName(IntraDimPolicy policy)
{
    switch (policy) {
      case IntraDimPolicy::Fifo: return "FIFO";
      case IntraDimPolicy::Scf:  return "SCF";
    }
    THEMIS_PANIC("unknown IntraDimPolicy " << static_cast<int>(policy));
}

std::size_t
pickNextOp(IntraDimPolicy policy, const std::vector<QueuedOpView>& queue)
{
    THEMIS_ASSERT(!queue.empty(), "picking from an empty queue");
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
        const auto& a = queue[i];
        const auto& b = queue[best];
        bool better = false;
        // Higher flow-class tiers select first; the policy orders
        // within a tier (core/priority_policy.hpp).
        if (a.tier != b.tier) {
            if (a.tier > b.tier)
                best = i;
            continue;
        }
        switch (policy) {
          case IntraDimPolicy::Fifo:
            better = a.arrival_seq < b.arrival_seq;
            break;
          case IntraDimPolicy::Scf:
            if (a.service_time != b.service_time) {
                better = a.service_time < b.service_time;
            } else if (a.arrival_seq != b.arrival_seq) {
                better = a.arrival_seq < b.arrival_seq;
            } else {
                better = a.chunk_id < b.chunk_id;
            }
            break;
        }
        if (better)
            best = i;
    }
    return best;
}

} // namespace themis
