/**
 * @file
 * Baseline multi-rail hierarchical scheduler (paper Sec 2.3).
 *
 * Every chunk follows the same fixed schedule: RS stages dim1..dimD,
 * then AG stages dimD..dim1 (for All-Reduce). This is what SOTA
 * collective libraries do and what Themis is compared against.
 */

#ifndef THEMIS_CORE_BASELINE_SCHEDULER_HPP
#define THEMIS_CORE_BASELINE_SCHEDULER_HPP

#include "core/scheduler.hpp"
#include "core/splitter.hpp"

namespace themis {

/** Fixed-order scheduler; see file comment. */
class BaselineScheduler final : public Scheduler
{
  public:
    explicit BaselineScheduler(const LatencyModel& model);

    std::string name() const override { return "Baseline"; }

    std::vector<ChunkSchedule> scheduleCollective(CollectiveType type,
                                                  Bytes size,
                                                  int chunks) override;

  private:
    const LatencyModel& model_;
};

} // namespace themis

#endif // THEMIS_CORE_BASELINE_SCHEDULER_HPP
