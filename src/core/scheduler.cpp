#include "core/scheduler.hpp"

#include "common/error.hpp"
#include "core/baseline_scheduler.hpp"
#include "core/themis_scheduler.hpp"

namespace themis {

std::string
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Baseline: return "Baseline";
      case SchedulerKind::Themis:   return "Themis";
      case SchedulerKind::ThemisPriority: return "Themis+Priority";
    }
    THEMIS_PANIC("unknown SchedulerKind " << static_cast<int>(kind));
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind, const LatencyModel& model,
              const ThemisConfig& config)
{
    switch (kind) {
      case SchedulerKind::Baseline:
        return std::make_unique<BaselineScheduler>(model);
      case SchedulerKind::Themis:
        return std::make_unique<ThemisScheduler>(model, config);
      case SchedulerKind::ThemisPriority:
        return std::make_unique<ThemisScheduler>(
            model, config, /*priority_aware=*/true);
    }
    THEMIS_PANIC("unknown SchedulerKind " << static_cast<int>(kind));
}

} // namespace themis
