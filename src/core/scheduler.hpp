/**
 * @file
 * Collective scheduler interface and factory (paper Table 3).
 *
 * A scheduler maps one collective request onto per-chunk schedules
 * (which dimension order each chunk traverses). The two shipped
 * policies are the baseline multi-rail hierarchical order (Sec 2.3)
 * and Themis (Algorithm 1). Intra-dimension ordering (FIFO vs SCF) is
 * a separate runtime policy; see core/intra_dim_policy.hpp.
 */

#ifndef THEMIS_CORE_SCHEDULER_HPP
#define THEMIS_CORE_SCHEDULER_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/chunk.hpp"
#include "core/latency_model.hpp"
#include "core/priority_policy.hpp"

namespace themis {

/** Inter-dimension scheduling policies (Table 3 rows). */
enum class SchedulerKind {
    Baseline, ///< fixed dim1..dimD hierarchical order
    Themis,   ///< dynamic per-chunk greedy balancing (Algorithm 1)
    /**
     * Themis that also reads the request's flow class: urgent-tier
     * collectives bypass the robustness threshold (Algorithm 1
     * line 19) so even small load gaps are balanced away — their
     * completion time matters more than oversubscription robustness.
     * Under a uniform PriorityPolicy this is exactly Themis.
     */
    ThemisPriority,
};

/** Scheduler name for reports. */
std::string schedulerKindName(SchedulerKind kind);

/**
 * Inter-dimension chunk scheduler. Stateful across calls only if the
 * implementation opts in (the paper's Themis resets per collective).
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Schedule every chunk of one collective (the paper's
     * SCHEDULE_COLLECTIVE): returns Schedule[i] = stage order of
     * chunk i. @p size is the total per-NPU collective size; it is
     * split into @p chunks equal chunks.
     */
    virtual std::vector<ChunkSchedule>
    scheduleCollective(CollectiveType type, Bytes size, int chunks) = 0;

    /**
     * Flow-class-aware overload: the runtime always calls this form.
     * The default implementation ignores @p flow, so priority-unaware
     * schedulers plan identically for every class.
     */
    virtual std::vector<ChunkSchedule>
    scheduleCollective(CollectiveType type, Bytes size, int chunks,
                       const FlowClass& flow)
    {
        (void)flow;
        return scheduleCollective(type, size, chunks);
    }
};

/** Tunables of the Themis scheduler (defaults follow the paper). */
struct ThemisConfig
{
    /**
     * Robustness threshold (Algorithm 1 line 19): when the max-min
     * load gap is below the predicted runtime of an RS/AG of
     * chunkSize * threshold_fraction on the least-loaded dimension,
     * fall back to the baseline order.
     */
    bool use_threshold = true;

    /** The paper sets the threshold probe size to chunkSize/16. */
    double threshold_fraction = 1.0 / 16.0;

    /** Seed tracker loads with A_K (Sec 4.4). Ablation knob. */
    bool init_loads_with_fixed_delay = true;

    /**
     * Account the mirrored AG pass when tracking All-Reduce loads.
     * The paper's pseudocode tracks the RS pass only (the mirrored AG
     * pass adds proportional load everywhere, so ranking is
     * unaffected). Ablation knob.
     */
    bool account_ag_pass = false;

    /**
     * Keep tracker loads across consecutive collectives instead of
     * resetting (Algorithm 1 resets; ablation knob for workloads that
     * issue many back-to-back collectives).
     */
    bool carry_load_across_collectives = false;
};

/** Create a scheduler of @p kind over @p model (must outlive it). */
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind,
                                         const LatencyModel& model,
                                         const ThemisConfig& config = {});

} // namespace themis

#endif // THEMIS_CORE_SCHEDULER_HPP
