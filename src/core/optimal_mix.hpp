/**
 * @file
 * Optimal static chunk-mix oracle.
 *
 * Themis picks chunk schedules greedily (Algorithm 1). The best any
 * *static* scheduler could do is a fractional mix over the D!
 * Reduce-Scatter orders (AG mirrored) that minimizes the maximum
 * per-dimension load — a min-max linear program over the permutation
 * simplex:
 *
 *     minimize  max_k  sum_pi x_pi * load_k(pi)
 *     s.t.      sum_pi x_pi = 1,  x >= 0
 *
 * where load_k(pi) is the N*B time dimension k absorbs per byte of
 * collective routed with order pi. The program is solved with
 * multiplicative-weights (exact enough for an oracle: the duality gap
 * is reported). Benches use it to show Themis's greedy sits within a
 * few percent of the optimum; Sec 6.3's under-provisioned scenario
 * falls out naturally (the optimum itself cannot balance).
 */

#ifndef THEMIS_CORE_OPTIMAL_MIX_HPP
#define THEMIS_CORE_OPTIMAL_MIX_HPP

#include <vector>

#include "core/latency_model.hpp"

namespace themis {

/** Solution of the min-max schedule-mix program. */
struct OptimalMixResult
{
    /** All D! RS orders, index-aligned with mix. */
    std::vector<std::vector<int>> orders;

    /** Fraction of collective bytes routed per order (sums to 1). */
    std::vector<double> mix;

    /** Resulting per-dimension load for one byte of collective. */
    std::vector<double> per_dim_load;

    /** max(per_dim_load): the optimized bottleneck, per byte. */
    double balanced_load = 0.0;

    /**
     * Lower bound from the final dual weights; balanced_load minus
     * this bounds the optimality gap.
     */
    double dual_bound = 0.0;
};

/**
 * Solve the min-max mix for @p type on @p model's dimensions.
 * @param iterations multiplicative-weights rounds (default plenty for
 *        <=4 dimensions).
 */
OptimalMixResult optimalStaticMix(const LatencyModel& model,
                                  CollectiveType type,
                                  int iterations = 20000);

} // namespace themis

#endif // THEMIS_CORE_OPTIMAL_MIX_HPP
