#include "core/plan_cache.hpp"

#include <mutex>

#include "common/hash.hpp"

namespace themis {

namespace {

// Doubles compare by bit pattern throughout: key equality must agree
// with the bit-pattern hashes below (unordered_map contract).
bool
themisConfigEquals(const ThemisConfig& a, const ThemisConfig& b)
{
    return a.use_threshold == b.use_threshold &&
           bitEquals(a.threshold_fraction, b.threshold_fraction) &&
           a.init_loads_with_fixed_delay ==
               b.init_loads_with_fixed_delay &&
           a.account_ag_pass == b.account_ag_pass &&
           a.carry_load_across_collectives ==
               b.carry_load_across_collectives;
}

} // namespace

PlanKey
PlanKey::make(SchedulerKind scheduler, const ThemisConfig& themis,
              CollectiveType type, Bytes size, int chunks,
              std::uint64_t model_fingerprint, int flow_tier,
              std::uint64_t priority_fingerprint,
              std::uint64_t capacity_fingerprint)
{
    PlanKey key;
    key.scheduler = scheduler;
    // The baseline scheduler ignores ThemisConfig entirely; keep the
    // defaults so every baseline request shares one entry per
    // (type, size, chunks, model).
    if (scheduler == SchedulerKind::Themis ||
        scheduler == SchedulerKind::ThemisPriority)
        key.themis = themis;
    // Only the priority-aware variant plans by flow class; every
    // other scheduler shares one entry across tiers and policies.
    // Its plans differ solely on the urgent threshold-bypass, so the
    // tier normalizes to that bit — Bulk and Standard requests of
    // the same shape share one entry instead of duplicating a full
    // plan derivation per tier.
    if (scheduler == SchedulerKind::ThemisPriority) {
        key.flow_tier =
            flow_tier >= static_cast<int>(PriorityTier::Urgent) ? 1
                                                                : 0;
        key.priority_fingerprint = priority_fingerprint;
    }
    key.type = type;
    key.size = size;
    key.chunks = chunks;
    key.model_fingerprint = model_fingerprint;
    key.capacity_fingerprint = capacity_fingerprint;
    return key;
}

bool
PlanKey::operator==(const PlanKey& o) const
{
    return scheduler == o.scheduler &&
           themisConfigEquals(themis, o.themis) && type == o.type &&
           bitEquals(size, o.size) && chunks == o.chunks &&
           model_fingerprint == o.model_fingerprint &&
           flow_tier == o.flow_tier &&
           priority_fingerprint == o.priority_fingerprint &&
           capacity_fingerprint == o.capacity_fingerprint;
}

bool
StepKey::operator==(const StepKey& o) const
{
    return phase == o.phase && bitEquals(entering, o.entering) &&
           dim_fingerprint == o.dim_fingerprint;
}

bool
OrderKey::operator==(const OrderKey& o) const
{
    return plan == o.plan && intra_policy == o.intra_policy &&
           planner == o.planner &&
           max_parallel_ops == o.max_parallel_ops &&
           bitEquals(latency_headroom, o.latency_headroom);
}

std::uint64_t
planKeyHash(const PlanKey& k)
{
    Fnv1a h;
    h.mix(static_cast<std::uint64_t>(k.scheduler));
    h.mix(static_cast<std::uint64_t>(k.themis.use_threshold));
    h.mix(k.themis.threshold_fraction);
    h.mix(static_cast<std::uint64_t>(
        k.themis.init_loads_with_fixed_delay));
    h.mix(static_cast<std::uint64_t>(k.themis.account_ag_pass));
    h.mix(static_cast<std::uint64_t>(
        k.themis.carry_load_across_collectives));
    h.mix(static_cast<std::uint64_t>(k.type));
    h.mix(k.size);
    h.mix(static_cast<std::uint64_t>(k.chunks));
    h.mix(k.model_fingerprint);
    h.mix(static_cast<std::uint64_t>(k.flow_tier));
    h.mix(k.priority_fingerprint);
    h.mix(k.capacity_fingerprint);
    return h.value();
}

std::size_t
PlanCache::PlanKeyHash::operator()(const PlanKey& k) const
{
    return static_cast<std::size_t>(planKeyHash(k));
}

std::size_t
PlanCache::StepKeyHash::operator()(const StepKey& k) const
{
    Fnv1a h;
    h.mix(static_cast<std::uint64_t>(k.phase));
    h.mix(k.entering);
    h.mix(k.dim_fingerprint);
    return static_cast<std::size_t>(h.value());
}

std::size_t
PlanCache::OrderKeyHash::operator()(const OrderKey& k) const
{
    Fnv1a h;
    h.mix(PlanKeyHash{}(k.plan));
    h.mix(static_cast<std::uint64_t>(k.intra_policy));
    h.mix(static_cast<std::uint64_t>(k.planner));
    h.mix(static_cast<std::uint64_t>(k.max_parallel_ops));
    h.mix(k.latency_headroom);
    return static_cast<std::size_t>(h.value());
}

PlanCache::PlanPtr
PlanCache::findPlan(const PlanKey& key) const
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = plans_.find(key);
        if (it != plans_.end()) {
            plan_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

PlanCache::PlanPtr
PlanCache::storePlan(const PlanKey& key, std::vector<ChunkSchedule> plan)
{
    auto value = std::make_shared<const std::vector<ChunkSchedule>>(
        std::move(plan));
    std::unique_lock<std::shared_mutex> lock(mutex_);
    return plans_.try_emplace(key, std::move(value)).first->second;
}

PlanCache::OrderPtr
PlanCache::findOrders(const OrderKey& key) const
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = orders_.find(key);
        if (it != orders_.end()) {
            order_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    order_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

PlanCache::OrderPtr
PlanCache::storeOrders(const OrderKey& key,
                       std::vector<std::vector<OpKey>> orders)
{
    auto value =
        std::make_shared<const std::vector<std::vector<OpKey>>>(
            std::move(orders));
    std::unique_lock<std::shared_mutex> lock(mutex_);
    return orders_.try_emplace(key, std::move(value)).first->second;
}

bool
PlanCache::findStep(const StepKey& key, StepSummary& out) const
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = steps_.find(key);
        if (it != steps_.end()) {
            step_hits_.fetch_add(1, std::memory_order_relaxed);
            out = it->second;
            return true;
        }
    }
    step_misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
PlanCache::storeStep(const StepKey& key, const StepSummary& summary)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    steps_.try_emplace(key, summary);
}

std::size_t
PlanCache::stepCount() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return steps_.size();
}

std::size_t
PlanCache::planCount() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return plans_.size();
}

std::size_t
PlanCache::orderCount() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return orders_.size();
}

PlanCache::Stats
PlanCache::stats() const
{
    Stats s;
    s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
    s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
    s.order_hits = order_hits_.load(std::memory_order_relaxed);
    s.order_misses = order_misses_.load(std::memory_order_relaxed);
    s.step_hits = step_hits_.load(std::memory_order_relaxed);
    s.step_misses = step_misses_.load(std::memory_order_relaxed);
    return s;
}

} // namespace themis
