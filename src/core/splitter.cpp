#include "core/splitter.hpp"

#include "common/error.hpp"

namespace themis {

std::vector<Bytes>
splitCollective(Bytes size, int chunks)
{
    if (size <= 0.0)
        THEMIS_FATAL("collective size must be positive, got " << size);
    if (chunks < 1)
        THEMIS_FATAL("chunks per collective must be >= 1, got " << chunks);
    return std::vector<Bytes>(static_cast<std::size_t>(chunks),
                              size / chunks);
}

} // namespace themis
