/**
 * @file
 * Chunk and schedule types shared by the schedulers and the runtime.
 *
 * A collective request is split into equally-sized chunks (Fig 6
 * "Splitter"); every chunk receives a *schedule*: an ordered list of
 * (phase, dimension) stages to traverse. For All-Reduce that is a
 * permutation of RS stages followed by a permutation of AG stages
 * (paper Observation 1); for RS/AG/A2A a single permutation.
 *
 * Dimension indices inside schedules are *local* to the collective's
 * scope (the subset of topology dimensions the collective spans, e.g.
 * only the last dimension for Transformer-1T's data-parallel traffic).
 */

#ifndef THEMIS_CORE_CHUNK_HPP
#define THEMIS_CORE_CHUNK_HPP

#include <string>
#include <vector>

#include "collective/phase.hpp"

namespace themis {

/**
 * One dimension of a collective's scope. A collective may span only a
 * sub-group of a physical dimension (e.g. Transformer-1T's 128-NPU
 * model-parallel groups cover dim1 fully but only 8 of dim2's 64 NPUs
 * on the 2D platform): @p participants NPUs out of the dimension's
 * size communicate; they still use the dimension's full per-NPU
 * bandwidth and step latency.
 */
struct ScopeDim
{
    /** Global topology dimension index (0-based). */
    int dim = 0;

    /** Peer-group size within that dimension; 0 = the full dimension. */
    int participants = 0;

    bool
    operator==(const ScopeDim& o) const
    {
        return dim == o.dim && participants == o.participants;
    }

    bool
    operator<(const ScopeDim& o) const
    {
        if (dim != o.dim)
            return dim < o.dim;
        return participants < o.participants;
    }
};

/** A collective operation requested by the workload layer. */
struct CollectiveRequest
{
    CollectiveType type = CollectiveType::AllReduce;

    /**
     * Per-NPU collective size in bytes (the paper's CS). For
     * All-Reduce, Reduce-Scatter and All-to-All this is the data
     * resident on each NPU when the collective starts; for All-Gather
     * it is the *gathered result* per NPU (each NPU contributes
     * size / participants), mirroring the usual communication-library
     * convention so that equal sizes mean comparable wire volumes.
     */
    Bytes size = 0.0;

    /** Chunks per collective (the paper's CPC; default 64, Sec 5.3). */
    int chunks = 64;

    /**
     * Dimensions this collective spans, in increasing dim order.
     * Empty means all dimensions of the platform, fully.
     */
    std::vector<ScopeDim> scope;

    /**
     * Priority tag (core/priority_policy.hpp PriorityTier values).
     * The runtime's PriorityPolicy maps it to a wire-level flow
     * class; under the default uniform policy every tier behaves
     * identically, so tagging is free.
     */
    int priority_tier = 1; // PriorityTier::Standard

    /**
     * Cluster job issuing this collective (0 = the single default
     * workload). Jobs do not change scheduling; they partition the
     * wire-level byte accounting so multi-job co-simulations can
     * report per-tenant conservation and fabric share.
     */
    int job = 0;
};

/** One pipeline stage of a chunk: a phase on a (local) dimension. */
struct StageAssignment
{
    Phase phase = Phase::ReduceScatter;
    int dim = 0;

    bool
    operator==(const StageAssignment& o) const
    {
        return phase == o.phase && dim == o.dim;
    }
};

/** Complete schedule of one chunk. */
struct ChunkSchedule
{
    int chunk_id = 0;

    /** Initial per-NPU size of this chunk (CS / CPC). */
    Bytes size = 0.0;

    /** Ordered stages the chunk traverses. */
    std::vector<StageAssignment> stages;
};

/**
 * Build the stage list for a chunk of collective type @p type given
 * the per-pass dimension orders. @p rs_order is used for the RS pass
 * (or the single A2A pass); @p ag_order for the AG pass. Orders must
 * be permutations of 0..D-1 where applicable.
 */
std::vector<StageAssignment> makeStages(CollectiveType type,
                                        const std::vector<int>& rs_order,
                                        const std::vector<int>& ag_order);

/**
 * The baseline hierarchical order (paper Sec 2.3): RS dim1..dimD,
 * then AG dimD..dim1 for All-Reduce; RS/A2A run dim1..dimD; AG runs
 * dimD..dim1.
 */
std::vector<StageAssignment> baselineStages(CollectiveType type,
                                            int num_dims);

/**
 * Per-NPU data size entering stage @p stage_index, given the chunk's
 * initial size and dimension sizes (indexed by local dim).
 */
Bytes enteringSize(const ChunkSchedule& sched,
                   const std::vector<int>& dim_sizes, int stage_index);

/** Printable "RS d1 -> RS d2 -> AG d2 -> AG d1" form for reports. */
std::string describeSchedule(const ChunkSchedule& sched);

/**
 * Size the scheduler works with for a request of @p request_size:
 * All-Gather converts the gathered-result convention into the initial
 * per-NPU shard (divide by the product of @p dim_sizes); all other
 * types pass through.
 */
Bytes schedulableSize(CollectiveType type, Bytes request_size,
                      const std::vector<int>& dim_sizes);

} // namespace themis

#endif // THEMIS_CORE_CHUNK_HPP
